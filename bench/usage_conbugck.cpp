// ConBugCk experiment (paper §4.2): dependency-aware configuration
// generation drives the toolchain past the shallow validation layers and
// reaches deep code areas; naive random generation mostly dies at mkfs.
#include <cstdio>

#include "corpus/pipeline.h"
#include "tools/conbugck.h"

int main() {
  const auto deps = fsdep::corpus::runTable5().unique_deps;
  const int runs = 200;
  const auto naive = fsdep::tools::runCampaign(runs, /*dependency_aware=*/false, deps);
  const auto aware = fsdep::tools::runCampaign(runs, /*dependency_aware=*/true, deps);
  std::fputs(fsdep::tools::formatCampaignComparison(naive, aware).c_str(), stdout);

  std::puts("\nDeep coverage points only the dependency-aware campaign reaches:");
  int shown = 0;
  for (const std::string& point : aware.coverage_points) {
    if (!naive.coverage_points.contains(point) && shown < 16) {
      std::printf("  %s\n", point.c_str());
      ++shown;
    }
  }
  std::printf("\n(+%zu more)\n",
              aware.coverage_points.size() - naive.coverage_points.size() - shown);
  return aware.coverage_points.size() > naive.coverage_points.size() ? 0 : 1;
}
