// Regenerates Table 3 of the paper: distribution of the 67 configuration
// bugs over the four usage scenarios, with the share of cases involving
// each dependency level.
//
// Paper reference values: 13/1/17/36 bugs; SD 100%, CPD 7.5%, CCD 97.0%.
#include <cstdio>

#include "study/bug_study.h"

int main() {
  std::fputs(fsdep::study::formatTable3().c_str(), stdout);
  std::puts("\nPaper reference totals: 67 bugs, SD 67 (100%), CPD 5 (7.5%), CCD 65 (97.0%)");

  std::puts("\nSample of the dataset (one case per scenario):");
  std::string last_scenario;
  for (const fsdep::study::BugCase& bug : fsdep::study::bugCases()) {
    if (bug.scenario == last_scenario) continue;
    last_scenario = bug.scenario;
    std::printf("  [%s] %s: %s\n", bug.scenario.c_str(), bug.id.c_str(), bug.title.c_str());
  }
  return 0;
}
