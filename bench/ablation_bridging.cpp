// Ablation of the two design decisions DESIGN.md calls out:
//   1. metadata-structure bridging (paper §4.1's key observation) — with
//      it disabled, cross-component extraction collapses to zero;
//   2. intra- vs inter-procedural taint (paper §6 future work) — the
//      inter-procedural mode sees through the kernel's feature accessors
//      and recovers additional CCDs.
#include <cstdio>

#include "corpus/pipeline.h"

using namespace fsdep;

namespace {

struct Counts {
  int sd = 0;
  int cpd = 0;
  int ccd = 0;
};

Counts countLevels(const std::vector<model::Dependency>& deps) {
  Counts c;
  for (const model::Dependency& d : deps) {
    switch (d.level()) {
      case model::DepLevel::SelfDependency: ++c.sd; break;
      case model::DepLevel::CrossParameter: ++c.cpd; break;
      case model::DepLevel::CrossComponent: ++c.ccd; break;
    }
  }
  return c;
}

Counts runConfig(bool bridging, bool inter, bool all_functions) {
  taint::AnalysisOptions topts;
  topts.field_bridging = bridging;
  topts.inter_procedural = inter;
  extract::ExtractOptions eopts = corpus::extractOptions();
  eopts.enable_bridging = bridging;

  std::vector<std::vector<model::Dependency>> per_scenario;
  if (all_functions) {
    std::vector<std::unique_ptr<corpus::AnalyzedComponent>> components;
    std::vector<extract::ComponentRun> runs;
    for (const std::string& name : corpus::componentNames()) {
      auto c = std::make_unique<corpus::AnalyzedComponent>(name, topts);
      c->analyze({});
      components.push_back(std::move(c));
      runs.push_back(components.back()->asRun());
    }
    return countLevels(extract::extractDependencies(runs, eopts));
  }
  for (const corpus::Scenario& scenario : corpus::scenarios()) {
    per_scenario.push_back(corpus::runScenario(scenario, topts, &eopts));
  }
  return countLevels(extract::dedupeAcrossScenarios(per_scenario));
}

}  // namespace

int main() {
  std::puts("Ablation of the extraction design decisions (unique dependencies)\n");
  std::printf("%-52s | %4s %4s %4s\n", "configuration", "SD", "CPD", "CCD");
  std::puts(std::string(72, '-').c_str());

  const Counts baseline = runConfig(true, false, false);
  std::printf("%-52s | %4d %4d %4d\n", "paper prototype (intra, bridging, selected fns)",
              baseline.sd, baseline.cpd, baseline.ccd);

  const Counts no_bridge = runConfig(false, false, false);
  std::printf("%-52s | %4d %4d %4d\n", "without metadata bridging", no_bridge.sd, no_bridge.cpd,
              no_bridge.ccd);

  const Counts all_fns = runConfig(true, false, true);
  std::printf("%-52s | %4d %4d %4d\n", "intra, all functions", all_fns.sd, all_fns.cpd,
              all_fns.ccd);

  const Counts inter = runConfig(true, true, true);
  std::printf("%-52s | %4d %4d %4d\n", "inter-procedural, all functions (paper SS6)", inter.sd,
              inter.cpd, inter.ccd);

  std::puts("\nExpected shape: bridging off -> CCD = 0; inter-procedural -> CCD grows");
  std::puts("(the accessor-shielded kernel feature checks become visible).");

  const bool ok = no_bridge.ccd == 0 && inter.ccd >= all_fns.ccd && baseline.ccd > 0;
  return ok ? 0 : 1;
}
