// fsdep serve latency benchmark: cold one-shot extraction vs a
// disk-cache warm run vs a warm daemon query over the Unix socket
// (memoized response, full connect/send/recv round trip). Reports
// p50/p95 in microseconds and verifies every path returns
// byte-identical output. With an output path argument it also emits
// BENCH_serve.json for scripts/bench_compare.sh, which gates the warm
// serve p50 against FSDEP_SERVE_P50_BUDGET_US (default 1000 us).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/component_cache.h"
#include "corpus/disk_cache.h"
#include "corpus/pipeline.h"
#include "json/json.h"
#include "model/serialization.h"
#include "tools/serve.h"

using namespace fsdep;

namespace {

namespace fs = std::filesystem;

std::uint64_t usSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

struct Percentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
};

Percentiles percentilesOf(std::vector<std::uint64_t> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = samples[samples.size() / 2];
  p.p95 = samples[std::min(samples.size() - 1, samples.size() * 95 / 100)];
  return p;
}

json::Object samplesToJson(const std::vector<std::uint64_t>& samples) {
  const Percentiles p = percentilesOf(samples);
  json::Object o;
  o["samples"] = json::Value(static_cast<std::uint64_t>(samples.size()));
  o["p50_us"] = json::Value(p.p50);
  o["p95_us"] = json::Value(p.p95);
  return o;
}

/// One scenario extraction through the pipeline, rendered the way the
/// CLI prints it — the reference bytes every other path must match.
std::string directExtract(const corpus::Scenario& scenario, bool use_disk) {
  corpus::PipelineOptions options;
  options.use_disk_cache = use_disk;
  const std::vector<model::Dependency> deps =
      corpus::runScenario(scenario, {}, nullptr, options);
  std::string text;
  for (const model::Dependency& dep : deps) {
    text += dep.summary();
    text.push_back('\n');
  }
  text += "\n" + std::to_string(deps.size()) + " dependencies extracted\n";
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kColdRuns = 5;
  constexpr int kDiskWarmRuns = 20;
  constexpr int kServeWarmRuns = 200;

  const corpus::Scenario scenario = corpus::scenarios().front();
  const std::string work =
      (fs::temp_directory_path() / ("fsdep-perf-serve-" + std::to_string(::getpid())))
          .string();
  fs::remove_all(work);
  fs::create_directories(work);

  std::puts("fsdep serve latency: cold extraction vs disk-warm vs warm daemon query");
  std::printf("(scenario %s; %d cold, %d disk-warm, %d serve-warm samples)\n\n",
              scenario.id.c_str(), kColdRuns, kDiskWarmRuns, kServeWarmRuns);

  // Cold: full parse + analyze + extract, no caches anywhere.
  std::vector<std::uint64_t> cold_us;
  std::string expected;
  for (int i = 0; i < kColdRuns; ++i) {
    corpus::ComponentCache::global().clear();
    const auto start = std::chrono::steady_clock::now();
    const std::string text = directExtract(scenario, /*use_disk=*/false);
    cold_us.push_back(usSince(start));
    if (expected.empty()) expected = text;
    if (text != expected) {
      std::fprintf(stderr, "cold run %d output drifted\n", i);
      return 1;
    }
  }

  // Disk-warm: the on-disk result cache answers; no component parses.
  corpus::DiskCache& disk = corpus::DiskCache::global();
  disk.configure(corpus::DiskCacheConfig{work + "/cache"});
  corpus::ComponentCache::global().clear();
  (void)directExtract(scenario, true);  // populate the entry
  std::vector<std::uint64_t> disk_us;
  for (int i = 0; i < kDiskWarmRuns; ++i) {
    corpus::ComponentCache::global().clear();
    const auto start = std::chrono::steady_clock::now();
    const std::string text = directExtract(scenario, true);
    disk_us.push_back(usSince(start));
    if (text != expected) {
      std::fprintf(stderr, "disk-warm run %d output drifted\n", i);
      return 1;
    }
  }
  const std::uint64_t disk_hits = disk.hits();
  disk.configure(corpus::DiskCacheConfig{});
  if (disk_hits < static_cast<std::uint64_t>(kDiskWarmRuns)) {
    std::fprintf(stderr, "disk cache served %llu hits, expected >= %d\n",
                 static_cast<unsigned long long>(disk_hits), kDiskWarmRuns);
    return 1;
  }

  // Serve-warm: memoized daemon answers over a real socket round trip.
  tools::ServeDaemon daemon(tools::ServeOptions{work + "/fsdep.sock"});
  const Result<bool> started = daemon.start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", started.error().message.c_str());
    return 1;
  }
  json::Object request;
  request["type"] = "extract";
  request["scenario"] = scenario.id;
  (void)tools::serveRequest(daemon.socketPath(), request);  // prime the memo
  std::vector<std::uint64_t> serve_us;
  for (int i = 0; i < kServeWarmRuns; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const Result<tools::ServeResponse> response =
        tools::serveRequest(daemon.socketPath(), request);
    serve_us.push_back(usSince(start));
    if (!response.ok() || !response.value().ok) {
      std::fprintf(stderr, "serve request %d failed\n", i);
      return 1;
    }
    if (response.value().stdout_text != expected) {
      std::fprintf(stderr, "serve run %d output drifted from the one-shot CLI\n", i);
      return 1;
    }
    if (!response.value().cached) {
      std::fprintf(stderr, "serve run %d was not memoized\n", i);
      return 1;
    }
  }
  daemon.stop();
  fs::remove_all(work);

  const Percentiles cold = percentilesOf(cold_us);
  const Percentiles warm_disk = percentilesOf(disk_us);
  const Percentiles warm_serve = percentilesOf(serve_us);
  std::printf("%-12s %10s %10s\n", "path", "p50 (us)", "p95 (us)");
  std::printf("%-12s %10llu %10llu\n", "cold",
              static_cast<unsigned long long>(cold.p50),
              static_cast<unsigned long long>(cold.p95));
  std::printf("%-12s %10llu %10llu\n", "disk-warm",
              static_cast<unsigned long long>(warm_disk.p50),
              static_cast<unsigned long long>(warm_disk.p95));
  std::printf("%-12s %10llu %10llu\n", "serve-warm",
              static_cast<unsigned long long>(warm_serve.p50),
              static_cast<unsigned long long>(warm_serve.p95));
  const double speedup =
      warm_serve.p50 > 0 ? static_cast<double>(cold.p50) / warm_serve.p50 : 0.0;
  std::printf("\nwarm daemon query is %.0fx faster than a cold extraction "
              "(all paths byte-identical)\n", speedup);

  if (argc > 1) {
    json::Object doc;
    doc["bench"] = json::Value(std::string("serve"));
    doc["scenario"] = json::Value(scenario.id);
    doc["cold"] = json::Value(samplesToJson(cold_us));
    doc["disk_warm"] = json::Value(samplesToJson(disk_us));
    doc["serve_warm"] = json::Value(samplesToJson(serve_us));
    doc["warm_speedup"] = json::Value(speedup);
    doc["byte_identical"] = json::Value(true);
    std::ofstream out(argv[1]);
    out << json::writePretty(json::Value(std::move(doc))) << "\n";
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
