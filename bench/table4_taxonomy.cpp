// Regenerates Table 4 of the paper: the taxonomy of critical multi-level
// configuration dependencies derived from the bug study.
//
// Paper reference values: SD type 33, SD range 30, CPD control 4,
// CPD value 0 (unobserved), CCD control 1, CCD value 0 (unobserved),
// CCD behavioral 64 — 132 critical dependencies total.
#include <cstdio>

#include "study/bug_study.h"

int main() {
  std::fputs(fsdep::study::formatTable4().c_str(), stdout);
  std::puts("\nPaper reference: 33 / 30 / 4 / 0 / 1 / 0 / 64 = 132 (5 of 7 sub-categories observed)");
  return 0;
}
