// Regenerates Table 5 of the paper: multi-level dependency extraction per
// usage scenario, scored against the labelled ground truth.
//
// Paper reference values:
//   s1: SD 31/0fp, CPD 24/1fp(4.2%),  CCD 0
//   s2: SD 31/0fp, CPD 24/0fp,        CCD 0
//   s3: SD 32/3fp(9.4%), CPD 26/0fp,  CCD 6/1fp(16.7%)
//   s4: SD 32/0fp, CPD 26/0fp,        CCD 0
//   unique: 32/3fp, 26/1fp(3.9%), 6/1fp — 64 deps, 7.8% FP overall.
#include <cstdio>

#include "corpus/pipeline.h"

int main() {
  const fsdep::corpus::Table5Result result = fsdep::corpus::runTable5();
  std::fputs(fsdep::corpus::formatTable5(result).c_str(), stdout);

  std::puts("\nFalse positives with their ground-truth rationales:");
  for (const fsdep::model::Dependency& fp : result.unique_score.false_positive_deps) {
    std::printf("  %s\n", fp.summary().c_str());
    for (const auto& entry : fsdep::corpus::groundTruth()) {
      if (entry.dep.dedupKey() == fp.dedupKey() && !entry.fp_rationale.empty()) {
        std::printf("      rationale: %s\n", entry.fp_rationale.c_str());
      }
    }
  }

  std::puts("\nCross-component dependencies (all bridged through shared metadata):");
  for (const fsdep::model::Dependency& dep : result.unique_deps) {
    if (dep.level() == fsdep::model::DepLevel::CrossComponent) {
      std::printf("  %s\n", dep.summary().c_str());
    }
  }
  return 0;
}
