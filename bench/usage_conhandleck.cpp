// ConHandleCk experiment (paper §4.2/§4.3): violate each extracted
// dependency (or probe the behaviour it gates) against the simulator
// toolchain and classify the outcome.
//
// Paper reference: "one unexpected configuration handling case where
// resize2fs may corrupt the file system" — the Figure 1 case.
#include <cstdio>

#include "tools/conhandleck.h"

int main() {
  const fsdep::tools::HandleCheckReport report = fsdep::tools::runCorpusHandleCheck();
  std::printf("ConHandleCk: %s\n\n", report.summary().c_str());

  std::puts("Dangerous outcomes:");
  for (const fsdep::tools::HandleCase& c : report.cases) {
    if (c.outcome == fsdep::tools::HandleOutcome::Corruption ||
        c.outcome == fsdep::tools::HandleOutcome::SilentAccept) {
      std::printf("  [%-20s] %s\n      %s\n",
                  fsdep::tools::handleOutcomeName(c.outcome), c.description.c_str(),
                  c.detail.c_str());
    }
  }
  std::puts("\nSample of graceful rejections:");
  int shown = 0;
  for (const fsdep::tools::HandleCase& c : report.cases) {
    if (c.outcome == fsdep::tools::HandleOutcome::RejectedGracefully && shown < 5) {
      std::printf("  [rejected] %s\n", c.description.c_str());
      ++shown;
    }
  }
  const fsdep::tools::HandleCheckReport tune = fsdep::tools::runTuneProbes();
  std::printf("\nPost-hoc reconfiguration probes (tune2fs): %s\n", tune.summary().c_str());
  for (const fsdep::tools::HandleCase& c : tune.cases) {
    std::printf("  [%-20s] %s\n", fsdep::tools::handleOutcomeName(c.outcome),
                c.description.c_str());
  }

  std::puts("\nPaper reference: 1 corruption case (resize2fs on sparse_super2 expansion).");
  return report.countOf(fsdep::tools::HandleOutcome::Corruption) == 1 ? 0 : 1;
}
