// Regenerates Table 2 of the paper: configuration coverage of the
// de-facto test suites of the Ext4 ecosystem.
//
// Paper reference values:
//   xfstest        / Ext4      : >85 total, 29 used (< 34.1%)
//   e2fsprogs-test / e2fsck    : >35 total,  6 used (< 17.1%)
//   e2fsprogs-test / resize2fs : >15 total,  7 used (< 46.7%)
#include <cstdio>

#include "study/coverage.h"

int main() {
  const auto reports = fsdep::study::runCoverageStudy();
  std::fputs(fsdep::study::formatTable2(reports).c_str(), stdout);
  std::puts("\nPaper reference: 29 of >85 (<34.1%), 6 of >35 (<17.1%), 7 of >15 (<46.7%)");

  std::puts("\nParameters exercised by each suite:");
  for (const auto& report : reports) {
    std::printf("  %s / %s:\n   ", report.suite.c_str(), report.target.c_str());
    int column = 0;
    for (const std::string& param : report.used_parameters) {
      std::printf(" %s", param.c_str());
      if (++column % 6 == 0 && column < static_cast<int>(report.used_parameters.size())) {
        std::printf("\n   ");
      }
    }
    std::puts("");
  }
  return 0;
}
