// Reproduces the paper's Figure 2: the four stages at which a file
// system's configuration state changes — create (mke2fs), mount (mount),
// online (e4defrag), offline (resize2fs / e2fsck) — driven end-to-end on
// the simulator, reporting the configuration-state change at each stage.
#include <cstdio>

#include "fsim/defrag.h"
#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"

using namespace fsdep::fsim;

namespace {

void stage(const char* name, const char* utility, const std::string& effect) {
  std::printf("  %-8s | %-10s | %s\n", name, utility, effect.c_str());
}

std::string describe(const Superblock& sb) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "blocks=%u free=%u inodes=%u mounts=%u state=%s",
                sb.blocks_count, sb.free_blocks_count, sb.inodes_count, sb.mount_count,
                (sb.state & kStateValid) ? "clean" : "dirty");
  return buf;
}

}  // namespace

int main() {
  std::puts("Figure 2: the four configuration stages of an FS ecosystem\n");
  std::printf("  %-8s | %-10s | %s\n", "stage", "utility", "configuration state after the stage");
  std::puts(std::string(96, '-').c_str());

  BlockDevice device(16384, 1024);
  FsImage image(device);

  // (1) Create.
  MkfsOptions mo;
  mo.block_size = 1024;
  mo.size_blocks = 4096;
  mo.blocks_per_group = 1024;
  mo.inode_ratio = 8192;
  mo.label = "fig2demo";
  const auto formatted = MkfsTool::format(device, mo);
  if (!formatted.ok()) {
    std::fprintf(stderr, "mkfs failed: %s\n", formatted.error().message.c_str());
    return 1;
  }
  stage("create", "mke2fs", describe(image.loadSuperblock()));

  // (2) Mount (+ use: files appear, some fragmented).
  {
    auto mounted = MountTool::mount(device, MountOptions{});
    if (!mounted.ok()) {
      std::fprintf(stderr, "mount failed: %s\n", mounted.error().message.c_str());
      return 1;
    }
    for (int i = 0; i < 4; ++i) {
      (void)mounted.value().createFile(6144, 2);
    }
    stage("mount", "mount", describe(image.loadSuperblock()));

    // (3) Online: defragment while mounted.
    const auto defrag = DefragTool::run(mounted.value(), device, DefragOptions{});
    if (!defrag.ok()) {
      std::fprintf(stderr, "defrag failed: %s\n", defrag.error().message.c_str());
      return 1;
    }
    char effect[160];
    std::snprintf(effect, sizeof(effect), "%s | defragmented %u files (avg extents %.2f -> %.2f)",
                  describe(image.loadSuperblock()).c_str(), defrag.value().defragmented,
                  defrag.value().averageExtentsBefore(), defrag.value().averageExtentsAfter());
    stage("online", "e4defrag", effect);
    mounted.value().unmount();
  }

  // (4) Offline: resize, then check.
  ResizeOptions ro;
  ro.new_size_blocks = 6144;
  ro.fix_sparse_super2_accounting = true;
  if (!ResizeTool::resize(device, ro).ok()) {
    std::fprintf(stderr, "resize failed\n");
    return 1;
  }
  stage("offline", "resize2fs", describe(image.loadSuperblock()));

  const auto fsck = FsckTool::check(device, FsckOptions{.force = true});
  stage("offline", "e2fsck",
        describe(image.loadSuperblock()) + " | " + (fsck.ok() ? fsck.value().summary() : "error"));

  std::puts("\nEvery stage rewrote shared metadata that the next stage's configuration");
  std::puts("handling depends on — the structural root of cross-component dependencies.");
  return 0;
}
