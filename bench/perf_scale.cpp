// Kernel-scale benchmarks (google-benchmark): the SCC-summary
// inter-procedural engine against the legacy whole-program re-analysis
// fixpoint, on the seed corpus and on amplified corpora 10x and 100x
// its size. BM_Table5IntraSeed is the reference point for the scale
// guard in scripts/bench_compare.sh: inter-procedural analysis of the
// 100x amplified corpus must stay within 10x of an intra Table 5 run
// on the seed corpus (BENCH_scale.json).
//
// Amplified iterations time analysis + extraction only: generation and
// the parse-once ComponentCache fill happen in the warm-up, matching
// how the pipeline amortizes frontend cost everywhere else.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "corpus/amplify.h"
#include "corpus/pipeline.h"
#include "extract/extractor.h"
#include "support/thread_pool.h"

using namespace fsdep;

namespace {

taint::AnalysisOptions interSummary() {
  taint::AnalysisOptions topts;
  topts.inter_procedural = true;
  return topts;
}

taint::AnalysisOptions interLegacy() {
  taint::AnalysisOptions topts = interSummary();
  topts.summaries = false;
  return topts;
}

// The AST-walk oracle (--legacy-walk): same passes, same results, but
// every fixpoint visit re-interprets statement trees instead of running
// the compiled Taint-IR. The Walk rows measure what the IR bought.
taint::AnalysisOptions interSummaryWalk() {
  taint::AnalysisOptions topts = interSummary();
  topts.compile_ir = false;
  return topts;
}

void runTable5Bench(benchmark::State& state, const taint::AnalysisOptions& topts) {
  const corpus::PipelineOptions pipeline{.jobs = 4, .use_cache = true};
  benchmark::DoNotOptimize(corpus::runTable5(topts, nullptr, pipeline));  // warm cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus::runTable5(topts, nullptr, pipeline));
  }
}

void BM_Table5IntraSeed(benchmark::State& state) { runTable5Bench(state, {}); }
BENCHMARK(BM_Table5IntraSeed)->Unit(benchmark::kMillisecond);

void BM_Table5InterSummarySeed(benchmark::State& state) {
  runTable5Bench(state, interSummary());
}
BENCHMARK(BM_Table5InterSummarySeed)->Unit(benchmark::kMillisecond);

void BM_Table5InterLegacySeed(benchmark::State& state) {
  runTable5Bench(state, interLegacy());
}
BENCHMARK(BM_Table5InterLegacySeed)->Unit(benchmark::kMillisecond);

void BM_Table5InterSummaryWalkSeed(benchmark::State& state) {
  runTable5Bench(state, interSummaryWalk());
}
BENCHMARK(BM_Table5InterSummaryWalkSeed)->Unit(benchmark::kMillisecond);

/// Analyzes every amplified component (all functions) on the pool and
/// extracts dependencies over the whole synthetic ecosystem — the
/// `fsdep amplify` hot path.
std::size_t analyzeAmplified(const std::vector<std::string>& names,
                             const taint::AnalysisOptions& topts) {
  std::vector<std::unique_ptr<corpus::AnalyzedComponent>> components(names.size());
  ThreadPool::parallelFor(names.size(), 0, [&](std::size_t i) {
    auto component = std::make_unique<corpus::AnalyzedComponent>(names[i], topts);
    component->analyze({});
    components[i] = std::move(component);
  });
  std::vector<extract::ComponentRun> runs;
  runs.reserve(components.size());
  for (const auto& component : components) runs.push_back(component->asRun());
  return extract::extractDependencies(runs, corpus::amplifiedExtractOptions()).size();
}

void runAmplifiedBench(benchmark::State& state, const taint::AnalysisOptions& topts) {
  const corpus::AmplifyOptions aopts{.factor = static_cast<std::size_t>(state.range(0)),
                                     .seed = 42};
  const std::vector<std::string> names = corpus::amplifyCorpus(aopts);
  benchmark::DoNotOptimize(analyzeAmplified(names, topts));  // warm the parse cache
  std::size_t deps = 0;
  for (auto _ : state) {
    deps = analyzeAmplified(names, topts);
    benchmark::DoNotOptimize(deps);
  }
  state.counters["components"] = static_cast<double>(names.size());
  state.counters["deps"] = static_cast<double>(deps);
}

void BM_AmplifiedInterSummary(benchmark::State& state) {
  runAmplifiedBench(state, interSummary());
}
BENCHMARK(BM_AmplifiedInterSummary)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AmplifiedInterLegacy(benchmark::State& state) {
  runAmplifiedBench(state, interLegacy());
}
BENCHMARK(BM_AmplifiedInterLegacy)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AmplifiedIntra(benchmark::State& state) { runAmplifiedBench(state, {}); }
BENCHMARK(BM_AmplifiedIntra)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AmplifiedInterSummaryWalk(benchmark::State& state) {
  runAmplifiedBench(state, interSummaryWalk());
}
BENCHMARK(BM_AmplifiedInterSummaryWalk)->Arg(100)->Unit(benchmark::kMillisecond);

// Pure generation cost (registry rebuild included): the amplifier must
// never dominate the pipeline it feeds.
void BM_AmplifyGenerate(benchmark::State& state) {
  const std::size_t factor = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    // A fresh seed per iteration forces a real regeneration instead of
    // the same-options no-op path.
    benchmark::DoNotOptimize(corpus::amplifyCorpus({.factor = factor, .seed = seed++}));
  }
  corpus::clearAmplifiedCorpus();
}
BENCHMARK(BM_AmplifyGenerate)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

// The factor-1000 row (6000 generated components) takes minutes per
// iteration and several GiB of parsed ASTs, so it is opt-in: set
// FSDEP_BENCH_KERNEL_SCALE=1 to register it. One iteration is enough —
// the interesting number is the superlinearity against the factor-100
// row (see EXPERIMENTS.md, "Kernel scale"), not run-to-run noise.
int main(int argc, char** argv) {
  if (std::getenv("FSDEP_BENCH_KERNEL_SCALE") != nullptr) {
    benchmark::RegisterBenchmark(
        "BM_AmplifiedInterSummary",
        [](benchmark::State& state) { runAmplifiedBench(state, interSummary()); })
        ->Arg(1000)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
