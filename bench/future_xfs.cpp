// Paper §6 future work, implemented: "we plan to apply the methodology to
// analyze other popular open-source file systems (e.g., XFS)". The same
// pipeline — seeds, taint, metadata bridging, extraction — runs over an
// XFS mini-ecosystem (mkfs.xfs, the kernel mount path, xfs_growfs)
// sharing struct xfs_sb. No analyzer change is required.
#include <cstdio>

#include "corpus/pipeline.h"

int main() {
  using namespace fsdep;
  const corpus::Scenario scenario = corpus::xfsScenario();
  const extract::ExtractOptions options = corpus::xfsExtractOptions();
  const std::vector<model::Dependency> deps =
      corpus::runScenario(scenario, taint::AnalysisOptions{}, &options);

  int sd = 0;
  int cpd = 0;
  int ccd = 0;
  std::printf("Scenario: %s\n\n", scenario.title.c_str());
  for (const model::Dependency& dep : deps) {
    switch (dep.level()) {
      case model::DepLevel::SelfDependency: ++sd; break;
      case model::DepLevel::CrossParameter: ++cpd; break;
      case model::DepLevel::CrossComponent: ++ccd; break;
    }
    std::printf("  %s\n", dep.summary().c_str());
  }
  std::printf("\nExtracted: %d SD, %d CPD, %d CCD (%zu total)\n", sd, cpd, ccd, deps.size());
  std::puts("\nThe v5 feature matrix (reflink/rmapbt/bigtime require crc), the");
  std::puts("growfs size interpretation through sb_blocksize, and XFS's famous");
  std::puts("'no shrinking' constraint against sb_dblocks all surface without any");
  std::puts("analyzer change — the methodology generalizes as the paper projects.");
  return (sd > 0 && cpd > 0 && ccd > 0) ? 0 : 1;
}
