// Serial-vs-parallel pipeline benchmarks (google-benchmark).
//
// The baseline reproduces the seed pipeline exactly: one thread, no
// component cache, so every corpus component is re-lexed/re-parsed/
// re-resolved once per scenario (15 frontend runs per Table 5). The
// other configurations turn on the parse-once ComponentCache and the
// ThreadPool, separately and together, so the report attributes the
// speedup to each. scripts/bench_compare.sh runs this binary and emits
// BENCH_pipeline.json.
#include <benchmark/benchmark.h>

#include "corpus/pipeline.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

using namespace fsdep;

namespace {

void runTable5Bench(benchmark::State& state, std::size_t jobs, bool use_cache) {
  const corpus::PipelineOptions pipeline{.jobs = jobs, .use_cache = use_cache};
  if (use_cache) {
    // Warm the cache outside the timed region: the steady-state cost is
    // what Table 5 consumers see after the first scenario of a process.
    benchmark::DoNotOptimize(corpus::runTable5({}, nullptr, pipeline));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus::runTable5({}, nullptr, pipeline));
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["cache"] = use_cache ? 1.0 : 0.0;
}

// The seed's behavior: serial, re-parse per scenario.
void BM_Table5SeedSerial(benchmark::State& state) { runTable5Bench(state, 1, false); }
BENCHMARK(BM_Table5SeedSerial)->Unit(benchmark::kMillisecond);

// Cache only (still one thread) — isolates the parse-once win.
void BM_Table5CachedSerial(benchmark::State& state) { runTable5Bench(state, 1, true); }
BENCHMARK(BM_Table5CachedSerial)->Unit(benchmark::kMillisecond);

// Cache + N workers — the default production configuration.
void BM_Table5Parallel(benchmark::State& state) {
  runTable5Bench(state, static_cast<std::size_t>(state.range(0)), true);
}
BENCHMARK(BM_Table5Parallel)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Parallel without the cache: thread scaling alone, for the report's
// attribution column (on a single-core container this tracks the seed).
void BM_Table5ParallelNoCache(benchmark::State& state) {
  runTable5Bench(state, static_cast<std::size_t>(state.range(0)), false);
}
BENCHMARK(BM_Table5ParallelNoCache)->Arg(4)->Unit(benchmark::kMillisecond);

// Observability overhead guard (scripts/bench_compare.sh asserts the
// pair stays within 3%). TracingOff is the production default: the
// instrumentation is compiled in but every Span degrades to one relaxed
// atomic load. TracingOn collects a full trace per iteration — the
// measurable *upper bound* on what the always-compiled-in hooks can
// cost, so the disabled overhead is strictly below whatever this shows.
void BM_Table5TracingOff(benchmark::State& state) { runTable5Bench(state, 2, true); }
BENCHMARK(BM_Table5TracingOff)->Unit(benchmark::kMillisecond);

void BM_Table5TracingOn(benchmark::State& state) {
  const corpus::PipelineOptions pipeline{.jobs = 2, .use_cache = true};
  benchmark::DoNotOptimize(corpus::runTable5({}, nullptr, pipeline));  // warm cache
  for (auto _ : state) {
    obs::Trace::start();
    benchmark::DoNotOptimize(corpus::runTable5({}, nullptr, pipeline));
    benchmark::DoNotOptimize(obs::Trace::stop());
  }
  state.counters["jobs"] = 2.0;
  state.counters["cache"] = 1.0;
}
BENCHMARK(BM_Table5TracingOn)->Unit(benchmark::kMillisecond);

// Profiling = tracing + span aggregation + render; bench_compare.sh
// holds this against BM_Table5TracingOff with the same 3% budget, so
// `--profile` costs what `--trace` costs plus an explicitly-guarded
// aggregation term.
void BM_Table5ProfilingOn(benchmark::State& state) {
  const corpus::PipelineOptions pipeline{.jobs = 2, .use_cache = true};
  benchmark::DoNotOptimize(corpus::runTable5({}, nullptr, pipeline));  // warm cache
  for (auto _ : state) {
    obs::Trace::start();
    benchmark::DoNotOptimize(corpus::runTable5({}, nullptr, pipeline));
    const std::vector<obs::TraceEvent> events = obs::Trace::stopEvents();
    const obs::Profile profile = obs::buildProfile(events, 1.0, "table5");
    benchmark::DoNotOptimize(obs::renderProfileText(profile));
  }
  state.counters["jobs"] = 2.0;
  state.counters["cache"] = 1.0;
}
BENCHMARK(BM_Table5ProfilingOn)->Unit(benchmark::kMillisecond);

// Single scenario, the interactive `fsdep extract --scenario` path.
void BM_ScenarioSeedVsCached(benchmark::State& state, bool use_cache) {
  const auto scenarios = corpus::scenarios();
  const corpus::Scenario& s3 = scenarios.at(2);
  const corpus::PipelineOptions pipeline{.jobs = 1, .use_cache = use_cache};
  if (use_cache) benchmark::DoNotOptimize(corpus::runScenario(s3, {}, nullptr, pipeline));
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus::runScenario(s3, {}, nullptr, pipeline));
  }
}
BENCHMARK_CAPTURE(BM_ScenarioSeedVsCached, seed, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioSeedVsCached, cached, true)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
