// Performance benchmarks (google-benchmark) for the analysis pipeline and
// the simulator — the paper lists "overhead" as a future evaluation
// metric (§6); these benches supply it for this implementation.
#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "corpus/pipeline.h"
#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"
#include "lex/preprocessor.h"

using namespace fsdep;

namespace {

// --- Frontend ---------------------------------------------------------

void BM_LexMke2fs(benchmark::State& state) {
  const std::string source(corpus::componentSource("mke2fs"));
  for (auto _ : state) {
    SourceManager sm;
    DiagnosticEngine diags;
    const FileId file = sm.addBuffer("mke2fs.c", source);
    lex::Preprocessor pp(sm, diags, [](std::string_view h) { return corpus::headerSource(h); });
    benchmark::DoNotOptimize(pp.tokenize(file));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * source.size()));
}
BENCHMARK(BM_LexMke2fs);

void BM_ParseComponent(benchmark::State& state, const char* component) {
  const std::string source(corpus::componentSource(component));
  for (auto _ : state) {
    SourceManager sm;
    DiagnosticEngine diags;
    const FileId file = sm.addBuffer("c.c", source);
    lex::Preprocessor pp(sm, diags, [](std::string_view h) { return corpus::headerSource(h); });
    ast::Parser parser(pp.tokenize(file), diags);
    benchmark::DoNotOptimize(parser.parseTranslationUnit("c.c"));
  }
}
BENCHMARK_CAPTURE(BM_ParseComponent, mke2fs, "mke2fs");
BENCHMARK_CAPTURE(BM_ParseComponent, ext4, "ext4");
BENCHMARK_CAPTURE(BM_ParseComponent, resize2fs, "resize2fs");

// --- Taint analysis ---------------------------------------------------

void BM_TaintAnalysis(benchmark::State& state, bool inter) {
  taint::AnalysisOptions options;
  options.inter_procedural = inter;
  corpus::AnalyzedComponent component("mke2fs", options);
  for (auto _ : state) {
    component.analyze({});
    benchmark::DoNotOptimize(component.analyzer().writeEvents());
  }
}
BENCHMARK_CAPTURE(BM_TaintAnalysis, intra, false);
BENCHMARK_CAPTURE(BM_TaintAnalysis, inter, true);

// --- Fixpoint state merge ---------------------------------------------

// The successor-edge merge is the hot inner loop of the fixpoint; this
// measures TaintState::mergeFrom directly on synthetic states (range(0)
// tracked objects, interleaved label sets so both the "insert missing
// key" and "union into existing key" paths run).
taint::TaintState makeSyntheticState(std::size_t keys, taint::LabelId label_offset) {
  taint::TaintState state;
  for (std::size_t k = 0; k < keys; ++k) {
    taint::LabelSet& labels = state.fields[static_cast<taint::FieldKeyId>(k)];
    for (taint::LabelId id = 0; id < 48; id += 3) {
      labels.insert(id + label_offset + static_cast<taint::LabelId>(k % 5));
    }
  }
  return state;
}

void BM_TaintStateMerge(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  const taint::TaintState base = makeSyntheticState(keys, 0);
  // Half-overlapping keys and shifted labels: every merge exercises
  // growth, copy-insert and no-op paths together.
  taint::TaintState incoming = makeSyntheticState(keys + keys / 2, 1);
  for (auto _ : state) {
    taint::TaintState dst = base;
    benchmark::DoNotOptimize(dst.mergeFrom(incoming));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * keys));
}
BENCHMARK(BM_TaintStateMerge)->Arg(8)->Arg(64)->Arg(512);

void BM_TaintStateMergeSaturated(benchmark::State& state) {
  // Steady-state fixpoint behavior: the destination already contains
  // everything, so mergeFrom must detect "no growth" as fast as possible.
  const auto keys = static_cast<std::size_t>(state.range(0));
  const taint::TaintState incoming = makeSyntheticState(keys, 0);
  taint::TaintState dst = makeSyntheticState(keys, 0);
  dst.mergeFrom(incoming);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dst.mergeFrom(incoming));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * keys));
}
BENCHMARK(BM_TaintStateMergeSaturated)->Arg(8)->Arg(64)->Arg(512);

// --- End-to-end extraction --------------------------------------------

void BM_ScenarioExtraction(benchmark::State& state) {
  const auto scenarios = corpus::scenarios();
  const corpus::Scenario& s3 = scenarios.at(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus::runScenario(s3));
  }
}
BENCHMARK(BM_ScenarioExtraction)->Unit(benchmark::kMillisecond);

void BM_FullTable5(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus::runTable5());
  }
}
BENCHMARK(BM_FullTable5)->Unit(benchmark::kMillisecond);

// --- Simulator --------------------------------------------------------

void BM_Mkfs(benchmark::State& state) {
  const auto size_blocks = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    fsim::BlockDevice device(size_blocks + 64, 1024);
    fsim::MkfsOptions o;
    o.block_size = 1024;
    o.size_blocks = size_blocks;
    o.blocks_per_group = 1024;
    o.inode_ratio = 8192;
    benchmark::DoNotOptimize(fsim::MkfsTool::format(device, o));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * size_blocks * 1024);
}
BENCHMARK(BM_Mkfs)->Arg(2048)->Arg(8192)->Arg(16384);

void BM_ResizeGrow(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    fsim::BlockDevice device(16384, 1024);
    fsim::MkfsOptions o;
    o.block_size = 1024;
    o.size_blocks = 4096;
    o.blocks_per_group = 1024;
    o.inode_ratio = 8192;
    (void)fsim::MkfsTool::format(device, o);
    state.ResumeTiming();

    fsim::ResizeOptions ro;
    ro.new_size_blocks = 12288;
    ro.fix_sparse_super2_accounting = true;
    benchmark::DoNotOptimize(fsim::ResizeTool::resize(device, ro));
  }
}
BENCHMARK(BM_ResizeGrow)->Unit(benchmark::kMicrosecond);

void BM_FsckFullCheck(benchmark::State& state) {
  fsim::BlockDevice device(16384, 1024);
  fsim::MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 8192;
  o.blocks_per_group = 1024;
  o.inode_ratio = 8192;
  (void)fsim::MkfsTool::format(device, o);
  {
    auto mounted = fsim::MountTool::mount(device, fsim::MountOptions{});
    if (mounted.ok()) {
      for (int i = 0; i < 8; ++i) (void)mounted.value().createFile(4096, 2);
      mounted.value().unmount();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim::FsckTool::check(device, fsim::FsckOptions{.force = true}));
  }
}
BENCHMARK(BM_FsckFullCheck)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
