// Paper §6 future work, part two: BtrFS. Same pipeline, third ecosystem.
// Headline cross-component findings: the mount-time max_inline option is
// bounded by the creation-time node size through the superblock, and
// btrfs-balance's raid5 conversion requires the raid56 format feature
// chosen at mkfs time.
#include <cstdio>

#include "corpus/pipeline.h"

int main() {
  using namespace fsdep;
  const corpus::Scenario scenario = corpus::btrfsScenario();
  const extract::ExtractOptions options = corpus::btrfsExtractOptions();
  const std::vector<model::Dependency> deps =
      corpus::runScenario(scenario, taint::AnalysisOptions{}, &options);

  int sd = 0;
  int cpd = 0;
  int ccd = 0;
  std::printf("Scenario: %s\n\n", scenario.title.c_str());
  for (const model::Dependency& dep : deps) {
    switch (dep.level()) {
      case model::DepLevel::SelfDependency: ++sd; break;
      case model::DepLevel::CrossParameter: ++cpd; break;
      case model::DepLevel::CrossComponent: ++ccd; break;
    }
    std::printf("  %s\n", dep.summary().c_str());
  }
  std::printf("\nExtracted: %d SD, %d CPD, %d CCD (%zu total)\n", sd, cpd, ccd, deps.size());
  std::puts("\nKnown imprecision worth noting: the raid guards bound num_devices only");
  std::puts("under a profile condition, but the range matcher folds them into the");
  std::puts("unconditional [1,1024] domain — the same class of conditional-constraint");
  std::puts("false positive the paper's manual validation filters (Table 5 FPs).");
  return (sd > 0 && cpd > 0 && ccd > 0) ? 0 : 1;
}
