// ConDocCk experiment (paper §4.2/§4.3): based on the 59 extracted true
// dependencies, cross-check the manuals against the code.
//
// Paper reference: "we have identified 12 inaccurate documentation
// issues", with the undocumented meta_bg/resize_inode exclusion as the
// worked example.
#include <cstdio>

#include "tools/condocck.h"

int main() {
  const fsdep::tools::DocCheckReport report = fsdep::tools::runCorpusDocCheck();
  std::printf("ConDocCk over %zu true dependencies and %zu manual claims\n",
              report.checked_dependencies, report.manual_claims);
  std::printf("=> %s\n\n", report.summary().c_str());
  for (const fsdep::tools::DocIssue& issue : report.issues) {
    std::printf("  [%-12s] %s\n", fsdep::tools::docIssueKindName(issue.kind),
                issue.explanation.c_str());
  }
  std::puts("\nPaper reference: 12 documentation issues, including the undocumented");
  std::puts("meta_bg/resize_inode exclusion in the mke2fs manual.");
  return report.issues.size() == 12 ? 0 : 1;
}
