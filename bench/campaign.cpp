// Campaign engine benchmark: runs a bounded crash × fault × config
// campaign at --jobs 1 and at full parallelism and reports throughput
// (cells/sec), the dedup ratio (how much work the canonical state hash
// collapses into equivalence classes), and the minimizer's probe cost.
// With an output path argument it also emits BENCH_campaign.json for
// scripts/bench_compare.sh.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "json/json.h"
#include "tools/campaign.h"

using namespace fsdep;
using namespace fsdep::tools;

namespace {

struct RunStats {
  std::size_t jobs = 0;
  std::size_t cells = 0;
  double seconds = 0.0;
  double cells_per_sec = 0.0;
  double dedup_ratio = 0.0;  ///< duplicate cells / Done cells
  std::uint64_t unique_outcomes = 0;
  std::uint64_t minimizer_probes = 0;
};

CampaignOptions benchOptions(std::size_t jobs) {
  CampaignOptions options;
  options.seed = 42;
  options.ops = {"mkfs", "mount", "resize-buggy", "tune"};
  options.max_configs = 8;
  options.max_crash_points = 3;
  options.max_double_faults = 2;
  options.jobs = jobs;
  return options;
}

bool runOnce(std::size_t jobs, RunStats& stats) {
  const auto start = std::chrono::steady_clock::now();
  const Result<CampaignReport> result = runMatrixCampaign(benchOptions(jobs), {});
  const auto end = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return false;
  }
  const CampaignReport& report = result.value();
  const std::size_t done = report.cells.size() - report.totalFailed();
  stats.jobs = jobs;
  stats.cells = report.cells.size();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  stats.cells_per_sec = stats.seconds > 0 ? report.cells.size() / stats.seconds : 0.0;
  stats.dedup_ratio = done > 0 ? static_cast<double>(report.dedup_hits) / done : 0.0;
  stats.unique_outcomes = report.unique_outcomes;
  stats.minimizer_probes = report.minimizer_probes;
  return true;
}

json::Object statsToJson(const RunStats& stats) {
  json::Object o;
  o["jobs"] = json::Value(static_cast<std::uint64_t>(stats.jobs));
  o["cells"] = json::Value(static_cast<std::uint64_t>(stats.cells));
  o["seconds"] = json::Value(stats.seconds);
  o["cells_per_sec"] = json::Value(stats.cells_per_sec);
  o["dedup_ratio"] = json::Value(stats.dedup_ratio);
  o["unique_outcomes"] = json::Value(stats.unique_outcomes);
  o["minimizer_probes"] = json::Value(stats.minimizer_probes);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t wide = hw > 1 ? hw : 4;

  std::puts("Campaign engine throughput: bounded crash x fault x config matrix");
  std::puts("(4 ops x 8 configs, 3 crash points + 2 double faults + control each)\n");

  RunStats serial;
  RunStats parallel;
  if (!runOnce(1, serial) || !runOnce(wide, parallel)) return 1;

  std::printf("%-8s %6s %8s %11s %11s %7s %7s\n", "mode", "cells", "sec", "cells/sec",
              "dedup", "unique", "probes");
  for (const RunStats* s : {&serial, &parallel}) {
    std::printf("jobs=%-3zu %6zu %8.3f %11.1f %10.1f%% %7llu %7llu\n", s->jobs, s->cells,
                s->seconds, s->cells_per_sec, s->dedup_ratio * 100.0,
                static_cast<unsigned long long>(s->unique_outcomes),
                static_cast<unsigned long long>(s->minimizer_probes));
  }
  const double speedup =
      serial.seconds > 0 && parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
  std::printf("\nspeedup jobs=1 -> jobs=%zu: %.2fx\n", wide, speedup);
  std::printf("dedup collapses %zu cells into %llu unique outcome classes\n", serial.cells,
              static_cast<unsigned long long>(serial.unique_outcomes));

  if (argc > 1) {
    json::Object doc;
    doc["bench"] = json::Value(std::string("campaign"));
    doc["serial"] = json::Value(statsToJson(serial));
    doc["parallel"] = json::Value(statsToJson(parallel));
    doc["speedup"] = json::Value(speedup);
    std::ofstream out(argv[1]);
    out << json::writePretty(json::Value(std::move(doc))) << "\n";
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
