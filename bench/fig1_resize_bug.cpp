// Reproduces the paper's Figure 1: with sparse_super2 enabled and a
// resize2fs target larger than the filesystem, expanding corrupts the
// free-block metadata. The A/B switch is the historical-bug flag in the
// simulator's resize tool; fsck is the corruption oracle.
#include <cstdio>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"

using namespace fsdep::fsim;

namespace {

struct Outcome {
  bool resized = false;
  int corruptions = 0;
  std::string detail;
};

Outcome runPipeline(bool sparse_super2, bool expand, bool fixed_accounting) {
  Outcome outcome;
  BlockDevice device(16384, 1024);
  MkfsOptions mo;
  mo.block_size = 1024;
  mo.size_blocks = 2048;
  mo.blocks_per_group = 512;
  mo.inode_ratio = 8192;
  mo.sparse_super2 = sparse_super2;
  mo.resize_inode = !sparse_super2;
  if (!MkfsTool::format(device, mo).ok()) {
    outcome.detail = "mkfs failed";
    return outcome;
  }
  auto mounted = MountTool::mount(device, MountOptions{});
  if (mounted.ok()) {
    (void)mounted.value().createFile(8192, 2);
    mounted.value().unmount();
  }
  ResizeOptions ro;
  ro.new_size_blocks = expand ? 3072 : 1024;
  ro.fix_sparse_super2_accounting = fixed_accounting;
  const auto resized = ResizeTool::resize(device, ro);
  if (!resized.ok()) {
    outcome.detail = "resize refused";
    return outcome;
  }
  outcome.resized = true;
  const auto fsck = FsckTool::check(device, FsckOptions{.force = true});
  if (fsck.ok()) {
    outcome.corruptions = fsck.value().corruptionCount();
    outcome.detail = fsck.value().summary();
  }
  return outcome;
}

}  // namespace

int main() {
  std::puts("Figure 1: configuration-gated resize2fs corruption");
  std::puts("(dependencies: sparse_super2 enabled AND resize target > fs size)\n");
  std::printf("%-18s %-10s %-12s | %-10s %s\n", "sparse_super2", "direction", "accounting",
              "resized?", "fsck result");
  std::puts(std::string(76, '-').c_str());

  struct Row {
    bool sparse2;
    bool expand;
    bool fixed;
  };
  const Row rows[] = {
      {true, true, false},   // the paper's bug: both dependencies met
      {true, false, false},  // shrink instead of grow: no bug
      {false, true, false},  // no sparse_super2: no bug
      {true, true, true},    // fixed accounting: no bug
  };
  int bug_rows = 0;
  for (const Row& row : rows) {
    const Outcome outcome = runPipeline(row.sparse2, row.expand, row.fixed);
    std::printf("%-18s %-10s %-12s | %-10s %s\n", row.sparse2 ? "enabled" : "disabled",
                row.expand ? "expand" : "shrink", row.fixed ? "fixed" : "historical",
                outcome.resized ? "yes" : "refused", outcome.detail.c_str());
    if (outcome.corruptions > 0) ++bug_rows;
  }
  std::printf("\n%d of 4 configurations corrupt the filesystem — the paper's Figure 1 "
              "requires BOTH dependencies to hold.\n", bug_rows);
  return bug_rows == 1 ? 0 : 1;
}
