// CrashCk experiment harness: enumerates every crash point of every
// fsim operation and prints the per-op outcome histogram, then the
// buggy-vs-fixed A/B for the Figure 1 resize. The buggy accounting must
// show silent-corruption points that the fixed accounting does not —
// that asymmetry is the experiment's claim.
#include <cstdio>

#include "tools/crashck.h"

using namespace fsdep;
using namespace fsdep::tools;

int main() {
  constexpr std::uint64_t kSeed = 42;

  std::puts("CrashCk: deterministic crash-point enumeration over the fsim tools");
  std::printf("seed %llu; every write index of each op is crashed once with a\n",
              static_cast<unsigned long long>(kSeed));
  std::puts("seeded torn prefix, then the image is remounted and fsck'd.\n");

  const Result<CrashCkReport> result = runCrashCk(CrashCkOptions{.seed = kSeed});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return 1;
  }
  const CrashCkReport& report = result.value();

  std::printf("%-13s %6s  %s\n", "op", "writes", "outcome histogram");
  for (const CrashOpReport& op : report.ops) {
    std::printf("%-13s %6llu  %s\n", op.op.c_str(),
                static_cast<unsigned long long>(op.total_writes), op.histogram().c_str());
  }
  std::printf("\n%s\n", report.summary().c_str());

  // The A/B at the heart of the experiment.
  const CrashOpReport* buggy = nullptr;
  const CrashOpReport* fixed = nullptr;
  for (const CrashOpReport& op : report.ops) {
    if (op.op == "resize-buggy") buggy = &op;
    if (op.op == "resize") fixed = &op;
  }
  if (buggy == nullptr || fixed == nullptr) {
    std::fputs("resize ops missing from the campaign\n", stderr);
    return 1;
  }
  const int buggy_silent = buggy->countOf(CrashOutcome::SilentCorruption);
  const int fixed_silent = fixed->countOf(CrashOutcome::SilentCorruption);

  std::puts("\nFigure 1 resize under crash injection (A/B):");
  std::printf("  shipped accounting: %d silent-corruption point(s)\n", buggy_silent);
  for (const CrashPoint& p : buggy->points) {
    if (p.outcome == CrashOutcome::SilentCorruption) {
      std::printf("    write %llu%s: %s\n", static_cast<unsigned long long>(p.write_index),
                  p.control ? " (completed run)" : "", p.detail.c_str());
    }
  }
  std::printf("  fixed accounting:   %d silent-corruption point(s)\n", fixed_silent);

  if (buggy_silent > 0 && fixed_silent == 0) {
    std::puts("\nRESULT: the fix eliminates every silent-corruption crash point.");
    return 0;
  }
  std::puts("\nRESULT: UNEXPECTED — histogram asymmetry not reproduced.");
  return 1;
}
