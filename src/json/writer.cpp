#include <cmath>
#include <cstdio>

#include "json/json.h"

namespace fsdep::json {
namespace {

void appendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, const Value& v) {
  if (v.isInt()) {
    out += std::to_string(v.asInt());
    return;
  }
  const double d = v.asDouble();
  if (std::isfinite(d)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}

void writeValue(std::string& out, const Value& v, int indent, bool pretty) {
  auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(level) * 2, ' ');
  };

  if (v.isNull()) {
    out += "null";
  } else if (v.isBool()) {
    out += v.asBool() ? "true" : "false";
  } else if (v.isNumber()) {
    appendNumber(out, v);
  } else if (v.isString()) {
    appendEscaped(out, v.asString());
  } else if (v.isArray()) {
    const Array& arr = v.asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out += ',';
      newline(indent + 1);
      writeValue(out, arr[i], indent + 1, pretty);
    }
    newline(indent);
    out += ']';
  } else {
    const Object& obj = v.asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) out += ',';
      first = false;
      newline(indent + 1);
      appendEscaped(out, key);
      out += pretty ? ": " : ":";
      writeValue(out, *val, indent + 1, pretty);
    }
    newline(indent);
    out += '}';
  }
}

}  // namespace

std::string writePretty(const Value& value) {
  std::string out;
  writeValue(out, value, 0, /*pretty=*/true);
  out += '\n';
  return out;
}

std::string writeCompact(const Value& value) {
  std::string out;
  writeValue(out, value, 0, /*pretty=*/false);
  return out;
}

}  // namespace fsdep::json
