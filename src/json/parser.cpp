#include <cctype>
#include <cmath>
#include <cstdlib>

#include "json/json.h"

namespace fsdep::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> parseDocument() {
    skipWhitespace();
    Result<Value> v = parseValue();
    if (!v.ok()) return v;
    skipWhitespace();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return v;
  }

 private:
  Result<Value> parseValue() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't': return parseKeyword("true", Value(true));
      case 'f': return parseKeyword("false", Value(false));
      case 'n': return parseKeyword("null", Value(nullptr));
      default: return parseNumber();
    }
  }

  Result<Value> parseObject() {
    ++pos_;  // consume '{'
    Object obj;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skipWhitespace();
      if (peek() != '"') return fail("expected string key in object");
      Result<Value> key = parseString();
      if (!key.ok()) return key;
      skipWhitespace();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skipWhitespace();
      Result<Value> value = parseValue();
      if (!value.ok()) return value;
      obj[key.value().asString()] = std::move(value).take();
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parseArray() {
    ++pos_;  // consume '['
    Array arr;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      skipWhitespace();
      Result<Value> value = parseValue();
      if (!value.ok()) return value;
      arr.push_back(std::move(value).take());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Value(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(10 + h - 'a');
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(10 + h - 'A');
              else return fail("bad hex digit in \\u escape");
            }
            appendUtf8(out, code);
            break;
          }
          default: return fail("unknown escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<Value> parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (peek() == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_double = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) return fail("malformed number");
    std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      return Value(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    const long long v = std::strtoll(token.c_str(), nullptr, 10);
    if (errno == ERANGE) return fail("integer out of range");
    return Value(static_cast<std::int64_t>(v));
  }

  Result<Value> parseKeyword(std::string_view keyword, Value value) {
    if (text_.substr(pos_, keyword.size()) != keyword) return fail("unknown keyword");
    pos_ += keyword.size();
    return value;
  }

  void skipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Result<Value> fail(std::string message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return makeError("json parse error at line " + std::to_string(line) + ": " + std::move(message));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).parseDocument(); }

}  // namespace fsdep::json
