// A small JSON value model. The paper stores extracted dependencies "in JSON
// files which describe both the parameters and the associated constraints"
// (§4.1); this module is the serialization substrate for that.
//
// Objects preserve insertion order so emitted files are stable and diffable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "support/result.h"

namespace fsdep::json {

class Value;

using Array = std::vector<Value>;

/// Insertion-ordered string->Value map. Deep-copyable.
class Object {
 public:
  Object() = default;
  Object(const Object& other);
  Object& operator=(const Object& other);
  Object(Object&&) noexcept = default;
  Object& operator=(Object&&) noexcept = default;
  ~Object() = default;

  Value& operator[](const std::string& key);
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] Value* find(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const { return find(key) != nullptr; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] auto begin() { return entries_.begin(); }
  [[nodiscard]] auto end() { return entries_.end(); }

  bool operator==(const Object& other) const;

 private:
  std::vector<std::pair<std::string, std::unique_ptr<Value>>> entries_;
};

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Integers are kept distinct from doubles so ids and counts round-trip.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}               // NOLINT
  Value(bool b) : data_(b) {}                             // NOLINT
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}   // NOLINT
  Value(std::int64_t i) : data_(i) {}                     // NOLINT
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : data_(d) {}                           // NOLINT
  Value(const char* s) : data_(std::string(s)) {}         // NOLINT
  Value(std::string s) : data_(std::move(s)) {}           // NOLINT
  Value(std::string_view s) : data_(std::string(s)) {}    // NOLINT
  Value(Array a) : data_(std::move(a)) {}                 // NOLINT
  Value(Object o) : data_(std::move(o)) {}                // NOLINT

  [[nodiscard]] bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool isBool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool isInt() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool isDouble() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool isNumber() const { return isInt() || isDouble(); }
  [[nodiscard]] bool isString() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool isArray() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool isObject() const { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool asBool(bool fallback = false) const;
  [[nodiscard]] std::int64_t asInt(std::int64_t fallback = 0) const;
  [[nodiscard]] double asDouble(double fallback = 0.0) const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] Array& asArray();
  [[nodiscard]] const Object& asObject() const;
  [[nodiscard]] Object& asObject();

  bool operator==(const Value& other) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

/// Parses a JSON document. Strict: trailing garbage is an error.
Result<Value> parse(std::string_view text);

/// Serializes with 2-space indentation and a trailing newline.
std::string writePretty(const Value& value);

/// Serializes without any whitespace.
std::string writeCompact(const Value& value);

}  // namespace fsdep::json
