#include "json/json.h"

#include <stdexcept>

namespace fsdep::json {

Object::Object(const Object& other) {
  entries_.reserve(other.entries_.size());
  for (const auto& [k, v] : other.entries_) {
    entries_.emplace_back(k, std::make_unique<Value>(*v));
  }
}

Object& Object::operator=(const Object& other) {
  if (this != &other) {
    Object copy(other);
    entries_ = std::move(copy.entries_);
  }
  return *this;
}

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return *v;
  }
  entries_.emplace_back(key, std::make_unique<Value>());
  return *entries_.back().second;
}

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v.get();
  }
  return nullptr;
}

Value* Object::find(std::string_view key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v.get();
  }
  return nullptr;
}

bool Object::operator==(const Object& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (const auto& [k, v] : entries_) {
    const Value* ov = other.find(k);
    if (ov == nullptr || !(*ov == *v)) return false;
  }
  return true;
}

bool Value::asBool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  return fallback;
}

std::int64_t Value::asInt(std::int64_t fallback) const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const double* d = std::get_if<double>(&data_)) return static_cast<std::int64_t>(*d);
  return fallback;
}

double Value::asDouble(double fallback) const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  return fallback;
}

const std::string& Value::asString() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  static const std::string kEmpty;
  return kEmpty;
}

const Array& Value::asArray() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  static const Array kEmpty;
  return kEmpty;
}

Array& Value::asArray() {
  if (Array* a = std::get_if<Array>(&data_)) return *a;
  throw std::runtime_error("json::Value::asArray on non-array");
}

const Object& Value::asObject() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  static const Object kEmpty;
  return kEmpty;
}

Object& Value::asObject() {
  if (Object* o = std::get_if<Object>(&data_)) return *o;
  throw std::runtime_error("json::Value::asObject on non-object");
}

bool Value::operator==(const Value& other) const { return data_ == other.data_; }

}  // namespace fsdep::json
