// The BtrFS mini-ecosystem — the second §6 target ("XFS, BtrFS"). Three
// components share struct btrfs_sb: mkfs.btrfs (create), the kernel mount
// path (mount), and btrfs-balance (online restriping). The notable CCDs:
// the mount-time max_inline option is bounded by the creation-time node
// size, and balance's raid conversion depends on the device count chosen
// at mkfs time.
#include "corpus/sources_internal.h"

namespace fsdep::corpus {

const char* kBtrfsFsHeader = R"CORPUS(
#ifndef BTRFS_FS_H
#define BTRFS_FS_H

typedef unsigned char  u8;
typedef unsigned short u16;
typedef unsigned int   u32;
typedef unsigned long  u64;

#define BTRFS_SB_MAGIC 1817327701
#define BTRFS_MIN_NODESIZE 4096
#define BTRFS_MAX_NODESIZE 65536

enum btrfs_features {
  BTRFS_FEAT_MIXED_BG   = 0x0001,
  BTRFS_FEAT_EXTREF     = 0x0002,
  BTRFS_FEAT_RAID56     = 0x0004,
  BTRFS_FEAT_SKINNY     = 0x0008,
  BTRFS_FEAT_NO_HOLES   = 0x0010
};

enum btrfs_raid_profile {
  BTRFS_RAID_SINGLE = 0,
  BTRFS_RAID_DUP    = 1,
  BTRFS_RAID_RAID0  = 2,
  BTRFS_RAID_RAID1  = 3,
  BTRFS_RAID_RAID5  = 4
};

struct btrfs_sb {
  u32 sb_magicnum;
  u32 sb_sectorsize;
  u32 sb_nodesize;
  u32 sb_num_devices;
  u32 sb_total_bytes;
  u32 sb_data_profile;
  u32 sb_meta_profile;
  u32 sb_features;
};

#endif
)CORPUS";

const char* kMkfsBtrfsSource = R"CORPUS(
#include "fsdep_libc.h"
#include "btrfs_fs.h"

/*
 * mkfs.btrfs: option parsing, validation, superblock fill.
 */
int mkfs_btrfs_main(int argc, char **argv, struct btrfs_sb *sb) {
  long sectorsize = 4096;
  long nodesize = 16384;
  long num_devices = 1;
  long total_bytes = 0;
  long data_profile = BTRFS_RAID_SINGLE;
  long meta_profile = BTRFS_RAID_DUP;
  int mixed_bg = 0;
  int raid56 = 0;
  int no_holes = 0;
  int c = 0;

  while ((c = getopt(argc, argv, "s:n:d:m:M:")) != -1) {
    switch (c) {
      case 's':
        sectorsize = parse_num(optarg);
        break;
      case 'n':
        nodesize = parse_num(optarg);
        break;
      case 'd':
        data_profile = strtol(optarg, 0, 10);
        break;
      case 'm':
        meta_profile = strtol(optarg, 0, 10);
        break;
      case 'M':
        mixed_bg = 1;
        break;
      default:
        usage();
        break;
    }
  }

  num_devices = strtol(argv[optind], 0, 10);
  total_bytes = strtol(argv[optind + 1], 0, 10);

  /* ---- Self dependencies. ---- */
  if (sectorsize < 4096 || sectorsize > 65536) {
    usage();
  }
  if (nodesize < BTRFS_MIN_NODESIZE || nodesize > BTRFS_MAX_NODESIZE) {
    usage();
  }
  if (nodesize & (nodesize - 1)) {
    usage();
  }
  if (num_devices < 1 || num_devices > 1024) {
    usage();
  }

  /* ---- Cross-parameter dependencies. ---- */
  if (nodesize < sectorsize) {
    fatal_error("node size cannot be smaller than the sector size");
  }
  if (mixed_bg && nodesize != sectorsize) {
    fatal_error("mixed block groups require nodesize == sectorsize");
  }
  if (data_profile == BTRFS_RAID_RAID1 && num_devices < 2) {
    fatal_error("raid1 data needs at least two devices");
  }
  if (data_profile == BTRFS_RAID_RAID5 && num_devices < 3) {
    fatal_error("raid5 data needs at least three devices");
  }
  if (raid56 && !no_holes) {
    /* historical: raid56 shipped gated on other incompat bits */
    fatal_error("raid56 requires the no_holes format");
  }

  /* ---- Persist (the CCD bridge writes). ---- */
  sb->sb_magicnum = BTRFS_SB_MAGIC;
  sb->sb_sectorsize = sectorsize;
  sb->sb_nodesize = nodesize;
  sb->sb_num_devices = num_devices;
  sb->sb_total_bytes = total_bytes;
  sb->sb_data_profile = data_profile;
  sb->sb_meta_profile = meta_profile;
  sb->sb_features |= (mixed_bg ? BTRFS_FEAT_MIXED_BG : 0);
  sb->sb_features |= (raid56 ? BTRFS_FEAT_RAID56 : 0);
  sb->sb_features |= (no_holes ? BTRFS_FEAT_NO_HOLES : 0);
  return 0;
}
)CORPUS";

const char* kBtrfsKernelSource = R"CORPUS(
#include "fsdep_libc.h"
#include "btrfs_fs.h"

#define EINVAL 22

/* Extracts the value part of an "opt=value" token, or 0. */
static char *btrfs_opt_value(char *token) {
  long i = 0;
  while (token[i]) {
    if (token[i] == '=') {
      return token + i + 1;
    }
    i = i + 1;
  }
  return 0;
}

/*
 * Mount option handling (btrfs_parse_options). The max_inline bound is
 * the headline cross-component dependency: a mount parameter limited by
 * a creation parameter through the superblock.
 */
int btrfs_parse_options(int argc, char **argv, struct btrfs_sb *sb) {
  long max_inline = 2048;
  long commit_interval = 30;
  long thread_pool = 8;
  int compress = 0;
  int autodefrag = 0;
  int nodatacow = 0;
  int nodatasum = 0;
  int i = 0;

  for (i = 1; i < argc; i = i + 1) {
    if (strncmp(argv[i], "max_inline=", 11) == 0) {
      max_inline = parse_num(btrfs_opt_value(argv[i]));
    } else if (strncmp(argv[i], "commit=", 7) == 0) {
      commit_interval = parse_num(btrfs_opt_value(argv[i]));
    } else if (strncmp(argv[i], "thread_pool=", 12) == 0) {
      thread_pool = parse_num(btrfs_opt_value(argv[i]));
    } else if (strcmp(argv[i], "compress") == 0) {
      compress = 1;
    } else if (strcmp(argv[i], "autodefrag") == 0) {
      autodefrag = 1;
    } else if (strcmp(argv[i], "nodatacow") == 0) {
      nodatacow = 1;
    } else if (strcmp(argv[i], "nodatasum") == 0) {
      nodatasum = 1;
    }
  }

  if (commit_interval < 1 || commit_interval > 300) {
    return -EINVAL;
  }
  if (thread_pool < 1 || thread_pool > 256) {
    return -EINVAL;
  }
  /* nodatacow implies nodatasum; enabling checksums without CoW is
   * rejected. */
  if (nodatacow && !nodatasum) {
    com_err("btrfs", "nodatacow requires nodatasum");
    return -EINVAL;
  }
  if (compress && nodatacow) {
    com_err("btrfs", "compression is incompatible with nodatacow");
    return -EINVAL;
  }
  /* The cross-component bound: inline extents must fit in a tree node. */
  if (max_inline > sb->sb_nodesize) {
    com_err("btrfs", "max_inline cannot exceed the node size");
    return -EINVAL;
  }
  return autodefrag >= 0 ? 0 : -1;
}

/*
 * Superblock validation at mount (btrfs_validate_super).
 */
int btrfs_validate_super(struct btrfs_sb *sb) {
  if (sb->sb_magicnum != BTRFS_SB_MAGIC) {
    return -EINVAL;
  }
  if (sb->sb_sectorsize < 4096 || sb->sb_sectorsize > 65536) {
    return -EINVAL;
  }
  if (sb->sb_nodesize < BTRFS_MIN_NODESIZE || sb->sb_nodesize > BTRFS_MAX_NODESIZE) {
    return -EINVAL;
  }
  if (sb->sb_nodesize < sb->sb_sectorsize) {
    return -EINVAL;
  }
  if (sb->sb_num_devices < 1) {
    return -EINVAL;
  }
  return 0;
}
)CORPUS";

const char* kBtrfsBalanceSource = R"CORPUS(
#include "fsdep_libc.h"
#include "btrfs_fs.h"

/*
 * btrfs-balance: online restriping. Converting to a redundant profile
 * depends on the device count chosen at mkfs time — a control CCD.
 */
int btrfs_balance_main(int argc, char **argv, struct btrfs_sb *sb) {
  long convert_to = -1;
  int to_raid1 = 0;
  int to_raid5 = 0;
  int force = 0;
  int c = 0;

  while ((c = getopt(argc, argv, "15f")) != -1) {
    switch (c) {
      case '1':
        to_raid1 = 1;
        convert_to = BTRFS_RAID_RAID1;
        break;
      case '5':
        to_raid5 = 1;
        convert_to = BTRFS_RAID_RAID5;
        break;
      case 'f':
        force = 1;
        break;
      default:
        usage();
        break;
    }
  }

  if (to_raid1 && sb->sb_num_devices < 2) {
    fatal_error("balance: raid1 conversion needs at least two devices");
    return -1;
  }
  if (to_raid5 && !(sb->sb_features & BTRFS_FEAT_RAID56)) {
    fatal_error("balance: raid5 conversion needs the raid56 feature");
    return -1;
  }
  if (!force && convert_to == sb->sb_data_profile) {
    printf("balance: profile unchanged, nothing to do");
    return 0;
  }

  if (sb->sb_features & BTRFS_FEAT_MIXED_BG) {
    printf("balance: mixed block groups restripe data and metadata together");
  }

  sb->sb_data_profile = convert_to;
  return 0;
}
)CORPUS";

}  // namespace fsdep::corpus
