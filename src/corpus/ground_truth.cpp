// Labelled ground truth for the Table 5 experiment: the 64 dependencies
// the intra-procedural analyzer extracts from the corpus, with
// scenario-conditional validity. 59 are true dependencies; 5 extractions
// are spurious somewhere (3 SD, 1 CPD, 1 CCD), reproducing the paper's
// 7.8% false-positive rate.
#include "corpus/corpus.h"

namespace fsdep::corpus {

namespace {

using extract::GroundTruthEntry;
using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

const std::set<std::string> kAll = {"s1", "s2", "s3", "s4"};
const std::set<std::string> kOffline = {"s3", "s4"};

GroundTruthEntry sdType(const std::string& param, const std::string& type,
                        std::set<std::string> valid, std::set<std::string> expected) {
  GroundTruthEntry e;
  e.dep.kind = DepKind::SdDataType;
  e.dep.op = ConstraintOp::HasType;
  e.dep.param = param;
  e.dep.type_name = type;
  e.dep.id = "gt-sd-type-" + param;
  e.dep.description = param + " must parse as " + type;
  e.valid_scenarios = std::move(valid);
  e.expected_scenarios = std::move(expected);
  return e;
}

GroundTruthEntry sdRange(const std::string& param, std::optional<std::int64_t> low,
                         std::optional<std::int64_t> high, std::set<std::string> valid,
                         std::set<std::string> expected, std::string rationale = "") {
  GroundTruthEntry e;
  e.dep.kind = DepKind::SdValueRange;
  e.dep.op = ConstraintOp::InRange;
  e.dep.param = param;
  e.dep.low = low;
  e.dep.high = high;
  e.dep.id = "gt-sd-range-" + param;
  e.dep.description = param + " value range";
  e.valid_scenarios = std::move(valid);
  e.expected_scenarios = std::move(expected);
  e.fp_rationale = std::move(rationale);
  return e;
}

GroundTruthEntry sdPow2(const std::string& param) {
  GroundTruthEntry e;
  e.dep.kind = DepKind::SdValueRange;
  e.dep.op = ConstraintOp::PowerOfTwo;
  e.dep.param = param;
  e.dep.id = "gt-sd-pow2-" + param;
  e.dep.description = param + " must be a power of two";
  e.valid_scenarios = kAll;
  e.expected_scenarios = kAll;
  return e;
}

GroundTruthEntry cpd(ConstraintOp op, const std::string& param, const std::string& other,
                     std::set<std::string> valid, std::set<std::string> expected,
                     std::string rationale = "") {
  GroundTruthEntry e;
  e.dep.kind = op == ConstraintOp::Requires || op == ConstraintOp::Excludes
                   ? DepKind::CpdControl
                   : DepKind::CpdValue;
  e.dep.op = op;
  e.dep.param = param;
  e.dep.other_param = other;
  e.dep.id = "gt-cpd-" + param + "-" + other;
  e.dep.description = param + " " + model::constraintOpName(op) + " " + other;
  e.valid_scenarios = std::move(valid);
  e.expected_scenarios = std::move(expected);
  e.fp_rationale = std::move(rationale);
  return e;
}

GroundTruthEntry ccd(DepKind kind, ConstraintOp op, const std::string& param,
                     const std::string& other, const std::string& bridge,
                     std::set<std::string> valid, std::set<std::string> expected,
                     std::string rationale = "") {
  GroundTruthEntry e;
  e.dep.kind = kind;
  e.dep.op = op;
  e.dep.param = param;
  e.dep.other_param = other;
  e.dep.bridge_field = bridge;
  e.dep.id = "gt-ccd-" + param + "-" + other;
  e.dep.description = param + " " + model::constraintOpName(op) + " " + other + " via " + bridge;
  e.valid_scenarios = std::move(valid);
  e.expected_scenarios = std::move(expected);
  e.fp_rationale = std::move(rationale);
  return e;
}

std::vector<GroundTruthEntry> build() {
  std::vector<GroundTruthEntry> gt;

  // ---- Self dependencies: data types (11). ----
  gt.push_back(sdType("mke2fs.blocksize", "integer", kAll, kAll));
  gt.push_back(sdType("mke2fs.inode_size", "integer", kAll, kAll));
  gt.push_back(sdType("mke2fs.inode_ratio", "integer", kAll, kAll));
  gt.push_back(sdType("mke2fs.reserved_ratio", "integer", kAll, kAll));
  gt.push_back(sdType("mke2fs.blocks_per_group", "integer", kAll, kAll));
  gt.push_back(sdType("mke2fs.flex_bg_size", "integer", kAll, kAll));
  gt.push_back(sdType("mke2fs.revision", "integer", kAll, kAll));
  gt.push_back(sdType("mount.commit", "integer", kAll, kAll));
  gt.push_back(sdType("mount.stripe", "integer", kAll, kAll));
  gt.push_back(sdType("mount.inode_readahead_blks", "integer", kAll, kAll));
  gt.push_back(sdType("mount.max_batch_time", "integer", kAll, kAll));

  // ---- Self dependencies: value ranges (21). ----
  gt.push_back(sdRange("mke2fs.blocksize", 1024, 65536, kAll, kAll));
  gt.push_back(sdRange("mke2fs.inode_size", 128, 4096, kAll, kAll));
  gt.push_back(sdRange("mke2fs.inode_ratio", 1024, 67108864, kAll, kAll));
  gt.push_back(sdRange("mke2fs.reserved_ratio", 0, 50, kAll, kAll));
  gt.push_back(sdRange("mke2fs.blocks_per_group", 256, 65528, kAll, kAll));
  gt.push_back(sdPow2("mke2fs.flex_bg_size"));
  gt.push_back(sdRange("mke2fs.revision", 0, 1, kAll, kAll));

  // The three runtime-tunable ranges are true constraints while the fs is
  // mounted, but say nothing about the offline resize path: counting them
  // as scenario constraints there is spurious (paper Table 5, row 3's SD
  // false positives).
  const std::string kMountTunableRationale =
      "journalling runtime tunable; constraint does not govern the offline resize scenario";
  gt.push_back(sdRange("mount.commit", 1, 300, {"s1", "s2", "s4"}, kAll, kMountTunableRationale));
  gt.push_back(sdRange("mount.stripe", 0, 2097152, kAll, kAll));
  gt.push_back(sdRange("mount.inode_readahead_blks", std::nullopt, 1073741824,
                       {"s1", "s2", "s4"}, kAll, kMountTunableRationale));
  gt.push_back(sdRange("mount.max_batch_time", 0, 60000, {"s1", "s2", "s4"}, kAll,
                       kMountTunableRationale));

  // On-disk field domains (persistent form of creation parameters).
  gt.push_back(sdRange("ext4.s_log_block_size", std::nullopt, 6, kAll, kAll));
  gt.push_back(sdRange("ext4.s_inode_size", 128, 4096, kAll, kAll));
  gt.push_back(sdRange("ext4.s_rev_level", std::nullopt, 1, kAll, kAll));
  gt.push_back(sdRange("ext4.s_first_ino", 11, std::nullopt, kAll, kAll));
  gt.push_back(sdRange("ext4.s_desc_size", 32, 64, kAll, kAll));
  gt.push_back(sdRange("ext4.s_first_data_block", std::nullopt, 1, kAll, kAll));
  gt.push_back(sdRange("ext4.s_inodes_per_group", 8, 65536, kAll, kAll));
  gt.push_back(sdRange("ext4.s_reserved_gdt_blocks", std::nullopt, 1024, kAll, kAll));
  gt.push_back(sdRange("ext4.s_log_cluster_size", std::nullopt, 6, kAll, kAll));
  gt.push_back(sdRange("ext4.s_error_count", std::nullopt, 65535, kOffline, kOffline));

  // ---- Cross-parameter dependencies (26). ----
  // mke2fs feature interactions (12 control + 4 value).
  gt.push_back(cpd(ConstraintOp::Excludes, "mke2fs.meta_bg", "mke2fs.resize_inode", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mke2fs.bigalloc", "mke2fs.extent", kAll, kAll));
  gt.push_back(
      cpd(ConstraintOp::Excludes, "mke2fs.sparse_super2", "mke2fs.resize_inode", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mke2fs.64bit", "mke2fs.extent", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mke2fs.quota", "mke2fs.has_journal", kAll, kAll));
  gt.push_back(
      cpd(ConstraintOp::Excludes, "mke2fs.journal_dev", "mke2fs.has_journal", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mke2fs.cluster_size", "mke2fs.bigalloc", kAll, kAll));
  gt.push_back(
      cpd(ConstraintOp::Excludes, "mke2fs.uninit_bg", "mke2fs.metadata_csum", kAll, kAll));
  gt.push_back(
      cpd(ConstraintOp::Requires, "mke2fs.resize_limit", "mke2fs.resize_inode", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mke2fs.flex_bg_size", "mke2fs.flex_bg", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mke2fs.inline_data", "mke2fs.extent", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Excludes, "mke2fs.encrypt", "mke2fs.bigalloc", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Le, "mke2fs.inode_size", "mke2fs.blocksize", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Le, "mke2fs.blocks_per_group", "mke2fs.blocksize", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Ge, "mke2fs.cluster_size", "mke2fs.blocksize", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Ge, "mke2fs.inode_ratio", "mke2fs.blocksize", kAll, kAll));

  // Mount-option interactions enforced by the kernel (7 control).
  gt.push_back(cpd(ConstraintOp::Excludes, "mount.dax", "mount.data_journal", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mount.noload", "mount.ro", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mount.journal_async_commit",
                   "mount.journal_checksum", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mount.usrjquota", "mount.jqfmt", kAll, kAll));
  gt.push_back(
      cpd(ConstraintOp::Excludes, "mount.dioread_nolock", "mount.data_journal", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Excludes, "mount.delalloc", "mount.data_journal", kAll, kAll));
  gt.push_back(cpd(ConstraintOp::Requires, "mount.nobh", "mount.data_writeback", kAll, kAll));

  // The batch-time relation in ext4_setup_super is dead at first mount
  // (defaults are clamped before the check); claiming it for the pure
  // create-and-mount scenario is spurious (Table 5 row 1's CPD FP).
  gt.push_back(cpd(ConstraintOp::Le, "mount.min_batch_time", "mount.max_batch_time",
                   {"s3", "s4"}, {"s1", "s3", "s4"},
                   "check is unreachable at first mount; only meaningful after an offline "
                   "tool rewrote the superblock"));

  // Remount/online revalidation (appears first in the defrag scenario).
  gt.push_back(cpd(ConstraintOp::Excludes, "mount.data_journal", "mount.auto_da_alloc",
                   {"s2", "s3", "s4"}, {"s2", "s3", "s4"}));

  // Offline whole-image invariant relating two creation parameters
  // through their persistent fields.
  gt.push_back(cpd(ConstraintOp::Ge, "mke2fs.size", "mke2fs.blocksize", kOffline, kOffline));

  // ---- Cross-component dependencies (6, all in the resize scenario). ----
  gt.push_back(ccd(DepKind::CcdBehavioral, ConstraintOp::Influences, "resize2fs.size",
                   "mke2fs.size", "ext4_super_block.s_blocks_count", {"s3"}, {"s3"}));
  gt.push_back(ccd(DepKind::CcdControl, ConstraintOp::Requires, "resize2fs.online",
                   "mke2fs.resize_inode", "ext4_super_block.s_feature_compat", {"s3"}, {"s3"}));
  gt.push_back(ccd(DepKind::CcdBehavioral, ConstraintOp::Influences,
                   "resize2fs.resize2fs_adjust_last_group", "mke2fs.sparse_super2",
                   "ext4_super_block.s_feature_compat", {"s3"}, {"s3"}));
  gt.push_back(ccd(DepKind::CcdBehavioral, ConstraintOp::Influences, "resize2fs.size",
                   "mke2fs.blocksize", "ext4_super_block.s_log_block_size", {"s3"}, {"s3"}));
  gt.push_back(ccd(DepKind::CcdValue, ConstraintOp::Ge, "resize2fs.size",
                   "mke2fs.reserved_ratio", "ext4_super_block.s_r_blocks_count", {"s3"}, {"s3"}));
  // Print-only data flow: the volume label reaches a log statement, which
  // is not a behavioural dependency — the one CCD false positive.
  gt.push_back(ccd(DepKind::CcdBehavioral, ConstraintOp::Influences,
                   "resize2fs.resize2fs_print_summary", "mke2fs.label",
                   "ext4_super_block.s_volume_name", {}, {"s3"},
                   "label only feeds a progress message; no behaviour depends on it"));

  return gt;
}

}  // namespace

const std::vector<extract::GroundTruthEntry>& groundTruth() {
  static const std::vector<extract::GroundTruthEntry> kGroundTruth = build();
  return kGroundTruth;
}

}  // namespace fsdep::corpus
