#include "corpus/disk_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "extract/extractor.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const unsigned char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1aU64(std::uint64_t h, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return fnv1a(h, bytes, sizeof(bytes));
}

// Entry layout: a fixed-form header line, then the raw payload bytes.
// The header carries everything needed to reject a stale or torn file
// without trusting its content: the schema version, the full key, and
// the exact payload size.
constexpr const char* kMagic = "fsdep-cache";

}  // namespace

CacheKey& CacheKey::mix(std::string_view bytes) {
  mix(static_cast<std::uint64_t>(bytes.size()));
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  lo_ = fnv1a(lo_, data, bytes.size());
  hi_ = fnv1a(hi_, data, bytes.size());
  return *this;
}

CacheKey& CacheKey::mix(std::uint64_t v) {
  lo_ = fnv1aU64(lo_, v);
  hi_ = fnv1aU64(hi_, v);
  return *this;
}

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx", static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return buf;
}

std::uint64_t contentDigest(std::string_view text) {
  return fnv1a(0xcbf29ce484222325ull, reinterpret_cast<const unsigned char*>(text.data()),
               text.size());
}

void mixOptions(CacheKey& key, const taint::AnalysisOptions& options) {
  key.mix("taint-options");
  key.mix(options.inter_procedural);
  key.mix(options.field_bridging);
  key.mix(options.summaries);
  key.mix(options.compile_ir);
  key.mix(options.max_global_passes);
  key.mix(static_cast<std::uint64_t>(options.max_trace_steps));
}

void mixOptions(CacheKey& key, const extract::ExtractOptions& options) {
  key.mix("extract-options");
  key.mix(options.metadata_owner);
  key.mix(static_cast<std::uint64_t>(options.parser_types.size()));
  for (const auto& [fn, type] : options.parser_types) {
    key.mix(fn);
    key.mix(type);
  }
  key.mix(static_cast<std::uint64_t>(options.error_functions.size()));
  for (const std::string& fn : options.error_functions) key.mix(fn);
  key.mix(options.enable_bridging);
}

void DiskCache::configure(DiskCacheConfig config) {
  const std::lock_guard<std::mutex> lock(mu_);
  config_ = std::move(config);
}

bool DiskCache::enabled() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return !config_.dir.empty();
}

std::string DiskCache::dir() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return config_.dir;
}

std::string DiskCache::schemaDir() const {
  return config_.dir + "/v" + std::to_string(config_.schema_version);
}

std::string DiskCache::entryPath(const CacheKey& key) const {
  return schemaDir() + "/" + key.hex() + ".entry";
}

std::optional<std::string> DiskCache::load(const CacheKey& key) {
  static obs::Counter& hit_counter = obs::Registry::global().counter("cache.disk.hits");
  static obs::Counter& miss_counter = obs::Registry::global().counter("cache.disk.misses");

  const auto miss = [&]() -> std::optional<std::string> {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter.add();
    return std::nullopt;
  };

  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (config_.dir.empty()) return miss();
    path = entryPath(key);
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return miss();

  // Header: "fsdep-cache v<schema> <keyhex> <payload-bytes>\n". Any
  // deviation — wrong magic, other schema, foreign key (a hash-prefix
  // rename), bad size — classifies the file as not-our-entry: a miss.
  std::string magic;
  std::string version;
  std::string key_hex;
  std::uint64_t payload_size = 0;
  in >> magic >> version >> key_hex >> payload_size;
  int schema_version = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    schema_version = config_.schema_version;
  }
  if (!in || magic != kMagic || version != "v" + std::to_string(schema_version) ||
      key_hex != key.hex()) {
    return miss();
  }
  if (in.get() != '\n') return miss();

  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  // A truncated file (torn write, disk-full leftover) reads short;
  // trailing garbage means the size field lied. Both are misses.
  if (static_cast<std::uint64_t>(in.gcount()) != payload_size || in.get() != EOF) {
    return miss();
  }

  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_counter.add();
  // Refresh the LRU position; failure is harmless (entry just ages).
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return payload;
}

void DiskCache::store(const CacheKey& key, std::string_view payload) {
  static obs::Counter& store_counter = obs::Registry::global().counter("cache.disk.stores");

  const std::lock_guard<std::mutex> lock(mu_);
  if (config_.dir.empty()) return;

  std::error_code ec;
  fs::create_directories(schemaDir(), ec);
  if (ec) {
    FSDEP_LOG_WARN("cache", "disk cache: cannot create %s: %s", schemaDir().c_str(),
                   ec.message().c_str());
    return;
  }

  // Atomic publish: write the full entry to a temp name, then rename.
  // Readers either see the complete entry or none; a crash mid-write
  // leaves a .tmp file no load() ever looks at.
  const std::string path = entryPath(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kMagic << " v" << config_.schema_version << " " << key.hex() << " "
        << payload.size() << "\n";
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  store_counter.add();
  evictOverflow();
}

void DiskCache::evictOverflow() {
  static obs::Counter& evict_counter =
      obs::Registry::global().counter("cache.disk.evictions");

  std::error_code ec;
  std::vector<std::pair<fs::file_time_type, fs::path>> entries;
  for (const fs::directory_entry& entry : fs::directory_iterator(schemaDir(), ec)) {
    if (entry.path().extension() != ".entry") continue;
    entries.emplace_back(entry.last_write_time(ec), entry.path());
  }
  if (ec || entries.size() <= config_.max_entries) return;
  // Oldest mtime first = least recently used (hits refresh mtime).
  std::sort(entries.begin(), entries.end());
  const std::size_t excess = entries.size() - config_.max_entries;
  for (std::size_t i = 0; i < excess; ++i) {
    if (fs::remove(entries[i].second, ec)) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      evict_counter.add();
    }
  }
}

void DiskCache::invalidateAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (config_.dir.empty()) return;
  std::error_code ec;
  fs::remove_all(schemaDir(), ec);
}

std::size_t DiskCache::entryCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (config_.dir.empty()) return 0;
  std::error_code ec;
  std::size_t n = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(schemaDir(), ec)) {
    if (entry.path().extension() == ".entry") ++n;
  }
  return n;
}

DiskCache& DiskCache::global() {
  static DiskCache cache;
  return cache;
}

}  // namespace fsdep::corpus
