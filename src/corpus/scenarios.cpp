// The four usage scenarios of Tables 3 and 5, with the pre-selected
// functions the intra-procedural prototype analyzes in each (paper §4.1:
// "we can only extract dependencies via a few pre-selected functions").
#include "corpus/corpus.h"

namespace fsdep::corpus {

namespace {

std::map<std::string, std::vector<std::string>> baseSelection() {
  return {
      {"mke2fs", {"mke2fs_main", "mke2fs_write_super"}},
      {"mount", {"mount_main"}},
      {"ext4", {"ext4_parse_options", "ext4_fill_super", "ext4_check_descriptors"}},
  };
}

}  // namespace

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  Scenario s1;
  s1.id = "s1";
  s1.title = "mke2fs - mount - Ext4";
  s1.selection = baseSelection();
  s1.selection["ext4"].push_back("ext4_setup_super");
  out.push_back(std::move(s1));

  Scenario s2;
  s2.id = "s2";
  s2.title = "mke2fs - mount - Ext4 - e4defrag";
  s2.selection = baseSelection();
  s2.selection["ext4"].push_back("ext4_online_defrag_check");
  s2.selection["e4defrag"] = {"e4defrag_main"};
  out.push_back(std::move(s2));

  Scenario s3;
  s3.id = "s3";
  s3.title = "mke2fs - mount - Ext4 - umount - resize2fs";
  s3.selection = baseSelection();
  s3.selection["ext4"].push_back("ext4_setup_super");
  s3.selection["ext4"].push_back("ext4_remount");
  s3.selection["ext4"].push_back("ext4_validate_super_offline");
  s3.selection["resize2fs"] = {"resize2fs_main", "resize2fs_check_geometry",
                               "resize2fs_adjust_last_group", "resize2fs_print_summary"};
  out.push_back(std::move(s3));

  Scenario s4;
  s4.id = "s4";
  s4.title = "mke2fs - mount - Ext4 - umount - e2fsck";
  s4.selection = baseSelection();
  s4.selection["ext4"].push_back("ext4_setup_super");
  s4.selection["ext4"].push_back("ext4_remount");
  s4.selection["ext4"].push_back("ext4_validate_super_offline");
  s4.selection["e2fsck"] = {"e2fsck_main", "e2fsck_check_super"};
  out.push_back(std::move(s4));

  return out;
}

Scenario xfsScenario() {
  Scenario s;
  s.id = "xfs";
  s.title = "mkfs.xfs - mount - XFS - xfs_growfs";
  s.selection = {
      {"mkfs_xfs", {"mkfs_xfs_main"}},
      {"xfs", {"xfs_parse_options", "xfs_mount_validate_sb"}},
      {"xfs_growfs", {"xfs_growfs_main"}},
  };
  return s;
}

Scenario btrfsScenario() {
  Scenario s;
  s.id = "btrfs";
  s.title = "mkfs.btrfs - mount - BtrFS - btrfs-balance";
  s.selection = {
      {"mkfs_btrfs", {"mkfs_btrfs_main"}},
      {"btrfs", {"btrfs_parse_options", "btrfs_validate_super"}},
      {"btrfs_balance", {"btrfs_balance_main"}},
  };
  return s;
}

}  // namespace fsdep::corpus
