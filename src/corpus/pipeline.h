// End-to-end pipeline over the embedded corpus: parse each component with
// the fsdep frontend (once per process — see ComponentCache), resolve,
// seed, run the taint analysis on a scenario's pre-selected functions,
// extract dependencies, and score them against the ground truth. This is
// what the Table 5 bench, the CLI and the integration tests drive.
//
// Independent (scenario x component) analyses run concurrently on the
// support ThreadPool; extraction consumes the results in a fixed order,
// so serial and parallel runs produce byte-identical output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "corpus/component_cache.h"
#include "corpus/corpus.h"
#include "corpus/disk_cache.h"
#include "extract/extractor.h"
#include "extract/scoring.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

/// One parsed and resolved component, ready to be analyzed (possibly
/// several times with different function selections). Frontend results
/// come from the shared ComponentCache; the taint analyzer — the only
/// mutable part — is private to this instance, so many
/// AnalyzedComponents over the same component can run on different
/// threads at once.
class AnalyzedComponent {
 public:
  /// Obtains the named corpus component from the global ComponentCache
  /// (parsing it on first use). Throws std::runtime_error when the
  /// corpus fails to parse (a bug). `use_cache = false` forces a fresh
  /// parse, bypassing the cache — the seed's behavior, kept for
  /// benchmarking the cache itself.
  AnalyzedComponent(std::string name, const taint::AnalysisOptions& taint_options,
                    bool use_cache = true);

  /// (Re)runs the taint analysis on the given functions (empty = all).
  void analyze(const std::vector<std::string>& function_names);

  [[nodiscard]] const std::string& name() const { return entry_->name; }
  [[nodiscard]] bool isKernel() const { return entry_->is_kernel; }
  [[nodiscard]] const ast::TranslationUnit& tu() const { return *entry_->tu; }
  [[nodiscard]] const sema::Sema& semaRef() const { return *entry_->sema; }
  [[nodiscard]] taint::Analyzer& analyzer() { return *analyzer_; }
  [[nodiscard]] const taint::Analyzer& analyzer() const { return *analyzer_; }
  [[nodiscard]] const SourceManager& sourceManager() const { return entry_->sm; }
  [[nodiscard]] extract::ComponentRun asRun() const;

 private:
  std::shared_ptr<const ComponentEntry> entry_;
  std::unique_ptr<taint::Analyzer> analyzer_;
};

struct ScenarioResult {
  std::string id;
  std::string title;
  std::vector<model::Dependency> deps;
  extract::ScenarioScore score;
};

struct Table5Result {
  std::vector<ScenarioResult> per_scenario;
  extract::ScenarioScore unique_score;
  std::vector<model::Dependency> unique_deps;
};

/// Pipeline execution knobs (orthogonal to what is analyzed).
struct PipelineOptions {
  /// Worker count for independent (scenario x component) analyses.
  /// 0 = the global default (FSDEP_JOBS env var, else hardware
  /// concurrency; the CLI's --jobs flag overrides). 1 = fully serial.
  std::size_t jobs = 0;
  /// When false, every component is parsed fresh instead of via the
  /// ComponentCache — the seed pipeline's behavior (benchmark baseline).
  bool use_cache = true;
  /// When false, the on-disk result cache is bypassed even if
  /// DiskCache::global() is configured (the CLI's --no-cache). When
  /// true, scenario results whose inputs (component sources, function
  /// selections, analysis/extract options) are unchanged load from disk
  /// and skip parse+sema+taint+extract entirely.
  bool use_disk_cache = true;
};

/// Content-hashed identity of one scenario run: scenario id, every
/// selected component's source digest + function selection, the full
/// AnalysisOptions and ExtractOptions fingerprints, and the cache schema
/// version. Any input change produces a different key (= a miss).
CacheKey scenarioCacheKey(const Scenario& scenario,
                          const taint::AnalysisOptions& taint_options,
                          const extract::ExtractOptions& extract_options);

/// Cumulative perf counters of every pipeline run in this process
/// (parse/analyze/extract wall time, fixpoint merges, cache traffic).
/// A text-format view over the obs metrics registry's "pipeline.*" and
/// "cache.*" series (see src/obs/metrics.h) — all storage is relaxed
/// atomics in the registry, so concurrent runs, snapshots and resets
/// never tear. Snapshot with pipelineStatsSnapshot(); the CLI prints
/// the (byte-stable) text rendering under --stats, and the full labeled
/// series under --metrics.
struct PipelineStats {
  std::uint64_t parse_ns = 0;
  std::uint64_t analyze_ns = 0;
  std::uint64_t extract_ns = 0;
  std::uint64_t components_analyzed = 0;
  std::uint64_t merge_calls = 0;
  std::uint64_t merge_grew = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t jobs = 0;  ///< worker count of the most recent run

  [[nodiscard]] std::string format() const;
};

PipelineStats pipelineStatsSnapshot();
void resetPipelineStats();

/// Runs the whole Table-5 experiment: all four scenarios plus the unique
/// row. `taint_options` selects intra- vs inter-procedural mode and the
/// bridging ablation; extraction options come from the corpus unless
/// overridden. Analyses of the scenario x component matrix run in
/// parallel per `pipeline`; the result is identical to a serial run.
Table5Result runTable5(const taint::AnalysisOptions& taint_options = {},
                       const extract::ExtractOptions* extract_override = nullptr,
                       const PipelineOptions& pipeline = {});

/// Runs a single scenario (parse + analyze + extract), unscored.
/// Component analyses run in parallel per `pipeline`.
std::vector<model::Dependency> runScenario(const Scenario& scenario,
                                           const taint::AnalysisOptions& taint_options = {},
                                           const extract::ExtractOptions* extract_override = nullptr,
                                           const PipelineOptions& pipeline = {});

/// Renders Table 5 in the paper's layout.
std::string formatTable5(const Table5Result& result);

}  // namespace fsdep::corpus
