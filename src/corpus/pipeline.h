// End-to-end pipeline over the embedded corpus: parse each component with
// the fsdep frontend, resolve, seed, run the taint analysis on a
// scenario's pre-selected functions, extract dependencies, and score them
// against the ground truth. This is what the Table 5 bench, the CLI and
// the integration tests drive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "corpus/corpus.h"
#include "extract/extractor.h"
#include "extract/scoring.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

/// One parsed and resolved component, ready to be analyzed (possibly
/// several times with different function selections).
class AnalyzedComponent {
 public:
  /// Parses and resolves the named corpus component. Throws
  /// std::runtime_error when the corpus fails to parse (a bug).
  AnalyzedComponent(std::string name, const taint::AnalysisOptions& taint_options);

  /// (Re)runs the taint analysis on the given functions (empty = all).
  void analyze(const std::vector<std::string>& function_names);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool isKernel() const { return is_kernel_; }
  [[nodiscard]] const ast::TranslationUnit& tu() const { return *tu_; }
  [[nodiscard]] sema::Sema& semaRef() { return *sema_; }
  [[nodiscard]] taint::Analyzer& analyzer() { return *analyzer_; }
  [[nodiscard]] const SourceManager& sourceManager() const { return sm_; }
  [[nodiscard]] extract::ComponentRun asRun() const;

 private:
  std::string name_;
  bool is_kernel_ = false;
  SourceManager sm_;
  DiagnosticEngine diags_;
  std::unique_ptr<ast::TranslationUnit> tu_;
  std::unique_ptr<sema::Sema> sema_;
  std::unique_ptr<taint::Analyzer> analyzer_;
};

struct ScenarioResult {
  std::string id;
  std::string title;
  std::vector<model::Dependency> deps;
  extract::ScenarioScore score;
};

struct Table5Result {
  std::vector<ScenarioResult> per_scenario;
  extract::ScenarioScore unique_score;
  std::vector<model::Dependency> unique_deps;
};

/// Runs the whole Table-5 experiment: all four scenarios plus the unique
/// row. `taint_options` selects intra- vs inter-procedural mode and the
/// bridging ablation; extraction options come from the corpus unless
/// overridden.
Table5Result runTable5(const taint::AnalysisOptions& taint_options = {},
                       const extract::ExtractOptions* extract_override = nullptr);

/// Runs a single scenario (parse + analyze + extract), unscored.
std::vector<model::Dependency> runScenario(const Scenario& scenario,
                                           const taint::AnalysisOptions& taint_options = {},
                                           const extract::ExtractOptions* extract_override = nullptr);

/// Renders Table 5 in the paper's layout.
std::string formatTable5(const Table5Result& result);

}  // namespace fsdep::corpus
