// The corpus amplifier: a deterministic generator of synthetic components
// with the config-flow shapes of the real corpus — getopt/switch and
// option-string parse chains, helper call trees (including mutually
// recursive pairs, so call-graph SCCs are exercised), struct field stores
// behind cross-function sinks (a writer computes locals in main and
// persists them through a helper, so only inter-procedural analysis sees
// the labels reach the fields), and kernel-style readers that validate
// the shared superblock. The corpus is partitioned into ecosystems of
// six components (mirroring the real Ext4 ecosystem); each ecosystem
// bridges through its own superblock struct in its own generated header
// ("amp_sb_<e>.h"), giving the extractor the same bridge the real
// ecosystems have while keeping cross-component dependency extraction
// linear in the amplification factor.
//
// Generated components install into a process-global registry that
// componentSource(), componentSeeds() and headerSource() consult, so the
// entire existing pipeline — ComponentCache, AnalyzedComponent,
// extraction, the CLI — works on them unchanged. Generation is pure:
// the same (factor, seed) always produces byte-identical sources and
// seeds (a splitmix64 stream per component, nothing time- or
// address-dependent).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "extract/extractor.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

struct AmplifyOptions {
  /// Number of synthetic ecosystems. Each has as many components as the
  /// real Ext4 corpus (6), so the amplified corpus has factor x 6
  /// components total.
  std::size_t factor = 100;
  std::uint64_t seed = 42;

  bool operator==(const AmplifyOptions& other) const = default;
};

/// Generates the synthetic corpus and installs it in the registry,
/// returning the component names in pipeline order. Calling again with
/// the same options is a cheap no-op returning the same names; different
/// options replace the previous set under a new name prefix (so stale
/// ComponentCache entries can never be confused with the new sources).
/// Not safe to call concurrently with an analysis over amplified
/// components.
std::vector<std::string> amplifyCorpus(const AmplifyOptions& options);

/// Names of the currently installed amplified components (empty when the
/// amplifier has not run).
std::vector<std::string> amplifiedComponentNames();

/// Removes all amplified components from the registry.
void clearAmplifiedCorpus();

/// Extract options for the amplified ecosystem (field-based params attach
/// to the synthetic "ampfs" owner).
extract::ExtractOptions amplifiedExtractOptions();

// Registry lookups, consulted as fallbacks by componentSource(),
// headerSource() and componentSeeds().
std::optional<std::string_view> amplifiedSource(std::string_view component);
std::optional<std::string> amplifiedHeader(std::string_view name);
std::vector<taint::Seed> amplifiedSeeds(std::string_view component);

}  // namespace fsdep::corpus
