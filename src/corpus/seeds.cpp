// Taint seeds: the paper's "manual annotations" (§6) naming the variable
// that carries each configuration parameter inside each pre-selected
// function. Order matters within a component: the first seed listed gets
// the smallest label id, which makes it the anchor when a condition
// involves several of the component's own parameters.
#include "corpus/corpus.h"

#include "corpus/amplify.h"

namespace fsdep::corpus {

std::vector<taint::Seed> componentSeeds(std::string_view component) {
  using taint::Seed;
  if (component == "mke2fs") {
    return {
        // mke2fs_main locals.
        {"mke2fs_main", "fs_blocks", "mke2fs.size"},
        {"mke2fs_main", "blocksize", "mke2fs.blocksize"},
        {"mke2fs_main", "inode_size", "mke2fs.inode_size"},
        {"mke2fs_main", "inode_ratio", "mke2fs.inode_ratio"},
        {"mke2fs_main", "reserved_ratio", "mke2fs.reserved_ratio"},
        {"mke2fs_main", "blocks_per_group", "mke2fs.blocks_per_group"},
        {"mke2fs_main", "flex_bg_size", "mke2fs.flex_bg_size"},
        {"mke2fs_main", "revision", "mke2fs.revision"},
        {"mke2fs_main", "cluster_size", "mke2fs.cluster_size"},
        {"mke2fs_main", "resize_limit", "mke2fs.resize_limit"},
        {"mke2fs_main", "volume_label", "mke2fs.label"},
        {"mke2fs_main", "meta_bg", "mke2fs.meta_bg"},
        {"mke2fs_main", "resize_inode", "mke2fs.resize_inode"},
        {"mke2fs_main", "sparse_super2", "mke2fs.sparse_super2"},
        {"mke2fs_main", "bigalloc", "mke2fs.bigalloc"},
        {"mke2fs_main", "extents", "mke2fs.extent"},
        {"mke2fs_main", "has_64bit", "mke2fs.64bit"},
        {"mke2fs_main", "quota", "mke2fs.quota"},
        {"mke2fs_main", "has_journal", "mke2fs.has_journal"},
        {"mke2fs_main", "journal_dev", "mke2fs.journal_dev"},
        {"mke2fs_main", "uninit_bg", "mke2fs.uninit_bg"},
        {"mke2fs_main", "metadata_csum", "mke2fs.metadata_csum"},
        {"mke2fs_main", "flex_bg", "mke2fs.flex_bg"},
        {"mke2fs_main", "inline_data", "mke2fs.inline_data"},
        {"mke2fs_main", "encrypt", "mke2fs.encrypt"},
        // mke2fs_write_super parameters (intra-procedural analysis needs
        // its own annotations for the fill path).
        {"mke2fs_write_super", "fs_blocks", "mke2fs.size"},
        {"mke2fs_write_super", "blocksize", "mke2fs.blocksize"},
        {"mke2fs_write_super", "inode_size", "mke2fs.inode_size"},
        {"mke2fs_write_super", "reserved_ratio", "mke2fs.reserved_ratio"},
        {"mke2fs_write_super", "blocks_per_group", "mke2fs.blocks_per_group"},
        {"mke2fs_write_super", "inode_ratio", "mke2fs.inode_ratio"},
        {"mke2fs_write_super", "revision", "mke2fs.revision"},
        {"mke2fs_write_super", "flex_bg_size", "mke2fs.flex_bg_size"},
        {"mke2fs_write_super", "cluster_size", "mke2fs.cluster_size"},
        {"mke2fs_write_super", "volume_label", "mke2fs.label"},
        {"mke2fs_write_super", "resize_limit", "mke2fs.resize_limit"},
        {"mke2fs_write_super", "meta_bg", "mke2fs.meta_bg"},
        {"mke2fs_write_super", "resize_inode", "mke2fs.resize_inode"},
        {"mke2fs_write_super", "sparse_super2", "mke2fs.sparse_super2"},
        {"mke2fs_write_super", "bigalloc", "mke2fs.bigalloc"},
        {"mke2fs_write_super", "extents", "mke2fs.extent"},
        {"mke2fs_write_super", "has_64bit", "mke2fs.64bit"},
        {"mke2fs_write_super", "quota", "mke2fs.quota"},
        {"mke2fs_write_super", "has_journal", "mke2fs.has_journal"},
        {"mke2fs_write_super", "journal_dev", "mke2fs.journal_dev"},
        {"mke2fs_write_super", "uninit_bg", "mke2fs.uninit_bg"},
        {"mke2fs_write_super", "metadata_csum", "mke2fs.metadata_csum"},
        {"mke2fs_write_super", "flex_bg", "mke2fs.flex_bg"},
        {"mke2fs_write_super", "inline_data", "mke2fs.inline_data"},
        {"mke2fs_write_super", "encrypt", "mke2fs.encrypt"},
    };
  }
  if (component == "mount") {
    return {
        {"mount_main", "commit_interval", "mount.commit"},
        {"mount_main", "dax", "mount.dax"},
        {"mount_main", "ro", "mount.ro"},
        {"mount_main", "noload", "mount.noload"},
    };
  }
  if (component == "ext4") {
    return {
        {"ext4_parse_options", "commit_interval", "mount.commit"},
        {"ext4_parse_options", "stripe", "mount.stripe"},
        {"ext4_parse_options", "inode_readahead_blks", "mount.inode_readahead_blks"},
        {"ext4_parse_options", "max_batch_time", "mount.max_batch_time"},
        {"ext4_parse_options", "min_batch_time", "mount.min_batch_time"},
        {"ext4_fill_super", "dax", "mount.dax"},
        {"ext4_fill_super", "data_journal", "mount.data_journal"},
        {"ext4_fill_super", "data_writeback", "mount.data_writeback"},
        {"ext4_fill_super", "noload", "mount.noload"},
        {"ext4_fill_super", "ro", "mount.ro"},
        {"ext4_fill_super", "journal_checksum", "mount.journal_checksum"},
        {"ext4_fill_super", "journal_async_commit", "mount.journal_async_commit"},
        {"ext4_fill_super", "usrjquota", "mount.usrjquota"},
        {"ext4_fill_super", "jqfmt", "mount.jqfmt"},
        {"ext4_fill_super", "dioread_nolock", "mount.dioread_nolock"},
        {"ext4_fill_super", "delalloc", "mount.delalloc"},
        {"ext4_fill_super", "nobh", "mount.nobh"},
        {"ext4_setup_super", "min_batch_time", "mount.min_batch_time"},
        {"ext4_setup_super", "max_batch_time", "mount.max_batch_time"},
        {"ext4_remount", "data_journal", "mount.data_journal"},
        {"ext4_remount", "auto_da_alloc", "mount.auto_da_alloc"},
        {"ext4_online_defrag_check", "data_journal", "mount.data_journal"},
        {"ext4_online_defrag_check", "auto_da_alloc", "mount.auto_da_alloc"},
    };
  }
  if (component == "e4defrag") {
    return {
        {"e4defrag_main", "stat_only", "e4defrag.stat_only"},
        {"e4defrag_main", "verbose", "e4defrag.verbose"},
    };
  }
  if (component == "resize2fs") {
    return {
        {"resize2fs_main", "new_blocks", "resize2fs.size"},
        {"resize2fs_main", "online", "resize2fs.online"},
        {"resize2fs_main", "force", "resize2fs.force"},
        {"resize2fs_main", "minimize", "resize2fs.minimize"},
        {"resize2fs_check_geometry", "new_blocks", "resize2fs.size"},
        {"resize2fs_check_geometry", "online", "resize2fs.online"},
        {"resize2fs_check_geometry", "force", "resize2fs.force"},
    };
  }
  if (component == "e2fsck") {
    return {
        {"e2fsck_main", "force", "e2fsck.force"},
        {"e2fsck_main", "preen", "e2fsck.preen"},
        {"e2fsck_main", "yes_mode", "e2fsck.yes"},
        {"e2fsck_main", "no_mode", "e2fsck.no"},
        {"e2fsck_main", "backup_super", "e2fsck.backup_super"},
        {"e2fsck_main", "io_blocksize", "e2fsck.blocksize"},
    };
  }
  if (component == "mkfs_xfs") {
    return {
        {"mkfs_xfs_main", "fs_blocks", "mkfs_xfs.size"},
        {"mkfs_xfs_main", "blocksize", "mkfs_xfs.blocksize"},
        {"mkfs_xfs_main", "inodesize", "mkfs_xfs.inodesize"},
        {"mkfs_xfs_main", "agcount", "mkfs_xfs.agcount"},
        {"mkfs_xfs_main", "logblocks", "mkfs_xfs.logblocks"},
        {"mkfs_xfs_main", "imaxpct", "mkfs_xfs.imaxpct"},
        {"mkfs_xfs_main", "crc", "mkfs_xfs.crc"},
        {"mkfs_xfs_main", "ftype", "mkfs_xfs.ftype"},
        {"mkfs_xfs_main", "reflink", "mkfs_xfs.reflink"},
        {"mkfs_xfs_main", "rmapbt", "mkfs_xfs.rmapbt"},
        {"mkfs_xfs_main", "bigtime", "mkfs_xfs.bigtime"},
    };
  }
  if (component == "xfs") {
    return {
        {"xfs_parse_options", "logbufs", "xfs_mount.logbufs"},
        {"xfs_parse_options", "logbsize", "xfs_mount.logbsize"},
        {"xfs_parse_options", "wsync", "xfs_mount.wsync"},
        {"xfs_parse_options", "noalign", "xfs_mount.noalign"},
        {"xfs_parse_options", "norecovery", "xfs_mount.norecovery"},
        {"xfs_parse_options", "ro", "xfs_mount.ro"},
    };
  }
  if (component == "xfs_growfs") {
    return {
        {"xfs_growfs_main", "new_dblocks", "xfs_growfs.size"},
        {"xfs_growfs_main", "dry_run", "xfs_growfs.dry_run"},
    };
  }
  if (component == "mkfs_btrfs") {
    return {
        {"mkfs_btrfs_main", "sectorsize", "mkfs_btrfs.sectorsize"},
        {"mkfs_btrfs_main", "nodesize", "mkfs_btrfs.nodesize"},
        {"mkfs_btrfs_main", "num_devices", "mkfs_btrfs.num_devices"},
        {"mkfs_btrfs_main", "total_bytes", "mkfs_btrfs.size"},
        {"mkfs_btrfs_main", "data_profile", "mkfs_btrfs.data_profile"},
        {"mkfs_btrfs_main", "meta_profile", "mkfs_btrfs.meta_profile"},
        {"mkfs_btrfs_main", "mixed_bg", "mkfs_btrfs.mixed_bg"},
        {"mkfs_btrfs_main", "raid56", "mkfs_btrfs.raid56"},
        {"mkfs_btrfs_main", "no_holes", "mkfs_btrfs.no_holes"},
    };
  }
  if (component == "btrfs") {
    return {
        {"btrfs_parse_options", "max_inline", "btrfs_mount.max_inline"},
        {"btrfs_parse_options", "commit_interval", "btrfs_mount.commit"},
        {"btrfs_parse_options", "thread_pool", "btrfs_mount.thread_pool"},
        {"btrfs_parse_options", "compress", "btrfs_mount.compress"},
        {"btrfs_parse_options", "autodefrag", "btrfs_mount.autodefrag"},
        {"btrfs_parse_options", "nodatacow", "btrfs_mount.nodatacow"},
        {"btrfs_parse_options", "nodatasum", "btrfs_mount.nodatasum"},
    };
  }
  if (component == "btrfs_balance") {
    return {
        {"btrfs_balance_main", "convert_to", "btrfs_balance.convert"},
        {"btrfs_balance_main", "to_raid1", "btrfs_balance.convert_raid1"},
        {"btrfs_balance_main", "to_raid5", "btrfs_balance.convert_raid5"},
        {"btrfs_balance_main", "force", "btrfs_balance.force"},
    };
  }
  return amplifiedSeeds(component);
}

}  // namespace fsdep::corpus
