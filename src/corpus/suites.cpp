// Embedded test-suite manifests for the Table 2 coverage study. Each
// case text mirrors the shell of a real xfstests / e2fsprogs-test case;
// the coverage scanner counts which configuration parameters of the
// target ever appear in any case.
#include "corpus/corpus.h"

namespace fsdep::corpus {

std::vector<SuiteManifest> suiteManifests() {
  std::vector<SuiteManifest> out;

  SuiteManifest xfstest;
  xfstest.suite = "xfstest";
  xfstest.target = "ext4-ecosystem";
  xfstest.case_texts = {
      // generic/???-style cases exercising mkfs options.
      "_scratch_mkfs -b 4096 -I 256 && _scratch_mount",
      "_scratch_mkfs -b 1024 -N 2048 && _scratch_mount",
      "_scratch_mkfs -i 8192 -m 1 && _scratch_mount",
      "_scratch_mkfs -g 8192 -L scratchvol && _scratch_mount",
      "_scratch_mkfs -U deadbeef-dead-beef-dead-beefdeadbeef",
      "MKFS_OPTIONS=\"-O extent , has_journal\" _scratch_mkfs",
      "MKFS_OPTIONS=\"-O bigalloc , extent\" _scratch_mkfs",
      "MKFS_OPTIONS=\"-O 64bit , metadata_csum\" _scratch_mkfs",
      "MKFS_OPTIONS=\"-O resize_inode\" _scratch_mkfs",
      "MKFS_OPTIONS=\"-O sparse_super\" _scratch_mkfs",
      "MKFS_OPTIONS=\"-O encrypt\" _scratch_mkfs && _scratch_mount",
      // ext4/???-style cases exercising mount options.
      "_scratch_mount -o dax && run_fsx",
      "_scratch_mount -o data=journal && run_dbench",
      "_scratch_mount -o data=ordered",
      "_scratch_mount -o data=writeback , nodelalloc",
      "_scratch_mount -o commit=1 && sleep 5",
      "_scratch_mount -o stripe=64",
      "_scratch_mount -o noload",
      "_scratch_mount -o usrquota , grpquota",
      "_scratch_mount -o noquota",
      "_scratch_mount -o delalloc && run_aiodio",
      "_scratch_mount -o discard && run_fstrim",
  };
  out.push_back(std::move(xfstest));

  SuiteManifest fsck_suite;
  fsck_suite.suite = "e2fsprogs-test";
  fsck_suite.target = "e2fsck";
  fsck_suite.case_texts = {
      "e2fsck -f $TMPFILE > $OUT1 ; status=$?",
      "e2fsck -p $TMPFILE >> $OUT",
      "e2fsck -y $TMPFILE ; e2fsck -n $TMPFILE",
      "e2fsck -b 32768 -B 1024 $TMPFILE",
      "e2fsck -f -y $TMPFILE",
  };
  out.push_back(std::move(fsck_suite));

  SuiteManifest resize_suite;
  resize_suite.suite = "e2fsprogs-test";
  resize_suite.target = "resize2fs";
  resize_suite.case_texts = {
      "resize2fs -M $TMPFILE",
      "resize2fs -f $TMPFILE 1024",
      "resize2fs -p $TMPFILE 65536",
      "resize2fs -P $TMPFILE",
      "resize2fs -d 31 $TMPFILE 512",
      "resize2fs -b $TMPFILE && resize2fs -s $TMPFILE",
  };
  out.push_back(std::move(resize_suite));

  return out;
}

}  // namespace fsdep::corpus
