// Internal: raw source text of the embedded corpus, one constant per file.
#pragma once

namespace fsdep::corpus {

extern const char* kExt4FsHeader;   // "ext4_fs.h"
extern const char* kLibcHeader;     // "fsdep_libc.h"
extern const char* kMke2fsSource;   // "mke2fs.c"
extern const char* kMountSource;    // "mount.c"
extern const char* kExt4Source;     // "ext4.c"
extern const char* kE4defragSource; // "e4defrag.c"
extern const char* kResize2fsSource;// "resize2fs.c"
extern const char* kE2fsckSource;   // "e2fsck.c"

// The XFS mini-ecosystem (paper SS6 future work).
extern const char* kXfsFsHeader;    // "xfs_fs.h"
extern const char* kMkfsXfsSource;  // "mkfs_xfs.c"
extern const char* kXfsKernelSource;// "xfs.c"
extern const char* kXfsGrowfsSource;// "xfs_growfs.c"

// The BtrFS mini-ecosystem (paper SS6 future work).
extern const char* kBtrfsFsHeader;     // "btrfs_fs.h"
extern const char* kMkfsBtrfsSource;   // "mkfs_btrfs.c"
extern const char* kBtrfsKernelSource; // "btrfs.c"
extern const char* kBtrfsBalanceSource;// "btrfs_balance.c"

}  // namespace fsdep::corpus
