// Parse-once component cache. The seed pipeline re-lexed, re-parsed and
// re-resolved every corpus component once per scenario — four times per
// Table 5 run. Each component is instead parsed exactly once per process
// and the immutable frontend results (SourceManager, AST, Sema) are
// shared across scenarios and threads; only the taint analysis, whose
// state is per-run, is re-executed per (scenario x component) pair.
//
// Concurrency: the first requester of a component parses it; concurrent
// requesters block on a shared future and get the same entry (one parse,
// N consumers). Entries are keyed by component name and remember the
// AnalysisOptions they were built under — a request with different
// options invalidates the entry and rebuilds, so ablation runs never
// accidentally share state with default-option runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

/// One corpus component lexed, parsed, resolved and seeded — immutable
/// after construction, safe to share across threads. Taint analyzers are
/// built per consumer on top of the shared TU/Sema.
struct ComponentEntry {
  std::string name;
  bool is_kernel = false;
  taint::AnalysisOptions options;  ///< options this entry was built under
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<ast::TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  std::vector<taint::Seed> seeds;
  std::uint64_t parse_ns = 0;  ///< wall time of lex+parse+sema
};

class ComponentCache {
 public:
  /// Returns the shared entry for `name`, parsing it first if this is
  /// the first request (or the cached entry was built under different
  /// AnalysisOptions). Throws std::runtime_error for unknown components
  /// or corpus frontend bugs. `built` (optional) is set to true when
  /// this call did the parse, false when it reused or waited on one.
  std::shared_ptr<const ComponentEntry> get(const std::string& name,
                                            const taint::AnalysisOptions& options,
                                            bool* built = nullptr);

  /// Parses a component without touching any cache (the seed's
  /// per-scenario behavior; benchmarks use this as the baseline).
  static std::shared_ptr<const ComponentEntry> build(const std::string& name,
                                                     const taint::AnalysisOptions& options);

  /// Per-instance cache traffic. get() also mirrors these into the obs
  /// metrics registry ("cache.hits"/"cache.misses"/"cache.waits"), so
  /// --metrics and --report see the same numbers --stats prints.
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t size() const;

  /// Drops every entry (outstanding shared_ptrs stay valid).
  void clear();

  /// Process-wide cache used by AnalyzedComponent and the pipeline.
  static ComponentCache& global();

 private:
  struct Slot {
    taint::AnalysisOptions options;
    std::shared_future<std::shared_ptr<const ComponentEntry>> future;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace fsdep::corpus
