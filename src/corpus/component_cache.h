// Parse-once component cache. The seed pipeline re-lexed, re-parsed and
// re-resolved every corpus component once per scenario — four times per
// Table 5 run. Each component is instead parsed exactly once per process
// and the immutable frontend results (SourceManager, AST, Sema) are
// shared across scenarios and threads; only the taint analysis, whose
// state is per-run, is re-executed per (scenario x component) pair.
//
// Concurrency: the first requester of a component parses it; concurrent
// requesters block on a shared future and get the same entry (one parse,
// N consumers). Entries are keyed by component name and remember the
// AnalysisOptions they were built under — a request with different
// options invalidates the entry and rebuilds, so ablation runs never
// accidentally share state with default-option runs.
//
// Failure semantics: a builder failure is NOT cached. The failing slot
// is evicted as the builder publishes the exception, so requesters that
// were already waiting see the error once and the next request retries
// the build (a transient failure — OOM, a fault-injected source
// provider — must not poison the component forever). Slots are
// ticketed, so an evict-on-failure races neither clear() nor a
// replacement build that claimed the slot in the meantime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

/// One corpus component lexed, parsed, resolved and seeded — immutable
/// after construction, safe to share across threads. Taint analyzers are
/// built per consumer on top of the shared TU/Sema.
struct ComponentEntry {
  std::string name;
  bool is_kernel = false;
  taint::AnalysisOptions options;  ///< options this entry was built under
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<ast::TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  std::vector<taint::Seed> seeds;
  /// Shared Taint-IR compilation memo over this TU: every analyzer built
  /// on the entry executes the same compiled streams, so warm runs skip
  /// CFG construction and lowering. The cache is internally locked; the
  /// compiled programs themselves are immutable.
  std::shared_ptr<taint::ir::IrCache> ir_cache = std::make_shared<taint::ir::IrCache>();
  std::uint64_t parse_ns = 0;  ///< wall time of lex+parse+sema
};

class ComponentCache {
 public:
  /// Returns the shared entry for `name`, parsing it first if this is
  /// the first request (or the cached entry was built under different
  /// AnalysisOptions). Throws std::runtime_error for unknown components
  /// or corpus frontend bugs; the failed slot is evicted so a later
  /// call retries instead of rethrowing a stale error forever. `built`
  /// (optional) is set to true when this call did the parse, false when
  /// it reused or waited on one.
  std::shared_ptr<const ComponentEntry> get(const std::string& name,
                                            const taint::AnalysisOptions& options,
                                            bool* built = nullptr);

  /// Parses a component without touching any cache (the seed's
  /// per-scenario behavior; benchmarks use this as the baseline).
  static std::shared_ptr<const ComponentEntry> build(const std::string& name,
                                                     const taint::AnalysisOptions& options);

  /// Per-instance cache traffic. get() also mirrors these into the obs
  /// metrics registry ("cache.hits"/"cache.misses"/"cache.waits"/
  /// "cache.build_failures"), so --metrics and --report see the same
  /// numbers --stats prints.
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Builds that threw (and evicted their slot for retry).
  [[nodiscard]] std::uint64_t buildFailures() const {
    return build_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

  /// Drops every entry (outstanding shared_ptrs stay valid). Safe while
  /// builds are in flight: an in-flight builder publishes its result to
  /// the waiters it already has, notices its ticket no longer matches
  /// any slot, and leaves the post-clear() map alone.
  void clear();

  /// When disabled, get() builds fresh on every call (counted as a
  /// miss) — the CLI's --no-cache behavior. Entries already cached are
  /// kept but not consulted until re-enabled.
  void setEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  [[nodiscard]] bool isEnabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Test hook: replaces build() for this instance (e.g. a transient-
  /// failure source). Pass nullptr to restore the real builder. Not for
  /// production use.
  using Builder = std::function<std::shared_ptr<const ComponentEntry>(
      const std::string&, const taint::AnalysisOptions&)>;
  void setBuilderForTesting(Builder builder);

  /// Process-wide cache used by AnalyzedComponent and the pipeline.
  static ComponentCache& global();

 private:
  struct Slot {
    taint::AnalysisOptions options;
    std::shared_future<std::shared_ptr<const ComponentEntry>> future;
    /// Monotonic id of the build occupying this slot. The builder
    /// carries its ticket; eviction (on failure) only removes the slot
    /// when the ticket still matches, so a concurrent clear() +
    /// replacement build is never clobbered.
    std::uint64_t ticket = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  std::uint64_t next_ticket_ = 1;
  Builder builder_override_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> build_failures_{0};
};

}  // namespace fsdep::corpus
