// The XFS mini-ecosystem: the paper's §6 names XFS as the next target for
// the methodology ("we plan to apply the methodology to analyze other
// popular open-source file systems (e.g., XFS, BtrFS)"). Three
// components — mkfs.xfs, the kernel mount path, xfs_growfs — share the
// on-disk superblock through "xfs_fs.h", exactly like the Ext4 corpus
// shares "ext4_fs.h". No analyzer change is needed: only sources, seeds
// and a scenario differ.
#include "corpus/sources_internal.h"

namespace fsdep::corpus {

const char* kXfsFsHeader = R"CORPUS(
#ifndef XFS_FS_H
#define XFS_FS_H

typedef unsigned char  u8;
typedef unsigned short u16;
typedef unsigned int   u32;
typedef unsigned long  u64;

#define XFS_SB_MAGIC 1481003842
#define XFS_MIN_BLOCKSIZE 512
#define XFS_MAX_BLOCKSIZE 65536
#define XFS_MIN_AG_BLOCKS 64
#define XFS_MAX_AGCOUNT 1000000

/* Feature flags (xfs v5-era, trimmed). */
enum xfs_features {
  XFS_FEAT_CRC     = 0x0001,
  XFS_FEAT_FTYPE   = 0x0002,
  XFS_FEAT_REFLINK = 0x0004,
  XFS_FEAT_RMAPBT  = 0x0008,
  XFS_FEAT_BIGTIME = 0x0010
};

/* The XFS superblock (trimmed to the configuration-relevant fields). */
struct xfs_sb {
  u32 sb_magicnum;
  u32 sb_blocksize;
  u32 sb_dblocks;
  u32 sb_agblocks;
  u32 sb_agcount;
  u32 sb_logblocks;
  u16 sb_inodesize;
  u16 sb_sectsize;
  u8  sb_imax_pct;
  u32 sb_fdblocks;
  u32 sb_features;
};

#endif
)CORPUS";

const char* kMkfsXfsSource = R"CORPUS(
#include "fsdep_libc.h"
#include "xfs_fs.h"

/*
 * mkfs.xfs: option parsing, validation, superblock fill.
 */
int mkfs_xfs_main(int argc, char **argv, struct xfs_sb *sb) {
  long blocksize = 4096;
  long inodesize = 512;
  long agcount = 4;
  long logblocks = 2560;
  long imaxpct = 25;
  long fs_blocks = 0;
  int crc = 1;
  int ftype = 1;
  int reflink = 1;
  int rmapbt = 0;
  int bigtime = 0;
  int c = 0;

  while ((c = getopt(argc, argv, "b:i:d:l:p:m:")) != -1) {
    switch (c) {
      case 'b':
        blocksize = parse_num(optarg);
        break;
      case 'i':
        inodesize = parse_num(optarg);
        break;
      case 'd':
        agcount = parse_num(optarg);
        break;
      case 'l':
        logblocks = parse_num(optarg);
        break;
      case 'p':
        imaxpct = parse_num(optarg);
        break;
      case 'm':
        if (strcmp(optarg, "crc=0") == 0) {
          crc = 0;
        } else if (strcmp(optarg, "reflink=1") == 0) {
          reflink = 1;
        } else if (strcmp(optarg, "reflink=0") == 0) {
          reflink = 0;
        } else if (strcmp(optarg, "rmapbt=1") == 0) {
          rmapbt = 1;
        } else if (strcmp(optarg, "bigtime=1") == 0) {
          bigtime = 1;
        }
        break;
      default:
        usage();
        break;
    }
  }

  fs_blocks = strtol(argv[optind], 0, 10);

  /* ---- Self dependencies. ---- */
  if (blocksize < XFS_MIN_BLOCKSIZE || blocksize > XFS_MAX_BLOCKSIZE) {
    usage();
  }
  if (blocksize & (blocksize - 1)) {
    usage();
  }
  if (inodesize < 256 || inodesize > 2048) {
    usage();
  }
  if (agcount < 1 || agcount > XFS_MAX_AGCOUNT) {
    usage();
  }
  if (logblocks < 512 || logblocks > 1048576) {
    usage();
  }
  if (imaxpct < 0 || imaxpct > 100) {
    usage();
  }

  /* ---- Cross-parameter dependencies (the v5 feature matrix). ---- */
  if (reflink && !crc) {
    fatal_error("reflink requires the crc (v5) format");
  }
  if (rmapbt && !crc) {
    fatal_error("rmapbt requires the crc (v5) format");
  }
  if (bigtime && !crc) {
    fatal_error("bigtime requires the crc (v5) format");
  }
  if (inodesize * 2 > blocksize) {
    fatal_error("inode size cannot exceed half the block size");
  }
  if (fs_blocks < agcount * XFS_MIN_AG_BLOCKS) {
    fatal_error("too many allocation groups for the device size");
  }

  /* ---- Persist the configuration (the CCD bridge writes). ---- */
  sb->sb_magicnum = XFS_SB_MAGIC;
  sb->sb_blocksize = blocksize;
  sb->sb_dblocks = fs_blocks;
  sb->sb_agcount = agcount;
  sb->sb_agblocks = fs_blocks / agcount;
  sb->sb_inodesize = inodesize;
  sb->sb_logblocks = logblocks;
  sb->sb_imax_pct = imaxpct;
  sb->sb_fdblocks = fs_blocks - logblocks - 64;
  sb->sb_features |= (crc ? XFS_FEAT_CRC : 0);
  sb->sb_features |= (ftype ? XFS_FEAT_FTYPE : 0);
  sb->sb_features |= (reflink ? XFS_FEAT_REFLINK : 0);
  sb->sb_features |= (rmapbt ? XFS_FEAT_RMAPBT : 0);
  sb->sb_features |= (bigtime ? XFS_FEAT_BIGTIME : 0);
  return 0;
}
)CORPUS";

const char* kXfsKernelSource = R"CORPUS(
#include "fsdep_libc.h"
#include "xfs_fs.h"

#define EINVAL 22

static int xfs_sb_good_magic(struct xfs_sb *sb) {
  return sb->sb_magicnum == XFS_SB_MAGIC;
}

static int xfs_has_rmapbt(struct xfs_sb *sb) {
  return sb->sb_features & XFS_FEAT_RMAPBT;
}

/* Extracts the value part of an "opt=value" token, or 0. */
static char *xfs_opt_value(char *token) {
  long i = 0;
  while (token[i]) {
    if (token[i] == '=') {
      return token + i + 1;
    }
    i = i + 1;
  }
  return 0;
}

/*
 * Mount option parsing (xfs_parseargs in the real kernel).
 */
int xfs_parse_options(int argc, char **argv) {
  long logbufs = 8;
  long logbsize = 32768;
  int wsync = 0;
  int noalign = 0;
  int norecovery = 0;
  int ro = 0;
  int i = 0;

  for (i = 1; i < argc; i = i + 1) {
    if (strncmp(argv[i], "logbufs=", 8) == 0) {
      logbufs = parse_num(xfs_opt_value(argv[i]));
    } else if (strncmp(argv[i], "logbsize=", 9) == 0) {
      logbsize = parse_num(xfs_opt_value(argv[i]));
    } else if (strcmp(argv[i], "wsync") == 0) {
      wsync = 1;
    } else if (strcmp(argv[i], "noalign") == 0) {
      noalign = 1;
    } else if (strcmp(argv[i], "norecovery") == 0) {
      norecovery = 1;
    } else if (strcmp(argv[i], "ro") == 0) {
      ro = 1;
    }
  }

  if (logbufs < 2 || logbufs > 8) {
    return -EINVAL;
  }
  if (logbsize < 16384 || logbsize > 262144) {
    return -EINVAL;
  }
  if (norecovery && !ro) {
    com_err("xfs", "norecovery requires a read-only mount");
    return -EINVAL;
  }
  return wsync + noalign >= 0 ? 0 : -1;
}

/*
 * Superblock validation at mount (xfs_validate_sb_common).
 */
int xfs_mount_validate_sb(struct xfs_sb *sb) {
  if (!xfs_sb_good_magic(sb)) {
    return -EINVAL;
  }
  if (sb->sb_blocksize < XFS_MIN_BLOCKSIZE || sb->sb_blocksize > XFS_MAX_BLOCKSIZE) {
    return -EINVAL;
  }
  if (sb->sb_inodesize < 256 || sb->sb_inodesize > 2048) {
    return -EINVAL;
  }
  if (sb->sb_agcount < 1) {
    return -EINVAL;
  }
  if (sb->sb_imax_pct > 100) {
    return -EINVAL;
  }
  if (sb->sb_dblocks < sb->sb_agblocks) {
    return -EINVAL;
  }
  return 0;
}
)CORPUS";

const char* kXfsGrowfsSource = R"CORPUS(
#include "fsdep_libc.h"
#include "xfs_fs.h"

/*
 * xfs_growfs: online growing. XFS famously cannot shrink; the grow path
 * extends the last allocation group and appends new ones, both decisions
 * gated by mkfs.xfs-era geometry read back from the superblock.
 */
int xfs_growfs_main(int argc, char **argv, struct xfs_sb *sb) {
  long new_dblocks = 0;
  int dry_run = 0;
  int c = 0;
  long size_spec = 0;

  while ((c = getopt(argc, argv, "n")) != -1) {
    switch (c) {
      case 'n':
        dry_run = 1;
        break;
      default:
        usage();
        break;
    }
  }

  size_spec = parse_size(argv[optind]);
  new_dblocks = size_spec / sb->sb_blocksize;

  if (new_dblocks < sb->sb_dblocks) {
    fatal_error("xfs_growfs: shrinking is not supported");
    return -1;
  }

  if (sb->sb_features & XFS_FEAT_RMAPBT) {
    printf("growfs: extending the reverse-mapping btree per AG");
  }

  if (dry_run) {
    printf("growfs: dry run, no changes written");
    return 0;
  }

  if (new_dblocks == sb->sb_dblocks) {
    printf("growfs: nothing to do");
    return 0;
  }

  sb->sb_dblocks = new_dblocks;
  sb->sb_fdblocks = sb->sb_fdblocks + (new_dblocks - sb->sb_dblocks);
  return 0;
}
)CORPUS";

}  // namespace fsdep::corpus
