#include "corpus/pipeline.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "support/strings.h"
#include "support/thread_pool.h"

namespace fsdep::corpus {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsedNs(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

/// Process-global perf accumulators; every field is monotonic except
/// `jobs`, which records the width of the most recent parallel section.
struct StatsRegistry {
  std::atomic<std::uint64_t> analyze_ns{0};
  std::atomic<std::uint64_t> extract_ns{0};
  std::atomic<std::uint64_t> uncached_parse_ns{0};
  std::atomic<std::uint64_t> components_analyzed{0};
  std::atomic<std::uint64_t> merge_calls{0};
  std::atomic<std::uint64_t> merge_grew{0};
  std::atomic<std::uint64_t> cached_parse_ns{0};  ///< parse time of cache misses we triggered
  std::atomic<std::size_t> jobs{1};
};

StatsRegistry& statsRegistry() {
  static StatsRegistry registry;
  return registry;
}

std::size_t resolveJobs(const PipelineOptions& pipeline) {
  return pipeline.jobs == 0 ? ThreadPool::globalJobs() : pipeline.jobs;
}

}  // namespace

AnalyzedComponent::AnalyzedComponent(std::string name,
                                     const taint::AnalysisOptions& taint_options,
                                     bool use_cache) {
  if (use_cache) {
    bool built = false;
    entry_ = ComponentCache::global().get(name, taint_options, &built);
    if (built) {
      statsRegistry().cached_parse_ns.fetch_add(entry_->parse_ns, std::memory_order_relaxed);
    }
  } else {
    entry_ = ComponentCache::build(name, taint_options);
    statsRegistry().uncached_parse_ns.fetch_add(entry_->parse_ns, std::memory_order_relaxed);
  }
  analyzer_ = std::make_unique<taint::Analyzer>(*entry_->tu, *entry_->sema, taint_options);
  for (const taint::Seed& seed : entry_->seeds) {
    analyzer_->addSeed(seed);
  }
}

void AnalyzedComponent::analyze(const std::vector<std::string>& function_names) {
  std::vector<const ast::FunctionDecl*> fns;
  for (const std::string& fn_name : function_names) {
    const ast::FunctionDecl* fn = entry_->tu->findFunction(fn_name);
    if (fn == nullptr || !fn->isDefinition()) {
      throw std::runtime_error("corpus: no function '" + fn_name + "' in " + entry_->name);
    }
    fns.push_back(fn);
  }
  const auto start = Clock::now();
  analyzer_->run(fns);
  StatsRegistry& stats = statsRegistry();
  stats.analyze_ns.fetch_add(elapsedNs(start), std::memory_order_relaxed);
  stats.components_analyzed.fetch_add(1, std::memory_order_relaxed);
  stats.merge_calls.fetch_add(analyzer_->mergeCalls(), std::memory_order_relaxed);
  stats.merge_grew.fetch_add(analyzer_->mergeGrew(), std::memory_order_relaxed);
}

extract::ComponentRun AnalyzedComponent::asRun() const {
  extract::ComponentRun run;
  run.component = entry_->name;
  run.is_kernel = entry_->is_kernel;
  run.analyzer = analyzer_.get();
  run.sema = entry_->sema.get();
  return run;
}

namespace {

/// Analyzes every (component, functions) pair of `scenario` — in
/// parallel when jobs > 1 — and returns the components in selection
/// order (the order extraction must consume them in).
std::vector<std::unique_ptr<AnalyzedComponent>> analyzeScenarioComponents(
    const Scenario& scenario, const taint::AnalysisOptions& taint_options,
    const PipelineOptions& pipeline) {
  struct Item {
    const std::string* component;
    const std::vector<std::string>* functions;
  };
  std::vector<Item> items;
  items.reserve(scenario.selection.size());
  for (const auto& [component, functions] : scenario.selection) {
    items.push_back(Item{&component, &functions});
  }

  std::vector<std::unique_ptr<AnalyzedComponent>> components(items.size());
  ThreadPool::parallelFor(items.size(), resolveJobs(pipeline), [&](std::size_t i) {
    auto analyzed = std::make_unique<AnalyzedComponent>(*items[i].component, taint_options,
                                                        pipeline.use_cache);
    analyzed->analyze(*items[i].functions);
    components[i] = std::move(analyzed);
  });
  return components;
}

std::vector<model::Dependency> extractFrom(
    const std::vector<std::unique_ptr<AnalyzedComponent>>& components,
    const extract::ExtractOptions& options) {
  std::vector<extract::ComponentRun> runs;
  runs.reserve(components.size());
  for (const auto& component : components) runs.push_back(component->asRun());
  const auto start = Clock::now();
  std::vector<model::Dependency> deps = extract::extractDependencies(runs, options);
  statsRegistry().extract_ns.fetch_add(elapsedNs(start), std::memory_order_relaxed);
  return deps;
}

}  // namespace

std::vector<model::Dependency> runScenario(const Scenario& scenario,
                                           const taint::AnalysisOptions& taint_options,
                                           const extract::ExtractOptions* extract_override,
                                           const PipelineOptions& pipeline) {
  statsRegistry().jobs.store(resolveJobs(pipeline), std::memory_order_relaxed);
  const auto components = analyzeScenarioComponents(scenario, taint_options, pipeline);
  const extract::ExtractOptions options =
      extract_override != nullptr ? *extract_override : extractOptions();
  return extractFrom(components, options);
}

Table5Result runTable5(const taint::AnalysisOptions& taint_options,
                       const extract::ExtractOptions* extract_override,
                       const PipelineOptions& pipeline) {
  const std::size_t jobs = resolveJobs(pipeline);
  statsRegistry().jobs.store(jobs, std::memory_order_relaxed);

  const std::vector<Scenario> scenario_list = scenarios();
  const extract::ExtractOptions options =
      extract_override != nullptr ? *extract_override : extractOptions();
  // Touch the lazily-built corpus singletons before fanning out so no
  // worker races their first construction.
  (void)groundTruth();

  // Flatten the scenario x component matrix: every pair is independent,
  // so all of them can run concurrently — not just the components within
  // one scenario.
  struct Pair {
    std::size_t scenario;
    std::size_t slot;  ///< index within the scenario's selection order
    const std::string* component;
    const std::vector<std::string>* functions;
  };
  std::vector<Pair> pairs;
  std::vector<std::vector<std::unique_ptr<AnalyzedComponent>>> analyzed(scenario_list.size());
  for (std::size_t s = 0; s < scenario_list.size(); ++s) {
    analyzed[s].resize(scenario_list[s].selection.size());
    std::size_t slot = 0;
    for (const auto& [component, functions] : scenario_list[s].selection) {
      pairs.push_back(Pair{s, slot++, &component, &functions});
    }
  }

  ThreadPool::parallelFor(pairs.size(), jobs, [&](std::size_t i) {
    const Pair& pair = pairs[i];
    auto component = std::make_unique<AnalyzedComponent>(*pair.component, taint_options,
                                                         pipeline.use_cache);
    component->analyze(*pair.functions);
    analyzed[pair.scenario][pair.slot] = std::move(component);
  });

  // Extraction and scoring per scenario are independent of each other
  // too; results land in pre-sized slots, keeping scenario order fixed.
  Table5Result result;
  result.per_scenario.resize(scenario_list.size());
  ThreadPool::parallelFor(scenario_list.size(), jobs, [&](std::size_t s) {
    ScenarioResult sr;
    sr.id = scenario_list[s].id;
    sr.title = scenario_list[s].title;
    sr.deps = extractFrom(analyzed[s], options);
    sr.score = extract::scoreScenario(sr.id, sr.deps, groundTruth());
    result.per_scenario[s] = std::move(sr);
  });

  std::vector<std::vector<model::Dependency>> per_scenario_deps;
  std::vector<std::string> scenario_ids;
  per_scenario_deps.reserve(result.per_scenario.size());
  for (const ScenarioResult& sr : result.per_scenario) {
    per_scenario_deps.push_back(sr.deps);
    scenario_ids.push_back(sr.id);
  }
  result.unique_deps = extract::dedupeAcrossScenarios(per_scenario_deps);
  result.unique_score = extract::scoreUnique(per_scenario_deps, scenario_ids, groundTruth());
  return result;
}

PipelineStats pipelineStatsSnapshot() {
  const StatsRegistry& registry = statsRegistry();
  PipelineStats stats;
  stats.parse_ns = registry.cached_parse_ns.load(std::memory_order_relaxed) +
                   registry.uncached_parse_ns.load(std::memory_order_relaxed);
  stats.analyze_ns = registry.analyze_ns.load(std::memory_order_relaxed);
  stats.extract_ns = registry.extract_ns.load(std::memory_order_relaxed);
  stats.components_analyzed = registry.components_analyzed.load(std::memory_order_relaxed);
  stats.merge_calls = registry.merge_calls.load(std::memory_order_relaxed);
  stats.merge_grew = registry.merge_grew.load(std::memory_order_relaxed);
  stats.cache_hits = ComponentCache::global().hits();
  stats.cache_misses = ComponentCache::global().misses();
  stats.jobs = registry.jobs.load(std::memory_order_relaxed);
  return stats;
}

void resetPipelineStats() {
  StatsRegistry& registry = statsRegistry();
  registry.analyze_ns.store(0, std::memory_order_relaxed);
  registry.extract_ns.store(0, std::memory_order_relaxed);
  registry.uncached_parse_ns.store(0, std::memory_order_relaxed);
  registry.cached_parse_ns.store(0, std::memory_order_relaxed);
  registry.components_analyzed.store(0, std::memory_order_relaxed);
  registry.merge_calls.store(0, std::memory_order_relaxed);
  registry.merge_grew.store(0, std::memory_order_relaxed);
  registry.jobs.store(1, std::memory_order_relaxed);
}

std::string PipelineStats::format() const {
  const auto ms = [](std::uint64_t ns) { return static_cast<double>(ns) / 1e6; };
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "pipeline stats: jobs=%zu\n"
                "  parse    %9.2f ms  (cache: %llu hits, %llu misses)\n"
                "  analyze  %9.2f ms  (%llu component runs)\n"
                "  extract  %9.2f ms\n"
                "  merges   %llu calls, %llu grew (%.1f%% productive)\n",
                jobs, ms(parse_ns), static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses), ms(analyze_ns),
                static_cast<unsigned long long>(components_analyzed), ms(extract_ns),
                static_cast<unsigned long long>(merge_calls),
                static_cast<unsigned long long>(merge_grew),
                merge_calls > 0
                    ? 100.0 * static_cast<double>(merge_grew) / static_cast<double>(merge_calls)
                    : 0.0);
  return buf;
}

namespace {

std::string fpCell(const extract::LevelScore& level) {
  if (level.extracted == 0) return "-";
  if (level.false_positives == 0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d (%s)", level.false_positives,
                formatPercent(static_cast<double>(level.false_positives) /
                              static_cast<double>(level.extracted))
                    .c_str());
  return buf;
}

void appendRow(std::string& out, const std::string& title, const extract::ScenarioScore& score) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-48s | %3d %-10s | %3d %-10s | %3d %-10s\n", title.c_str(),
                score.sd.extracted, fpCell(score.sd).c_str(), score.cpd.extracted,
                fpCell(score.cpd).c_str(), score.ccd.extracted, fpCell(score.ccd).c_str());
  out += buf;
}

}  // namespace

std::string formatTable5(const Table5Result& result) {
  std::string out;
  out +=
      "Table 5: Evaluation Results of Extracting Multi-Level Configuration Dependencies\n";
  out += std::string(48, ' ') +
         " |  SD  FP        | CPD  FP        | CCD  FP\n";
  out += std::string(120, '-') + "\n";
  for (const ScenarioResult& sr : result.per_scenario) {
    appendRow(out, sr.title, sr.score);
  }
  out += std::string(120, '-') + "\n";
  appendRow(out, "Total Unique", result.unique_score);
  const int total = result.unique_score.totalExtracted();
  const int fps = result.unique_score.totalFalsePositives();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Overall: %d unique dependencies, %d false positives (%s)\n", total, fps,
                formatPercent(total > 0 ? static_cast<double>(fps) / total : 0.0).c_str());
  out += buf;
  return out;
}

}  // namespace fsdep::corpus
