#include "corpus/pipeline.h"

#include <cstdio>
#include <stdexcept>

#include "ast/parser.h"
#include "lex/preprocessor.h"
#include "support/strings.h"

namespace fsdep::corpus {

AnalyzedComponent::AnalyzedComponent(std::string name, const taint::AnalysisOptions& taint_options)
    : name_(std::move(name)), is_kernel_(isKernelComponent(name_)) {
  const std::string_view source = componentSource(name_);
  if (source.empty()) throw std::runtime_error("unknown corpus component: " + name_);

  const FileId file = sm_.addBuffer(name_ + ".c", std::string(source));
  lex::Preprocessor pp(sm_, diags_, [](std::string_view header) { return headerSource(header); });
  std::vector<lex::Token> tokens = pp.tokenize(file);
  if (diags_.hasErrors()) {
    throw std::runtime_error("corpus preprocessing failed for " + name_ + ":\n" +
                             diags_.render(sm_));
  }

  ast::Parser parser(std::move(tokens), diags_);
  tu_ = parser.parseTranslationUnit(name_ + ".c");
  if (diags_.hasErrors()) {
    throw std::runtime_error("corpus parse failed for " + name_ + ":\n" + diags_.render(sm_));
  }

  sema_ = std::make_unique<sema::Sema>(*tu_, diags_);
  if (!sema_->run()) {
    throw std::runtime_error("corpus sema failed for " + name_ + ":\n" + diags_.render(sm_));
  }

  analyzer_ = std::make_unique<taint::Analyzer>(*tu_, *sema_, taint_options);
  for (taint::Seed& seed : componentSeeds(name_)) {
    analyzer_->addSeed(std::move(seed));
  }
}

void AnalyzedComponent::analyze(const std::vector<std::string>& function_names) {
  std::vector<const ast::FunctionDecl*> fns;
  for (const std::string& fn_name : function_names) {
    const ast::FunctionDecl* fn = tu_->findFunction(fn_name);
    if (fn == nullptr || !fn->isDefinition()) {
      throw std::runtime_error("corpus: no function '" + fn_name + "' in " + name_);
    }
    fns.push_back(fn);
  }
  analyzer_->run(fns);
}

extract::ComponentRun AnalyzedComponent::asRun() const {
  extract::ComponentRun run;
  run.component = name_;
  run.is_kernel = is_kernel_;
  run.analyzer = analyzer_.get();
  run.sema = sema_.get();
  return run;
}

std::vector<model::Dependency> runScenario(const Scenario& scenario,
                                           const taint::AnalysisOptions& taint_options,
                                           const extract::ExtractOptions* extract_override) {
  std::vector<std::unique_ptr<AnalyzedComponent>> components;
  std::vector<extract::ComponentRun> runs;
  for (const auto& [component, functions] : scenario.selection) {
    auto analyzed = std::make_unique<AnalyzedComponent>(component, taint_options);
    analyzed->analyze(functions);
    components.push_back(std::move(analyzed));
    runs.push_back(components.back()->asRun());
  }
  const extract::ExtractOptions options =
      extract_override != nullptr ? *extract_override : extractOptions();
  return extract::extractDependencies(runs, options);
}

Table5Result runTable5(const taint::AnalysisOptions& taint_options,
                       const extract::ExtractOptions* extract_override) {
  Table5Result result;
  std::vector<std::vector<model::Dependency>> per_scenario_deps;
  std::vector<std::string> scenario_ids;

  for (const Scenario& scenario : scenarios()) {
    ScenarioResult sr;
    sr.id = scenario.id;
    sr.title = scenario.title;
    sr.deps = runScenario(scenario, taint_options, extract_override);
    sr.score = extract::scoreScenario(scenario.id, sr.deps, groundTruth());
    per_scenario_deps.push_back(sr.deps);
    scenario_ids.push_back(scenario.id);
    result.per_scenario.push_back(std::move(sr));
  }

  result.unique_deps = extract::dedupeAcrossScenarios(per_scenario_deps);
  result.unique_score = extract::scoreUnique(per_scenario_deps, scenario_ids, groundTruth());
  return result;
}

namespace {

std::string fpCell(const extract::LevelScore& level) {
  if (level.extracted == 0) return "-";
  if (level.false_positives == 0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d (%s)", level.false_positives,
                formatPercent(static_cast<double>(level.false_positives) /
                              static_cast<double>(level.extracted))
                    .c_str());
  return buf;
}

void appendRow(std::string& out, const std::string& title, const extract::ScenarioScore& score) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-48s | %3d %-10s | %3d %-10s | %3d %-10s\n", title.c_str(),
                score.sd.extracted, fpCell(score.sd).c_str(), score.cpd.extracted,
                fpCell(score.cpd).c_str(), score.ccd.extracted, fpCell(score.ccd).c_str());
  out += buf;
}

}  // namespace

std::string formatTable5(const Table5Result& result) {
  std::string out;
  out +=
      "Table 5: Evaluation Results of Extracting Multi-Level Configuration Dependencies\n";
  out += std::string(48, ' ') +
         " |  SD  FP        | CPD  FP        | CCD  FP\n";
  out += std::string(120, '-') + "\n";
  for (const ScenarioResult& sr : result.per_scenario) {
    appendRow(out, sr.title, sr.score);
  }
  out += std::string(120, '-') + "\n";
  appendRow(out, "Total Unique", result.unique_score);
  const int total = result.unique_score.totalExtracted();
  const int fps = result.unique_score.totalFalsePositives();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Overall: %d unique dependencies, %d false positives (%s)\n", total, fps,
                formatPercent(total > 0 ? static_cast<double>(fps) / total : 0.0).c_str());
  out += buf;
  return out;
}

}  // namespace fsdep::corpus
