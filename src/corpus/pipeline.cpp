#include "corpus/pipeline.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "json/json.h"
#include "model/serialization.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace fsdep::corpus {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsedNs(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

// All pipeline perf counters live in the obs metrics registry under the
// "pipeline." prefix — every mutation is a relaxed atomic add on a
// registered instrument, so concurrent pipeline runs and snapshots
// never race or tear (the seed's plain-uint64 aggregates did).
// Per-dimension series are labeled; --stats aggregates with counterSum.
obs::Registry& reg() { return obs::Registry::global(); }

std::size_t resolveJobs(const PipelineOptions& pipeline) {
  return pipeline.jobs == 0 ? ThreadPool::globalJobs() : pipeline.jobs;
}

// Disk-cache payloads are the scenario's dependency vector in the same
// JSON the CLI's --format=json emits (model::toJson), so the cache
// round-trips exactly the observable result. Dependency::evidence (a
// SourceRange) is not serialized — it is write-only downstream (never
// printed, scored, or exported), so a decoded vector is observationally
// identical to a freshly extracted one.
std::string encodeScenarioPayload(const std::vector<model::Dependency>& deps) {
  return json::writeCompact(model::toJson(deps));
}

std::optional<std::vector<model::Dependency>> decodeScenarioPayload(
    const std::string& payload) {
  Result<json::Value> parsed = json::parse(payload);
  if (!parsed.ok()) return std::nullopt;
  Result<std::vector<model::Dependency>> deps = model::dependenciesFromJson(parsed.value());
  if (!deps.ok()) return std::nullopt;
  return std::move(deps).take();
}

}  // namespace

CacheKey scenarioCacheKey(const Scenario& scenario,
                          const taint::AnalysisOptions& taint_options,
                          const extract::ExtractOptions& extract_options) {
  CacheKey key;
  key.mix("scenario-result");
  key.mix(scenario.id);
  key.mix(static_cast<std::uint64_t>(scenario.selection.size()));
  for (const auto& [component, functions] : scenario.selection) {
    key.mix(component);
    key.mix(contentDigest(componentSource(component)));
    key.mix(static_cast<std::uint64_t>(functions.size()));
    for (const std::string& fn : functions) key.mix(fn);
  }
  mixOptions(key, taint_options);
  mixOptions(key, extract_options);
  return key;
}

AnalyzedComponent::AnalyzedComponent(std::string name,
                                     const taint::AnalysisOptions& taint_options,
                                     bool use_cache) {
  if (use_cache) {
    bool built = false;
    entry_ = ComponentCache::global().get(name, taint_options, &built);
    if (built) {
      reg().counter("pipeline.parse_ns", {{"component", name}, {"mode", "cached"}})
          .add(entry_->parse_ns);
    }
  } else {
    entry_ = ComponentCache::build(name, taint_options);
    reg().counter("pipeline.parse_ns", {{"component", name}, {"mode", "fresh"}})
        .add(entry_->parse_ns);
  }
  analyzer_ = std::make_unique<taint::Analyzer>(*entry_->tu, *entry_->sema, taint_options);
  // Share the entry's Taint-IR memo: repeat analyses of a cached
  // component reuse the compiled instruction streams instead of
  // re-lowering (and re-building CFGs) per analyzer.
  analyzer_->setIrCache(entry_->ir_cache);
  for (const taint::Seed& seed : entry_->seeds) {
    analyzer_->addSeed(seed);
  }
}

void AnalyzedComponent::analyze(const std::vector<std::string>& function_names) {
  std::vector<const ast::FunctionDecl*> fns;
  for (const std::string& fn_name : function_names) {
    const ast::FunctionDecl* fn = entry_->tu->findFunction(fn_name);
    if (fn == nullptr || !fn->isDefinition()) {
      throw std::runtime_error("corpus: no function '" + fn_name + "' in " + entry_->name);
    }
    fns.push_back(fn);
  }
  const auto start = Clock::now();
  analyzer_->run(fns);
  const obs::Labels by_component{{"component", entry_->name}};
  reg().counter("pipeline.analyze_ns", by_component).add(elapsedNs(start));
  reg().counter("pipeline.components_analyzed", by_component).add(1);
  reg().counter("pipeline.merge_calls", by_component).add(analyzer_->mergeCalls());
  reg().counter("pipeline.merge_grew", by_component).add(analyzer_->mergeGrew());
  reg().counter("taint.stmt_visits", by_component).add(analyzer_->stmtVisits());
  reg().counter("taint.ir_instrs", by_component).add(analyzer_->irInstrs());
  reg().counter("taint.ir_visits", by_component).add(analyzer_->irVisits());
  reg().gauge("taint.arena_bytes", by_component)
      .set(static_cast<std::uint64_t>(analyzer_->arenaBytes()));
}

extract::ComponentRun AnalyzedComponent::asRun() const {
  extract::ComponentRun run;
  run.component = entry_->name;
  run.is_kernel = entry_->is_kernel;
  run.analyzer = analyzer_.get();
  run.sema = entry_->sema.get();
  return run;
}

namespace {

/// Analyzes every (component, functions) pair of `scenario` — in
/// parallel when jobs > 1 — and returns the components in selection
/// order (the order extraction must consume them in).
std::vector<std::unique_ptr<AnalyzedComponent>> analyzeScenarioComponents(
    const Scenario& scenario, const taint::AnalysisOptions& taint_options,
    const PipelineOptions& pipeline) {
  struct Item {
    const std::string* component;
    const std::vector<std::string>* functions;
  };
  std::vector<Item> items;
  items.reserve(scenario.selection.size());
  for (const auto& [component, functions] : scenario.selection) {
    items.push_back(Item{&component, &functions});
  }

  std::vector<std::unique_ptr<AnalyzedComponent>> components(items.size());
  ThreadPool::parallelFor(items.size(), resolveJobs(pipeline), [&](std::size_t i) {
    obs::Span span("pipeline", "analyze");
    span.arg("scenario", scenario.id);
    span.arg("component", *items[i].component);
    auto analyzed = std::make_unique<AnalyzedComponent>(*items[i].component, taint_options,
                                                        pipeline.use_cache);
    analyzed->analyze(*items[i].functions);
    components[i] = std::move(analyzed);
  });
  return components;
}

std::vector<model::Dependency> extractFrom(
    const std::vector<std::unique_ptr<AnalyzedComponent>>& components,
    const extract::ExtractOptions& options, const std::string& scenario_id) {
  obs::Span span("pipeline", "extract");
  span.arg("scenario", scenario_id);
  std::vector<extract::ComponentRun> runs;
  runs.reserve(components.size());
  for (const auto& component : components) runs.push_back(component->asRun());
  const auto start = Clock::now();
  std::vector<model::Dependency> deps = extract::extractDependencies(runs, options);
  const obs::Labels by_scenario{{"scenario", scenario_id}};
  reg().counter("pipeline.extract_ns", by_scenario).add(elapsedNs(start));
  reg().counter("pipeline.deps_extracted", by_scenario).add(deps.size());
  return deps;
}

}  // namespace

std::vector<model::Dependency> runScenario(const Scenario& scenario,
                                           const taint::AnalysisOptions& taint_options,
                                           const extract::ExtractOptions* extract_override,
                                           const PipelineOptions& pipeline) {
  obs::Span span("pipeline", "scenario");
  span.arg("scenario", scenario.id);
  reg().gauge("pipeline.jobs").set(resolveJobs(pipeline));
  const extract::ExtractOptions options =
      extract_override != nullptr ? *extract_override : extractOptions();

  // Warm path: an unchanged scenario loads its result straight from the
  // on-disk cache — no parse, sema, taint or extraction at all. A
  // corrupt or undecodable payload degrades to a recompute (and the
  // store below overwrites the bad entry).
  DiskCache& disk = DiskCache::global();
  const bool disk_enabled = pipeline.use_disk_cache && disk.enabled();
  CacheKey key;
  if (disk_enabled) {
    key = scenarioCacheKey(scenario, taint_options, options);
    if (std::optional<std::string> payload = disk.load(key)) {
      if (std::optional<std::vector<model::Dependency>> deps =
              decodeScenarioPayload(*payload)) {
        span.arg("disk_cache", "hit");
        return *std::move(deps);
      }
      FSDEP_LOG_WARN("cache", "disk cache: undecodable payload for scenario %s; recomputing",
                     scenario.id.c_str());
    }
  }

  const auto components = analyzeScenarioComponents(scenario, taint_options, pipeline);
  std::vector<model::Dependency> deps = extractFrom(components, options, scenario.id);
  if (disk_enabled) disk.store(key, encodeScenarioPayload(deps));
  return deps;
}

Table5Result runTable5(const taint::AnalysisOptions& taint_options,
                       const extract::ExtractOptions* extract_override,
                       const PipelineOptions& pipeline) {
  obs::Span table5_span("pipeline", "table5");
  const std::size_t jobs = resolveJobs(pipeline);
  table5_span.arg("jobs", static_cast<std::uint64_t>(jobs));
  reg().gauge("pipeline.jobs").set(jobs);

  const std::vector<Scenario> scenario_list = scenarios();
  const extract::ExtractOptions options =
      extract_override != nullptr ? *extract_override : extractOptions();
  // Touch the lazily-built corpus singletons before fanning out so no
  // worker races their first construction.
  (void)groundTruth();

  // Per-scenario disk-cache probe: a scenario whose result loads from
  // disk contributes no (scenario x component) pairs at all — its
  // parse/analyze/extract cost is skipped entirely.
  DiskCache& disk = DiskCache::global();
  const bool disk_enabled = pipeline.use_disk_cache && disk.enabled();
  std::vector<CacheKey> keys(scenario_list.size());
  std::vector<std::optional<std::vector<model::Dependency>>> cached(scenario_list.size());
  if (disk_enabled) {
    for (std::size_t s = 0; s < scenario_list.size(); ++s) {
      keys[s] = scenarioCacheKey(scenario_list[s], taint_options, options);
      if (std::optional<std::string> payload = disk.load(keys[s])) {
        cached[s] = decodeScenarioPayload(*payload);
      }
    }
  }

  // Flatten the scenario x component matrix: every pair is independent,
  // so all of them can run concurrently — not just the components within
  // one scenario.
  struct Pair {
    std::size_t scenario;
    std::size_t slot;  ///< index within the scenario's selection order
    const std::string* component;
    const std::vector<std::string>* functions;
  };
  std::vector<Pair> pairs;
  std::vector<std::vector<std::unique_ptr<AnalyzedComponent>>> analyzed(scenario_list.size());
  for (std::size_t s = 0; s < scenario_list.size(); ++s) {
    if (cached[s].has_value()) continue;
    analyzed[s].resize(scenario_list[s].selection.size());
    std::size_t slot = 0;
    for (const auto& [component, functions] : scenario_list[s].selection) {
      pairs.push_back(Pair{s, slot++, &component, &functions});
    }
  }

  ThreadPool::parallelFor(pairs.size(), jobs, [&](std::size_t i) {
    const Pair& pair = pairs[i];
    obs::Span span("pipeline", "analyze");
    span.arg("scenario", scenario_list[pair.scenario].id);
    span.arg("component", *pair.component);
    auto component = std::make_unique<AnalyzedComponent>(*pair.component, taint_options,
                                                         pipeline.use_cache);
    component->analyze(*pair.functions);
    analyzed[pair.scenario][pair.slot] = std::move(component);
  });

  // Extraction and scoring per scenario are independent of each other
  // too; results land in pre-sized slots, keeping scenario order fixed.
  Table5Result result;
  result.per_scenario.resize(scenario_list.size());
  ThreadPool::parallelFor(scenario_list.size(), jobs, [&](std::size_t s) {
    ScenarioResult sr;
    sr.id = scenario_list[s].id;
    sr.title = scenario_list[s].title;
    if (cached[s].has_value()) {
      sr.deps = *std::move(cached[s]);
    } else {
      sr.deps = extractFrom(analyzed[s], options, sr.id);
      if (disk_enabled) disk.store(keys[s], encodeScenarioPayload(sr.deps));
    }
    sr.score = extract::scoreScenario(sr.id, sr.deps, groundTruth());
    result.per_scenario[s] = std::move(sr);
  });

  std::vector<std::vector<model::Dependency>> per_scenario_deps;
  std::vector<std::string> scenario_ids;
  per_scenario_deps.reserve(result.per_scenario.size());
  for (const ScenarioResult& sr : result.per_scenario) {
    per_scenario_deps.push_back(sr.deps);
    scenario_ids.push_back(sr.id);
  }
  result.unique_deps = extract::dedupeAcrossScenarios(per_scenario_deps);
  result.unique_score = extract::scoreUnique(per_scenario_deps, scenario_ids, groundTruth());
  return result;
}

PipelineStats pipelineStatsSnapshot() {
  const obs::Registry& registry = reg();
  PipelineStats stats;
  stats.parse_ns = registry.counterSum("pipeline.parse_ns");
  stats.analyze_ns = registry.counterSum("pipeline.analyze_ns");
  stats.extract_ns = registry.counterSum("pipeline.extract_ns");
  stats.components_analyzed = registry.counterSum("pipeline.components_analyzed");
  stats.merge_calls = registry.counterSum("pipeline.merge_calls");
  stats.merge_grew = registry.counterSum("pipeline.merge_grew");
  stats.cache_hits = ComponentCache::global().hits();
  stats.cache_misses = ComponentCache::global().misses();
  stats.jobs = static_cast<std::size_t>(registry.gaugeValue("pipeline.jobs"));
  if (stats.jobs == 0) stats.jobs = 1;  // snapshot before any run
  return stats;
}

void resetPipelineStats() {
  // Zeroes the pipeline's own series only: cache traffic (like the
  // ComponentCache contents themselves) survives a stats reset.
  reg().reset("pipeline.");
  reg().gauge("pipeline.jobs").set(1);
}

std::string PipelineStats::format() const {
  const auto ms = [](std::uint64_t ns) { return static_cast<double>(ns) / 1e6; };
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "pipeline stats: jobs=%zu\n"
                "  parse    %9.2f ms  (cache: %llu hits, %llu misses)\n"
                "  analyze  %9.2f ms  (%llu component runs)\n"
                "  extract  %9.2f ms\n"
                "  merges   %llu calls, %llu grew (%.1f%% productive)\n",
                jobs, ms(parse_ns), static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses), ms(analyze_ns),
                static_cast<unsigned long long>(components_analyzed), ms(extract_ns),
                static_cast<unsigned long long>(merge_calls),
                static_cast<unsigned long long>(merge_grew),
                merge_calls > 0
                    ? 100.0 * static_cast<double>(merge_grew) / static_cast<double>(merge_calls)
                    : 0.0);
  return buf;
}

namespace {

std::string fpCell(const extract::LevelScore& level) {
  if (level.extracted == 0) return "-";
  if (level.false_positives == 0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d (%s)", level.false_positives,
                formatPercent(static_cast<double>(level.false_positives) /
                              static_cast<double>(level.extracted))
                    .c_str());
  return buf;
}

void appendRow(std::string& out, const std::string& title, const extract::ScenarioScore& score) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-48s | %3d %-10s | %3d %-10s | %3d %-10s\n", title.c_str(),
                score.sd.extracted, fpCell(score.sd).c_str(), score.cpd.extracted,
                fpCell(score.cpd).c_str(), score.ccd.extracted, fpCell(score.ccd).c_str());
  out += buf;
}

}  // namespace

std::string formatTable5(const Table5Result& result) {
  std::string out;
  out +=
      "Table 5: Evaluation Results of Extracting Multi-Level Configuration Dependencies\n";
  out += std::string(48, ' ') +
         " |  SD  FP        | CPD  FP        | CCD  FP\n";
  out += std::string(120, '-') + "\n";
  for (const ScenarioResult& sr : result.per_scenario) {
    appendRow(out, sr.title, sr.score);
  }
  out += std::string(120, '-') + "\n";
  appendRow(out, "Total Unique", result.unique_score);
  const int total = result.unique_score.totalExtracted();
  const int fps = result.unique_score.totalFalsePositives();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Overall: %d unique dependencies, %d false positives (%s)\n", total, fps,
                formatPercent(total > 0 ? static_cast<double>(fps) / total : 0.0).c_str());
  out += buf;
  return out;
}

}  // namespace fsdep::corpus
