// The embedded Ext4-ecosystem corpus.
//
// The paper analyzes the real Ext4 kernel sources and e2fsprogs utilities.
// This repository ships a faithful, self-contained mirror of their
// configuration-handling structure, written in the fsdep C subset: six
// components (mke2fs, mount, ext4, e4defrag, resize2fs, e2fsck) sharing
// the on-disk metadata structures through "ext4_fs.h" — the bridge the
// extractor exploits (paper §4.1).
//
// Everything a scenario run needs is here: sources, taint seeds (the
// paper's manual annotations), per-scenario pre-selected functions,
// labelled ground truth, the parameter registry, manuals (for ConDocCk),
// and test-suite manifests (for Table 2).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "extract/extractor.h"
#include "extract/scoring.h"
#include "model/config_model.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {

/// Names of the six Ext4-ecosystem components, in pipeline order.
std::vector<std::string> componentNames();

/// The XFS mini-ecosystem (paper SS6 future work): mkfs.xfs, the kernel
/// mount path, xfs_growfs. Analyzed with the very same pipeline; only
/// sources, seeds and the metadata owner differ.
std::vector<std::string> xfsComponentNames();

/// The BtrFS mini-ecosystem (also paper SS6): mkfs.btrfs, the kernel
/// mount path, btrfs-balance.
std::vector<std::string> btrfsComponentNames();

/// True for the kernel-side component ("ext4").
bool isKernelComponent(std::string_view component);

/// Source text of a component's main translation unit ("<name>.c").
std::string_view componentSource(std::string_view component);

/// Source text of a shared header ("ext4_fs.h", "fsdep_libc.h"), or
/// nullopt when unknown. Usable as a lex::IncludeResolver.
std::optional<std::string> headerSource(std::string_view name);

/// Taint seeds (manual annotations) for a component.
std::vector<taint::Seed> componentSeeds(std::string_view component);

/// A usage scenario (row of Tables 3 and 5).
struct Scenario {
  std::string id;     ///< "s1".."s4"
  std::string title;  ///< e.g. "mke2fs - mount - Ext4"
  /// component -> pre-selected functions to analyze.
  std::map<std::string, std::vector<std::string>> selection;
};

std::vector<Scenario> scenarios();

/// Extraction options tuned for the corpus (parser types, error
/// functions).
extract::ExtractOptions extractOptions();

/// Same, with the XFS superblock as the metadata owner.
extract::ExtractOptions xfsExtractOptions();

/// Same, with the BtrFS superblock as the metadata owner.
extract::ExtractOptions btrfsExtractOptions();

/// The XFS usage scenario (mkfs.xfs - mount - XFS - xfs_growfs).
Scenario xfsScenario();

/// The BtrFS usage scenario (mkfs.btrfs - mount - BtrFS - btrfs-balance).
Scenario btrfsScenario();

/// The labelled ground truth for Table 5 scoring.
const std::vector<extract::GroundTruthEntry>& groundTruth();

/// The parameter registry of the ecosystem (Table 2 totals).
const model::Ecosystem& ecosystem();

/// Structured manual (man-page) for a component: each entry is a
/// constraint the documentation states, as a model::Dependency claim plus
/// the sentence it comes from. ConDocCk diffs these claims against the
/// extracted dependencies: a code dependency with no claim is
/// undocumented; a claim whose bounds/operator disagree with the code is
/// inaccurate; a claim with no code dependency behind it is stale.
struct ManualEntry {
  model::Dependency claim;
  std::string text;
};
std::vector<ManualEntry> manualFor(std::string_view component);
/// All manuals concatenated.
std::vector<ManualEntry> allManuals();

/// Test-suite manifest: which parameters a suite's cases mention. Used by
/// the Table 2 coverage study.
struct SuiteManifest {
  std::string suite;            ///< "xfstest", "e2fsprogs-test"
  std::string target;           ///< component whose params are counted
  std::vector<std::string> case_texts;  ///< shell-ish test case bodies
};
std::vector<SuiteManifest> suiteManifests();

}  // namespace fsdep::corpus
