#include "corpus/corpus.h"

#include "corpus/amplify.h"
#include "corpus/sources_internal.h"

namespace fsdep::corpus {

std::vector<std::string> componentNames() {
  return {"mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"};
}

std::vector<std::string> xfsComponentNames() { return {"mkfs_xfs", "xfs", "xfs_growfs"}; }

std::vector<std::string> btrfsComponentNames() {
  return {"mkfs_btrfs", "btrfs", "btrfs_balance"};
}

bool isKernelComponent(std::string_view component) {
  return component == "ext4" || component == "xfs" || component == "btrfs";
}

std::string_view componentSource(std::string_view component) {
  if (component == "mke2fs") return kMke2fsSource;
  if (component == "mount") return kMountSource;
  if (component == "ext4") return kExt4Source;
  if (component == "e4defrag") return kE4defragSource;
  if (component == "resize2fs") return kResize2fsSource;
  if (component == "e2fsck") return kE2fsckSource;
  if (component == "mkfs_xfs") return kMkfsXfsSource;
  if (component == "xfs") return kXfsKernelSource;
  if (component == "xfs_growfs") return kXfsGrowfsSource;
  if (component == "mkfs_btrfs") return kMkfsBtrfsSource;
  if (component == "btrfs") return kBtrfsKernelSource;
  if (component == "btrfs_balance") return kBtrfsBalanceSource;
  if (const auto amp = amplifiedSource(component)) return *amp;
  return {};
}

std::optional<std::string> headerSource(std::string_view name) {
  if (name == "ext4_fs.h") return std::string(kExt4FsHeader);
  if (name == "fsdep_libc.h") return std::string(kLibcHeader);
  if (name == "xfs_fs.h") return std::string(kXfsFsHeader);
  if (name == "btrfs_fs.h") return std::string(kBtrfsFsHeader);
  return amplifiedHeader(name);
}

extract::ExtractOptions extractOptions() {
  extract::ExtractOptions options;
  options.metadata_owner = "ext4";
  options.parser_types = {
      {"parse_num", "integer"},
      {"parse_size", "size"},
  };
  options.error_functions = {"usage", "fatal_error", "com_err", "exit"};
  options.enable_bridging = true;
  return options;
}

extract::ExtractOptions xfsExtractOptions() {
  extract::ExtractOptions options = extractOptions();
  options.metadata_owner = "xfs";
  return options;
}

extract::ExtractOptions btrfsExtractOptions() {
  extract::ExtractOptions options = extractOptions();
  options.metadata_owner = "btrfs";
  return options;
}

}  // namespace fsdep::corpus
