// On-disk incremental cache (ROADMAP item 1). The in-memory
// ComponentCache dies with the process, so every CLI invocation paid the
// full re-parse + re-analysis cost from scratch — PR 6's profile
// attributes 35% of the amplified-corpus run to re-parse alone. This
// cache persists pipeline results across processes: entries are
// content-hashed by (component source digests x AnalysisOptions
// fingerprint x ExtractOptions fingerprint x cache-schema version), so a
// cold start skips parse, sema, taint and extraction for every request
// whose inputs are unchanged, and any source or option change falls back
// to a full recompute without ever serving stale data.
//
// Robustness contract: a missing, truncated, corrupt or
// schema-mismatched entry is a MISS, never an error — the cache can be
// deleted, torn mid-write, or populated by a different fsdep version at
// any time and the pipeline still produces correct (just slower)
// results. Stores are atomic (temp file + rename) and bounded: beyond
// `max_entries` the least-recently-used entries are evicted (hits
// refresh an entry's mtime).
//
// Traffic is mirrored into the obs metrics registry as
// cache.disk.{hits,misses,stores,evictions}, so --stats/--metrics/
// --report see disk-cache behavior the same way they see the in-memory
// ComponentCache.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace fsdep::taint {
struct AnalysisOptions;
}
namespace fsdep::extract {
struct ExtractOptions;
}

namespace fsdep::corpus {

/// Bump on any change to what a payload contains or how keys are built;
/// entries written under other schema versions are never read (they live
/// in a separate subdirectory and age out via LRU of their own tree).
/// v2: AnalysisOptions::compile_ir joined the key fingerprint (Taint-IR
/// engine vs legacy AST walk), so v1 trees no longer match any key.
inline constexpr int kDiskCacheSchemaVersion = 2;

/// Incremental 2x64-bit FNV-1a hasher for cache keys. Two independent
/// offset bases give a 128-bit identity — enough that distinct requests
/// colliding is not a practical concern. Length-prefixing every chunk
/// keeps concatenation unambiguous ("ab"+"c" != "a"+"bc").
class CacheKey {
 public:
  CacheKey& mix(std::string_view bytes);
  // String literals would otherwise decay to pointer and win the bool
  // overload (a standard conversion beats the string_view constructor).
  CacheKey& mix(const char* bytes) { return mix(std::string_view(bytes)); }
  CacheKey& mix(std::uint64_t v);
  CacheKey& mix(bool b) { return mix(static_cast<std::uint64_t>(b)); }
  CacheKey& mix(int v) { return mix(static_cast<std::uint64_t>(v)); }

  /// 32 lowercase hex chars; the entry's file name.
  [[nodiscard]] std::string hex() const;

  bool operator==(const CacheKey& other) const = default;

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ull;
  std::uint64_t hi_ = 0x6c62272e07bb0142ull;
};

/// One-shot FNV-1a digest of a component's source text.
std::uint64_t contentDigest(std::string_view text);

/// Folds every field of the analysis/extract options into the key, so an
/// --inter result can never be served to an --intra request (and vice
/// versa for bridging, legacy passes, trace budgets, parser tables, ...).
void mixOptions(CacheKey& key, const taint::AnalysisOptions& options);
void mixOptions(CacheKey& key, const extract::ExtractOptions& options);

struct DiskCacheConfig {
  /// Root directory; "" disables the cache. Entries live under
  /// <dir>/v<schema_version>/.
  std::string dir;
  /// LRU bound on the number of entries in the schema directory.
  std::size_t max_entries = 512;
  /// Tests override to exercise schema-bump invalidation.
  int schema_version = kDiskCacheSchemaVersion;
};

class DiskCache {
 public:
  DiskCache() = default;
  explicit DiskCache(DiskCacheConfig config) { configure(std::move(config)); }

  /// (Re)points the cache; "" disables it. Creates the schema directory
  /// lazily on first store.
  void configure(DiskCacheConfig config);

  [[nodiscard]] bool enabled() const;
  [[nodiscard]] std::string dir() const;

  /// Returns the payload stored under `key`, or nullopt on any kind of
  /// absence: no entry, unreadable file, truncated or corrupt content,
  /// schema or key mismatch. A hit refreshes the entry's LRU position.
  std::optional<std::string> load(const CacheKey& key);

  /// Persists `payload` under `key` (atomic temp-file + rename), then
  /// evicts least-recently-used entries beyond max_entries. Failures are
  /// silent (the cache is best-effort); corrupt leftovers read as
  /// misses.
  void store(const CacheKey& key, std::string_view payload);

  /// Removes every entry of the configured schema directory. Safe to
  /// call while other threads load/store — they observe misses.
  void invalidateAll();

  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stores() const {
    return stores_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Number of entries currently on disk (test/diagnostic helper).
  [[nodiscard]] std::size_t entryCount() const;

  /// Process-wide instance, configured by the CLI from --cache-dir /
  /// FSDEP_CACHE_DIR and consulted by pipeline.cpp. Disabled until
  /// configured.
  static DiskCache& global();

 private:
  [[nodiscard]] std::string schemaDir() const;  ///< callers hold mu_
  [[nodiscard]] std::string entryPath(const CacheKey& key) const;
  void evictOverflow();  ///< callers hold mu_

  mutable std::mutex mu_;
  DiskCacheConfig config_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace fsdep::corpus
