#include "corpus/component_cache.h"

#include <chrono>
#include <stdexcept>

#include "ast/parser.h"
#include "corpus/corpus.h"
#include "lex/preprocessor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsdep::corpus {

std::shared_ptr<const ComponentEntry> ComponentCache::build(
    const std::string& name, const taint::AnalysisOptions& options) {
  obs::Span span("pipeline", "parse");
  span.arg("component", name);
  const auto start = std::chrono::steady_clock::now();

  auto entry = std::make_shared<ComponentEntry>();
  entry->name = name;
  entry->is_kernel = isKernelComponent(name);
  entry->options = options;

  const std::string_view source = componentSource(name);
  if (source.empty()) throw std::runtime_error("unknown corpus component: " + name);

  const FileId file = entry->sm.addBuffer(name + ".c", std::string(source));
  lex::Preprocessor pp(entry->sm, entry->diags,
                       [](std::string_view header) { return headerSource(header); });
  std::vector<lex::Token> tokens = pp.tokenize(file);
  if (entry->diags.hasErrors()) {
    throw std::runtime_error("corpus preprocessing failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  ast::Parser parser(std::move(tokens), entry->diags);
  entry->tu = parser.parseTranslationUnit(name + ".c");
  if (entry->diags.hasErrors()) {
    throw std::runtime_error("corpus parse failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  entry->sema = std::make_unique<sema::Sema>(*entry->tu, entry->diags);
  if (!entry->sema->run()) {
    throw std::runtime_error("corpus sema failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  entry->seeds = componentSeeds(name);
  entry->parse_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  return entry;
}

std::shared_ptr<const ComponentEntry> ComponentCache::get(
    const std::string& name, const taint::AnalysisOptions& options, bool* built) {
  static obs::Counter& hit_counter = obs::Registry::global().counter("cache.hits");
  static obs::Counter& miss_counter = obs::Registry::global().counter("cache.misses");
  static obs::Counter& wait_counter = obs::Registry::global().counter("cache.waits");

  std::shared_future<std::shared_ptr<const ComponentEntry>> future;
  std::promise<std::shared_ptr<const ComponentEntry>> promise;
  bool is_builder = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = slots_.find(name);
    if (it != slots_.end() && it->second.options == options) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      // The per-component series costs a registry lookup, but we are
      // already under the cache mutex — hit/miss attribution per
      // component is what the profile's cache rows are built from.
      obs::Registry::global().counter("cache.hits", {{"component", name}}).add();
      future = it->second.future;
    } else {
      // First request, or an options mismatch: (re)build. Prior waiters
      // keep their shared_future; this slot now serves the new options.
      misses_.fetch_add(1, std::memory_order_relaxed);
      miss_counter.add();
      obs::Registry::global().counter("cache.misses", {{"component", name}}).add();
      future = promise.get_future().share();
      slots_[name] = Slot{options, future};
      is_builder = true;
    }
  }

  if (built != nullptr) *built = is_builder;
  if (is_builder) {
    if (obs::Trace::enabled()) {
      std::string args;
      obs::appendArg(args, "component", name);
      obs::Trace::instant("cache", "cache-miss", std::move(args));
    }
    try {
      promise.set_value(build(name, options));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  } else if (obs::Trace::enabled()) {
    std::string args;
    obs::appendArg(args, "component", name);
    obs::Trace::instant("cache", "cache-hit", std::move(args));
  }
  // A hit whose entry is still being parsed by another thread blocks
  // here; make that wait visible — it is the cache's whole contention
  // story (one parse, N waiters).
  if (!is_builder && future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    wait_counter.add();
    obs::Span wait_span("cache", "cache-wait");
    wait_span.arg("component", name);
    return future.get();
  }
  return future.get();  // rethrows the builder's exception for every waiter
}

std::size_t ComponentCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void ComponentCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

ComponentCache& ComponentCache::global() {
  static ComponentCache cache;
  return cache;
}

}  // namespace fsdep::corpus
