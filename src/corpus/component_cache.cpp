#include "corpus/component_cache.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "ast/parser.h"
#include "corpus/corpus.h"
#include "lex/preprocessor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsdep::corpus {

std::shared_ptr<const ComponentEntry> ComponentCache::build(
    const std::string& name, const taint::AnalysisOptions& options) {
  obs::Span span("pipeline", "parse");
  span.arg("component", name);
  const auto start = std::chrono::steady_clock::now();

  auto entry = std::make_shared<ComponentEntry>();
  entry->name = name;
  entry->is_kernel = isKernelComponent(name);
  entry->options = options;

  const std::string_view source = componentSource(name);
  if (source.empty()) throw std::runtime_error("unknown corpus component: " + name);

  const FileId file = entry->sm.addBuffer(name + ".c", std::string(source));
  lex::Preprocessor pp(entry->sm, entry->diags,
                       [](std::string_view header) { return headerSource(header); });
  std::vector<lex::Token> tokens = pp.tokenize(file);
  if (entry->diags.hasErrors()) {
    throw std::runtime_error("corpus preprocessing failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  ast::Parser parser(std::move(tokens), entry->diags);
  entry->tu = parser.parseTranslationUnit(name + ".c");
  if (entry->diags.hasErrors()) {
    throw std::runtime_error("corpus parse failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  entry->sema = std::make_unique<sema::Sema>(*entry->tu, entry->diags);
  if (!entry->sema->run()) {
    throw std::runtime_error("corpus sema failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  entry->seeds = componentSeeds(name);
  entry->parse_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  return entry;
}

std::shared_ptr<const ComponentEntry> ComponentCache::get(
    const std::string& name, const taint::AnalysisOptions& options, bool* built) {
  static obs::Counter& hit_counter = obs::Registry::global().counter("cache.hits");
  static obs::Counter& miss_counter = obs::Registry::global().counter("cache.misses");
  static obs::Counter& wait_counter = obs::Registry::global().counter("cache.waits");
  static obs::Counter& failure_counter =
      obs::Registry::global().counter("cache.build_failures");

  std::shared_future<std::shared_ptr<const ComponentEntry>> future;
  std::promise<std::shared_ptr<const ComponentEntry>> promise;
  bool is_builder = false;
  bool is_hit = false;
  std::uint64_t ticket = 0;
  Builder builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const bool enabled = enabled_.load(std::memory_order_relaxed);
    const auto it = slots_.find(name);
    if (enabled && it != slots_.end() && it->second.options == options) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      is_hit = true;
      future = it->second.future;
    } else {
      // First request, options mismatch, or caching disabled: (re)build.
      // Prior waiters keep their shared_future; this slot now serves
      // the new build. The ticket identifies it so failure eviction and
      // clear() can't remove someone else's slot. With caching disabled
      // the build stays private — existing entries are left untouched
      // for when the cache is re-enabled (ticket 0 never matches a
      // slot, so the failure path leaves the map alone too).
      misses_.fetch_add(1, std::memory_order_relaxed);
      future = promise.get_future().share();
      if (enabled) {
        ticket = next_ticket_++;
        slots_[name] = Slot{options, future, ticket};
      }
      is_builder = true;
      builder = builder_override_;
    }
  }

  // Registry lookups for the per-component labeled series walk the
  // registry's own lock-path; do them after mu_ is released so a serve
  // daemon's hot hit path never serializes cache traffic on them.
  if (is_hit) {
    hit_counter.add();
    obs::Registry::global().counter("cache.hits", {{"component", name}}).add();
  } else {
    miss_counter.add();
    obs::Registry::global().counter("cache.misses", {{"component", name}}).add();
  }

  if (built != nullptr) *built = is_builder;
  if (is_builder) {
    if (obs::Trace::enabled()) {
      std::string args;
      obs::appendArg(args, "component", name);
      obs::Trace::instant("cache", "cache-miss", std::move(args));
    }
    try {
      promise.set_value(builder ? builder(name, options) : build(name, options));
    } catch (...) {
      // A failed build must not poison the slot: waiters that already
      // hold the shared_future see this exception once, but the slot is
      // evicted so the next get() retries. Only evict our own ticket —
      // clear() or a replacement build may have raced us.
      {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto slot = slots_.find(name);
        if (slot != slots_.end() && slot->second.ticket == ticket) {
          slots_.erase(slot);
        }
      }
      build_failures_.fetch_add(1, std::memory_order_relaxed);
      failure_counter.add();
      obs::Registry::global().counter("cache.build_failures", {{"component", name}}).add();
      promise.set_exception(std::current_exception());
    }
  } else if (obs::Trace::enabled()) {
    std::string args;
    obs::appendArg(args, "component", name);
    obs::Trace::instant("cache", "cache-hit", std::move(args));
  }
  // A hit whose entry is still being parsed by another thread blocks
  // here; make that wait visible — it is the cache's whole contention
  // story (one parse, N waiters).
  if (!is_builder && future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    wait_counter.add();
    obs::Span wait_span("cache", "cache-wait");
    wait_span.arg("component", name);
    return future.get();
  }
  return future.get();  // waiters see a failed build's exception once
}

std::size_t ComponentCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void ComponentCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  // In-flight builders keep their promise/shared_future alive
  // independently of the map; dropping their slots here just means a
  // failure eviction later finds no matching ticket and does nothing.
  slots_.clear();
}

void ComponentCache::setBuilderForTesting(Builder builder) {
  const std::lock_guard<std::mutex> lock(mu_);
  builder_override_ = std::move(builder);
}

ComponentCache& ComponentCache::global() {
  static ComponentCache cache;
  return cache;
}

}  // namespace fsdep::corpus
