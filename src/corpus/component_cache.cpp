#include "corpus/component_cache.h"

#include <chrono>
#include <stdexcept>

#include "ast/parser.h"
#include "corpus/corpus.h"
#include "lex/preprocessor.h"

namespace fsdep::corpus {

std::shared_ptr<const ComponentEntry> ComponentCache::build(
    const std::string& name, const taint::AnalysisOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  auto entry = std::make_shared<ComponentEntry>();
  entry->name = name;
  entry->is_kernel = isKernelComponent(name);
  entry->options = options;

  const std::string_view source = componentSource(name);
  if (source.empty()) throw std::runtime_error("unknown corpus component: " + name);

  const FileId file = entry->sm.addBuffer(name + ".c", std::string(source));
  lex::Preprocessor pp(entry->sm, entry->diags,
                       [](std::string_view header) { return headerSource(header); });
  std::vector<lex::Token> tokens = pp.tokenize(file);
  if (entry->diags.hasErrors()) {
    throw std::runtime_error("corpus preprocessing failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  ast::Parser parser(std::move(tokens), entry->diags);
  entry->tu = parser.parseTranslationUnit(name + ".c");
  if (entry->diags.hasErrors()) {
    throw std::runtime_error("corpus parse failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  entry->sema = std::make_unique<sema::Sema>(*entry->tu, entry->diags);
  if (!entry->sema->run()) {
    throw std::runtime_error("corpus sema failed for " + name + ":\n" +
                             entry->diags.render(entry->sm));
  }

  entry->seeds = componentSeeds(name);
  entry->parse_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  return entry;
}

std::shared_ptr<const ComponentEntry> ComponentCache::get(
    const std::string& name, const taint::AnalysisOptions& options, bool* built) {
  std::shared_future<std::shared_ptr<const ComponentEntry>> future;
  std::promise<std::shared_ptr<const ComponentEntry>> promise;
  bool is_builder = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = slots_.find(name);
    if (it != slots_.end() && it->second.options == options) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      future = it->second.future;
    } else {
      // First request, or an options mismatch: (re)build. Prior waiters
      // keep their shared_future; this slot now serves the new options.
      misses_.fetch_add(1, std::memory_order_relaxed);
      future = promise.get_future().share();
      slots_[name] = Slot{options, future};
      is_builder = true;
    }
  }

  if (built != nullptr) *built = is_builder;
  if (is_builder) {
    try {
      promise.set_value(build(name, options));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows the builder's exception for every waiter
}

std::size_t ComponentCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void ComponentCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

ComponentCache& ComponentCache::global() {
  static ComponentCache cache;
  return cache;
}

}  // namespace fsdep::corpus
