#include "corpus/amplify.h"

#include <map>
#include <mutex>

#include "corpus/corpus.h"

namespace fsdep::corpus {
namespace {

// splitmix64: tiny, deterministic, and good enough to diversify shapes.
std::uint64_t nextRand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t pick(std::uint64_t& state, std::size_t bound) {
  return static_cast<std::size_t>(nextRand(state) % bound);
}

struct ParamShape {
  const char* name;
  long def;
  long lo;
  long hi;
  bool flag;
};

// The configuration vocabulary, modeled on the real corpus components.
constexpr ParamShape kPool[] = {
    {"blocksize", 4096, 1024, 65536, false}, {"inodesize", 256, 128, 4096, false},
    {"agcount", 4, 1, 1024, false},          {"logblocks", 2048, 512, 262144, false},
    {"imaxpct", 25, 0, 100, false},          {"reserved", 5, 0, 50, false},
    {"cluster", 16, 1, 512, false},          {"stride", 8, 0, 8192, false},
    {"stripe", 16, 0, 8192, false},          {"ratio", 16384, 1024, 1048576, false},
    {"journal", 1, 0, 1, true},              {"csum", 0, 0, 1, true},
    {"compress", 0, 0, 1, true},             {"flexbg", 1, 0, 1, true},
    {"quota", 0, 0, 1, true},                {"lazy", 1, 0, 1, true},
    {"discard", 0, 0, 1, true},              {"inline_data", 0, 0, 1, true},
};
constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(c >= 'a' && c <= 'z' ? c - 'a' + 'A' : c);
  return out;
}

std::string ampHeaderSource(std::size_t ecosystem) {
  const std::string tag = std::to_string(ecosystem);
  std::string h;
  h += "#ifndef AMP_FS_" + tag + "_H\n#define AMP_FS_" + tag + "_H\n\n";
  h += "#define AMP_SB_MAGIC 1095583060\n\n";
  std::uint64_t mask = 1;
  for (const ParamShape& p : kPool) {
    if (!p.flag) continue;
    h += "#define AMP_FEAT_" + upper(p.name) + " " + std::to_string(mask) + "\n";
    mask <<= 1;
  }
  // One superblock struct per synthetic ecosystem, in its own header:
  // the components of an ecosystem bridge through their own struct, so
  // cross-component dependencies stay within an ecosystem (extraction
  // grows linearly with the factor, not quadratically) and each
  // component parses a constant-size header no matter how large the
  // amplified corpus is.
  h += "\n/* Synthetic superblock of amplified ecosystem " + tag + ". */\n";
  h += "struct amp_sb_" + tag + " {\n  long s_magic;\n";
  for (const ParamShape& p : kPool) {
    if (!p.flag) h += "  long s_" + std::string(p.name) + ";\n";
  }
  h += "  long s_features;\n};\n\n#endif\n";
  return h;
}

/// Picks `count` distinct pool indices matching `want_flag`.
std::vector<std::size_t> pickParams(std::uint64_t& rng, std::size_t count, bool want_flag) {
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    if (kPool[i].flag == want_flag) all.push_back(i);
  }
  std::vector<std::size_t> out;
  while (out.size() < count && !all.empty()) {
    const std::size_t j = pick(rng, all.size());
    out.push_back(all[j]);
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(j));
  }
  return out;
}

struct AmpComponent {
  std::string source;
  std::vector<taint::Seed> seeds;
};

/// mkfs-style writer: getopt chain into locals, parse/clamp helper
/// chains, cross-parameter validation, and a write_super sink that only
/// inter-procedural analysis can connect to the locals.
AmpComponent genWriter(const std::string& c, const std::string& sbt,
                       std::uint64_t& rng) {
  const auto nums = pickParams(rng, 3 + pick(rng, 5), false);
  const auto flags = pickParams(rng, 2 + pick(rng, 4), true);
  const std::size_t parse_depth = 1 + pick(rng, 2);
  const std::size_t clamp_depth = 1 + pick(rng, 3);
  const bool mutual = pick(rng, 4) == 0;

  AmpComponent out;
  std::string& s = out.source;
  s += "#include \"fsdep_libc.h\"\n#include \"" + sbt + ".h\"\n\n";
  s += "/*\n * " + c + ": synthetic mkfs-style writer (amplified corpus).\n */\n";

  // Parse helper chain ending at parse_num.
  for (std::size_t d = parse_depth; d > 0; --d) {
    const std::string inner =
        d == parse_depth ? "parse_num(s)" : c + "_parse" + std::to_string(d + 1) + "(s)";
    s += "static long " + c + "_parse" + std::to_string(d) + "(char *s) {\n";
    s += "  return " + inner + ";\n}\n\n";
  }
  // Clamp helper chain.
  for (std::size_t d = clamp_depth; d > 0; --d) {
    s += "static long " + c + "_clamp" + std::to_string(d) + "(long v, long lo, long hi) {\n";
    if (d == clamp_depth) {
      s += "  if (v < lo) {\n    return lo;\n  }\n  if (v > hi) {\n    return hi;\n  }\n";
      s += "  return v;\n}\n\n";
    } else {
      s += "  return " + c + "_clamp" + std::to_string(d + 1) + "(v, lo, hi);\n}\n\n";
    }
  }
  if (mutual) {
    s += "static long " + c + "_align_down(long v, long step);\n\n";
    s += "static long " + c + "_align_up(long v, long step) {\n";
    s += "  if (v % step == 0) {\n    return v;\n  }\n";
    s += "  return " + c + "_align_down(v + 1, step);\n}\n\n";
    s += "static long " + c + "_align_down(long v, long step) {\n";
    s += "  if (v % step == 0) {\n    return v;\n  }\n";
    s += "  return " + c + "_align_up(v - 1, step);\n}\n\n";
  }

  // The cross-function sink: labels reach these field stores only when
  // argument bindings flow into the callee.
  s += "static void " + c + "_write_super(struct " + sbt + " *sb";
  for (std::size_t i = 0; i < nums.size(); ++i) s += ", long n" + std::to_string(i);
  for (std::size_t i = 0; i < flags.size(); ++i) s += ", int f" + std::to_string(i);
  s += ") {\n  sb->s_magic = AMP_SB_MAGIC;\n";
  for (std::size_t i = 0; i < nums.size(); ++i) {
    const std::string field = "sb->s_" + std::string(kPool[nums[i]].name);
    switch (pick(rng, 4)) {
      case 0: s += "  " + field + " = n" + std::to_string(i) + ";\n"; break;
      case 1: s += "  " + field + " = n" + std::to_string(i) + " / 4;\n"; break;
      case 2: s += "  " + field + " = n" + std::to_string(i) + " * 2;\n"; break;
      default: s += "  " + field + " = n" + std::to_string(i) + " - 1;\n"; break;
    }
  }
  for (std::size_t i = 0; i < flags.size(); ++i) {
    s += "  sb->s_features |= (f" + std::to_string(i) + " ? AMP_FEAT_" +
         upper(kPool[flags[i]].name) + " : 0);\n";
  }
  s += "}\n\n";

  // main: getopt chain, validation, sink call.
  s += "int " + c + "_main(int argc, char **argv, struct " + sbt + " *sb) {\n";
  std::string optstring;
  for (std::size_t i = 0; i < nums.size() + flags.size(); ++i) {
    optstring += static_cast<char>('a' + i);
    if (i < nums.size()) optstring += ':';
  }
  for (std::size_t i = 0; i < nums.size(); ++i) {
    const ParamShape& p = kPool[nums[i]];
    s += "  long " + std::string(p.name) + " = " + std::to_string(p.def) + ";\n";
    out.seeds.push_back({c + "_main", p.name, c + "." + p.name});
  }
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const ParamShape& p = kPool[flags[i]];
    s += "  int " + std::string(p.name) + " = " + std::to_string(p.def) + ";\n";
    out.seeds.push_back({c + "_main", p.name, c + "." + p.name});
  }
  s += "  int c = 0;\n\n";
  s += "  while ((c = getopt(argc, argv, \"" + optstring + "\")) != -1) {\n    switch (c) {\n";
  for (std::size_t i = 0; i < nums.size(); ++i) {
    s += "      case '" + std::string(1, static_cast<char>('a' + i)) + "':\n";
    s += "        " + std::string(kPool[nums[i]].name) + " = " + c + "_parse1(optarg);\n";
    s += "        break;\n";
  }
  for (std::size_t i = 0; i < flags.size(); ++i) {
    s += "      case '" + std::string(1, static_cast<char>('a' + nums.size() + i)) + "':\n";
    s += "        " + std::string(kPool[flags[i]].name) + " = 1;\n";
    s += "        break;\n";
  }
  s += "      default:\n        usage();\n        break;\n    }\n  }\n\n";

  // Normalization through the helper chains.
  {
    const ParamShape& p = kPool[nums[0]];
    s += "  " + std::string(p.name) + " = " + c + "_clamp1(" + p.name + ", " +
         std::to_string(p.lo) + ", " + std::to_string(p.hi) + ");\n";
  }
  if (mutual && nums.size() > 1) {
    const ParamShape& p = kPool[nums[1]];
    s += "  " + std::string(p.name) + " = " + c + "_align_up(" + p.name + ", 8);\n";
  }
  s += "\n  /* ---- Self dependencies. ---- */\n";
  for (const std::size_t idx : nums) {
    if (pick(rng, 5) < 3) {
      const ParamShape& p = kPool[idx];
      s += "  if (" + std::string(p.name) + " < " + std::to_string(p.lo) + " || " + p.name +
           " > " + std::to_string(p.hi) + ") {\n    usage();\n  }\n";
    }
  }
  s += "\n  /* ---- Cross-parameter dependencies. ---- */\n";
  const std::size_t checks = 1 + pick(rng, 3);
  for (std::size_t k = 0; k < checks; ++k) {
    if (nums.size() > 1 && pick(rng, 2) == 0) {
      const std::size_t a = pick(rng, nums.size());
      std::size_t b = pick(rng, nums.size());
      if (b == a) b = (a + 1) % nums.size();
      s += "  if (" + std::string(kPool[nums[a]].name) + " * 2 > " + kPool[nums[b]].name +
           ") {\n    fatal_error(\"" + c + ": " + kPool[nums[a]].name + " too large for " +
           kPool[nums[b]].name + "\");\n  }\n";
    } else if (flags.size() > 1) {
      const std::size_t a = pick(rng, flags.size());
      std::size_t b = pick(rng, flags.size());
      if (b == a) b = (a + 1) % flags.size();
      s += "  if (" + std::string(kPool[flags[a]].name) + " && !" + kPool[flags[b]].name +
           ") {\n    fatal_error(\"" + c + ": " + kPool[flags[a]].name + " requires " +
           kPool[flags[b]].name + "\");\n  }\n";
    }
  }
  s += "\n  " + c + "_write_super(sb";
  for (const std::size_t idx : nums) s += ", " + std::string(kPool[idx].name);
  for (const std::size_t idx : flags) s += ", " + std::string(kPool[idx].name);
  s += ");\n  return 0;\n}\n";
  return out;
}

/// mount-style parser: "name=value" option strings into locals, range
/// and cross checks, and a field store behind an apply helper.
AmpComponent genMount(const std::string& c, const std::string& sbt,
                      std::uint64_t& rng) {
  const auto nums = pickParams(rng, 2 + pick(rng, 3), false);
  const auto flags = pickParams(rng, 2 + pick(rng, 3), true);

  AmpComponent out;
  std::string& s = out.source;
  s += "#include \"fsdep_libc.h\"\n#include \"" + sbt + ".h\"\n\n";
  s += "#define EINVAL 22\n\n";
  s += "/*\n * " + c + ": synthetic mount-option parser (amplified corpus).\n */\n";

  const std::string sink_field = "s_" + std::string(kPool[nums[0]].name);
  s += "static void " + c + "_apply(struct " + sbt + " *sb, long v) {\n";
  s += "  sb->" + sink_field + " = v;\n}\n\n";

  s += "int " + c + "_parse_options(int argc, char **argv, struct " + sbt + " *sb) {\n";
  for (const std::size_t idx : nums) {
    const ParamShape& p = kPool[idx];
    s += "  long " + std::string(p.name) + " = " + std::to_string(p.def) + ";\n";
    out.seeds.push_back({c + "_parse_options", p.name, c + "." + p.name});
  }
  for (const std::size_t idx : flags) {
    const ParamShape& p = kPool[idx];
    s += "  int " + std::string(p.name) + " = " + std::to_string(p.def) + ";\n";
    out.seeds.push_back({c + "_parse_options", p.name, c + "." + p.name});
  }
  s += "  int i = 0;\n\n  for (i = 1; i < argc; i = i + 1) {\n";
  bool first = true;
  for (const std::size_t idx : nums) {
    const std::string name = kPool[idx].name;
    const std::string prefix = name + "=";
    s += std::string("    ") + (first ? "if" : "} else if") + " (strncmp(argv[i], \"" + prefix +
         "\", " + std::to_string(prefix.size()) + ") == 0) {\n";
    s += "      " + name + " = parse_num(argv[i] + " + std::to_string(prefix.size()) + ");\n";
    first = false;
  }
  for (const std::size_t idx : flags) {
    const std::string name = kPool[idx].name;
    s += "    } else if (strcmp(argv[i], \"" + name + "\") == 0) {\n";
    s += "      " + name + " = 1;\n";
  }
  s += "    }\n  }\n\n";
  for (const std::size_t idx : nums) {
    const ParamShape& p = kPool[idx];
    s += "  if (" + std::string(p.name) + " < " + std::to_string(p.lo) + " || " + p.name + " > " +
         std::to_string(p.hi) + ") {\n    return -EINVAL;\n  }\n";
  }
  if (!flags.empty()) {
    const ParamShape& f = kPool[flags[0]];
    const ParamShape& n = kPool[nums[0]];
    s += "  if (" + std::string(f.name) + " && " + n.name + " > " + std::to_string(n.hi / 2) +
         ") {\n    com_err(\"" + c + "\", \"" + f.name + " limits " + n.name +
         "\");\n    return -EINVAL;\n  }\n";
  }
  if (flags.size() > 1) {
    s += "  if (" + std::string(kPool[flags[1]].name) + " && !" + kPool[flags[0]].name +
         ") {\n    com_err(\"" + c + "\", \"" + kPool[flags[1]].name + " requires " +
         kPool[flags[0]].name + "\");\n    return -EINVAL;\n  }\n";
  }
  s += "\n  " + c + "_apply(sb, " + std::string(kPool[nums[0]].name) + ");\n";
  s += "  return 0;\n}\n";
  return out;
}

/// fsck/kernel-style reader: validates the shared superblock through
/// small accessor helpers (the labels come back through return
/// summaries).
AmpComponent genReader(const std::string& c, const std::string& sbt,
                       std::uint64_t& rng) {
  const auto nums = pickParams(rng, 3 + pick(rng, 4), false);
  const auto flags = pickParams(rng, 1 + pick(rng, 2), true);

  AmpComponent out;
  std::string& s = out.source;
  s += "#include \"fsdep_libc.h\"\n#include \"" + sbt + ".h\"\n\n";
  s += "#define EINVAL 22\n\n";
  s += "/*\n * " + c + ": synthetic superblock validator (amplified corpus).\n */\n";
  s += "static int " + c + "_sb_ok(struct " + sbt + " *sb) {\n";
  s += "  return sb->s_magic == AMP_SB_MAGIC;\n}\n\n";
  for (std::size_t i = 0; i < 2 && i < nums.size(); ++i) {
    s += "static long " + c + "_get_" + kPool[nums[i]].name + "(struct " + sbt + " *sb) {\n";
    s += "  return sb->s_" + std::string(kPool[nums[i]].name) + ";\n}\n\n";
  }
  s += "int " + c + "_validate(struct " + sbt + " *sb) {\n";
  for (std::size_t i = 0; i < 2 && i < nums.size(); ++i) {
    s += "  long v" + std::to_string(i) + " = " + c + "_get_" + kPool[nums[i]].name + "(sb);\n";
  }
  s += "\n  if (!" + c + "_sb_ok(sb)) {\n    return -EINVAL;\n  }\n";
  for (std::size_t i = 0; i < nums.size(); ++i) {
    const ParamShape& p = kPool[nums[i]];
    const std::string value =
        i < 2 ? "v" + std::to_string(i) : "sb->s_" + std::string(p.name);
    s += "  if (" + value + " < " + std::to_string(p.lo) + " || " + value + " > " +
         std::to_string(p.hi) + ") {\n    return -EINVAL;\n  }\n";
  }
  if (nums.size() > 3 && pick(rng, 2) == 0) {
    s += "  if (sb->s_" + std::string(kPool[nums[2]].name) + " > sb->s_" +
         kPool[nums[3]].name + ") {\n    return -EINVAL;\n  }\n";
  }
  for (const std::size_t idx : flags) {
    const ParamShape& f = kPool[idx];
    const ParamShape& n = kPool[nums[0]];
    s += "  if ((sb->s_features & AMP_FEAT_" + upper(f.name) + ") && sb->s_" +
         std::string(n.name) + " < " + std::to_string(n.lo * 2) +
         ") {\n    return -EINVAL;\n  }\n";
  }
  s += "  return 0;\n}\n";
  return out;
}

struct AmpRegistry {
  std::mutex mu;
  int generation = 0;
  bool active = false;
  AmplifyOptions options;
  // std::map: node addresses are stable, so the string_views handed out
  // by amplifiedSource() stay valid until clear/re-amplify.
  std::map<std::string, AmpComponent> components;
  std::vector<std::string> names;
};

AmpRegistry& registry() {
  static AmpRegistry r;
  return r;
}

}  // namespace

std::vector<std::string> amplifyCorpus(const AmplifyOptions& options) {
  AmpRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.active && reg.options == options) return reg.names;

  reg.components.clear();
  reg.names.clear();
  ++reg.generation;  // new name prefix: stale cache entries can't alias
  reg.options = options;
  reg.active = true;

  const std::size_t per_ecosystem = componentNames().size();
  const std::size_t count = options.factor * per_ecosystem;
  const std::string prefix = "amp" + std::to_string(reg.generation) + "_";
  for (std::size_t i = 0; i < count; ++i) {
    std::string idx = std::to_string(i);
    while (idx.size() < 4) idx.insert(idx.begin(), '0');
    const std::string name = prefix + idx;
    // Component i belongs to ecosystem i / per_ecosystem and bridges
    // through that ecosystem's own superblock struct.
    const std::string sbt = "amp_sb_" + std::to_string(i / per_ecosystem);
    // The content stream depends only on (seed, i) — never on the
    // generation — so the same options always produce the same sources.
    std::uint64_t rng = options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    AmpComponent comp;
    switch (i % 3) {
      case 0: comp = genWriter(name, sbt, rng); break;
      case 1: comp = genMount(name, sbt, rng); break;
      default: comp = genReader(name, sbt, rng); break;
    }
    reg.components.emplace(name, std::move(comp));
    reg.names.push_back(name);
  }
  return reg.names;
}

std::vector<std::string> amplifiedComponentNames() {
  AmpRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  return reg.names;
}

void clearAmplifiedCorpus() {
  AmpRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.components.clear();
  reg.names.clear();
  reg.active = false;
}

extract::ExtractOptions amplifiedExtractOptions() {
  extract::ExtractOptions options = extractOptions();
  options.metadata_owner = "ampfs";
  return options;
}

std::optional<std::string_view> amplifiedSource(std::string_view component) {
  AmpRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.components.find(std::string(component));
  if (it == reg.components.end()) return std::nullopt;
  return std::string_view(it->second.source);
}

std::optional<std::string> amplifiedHeader(std::string_view name) {
  AmpRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  constexpr std::string_view kPrefix = "amp_sb_";
  constexpr std::string_view kSuffix = ".h";
  if (!reg.active || name.size() <= kPrefix.size() + kSuffix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix ||
      name.substr(name.size() - kSuffix.size()) != kSuffix) {
    return std::nullopt;
  }
  const std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  std::size_t ecosystem = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    ecosystem = ecosystem * 10 + static_cast<std::size_t>(c - '0');
  }
  if (ecosystem >= reg.options.factor) return std::nullopt;
  // Generated on demand: header content depends only on the ecosystem
  // index, so there is nothing to cache or invalidate.
  return ampHeaderSource(ecosystem);
}

std::vector<taint::Seed> amplifiedSeeds(std::string_view component) {
  AmpRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.components.find(std::string(component));
  if (it == reg.components.end()) return {};
  return it->second.seeds;
}

}  // namespace fsdep::corpus
