// Parameter registry of the Ext4 ecosystem. Totals mirror the paper's
// Table 2: the FS side (mke2fs + mount + ext4 tunables) exceeds 85
// parameters, e2fsck exceeds 35, resize2fs exceeds 15.
#include "corpus/corpus.h"

namespace fsdep::corpus {

namespace {

using model::Component;
using model::ConfigStage;
using model::Parameter;
using model::ParamType;

Parameter param(const std::string& component, const std::string& name, const std::string& flag,
                ParamType type, ConfigStage stage, const std::string& description) {
  Parameter p;
  p.component = component;
  p.name = name;
  p.flag = flag;
  p.type = type;
  p.stage = stage;
  p.description = description;
  return p;
}

Component buildMke2fs() {
  Component c;
  c.name = "mke2fs";
  c.stage = ConfigStage::Create;
  c.description = "create an ext2/ext3/ext4 filesystem";
  const ConfigStage s = ConfigStage::Create;
  auto add = [&](const std::string& name, const std::string& flag, ParamType type,
                 const std::string& desc) { c.parameters.push_back(param("mke2fs", name, flag, type, s, desc)); };
  add("blocksize", "-b", ParamType::Integer, "block size in bytes");
  add("cluster_size", "-C", ParamType::Integer, "cluster size for bigalloc");
  add("inode_ratio", "-i", ParamType::Integer, "bytes per inode");
  add("inode_size", "-I", ParamType::Integer, "inode size in bytes");
  add("num_inodes", "-N", ParamType::Integer, "number of inodes");
  add("reserved_ratio", "-m", ParamType::Integer, "reserved blocks percentage");
  add("blocks_per_group", "-g", ParamType::Integer, "blocks per block group");
  add("flex_bg_size", "-G", ParamType::Integer, "groups per flex group");
  add("revision", "-r", ParamType::Integer, "filesystem revision");
  add("label", "-L", ParamType::String, "volume label");
  add("last_mounted", "-M", ParamType::String, "last mounted directory");
  add("uuid", "-U", ParamType::String, "volume uuid");
  add("resize_limit", "-E resize=", ParamType::Size, "growth limit for resize_inode");
  add("stride", "-E stride=", ParamType::Integer, "RAID stride");
  add("stripe_width", "-E stripe_width=", ParamType::Integer, "RAID stripe width");
  add("lazy_itable_init", "-E lazy_itable_init=", ParamType::Flag, "defer itable init");
  add("size", "fs-size", ParamType::Size, "filesystem size argument");
  add("meta_bg", "-O meta_bg", ParamType::Flag, "meta block groups");
  add("resize_inode", "-O resize_inode", ParamType::Flag, "online-growth reserve");
  add("sparse_super", "-O sparse_super", ParamType::Flag, "sparse superblock backups");
  add("sparse_super2", "-O sparse_super2", ParamType::Flag, "two-backup superblock layout");
  add("bigalloc", "-O bigalloc", ParamType::Flag, "cluster allocation");
  add("extent", "-O extent", ParamType::Flag, "extent-mapped files");
  add("64bit", "-O 64bit", ParamType::Flag, "64-bit block numbers");
  add("quota", "-O quota", ParamType::Flag, "journaled quota");
  add("has_journal", "-O has_journal", ParamType::Flag, "internal journal");
  add("journal_dev", "-O journal_dev", ParamType::Flag, "external journal device");
  add("uninit_bg", "-O uninit_bg", ParamType::Flag, "uninitialized groups / gdt csum");
  add("metadata_csum", "-O metadata_csum", ParamType::Flag, "metadata checksums");
  add("flex_bg", "-O flex_bg", ParamType::Flag, "flexible block groups");
  add("inline_data", "-O inline_data", ParamType::Flag, "inline small files");
  add("encrypt", "-O encrypt", ParamType::Flag, "filesystem-level encryption");
  return c;
}

Component buildMount() {
  Component c;
  c.name = "mount";
  c.stage = ConfigStage::Mount;
  c.description = "mount-time options of the ext4 ecosystem";
  const ConfigStage s = ConfigStage::Mount;
  auto add = [&](const std::string& name, const std::string& flag, ParamType type,
                 const std::string& desc) { c.parameters.push_back(param("mount", name, flag, type, s, desc)); };
  add("ro", "-o ro", ParamType::Flag, "read-only mount");
  add("rw", "-o rw", ParamType::Flag, "read-write mount");
  add("dax", "-o dax", ParamType::Flag, "direct access to persistent memory");
  add("data_journal", "-o data=journal", ParamType::Flag, "journal data and metadata");
  add("data_ordered", "-o data=ordered", ParamType::Flag, "ordered data mode");
  add("data_writeback", "-o data=writeback", ParamType::Flag, "writeback data mode");
  add("noload", "-o noload", ParamType::Flag, "skip journal replay");
  add("norecovery", "-o norecovery", ParamType::Flag, "alias of noload");
  add("commit", "-o commit=", ParamType::Integer, "journal commit interval (s)");
  add("stripe", "-o stripe=", ParamType::Integer, "RAID stripe size in blocks");
  add("inode_readahead_blks", "-o inode_readahead_blks=", ParamType::Integer,
      "inode table readahead");
  add("max_batch_time", "-o max_batch_time=", ParamType::Integer, "max commit batching (us)");
  add("min_batch_time", "-o min_batch_time=", ParamType::Integer, "min commit batching (us)");
  add("journal_checksum", "-o journal_checksum", ParamType::Flag, "checksum journal blocks");
  add("journal_async_commit", "-o journal_async_commit", ParamType::Flag,
      "commit without waiting for descriptors");
  add("journal_ioprio", "-o journal_ioprio=", ParamType::Integer, "journal IO priority");
  add("usrjquota", "-o usrjquota=", ParamType::String, "user quota file");
  add("grpjquota", "-o grpjquota=", ParamType::String, "group quota file");
  add("jqfmt", "-o jqfmt=", ParamType::Enum, "journaled quota format");
  add("usrquota", "-o usrquota", ParamType::Flag, "user quota");
  add("grpquota", "-o grpquota", ParamType::Flag, "group quota");
  add("noquota", "-o noquota", ParamType::Flag, "disable quota");
  add("dioread_nolock", "-o dioread_nolock", ParamType::Flag, "lockless direct IO reads");
  add("delalloc", "-o delalloc", ParamType::Flag, "delayed allocation");
  add("nodelalloc", "-o nodelalloc", ParamType::Flag, "disable delayed allocation");
  add("nobh", "-o nobh", ParamType::Flag, "avoid buffer heads (historical)");
  add("auto_da_alloc", "-o auto_da_alloc", ParamType::Flag, "replace-via-rename heuristics");
  add("barrier", "-o barrier=", ParamType::Integer, "write barriers");
  add("resuid", "-o resuid=", ParamType::Integer, "uid allowed to use reserved blocks");
  add("resgid", "-o resgid=", ParamType::Integer, "gid allowed to use reserved blocks");
  add("errors", "-o errors=", ParamType::Enum, "behaviour on errors");
  add("discard", "-o discard", ParamType::Flag, "issue discard/TRIM");
  return c;
}

Component buildExt4() {
  Component c;
  c.name = "ext4";
  c.stage = ConfigStage::Mount;
  c.is_kernel = true;
  c.description = "kernel-side tunables and persistent superblock fields";
  auto add = [&](const std::string& name, ParamType type, ConfigStage stage,
                 const std::string& desc) { c.parameters.push_back(param("ext4", name, name, type, stage, desc)); };
  add("s_log_block_size", ParamType::Integer, ConfigStage::Create, "block size log2 - 10");
  add("s_log_cluster_size", ParamType::Integer, ConfigStage::Create, "cluster size log2 - 10");
  add("s_inode_size", ParamType::Integer, ConfigStage::Create, "on-disk inode size");
  add("s_inodes_per_group", ParamType::Integer, ConfigStage::Create, "inodes per group");
  add("s_blocks_per_group", ParamType::Integer, ConfigStage::Create, "blocks per group");
  add("s_rev_level", ParamType::Integer, ConfigStage::Create, "revision level");
  add("s_first_ino", ParamType::Integer, ConfigStage::Create, "first non-reserved inode");
  add("s_desc_size", ParamType::Integer, ConfigStage::Create, "group descriptor size");
  add("s_first_data_block", ParamType::Integer, ConfigStage::Create, "first data block");
  add("s_reserved_gdt_blocks", ParamType::Integer, ConfigStage::Create, "reserved GDT blocks");
  add("s_error_count", ParamType::Integer, ConfigStage::Offline, "errors since last fsck");
  add("s_mnt_count", ParamType::Integer, ConfigStage::Mount, "mounts since last fsck");
  add("s_max_mnt_count", ParamType::Integer, ConfigStage::Offline, "fsck-after-N-mounts");
  add("s_checkinterval", ParamType::Integer, ConfigStage::Offline, "fsck interval (s)");
  add("s_errors", ParamType::Enum, ConfigStage::Offline, "behaviour on errors");
  add("s_def_resuid", ParamType::Integer, ConfigStage::Offline, "default reserved uid");
  add("s_def_resgid", ParamType::Integer, ConfigStage::Offline, "default reserved gid");
  add("s_default_mount_opts", ParamType::Integer, ConfigStage::Offline, "default mount opts");
  add("lazytime", ParamType::Flag, ConfigStage::Mount, "lazy timestamp updates");
  add("mb_stream_req", ParamType::Integer, ConfigStage::Online, "small-file allocator cutoff");
  add("mb_max_to_scan", ParamType::Integer, ConfigStage::Online, "mballoc scan bound");
  add("mb_min_to_scan", ParamType::Integer, ConfigStage::Online, "mballoc scan floor");
  add("mb_group_prealloc", ParamType::Integer, ConfigStage::Online, "group preallocation");
  add("inode_readahead_blks_sysfs", ParamType::Integer, ConfigStage::Online,
      "sysfs override of readahead");
  return c;
}

Component buildE4defrag() {
  Component c;
  c.name = "e4defrag";
  c.stage = ConfigStage::Online;
  c.description = "online defragmenter";
  auto add = [&](const std::string& name, const std::string& flag, ParamType type,
                 const std::string& desc) {
    c.parameters.push_back(param("e4defrag", name, flag, type, ConfigStage::Online, desc));
  };
  add("stat_only", "-c", ParamType::Flag, "report fragmentation only");
  add("verbose", "-v", ParamType::Flag, "verbose output");
  add("target", "path", ParamType::String, "file, directory or device");
  add("sync_interval", "-s", ParamType::Integer, "fsync every N files");
  return c;
}

Component buildResize2fs() {
  Component c;
  c.name = "resize2fs";
  c.stage = ConfigStage::Offline;
  c.description = "grow or shrink an unmounted ext4 filesystem";
  auto add = [&](const std::string& name, const std::string& flag, ParamType type,
                 const std::string& desc) {
    c.parameters.push_back(param("resize2fs", name, flag, type, ConfigStage::Offline, desc));
  };
  add("size", "size", ParamType::Size, "target filesystem size");
  add("minimize", "-M", ParamType::Flag, "shrink to minimum");
  add("force", "-f", ParamType::Flag, "override safety checks");
  add("online", "-o", ParamType::Flag, "online (mounted) resize");
  add("print_min", "-P", ParamType::Flag, "print minimum size and exit");
  add("progress", "-p", ParamType::Flag, "progress bars");
  add("debug", "-d", ParamType::Integer, "debug flags");
  add("rid_64bit", "-s", ParamType::Flag, "convert away from 64bit");
  add("enable_64bit", "-b", ParamType::Flag, "convert to 64bit");
  add("stride", "-S", ParamType::Integer, "RAID stride hint");
  add("zero_superblock", "-z", ParamType::String, "undo file");
  add("flush", "-F", ParamType::Flag, "flush device buffers first");
  add("mmp_check", "-m", ParamType::Integer, "MMP check interval");
  add("reserved_ratio", "-r", ParamType::Integer, "new reserved percentage");
  add("quiet", "-q", ParamType::Flag, "suppress output");
  add("yes", "-y", ParamType::Flag, "assume yes");
  return c;
}

Component buildE2fsck() {
  Component c;
  c.name = "e2fsck";
  c.stage = ConfigStage::Offline;
  c.description = "check and repair an ext4 filesystem";
  auto add = [&](const std::string& name, const std::string& flag, ParamType type,
                 const std::string& desc) {
    c.parameters.push_back(param("e2fsck", name, flag, type, ConfigStage::Offline, desc));
  };
  add("preen", "-p", ParamType::Flag, "automatic repair without questions");
  add("yes", "-y", ParamType::Flag, "answer yes to all questions");
  add("no", "-n", ParamType::Flag, "open read-only, answer no");
  add("force", "-f", ParamType::Flag, "check even if clean");
  add("check_blocks", "-c", ParamType::Flag, "badblocks scan");
  add("backup_super", "-b", ParamType::Integer, "use backup superblock");
  add("blocksize", "-B", ParamType::Integer, "blocksize of backup superblock");
  add("external_journal", "-j", ParamType::String, "external journal device");
  add("bad_blocks_file", "-l", ParamType::String, "add to badblocks list");
  add("new_bad_blocks_file", "-L", ParamType::String, "replace badblocks list");
  add("verbose", "-v", ParamType::Flag, "verbose output");
  add("preserve", "-d", ParamType::Flag, "debugging output");
  add("time_stats", "-t", ParamType::Flag, "timing statistics");
  add("progress_fd", "-C", ParamType::Integer, "progress on descriptor");
  add("device_alt", "-D", ParamType::Flag, "optimize directories");
  add("expand_ea", "-E expand_extra_isize", ParamType::Flag, "expand inode extra size");
  add("fragcheck", "-E fragcheck", ParamType::Flag, "fragmentation report");
  add("journal_only", "-E journal_only", ParamType::Flag, "replay journal, nothing else");
  add("discard", "-E discard", ParamType::Flag, "discard free blocks");
  add("nodiscard", "-E nodiscard", ParamType::Flag, "do not discard");
  add("optimize_dirs", "-E bmap2extent", ParamType::Flag, "convert block-mapped files");
  add("fixes_only", "-E fixes_only", ParamType::Flag, "only fix, no optimization");
  add("unshare_blocks", "-E unshare_blocks", ParamType::Flag, "unshare shared blocks");
  add("no_optimize_extents", "-E no_optimize_extents", ParamType::Flag,
      "keep extent trees as-is");
  add("inode_count_fullmap", "-E inode_count_fullmap", ParamType::Flag,
      "full inode count map");
  add("readahead_kb", "-E readahead_kb=", ParamType::Integer, "readahead budget");
  add("threads", "-E threads=", ParamType::Integer, "parallel passes");
  add("exclusive", "-x", ParamType::Flag, "exclusive device access (historical)");
  add("swap_bytes", "-s", ParamType::Flag, "byte-swap (historical)");
  add("force_swap", "-S", ParamType::Flag, "force byte-swap (historical)");
  add("timing", "-tt", ParamType::Flag, "per-pass timing");
  add("safe_mode", "-z", ParamType::String, "undo file");
  add("superblock_alt", "-A", ParamType::Flag, "check all filesystems");
  add("max_errors", "-M", ParamType::Integer, "stop after N errors");
  add("root_only", "-R", ParamType::Flag, "skip root filesystem (historical)");
  add("keep_going", "-k", ParamType::Flag, "continue after fatal errors");
  return c;
}

model::Ecosystem build() {
  model::Ecosystem eco;
  eco.addComponent(buildMke2fs());
  eco.addComponent(buildMount());
  eco.addComponent(buildExt4());
  eco.addComponent(buildE4defrag());
  eco.addComponent(buildResize2fs());
  eco.addComponent(buildE2fsck());
  return eco;
}

}  // namespace

const model::Ecosystem& ecosystem() {
  static const model::Ecosystem kEcosystem = build();
  return kEcosystem;
}

}  // namespace fsdep::corpus
