// Structured manuals for ConDocCk. The claims mirror the shipped man
// pages: most true dependencies are documented accurately, nine are
// missing, two state wrong bounds, and one is stale (documents a
// constraint the code does not have) — 12 documentation issues in total,
// matching §4.3 of the paper ("12 inaccurate documentations", with the
// meta_bg/resize_inode omission as the worked example).
#include <stdexcept>

#include "corpus/corpus.h"

namespace fsdep::corpus {

namespace {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

/// Copies the dependency of a ground-truth entry by id.
Dependency claimFromGroundTruth(const std::string& id) {
  for (const extract::GroundTruthEntry& entry : groundTruth()) {
    if (entry.dep.id == id) return entry.dep;
  }
  throw std::runtime_error("manuals: unknown ground truth id " + id);
}

ManualEntry accurate(const std::string& gt_id, std::string text) {
  ManualEntry entry;
  entry.claim = claimFromGroundTruth(gt_id);
  entry.text = std::move(text);
  return entry;
}

std::vector<ManualEntry> build() {
  std::vector<ManualEntry> m;

  // ---- mke2fs(8): data types. ----
  m.push_back(accurate("gt-sd-type-mke2fs.blocksize", "-b block-size: specify the size of blocks in bytes."));
  m.push_back(accurate("gt-sd-type-mke2fs.inode_size", "-I inode-size: specify the size of each inode in bytes."));
  m.push_back(accurate("gt-sd-type-mke2fs.inode_ratio", "-i bytes-per-inode: specify the bytes/inode ratio."));
  m.push_back(accurate("gt-sd-type-mke2fs.reserved_ratio", "-m reserved-blocks-percentage."));
  m.push_back(accurate("gt-sd-type-mke2fs.blocks_per_group", "-g blocks-per-group."));
  m.push_back(accurate("gt-sd-type-mke2fs.flex_bg_size", "-G number-of-groups per flex group."));
  m.push_back(accurate("gt-sd-type-mke2fs.revision", "-r revision: set the filesystem revision."));

  // ---- mke2fs(8): ranges. Two are WRONG in the shipped manual. ----
  {
    // Manual still shows the ext2-era upper bound of 4096.
    ManualEntry wrong;
    wrong.claim = claimFromGroundTruth("gt-sd-range-mke2fs.blocksize");
    wrong.claim.high = 4096;
    wrong.text = "Valid block-size values are 1024, 2048 and 4096 bytes per block.";
    m.push_back(std::move(wrong));
  }
  m.push_back(accurate("gt-sd-range-mke2fs.inode_size", "The inode size must be a power of 2 larger or equal to 128 and no larger than 4096."));
  m.push_back(accurate("gt-sd-range-mke2fs.inode_ratio", "bytes-per-inode must be at least 1024 and at most 64MiB."));
  {
    // Manual forgot the 50% cap introduced with the sanity checks.
    ManualEntry wrong;
    wrong.claim = claimFromGroundTruth("gt-sd-range-mke2fs.reserved_ratio");
    wrong.claim.high = 100;
    wrong.text = "-m: specify the percentage of reserved blocks, between 0 and 100.";
    m.push_back(std::move(wrong));
  }
  m.push_back(accurate("gt-sd-range-mke2fs.blocks_per_group", "blocks-per-group must be a multiple of 8 between 256 and 65528."));
  m.push_back(accurate("gt-sd-pow2-mke2fs.flex_bg_size", "The -G argument must be a power of 2."));
  m.push_back(accurate("gt-sd-range-mke2fs.revision", "Revision 0 and 1 filesystems are supported."));

  // ---- mke2fs(8): feature interactions. ----
  // MISSING: meta_bg/resize_inode (the paper's worked example),
  //          resize_limit->resize_inode, encrypt/bigalloc,
  //          inode_ratio>=blocksize, size>=blocksize.
  m.push_back(accurate("gt-cpd-mke2fs.bigalloc-mke2fs.extent", "bigalloc requires the extent feature."));
  m.push_back(accurate("gt-cpd-mke2fs.sparse_super2-mke2fs.resize_inode", "sparse_super2 disallows the resize_inode feature."));
  m.push_back(accurate("gt-cpd-mke2fs.64bit-mke2fs.extent", "64bit requires extents to address the full block range."));
  m.push_back(accurate("gt-cpd-mke2fs.quota-mke2fs.has_journal", "The quota feature requires a journal."));
  m.push_back(accurate("gt-cpd-mke2fs.journal_dev-mke2fs.has_journal", "journal_dev cannot be combined with an internal journal."));
  m.push_back(accurate("gt-cpd-mke2fs.cluster_size-mke2fs.bigalloc", "-C is only meaningful together with -O bigalloc."));
  m.push_back(accurate("gt-cpd-mke2fs.uninit_bg-mke2fs.metadata_csum", "uninit_bg and metadata_csum are mutually exclusive."));
  m.push_back(accurate("gt-cpd-mke2fs.flex_bg_size-mke2fs.flex_bg", "-G requires the flex_bg feature."));
  m.push_back(accurate("gt-cpd-mke2fs.inline_data-mke2fs.extent", "inline_data requires the extent feature."));
  m.push_back(accurate("gt-cpd-mke2fs.inode_size-mke2fs.blocksize", "The inode size cannot exceed the block size."));
  m.push_back(accurate("gt-cpd-mke2fs.blocks_per_group-mke2fs.blocksize", "At most 8*block-size blocks per group (one bitmap block)."));
  m.push_back(accurate("gt-cpd-mke2fs.cluster_size-mke2fs.blocksize", "The cluster size must be at least the block size."));

  // STALE: the manual still documents a constraint the code dropped.
  {
    ManualEntry stale;
    stale.claim.kind = DepKind::CpdControl;
    stale.claim.op = ConstraintOp::Excludes;
    stale.claim.param = "mke2fs.sparse_super";
    stale.claim.other_param = "mke2fs.sparse_super2";
    stale.claim.id = "manual-stale-sparse-super";
    stale.claim.description = "sparse_super cannot be combined with sparse_super2";
    stale.text = "sparse_super cannot be combined with sparse_super2 (obsolete restriction).";
    m.push_back(std::move(stale));
  }

  // ---- mount(8) / ext4(5): types and ranges. ----
  m.push_back(accurate("gt-sd-type-mount.commit", "commit=nrsec: sync all data every nrsec seconds."));
  m.push_back(accurate("gt-sd-type-mount.stripe", "stripe=n: stripe size in blocks."));
  m.push_back(accurate("gt-sd-type-mount.inode_readahead_blks", "inode_readahead_blks=n."));
  m.push_back(accurate("gt-sd-type-mount.max_batch_time", "max_batch_time=usec."));
  m.push_back(accurate("gt-sd-range-mount.stripe", "stripe values up to 2097152 blocks are accepted."));

  // ---- ext4(5): mount option interactions. ----
  // MISSING: nobh->data_writeback, usrjquota->jqfmt.
  m.push_back(accurate("gt-cpd-mount.dax-mount.data_journal", "dax cannot be used with data=journal."));
  m.push_back(accurate("gt-cpd-mount.noload-mount.ro", "noload requires a read-only mount."));
  m.push_back(accurate("gt-cpd-mount.journal_async_commit-mount.journal_checksum", "journal_async_commit implies journal_checksum."));
  m.push_back(accurate("gt-cpd-mount.dioread_nolock-mount.data_journal", "dioread_nolock is not supported with data=journal."));
  m.push_back(accurate("gt-cpd-mount.delalloc-mount.data_journal", "delalloc is not supported with data=journal."));
  m.push_back(accurate("gt-cpd-mount.data_journal-mount.auto_da_alloc", "auto_da_alloc has no effect with data=journal and is rejected on remount."));

  // ---- ext4(5): persistent field domains. MISSING: s_error_count. ----
  m.push_back(accurate("gt-sd-range-ext4.s_log_block_size", "Block sizes from 1KiB to 64KiB are supported."));
  m.push_back(accurate("gt-sd-range-ext4.s_inode_size", "On-disk inode sizes from 128 to 4096 bytes."));
  m.push_back(accurate("gt-sd-range-ext4.s_rev_level", "Revision levels 0 and 1."));
  m.push_back(accurate("gt-sd-range-ext4.s_first_ino", "The first non-reserved inode is 11."));
  m.push_back(accurate("gt-sd-range-ext4.s_desc_size", "Group descriptors are 32 or 64 bytes."));
  m.push_back(accurate("gt-sd-range-ext4.s_first_data_block", "The first data block is 0 or 1."));
  m.push_back(accurate("gt-sd-range-ext4.s_inodes_per_group", "Between 8 and 65536 inodes per group."));
  m.push_back(accurate("gt-sd-range-ext4.s_reserved_gdt_blocks", "At most 1024 reserved GDT blocks."));
  m.push_back(accurate("gt-sd-range-ext4.s_log_cluster_size", "Cluster sizes up to 64KiB."));

  // ---- resize2fs(8). MISSING: online->resize_inode (D2). ----
  m.push_back(accurate("gt-ccd-resize2fs.size-mke2fs.size", "If size is larger than the current size the filesystem grows, otherwise it shrinks."));
  m.push_back(accurate("gt-ccd-resize2fs.resize2fs_adjust_last_group-mke2fs.sparse_super2", "With sparse_super2 the last block group is handled specially during resize."));
  m.push_back(accurate("gt-ccd-resize2fs.size-mke2fs.blocksize", "The size parameter is interpreted in filesystem blocksize units."));
  m.push_back(accurate("gt-ccd-resize2fs.size-mke2fs.reserved_ratio", "The filesystem cannot shrink below the reserved area."));

  return m;
}

const std::vector<ManualEntry>& allManualsStorage() {
  static const std::vector<ManualEntry> kManuals = build();
  return kManuals;
}

}  // namespace

std::vector<ManualEntry> allManuals() { return allManualsStorage(); }

std::vector<ManualEntry> manualFor(std::string_view component) {
  std::vector<ManualEntry> out;
  for (const ManualEntry& entry : allManualsStorage()) {
    if (entry.claim.param.starts_with(std::string(component) + ".")) out.push_back(entry);
  }
  return out;
}

}  // namespace fsdep::corpus
