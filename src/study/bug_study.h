// The empirical bug study of the paper (§3): 67 configuration-related
// bug cases across four usage scenarios, each annotated with the critical
// multi-level dependencies that gate its manifestation. Aggregating the
// dataset reproduces Tables 3 and 4.
//
// The paper mined its 67 cases from ~2,700 keyword-matched patches in the
// Ext4/e2fsprogs git history; this dataset is a structured reconstruction
// with the paper's exact marginals (see DESIGN.md substitutions), and the
// schema is what a user would fill with their own mined patches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/dependency.h"

namespace fsdep::study {

/// One critical dependency of the study (dependencies are shared between
/// bugs; Table 4 counts unique dependencies).
struct StudyDependency {
  std::string id;
  model::DepKind kind;
  std::string param;
  std::string other_param;  ///< empty for SD
  std::string note;
};

struct BugCase {
  std::string id;        ///< e.g. "EXT4-S3-204"
  std::string scenario;  ///< "s1".."s4"
  std::string title;
  std::string description;
  std::vector<std::string> dependency_ids;
};

/// The full datasets.
const std::vector<StudyDependency>& studyDependencies();
const std::vector<BugCase>& bugCases();

/// Table 3 aggregation: per-scenario bug counts and the share of bugs
/// involving each dependency level.
struct ScenarioBugStats {
  std::string scenario;
  std::string title;
  int bugs = 0;
  int with_sd = 0;
  int with_cpd = 0;
  int with_ccd = 0;
};
std::vector<ScenarioBugStats> aggregateTable3();

/// Table 4 aggregation: unique critical dependencies per sub-category.
struct TaxonomyStats {
  std::map<model::DepKind, int> unique_counts;
  [[nodiscard]] int total() const;
};
TaxonomyStats aggregateTable4();

/// Renders the two tables in the paper's layout.
std::string formatTable3();
std::string formatTable4();

}  // namespace fsdep::study
