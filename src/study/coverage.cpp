#include "study/coverage.h"

#include <cctype>
#include <cstdio>

#include "support/strings.h"

namespace fsdep::study {

std::string parameterMatchToken(const model::Parameter& param) {
  std::string flag = param.flag;
  // Strip the option-carrier prefixes: "-O feature", "-o opt", "-E opt".
  for (const char* prefix : {"-O ", "-o ", "-E "}) {
    if (flag.starts_with(prefix)) {
      flag = flag.substr(3);
      break;
    }
  }
  return flag;
}

std::vector<std::string> tokenizeCaseText(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    // Trim shell punctuation from both ends.
    const std::string trim_chars = "\"',;()$`&|<>";
    std::size_t begin = 0;
    std::size_t end = current.size();
    while (begin < end && trim_chars.find(current[begin]) != std::string::npos) ++begin;
    while (end > begin && trim_chars.find(current[end - 1]) != std::string::npos) --end;
    if (end > begin) tokens.push_back(current.substr(begin, end - begin));
    current.clear();
  };
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return tokens;
}

namespace {

bool tokenMatches(const std::string& token, const std::string& match) {
  if (match.empty()) return false;
  if (match.back() == '=') return token.starts_with(match);
  return token == match;
}

std::vector<const model::Component*> targetComponents(const std::string& target,
                                                      const model::Ecosystem& ecosystem) {
  std::vector<const model::Component*> out;
  if (target == "ext4-ecosystem") {
    for (const char* name : {"mke2fs", "mount", "ext4"}) {
      if (const model::Component* c = ecosystem.findComponent(name)) out.push_back(c);
    }
    return out;
  }
  if (const model::Component* c = ecosystem.findComponent(target)) out.push_back(c);
  return out;
}

}  // namespace

CoverageReport scanSuite(const corpus::SuiteManifest& manifest,
                         const model::Ecosystem& ecosystem) {
  CoverageReport report;
  report.suite = manifest.suite;
  report.target = manifest.target;

  const std::vector<const model::Component*> components =
      targetComponents(manifest.target, ecosystem);
  for (const model::Component* c : components) report.total_parameters += c->parameters.size();

  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(manifest.case_texts.size());
  for (const std::string& text : manifest.case_texts) tokenized.push_back(tokenizeCaseText(text));

  for (const model::Component* c : components) {
    for (const model::Parameter& param : c->parameters) {
      const std::string match = parameterMatchToken(param);
      bool used = false;
      for (const auto& tokens : tokenized) {
        for (const std::string& token : tokens) {
          if (tokenMatches(token, match)) {
            used = true;
            break;
          }
        }
        if (used) break;
      }
      if (used) report.used_parameters.insert(param.qualifiedName());
    }
  }
  return report;
}

std::vector<CoverageReport> runCoverageStudy() {
  std::vector<CoverageReport> out;
  for (const corpus::SuiteManifest& manifest : corpus::suiteManifests()) {
    out.push_back(scanSuite(manifest, corpus::ecosystem()));
  }
  return out;
}

std::string formatTable2(const std::vector<CoverageReport>& reports) {
  std::string out = "Table 2: Configuration Coverage of Test Suites\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-16s | %-16s | %6s | %s\n", "Test Suite", "Target", "Total",
                "Used");
  out += buf;
  out += std::string(64, '-') + "\n";
  for (const CoverageReport& r : reports) {
    std::snprintf(buf, sizeof(buf), "%-16s | %-16s | %6zu | %zu (%s)\n", r.suite.c_str(),
                  r.target.c_str(), r.total_parameters, r.usedCount(),
                  formatPercent(r.usedFraction()).c_str());
    out += buf;
  }
  return out;
}

}  // namespace fsdep::study
