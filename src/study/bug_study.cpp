#include "study/bug_study.h"

#include <cstdio>
#include <set>

#include "support/strings.h"

namespace fsdep::study {

using model::DepKind;

namespace {

// ---------------------------------------------------------------------
// Critical dependencies (Table 4): 33 SD-type, 30 SD-range, 4 CPD-control,
// 1 CCD-control, 64 CCD-behavioral = 132 unique.
// ---------------------------------------------------------------------

StudyDependency dep(std::string id, DepKind kind, std::string param, std::string other,
                    std::string note) {
  return StudyDependency{std::move(id), kind, std::move(param), std::move(other),
                         std::move(note)};
}

std::vector<StudyDependency> buildDependencies() {
  std::vector<StudyDependency> deps;

  // SD data types (33): parameters whose mis-typing gates a bug case.
  const char* type_params[33] = {
      "mke2fs.blocksize", "mke2fs.inode_size", "mke2fs.inode_ratio", "mke2fs.reserved_ratio",
      "mke2fs.blocks_per_group", "mke2fs.flex_bg_size", "mke2fs.revision", "mke2fs.size",
      "mke2fs.cluster_size", "mke2fs.resize_limit", "mke2fs.num_inodes", "mke2fs.label",
      "mke2fs.uuid", "mount.commit", "mount.stripe", "mount.inode_readahead_blks",
      "mount.max_batch_time", "mount.min_batch_time", "mount.journal_ioprio", "mount.resuid",
      "mount.resgid", "mount.barrier", "mount.errors", "mount.jqfmt", "resize2fs.size",
      "resize2fs.debug", "resize2fs.mmp_check", "resize2fs.stride", "e2fsck.backup_super",
      "e2fsck.blocksize", "e2fsck.progress_fd", "e2fsck.readahead_kb", "e2fsck.threads"};
  for (int i = 0; i < 33; ++i) {
    deps.push_back(dep("std-" + std::to_string(i + 1), DepKind::SdDataType, type_params[i], "",
                       "parameter must parse as its declared type"));
  }

  // SD value ranges (30).
  const char* range_params[30] = {
      "mke2fs.blocksize", "mke2fs.inode_size", "mke2fs.inode_ratio", "mke2fs.reserved_ratio",
      "mke2fs.blocks_per_group", "mke2fs.flex_bg_size", "mke2fs.revision",
      "mke2fs.cluster_size", "mke2fs.resize_limit", "mke2fs.num_inodes", "mount.commit",
      "mount.stripe", "mount.inode_readahead_blks", "mount.max_batch_time",
      "mount.min_batch_time", "mount.journal_ioprio", "mount.barrier", "ext4.s_log_block_size",
      "ext4.s_inode_size", "ext4.s_inodes_per_group", "ext4.s_rev_level", "ext4.s_first_ino",
      "ext4.s_desc_size", "ext4.s_first_data_block", "ext4.s_reserved_gdt_blocks",
      "ext4.s_log_cluster_size", "ext4.s_error_count", "resize2fs.size", "e2fsck.backup_super",
      "e2fsck.blocksize"};
  for (int i = 0; i < 30; ++i) {
    deps.push_back(dep("sdr-" + std::to_string(i + 1), DepKind::SdValueRange, range_params[i],
                       "", "parameter must stay within its legal range"));
  }

  // CPD control (4).
  deps.push_back(dep("cpdc-1", DepKind::CpdControl, "mke2fs.meta_bg", "mke2fs.resize_inode",
                     "meta_bg and resize_inode cannot both be enabled"));
  deps.push_back(dep("cpdc-2", DepKind::CpdControl, "mke2fs.bigalloc", "mke2fs.extent",
                     "bigalloc requires extents"));
  deps.push_back(dep("cpdc-3", DepKind::CpdControl, "mke2fs.sparse_super2",
                     "mke2fs.resize_inode", "sparse_super2 disallows resize_inode"));
  deps.push_back(dep("cpdc-4", DepKind::CpdControl, "mount.journal_async_commit",
                     "mount.journal_checksum", "async commit requires checksummed journal"));

  // CCD control (1): the one control-type cross-component dependency the
  // study observed (Table 4).
  deps.push_back(dep("ccdc-1", DepKind::CcdControl, "resize2fs.online", "mke2fs.resize_inode",
                     "online growth requires the creation-time resize_inode reserve"));

  // CCD behavioral (64): component behavior gated by another component's
  // parameter, one per CCD-involving bug case.
  struct BehavioralPair {
    const char* behavior;
    const char* param;
  };
  const BehavioralPair pairs[64] = {
      // s1: mount/kernel behavior depending on creation parameters (13).
      {"ext4.mount", "mke2fs.blocksize"},
      {"ext4.mount", "mke2fs.inode_size"},
      {"ext4.mount", "mke2fs.64bit"},
      {"ext4.mount", "mke2fs.meta_bg"},
      {"ext4.journal_replay", "mke2fs.has_journal"},
      {"ext4.mount", "mke2fs.bigalloc"},
      {"ext4.dax_check", "mke2fs.inline_data"},
      {"ext4.mount", "mke2fs.encrypt"},
      {"ext4.orphan_cleanup", "mke2fs.uninit_bg"},
      {"ext4.mount", "mke2fs.metadata_csum"},
      {"ext4.readahead", "mke2fs.flex_bg"},
      {"ext4.mount", "mke2fs.sparse_super2"},
      {"ext4.quota_load", "mke2fs.quota"},
      // s2: defrag behavior depending on other components (1).
      {"e4defrag.defrag", "mke2fs.extent"},
      // s3: resize behavior depending on creation/mount parameters (17,
      // one of the 17 bugs carries the CCD-control above instead).
      {"resize2fs.grow", "mke2fs.size"},
      {"resize2fs.grow", "mke2fs.sparse_super2"},
      {"resize2fs.size_parse", "mke2fs.blocksize"},
      {"resize2fs.shrink", "mke2fs.reserved_ratio"},
      {"resize2fs.grow", "mke2fs.resize_limit"},
      {"resize2fs.grow", "mke2fs.meta_bg"},
      {"resize2fs.grow", "mke2fs.flex_bg"},
      {"resize2fs.shrink", "mke2fs.num_inodes"},
      {"resize2fs.grow", "mke2fs.64bit"},
      {"resize2fs.grow", "mke2fs.uninit_bg"},
      {"resize2fs.mmp_check", "mke2fs.metadata_csum"},
      {"resize2fs.grow", "mke2fs.bigalloc"},
      {"resize2fs.inode_move", "mke2fs.inode_size"},
      {"resize2fs.grow", "mke2fs.blocks_per_group"},
      {"resize2fs.undo_log", "mke2fs.blocksize"},
      {"resize2fs.online_ioctl", "mount.ro"},
      // s4: checker behavior depending on creation/mount parameters (34).
      {"e2fsck.pass0", "mke2fs.blocksize"},
      {"e2fsck.pass0", "mke2fs.inode_size"},
      {"e2fsck.pass1", "mke2fs.extent"},
      {"e2fsck.pass1", "mke2fs.inline_data"},
      {"e2fsck.pass1", "mke2fs.bigalloc"},
      {"e2fsck.pass1", "mke2fs.64bit"},
      {"e2fsck.pass2", "mke2fs.encrypt"},
      {"e2fsck.pass2", "mke2fs.metadata_csum"},
      {"e2fsck.pass3", "mke2fs.quota"},
      {"e2fsck.pass5", "mke2fs.uninit_bg"},
      {"e2fsck.pass5", "mke2fs.flex_bg"},
      {"e2fsck.pass5", "mke2fs.meta_bg"},
      {"e2fsck.journal_replay", "mke2fs.has_journal"},
      {"e2fsck.journal_replay", "mount.noload"},
      {"e2fsck.journal_replay", "mount.data_journal"},
      {"e2fsck.superblock_fallback", "mke2fs.sparse_super"},
      {"e2fsck.superblock_fallback", "mke2fs.sparse_super2"},
      {"e2fsck.superblock_fallback", "mke2fs.blocks_per_group"},
      {"e2fsck.resize_inode_check", "mke2fs.resize_inode"},
      {"e2fsck.resize_inode_check", "mke2fs.resize_limit"},
      {"e2fsck.orphan_processing", "mount.errors"},
      {"e2fsck.orphan_processing", "mke2fs.revision"},
      {"e2fsck.dirindex_check", "mke2fs.inode_ratio"},
      {"e2fsck.dirindex_check", "mke2fs.num_inodes"},
      {"e2fsck.badblocks_scan", "e2fsck.check_blocks"},
      {"e2fsck.preen_decision", "mount.errors"},
      {"e2fsck.preen_decision", "ext4.s_max_mnt_count"},
      {"e2fsck.preen_decision", "ext4.s_checkinterval"},
      {"e2fsck.extent_rebuild", "mke2fs.extent"},
      {"e2fsck.cluster_accounting", "mke2fs.cluster_size"},
      {"e2fsck.quota_rewrite", "mount.usrjquota"},
      {"e2fsck.quota_rewrite", "mount.jqfmt"},
      {"e2fsck.csum_verify", "mke2fs.metadata_csum"},
      {"e2fsck.gdt_repair", "mke2fs.flex_bg_size"},
  };
  for (int i = 0; i < 64; ++i) {
    deps.push_back(dep("ccdb-" + std::to_string(i + 1), DepKind::CcdBehavioral,
                       pairs[i].behavior, pairs[i].param,
                       "behavior depends on a parameter of another component"));
  }

  return deps;
}

// ---------------------------------------------------------------------
// Bug cases (Table 3): 13 + 1 + 17 + 36 = 67.
// ---------------------------------------------------------------------

struct BugSpec {
  const char* scenario;
  const char* title;
};

const BugSpec kBugSpecs[67] = {
    // ---- s1: mke2fs - mount - Ext4 (13 cases). ----
    {"s1", "mount fails to reject 64KiB blocks on 4KiB-page hosts"},
    {"s1", "oversized inode size accepted at mkfs corrupts inode table on first mount"},
    {"s1", "64bit filesystem without extents overflows block pointer on mount"},
    {"s1", "meta_bg layout miscomputed when first_meta_bg exceeds group count"},
    {"s1", "journal replay reads stale descriptor with has_journal re-enabled"},
    {"s1", "bigalloc cluster accounting off-by-one when mounting small images"},
    {"s1", "dax mount silently ignores inline_data files and returns EIO"},
    {"s1", "encrypt feature flag crashes mount on revision 0 filesystems"},
    {"s1", "orphan cleanup wipes uninitialized groups with uninit_bg set"},
    {"s1", "metadata_csum verification failure on superblock written by old mke2fs"},
    {"s1", "inode readahead overruns the inode table with tiny flex groups"},
    {"s1", "sparse_super2 backup group beyond last group panics mount"},
    {"s1", "quota inodes not loaded when quota feature set without mount option"},
    // ---- s2: + e4defrag (1 case). ----
    {"s2", "e4defrag moves block-mapped files on a non-extent filesystem and loses data"},
    // ---- s3: + umount + resize2fs (17 cases). ----
    {"s3", "expanding with sparse_super2 corrupts free block count of last group"},
    {"s3", "resize target parsed in 512-byte sectors but applied in fs blocks"},
    {"s3", "growing past resize_inode reserve fails halfway and leaves stale gdt"},
    {"s3", "shrink below reserved blocks truncates in-use metadata"},
    {"s3", "online resize ioctl accepted without resize_inode feature"},
    {"s3", "meta_bg resize path writes group descriptor to wrong backup"},
    {"s3", "flex_bg bitmap relocation misses groups during shrink"},
    {"s3", "inode count overflow when shrinking an -N-formatted filesystem"},
    {"s3", "32-bit block math in grow path on 64bit filesystems"},
    {"s3", "uninitialized group skipped during grow leaves bitmap stale"},
    {"s3", "mmp sequence not rechecked after metadata_csum recompute"},
    {"s3", "bigalloc cluster rounding makes resize2fs overshoot the device"},
    {"s3", "inode migration drops extended attributes with 128-byte inodes"},
    {"s3", "last group smaller than blocks_per_group mishandled during grow"},
    {"s3", "undo file block size mismatch renders undo log unusable"},
    {"s3", "online resize of a read-only mount deadlocks the ioctl"},
    {"s3", "resize2fs accepts negative size spec and wraps to huge target"},
    // ---- s4: + umount + e2fsck (36 cases). ----
    {"s4", "backup superblock chosen with wrong blocksize shreds the primary"},
    {"s4", "pass0 rejects valid 1KiB-block image formatted by old mke2fs"},
    {"s4", "pass1 rewrites extent tree of block-mapped files when extents flag set"},
    {"s4", "inline_data directories flagged as corrupt and cleared"},
    {"s4", "bigalloc cluster bitmap check uses block units and reports phantom errors"},
    {"s4", "64bit group descriptor checksum verified with 32-bit layout"},
    {"s4", "encrypted filename check reads past inode with tiny inode size"},
    {"s4", "metadata_csum seed mismatch makes fsck zero healthy group descriptors"},
    {"s4", "quota inode rebuilt with wrong format erases usage data"},
    {"s4", "uninit_bg groups initialized unnecessarily, clearing lazy inode tables"},
    {"s4", "flex_bg inode table placement confuses pass5 accounting"},
    {"s4", "meta_bg descriptor location miscomputed during preen"},
    {"s4", "journal replay skipped on dirty journal when superblock looks clean"},
    {"s4", "noload-mounted filesystem marked clean without replaying journal"},
    {"s4", "data=journal ordering breaks fsck's expectation of committed metadata"},
    {"s4", "sparse_super fallback probes nonexistent backup superblocks"},
    {"s4", "sparse_super2 backup list not consulted by -b auto-detection"},
    {"s4", "backup superblock offset wrong for non-default blocks_per_group"},
    {"s4", "resize_inode repair recreates reserve with wrong gdt block count"},
    {"s4", "resize limit from -E resize ignored when rebuilding resize inode"},
    {"s4", "errors=continue policy races orphan processing during preen"},
    {"s4", "revision 0 filesystem upgraded in place without asking"},
    {"s4", "dirindex hash check seeds from inode ratio estimate and misfires"},
    {"s4", "inode count check uses formatted -N value instead of on-disk count"},
    {"s4", "badblocks scan with -c clobbers the in-progress bitmap"},
    {"s4", "preen honours errors=panic and reboots the rescue system"},
    {"s4", "max mount count of -1 treated as unsigned and forces fsck loop"},
    {"s4", "check interval comparison overflows on 32-bit time_t"},
    {"s4", "extent rebuild on non-extent filesystem writes garbage headers"},
    {"s4", "cluster accounting repair halves free cluster count with -C images"},
    {"s4", "usrjquota path rewritten to default, detaching the quota file"},
    {"s4", "jqfmt vfsv1 quota rebuilt as vfsv0 and silently truncated"},
    {"s4", "checksum verify pass zeroes backup descriptors with metadata_csum"},
    {"s4", "gdt repair assumes flex_bg_size 16 and misplaces bitmaps"},
    {"s4", "double-run of e2fsck -fy diverges on the second pass"},
    {"s4", "interrupted fsck leaves recovery flag set and blocks mounting"},
};

// Deterministic dependency assignment reproducing the Table 3 marginals:
// every bug carries at least one SD; exactly 65 bugs (all but two s4
// cases) carry a CCD; 1 s1 bug and 4 s4 bugs carry a CPD.
std::vector<BugCase> buildBugs(const std::vector<StudyDependency>& deps) {
  // Index dependency ids by category for assignment.
  std::vector<std::string> sd_ids;
  std::vector<std::string> cpd_ids;
  std::vector<std::string> ccd_ids;  // ccdc-1 first, then ccdb-1..64
  for (const StudyDependency& d : deps) {
    switch (model::depLevelOf(d.kind)) {
      case model::DepLevel::SelfDependency: sd_ids.push_back(d.id); break;
      case model::DepLevel::CrossParameter: cpd_ids.push_back(d.id); break;
      case model::DepLevel::CrossComponent: ccd_ids.push_back(d.id); break;
    }
  }

  std::vector<BugCase> bugs;
  std::size_t next_ccd_behavioral = 1;  // index into ccdb-*
  int per_scenario_counter[4] = {0, 0, 0, 0};
  int s1_seen = 0;
  int s4_seen = 0;
  int s4_no_ccd_assigned = 0;
  int s4_cpd_assigned = 0;

  for (int i = 0; i < 67; ++i) {
    const BugSpec& spec = kBugSpecs[i];
    BugCase bug;
    bug.scenario = spec.scenario;
    const int scenario_index = spec.scenario[1] - '1';
    ++per_scenario_counter[scenario_index];
    char idbuf[32];
    std::snprintf(idbuf, sizeof(idbuf), "EXT4-S%d-%03d", scenario_index + 1,
                  per_scenario_counter[scenario_index]);
    bug.id = idbuf;
    bug.title = spec.title;
    bug.description = std::string("Configuration-gated reliability issue: ") + spec.title + ".";

    // Every bug involves at least one self dependency (Table 3: SD 100%).
    bug.dependency_ids.push_back(sd_ids[static_cast<std::size_t>(i) % sd_ids.size()]);
    // A second SD for even cases so all 63 unique SDs get referenced.
    bug.dependency_ids.push_back(
        sd_ids[static_cast<std::size_t>(i + 33) % sd_ids.size()]);

    const bool is_s1 = scenario_index == 0;
    const bool is_s4 = scenario_index == 3;
    if (is_s1) ++s1_seen;
    if (is_s4) ++s4_seen;

    // CPD involvement: the 4th s1 bug (meta_bg case) and four s4 bugs.
    if (is_s1 && s1_seen == 4) {
      bug.dependency_ids.push_back("cpdc-1");
    }
    if (is_s4 && s4_cpd_assigned < 4 && (s4_seen == 3 || s4_seen == 5 ||
                                         s4_seen == 13 || s4_seen == 29)) {
      bug.dependency_ids.push_back(cpd_ids[static_cast<std::size_t>(s4_cpd_assigned) %
                                           cpd_ids.size()]);
      ++s4_cpd_assigned;
    }

    // CCD involvement: all bugs except two s4 cases (Table 3: 34/36).
    const bool skip_ccd = is_s4 && (s4_seen == 26 || s4_seen == 35) && s4_no_ccd_assigned < 2;
    if (skip_ccd) {
      ++s4_no_ccd_assigned;
    } else if (spec.scenario == std::string("s3") && per_scenario_counter[2] == 5) {
      // The online-resize-without-resize_inode case is the study's one
      // CCD-control dependency.
      bug.dependency_ids.push_back("ccdc-1");
    } else {
      bug.dependency_ids.push_back("ccdb-" + std::to_string(next_ccd_behavioral));
      ++next_ccd_behavioral;
    }

    bugs.push_back(std::move(bug));
  }
  return bugs;
}

const char* scenarioTitle(const std::string& scenario) {
  if (scenario == "s1") return "mke2fs - mount - Ext4";
  if (scenario == "s2") return "mke2fs - mount - Ext4 - e4defrag";
  if (scenario == "s3") return "mke2fs - mount - Ext4 - umount - resize2fs";
  if (scenario == "s4") return "mke2fs - mount - Ext4 - umount - e2fsck";
  return "?";
}

}  // namespace

const std::vector<StudyDependency>& studyDependencies() {
  static const std::vector<StudyDependency> kDeps = buildDependencies();
  return kDeps;
}

const std::vector<BugCase>& bugCases() {
  static const std::vector<BugCase> kBugs = buildBugs(studyDependencies());
  return kBugs;
}

std::vector<ScenarioBugStats> aggregateTable3() {
  std::map<std::string, const StudyDependency*> by_id;
  for (const StudyDependency& d : studyDependencies()) by_id[d.id] = &d;

  std::map<std::string, ScenarioBugStats> stats;
  for (const char* s : {"s1", "s2", "s3", "s4"}) {
    stats[s].scenario = s;
    stats[s].title = scenarioTitle(s);
  }
  for (const BugCase& bug : bugCases()) {
    ScenarioBugStats& s = stats[bug.scenario];
    ++s.bugs;
    bool sd = false;
    bool cpd = false;
    bool ccd = false;
    for (const std::string& id : bug.dependency_ids) {
      const auto it = by_id.find(id);
      if (it == by_id.end()) continue;
      switch (model::depLevelOf(it->second->kind)) {
        case model::DepLevel::SelfDependency: sd = true; break;
        case model::DepLevel::CrossParameter: cpd = true; break;
        case model::DepLevel::CrossComponent: ccd = true; break;
      }
    }
    s.with_sd += sd ? 1 : 0;
    s.with_cpd += cpd ? 1 : 0;
    s.with_ccd += ccd ? 1 : 0;
  }

  std::vector<ScenarioBugStats> out;
  for (const char* s : {"s1", "s2", "s3", "s4"}) out.push_back(stats[s]);
  return out;
}

TaxonomyStats aggregateTable4() {
  TaxonomyStats stats;
  // Count unique dependencies that are referenced by at least one bug.
  std::map<std::string, const StudyDependency*> by_id;
  for (const StudyDependency& d : studyDependencies()) by_id[d.id] = &d;
  std::set<std::string> referenced;
  for (const BugCase& bug : bugCases()) {
    for (const std::string& id : bug.dependency_ids) referenced.insert(id);
  }
  for (const std::string& id : referenced) {
    const auto it = by_id.find(id);
    if (it != by_id.end()) ++stats.unique_counts[it->second->kind];
  }
  return stats;
}

int TaxonomyStats::total() const {
  int total = 0;
  for (const auto& [kind, count] : unique_counts) total += count;
  return total;
}

namespace {

std::string percentCell(int part, int whole) {
  if (part == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d (%s)", part,
                formatPercent(static_cast<double>(part) / whole).c_str());
  return buf;
}

}  // namespace

std::string formatTable3() {
  std::string out = "Table 3: Distribution of Configuration Bugs in Four Scenarios\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-48s | %5s | %-12s | %-10s | %-12s\n", "Usage Scenario",
                "#Bug", "SD", "CPD", "CCD");
  out += buf;
  out += std::string(100, '-') + "\n";
  int total_bugs = 0;
  int total_sd = 0;
  int total_cpd = 0;
  int total_ccd = 0;
  for (const ScenarioBugStats& s : aggregateTable3()) {
    std::snprintf(buf, sizeof(buf), "%-48s | %5d | %-12s | %-10s | %-12s\n", s.title.c_str(),
                  s.bugs, percentCell(s.with_sd, s.bugs).c_str(),
                  percentCell(s.with_cpd, s.bugs).c_str(),
                  percentCell(s.with_ccd, s.bugs).c_str());
    out += buf;
    total_bugs += s.bugs;
    total_sd += s.with_sd;
    total_cpd += s.with_cpd;
    total_ccd += s.with_ccd;
  }
  out += std::string(100, '-') + "\n";
  std::snprintf(buf, sizeof(buf), "%-48s | %5d | %-12s | %-10s | %-12s\n", "Total", total_bugs,
                percentCell(total_sd, total_bugs).c_str(),
                percentCell(total_cpd, total_bugs).c_str(),
                percentCell(total_ccd, total_bugs).c_str());
  out += buf;
  return out;
}

std::string formatTable4() {
  const TaxonomyStats stats = aggregateTable4();
  auto count = [&](DepKind kind) {
    const auto it = stats.unique_counts.find(kind);
    return it != stats.unique_counts.end() ? it->second : 0;
  };
  std::string out = "Table 4: A Taxonomy of Critical Configuration Dependencies\n";
  char buf[160];
  auto row = [&](const char* level, const char* sub, int n) {
    std::snprintf(buf, sizeof(buf), "%-28s | %-12s | %-6s | %d\n", level, sub,
                  n > 0 ? "Y" : "N", n);
    out += buf;
  };
  row("Self Dependency (SD)", "Data Type", count(DepKind::SdDataType));
  row("Self Dependency (SD)", "Value Range", count(DepKind::SdValueRange));
  row("Cross-Parameter Dep. (CPD)", "Control", count(DepKind::CpdControl));
  row("Cross-Parameter Dep. (CPD)", "Value", count(DepKind::CpdValue));
  row("Cross-Component Dep. (CCD)", "Control", count(DepKind::CcdControl));
  row("Cross-Component Dep. (CCD)", "Value", count(DepKind::CcdValue));
  row("Cross-Component Dep. (CCD)", "Behavioral", count(DepKind::CcdBehavioral));
  std::snprintf(buf, sizeof(buf), "Total: %d critical dependencies\n", stats.total());
  out += buf;
  return out;
}

}  // namespace fsdep::study
