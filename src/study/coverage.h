// Test-suite configuration coverage (paper Table 2): how many of a
// component's parameters the de-facto test suites actually exercise.
// The scanner tokenizes each test case and matches parameter spellings
// (short flags, -O features, -o options, opt= prefixes).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "model/config_model.h"

namespace fsdep::study {

struct CoverageReport {
  std::string suite;
  std::string target;
  std::size_t total_parameters = 0;
  std::set<std::string> used_parameters;  ///< qualified names

  [[nodiscard]] std::size_t usedCount() const { return used_parameters.size(); }
  [[nodiscard]] double usedFraction() const {
    return total_parameters == 0
               ? 0.0
               : static_cast<double>(used_parameters.size()) / static_cast<double>(total_parameters);
  }
};

/// Normalized match token of a parameter: "-b", "meta_bg", "commit=", ...
std::string parameterMatchToken(const model::Parameter& param);

/// Tokenizes one test-case body (whitespace split, shell punctuation
/// trimmed).
std::vector<std::string> tokenizeCaseText(std::string_view text);

/// Scans one manifest against the ecosystem registry. A target of
/// "ext4-ecosystem" covers mke2fs + mount + ext4.
CoverageReport scanSuite(const corpus::SuiteManifest& manifest, const model::Ecosystem& ecosystem);

/// Runs the whole Table 2 study over the embedded manifests.
std::vector<CoverageReport> runCoverageStudy();

/// Renders Table 2 in the paper's layout.
std::string formatTable2(const std::vector<CoverageReport>& reports);

}  // namespace fsdep::study
