// The multi-level dependency extractor (paper §4.1).
//
// Input: per-component taint analyses (one Analyzer per component TU, run
// over the scenario's pre-selected functions). Output: deduplicated
// model::Dependency records.
//
// Rules (documented in DESIGN.md §5):
//  SD-type   — a tainted variable assigned from a typed parser function
//              (parse_num -> integer, parse_size -> size, ...).
//  SD-range  — error guard comparing one parameter against a constant;
//              bounds from multiple guards merge into one range. Guards on
//              a metadata field against a constant become SD on the
//              metadata owner's parameter (ext4.<field>), no matter which
//              component performs the check — mirroring that the on-disk
//              field is the parameter's persistent form.
//  CPD       — error guard whose violation involves exactly two parameters
//              of the same component: flag+flag -> control
//              (excludes/requires), comparison -> value.
//  CCD       — cross-component, bridged through shared metadata fields
//              (paper's key observation): a guard or derivation in
//              component B touching a field written with component A's
//              parameter. Error guards give control/value CCDs; behavioral
//              guards and multi-parameter derivations give behavioral CCDs.
//              Feature bitmaps are matched bit-precisely: a test of
//              `s_feature_compat & RESIZE_INODE` bridges only to writers
//              whose written mask overlaps.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "extract/guards.h"
#include "model/dependency.h"
#include "taint/analyzer.h"

namespace fsdep::extract {

/// One component's analysis, ready for extraction.
struct ComponentRun {
  std::string component;          ///< e.g. "mke2fs"
  bool is_kernel = false;
  const taint::Analyzer* analyzer = nullptr;  ///< run() already executed
  const sema::Sema* sema = nullptr;
};

struct ExtractOptions {
  /// Component that owns the on-disk metadata (field-based SDs attach
  /// here).
  std::string metadata_owner = "ext4";
  /// parser function name -> type name, for SD-type extraction.
  std::map<std::string, std::string> parser_types;
  /// callee names that mark an error path.
  std::vector<std::string> error_functions;
  /// Ablation knob: disable metadata bridging (CCD extraction collapses).
  bool enable_bridging = true;
};

/// Extracts and deduplicates dependencies across the given component runs.
std::vector<model::Dependency> extractDependencies(const std::vector<ComponentRun>& runs,
                                                   const ExtractOptions& options);

}  // namespace fsdep::extract
