// Scoring of extracted dependencies against a labelled ground truth
// (Table 5 of the paper). Ground-truth validity is *scenario-conditional*:
// a dependency the analyzer extracts can be a true constraint in one usage
// scenario and spurious in another (e.g. a mount-time tunable check that
// says nothing about the offline-resize path). EXPERIMENTS.md discusses
// how this reconciles the per-scenario FP columns of the paper's Table 5.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "model/dependency.h"

namespace fsdep::extract {

struct GroundTruthEntry {
  /// Canonical form of the dependency; matching is by dedupKey().
  model::Dependency dep;
  /// Scenario ids in which this dependency is a TRUE constraint; when the
  /// analyzer extracts it in any other scenario, that extraction is a
  /// false positive.
  std::set<std::string> valid_scenarios;
  /// Scenario ids in which the (intra-procedural) analyzer is expected to
  /// extract it at all — used for false-negative reporting.
  std::set<std::string> expected_scenarios;
  /// Why the dependency is spurious where it is not valid.
  std::string fp_rationale;
};

struct LevelScore {
  int extracted = 0;
  int false_positives = 0;
  [[nodiscard]] int truePositives() const { return extracted - false_positives; }
};

struct ScenarioScore {
  std::string scenario;
  LevelScore sd;
  LevelScore cpd;
  LevelScore ccd;
  std::vector<model::Dependency> false_positive_deps;
  std::vector<std::string> false_negative_ids;
  /// Extractions with no ground-truth entry at all (should be empty for
  /// the shipped corpus; reported for user-supplied code).
  std::vector<model::Dependency> unlabelled;

  [[nodiscard]] int totalExtracted() const { return sd.extracted + cpd.extracted + ccd.extracted; }
  [[nodiscard]] int totalFalsePositives() const {
    return sd.false_positives + cpd.false_positives + ccd.false_positives;
  }
};

/// Scores one scenario's extraction output.
ScenarioScore scoreScenario(const std::string& scenario_id,
                            const std::vector<model::Dependency>& extracted,
                            const std::vector<GroundTruthEntry>& ground_truth);

/// Deduplicates dependencies across scenarios (paper's "Total Unique"
/// row): keeps first occurrence by dedupKey.
std::vector<model::Dependency> dedupeAcrossScenarios(
    const std::vector<std::vector<model::Dependency>>& per_scenario);

/// Scores the deduplicated union: a unique dependency is a false positive
/// when it is spurious in at least one scenario where it was extracted.
ScenarioScore scoreUnique(const std::vector<std::vector<model::Dependency>>& per_scenario,
                          const std::vector<std::string>& scenario_ids,
                          const std::vector<GroundTruthEntry>& ground_truth);

}  // namespace fsdep::extract
