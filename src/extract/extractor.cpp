#include "extract/extractor.h"

#include <algorithm>

namespace fsdep::extract {

using namespace ast;
using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

namespace {

std::string componentOf(std::string_view qualified_param) {
  const std::size_t dot = qualified_param.find('.');
  return std::string(qualified_param.substr(0, dot));
}

std::string fieldNameOf(std::string_view field_key) {
  const std::size_t dot = field_key.rfind('.');
  return std::string(dot == std::string_view::npos ? field_key : field_key.substr(dot + 1));
}

std::string slug(std::string_view text) {
  std::string out;
  for (char c : text) out += (c == '.' || c == ' ') ? '-' : c;
  return out;
}

constexpr std::int64_t kAllBits = -1;

/// A parameter written into a metadata field, with the bitmask it set.
struct FieldWriter {
  std::string param;      ///< "mke2fs.sparse_super2"
  std::string component;  ///< "mke2fs"
  std::int64_t mask = kAllBits;
};

/// What one side of a comparison (or one flag atom) refers to.
struct SideInfo {
  std::vector<std::string> params;               ///< qualified param payloads
  std::vector<std::string> field_keys;           ///< carried field labels
  std::optional<std::int64_t> constant;
};

struct FieldRead {
  std::string key;
  std::int64_t mask = kAllBits;
};

class Extraction {
 public:
  Extraction(const std::vector<ComponentRun>& runs, const ExtractOptions& options)
      : runs_(runs), options_(options) {}

  std::vector<Dependency> run() {
    buildWriterMap();
    for (const ComponentRun& comp : runs_) {
      extractSdTypes(comp);
      const std::vector<Guard> guards =
          collectGuards(*comp.analyzer, *comp.sema, options_.error_functions);
      for (const Guard& guard : guards) {
        if (guard.disposition == GuardDisposition::ErrorOnTrue ||
            guard.disposition == GuardDisposition::ErrorOnFalse) {
          for (const Violation& v : guard.violations) handleViolation(comp, guard, v);
        } else if (guard.disposition == GuardDisposition::Behavioral) {
          handleBehavioralGuard(comp, guard);
        }
      }
      extractDerivations(comp);
    }
    emitSdRanges();
    return std::move(deps_);
  }

 private:
  // -------------------------------------------------------------------
  // Writer map (the metadata bridge)
  // -------------------------------------------------------------------
  void buildWriterMap() {
    if (!options_.enable_bridging) return;
    for (const ComponentRun& comp : runs_) {
      for (const taint::WriteEvent* e : comp.analyzer->writeEvents()) {
        if (!e->is_field) continue;
        const std::int64_t mask = writeMask(*e, *comp.sema);
        for (const taint::LabelId id : e->labels) {
          if (!comp.analyzer->labels().isParam(id)) continue;
          const std::string param(comp.analyzer->labels().payload(id));
          writers_[e->field_key].push_back(FieldWriter{param, componentOf(param), mask});
        }
      }
    }
  }

  static std::int64_t writeMask(const taint::WriteEvent& e, const sema::Sema& sema) {
    if (e.rhs == nullptr) return kAllBits;
    if (e.op == BinaryOp::OrAssign) {
      if (const auto v = sema.foldConstant(*e.rhs)) return *v;
      // `field |= (flag ? MASK : 0)`: the union of the foldable arms is
      // the precise set of bits this write can set.
      if (e.rhs->kind() == ExprKind::Conditional) {
        const auto& c = static_cast<const ConditionalExpr&>(*e.rhs);
        const auto t = sema.foldConstant(*c.then_expr);
        const auto f = sema.foldConstant(*c.else_expr);
        if (t || f) {
          const std::int64_t mask = t.value_or(0) | f.value_or(0);
          if (mask != 0) return mask;
        }
      }
      return kAllBits;
    }
    if (e.op == BinaryOp::Assign && e.rhs->kind() == ExprKind::Binary) {
      const auto& b = static_cast<const BinaryExpr&>(*e.rhs);
      if (b.op == BinaryOp::BitOr) {
        if (const auto v = sema.foldConstant(*b.rhs)) return *v;
        if (const auto v = sema.foldConstant(*b.lhs)) return *v;
      }
    }
    return kAllBits;
  }

  [[nodiscard]] std::vector<FieldWriter> writersOf(const std::string& field_key,
                                                   std::int64_t mask) const {
    std::vector<FieldWriter> out;
    const auto it = writers_.find(field_key);
    if (it == writers_.end()) return out;
    for (const FieldWriter& w : it->second) {
      if ((w.mask & mask) != 0) out.push_back(w);
    }
    // Deduplicate by param.
    std::sort(out.begin(), out.end(),
              [](const FieldWriter& a, const FieldWriter& b) { return a.param < b.param; });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const FieldWriter& a, const FieldWriter& b) {
                            return a.param == b.param;
                          }),
              out.end());
    return out;
  }

  // -------------------------------------------------------------------
  // SD: data types
  // -------------------------------------------------------------------
  void extractSdTypes(const ComponentRun& comp) {
    for (const taint::WriteEvent* e : comp.analyzer->writeEvents()) {
      if (e->is_field || e->rhs_callee.empty()) continue;
      const auto type_it = options_.parser_types.find(e->rhs_callee);
      if (type_it == options_.parser_types.end()) continue;
      std::vector<std::string> params;
      for (const taint::LabelId id : e->labels) {
        if (comp.analyzer->labels().isParam(id)) {
          params.emplace_back(comp.analyzer->labels().payload(id));
        }
      }
      if (params.size() != 1) continue;
      Dependency dep;
      dep.kind = DepKind::SdDataType;
      dep.op = ConstraintOp::HasType;
      dep.param = params[0];
      dep.type_name = type_it->second;
      dep.id = "sd-type-" + slug(dep.param);
      dep.description = dep.param + " must parse as " + dep.type_name + " (via " +
                        e->rhs_callee + "())";
      dep.evidence = SourceRange{e->loc, e->loc};
      attachTrace(dep, comp, e->object);
      emit(std::move(dep));
    }
  }

  // -------------------------------------------------------------------
  // Violations (error guards)
  // -------------------------------------------------------------------
  void handleViolation(const ComponentRun& comp, const Guard& guard, const Violation& violation) {
    struct FlagUnit {
      std::string param;
      std::string component;
      bool negated = false;
      std::string bridge;
    };
    std::vector<FlagUnit> flag_units;

    for (const Atom& atom : violation) {
      if (atom.is_comparison) {
        handleComparisonAtom(comp, guard, atom);
        continue;
      }
      // Flag-ish atom. Special numeric idioms first.
      if (atom.expr->kind() == ExprKind::Binary) {
        const auto& b = static_cast<const BinaryExpr&>(*atom.expr);
        if (b.op == BinaryOp::Rem && !atom.negated) {
          handleMultipleOf(comp, guard, b);
          continue;
        }
        if (isPowerOfTwoTest(*atom.expr) && !atom.negated) {
          handlePowerOfTwo(comp, guard, b);
          continue;
        }
      }
      // Generic flag: direct parameter(s) and/or a masked field test.
      const SideInfo info = classify(comp, guard, *atom.expr);
      for (const std::string& p : info.params) {
        flag_units.push_back(FlagUnit{p, componentOf(p), atom.negated, ""});
      }
      if (options_.enable_bridging) {
        const std::int64_t mask = bitTestMask(*atom.expr, *comp.sema).value_or(kAllBits);
        for (const FieldRead& fr : fieldReadsIn(*atom.expr, *comp.sema, mask)) {
          for (const FieldWriter& w : writersOf(fr.key, fr.mask)) {
            flag_units.push_back(FlagUnit{w.param, w.component, atom.negated, fr.key});
          }
        }
      }
    }

    // A parameter read directly and rediscovered through its own field
    // write is one unit, not two.
    std::sort(flag_units.begin(), flag_units.end(),
              [](const FlagUnit& a, const FlagUnit& b) { return a.param < b.param; });
    flag_units.erase(std::unique(flag_units.begin(), flag_units.end(),
                                 [](const FlagUnit& a, const FlagUnit& b) {
                                   return a.param == b.param;
                                 }),
                     flag_units.end());

    // Pair rule: exactly two distinct flag units -> control dependency.
    if (flag_units.size() == 2 && flag_units[0].param != flag_units[1].param) {
      FlagUnit a = flag_units[0];
      FlagUnit b = flag_units[1];
      const bool cross = a.component != b.component;
      Dependency dep;
      dep.kind = cross ? DepKind::CcdControl : DepKind::CpdControl;
      dep.bridge_field = !a.bridge.empty() ? a.bridge : b.bridge;
      if (!a.negated && !b.negated) {
        dep.op = ConstraintOp::Excludes;
        dep.param = a.param;
        dep.other_param = b.param;
        dep.description = a.param + " cannot be combined with " + b.param;
      } else if (a.negated != b.negated) {
        // Violation (A && !B) => constraint A requires B.
        const FlagUnit& pos = a.negated ? b : a;
        const FlagUnit& neg = a.negated ? a : b;
        dep.op = ConstraintOp::Requires;
        dep.param = pos.param;
        dep.other_param = neg.param;
        dep.description = pos.param + " requires " + neg.param;
      } else {
        return;  // (!A && !B): "at least one required" — not modelled
      }
      dep.id = std::string(dep.kind == DepKind::CcdControl ? "ccd-control-" : "cpd-control-") +
               slug(dep.param) + "-" + slug(dep.other_param);
      dep.evidence = SourceRange{guard.condition->loc, guard.condition->loc};
      dep.description += " (guard in " + guard.fn->name + ")";
      attachGuardTrace(dep, comp, guard);
      emit(std::move(dep));
    }
  }

  void handleMultipleOf(const ComponentRun& comp, const Guard& guard, const BinaryExpr& rem) {
    const auto divisor = comp.sema->foldConstant(*rem.rhs);
    if (!divisor || *divisor <= 0) return;
    const std::string param = soleParamOf(comp, guard, *rem.lhs);
    if (param.empty()) return;
    SdAgg& agg = sd_ranges_[param];
    agg.multiple = *divisor;
    noteEvidence(agg, comp, guard);
  }

  void handlePowerOfTwo(const ComponentRun& comp, const Guard& guard, const BinaryExpr& band) {
    const std::string param = soleParamOf(comp, guard, *band.lhs);
    if (param.empty()) return;
    SdAgg& agg = sd_ranges_[param];
    agg.pow2 = true;
    noteEvidence(agg, comp, guard);
  }

  void handleComparisonAtom(const ComponentRun& comp, const Guard& guard, const Atom& atom) {
    SideInfo lhs = classify(comp, guard, *atom.lhs);
    SideInfo rhs = classify(comp, guard, *atom.rhs);
    BinaryOp cmp = atom.cmp;

    // Normalize: interesting side (param/field) on the left.
    const bool lhs_interesting = !lhs.params.empty() || !lhs.field_keys.empty() ||
                                 !fieldReadsIn(*atom.lhs, *comp.sema, kAllBits).empty();
    if (!lhs_interesting && lhs.constant.has_value()) {
      std::swap(lhs, rhs);
      cmp = mirror(cmp);
      handleNormalizedComparison(comp, guard, atom, *atom.rhs, *atom.lhs, lhs, rhs, cmp);
      return;
    }
    handleNormalizedComparison(comp, guard, atom, *atom.lhs, *atom.rhs, lhs, rhs, cmp);
  }

  void handleNormalizedComparison(const ComponentRun& comp, const Guard& guard, const Atom& atom,
                                  const Expr& lexpr, const Expr& rexpr, const SideInfo& lhs,
                                  const SideInfo& rhs, BinaryOp cmp) {
    // The atom is the VIOLATION; the constraint is its negation.
    const BinaryOp constraint = negateCmp(cmp);

    // Resolve the left anchor: a parameter, or a metadata field.
    std::string left_param;
    std::string left_bridge;
    if (lhs.params.size() == 1) {
      left_param = lhs.params[0];
    } else if (lhs.params.empty()) {
      // Field-only left side: attribute to the metadata owner.
      const std::vector<FieldRead> reads = fieldReadsIn(lexpr, *comp.sema, kAllBits);
      std::vector<std::string> keys = lhs.field_keys;
      for (const FieldRead& fr : reads) keys.push_back(fr.key);
      if (keys.empty()) return;
      left_bridge = keys[0];
      left_param = options_.metadata_owner + "." + fieldNameOf(keys[0]);
    } else {
      return;  // multiple parameters on one side: ambiguous, skip
    }

    // Case 1: right side constant -> SD range bound.
    if (rhs.constant.has_value() && rhs.params.empty() && rhs.field_keys.empty()) {
      addBound(comp, guard, left_param, constraint, *rhs.constant, left_bridge);
      return;
    }

    // Resolve the right side to a parameter (direct or via field writers).
    std::vector<std::pair<std::string, std::string>> right_params;  // (param, bridge)
    if (rhs.params.size() == 1) {
      right_params.emplace_back(rhs.params[0], "");
    } else if (rhs.params.empty()) {
      std::vector<std::string> keys = rhs.field_keys;
      for (const FieldRead& fr : fieldReadsIn(rexpr, *comp.sema, kAllBits)) keys.push_back(fr.key);
      for (const std::string& key : keys) {
        for (const FieldWriter& w : writersOf(key, kAllBits)) {
          right_params.emplace_back(w.param, key);
        }
      }
    }
    if (right_params.empty()) return;

    // If the left side was field-only, try to rebind it to its writer so
    // the dependency names the real source parameter when it exists.
    std::vector<std::pair<std::string, std::string>> left_candidates;  // (param, bridge)
    if (!left_bridge.empty()) {
      for (const FieldWriter& w : writersOf(left_bridge, kAllBits)) {
        left_candidates.emplace_back(w.param, left_bridge);
      }
      if (left_candidates.empty()) left_candidates.emplace_back(left_param, left_bridge);
    } else {
      left_candidates.emplace_back(left_param, "");
    }

    for (const auto& [lp, lbridge] : left_candidates) {
      for (const auto& [rp, rbridge] : right_params) {
        if (lp == rp) continue;
        const bool cross = componentOf(lp) != componentOf(rp);
        Dependency dep;
        dep.kind = cross ? DepKind::CcdValue : DepKind::CpdValue;
        dep.op = toConstraintOp(constraint);
        dep.param = lp;
        dep.other_param = rp;
        dep.bridge_field = !rbridge.empty() ? rbridge : lbridge;
        dep.id = std::string(cross ? "ccd-value-" : "cpd-value-") + slug(lp) + "-" + slug(rp);
        dep.description = lp + " must satisfy: " + exprToString(lexpr) + " " +
                          binaryOpSpelling(constraint) + " " + exprToString(rexpr) +
                          " (guard in " + guard.fn->name + ")";
        dep.evidence = SourceRange{atom.lhs->loc, atom.rhs->loc};
        attachGuardTrace(dep, comp, guard);
        emit(std::move(dep));
      }
    }
  }

  // -------------------------------------------------------------------
  // Behavioral guards and derivations -> behavioral CCD
  // -------------------------------------------------------------------
  void handleBehavioralGuard(const ComponentRun& comp, const Guard& guard) {
    if (!options_.enable_bridging) return;
    const taint::LabelSet labels = comp.analyzer->labelsOf(*guard.condition, *guard.state);
    std::vector<std::string> own_params;
    std::vector<FieldRead> fields = fieldReadsIn(*guard.condition, *comp.sema, kAllBits);
    std::set<std::string> read_keys;
    for (const FieldRead& fr : fields) read_keys.insert(fr.key);
    for (const taint::LabelId id : labels) {
      if (comp.analyzer->labels().isParam(id)) {
        own_params.emplace_back(comp.analyzer->labels().payload(id));
      } else if (comp.analyzer->labels().isField(id)) {
        // Carried field labels cover values *derived* from a field before
        // the guard; a field the condition reads directly already has a
        // (bit-precise) entry, which the unmasked carried label must not
        // widen.
        const std::string key(comp.analyzer->labels().payload(id));
        if (!read_keys.contains(key)) fields.push_back(FieldRead{key, kAllBits});
      }
    }
    for (const FieldRead& fr : fields) {
      for (const FieldWriter& w : writersOf(fr.key, fr.mask)) {
        std::string anchor;
        if (!own_params.empty()) {
          anchor = own_params[0];
          if (componentOf(anchor) == w.component) continue;
        } else {
          if (w.component == comp.component) continue;
          anchor = comp.component + "." + guard.fn->name;
        }
        emitBehavioral(comp, anchor, w.param, fr.key,
                       "behavior of " + comp.component + "::" + guard.fn->name +
                           " branches on " + fr.key,
                       guard.condition->loc);
      }
    }
  }

  void extractDerivations(const ComponentRun& comp) {
    if (!options_.enable_bridging) return;
    for (const taint::WriteEvent* e : comp.analyzer->writeEvents()) {
      if (e->is_field) continue;
      std::vector<std::string> params;
      std::vector<std::string> fields;
      for (const taint::LabelId id : e->labels) {
        if (comp.analyzer->labels().isParam(id)) {
          params.emplace_back(comp.analyzer->labels().payload(id));
        } else if (comp.analyzer->labels().isField(id)) {
          fields.emplace_back(comp.analyzer->labels().payload(id));
        }
      }
      if (params.empty() || fields.empty()) continue;
      for (const std::string& p : params) {
        for (const std::string& key : fields) {
          for (const FieldWriter& w : writersOf(key, kAllBits)) {
            if (w.component == componentOf(p)) continue;
            emitBehavioral(comp, p, w.param, key,
                           e->object + " is derived from both " + p + " and " + key, e->loc);
          }
        }
      }
    }
  }

  void emitBehavioral(const ComponentRun& comp, const std::string& anchor,
                      const std::string& writer, const std::string& bridge,
                      const std::string& description, SourceLoc loc) {
    Dependency dep;
    dep.kind = DepKind::CcdBehavioral;
    dep.op = ConstraintOp::Influences;
    dep.param = anchor;
    dep.other_param = writer;
    dep.bridge_field = bridge;
    dep.id = "ccd-behavioral-" + slug(anchor) + "-" + slug(writer);
    dep.description = description;
    dep.evidence = SourceRange{loc, loc};
    attachTrace(dep, comp, bridge);
    emit(std::move(dep));
  }

  // -------------------------------------------------------------------
  // SD range aggregation
  // -------------------------------------------------------------------
  struct SdAgg {
    std::optional<std::int64_t> low;
    std::optional<std::int64_t> high;
    std::optional<std::int64_t> multiple;
    bool pow2 = false;
    std::string bridge;
    SourceRange evidence;
    std::vector<std::string> trace;
  };

  void addBound(const ComponentRun& comp, const Guard& guard, const std::string& param,
                BinaryOp constraint, std::int64_t value, const std::string& bridge) {
    SdAgg& agg = sd_ranges_[param];
    switch (constraint) {
      case BinaryOp::Ge: agg.low = std::max(agg.low.value_or(INT64_MIN), value); break;
      case BinaryOp::Gt: agg.low = std::max(agg.low.value_or(INT64_MIN), value + 1); break;
      case BinaryOp::Le: agg.high = std::min(agg.high.value_or(INT64_MAX), value); break;
      case BinaryOp::Lt: agg.high = std::min(agg.high.value_or(INT64_MAX), value - 1); break;
      default: return;  // ==/!= constraints are not ranges
    }
    if (!bridge.empty()) agg.bridge = bridge;
    noteEvidence(agg, comp, guard);
  }

  void noteEvidence(SdAgg& agg, const ComponentRun& comp, const Guard& guard) {
    if (!agg.evidence.valid()) {
      agg.evidence = SourceRange{guard.condition->loc, guard.condition->loc};
    }
    const std::string step = "guard in " + comp.component + "::" + guard.fn->name + ": " +
                             exprToString(*guard.condition);
    // A two-sided range check contributes two bounds from one guard; keep
    // the trace line once.
    if (agg.trace.empty() || agg.trace.back() != step) agg.trace.push_back(step);
  }

  void emitSdRanges() {
    for (auto& [param, agg] : sd_ranges_) {
      Dependency dep;
      dep.kind = DepKind::SdValueRange;
      dep.param = param;
      dep.bridge_field = agg.bridge;
      dep.evidence = agg.evidence;
      dep.trace = agg.trace;
      if (agg.low || agg.high) {
        dep.op = ConstraintOp::InRange;
        dep.low = agg.low;
        dep.high = agg.high;
        dep.description = param + " must be in range [" +
                          (agg.low ? std::to_string(*agg.low) : "-inf") + ", " +
                          (agg.high ? std::to_string(*agg.high) : "+inf") + "]";
        if (agg.multiple) dep.description += ", multiple of " + std::to_string(*agg.multiple);
        if (agg.pow2) dep.description += ", power of two";
      } else if (agg.multiple) {
        dep.op = ConstraintOp::MultipleOf;
        dep.low = agg.multiple;
        dep.description = param + " must be a multiple of " + std::to_string(*agg.multiple);
      } else if (agg.pow2) {
        dep.op = ConstraintOp::PowerOfTwo;
        dep.description = param + " must be a power of two";
      } else {
        continue;
      }
      dep.id = "sd-range-" + slug(param);
      emit(std::move(dep));
    }
  }

  // -------------------------------------------------------------------
  // Helpers
  // -------------------------------------------------------------------
  SideInfo classify(const ComponentRun& comp, const Guard& guard, const Expr& expr) const {
    SideInfo info;
    const taint::LabelSet labels = comp.analyzer->labelsOf(expr, *guard.state);
    for (const taint::LabelId id : labels) {
      if (comp.analyzer->labels().isParam(id)) {
        info.params.emplace_back(comp.analyzer->labels().payload(id));
      } else if (comp.analyzer->labels().isField(id)) {
        info.field_keys.emplace_back(comp.analyzer->labels().payload(id));
      }
    }
    std::sort(info.params.begin(), info.params.end());
    info.params.erase(std::unique(info.params.begin(), info.params.end()), info.params.end());
    // A side that carries a parameter is "the parameter's side"; its field
    // labels are incidental (picked up while deriving the value).
    if (!info.params.empty()) info.field_keys.clear();
    info.constant = comp.sema->foldConstant(expr);
    return info;
  }

  /// The single parameter an expression refers to, or "" when none/many.
  std::string soleParamOf(const ComponentRun& comp, const Guard& guard, const Expr& expr) const {
    const SideInfo info = classify(comp, guard, expr);
    if (info.params.size() == 1) return info.params[0];
    if (info.params.empty()) {
      std::vector<std::string> keys = info.field_keys;
      for (const FieldRead& fr : fieldReadsIn(expr, *comp.sema, kAllBits)) keys.push_back(fr.key);
      if (!keys.empty()) return options_.metadata_owner + "." + fieldNameOf(keys[0]);
    }
    return "";
  }

  /// All metadata field reads inside `expr`; a read nested under `x & MASK`
  /// gets that mask, `default_mask` otherwise.
  static std::vector<FieldRead> fieldReadsIn(const Expr& expr, const sema::Sema& sema,
                                             std::int64_t default_mask) {
    std::vector<FieldRead> out;
    collectFieldReads(expr, sema, default_mask, out);
    return out;
  }

  static void collectFieldReads(const Expr& expr, const sema::Sema& sema, std::int64_t mask,
                                std::vector<FieldRead>& out) {
    switch (expr.kind()) {
      case ExprKind::Member: {
        const auto& m = static_cast<const MemberExpr&>(expr);
        if (m.record != nullptr && m.field != nullptr) {
          out.push_back(FieldRead{taint::fieldKey(m.record->name, m.field->name), mask});
        }
        collectFieldReads(*m.base, sema, mask, out);
        break;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        std::int64_t child_mask = mask;
        if (b.op == BinaryOp::BitAnd) {
          if (const auto v = bitTestMask(expr, sema)) child_mask = *v;
        }
        collectFieldReads(*b.lhs, sema, child_mask, out);
        collectFieldReads(*b.rhs, sema, child_mask, out);
        break;
      }
      case ExprKind::Unary:
        collectFieldReads(*static_cast<const UnaryExpr&>(expr).operand, sema, mask, out);
        break;
      case ExprKind::Cast:
        collectFieldReads(*static_cast<const CastExpr&>(expr).operand, sema, mask, out);
        break;
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        collectFieldReads(*i.base, sema, mask, out);
        collectFieldReads(*i.index, sema, mask, out);
        break;
      }
      case ExprKind::Call:
        for (const ExprPtr& a : static_cast<const CallExpr&>(expr).args) {
          collectFieldReads(*a, sema, mask, out);
        }
        break;
      case ExprKind::Conditional: {
        const auto& c = static_cast<const ConditionalExpr&>(expr);
        collectFieldReads(*c.cond, sema, mask, out);
        collectFieldReads(*c.then_expr, sema, mask, out);
        collectFieldReads(*c.else_expr, sema, mask, out);
        break;
      }
      default:
        break;
    }
  }

  static BinaryOp mirror(BinaryOp op) {
    switch (op) {
      case BinaryOp::Lt: return BinaryOp::Gt;
      case BinaryOp::Le: return BinaryOp::Ge;
      case BinaryOp::Gt: return BinaryOp::Lt;
      case BinaryOp::Ge: return BinaryOp::Le;
      default: return op;
    }
  }

  static BinaryOp negateCmp(BinaryOp op) {
    switch (op) {
      case BinaryOp::Lt: return BinaryOp::Ge;
      case BinaryOp::Le: return BinaryOp::Gt;
      case BinaryOp::Gt: return BinaryOp::Le;
      case BinaryOp::Ge: return BinaryOp::Lt;
      case BinaryOp::Eq: return BinaryOp::Ne;
      case BinaryOp::Ne: return BinaryOp::Eq;
      default: return op;
    }
  }

  static ConstraintOp toConstraintOp(BinaryOp op) {
    switch (op) {
      case BinaryOp::Lt: return ConstraintOp::Lt;
      case BinaryOp::Le: return ConstraintOp::Le;
      case BinaryOp::Gt: return ConstraintOp::Gt;
      case BinaryOp::Ge: return ConstraintOp::Ge;
      case BinaryOp::Eq: return ConstraintOp::Eq;
      case BinaryOp::Ne: return ConstraintOp::Ne;
      default: return ConstraintOp::Eq;
    }
  }

  void attachTrace(Dependency& dep, const ComponentRun& comp, const std::string& object) {
    if (const auto* trace = comp.analyzer->traceFor(object)) {
      for (const taint::TraceStep& step : *trace) {
        dep.trace.push_back("L" + std::to_string(step.loc.line) + ": " + step.text);
      }
    }
  }

  void attachGuardTrace(Dependency& dep, const ComponentRun& comp, const Guard& guard) {
    dep.trace.push_back("guard in " + comp.component + "::" + guard.fn->name + ": if (" +
                        exprToString(*guard.condition) + ")");
  }

  void emit(Dependency dep) {
    const std::string key = dep.dedupKey();
    if (!seen_.insert(key).second) return;
    deps_.push_back(std::move(dep));
  }

  const std::vector<ComponentRun>& runs_;
  const ExtractOptions& options_;
  std::map<std::string, std::vector<FieldWriter>> writers_;
  std::map<std::string, SdAgg> sd_ranges_;
  std::set<std::string> seen_;
  std::vector<Dependency> deps_;
};

}  // namespace

std::vector<Dependency> extractDependencies(const std::vector<ComponentRun>& runs,
                                            const ExtractOptions& options) {
  return Extraction(runs, options).run();
}

}  // namespace fsdep::extract
