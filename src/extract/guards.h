// Guard analysis: finds branch conditions, classifies each branch arm as
// error-exit or normal continuation, and normalizes the *violation
// condition* (the condition under which the error fires) into disjunctive
// normal form of atoms. The dependency extractor pattern-matches those
// atoms.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "cfg/cfg.h"
#include "sema/sema.h"
#include "taint/analyzer.h"

namespace fsdep::extract {

/// One atomic predicate of a violation condition, polarity-normalized.
struct Atom {
  const ast::Expr* expr = nullptr;  ///< the atom as written (without '!')
  bool negated = false;             ///< true: the violation requires !expr

  // Comparison decomposition (set when expr is a comparison after polarity
  // folding: a negated `<` becomes `>=`, etc.).
  bool is_comparison = false;
  ast::BinaryOp cmp = ast::BinaryOp::Eq;
  const ast::Expr* lhs = nullptr;
  const ast::Expr* rhs = nullptr;
};

/// A conjunction of atoms; the whole conjunction triggers the error.
using Violation = std::vector<Atom>;

enum class GuardDisposition {
  ErrorOnTrue,   ///< if (cond) fail();
  ErrorOnFalse,  ///< if (!ok) continue; else fail();  (error on false arm)
  Behavioral,    ///< both arms continue normally
  Opaque,        ///< both arms error, or unreachable arms — skipped
};

struct Guard {
  const ast::FunctionDecl* fn = nullptr;
  cfg::BlockId block = cfg::kInvalidBlock;
  const ast::Expr* condition = nullptr;
  GuardDisposition disposition = GuardDisposition::Opaque;
  /// DNF of the violation condition (empty for behavioral guards).
  std::vector<Violation> violations;
  /// Taint state at the condition.
  const taint::TaintState* state = nullptr;
};

/// Collects guards from every analyzed function of `analyzer`.
/// `error_functions` are callee names that mark a block as an error path
/// (usage(), fail(), com_err(), ...); returning a negative constant also
/// counts.
std::vector<Guard> collectGuards(const taint::Analyzer& analyzer, const sema::Sema& sema,
                                 const std::vector<std::string>& error_functions);

/// Converts `cond` (negated when `negate`) to DNF. Exposed for tests.
std::vector<Violation> toDnf(const ast::Expr& cond, bool negate);

/// Finds the first Member expression inside `expr` (the metadata field a
/// flag test reads), or nullptr.
const ast::MemberExpr* findMemberRead(const ast::Expr& expr);

/// If `expr` is a bit-test of the form `x & MASK` (either operand a
/// foldable constant), returns the mask.
std::optional<std::int64_t> bitTestMask(const ast::Expr& expr, const sema::Sema& sema);

/// True when `expr` matches the power-of-two idiom `x & (x - 1)`.
bool isPowerOfTwoTest(const ast::Expr& expr);

}  // namespace fsdep::extract
