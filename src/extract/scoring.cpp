#include "extract/scoring.h"

#include <map>

namespace fsdep::extract {

using model::DepLevel;
using model::Dependency;

namespace {

LevelScore& levelOf(ScenarioScore& score, DepLevel level) {
  switch (level) {
    case DepLevel::SelfDependency: return score.sd;
    case DepLevel::CrossParameter: return score.cpd;
    case DepLevel::CrossComponent: return score.ccd;
  }
  return score.sd;
}

}  // namespace

ScenarioScore scoreScenario(const std::string& scenario_id,
                            const std::vector<Dependency>& extracted,
                            const std::vector<GroundTruthEntry>& ground_truth) {
  std::map<std::string, const GroundTruthEntry*> by_key;
  for (const GroundTruthEntry& entry : ground_truth) by_key[entry.dep.dedupKey()] = &entry;

  ScenarioScore score;
  score.scenario = scenario_id;
  std::set<std::string> extracted_keys;
  for (const Dependency& dep : extracted) {
    extracted_keys.insert(dep.dedupKey());
    LevelScore& level = levelOf(score, dep.level());
    ++level.extracted;
    const auto it = by_key.find(dep.dedupKey());
    if (it == by_key.end()) {
      ++level.false_positives;
      score.false_positive_deps.push_back(dep);
      score.unlabelled.push_back(dep);
    } else if (!it->second->valid_scenarios.contains(scenario_id)) {
      ++level.false_positives;
      score.false_positive_deps.push_back(dep);
    }
  }
  for (const GroundTruthEntry& entry : ground_truth) {
    if (entry.expected_scenarios.contains(scenario_id) &&
        !extracted_keys.contains(entry.dep.dedupKey())) {
      score.false_negative_ids.push_back(entry.dep.id);
    }
  }
  return score;
}

std::vector<Dependency> dedupeAcrossScenarios(
    const std::vector<std::vector<Dependency>>& per_scenario) {
  std::vector<Dependency> unique;
  std::set<std::string> seen;
  for (const std::vector<Dependency>& deps : per_scenario) {
    for (const Dependency& dep : deps) {
      if (seen.insert(dep.dedupKey()).second) unique.push_back(dep);
    }
  }
  return unique;
}

ScenarioScore scoreUnique(const std::vector<std::vector<Dependency>>& per_scenario,
                          const std::vector<std::string>& scenario_ids,
                          const std::vector<GroundTruthEntry>& ground_truth) {
  std::map<std::string, const GroundTruthEntry*> by_key;
  for (const GroundTruthEntry& entry : ground_truth) by_key[entry.dep.dedupKey()] = &entry;

  // Which scenarios was each unique dependency extracted in?
  std::map<std::string, std::set<std::size_t>> extracted_in;
  for (std::size_t i = 0; i < per_scenario.size(); ++i) {
    for (const Dependency& dep : per_scenario[i]) extracted_in[dep.dedupKey()].insert(i);
  }

  const std::vector<Dependency> unique = dedupeAcrossScenarios(per_scenario);

  ScenarioScore score;
  score.scenario = "unique";
  for (const Dependency& dep : unique) {
    LevelScore& level = levelOf(score, dep.level());
    ++level.extracted;
    const auto gt = by_key.find(dep.dedupKey());
    if (gt == by_key.end()) {
      ++level.false_positives;
      score.false_positive_deps.push_back(dep);
      score.unlabelled.push_back(dep);
      continue;
    }
    bool spurious_somewhere = false;
    for (const std::size_t idx : extracted_in[dep.dedupKey()]) {
      if (idx < scenario_ids.size() && !gt->second->valid_scenarios.contains(scenario_ids[idx])) {
        spurious_somewhere = true;
      }
    }
    if (spurious_somewhere) {
      ++level.false_positives;
      score.false_positive_deps.push_back(dep);
    }
  }
  return score;
}

}  // namespace fsdep::extract
