#include "extract/guards.h"

namespace fsdep::extract {

using namespace ast;

namespace {

BinaryOp invertComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::Lt: return BinaryOp::Ge;
    case BinaryOp::Le: return BinaryOp::Gt;
    case BinaryOp::Gt: return BinaryOp::Le;
    case BinaryOp::Ge: return BinaryOp::Lt;
    case BinaryOp::Eq: return BinaryOp::Ne;
    case BinaryOp::Ne: return BinaryOp::Eq;
    default: return op;
  }
}

Atom makeAtom(const Expr& expr, bool negated) {
  Atom atom;
  atom.expr = &expr;
  atom.negated = negated;
  if (expr.kind() == ExprKind::Binary) {
    const auto& b = static_cast<const BinaryExpr&>(expr);
    if (isComparison(b.op)) {
      atom.is_comparison = true;
      atom.cmp = negated ? invertComparison(b.op) : b.op;
      atom.lhs = b.lhs.get();
      atom.rhs = b.rhs.get();
      atom.negated = false;  // polarity folded into cmp
      // Normalize "x == 0" / "x != 0" back to a flag atom so flag logic
      // sees through the explicit zero comparison.
      const auto* rhs_lit =
          b.rhs->kind() == ExprKind::IntLiteral ? static_cast<const IntLiteralExpr*>(b.rhs.get()) : nullptr;
      if (rhs_lit != nullptr && rhs_lit->value == 0 &&
          (atom.cmp == BinaryOp::Eq || atom.cmp == BinaryOp::Ne)) {
        // Keep comparison fields (the range matcher may want them), but a
        // zero-test is primarily a flag atom:
        atom.is_comparison = false;
        atom.expr = b.lhs.get();
        atom.negated = atom.cmp == BinaryOp::Eq;  // "== 0" means "not set"
      }
      return atom;
    }
  }
  return atom;
}

void dnfImpl(const Expr& e, bool neg, std::vector<Violation>& out);

std::vector<Violation> dnfOf(const Expr& e, bool neg) {
  std::vector<Violation> out;
  dnfImpl(e, neg, out);
  return out;
}

void dnfImpl(const Expr& e, bool neg, std::vector<Violation>& out) {
  if (e.kind() == ExprKind::Unary) {
    const auto& u = static_cast<const UnaryExpr&>(e);
    if (u.op == UnaryOp::Not) {
      dnfImpl(*u.operand, !neg, out);
      return;
    }
  }
  if (e.kind() == ExprKind::Binary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    const bool conjunctive = (!neg && b.op == BinaryOp::LogicalAnd) ||
                             (neg && b.op == BinaryOp::LogicalOr);
    const bool disjunctive = (!neg && b.op == BinaryOp::LogicalOr) ||
                             (neg && b.op == BinaryOp::LogicalAnd);
    if (conjunctive) {
      // Cross product of the two DNFs.
      const std::vector<Violation> left = dnfOf(*b.lhs, neg);
      const std::vector<Violation> right = dnfOf(*b.rhs, neg);
      for (const Violation& l : left) {
        for (const Violation& r : right) {
          Violation combined = l;
          combined.insert(combined.end(), r.begin(), r.end());
          out.push_back(std::move(combined));
        }
      }
      return;
    }
    if (disjunctive) {
      dnfImpl(*b.lhs, neg, out);
      dnfImpl(*b.rhs, neg, out);
      return;
    }
  }
  out.push_back(Violation{makeAtom(e, neg)});
}

/// True when the block directly signals an error: calls one of the error
/// functions, or returns a negative constant.
bool isErrorBlock(const cfg::BasicBlock& block, const sema::Sema& sema,
                  const std::vector<std::string>& error_functions) {
  auto callsError = [&](const Expr& e, auto&& self) -> bool {
    if (e.kind() == ExprKind::Call) {
      const auto& call = static_cast<const CallExpr&>(e);
      for (const std::string& name : error_functions) {
        if (call.callee == name) return true;
      }
      for (const ExprPtr& a : call.args) {
        if (self(*a, self)) return true;
      }
    }
    return false;
  };
  for (const Stmt* s : block.stmts) {
    if (s->kind() == StmtKind::Expr) {
      if (callsError(*static_cast<const ExprStmt*>(s)->expr, callsError)) return true;
    } else if (s->kind() == StmtKind::Return) {
      const auto* ret = static_cast<const ReturnStmt*>(s);
      if (ret->value != nullptr) {
        if (const auto v = sema.foldConstant(*ret->value); v.has_value() && *v < 0) return true;
        if (ret->value->kind() == ExprKind::Call) {
          const auto& call = static_cast<const CallExpr&>(*ret->value);
          for (const std::string& name : error_functions) {
            if (call.callee == name) return true;
          }
        }
      }
    }
  }
  return false;
}

/// Follows single-successor chains from `start` looking for an error block.
bool leadsToError(const cfg::Cfg& cfg, cfg::BlockId start, const sema::Sema& sema,
                  const std::vector<std::string>& error_functions) {
  cfg::BlockId id = start;
  for (int hops = 0; hops < 4; ++hops) {
    const cfg::BasicBlock& b = cfg.block(id);
    if (isErrorBlock(b, sema, error_functions)) return true;
    if (!b.stmts.empty()) return false;  // does real work: not a bail-out arm
    if (b.successors.size() != 1) return false;
    id = b.successors[0].target;
  }
  return false;
}

}  // namespace

std::vector<Violation> toDnf(const Expr& cond, bool negate) { return dnfOf(cond, negate); }

const MemberExpr* findMemberRead(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::Member:
      return static_cast<const MemberExpr*>(&expr);
    case ExprKind::Unary:
      return findMemberRead(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (const MemberExpr* m = findMemberRead(*b.lhs)) return m;
      return findMemberRead(*b.rhs);
    }
    case ExprKind::Cast:
      return findMemberRead(*static_cast<const CastExpr&>(expr).operand);
    case ExprKind::Index:
      return findMemberRead(*static_cast<const IndexExpr&>(expr).base);
    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      for (const ExprPtr& a : call.args) {
        if (const MemberExpr* m = findMemberRead(*a)) return m;
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

std::optional<std::int64_t> bitTestMask(const Expr& expr, const sema::Sema& sema) {
  if (expr.kind() != ExprKind::Binary) return std::nullopt;
  const auto& b = static_cast<const BinaryExpr&>(expr);
  if (b.op != BinaryOp::BitAnd) return std::nullopt;
  if (const auto v = sema.foldConstant(*b.rhs)) return v;
  if (const auto v = sema.foldConstant(*b.lhs)) return v;
  return std::nullopt;
}

bool isPowerOfTwoTest(const Expr& expr) {
  if (expr.kind() != ExprKind::Binary) return false;
  const auto& b = static_cast<const BinaryExpr&>(expr);
  if (b.op != BinaryOp::BitAnd) return false;
  auto matches = [](const Expr& x, const Expr& minus) {
    if (minus.kind() != ExprKind::Binary) return false;
    const auto& m = static_cast<const BinaryExpr&>(minus);
    if (m.op != BinaryOp::Sub) return false;
    if (m.rhs->kind() != ExprKind::IntLiteral ||
        static_cast<const IntLiteralExpr&>(*m.rhs).value != 1) {
      return false;
    }
    return exprToString(x) == exprToString(*m.lhs);
  };
  return matches(*b.lhs, *b.rhs) || matches(*b.rhs, *b.lhs);
}

std::vector<Guard> collectGuards(const taint::Analyzer& analyzer, const sema::Sema& sema,
                                 const std::vector<std::string>& error_functions) {
  std::vector<Guard> guards;
  for (const auto& result : analyzer.results()) {
    const cfg::Cfg& cfg = *result->cfg;
    for (cfg::BlockId id = 0; id < cfg.size(); ++id) {
      const cfg::BasicBlock& block = cfg.block(id);
      if (block.condition == nullptr || block.is_switch_dispatch || block.is_loop_condition) {
        continue;
      }
      cfg::BlockId true_target = cfg::kInvalidBlock;
      cfg::BlockId false_target = cfg::kInvalidBlock;
      for (const cfg::Edge& e : block.successors) {
        if (e.kind == cfg::EdgeKind::True) true_target = e.target;
        if (e.kind == cfg::EdgeKind::False) false_target = e.target;
      }
      if (true_target == cfg::kInvalidBlock || false_target == cfg::kInvalidBlock) continue;

      const bool err_true = leadsToError(cfg, true_target, sema, error_functions);
      const bool err_false = leadsToError(cfg, false_target, sema, error_functions);

      Guard guard;
      guard.fn = result->fn;
      guard.block = id;
      guard.condition = block.condition;
      guard.state = &result->at_condition[id];
      if (err_true && !err_false) {
        guard.disposition = GuardDisposition::ErrorOnTrue;
        guard.violations = toDnf(*block.condition, /*negate=*/false);
      } else if (err_false && !err_true) {
        guard.disposition = GuardDisposition::ErrorOnFalse;
        guard.violations = toDnf(*block.condition, /*negate=*/true);
      } else if (!err_true && !err_false) {
        guard.disposition = GuardDisposition::Behavioral;
      } else {
        guard.disposition = GuardDisposition::Opaque;
      }
      guards.push_back(guard);
    }
  }
  return guards;
}

}  // namespace fsdep::extract
