#include "fsim/resize.h"

#include <algorithm>

#include "fsim/coverage.h"

namespace fsdep::fsim {

namespace {

/// Lays out a brand-new group's metadata (same layout rules as mkfs).
/// Returns the number of free blocks left in the group.
std::uint32_t layoutNewGroup(FsImage& image, const Superblock& sb, std::uint32_t group) {
  const std::uint32_t first = FsImage::groupFirstBlock(sb, group);
  const std::uint32_t in_group = sb.blocksInGroup(group);
  std::uint32_t cursor = first;

  bool has_sb_copy = false;
  for (const std::uint32_t g : backupGroups(sb)) has_sb_copy |= g == group;
  if (has_sb_copy) cursor += 2;
  cursor += sb.reserved_gdt_blocks;

  GroupDesc gd;
  gd.block_bitmap = cursor++;
  gd.inode_bitmap = cursor++;
  gd.inode_table = cursor;
  cursor += FsImage::inodeTableBlocks(sb);

  const std::uint32_t metadata = cursor - first;
  if (metadata >= in_group) throw IoError("resize: new group too small for metadata");
  gd.free_blocks_count = static_cast<std::uint16_t>(in_group - metadata);
  gd.free_inodes_count = static_cast<std::uint16_t>(sb.inodes_per_group);
  image.storeGroupDesc(sb, group, gd);

  Bitmap block_bitmap(in_group);
  for (std::uint32_t b = 0; b < metadata; ++b) block_bitmap.set(b, true);
  image.storeBlockBitmap(sb, group, block_bitmap);
  image.storeInodeBitmap(sb, group, Bitmap(sb.inodes_per_group));

  std::vector<std::uint8_t> zero(sb.blockSize(), 0);
  for (std::uint32_t b = gd.inode_table; b < cursor; ++b) image.device().writeBlock(b, zero);

  return in_group - metadata;
}

}  // namespace

std::vector<std::string> ResizeTool::validate(const Superblock& sb, const ResizeOptions& o) {
  std::vector<std::string> violations;
  if (sb.magic != kExt4Magic) {
    violations.push_back("not an fsim/ext4 filesystem");
    return violations;
  }
  if (o.new_size_blocks == 0) {
    violations.push_back("resize2fs.size must be positive");
  }
  if ((sb.state & kStateValid) == 0 && !o.force) {
    violations.push_back("filesystem is dirty; run fsck or use resize2fs.force");
  }
  if (o.online && !sb.hasCompat(kCompatResizeInode)) {
    violations.push_back("resize2fs.online requires mke2fs.resize_inode");
  }
  const std::uint32_t in_use = sb.blocks_count - sb.free_blocks_count;
  if (o.new_size_blocks != 0 && o.new_size_blocks < in_use + 8) {
    violations.push_back("resize2fs.size below the allocated minimum");
  }
  return violations;
}

Result<ResizeReport> ResizeTool::resize(BlockDevice& device, const ResizeOptions& o) {
  try {
    return resizeImpl(device, o);
  } catch (const IoError& e) {
    // A fault mid-resize (crash, device death, exhausted retries) must
    // never unwind into the caller: the campaign driving us needs a
    // structured outcome to classify.
    return makeError(std::string("resize2fs: I/O error: ") + e.what());
  }
}

Result<ResizeReport> ResizeTool::resizeImpl(BlockDevice& device, const ResizeOptions& o) {
  FsImage image(device);
  Superblock sb = image.loadSuperblock();

  const std::vector<std::string> violations = validate(sb, o);
  if (!violations.empty()) {
    std::string message = "resize2fs: refused:";
    for (const std::string& v : violations) message += "\n  " + v;
    return makeError(message);
  }

  ResizeReport report;
  report.old_blocks = sb.blocks_count;
  report.new_blocks = o.new_size_blocks;

  if (o.new_size_blocks == sb.blocks_count) {
    report.notes.push_back("nothing to do");
    return report;
  }

  const std::uint32_t max_groups = sb.blockSize() / GroupDesc::kDiskSize;

  if (o.new_size_blocks > sb.blocks_count) {
    // ---- Grow. ----
    report.grew = true;
    coverPoint("resize.grow");
    if (o.online) coverPoint("resize.online_grow");

    const std::uint32_t old_groups = sb.groupCount();
    const std::uint32_t old_last = old_groups - 1;
    const std::uint32_t old_last_blocks = sb.blocksInGroup(old_last);

    // Make sure the device is large enough.
    if (o.new_size_blocks > device.blockCount()) device.resize(o.new_size_blocks);

    Superblock new_sb = sb;
    new_sb.blocks_count = o.new_size_blocks;
    if (new_sb.groupCount() > max_groups) {
      return makeError("resize2fs: descriptor table cannot address that many groups");
    }

    // A trailing group too small to hold its own metadata cannot exist;
    // round the target down to the previous group boundary (the real
    // resize2fs clamps such targets the same way).
    {
      const std::uint32_t last_group = new_sb.groupCount() - 1;
      const std::uint32_t needed =
          FsImage::groupMetadataBlocks(new_sb, last_group) + 1;
      if (last_group >= sb.groupCount() && new_sb.blocksInGroup(last_group) <= needed) {
        new_sb.blocks_count =
            new_sb.first_data_block + last_group * new_sb.blocks_per_group;
        report.notes.push_back("target rounded down: trailing group too small for metadata");
        if (new_sb.blocks_count <= sb.blocks_count) {
          report.new_blocks = sb.blocks_count;
          report.notes.push_back("nothing to do after rounding");
          return report;
        }
      }
    }

    const bool sparse2 = sb.hasCompat(kCompatSparseSuper2);
    const bool buggy = sparse2 && !o.fix_sparse_super2_accounting;
    if (sparse2) coverPoint("resize.sparse_super2_path");

    // Crash guard (fixed behaviour only): clear the valid bit before the
    // first metadata mutation so an interrupted resize is detectable.
    // The buggy release mutated metadata under a clean-looking
    // superblock — a crash there is silent corruption.
    const bool guarded = o.fix_sparse_super2_accounting;
    if (guarded) {
      Superblock marked = sb;
      marked.state = static_cast<std::uint16_t>(marked.state & ~kStateValid);
      marked.updateChecksum();
      image.storeSuperblock(marked);
      coverPoint("resize.crash_guard");
    }

    // Credit the blocks the (previously short) last group gains.
    const std::uint32_t new_last_blocks_in_old_group = new_sb.blocksInGroup(old_last);
    const std::uint32_t gained =
        new_last_blocks_in_old_group > old_last_blocks
            ? new_last_blocks_in_old_group - old_last_blocks
            : 0;
    if (gained > 0) {
      GroupDesc gd = image.loadGroupDesc(sb, old_last);
      if (buggy) {
        // HISTORICAL BUG (paper Figure 1): the free count of the last
        // group was computed before the new blocks were added, so the
        // gained blocks are visible in the bitmap but never credited.
        coverPoint("resize.sparse_super2_stale_accounting");
        report.notes.push_back("last-group free count computed before expansion (bug)");
      } else {
        gd.free_blocks_count = static_cast<std::uint16_t>(gd.free_blocks_count + gained);
        new_sb.free_blocks_count += gained;
        image.storeGroupDesc(new_sb, old_last, gd);
      }
    }

    // Update sparse_super2 backup placement before laying out new groups
    // so their metadata accounts for the superblock copies.
    if (sparse2 && !buggy) {
      new_sb.backup_bgs[1] = new_sb.groupCount() > 2 ? new_sb.groupCount() - 1 : 0;
    }

    try {
      for (std::uint32_t group = old_groups; group < new_sb.groupCount(); ++group) {
        const std::uint32_t free_blocks = layoutNewGroup(image, new_sb, group);
        new_sb.free_blocks_count += free_blocks;
        new_sb.inodes_count += new_sb.inodes_per_group;
        new_sb.free_inodes_count += new_sb.inodes_per_group;
        coverPoint("resize.new_group");
      }
    } catch (const IoError& e) {
      return makeError(std::string("resize2fs: ") + e.what());
    }

    if (guarded) new_sb.state = static_cast<std::uint16_t>(new_sb.state | kStateValid);
    new_sb.updateChecksum();
    if (buggy) {
      // The buggy release also forgot to refresh the backup copies.
      image.storeSuperblock(new_sb);
    } else {
      image.storeSuperblockWithBackups(new_sb);
    }
    report.new_blocks = new_sb.blocks_count;
    return report;
  }

  // ---- Shrink. ----
  coverPoint("resize.shrink");
  Superblock new_sb = sb;
  new_sb.blocks_count = o.new_size_blocks;
  const std::uint32_t new_groups = new_sb.groupCount();
  const std::uint32_t old_groups = sb.groupCount();

  // Refuse when any block beyond the new end is still allocated to data.
  for (std::uint32_t group = new_groups; group < old_groups; ++group) {
    const Bitmap bitmap = image.loadBlockBitmap(sb, group);
    const std::uint32_t in_group = sb.blocksInGroup(group);
    const std::uint32_t metadata =
        in_group - image.loadGroupDesc(sb, group).free_blocks_count;
    const std::uint32_t used = bitmap.countSet(in_group);
    if (used > metadata && !o.force) {
      return makeError("resize2fs: blocks in use beyond the new size (group " +
                       std::to_string(group) + ")");
    }
  }

  // Same crash guard as the grow path (fixed behaviour only).
  const bool guarded = o.fix_sparse_super2_accounting;
  if (guarded) {
    Superblock marked = sb;
    marked.state = static_cast<std::uint16_t>(marked.state & ~kStateValid);
    marked.updateChecksum();
    image.storeSuperblock(marked);
    coverPoint("resize.crash_guard");
  }

  std::uint32_t removed_free = 0;
  std::uint32_t removed_inodes = 0;
  std::uint32_t removed_free_inodes = 0;
  for (std::uint32_t group = new_groups; group < old_groups; ++group) {
    const GroupDesc gd = image.loadGroupDesc(sb, group);
    removed_free += gd.free_blocks_count;
    removed_free_inodes += gd.free_inodes_count;
    removed_inodes += sb.inodes_per_group;
  }
  // The (possibly shortened) new last group loses its tail blocks.
  const std::uint32_t last = new_groups - 1;
  const std::uint32_t old_last_blocks = sb.blocksInGroup(last);
  const std::uint32_t new_last_blocks = new_sb.blocksInGroup(last);
  if (new_last_blocks < old_last_blocks) {
    GroupDesc gd = image.loadGroupDesc(sb, last);
    const Bitmap bitmap = image.loadBlockBitmap(sb, last);
    std::uint32_t lost_free = 0;
    for (std::uint32_t b = new_last_blocks; b < old_last_blocks; ++b) {
      if (!bitmap.get(b)) ++lost_free;
    }
    gd.free_blocks_count = static_cast<std::uint16_t>(
        gd.free_blocks_count > lost_free ? gd.free_blocks_count - lost_free : 0);
    image.storeGroupDesc(sb, last, gd);
    removed_free += lost_free;
  }

  new_sb.free_blocks_count =
      new_sb.free_blocks_count > removed_free ? new_sb.free_blocks_count - removed_free : 0;
  new_sb.inodes_count -= removed_inodes;
  new_sb.free_inodes_count = new_sb.free_inodes_count > removed_free_inodes
                                 ? new_sb.free_inodes_count - removed_free_inodes
                                 : 0;
  if (new_sb.hasCompat(kCompatSparseSuper2)) {
    new_sb.backup_bgs[1] = new_sb.groupCount() > 2 ? new_sb.groupCount() - 1 : 0;
    if (new_sb.backup_bgs[0] >= new_sb.groupCount()) new_sb.backup_bgs[0] = 0;
  }
  if (guarded) new_sb.state = static_cast<std::uint16_t>(new_sb.state | kStateValid);
  new_sb.updateChecksum();
  image.storeSuperblockWithBackups(new_sb);
  report.new_blocks = new_sb.blocks_count;
  return report;
}

}  // namespace fsdep::fsim
