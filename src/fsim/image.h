// FsImage: structured access to an fsim filesystem inside a BlockDevice —
// superblock (primary + backups), group descriptors, bitmaps, inode
// table, and a first-fit block allocator. All utilities (mkfs, mount,
// resize2fs, fsck, defrag) operate through this class, mirroring how the
// real ecosystem shares the on-disk metadata (the paper's bridge).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/block_device.h"
#include "fsim/layout.h"

namespace fsdep::fsim {

/// A block or inode bitmap held in memory.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint32_t bit_count) : bits_((bit_count + 7) / 8, 0), count_(bit_count) {}
  static Bitmap fromBytes(std::vector<std::uint8_t> bytes, std::uint32_t bit_count);

  [[nodiscard]] bool get(std::uint32_t bit) const;
  void set(std::uint32_t bit, bool value);
  [[nodiscard]] std::uint32_t bitCount() const { return count_; }
  [[nodiscard]] std::uint32_t countSet(std::uint32_t limit) const;
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bits_; }

 private:
  std::vector<std::uint8_t> bits_;
  std::uint32_t count_ = 0;
};

class FsImage {
 public:
  explicit FsImage(BlockDevice& device) : device_(device) {}

  [[nodiscard]] BlockDevice& device() { return device_; }
  [[nodiscard]] const BlockDevice& device() const { return device_; }

  // --- Superblock ----------------------------------------------------
  [[nodiscard]] Superblock loadSuperblock() const;
  void storeSuperblock(const Superblock& sb);
  /// Also refreshes the backup copies mandated by the feature flags.
  void storeSuperblockWithBackups(const Superblock& sb);
  /// Loads the backup copy in `group` (for fsck -b style recovery).
  [[nodiscard]] Superblock loadBackupSuperblock(std::uint32_t group) const;

  // --- Geometry helpers ------------------------------------------------
  /// Absolute first block of a group.
  [[nodiscard]] static std::uint32_t groupFirstBlock(const Superblock& sb, std::uint32_t group);
  /// Number of blocks a group's metadata occupies (sb copy, descriptors,
  /// bitmaps, inode table).
  [[nodiscard]] static std::uint32_t groupMetadataBlocks(const Superblock& sb,
                                                         std::uint32_t group);
  /// Blocks the inode table needs per group.
  [[nodiscard]] static std::uint32_t inodeTableBlocks(const Superblock& sb);
  /// Block number of the group-descriptor table (held in group 0).
  [[nodiscard]] static std::uint32_t descTableBlock(const Superblock& sb);

  // --- Group descriptors ----------------------------------------------
  [[nodiscard]] GroupDesc loadGroupDesc(const Superblock& sb, std::uint32_t group) const;
  void storeGroupDesc(const Superblock& sb, std::uint32_t group, const GroupDesc& gd);

  // --- Bitmaps ----------------------------------------------------------
  [[nodiscard]] Bitmap loadBlockBitmap(const Superblock& sb, std::uint32_t group) const;
  void storeBlockBitmap(const Superblock& sb, std::uint32_t group, const Bitmap& bitmap);
  [[nodiscard]] Bitmap loadInodeBitmap(const Superblock& sb, std::uint32_t group) const;
  void storeInodeBitmap(const Superblock& sb, std::uint32_t group, const Bitmap& bitmap);

  // --- Inodes -----------------------------------------------------------
  [[nodiscard]] Inode loadInode(const Superblock& sb, std::uint32_t ino) const;
  void storeInode(const Superblock& sb, std::uint32_t ino, const Inode& inode);

  // --- Allocation --------------------------------------------------------
  /// Allocates `count` blocks; returns the extents found (first-fit,
  /// possibly fragmented). Updates bitmaps, group descriptors and the
  /// superblock free count. Throws IoError when space runs out.
  std::vector<Extent> allocateBlocks(Superblock& sb, std::uint32_t count);
  void freeExtents(Superblock& sb, const std::vector<Extent>& extents);
  /// Allocates a free inode number; returns 0 when full.
  std::uint32_t allocateInode(Superblock& sb);
  void freeInode(Superblock& sb, std::uint32_t ino);

 private:
  BlockDevice& device_;
};

}  // namespace fsdep::fsim
