#include "fsim/layout.h"

#include <cstring>

namespace fsdep::fsim {

namespace {

void put16(std::uint8_t* out, std::size_t& pos, std::uint16_t v) {
  out[pos++] = static_cast<std::uint8_t>(v & 0xFF);
  out[pos++] = static_cast<std::uint8_t>(v >> 8);
}

void put32(std::uint8_t* out, std::size_t& pos, std::uint32_t v) {
  out[pos++] = static_cast<std::uint8_t>(v & 0xFF);
  out[pos++] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[pos++] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[pos++] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

std::uint16_t get16(const std::uint8_t* in, std::size_t& pos) {
  const std::uint16_t v = static_cast<std::uint16_t>(in[pos] | (in[pos + 1] << 8));
  pos += 2;
  return v;
}

std::uint32_t get32(const std::uint8_t* in, std::size_t& pos) {
  const std::uint32_t v = static_cast<std::uint32_t>(in[pos]) |
                          (static_cast<std::uint32_t>(in[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>(in[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>(in[pos + 3]) << 24);
  pos += 4;
  return v;
}

}  // namespace

std::uint32_t Superblock::groupCount() const {
  if (blocks_per_group == 0) return 0;
  const std::uint32_t data_blocks = blocks_count - first_data_block;
  return (data_blocks + blocks_per_group - 1) / blocks_per_group;
}

std::uint32_t Superblock::blocksInGroup(std::uint32_t group) const {
  const std::uint32_t groups = groupCount();
  if (group + 1 < groups) return blocks_per_group;
  if (group + 1 == groups) {
    const std::uint32_t data_blocks = blocks_count - first_data_block;
    const std::uint32_t rem = data_blocks % blocks_per_group;
    return rem == 0 ? blocks_per_group : rem;
  }
  return 0;
}

std::uint32_t Superblock::computeChecksum() const {
  // Additive checksum over the serialized bytes with the checksum field
  // zeroed. Deliberately weak (this is a simulator), but order-sensitive.
  std::uint8_t buf[kDiskSize];
  Superblock copy = *this;
  copy.checksum = 0;
  copy.serialize(buf);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kDiskSize; ++i) sum = sum * 31 + buf[i];
  return sum;
}

void Superblock::updateChecksum() { checksum = computeChecksum(); }

void Superblock::serialize(std::uint8_t* out) const {
  std::memset(out, 0, kDiskSize);
  std::size_t pos = 0;
  put32(out, pos, inodes_count);
  put32(out, pos, blocks_count);
  put32(out, pos, reserved_blocks_count);
  put32(out, pos, free_blocks_count);
  put32(out, pos, free_inodes_count);
  put32(out, pos, first_data_block);
  put32(out, pos, log_block_size);
  put32(out, pos, blocks_per_group);
  put32(out, pos, inodes_per_group);
  put16(out, pos, mount_count);
  put16(out, pos, max_mount_count);
  put16(out, pos, magic);
  put16(out, pos, state);
  put32(out, pos, rev_level);
  put32(out, pos, first_inode);
  put16(out, pos, inode_size);
  put32(out, pos, feature_compat);
  put32(out, pos, feature_incompat);
  put32(out, pos, feature_ro_compat);
  std::memcpy(out + pos, volume_name, sizeof(volume_name));
  pos += sizeof(volume_name);
  put16(out, pos, reserved_gdt_blocks);
  put16(out, pos, desc_size);
  put32(out, pos, backup_bgs[0]);
  put32(out, pos, backup_bgs[1]);
  put32(out, pos, error_count);
  put32(out, pos, journal_start);
  put32(out, pos, journal_blocks);
  put16(out, pos, journal_dirty);
  put32(out, pos, checksum);
}

Superblock Superblock::deserialize(const std::uint8_t* in) {
  Superblock sb;
  std::size_t pos = 0;
  sb.inodes_count = get32(in, pos);
  sb.blocks_count = get32(in, pos);
  sb.reserved_blocks_count = get32(in, pos);
  sb.free_blocks_count = get32(in, pos);
  sb.free_inodes_count = get32(in, pos);
  sb.first_data_block = get32(in, pos);
  sb.log_block_size = get32(in, pos);
  sb.blocks_per_group = get32(in, pos);
  sb.inodes_per_group = get32(in, pos);
  sb.mount_count = get16(in, pos);
  sb.max_mount_count = get16(in, pos);
  sb.magic = get16(in, pos);
  sb.state = get16(in, pos);
  sb.rev_level = get32(in, pos);
  sb.first_inode = get32(in, pos);
  sb.inode_size = get16(in, pos);
  sb.feature_compat = get32(in, pos);
  sb.feature_incompat = get32(in, pos);
  sb.feature_ro_compat = get32(in, pos);
  std::memcpy(sb.volume_name, in + pos, sizeof(sb.volume_name));
  pos += sizeof(sb.volume_name);
  sb.reserved_gdt_blocks = get16(in, pos);
  sb.desc_size = get16(in, pos);
  sb.backup_bgs[0] = get32(in, pos);
  sb.backup_bgs[1] = get32(in, pos);
  sb.error_count = get32(in, pos);
  sb.journal_start = get32(in, pos);
  sb.journal_blocks = get32(in, pos);
  sb.journal_dirty = get16(in, pos);
  sb.checksum = get32(in, pos);
  return sb;
}

void GroupDesc::serialize(std::uint8_t* out) const {
  std::memset(out, 0, kDiskSize);
  std::size_t pos = 0;
  put32(out, pos, block_bitmap);
  put32(out, pos, inode_bitmap);
  put32(out, pos, inode_table);
  put16(out, pos, free_blocks_count);
  put16(out, pos, free_inodes_count);
  put16(out, pos, flags);
}

GroupDesc GroupDesc::deserialize(const std::uint8_t* in) {
  GroupDesc gd;
  std::size_t pos = 0;
  gd.block_bitmap = get32(in, pos);
  gd.inode_bitmap = get32(in, pos);
  gd.inode_table = get32(in, pos);
  gd.free_blocks_count = get16(in, pos);
  gd.free_inodes_count = get16(in, pos);
  gd.flags = get16(in, pos);
  return gd;
}

bool isSparseBackupGroup(std::uint32_t group) {
  if (group == 0 || group == 1) return true;
  for (const std::uint32_t base : {3u, 5u, 7u}) {
    std::uint64_t power = base;
    while (power < group) power *= base;
    if (power == group) return true;
  }
  return false;
}

std::vector<std::uint32_t> backupGroups(const Superblock& sb) {
  std::vector<std::uint32_t> out;
  const std::uint32_t groups = sb.groupCount();
  if (sb.hasCompat(kCompatSparseSuper2)) {
    for (const std::uint32_t g : sb.backup_bgs) {
      if (g != 0 && g < groups) out.push_back(g);
    }
    return out;
  }
  if (sb.hasRoCompat(kRoCompatSparseSuper)) {
    for (std::uint32_t g = 1; g < groups; ++g) {
      if (isSparseBackupGroup(g)) out.push_back(g);
    }
    return out;
  }
  for (std::uint32_t g = 1; g < groups; ++g) out.push_back(g);
  return out;
}

void Inode::serialize(std::uint8_t* out) const {
  std::memset(out, 0, kDiskSize);
  std::size_t pos = 0;
  put32(out, pos, size_bytes);
  put16(out, pos, links);
  put16(out, pos, static_cast<std::uint16_t>(extents.size()));
  for (std::size_t i = 0; i < extents.size() && i < kMaxExtents; ++i) {
    put32(out, pos, extents[i].start);
    put32(out, pos, extents[i].length);
  }
}

Inode Inode::deserialize(const std::uint8_t* in) {
  Inode inode;
  std::size_t pos = 0;
  inode.size_bytes = get32(in, pos);
  inode.links = get16(in, pos);
  const std::uint16_t extent_count = get16(in, pos);
  for (std::uint16_t i = 0; i < extent_count && i < kMaxExtents; ++i) {
    Extent e;
    e.start = get32(in, pos);
    e.length = get32(in, pos);
    inode.extents.push_back(e);
  }
  return inode;
}

}  // namespace fsdep::fsim
