#include "fsim/block_device.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsdep::fsim {

namespace {

/// splitmix64 — the deterministic mixer behind seeded torn prefixes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Process-wide device traffic, aggregated over every BlockDevice in the
// run (CrashCk creates thousands of short-lived devices; per-instance
// numbers stay available via readCount()/writeCount()).
obs::Counter& writesCounter() {
  static obs::Counter& c = obs::Registry::global().counter("fsim.device.writes");
  return c;
}
obs::Counter& readsCounter() {
  static obs::Counter& c = obs::Registry::global().counter("fsim.device.reads");
  return c;
}
obs::Counter& retriesCounter() {
  static obs::Counter& c = obs::Registry::global().counter("fsim.device.retries");
  return c;
}

/// A fault-plan firing: counted always, traced as an instant event when
/// tracing is on (these are the interesting moments of a CrashCk run).
void noteFaultFired(const char* kind, std::uint64_t write_index) {
  static obs::Registry& registry = obs::Registry::global();
  registry.counter("fsim.fault.fired", {{"kind", kind}}).add();
  if (obs::Trace::enabled()) {
    std::string args;
    obs::appendArg(args, "kind", kind);
    obs::appendArg(args, "write_index", write_index);
    obs::Trace::instant("fsim", "fault-fired", std::move(args));
  }
}

}  // namespace

BlockDevice::BlockDevice(std::uint32_t block_count, std::uint32_t block_size)
    : block_count_(block_count), block_size_(block_size) {
  if (block_size == 0 || (block_size & (block_size - 1)) != 0) {
    throw IoError("block size must be a nonzero power of two");
  }
  data_.assign(static_cast<std::size_t>(block_count) * block_size, 0);
}

void BlockDevice::checkRange(std::uint32_t block) const {
  if (block >= block_count_) {
    throw IoError("block " + std::to_string(block) + " out of range (device has " +
                  std::to_string(block_count_) + " blocks)");
  }
}

std::size_t BlockDevice::tornPrefixLength(std::size_t write_size) const {
  if (!plan_) return 0;
  switch (plan_->torn_mode) {
    case TornMode::None:
      return 0;
    case TornMode::Prefix:
      return std::min<std::size_t>(plan_->torn_prefix_bytes, write_size);
    case TornMode::Seeded:
      return static_cast<std::size_t>(mix64(plan_->seed ^ (plan_write_index_ + 1)) %
                                      (write_size + 1));
  }
  return 0;
}

void BlockDevice::attemptWrite(std::uint64_t offset, std::span<const std::uint8_t> data,
                               std::uint32_t block) {
  if (frozen_) throw IoError("device frozen by injected crash");
  if (dead_) throw IoError("device failed (fail-after fault)");
  if (plan_) {
    if (plan_->fail_after_writes && plan_write_index_ >= *plan_->fail_after_writes) {
      dead_ = true;
      noteFaultFired("fail_after", plan_write_index_);
      throw IoError("device failed after " + std::to_string(*plan_->fail_after_writes) +
                    " writes");
    }
    if (plan_->crash_at_write && plan_write_index_ == *plan_->crash_at_write) {
      // Persist only a torn prefix of this write, then lose power.
      const std::size_t keep = tornPrefixLength(data.size());
      if (keep > 0) std::memcpy(data_.data() + offset, data.data(), keep);
      frozen_ = true;
      noteFaultFired("crash", plan_write_index_);
      throw IoError("crash injected at write index " +
                    std::to_string(*plan_->crash_at_write) + " (" + std::to_string(keep) +
                    " of " + std::to_string(data.size()) + " bytes persisted)");
    }
    for (TransientFault& t : plan_->transients) {
      if (t.on_write && t.failures > 0 && t.block == block) {
        --t.failures;
        noteFaultFired("transient_write", plan_write_index_);
        throw IoError("transient write error at block " + std::to_string(block));
      }
    }
  }
  if (bad_write_blocks_.contains(block)) {
    throw IoError("injected write error at block " + std::to_string(block));
  }
  std::memcpy(data_.data() + offset, data.data(), data.size());
  ++writes_;
  ++plan_write_index_;
  writesCounter().add();
}

void BlockDevice::attemptRead(std::uint64_t offset, std::span<std::uint8_t> out,
                              std::uint32_t block) const {
  if (frozen_) throw IoError("device frozen by injected crash");
  if (plan_) {
    for (TransientFault& t : plan_->transients) {
      if (!t.on_write && t.failures > 0 && t.block == block) {
        --t.failures;
        noteFaultFired("transient_read", plan_write_index_);
        throw IoError("transient read error at block " + std::to_string(block));
      }
    }
  }
  if (bad_read_blocks_.contains(block)) {
    throw IoError("injected read error at block " + std::to_string(block));
  }
  std::memcpy(out.data(), data_.data() + offset, out.size());
  ++reads_;
  readsCounter().add();
}

void BlockDevice::readBlock(std::uint32_t block, std::span<std::uint8_t> out) const {
  checkRange(block);
  if (out.size() != block_size_) throw IoError("short read buffer");
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      attemptRead(static_cast<std::uint64_t>(block) * block_size_, out, block);
      return;
    } catch (const IoError&) {
      if (frozen_ || attempt >= retry_policy_.max_attempts) throw;
      ++retries_;
      retriesCounter().add();
      backoff_ticks_ += static_cast<std::uint64_t>(retry_policy_.backoff_base)
                        << (attempt - 1);
    }
  }
}

void BlockDevice::writeBlock(std::uint32_t block, std::span<const std::uint8_t> data) {
  checkRange(block);
  if (data.size() != block_size_) throw IoError("short write buffer");
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      attemptWrite(static_cast<std::uint64_t>(block) * block_size_, data, block);
      return;
    } catch (const IoError&) {
      if (frozen_ || dead_ || attempt >= retry_policy_.max_attempts) throw;
      ++retries_;
      retriesCounter().add();
      backoff_ticks_ += static_cast<std::uint64_t>(retry_policy_.backoff_base)
                        << (attempt - 1);
    }
  }
}

void BlockDevice::readBytes(std::uint64_t offset, std::span<std::uint8_t> out) const {
  if (offset + out.size() > data_.size()) throw IoError("byte read out of range");
  const std::uint32_t block = static_cast<std::uint32_t>(offset / block_size_);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      attemptRead(offset, out, block);
      return;
    } catch (const IoError&) {
      if (frozen_ || attempt >= retry_policy_.max_attempts) throw;
      ++retries_;
      retriesCounter().add();
      backoff_ticks_ += static_cast<std::uint64_t>(retry_policy_.backoff_base)
                        << (attempt - 1);
    }
  }
}

void BlockDevice::writeBytes(std::uint64_t offset, std::span<const std::uint8_t> data) {
  if (offset + data.size() > data_.size()) throw IoError("byte write out of range");
  const std::uint32_t block = static_cast<std::uint32_t>(offset / block_size_);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      attemptWrite(offset, data, block);
      return;
    } catch (const IoError&) {
      if (frozen_ || dead_ || attempt >= retry_policy_.max_attempts) throw;
      ++retries_;
      retriesCounter().add();
      backoff_ticks_ += static_cast<std::uint64_t>(retry_policy_.backoff_base)
                        << (attempt - 1);
    }
  }
}

void BlockDevice::resize(std::uint32_t new_block_count) {
  if (frozen_) throw IoError("device frozen by injected crash");
  data_.resize(static_cast<std::size_t>(new_block_count) * block_size_, 0);
  block_count_ = new_block_count;
}

void BlockDevice::corruptBlock(std::uint32_t block, std::uint32_t byte_offset) {
  checkRange(block);
  const std::size_t index =
      static_cast<std::size_t>(block) * block_size_ + (byte_offset % block_size_);
  data_[index] ^= 0xFF;
}

void BlockDevice::setFaultPlan(FaultPlan plan) {
  plan_ = std::move(plan);
  plan_write_index_ = 0;
  frozen_ = false;
  dead_ = false;
}

void BlockDevice::clearFaults() {
  bad_read_blocks_.clear();
  bad_write_blocks_.clear();
  plan_.reset();
  frozen_ = false;
  dead_ = false;
  plan_write_index_ = 0;
}

void BlockDevice::resetStats() {
  reads_ = 0;
  writes_ = 0;
  retries_ = 0;
  backoff_ticks_ = 0;
}

}  // namespace fsdep::fsim
