#include "fsim/block_device.h"

#include <algorithm>
#include <cstring>

namespace fsdep::fsim {

BlockDevice::BlockDevice(std::uint32_t block_count, std::uint32_t block_size)
    : block_count_(block_count), block_size_(block_size) {
  if (block_size == 0 || (block_size & (block_size - 1)) != 0) {
    throw IoError("block size must be a nonzero power of two");
  }
  data_.assign(static_cast<std::size_t>(block_count) * block_size, 0);
}

void BlockDevice::checkRange(std::uint32_t block) const {
  if (block >= block_count_) {
    throw IoError("block " + std::to_string(block) + " out of range (device has " +
                  std::to_string(block_count_) + " blocks)");
  }
}

void BlockDevice::readBlock(std::uint32_t block, std::span<std::uint8_t> out) const {
  checkRange(block);
  if (bad_read_blocks_.contains(block)) {
    throw IoError("injected read error at block " + std::to_string(block));
  }
  if (out.size() != block_size_) throw IoError("short read buffer");
  ++reads_;
  std::memcpy(out.data(), data_.data() + static_cast<std::size_t>(block) * block_size_,
              block_size_);
}

void BlockDevice::writeBlock(std::uint32_t block, std::span<const std::uint8_t> data) {
  checkRange(block);
  if (bad_write_blocks_.contains(block)) {
    throw IoError("injected write error at block " + std::to_string(block));
  }
  if (data.size() != block_size_) throw IoError("short write buffer");
  ++writes_;
  std::memcpy(data_.data() + static_cast<std::size_t>(block) * block_size_, data.data(),
              block_size_);
}

void BlockDevice::readBytes(std::uint64_t offset, std::span<std::uint8_t> out) const {
  if (offset + out.size() > data_.size()) throw IoError("byte read out of range");
  ++reads_;
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

void BlockDevice::writeBytes(std::uint64_t offset, std::span<const std::uint8_t> data) {
  if (offset + data.size() > data_.size()) throw IoError("byte write out of range");
  ++writes_;
  std::memcpy(data_.data() + offset, data.data(), data.size());
}

void BlockDevice::resize(std::uint32_t new_block_count) {
  data_.resize(static_cast<std::size_t>(new_block_count) * block_size_, 0);
  block_count_ = new_block_count;
}

void BlockDevice::corruptBlock(std::uint32_t block, std::uint32_t byte_offset) {
  checkRange(block);
  const std::size_t index =
      static_cast<std::size_t>(block) * block_size_ + (byte_offset % block_size_);
  data_[index] ^= 0xFF;
}

void BlockDevice::clearFaults() {
  bad_read_blocks_.clear();
  bad_write_blocks_.clear();
}

}  // namespace fsdep::fsim
