#include "fsim/mount.h"

#include <algorithm>

#include "fsim/coverage.h"

namespace fsdep::fsim {

std::vector<std::string> MountTool::validateSuperblock(const Superblock& sb) {
  std::vector<std::string> problems;
  if (sb.magic != kExt4Magic) problems.push_back("bad magic number");
  if (sb.log_block_size > 6) problems.push_back("s_log_block_size out of range");
  if (sb.inode_size < 128 || sb.inode_size > 4096) {
    problems.push_back("s_inode_size out of range");
  }
  if (sb.rev_level > 1) problems.push_back("unsupported revision level");
  if (sb.first_inode < 11) problems.push_back("s_first_ino below reserved range");
  if (sb.desc_size < 32 || sb.desc_size > 64) problems.push_back("bad descriptor size");
  if (sb.first_data_block > 1) problems.push_back("bad first data block");
  if (sb.inodes_per_group < 8 || sb.inodes_per_group > 65536) {
    problems.push_back("s_inodes_per_group out of range");
  }
  if (sb.blocks_per_group == 0 || sb.blocks_per_group > 8 * sb.blockSize()) {
    problems.push_back("s_blocks_per_group out of range");
  }
  if (sb.blocks_count < sb.first_data_block + 8) {
    problems.push_back("block count too small for the layout");
  }
  return problems;
}

std::vector<std::string> MountTool::validateOptions(const MountOptions& o, const Superblock& sb) {
  std::vector<std::string> problems;
  if (o.dax && o.data_mode == DataMode::Journal) {
    problems.push_back("mount.dax excludes mount.data_journal");
  }
  if (o.noload && !o.read_only) {
    problems.push_back("mount.noload requires mount.ro");
  }
  if (o.journal_async_commit && !o.journal_checksum) {
    problems.push_back("mount.journal_async_commit requires mount.journal_checksum");
  }
  if (o.dioread_nolock && o.data_mode == DataMode::Journal) {
    problems.push_back("mount.dioread_nolock excludes mount.data_journal");
  }
  if (o.delalloc && o.data_mode == DataMode::Journal) {
    problems.push_back("mount.delalloc excludes mount.data_journal");
  }
  if (o.auto_da_alloc && o.data_mode == DataMode::Journal) {
    problems.push_back("mount.auto_da_alloc excludes mount.data_journal");
  }
  if (o.commit_interval < 1 || o.commit_interval > 300) {
    problems.push_back("mount.commit out of range [1, 300]");
  }
  if (o.stripe > 2097152) problems.push_back("mount.stripe out of range");
  if (o.inode_readahead_blks > 1073741824 ||
      (o.inode_readahead_blks & (o.inode_readahead_blks - 1)) != 0) {
    problems.push_back("mount.inode_readahead_blks must be a power of two <= 2^30");
  }
  if (o.max_batch_time > 60000) problems.push_back("mount.max_batch_time out of range");
  if (o.min_batch_time > o.max_batch_time) {
    problems.push_back("mount.min_batch_time must be <= mount.max_batch_time");
  }
  if (o.dax && sb.blockSize() != 4096) {
    problems.push_back("mount.dax requires a 4KiB block size");
  }
  if (o.dax && sb.hasIncompat(kIncompatInlineData)) {
    problems.push_back("mount.dax excludes mke2fs.inline_data");
  }
  return problems;
}

Result<MountedFs> MountTool::mount(BlockDevice& device, const MountOptions& options) {
  try {
    return mountImpl(device, options);
  } catch (const IoError& e) {
    // Faulted device mid-mount (including journal replay): surface a
    // structured error instead of unwinding into the caller.
    return makeError(std::string("mount: I/O error: ") + e.what());
  }
}

Result<MountedFs> MountTool::mountImpl(BlockDevice& device, const MountOptions& options) {
  FsImage image(device);
  Superblock sb = image.loadSuperblock();

  std::vector<std::string> problems = validateSuperblock(sb);
  if (problems.empty()) {
    const std::vector<std::string> option_problems = validateOptions(options, sb);
    problems.insert(problems.end(), option_problems.begin(), option_problems.end());
  }
  if (!problems.empty()) {
    std::string message = "mount: refused:";
    for (const std::string& p : problems) message += "\n  " + p;
    return makeError(message);
  }

  coverPoint("mount.ok");
  if (options.dax) coverPoint("mount.dax_path");
  if (options.data_mode == DataMode::Journal) coverPoint("mount.data_journal");
  if (options.data_mode == DataMode::Writeback) coverPoint("mount.data_writeback");
  if (options.noload) coverPoint("mount.noload");
  if (sb.hasCompat(kCompatSparseSuper2)) coverPoint("mount.sparse_super2_fs");
  if (sb.hasRoCompat(kRoCompatBigalloc)) coverPoint("mount.bigalloc_fs");
  if (sb.hasIncompat(kIncompat64Bit)) coverPoint("mount.64bit_fs");
  if (sb.hasIncompat(kIncompatMetaBg)) coverPoint("mount.meta_bg_fs");
  if (sb.hasRoCompat(kRoCompatQuota)) coverPoint("mount.quota_fs");
  if (sb.hasIncompat(kIncompatInlineData)) coverPoint("mount.inline_data_fs");
  if (sb.hasRoCompat(kRoCompatMetadataCsum)) coverPoint("mount.metadata_csum_fs");

  // Journal recovery: a dirty journal is replayed before use — counts
  // are rebuilt from the bitmaps (the journal's committed truth in this
  // simulator) — unless noload skips recovery on a read-only mount.
  if (sb.journal_blocks != 0 && sb.journal_dirty != 0) {
    if (options.noload) {
      coverPoint("mount.noload_skip_recovery");
    } else {
      coverPoint("mount.journal_replay");
      std::uint64_t total_free = 0;
      std::uint64_t free_inodes = 0;
      for (std::uint32_t group = 0; group < sb.groupCount(); ++group) {
        GroupDesc gd = image.loadGroupDesc(sb, group);
        const Bitmap block_bitmap = image.loadBlockBitmap(sb, group);
        const std::uint32_t in_group = sb.blocksInGroup(group);
        gd.free_blocks_count =
            static_cast<std::uint16_t>(in_group - block_bitmap.countSet(in_group));
        const Bitmap inode_bitmap = image.loadInodeBitmap(sb, group);
        gd.free_inodes_count = static_cast<std::uint16_t>(
            sb.inodes_per_group - inode_bitmap.countSet(sb.inodes_per_group));
        image.storeGroupDesc(sb, group, gd);
        total_free += gd.free_blocks_count;
        free_inodes += gd.free_inodes_count;
      }
      sb.free_blocks_count = static_cast<std::uint32_t>(total_free);
      sb.free_inodes_count = static_cast<std::uint32_t>(free_inodes);
      sb.journal_dirty = 0;
      sb.state = kStateValid;
      sb.updateChecksum();
      image.storeSuperblock(sb);
    }
  }

  if (!options.read_only) {
    ++sb.mount_count;
    if (sb.journal_blocks != 0) sb.journal_dirty = 1;  // in-flight transactions
    sb.updateChecksum();
    image.storeSuperblock(sb);
  }
  return MountedFs(device, sb, options);
}

MountedFs::MountedFs(BlockDevice& device, Superblock sb, MountOptions options)
    : device_(device), image_(device), sb_(sb), options_(options) {}

Result<std::uint32_t> MountedFs::createFile(std::uint32_t size_bytes,
                                            std::uint32_t max_extent_blocks) {
  if (!mounted_) return makeError("filesystem is not mounted");
  if (options_.read_only) return makeError("read-only mount");
  std::uint32_t ino = 0;
  try {
    ino = image_.allocateInode(sb_);
  } catch (const IoError& e) {
    return makeError(e.what());
  }
  if (ino == 0) return makeError("out of inodes");

  const std::uint32_t bs = sb_.blockSize();
  std::uint32_t blocks = (size_bytes + bs - 1) / bs;
  Inode inode;
  inode.size_bytes = size_bytes;
  inode.links = 1;
  try {
    while (blocks > 0) {
      const std::uint32_t chunk =
          max_extent_blocks == 0 ? blocks : std::min(blocks, max_extent_blocks);
      std::vector<Extent> extents = image_.allocateBlocks(sb_, chunk);
      for (const Extent& e : extents) {
        if (inode.extents.size() >= Inode::kMaxExtents) {
          image_.freeExtents(sb_, {e});
          continue;
        }
        inode.extents.push_back(e);
      }
      blocks -= chunk;
    }
    image_.storeInode(sb_, ino, inode);
  } catch (const IoError& e) {
    // Best-effort rollback; a device frozen by a crash fault rejects
    // even the cleanup writes, and that must not unwind either — the
    // journal replay at the next mount owns the mess.
    try {
      image_.freeExtents(sb_, inode.extents);
      image_.freeInode(sb_, ino);
    } catch (const IoError&) {
      coverPoint("file.create_rollback_failed");
    }
    return makeError(e.what());
  }
  coverPoint("file.create");
  if (inode.extents.size() > 1) coverPoint("file.fragmented");
  return ino;
}

Result<bool> MountedFs::removeFile(std::uint32_t ino) {
  if (!mounted_) return makeError("filesystem is not mounted");
  if (options_.read_only) return makeError("read-only mount");
  try {
    Inode inode = image_.loadInode(sb_, ino);
    if (inode.links == 0) return makeError("inode not in use");
    image_.freeExtents(sb_, inode.extents);
    inode = Inode{};
    image_.storeInode(sb_, ino, inode);
    image_.freeInode(sb_, ino);
  } catch (const IoError& e) {
    return makeError(e.what());
  }
  coverPoint("file.remove");
  return true;
}

std::optional<Inode> MountedFs::statFile(std::uint32_t ino) const {
  if (ino == 0 || ino > sb_.inodes_count) return std::nullopt;
  try {
    Inode inode = image_.loadInode(sb_, ino);
    if (inode.links == 0) return std::nullopt;
    return inode;
  } catch (const IoError&) {
    return std::nullopt;
  }
}

void MountedFs::unmount() {
  if (!mounted_) return;
  mounted_ = false;
  if (!options_.read_only) {
    try {
      sb_ = image_.loadSuperblock();
      sb_.state = kStateValid;
      sb_.journal_dirty = 0;
      sb_.updateChecksum();
      image_.storeSuperblockWithBackups(sb_);
    } catch (const IoError&) {
      // Device died under us: the clean-unmount write never lands, so
      // the journal stays dirty and the next mount replays. Exactly the
      // semantics of yanking a disk during umount.
      coverPoint("umount.io_error");
      return;
    }
  }
  coverPoint("umount.ok");
}

void MountedFs::crash() {
  if (!mounted_) return;
  mounted_ = false;
  if (options_.read_only) return;
  try {
    Superblock sb = image_.loadSuperblock();
    if (sb.journal_blocks != 0 && sb.journal_dirty == 0) {
      // In-flight transactions were pending: the dirty bit must survive
      // on the medium, whatever intermediate writes said.
      sb.journal_dirty = 1;
      sb.updateChecksum();
      image_.storeSuperblock(sb);
    }
  } catch (const IoError&) {
    // A device frozen by the crash itself cannot be written; the bit
    // set at mount time (if any) is whatever made it to the medium.
  }
  coverPoint("mount.crash");
}

}  // namespace fsdep::fsim
