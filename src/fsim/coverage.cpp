#include "fsim/coverage.h"

namespace fsdep::fsim {

CoverageRegistry& CoverageRegistry::instance() {
  static CoverageRegistry registry;
  return registry;
}

void CoverageRegistry::hit(std::string_view point) { points_.insert(std::string(point)); }

void CoverageRegistry::reset() { points_.clear(); }

}  // namespace fsdep::fsim
