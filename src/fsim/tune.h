// TuneTool: the tune2fs of the simulator — an Offline-stage utility that
// flips feature flags and tunables on an existing filesystem. Feature
// changes are validated against the same dependency set as mkfs, plus the
// tune-specific rules (some features cannot be changed after creation,
// some removals require the feature's on-disk structures to be absent).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fsim/image.h"
#include "support/result.h"

namespace fsdep::fsim {

struct TuneOptions {
  /// Feature toggles; unset = leave alone.
  std::optional<bool> has_journal;
  std::optional<bool> metadata_csum;
  std::optional<bool> uninit_bg;
  std::optional<bool> quota;
  std::optional<bool> sparse_super2;

  /// Tunables; unset = leave alone.
  std::optional<std::uint16_t> max_mount_count;
  std::optional<std::uint32_t> reserved_blocks_count;
  std::optional<std::string> label;
};

struct TuneReport {
  std::vector<std::string> changes;
};

class TuneTool {
 public:
  /// Returns the dependency violations the requested change would cause
  /// (empty = acceptable).
  static std::vector<std::string> validate(const Superblock& sb, const TuneOptions& options);

  /// Applies the change. Refuses on validation failure or a dirty fs.
  /// I/O faults surface as structured errors, never as exceptions.
  static Result<TuneReport> tune(BlockDevice& device, const TuneOptions& options);

 private:
  static Result<TuneReport> tuneImpl(BlockDevice& device, const TuneOptions& options);
};

}  // namespace fsdep::fsim
