// MkfsTool: creates an fsim filesystem on a block device — the Create
// stage of the paper's Figure 2. Option validation implements the same
// dependency set the static analyzer extracts from the corpus, so
// ConHandleCk can compare "what the code enforces" against "what the
// dependencies say".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/image.h"
#include "support/result.h"

namespace fsdep::fsim {

struct MkfsOptions {
  std::uint32_t size_blocks = 0;       ///< 0 = whole device
  std::uint32_t block_size = 4096;
  std::uint16_t inode_size = 256;
  std::uint32_t inode_ratio = 16384;   ///< bytes per inode
  std::uint32_t reserved_ratio = 5;    ///< percent
  std::uint32_t blocks_per_group = 0;  ///< 0 = 8 * block_size
  std::string label;

  bool sparse_super = true;
  bool sparse_super2 = false;
  bool resize_inode = true;
  std::uint32_t resize_limit_blocks = 0;  ///< -E resize=N (0 = default)
  bool meta_bg = false;
  bool extents = true;
  bool has_64bit = false;
  bool quota = false;
  bool has_journal = true;
  bool uninit_bg = false;
  bool metadata_csum = false;
  bool flex_bg = true;
  bool inline_data = false;
  bool encrypt = false;
  bool bigalloc = false;
  std::uint32_t cluster_size = 0;  ///< only with bigalloc
};

class MkfsTool {
 public:
  /// Validates options against the multi-level dependency set. Returns
  /// the list of violated constraints (empty = valid).
  static std::vector<std::string> validate(const MkfsOptions& options,
                                           std::uint64_t device_bytes);

  /// Formats the device. Returns the written superblock or an error when
  /// validation fails / the device is too small. I/O faults surface as
  /// structured errors, never as exceptions. The valid superblock is
  /// written last, so an interrupted mkfs leaves a device that no tool
  /// mistakes for a healthy filesystem.
  static Result<Superblock> format(BlockDevice& device, const MkfsOptions& options);

 private:
  static Result<Superblock> formatImpl(BlockDevice& device, const MkfsOptions& options);
};

}  // namespace fsdep::fsim
