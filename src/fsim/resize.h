// ResizeTool: the Offline stage's resize2fs. Grows or shrinks an
// unmounted fsim filesystem.
//
// The historical sparse_super2 bug of the paper's Figure 1 is modelled
// faithfully: when expanding a filesystem whose sparse_super2 feature is
// enabled, the last group's free-block accounting is computed BEFORE the
// new blocks are appended (and the relocated backup superblock is placed
// using the stale group count), leaving the free-block totals
// inconsistent with the bitmaps — which fsck then reports as metadata
// corruption. Construct the tool with `fix_sparse_super2_accounting =
// true` for the repaired behaviour; the default mirrors the buggy
// release so the experiment reproduces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/image.h"
#include "support/result.h"

namespace fsdep::fsim {

struct ResizeOptions {
  std::uint32_t new_size_blocks = 0;
  bool force = false;
  bool online = false;  ///< resize while mounted (needs resize_inode)
  /// Historical-bug switch (see file comment). The fixed tool also
  /// brackets the operation with an in-progress superblock state (the
  /// crash guard below), which the buggy release did not.
  bool fix_sparse_super2_accounting = false;
};

struct ResizeReport {
  std::uint32_t old_blocks = 0;
  std::uint32_t new_blocks = 0;
  bool grew = false;
  std::vector<std::string> notes;
};

class ResizeTool {
 public:
  /// Pre-flight checks (the resize2fs_check_geometry dependencies).
  static std::vector<std::string> validate(const Superblock& sb, const ResizeOptions& options);

  /// Performs the resize. The device itself is grown when needed.
  /// I/O faults surface as structured errors, never as exceptions.
  ///
  /// Crash safety: with fix_sparse_super2_accounting the tool first
  /// clears the superblock valid bit (an "operation in progress" mark),
  /// mutates the metadata, and only then writes the final clean
  /// superblock — so a crash at any intermediate write leaves a
  /// filesystem that *admits* it needs repair. The buggy release wrote
  /// metadata under a superblock that still claimed to be clean, which
  /// is what turns a mid-resize crash into silent corruption (CrashCk
  /// reproduces both behaviours).
  static Result<ResizeReport> resize(BlockDevice& device, const ResizeOptions& options);

 private:
  static Result<ResizeReport> resizeImpl(BlockDevice& device, const ResizeOptions& options);
};

}  // namespace fsdep::fsim
