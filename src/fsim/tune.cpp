#include "fsim/tune.h"

#include <cstring>

#include "fsim/coverage.h"

namespace fsdep::fsim {

std::vector<std::string> TuneTool::validate(const Superblock& sb, const TuneOptions& o) {
  std::vector<std::string> violations;
  auto violated = [&](const std::string& what) { violations.push_back(what); };

  // Resolve the post-change feature state.
  const bool journal = o.has_journal.value_or(sb.hasCompat(kCompatHasJournal));
  const bool csum = o.metadata_csum.value_or(sb.hasRoCompat(kRoCompatMetadataCsum));
  const bool uninit = o.uninit_bg.value_or(false);  // gdt_csum modelled as set-only
  const bool quota = o.quota.value_or(sb.hasRoCompat(kRoCompatQuota));
  const bool sparse2 = o.sparse_super2.value_or(sb.hasCompat(kCompatSparseSuper2));

  if (quota && !journal) {
    violated("mke2fs.quota requires mke2fs.has_journal (cannot drop the journal of a "
             "quota filesystem)");
  }
  if (csum && uninit) {
    violated("mke2fs.uninit_bg excludes mke2fs.metadata_csum");
  }
  if (sparse2 && sb.hasCompat(kCompatResizeInode)) {
    violated("mke2fs.sparse_super2 excludes mke2fs.resize_inode (remove the resize inode "
             "first)");
  }
  if (o.has_journal.has_value() && !*o.has_journal && sb.journal_dirty != 0) {
    violated("cannot remove a journal that still needs recovery");
  }
  if (o.reserved_blocks_count.has_value() &&
      *o.reserved_blocks_count > sb.blocks_count / 2) {
    violated("mke2fs.reserved_ratio: reserved blocks cannot exceed half the filesystem");
  }
  return violations;
}

Result<TuneReport> TuneTool::tune(BlockDevice& device, const TuneOptions& o) {
  try {
    return tuneImpl(device, o);
  } catch (const IoError& e) {
    return makeError(std::string("tune2fs: I/O error: ") + e.what());
  }
}

Result<TuneReport> TuneTool::tuneImpl(BlockDevice& device, const TuneOptions& o) {
  FsImage image(device);
  Superblock sb = image.loadSuperblock();
  if (sb.magic != kExt4Magic) return makeError("tune2fs: not an fsim/ext4 filesystem");
  if ((sb.state & kStateValid) == 0) {
    return makeError("tune2fs: filesystem is dirty; run fsck first");
  }
  const std::vector<std::string> violations = validate(sb, o);
  if (!violations.empty()) {
    std::string message = "tune2fs: refused:";
    for (const std::string& v : violations) message += "\n  " + v;
    return makeError(message);
  }

  coverPoint("tune.start");

  // Crash guard: clear the valid bit before mutating anything so an
  // interrupted tune is detectable (same discipline as resize). The
  // final superblock write restores it — that write is the commit point.
  {
    Superblock marked = sb;
    marked.state = static_cast<std::uint16_t>(marked.state & ~kStateValid);
    marked.updateChecksum();
    image.storeSuperblock(marked);
    coverPoint("tune.crash_guard");
  }

  TuneReport report;

  if (o.has_journal.has_value()) {
    if (*o.has_journal && !sb.hasCompat(kCompatHasJournal)) {
      return makeError("tune2fs: adding a journal post-hoc is not supported (recreate)");
    }
    if (!*o.has_journal && sb.hasCompat(kCompatHasJournal)) {
      // Free the journal area back to group 0.
      if (sb.journal_blocks != 0) {
        Bitmap bitmap = image.loadBlockBitmap(sb, 0);
        GroupDesc gd = image.loadGroupDesc(sb, 0);
        const std::uint32_t first_bit = sb.journal_start - FsImage::groupFirstBlock(sb, 0);
        for (std::uint32_t b = 0; b < sb.journal_blocks; ++b) {
          bitmap.set(first_bit + b, false);
        }
        gd.free_blocks_count =
            static_cast<std::uint16_t>(gd.free_blocks_count + sb.journal_blocks);
        sb.free_blocks_count += sb.journal_blocks;
        image.storeBlockBitmap(sb, 0, bitmap);
        image.storeGroupDesc(sb, 0, gd);
      }
      sb.feature_compat &= ~kCompatHasJournal;
      sb.journal_start = 0;
      sb.journal_blocks = 0;
      sb.journal_dirty = 0;
      report.changes.push_back("removed the internal journal");
      coverPoint("tune.remove_journal");
    }
  }
  if (o.metadata_csum.has_value()) {
    if (*o.metadata_csum) {
      sb.feature_ro_compat |= kRoCompatMetadataCsum;
      report.changes.push_back("enabled metadata_csum");
      coverPoint("tune.enable_metadata_csum");
    } else {
      sb.feature_ro_compat &= ~kRoCompatMetadataCsum;
      report.changes.push_back("disabled metadata_csum");
    }
  }
  if (o.quota.has_value()) {
    if (*o.quota) {
      sb.feature_ro_compat |= kRoCompatQuota;
      report.changes.push_back("enabled quota");
      coverPoint("tune.enable_quota");
    } else {
      sb.feature_ro_compat &= ~kRoCompatQuota;
      report.changes.push_back("disabled quota");
    }
  }
  if (o.sparse_super2.has_value()) {
    if (*o.sparse_super2) {
      sb.feature_compat |= kCompatSparseSuper2;
      sb.feature_ro_compat &= ~kRoCompatSparseSuper;
      sb.backup_bgs[0] = sb.groupCount() > 1 ? 1 : 0;
      sb.backup_bgs[1] = sb.groupCount() > 2 ? sb.groupCount() - 1 : 0;
      report.changes.push_back("switched to the sparse_super2 backup layout");
      coverPoint("tune.enable_sparse_super2");
    } else {
      sb.feature_compat &= ~kCompatSparseSuper2;
      sb.feature_ro_compat |= kRoCompatSparseSuper;
      sb.backup_bgs[0] = 0;
      sb.backup_bgs[1] = 0;
      report.changes.push_back("switched back to sparse_super backups");
    }
  }
  if (o.max_mount_count.has_value()) {
    sb.max_mount_count = *o.max_mount_count;
    report.changes.push_back("max mount count set to " + std::to_string(*o.max_mount_count));
  }
  if (o.reserved_blocks_count.has_value()) {
    sb.reserved_blocks_count = *o.reserved_blocks_count;
    report.changes.push_back("reserved blocks set to " +
                             std::to_string(*o.reserved_blocks_count));
  }
  if (o.label.has_value()) {
    std::memset(sb.volume_name, 0, sizeof(sb.volume_name));
    std::strncpy(sb.volume_name, o.label->c_str(), sizeof(sb.volume_name) - 1);
    report.changes.push_back("label set to '" + *o.label + "'");
  }

  sb.updateChecksum();
  image.storeSuperblockWithBackups(sb);
  coverPoint("tune.done");
  return report;
}

}  // namespace fsdep::fsim
