#include "fsim/digest.h"

#include <algorithm>
#include <cstdio>

#include "fsim/image.h"
#include "fsim/layout.h"

namespace fsdep::fsim {

namespace {

/// FNV-1a 64-bit, extended with typed mixers so field boundaries are
/// unambiguous (a 0-length string followed by 'x' must not collide with
/// the string "x").
class Fnv64 {
 public:
  void bytes(const std::uint8_t* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= data[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) {
    std::uint8_t buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    bytes(buf, sizeof(buf));
  }
  void u64(std::uint64_t v) {
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    bytes(buf, sizeof(buf));
  }
  void str(const char* s, std::size_t max) {
    std::size_t n = 0;
    while (n < max && s[n] != '\0') ++n;
    u64(n);
    bytes(reinterpret_cast<const std::uint8_t*>(s), n);
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Raw fallback for devices without a valid filesystem: hash the
/// metadata region (where mkfs writes first) so distinct interrupted
/// states keep distinct digests, without paying for whole-device scans.
void hashRawPrefix(BlockDevice& device, Fnv64& h) {
  h.str("raw", 3);
  const std::uint64_t limit = std::min<std::uint64_t>(device.sizeBytes(), 256 * 1024);
  std::vector<std::uint8_t> buf(device.blockSize());
  for (std::uint64_t offset = 0; offset < limit; offset += buf.size()) {
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(buf.size(), limit - offset));
    try {
      device.readBytes(offset, std::span<std::uint8_t>(buf.data(), n));
      h.bytes(buf.data(), n);
    } catch (const IoError&) {
      h.str("unreadable", 10);
      h.u64(offset);
    }
  }
}

void hashSuperblock(const Superblock& sb, Fnv64& h) {
  h.u32(sb.inodes_count);
  h.u32(sb.blocks_count);
  h.u32(sb.reserved_blocks_count);
  h.u32(sb.free_blocks_count);
  h.u32(sb.free_inodes_count);
  h.u32(sb.first_data_block);
  h.u32(sb.log_block_size);
  h.u32(sb.blocks_per_group);
  h.u32(sb.inodes_per_group);
  h.u32(sb.max_mount_count);
  h.u32(sb.state);
  h.u32(sb.rev_level);
  h.u32(sb.first_inode);
  h.u32(sb.inode_size);
  h.u32(sb.feature_compat);
  h.u32(sb.feature_incompat);
  h.u32(sb.feature_ro_compat);
  h.str(sb.volume_name, sizeof(sb.volume_name));
  h.u32(sb.reserved_gdt_blocks);
  h.u32(sb.desc_size);
  h.u32(sb.backup_bgs[0]);
  h.u32(sb.backup_bgs[1]);
  h.u32(sb.journal_start);
  h.u32(sb.journal_blocks);
  h.u32(sb.journal_dirty);
}

}  // namespace

std::uint64_t imageStateDigest(BlockDevice& device) {
  Fnv64 h;
  h.u32(device.blockCount());
  h.u32(device.blockSize());

  FsImage image(device);
  Superblock sb;
  try {
    sb = image.loadSuperblock();
  } catch (const IoError&) {
    hashRawPrefix(device, h);
    return h.value();
  }
  if (sb.magic != kExt4Magic || sb.blocks_count == 0 || sb.blocks_per_group == 0 ||
      sb.inodes_per_group == 0) {
    hashRawPrefix(device, h);
    return h.value();
  }

  hashSuperblock(sb, h);

  const std::uint32_t groups = sb.groupCount();
  for (std::uint32_t group = 0; group < groups; ++group) {
    h.str("group", 5);
    h.u32(group);
    try {
      const GroupDesc gd = image.loadGroupDesc(sb, group);
      h.u32(gd.block_bitmap);
      h.u32(gd.inode_bitmap);
      h.u32(gd.inode_table);
      h.u32(gd.free_blocks_count);
      h.u32(gd.free_inodes_count);
      h.u32(gd.flags);
    } catch (const IoError&) {
      h.str("desc-unreadable", 15);
      continue;
    }

    try {
      const Bitmap blocks = image.loadBlockBitmap(sb, group);
      h.bytes(blocks.bytes().data(), blocks.bytes().size());
    } catch (const IoError&) {
      h.str("bbm-unreadable", 14);
    }

    Bitmap inodes;
    bool inodes_ok = true;
    try {
      inodes = image.loadInodeBitmap(sb, group);
      h.bytes(inodes.bytes().data(), inodes.bytes().size());
    } catch (const IoError&) {
      h.str("ibm-unreadable", 14);
      inodes_ok = false;
    }
    if (!inodes_ok) continue;

    // In-use inodes: number, size, link count and extent map.
    for (std::uint32_t slot = 0; slot < sb.inodes_per_group; ++slot) {
      if (!inodes.get(slot)) continue;
      const std::uint32_t ino = group * sb.inodes_per_group + slot + 1;
      if (ino > sb.inodes_count) break;
      h.str("inode", 5);
      h.u32(ino);
      try {
        const Inode inode = image.loadInode(sb, ino);
        h.u32(inode.size_bytes);
        h.u32(inode.links);
        h.u64(inode.extents.size());
        for (const Extent& e : inode.extents) {
          h.u32(e.start);
          h.u32(e.length);
        }
      } catch (const IoError&) {
        h.str("inode-unreadable", 16);
      }
    }
  }
  return h.value();
}

std::string digestHex(std::uint64_t digest) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace fsdep::fsim
