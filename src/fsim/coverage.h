// Coverage points: fsim code paths register the configuration-dependent
// branches they take. ConBugCk measures how deep a configuration drives
// the tools by counting distinct points (paper §4.2: "allow the enhanced
// tool to drive deeply into the target code area").
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace fsdep::fsim {

class CoverageRegistry {
 public:
  static CoverageRegistry& instance();

  void hit(std::string_view point);
  void reset();
  [[nodiscard]] std::size_t distinctPoints() const { return points_.size(); }
  [[nodiscard]] const std::set<std::string>& points() const { return points_; }
  [[nodiscard]] bool wasHit(std::string_view point) const {
    return points_.contains(std::string(point));
  }

 private:
  std::set<std::string> points_;
};

/// Convenience wrapper used across fsim.
inline void coverPoint(std::string_view point) { CoverageRegistry::instance().hit(point); }

}  // namespace fsdep::fsim
