// DefragTool: the Online stage's e4defrag. Measures per-file
// fragmentation (extent count relative to the ideal single extent) and
// rewrites fragmented files into contiguous space when possible. Requires
// the extent feature — the cross-component dependency the study's s2
// scenario hinges on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/mount.h"
#include "support/result.h"

namespace fsdep::fsim {

struct DefragOptions {
  bool stat_only = false;  ///< -c: report, do not move
  bool verbose = false;
};

struct DefragFileReport {
  std::uint32_t ino = 0;
  std::uint32_t extents_before = 0;
  std::uint32_t extents_after = 0;
};

struct DefragReport {
  std::vector<DefragFileReport> files;
  std::uint32_t defragmented = 0;

  [[nodiscard]] double averageExtentsBefore() const;
  [[nodiscard]] double averageExtentsAfter() const;
};

class DefragTool {
 public:
  /// Defragments every in-use file of the mounted filesystem. I/O
  /// faults surface as structured errors, never as exceptions.
  static Result<DefragReport> run(MountedFs& fs, BlockDevice& device,
                                  const DefragOptions& options = {});

 private:
  static Result<DefragReport> runImpl(BlockDevice& device, const DefragOptions& options);
};

}  // namespace fsdep::fsim
