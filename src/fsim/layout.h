// On-disk layout of the fsim ext4-like filesystem.
//
// The simulator keeps the real ext4 geometry concepts — a superblock at
// byte offset 1024, block groups with block/inode bitmaps and inode
// tables, sparse_super / sparse_super2 backup placement — while trimming
// everything irrelevant to configuration behaviour (no directories, no
// htree, no journal replay machinery beyond flags).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fsdep::fsim {

inline constexpr std::uint16_t kExt4Magic = 0xEF53;
inline constexpr std::uint32_t kSuperblockOffset = 1024;

inline constexpr std::uint16_t kStateValid = 0x0001;
inline constexpr std::uint16_t kStateError = 0x0002;

// Feature flags (same values as the real ext4 and the analysis corpus).
inline constexpr std::uint32_t kCompatHasJournal = 0x0004;
inline constexpr std::uint32_t kCompatResizeInode = 0x0010;
inline constexpr std::uint32_t kCompatSparseSuper2 = 0x0200;

inline constexpr std::uint32_t kIncompatMetaBg = 0x0010;
inline constexpr std::uint32_t kIncompatExtents = 0x0040;
inline constexpr std::uint32_t kIncompat64Bit = 0x0080;
inline constexpr std::uint32_t kIncompatFlexBg = 0x0200;
inline constexpr std::uint32_t kIncompatInlineData = 0x8000;

inline constexpr std::uint32_t kRoCompatSparseSuper = 0x0001;
inline constexpr std::uint32_t kRoCompatQuota = 0x0100;
inline constexpr std::uint32_t kRoCompatBigalloc = 0x0200;
inline constexpr std::uint32_t kRoCompatMetadataCsum = 0x0400;

/// In-memory superblock; serialized little-endian into the image.
struct Superblock {
  std::uint32_t inodes_count = 0;
  std::uint32_t blocks_count = 0;
  std::uint32_t reserved_blocks_count = 0;
  std::uint32_t free_blocks_count = 0;
  std::uint32_t free_inodes_count = 0;
  std::uint32_t first_data_block = 0;
  std::uint32_t log_block_size = 2;  ///< block size == 1024 << log_block_size
  std::uint32_t blocks_per_group = 0;
  std::uint32_t inodes_per_group = 0;
  std::uint16_t mount_count = 0;
  std::uint16_t max_mount_count = 65535;
  std::uint16_t magic = kExt4Magic;
  std::uint16_t state = kStateValid;
  std::uint32_t rev_level = 1;
  std::uint32_t first_inode = 11;
  std::uint16_t inode_size = 256;
  std::uint32_t feature_compat = 0;
  std::uint32_t feature_incompat = 0;
  std::uint32_t feature_ro_compat = 0;
  char volume_name[16] = {};
  std::uint16_t reserved_gdt_blocks = 0;
  std::uint16_t desc_size = 32;
  std::uint32_t backup_bgs[2] = {0, 0};  ///< sparse_super2 backup groups
  std::uint32_t error_count = 0;
  std::uint32_t journal_start = 0;   ///< first block of the journal area
  std::uint32_t journal_blocks = 0;  ///< journal length (0 = no journal)
  std::uint16_t journal_dirty = 0;   ///< nonzero: replay needed before use
  std::uint32_t checksum = 0;  ///< simple additive checksum of the above

  [[nodiscard]] std::uint32_t blockSize() const { return 1024u << log_block_size; }
  [[nodiscard]] bool hasCompat(std::uint32_t mask) const { return (feature_compat & mask) != 0; }
  [[nodiscard]] bool hasIncompat(std::uint32_t mask) const {
    return (feature_incompat & mask) != 0;
  }
  [[nodiscard]] bool hasRoCompat(std::uint32_t mask) const {
    return (feature_ro_compat & mask) != 0;
  }
  [[nodiscard]] std::uint32_t groupCount() const;
  /// Blocks in group `group` (the last group may be short).
  [[nodiscard]] std::uint32_t blocksInGroup(std::uint32_t group) const;

  /// Recomputes the additive checksum field.
  void updateChecksum();
  [[nodiscard]] std::uint32_t computeChecksum() const;

  /// Fixed serialized footprint (independent of block size).
  static constexpr std::size_t kDiskSize = 128;
  void serialize(std::uint8_t* out) const;
  static Superblock deserialize(const std::uint8_t* in);
};

/// Per-group descriptor.
struct GroupDesc {
  std::uint32_t block_bitmap = 0;   ///< block number of the block bitmap
  std::uint32_t inode_bitmap = 0;
  std::uint32_t inode_table = 0;
  std::uint16_t free_blocks_count = 0;
  std::uint16_t free_inodes_count = 0;
  std::uint16_t flags = 0;

  static constexpr std::size_t kDiskSize = 32;
  void serialize(std::uint8_t* out) const;
  static GroupDesc deserialize(const std::uint8_t* in);
};

/// True when `group` holds a superblock backup under sparse_super rules
/// (group 0, 1 and powers of 3, 5, 7).
bool isSparseBackupGroup(std::uint32_t group);

/// Backup groups for the given superblock (sparse_super, sparse_super2 or
/// every group for neither).
std::vector<std::uint32_t> backupGroups(const Superblock& sb);

/// A simple inode: a size plus extent list (start block, length).
struct Extent {
  std::uint32_t start = 0;
  std::uint32_t length = 0;
};

struct Inode {
  std::uint32_t size_bytes = 0;
  std::uint16_t links = 0;  ///< 0 = free
  std::vector<Extent> extents;

  static constexpr std::size_t kMaxExtents = 12;
  static constexpr std::size_t kDiskSize = 128;  ///< minimum on-disk footprint
  void serialize(std::uint8_t* out) const;
  static Inode deserialize(const std::uint8_t* in);
};

}  // namespace fsdep::fsim
