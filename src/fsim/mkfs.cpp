#include "fsim/mkfs.h"

#include <algorithm>
#include <cstring>

#include "fsim/coverage.h"

namespace fsdep::fsim {

std::vector<std::string> MkfsTool::validate(const MkfsOptions& o, std::uint64_t device_bytes) {
  std::vector<std::string> violations;
  auto violated = [&](const std::string& what) { violations.push_back(what); };

  // --- Self dependencies. ---
  if (o.block_size < 1024 || o.block_size > 65536) {
    violated("mke2fs.blocksize must be in [1024, 65536]");
  }
  if ((o.block_size & (o.block_size - 1)) != 0) {
    violated("mke2fs.blocksize must be a power of two");
  }
  if (o.inode_size < 128 || o.inode_size > 4096) {
    violated("mke2fs.inode_size must be in [128, 4096]");
  }
  if (o.inode_ratio < 1024 || o.inode_ratio > 67108864) {
    violated("mke2fs.inode_ratio must be in [1024, 67108864]");
  }
  if (o.reserved_ratio > 50) {
    violated("mke2fs.reserved_ratio must be in [0, 50]");
  }
  const std::uint32_t bpg = o.blocks_per_group == 0 ? 8 * o.block_size : o.blocks_per_group;
  if (bpg < 256 || bpg > 65528) {
    violated("mke2fs.blocks_per_group must be in [256, 65528]");
  }
  if (bpg % 8 != 0) {
    violated("mke2fs.blocks_per_group must be a multiple of 8");
  }

  // --- Cross-parameter dependencies. ---
  if (o.meta_bg && o.resize_inode) {
    violated("mke2fs.meta_bg excludes mke2fs.resize_inode");
  }
  if (o.bigalloc && !o.extents) {
    violated("mke2fs.bigalloc requires mke2fs.extent");
  }
  if (o.sparse_super2 && o.resize_inode) {
    violated("mke2fs.sparse_super2 excludes mke2fs.resize_inode");
  }
  if (o.has_64bit && !o.extents) {
    violated("mke2fs.64bit requires mke2fs.extent");
  }
  if (o.quota && !o.has_journal) {
    violated("mke2fs.quota requires mke2fs.has_journal");
  }
  if (o.uninit_bg && o.metadata_csum) {
    violated("mke2fs.uninit_bg excludes mke2fs.metadata_csum");
  }
  if (o.resize_limit_blocks != 0 && !o.resize_inode) {
    violated("mke2fs.resize_limit requires mke2fs.resize_inode");
  }
  if (o.inline_data && !o.extents) {
    violated("mke2fs.inline_data requires mke2fs.extent");
  }
  if (o.encrypt && o.bigalloc) {
    violated("mke2fs.encrypt excludes mke2fs.bigalloc");
  }
  if (o.cluster_size != 0 && !o.bigalloc) {
    violated("mke2fs.cluster_size requires mke2fs.bigalloc");
  }
  if (o.inode_size > o.block_size) {
    violated("mke2fs.inode_size must be <= mke2fs.blocksize");
  }
  if (bpg > 8 * o.block_size) {
    violated("mke2fs.blocks_per_group must be <= 8 * mke2fs.blocksize");
  }
  if (o.cluster_size != 0 && o.cluster_size < o.block_size) {
    violated("mke2fs.cluster_size must be >= mke2fs.blocksize");
  }
  if (o.inode_ratio < o.block_size) {
    violated("mke2fs.inode_ratio must be >= mke2fs.blocksize");
  }

  // --- Whole-image invariant (offline Z dependency). ---
  const std::uint64_t size_blocks =
      o.size_blocks != 0 ? o.size_blocks : device_bytes / std::max<std::uint32_t>(o.block_size, 1);
  if (size_blocks < 16) {
    violated("mke2fs.size must provide at least 16 blocks");
  }
  return violations;
}

Result<Superblock> MkfsTool::format(BlockDevice& device, const MkfsOptions& o) {
  try {
    return formatImpl(device, o);
  } catch (const IoError& e) {
    return makeError(std::string("mkfs: I/O error: ") + e.what());
  }
}

Result<Superblock> MkfsTool::formatImpl(BlockDevice& device, const MkfsOptions& o) {
  const std::vector<std::string> violations = validate(o, device.sizeBytes());
  if (!violations.empty()) {
    std::string message = "mkfs: invalid configuration:";
    for (const std::string& v : violations) message += "\n  " + v;
    return makeError(message);
  }
  if (device.blockSize() != o.block_size) {
    return makeError("mkfs: device block size does not match -b");
  }

  coverPoint("mkfs.start");

  Superblock sb;
  sb.log_block_size = 0;
  while ((1024u << sb.log_block_size) < o.block_size) ++sb.log_block_size;
  sb.first_data_block = o.block_size == 1024 ? 1 : 0;
  sb.blocks_count = o.size_blocks != 0
                        ? o.size_blocks
                        : static_cast<std::uint32_t>(device.sizeBytes() / o.block_size);
  if (sb.blocks_count > device.blockCount()) {
    return makeError("mkfs: requested size exceeds the device");
  }
  sb.blocks_per_group = o.blocks_per_group == 0 ? 8 * o.block_size : o.blocks_per_group;
  // Keep group descriptors within one block.
  const std::uint32_t max_groups = o.block_size / GroupDesc::kDiskSize;
  if (sb.groupCount() > max_groups) {
    return makeError("mkfs: too many block groups for a one-block descriptor table");
  }
  sb.inode_size = o.inode_size;
  const std::uint64_t wanted_inodes =
      std::max<std::uint64_t>(16, static_cast<std::uint64_t>(sb.blocks_count) * o.block_size /
                                      o.inode_ratio);
  const std::uint32_t groups = sb.groupCount();
  sb.inodes_per_group = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(65536, (wanted_inodes + groups - 1) / groups));
  sb.inodes_per_group = std::max<std::uint32_t>(sb.inodes_per_group, 16);
  // Round up so the inode table fills whole blocks.
  const std::uint32_t inodes_per_block = o.block_size / o.inode_size;
  sb.inodes_per_group =
      (sb.inodes_per_group + inodes_per_block - 1) / inodes_per_block * inodes_per_block;
  sb.inodes_count = sb.inodes_per_group * groups;
  sb.reserved_blocks_count = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(sb.blocks_count) * o.reserved_ratio / 100);
  sb.reserved_gdt_blocks = static_cast<std::uint16_t>(
      o.resize_inode ? std::max<std::uint32_t>(1, o.resize_limit_blocks / (8 * o.block_size))
                     : 0);

  sb.feature_compat = 0;
  sb.feature_incompat = 0;
  sb.feature_ro_compat = 0;
  if (o.has_journal) sb.feature_compat |= kCompatHasJournal;
  if (o.resize_inode) sb.feature_compat |= kCompatResizeInode;
  if (o.sparse_super2) sb.feature_compat |= kCompatSparseSuper2;
  if (o.sparse_super && !o.sparse_super2) sb.feature_ro_compat |= kRoCompatSparseSuper;
  if (o.meta_bg) sb.feature_incompat |= kIncompatMetaBg;
  if (o.extents) sb.feature_incompat |= kIncompatExtents;
  if (o.has_64bit) sb.feature_incompat |= kIncompat64Bit;
  if (o.flex_bg) sb.feature_incompat |= kIncompatFlexBg;
  if (o.inline_data) sb.feature_incompat |= kIncompatInlineData;
  if (o.quota) sb.feature_ro_compat |= kRoCompatQuota;
  if (o.bigalloc) sb.feature_ro_compat |= kRoCompatBigalloc;
  if (o.metadata_csum) sb.feature_ro_compat |= kRoCompatMetadataCsum;
  sb.desc_size = o.has_64bit ? 64 : 32;

  std::memset(sb.volume_name, 0, sizeof(sb.volume_name));
  std::strncpy(sb.volume_name, o.label.c_str(), sizeof(sb.volume_name) - 1);

  if (o.sparse_super2) {
    coverPoint("mkfs.sparse_super2_layout");
    sb.backup_bgs[0] = groups > 1 ? 1 : 0;
    sb.backup_bgs[1] = groups > 2 ? groups - 1 : 0;
  }
  if (o.bigalloc) coverPoint("mkfs.bigalloc_layout");
  if (o.meta_bg) coverPoint("mkfs.meta_bg_layout");
  if (o.has_64bit) coverPoint("mkfs.64bit_layout");
  if (o.quota) coverPoint("mkfs.quota_inodes");
  if (o.inline_data) coverPoint("mkfs.inline_data");
  if (o.encrypt) coverPoint("mkfs.encrypt_policy");
  if (o.uninit_bg) coverPoint("mkfs.uninit_bg");
  if (o.metadata_csum) coverPoint("mkfs.metadata_csum_seed");

  FsImage image(device);

  // Lay out each group: bitmaps + inode table after the (optional)
  // superblock/descriptor copies, then mark the metadata in the bitmap.
  std::uint32_t total_free = 0;
  for (std::uint32_t group = 0; group < groups; ++group) {
    const std::uint32_t first = FsImage::groupFirstBlock(sb, group);
    const std::uint32_t in_group = sb.blocksInGroup(group);
    std::uint32_t cursor = first;

    bool has_sb_copy = group == 0;
    for (const std::uint32_t g : backupGroups(sb)) has_sb_copy |= g == group;
    if (has_sb_copy) cursor += 2;  // superblock copy + descriptor copy
    cursor += sb.reserved_gdt_blocks;

    GroupDesc gd;
    gd.block_bitmap = cursor++;
    gd.inode_bitmap = cursor++;
    gd.inode_table = cursor;
    cursor += FsImage::inodeTableBlocks(sb);

    // The internal journal lives right after group 0's inode table.
    if (group == 0 && o.has_journal) {
      sb.journal_blocks = std::max<std::uint32_t>(64, sb.blocks_count / 64);
      sb.journal_start = cursor;
      cursor += sb.journal_blocks;
      coverPoint("mkfs.journal_area");
    }

    const std::uint32_t metadata = cursor - first;
    if (metadata >= in_group) return makeError("mkfs: group too small for metadata");
    gd.free_blocks_count = static_cast<std::uint16_t>(in_group - metadata);
    gd.free_inodes_count = static_cast<std::uint16_t>(
        group == 0 ? sb.inodes_per_group - (sb.first_inode - 1) : sb.inodes_per_group);
    image.storeGroupDesc(sb, group, gd);

    Bitmap block_bitmap(in_group);
    for (std::uint32_t b = 0; b < metadata; ++b) block_bitmap.set(b, true);
    image.storeBlockBitmap(sb, group, block_bitmap);

    Bitmap inode_bitmap(sb.inodes_per_group);
    if (group == 0) {
      for (std::uint32_t i = 0; i + 1 < sb.first_inode; ++i) inode_bitmap.set(i, true);
    }
    image.storeInodeBitmap(sb, group, inode_bitmap);

    // Zero the inode table.
    std::vector<std::uint8_t> zero(o.block_size, 0);
    for (std::uint32_t b = gd.inode_table; b < cursor; ++b) image.device().writeBlock(b, zero);

    total_free += in_group - metadata;
  }

  sb.free_blocks_count = total_free;
  sb.free_inodes_count = sb.inodes_count - (sb.first_inode - 1);
  sb.state = kStateValid;
  sb.updateChecksum();
  image.storeSuperblockWithBackups(sb);
  coverPoint("mkfs.done");
  return sb;
}

}  // namespace fsdep::fsim
