#include "fsim/fsck.h"

#include "fsim/coverage.h"
#include "fsim/mount.h"

namespace fsdep::fsim {

int FsckReport::corruptionCount() const {
  int n = 0;
  for (const FsckProblem& p : problems) n += p.severity == ProblemSeverity::Corruption ? 1 : 0;
  return n;
}

std::string FsckReport::summary() const {
  if (clean_skip) return "clean (skipped, use force to check)";
  if (problems.empty()) return "clean";
  std::string out = std::to_string(problems.size()) + " problem(s)";
  const int corruptions = corruptionCount();
  if (corruptions > 0) out += ", " + std::to_string(corruptions) + " corruption(s)";
  return out;
}

Result<FsckReport> FsckTool::check(BlockDevice& device, const FsckOptions& options) {
  try {
    return checkImpl(device, options);
  } catch (const IoError& e) {
    return makeError(std::string("fsck: I/O error: ") + e.what());
  }
}

Result<FsckReport> FsckTool::checkImpl(BlockDevice& device, const FsckOptions& options) {
  FsImage image(device);
  Superblock sb =
      options.backup_group == 0 ? image.loadSuperblock()
                                : image.loadBackupSuperblock(options.backup_group);
  if (options.backup_group != 0) coverPoint("fsck.backup_superblock");

  FsckReport report;
  auto note = [&](ProblemSeverity severity, std::string description) {
    report.problems.push_back(FsckProblem{severity, std::move(description), false});
  };

  if (sb.magic != kExt4Magic) {
    note(ProblemSeverity::Corruption, "bad magic in superblock");
    return report;  // nothing else is trustworthy
  }

  if ((sb.state & kStateValid) != 0 && !options.force && !options.repair) {
    report.clean_skip = true;
    coverPoint("fsck.clean_skip");
    return report;
  }
  coverPoint("fsck.full_check");

  // --- Superblock domain checks (the same persistent-field SDs). ---
  for (const std::string& p : MountTool::validateSuperblock(sb)) {
    note(ProblemSeverity::Inconsistency, "superblock: " + p);
  }
  if (sb.checksum != sb.computeChecksum()) {
    note(ProblemSeverity::Inconsistency, "superblock checksum mismatch");
  }
  if ((sb.state & kStateValid) == 0) {
    note(ProblemSeverity::Inconsistency,
         "filesystem was not cleanly shut down (crash or in-progress operation)");
    coverPoint("fsck.unclean_state");
  }
  if (sb.journal_blocks != 0 && sb.journal_dirty != 0) {
    note(ProblemSeverity::Inconsistency, "journal needs recovery (unclean shutdown)");
    coverPoint("fsck.journal_recovery_needed");
  }

  // --- Feature sanity. ---
  if (sb.hasCompat(kCompatSparseSuper2) && sb.hasCompat(kCompatResizeInode)) {
    note(ProblemSeverity::Inconsistency, "sparse_super2 together with resize_inode");
  }
  if (sb.hasRoCompat(kRoCompatBigalloc) && !sb.hasIncompat(kIncompatExtents)) {
    note(ProblemSeverity::Inconsistency, "bigalloc without extents");
  }
  if (sb.hasCompat(kCompatSparseSuper2)) {
    coverPoint("fsck.sparse_super2_fs");
    for (const std::uint32_t g : sb.backup_bgs) {
      if (g != 0 && g >= sb.groupCount()) {
        note(ProblemSeverity::Corruption,
             "sparse_super2 backup group " + std::to_string(g) + " beyond last group");
      }
    }
  }

  // --- Per-group bitmap vs. descriptor accounting. ---
  const std::uint32_t groups = sb.groupCount();
  std::uint64_t free_blocks_from_bitmaps = 0;
  std::uint64_t free_inodes_from_bitmaps = 0;
  for (std::uint32_t group = 0; group < groups; ++group) {
    try {
      const GroupDesc gd = image.loadGroupDesc(sb, group);
      const Bitmap block_bitmap = image.loadBlockBitmap(sb, group);
      const std::uint32_t in_group = sb.blocksInGroup(group);
      const std::uint32_t used = block_bitmap.countSet(in_group);
      const std::uint32_t free_bits = in_group - used;
      if (free_bits != gd.free_blocks_count) {
        note(ProblemSeverity::Corruption,
             "group " + std::to_string(group) + ": descriptor says " +
                 std::to_string(gd.free_blocks_count) + " free blocks, bitmap says " +
                 std::to_string(free_bits));
        coverPoint("fsck.free_count_mismatch");
      }
      free_blocks_from_bitmaps += free_bits;

      const Bitmap inode_bitmap = image.loadInodeBitmap(sb, group);
      const std::uint32_t used_inodes = inode_bitmap.countSet(sb.inodes_per_group);
      const std::uint32_t free_inodes = sb.inodes_per_group - used_inodes;
      if (free_inodes != gd.free_inodes_count) {
        note(ProblemSeverity::Inconsistency,
             "group " + std::to_string(group) + ": inode free count mismatch");
      }
      free_inodes_from_bitmaps += free_inodes;
    } catch (const IoError& e) {
      note(ProblemSeverity::Corruption,
           "group " + std::to_string(group) + ": unreadable metadata: " + e.what());
    }
  }

  if (free_blocks_from_bitmaps != sb.free_blocks_count) {
    note(ProblemSeverity::Corruption,
         "superblock free block count " + std::to_string(sb.free_blocks_count) +
             " does not match bitmaps (" + std::to_string(free_blocks_from_bitmaps) + ")");
    coverPoint("fsck.sb_free_count_mismatch");
  }
  if (free_inodes_from_bitmaps != sb.free_inodes_count) {
    note(ProblemSeverity::Inconsistency, "superblock free inode count mismatch");
  }

  // --- Inode extents vs. block bitmaps (cross check). ---
  for (std::uint32_t ino = sb.first_inode; ino <= sb.inodes_count; ++ino) {
    Inode inode;
    try {
      inode = image.loadInode(sb, ino);
    } catch (const IoError&) {
      continue;
    }
    if (inode.links == 0) continue;
    for (const Extent& e : inode.extents) {
      if (e.start + e.length > sb.blocks_count) {
        note(ProblemSeverity::Corruption,
             "inode " + std::to_string(ino) + " references blocks beyond the filesystem");
        coverPoint("fsck.extent_out_of_range");
        continue;
      }
      for (std::uint32_t b = 0; b < e.length; ++b) {
        const std::uint32_t block = e.start + b;
        const std::uint32_t group = (block - sb.first_data_block) / sb.blocks_per_group;
        const std::uint32_t bit = (block - sb.first_data_block) % sb.blocks_per_group;
        const Bitmap bitmap = image.loadBlockBitmap(sb, group);
        if (!bitmap.get(bit)) {
          note(ProblemSeverity::Corruption,
               "inode " + std::to_string(ino) + " uses block " + std::to_string(block) +
                   " that is free in the bitmap");
        }
      }
    }
  }

  // --- Backup superblock freshness. ---
  for (const std::uint32_t group : backupGroups(sb)) {
    if (group >= groups) continue;
    const Superblock backup = image.loadBackupSuperblock(group);
    if (backup.magic != kExt4Magic) {
      note(ProblemSeverity::Inconsistency,
           "backup superblock in group " + std::to_string(group) + " missing");
    } else if (backup.blocks_count != sb.blocks_count) {
      note(ProblemSeverity::Corruption,
           "backup superblock in group " + std::to_string(group) + " is stale (blocks_count " +
               std::to_string(backup.blocks_count) + " vs " + std::to_string(sb.blocks_count) +
               ")");
      coverPoint("fsck.stale_backup");
    }
  }

  // --- Repair pass. ---
  if (options.repair && !report.problems.empty()) {
    coverPoint("fsck.repair");
    // Recompute all counts from the bitmaps (the source of truth).
    std::uint64_t total_free = 0;
    for (std::uint32_t group = 0; group < groups; ++group) {
      GroupDesc gd = image.loadGroupDesc(sb, group);
      const Bitmap bitmap = image.loadBlockBitmap(sb, group);
      const std::uint32_t in_group = sb.blocksInGroup(group);
      const std::uint32_t free_bits = in_group - bitmap.countSet(in_group);
      gd.free_blocks_count = static_cast<std::uint16_t>(free_bits);
      const Bitmap inode_bitmap = image.loadInodeBitmap(sb, group);
      gd.free_inodes_count = static_cast<std::uint16_t>(
          sb.inodes_per_group - inode_bitmap.countSet(sb.inodes_per_group));
      image.storeGroupDesc(sb, group, gd);
      total_free += free_bits;
    }
    sb.free_blocks_count = static_cast<std::uint32_t>(total_free);
    std::uint64_t free_inodes = 0;
    for (std::uint32_t group = 0; group < groups; ++group) {
      free_inodes += image.loadGroupDesc(sb, group).free_inodes_count;
    }
    sb.free_inodes_count = static_cast<std::uint32_t>(free_inodes);
    sb.state = kStateValid;
    sb.journal_dirty = 0;
    sb.updateChecksum();
    image.storeSuperblockWithBackups(sb);
    for (FsckProblem& p : report.problems) p.fixed = true;
  }

  return report;
}

}  // namespace fsdep::fsim
