#include "fsim/defrag.h"

#include "fsim/coverage.h"

namespace fsdep::fsim {

double DefragReport::averageExtentsBefore() const {
  if (files.empty()) return 0.0;
  double total = 0;
  for (const DefragFileReport& f : files) total += f.extents_before;
  return total / static_cast<double>(files.size());
}

double DefragReport::averageExtentsAfter() const {
  if (files.empty()) return 0.0;
  double total = 0;
  for (const DefragFileReport& f : files) total += f.extents_after;
  return total / static_cast<double>(files.size());
}

Result<DefragReport> DefragTool::run(MountedFs& fs, BlockDevice& device,
                                     const DefragOptions& options) {
  const Superblock& mounted_sb = fs.superblock();
  if (!mounted_sb.hasIncompat(kIncompatExtents)) {
    // The real e4defrag refuses non-extent filesystems; moving
    // block-mapped files is exactly the s2 bug case of the study.
    return makeError("e4defrag: filesystem does not use extents");
  }
  coverPoint("defrag.start");

  try {
    return runImpl(device, options);
  } catch (const IoError& e) {
    return makeError(std::string("e4defrag: I/O error: ") + e.what());
  }
}

Result<DefragReport> DefragTool::runImpl(BlockDevice& device, const DefragOptions& options) {
  FsImage image(device);
  Superblock sb = image.loadSuperblock();
  DefragReport report;

  for (std::uint32_t ino = sb.first_inode; ino <= sb.inodes_count; ++ino) {
    Inode inode;
    try {
      inode = image.loadInode(sb, ino);
    } catch (const IoError&) {
      continue;
    }
    if (inode.links == 0 || inode.extents.empty()) continue;

    DefragFileReport file;
    file.ino = ino;
    file.extents_before = static_cast<std::uint32_t>(inode.extents.size());
    file.extents_after = file.extents_before;

    if (!options.stat_only && inode.extents.size() > 1) {
      coverPoint("defrag.rewrite");
      std::uint32_t total_blocks = 0;
      for (const Extent& e : inode.extents) total_blocks += e.length;
      // Free first, then try a contiguous re-allocation; if the allocator
      // still fragments, keep whatever it produced (the real tool also
      // only improves opportunistically).
      image.freeExtents(sb, inode.extents);
      std::vector<Extent> replacement;
      try {
        replacement = image.allocateBlocks(sb, total_blocks);
      } catch (const IoError& e) {
        return makeError(std::string("e4defrag: allocation failed mid-flight: ") + e.what());
      }
      inode.extents = replacement;
      image.storeInode(sb, ino, inode);
      file.extents_after = static_cast<std::uint32_t>(replacement.size());
      if (file.extents_after < file.extents_before) ++report.defragmented;
    }
    report.files.push_back(file);
  }
  coverPoint("defrag.done");
  return report;
}

}  // namespace fsdep::fsim
