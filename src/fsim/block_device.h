// In-memory block device with fault injection. All fsim utilities go
// through this interface, so media errors, torn writes, transient
// failures and crash points can be injected under any of them
// (ConHandleCk and the CrashCk campaign use this).
//
// Fault model
//   - Legacy per-block faults (injectReadError / injectWriteError) are
//     sticky: the block fails forever until clearFaults().
//   - A FaultPlan is a deterministic schedule installed with
//     setFaultPlan(). Every run is replayable from the (plan, seed)
//     pair: the same plan on the same operation sequence produces the
//     same failure at the same write index.
//       * crash_at_write freezes the device when the Nth successful
//         write would happen; the crashing write persists only a torn
//         prefix (none / fixed / seeded length). A frozen device throws
//         on every access until clearFaults() — exactly a machine that
//         lost power mid-write.
//       * fail_after_writes models device death: once N writes have
//         persisted, all later writes fail permanently.
//       * transients model recoverable media errors: an access to the
//         faulted block fails `failures` times, then succeeds.
//   - A RetryPolicy gives the device bounded retry-with-backoff at the
//     block layer (the way a kernel retries transient media errors).
//     Backoff is simulated deterministically: ticks accumulate in a
//     counter instead of sleeping. Crash-frozen and dead devices are
//     never retried.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fsdep::fsim {

class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// A recoverable media error pinned to one block: the first `failures`
/// accesses fail, later ones succeed (cleared in place).
struct TransientFault {
  std::uint32_t block = 0;
  std::uint32_t failures = 1;
  bool on_write = true;  ///< false: reads of the block fail instead
};

/// How much of the crashing write reaches the medium.
enum class TornMode : std::uint8_t {
  None,    ///< nothing persists
  Prefix,  ///< the first torn_prefix_bytes persist
  Seeded,  ///< prefix length derived deterministically from the seed
};

/// Deterministic fault schedule. Write indices are plan-relative and
/// count only *persisted* writes, so an operation's crash points are
/// exactly 0 .. writeCount-1 of a fault-free run.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::optional<std::uint64_t> crash_at_write;
  TornMode torn_mode = TornMode::None;
  std::uint32_t torn_prefix_bytes = 0;
  std::optional<std::uint64_t> fail_after_writes;
  std::vector<TransientFault> transients;
};

/// Bounded retry with (simulated) exponential backoff.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< 1 = no retry
  std::uint32_t backoff_base = 1;  ///< ticks; doubled on every retry
};

class BlockDevice {
 public:
  BlockDevice(std::uint32_t block_count, std::uint32_t block_size);

  [[nodiscard]] std::uint32_t blockCount() const { return block_count_; }
  [[nodiscard]] std::uint32_t blockSize() const { return block_size_; }
  [[nodiscard]] std::uint64_t sizeBytes() const {
    return static_cast<std::uint64_t>(block_count_) * block_size_;
  }

  /// Reads one block. Throws IoError for out-of-range or injected faults.
  void readBlock(std::uint32_t block, std::span<std::uint8_t> out) const;
  void writeBlock(std::uint32_t block, std::span<const std::uint8_t> data);

  /// Byte-granular access (the superblock lives at byte offset 1024).
  void readBytes(std::uint64_t offset, std::span<std::uint8_t> out) const;
  void writeBytes(std::uint64_t offset, std::span<const std::uint8_t> data);

  /// Grows (or shrinks) the device; new blocks are zeroed.
  void resize(std::uint32_t new_block_count);

  // --- Fault injection ---------------------------------------------
  /// Any read of `block` fails with IoError.
  void injectReadError(std::uint32_t block) { bad_read_blocks_.insert(block); }
  /// Any write to `block` fails with IoError.
  void injectWriteError(std::uint32_t block) { bad_write_blocks_.insert(block); }
  /// Flips one byte in `block` (silent corruption).
  void corruptBlock(std::uint32_t block, std::uint32_t byte_offset);

  /// Installs a deterministic fault schedule; replaces any previous one
  /// and restarts the plan-relative write index at zero.
  void setFaultPlan(FaultPlan plan);
  [[nodiscard]] bool hasFaultPlan() const { return plan_.has_value(); }
  /// True once a crash fault fired; every access throws until
  /// clearFaults().
  [[nodiscard]] bool frozen() const { return frozen_; }
  /// Removes all faults: legacy bad blocks, the fault plan, and the
  /// frozen/dead latches. Statistics are NOT touched (see resetStats).
  void clearFaults();

  void setRetryPolicy(RetryPolicy policy) { retry_policy_ = policy; }
  [[nodiscard]] const RetryPolicy& retryPolicy() const { return retry_policy_; }

  // --- Statistics ---------------------------------------------------
  [[nodiscard]] std::uint64_t readCount() const { return reads_; }
  [[nodiscard]] std::uint64_t writeCount() const { return writes_; }
  /// Failed attempts that were retried by the retry policy.
  [[nodiscard]] std::uint64_t retryCount() const { return retries_; }
  /// Simulated backoff accumulated across all retries.
  [[nodiscard]] std::uint64_t backoffTicks() const { return backoff_ticks_; }
  /// Persisted writes since the current fault plan was installed.
  [[nodiscard]] std::uint64_t planWriteIndex() const { return plan_write_index_; }
  /// Zeroes the read/write/retry/backoff counters so callers can observe
  /// a single operation. Fault state is unaffected.
  void resetStats();

 private:
  void checkRange(std::uint32_t block) const;
  /// One write attempt with all fault checks; throws on any fault.
  void attemptWrite(std::uint64_t offset, std::span<const std::uint8_t> data,
                    std::uint32_t block);
  void attemptRead(std::uint64_t offset, std::span<std::uint8_t> out,
                   std::uint32_t block) const;
  /// Bytes of the crashing write that persist under the torn mode.
  [[nodiscard]] std::size_t tornPrefixLength(std::size_t write_size) const;

  std::uint32_t block_count_;
  std::uint32_t block_size_;
  std::vector<std::uint8_t> data_;
  std::set<std::uint32_t> bad_read_blocks_;
  std::set<std::uint32_t> bad_write_blocks_;
  mutable std::optional<FaultPlan> plan_;  // transients decay in place
  RetryPolicy retry_policy_;
  bool frozen_ = false;
  bool dead_ = false;
  std::uint64_t plan_write_index_ = 0;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  mutable std::uint64_t retries_ = 0;
  mutable std::uint64_t backoff_ticks_ = 0;
};

}  // namespace fsdep::fsim
