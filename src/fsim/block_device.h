// In-memory block device with fault injection. All fsim utilities go
// through this interface, so media errors and torn writes can be injected
// under any of them (ConHandleCk uses this).
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

namespace fsdep::fsim {

class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

class BlockDevice {
 public:
  BlockDevice(std::uint32_t block_count, std::uint32_t block_size);

  [[nodiscard]] std::uint32_t blockCount() const { return block_count_; }
  [[nodiscard]] std::uint32_t blockSize() const { return block_size_; }
  [[nodiscard]] std::uint64_t sizeBytes() const {
    return static_cast<std::uint64_t>(block_count_) * block_size_;
  }

  /// Reads one block. Throws IoError for out-of-range or injected faults.
  void readBlock(std::uint32_t block, std::span<std::uint8_t> out) const;
  void writeBlock(std::uint32_t block, std::span<const std::uint8_t> data);

  /// Byte-granular access (the superblock lives at byte offset 1024).
  void readBytes(std::uint64_t offset, std::span<std::uint8_t> out) const;
  void writeBytes(std::uint64_t offset, std::span<const std::uint8_t> data);

  /// Grows (or shrinks) the device; new blocks are zeroed.
  void resize(std::uint32_t new_block_count);

  // --- Fault injection ---------------------------------------------
  /// Any read of `block` fails with IoError.
  void injectReadError(std::uint32_t block) { bad_read_blocks_.insert(block); }
  /// Any write to `block` fails with IoError.
  void injectWriteError(std::uint32_t block) { bad_write_blocks_.insert(block); }
  /// Flips one byte in `block` (silent corruption).
  void corruptBlock(std::uint32_t block, std::uint32_t byte_offset);
  void clearFaults();

  // --- Statistics ---------------------------------------------------
  [[nodiscard]] std::uint64_t readCount() const { return reads_; }
  [[nodiscard]] std::uint64_t writeCount() const { return writes_; }

 private:
  void checkRange(std::uint32_t block) const;

  std::uint32_t block_count_;
  std::uint32_t block_size_;
  std::vector<std::uint8_t> data_;
  std::set<std::uint32_t> bad_read_blocks_;
  std::set<std::uint32_t> bad_write_blocks_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace fsdep::fsim
