// imageStateDigest: a canonical 64-bit hash of the filesystem state a
// user would observe after recovery. The campaign engine uses it to
// deduplicate fault-schedule outcomes: two schedules that leave the
// image in the same post-recovery state are the same bug, however
// different the paths that produced them.
//
// Canonical means the hash walks the *logical* metadata — superblock
// fields that describe the filesystem, group descriptors, bitmaps and
// in-use inodes — rather than raw device bytes, so torn garbage in
// unallocated blocks does not split equivalence classes. Fields that
// merely count history (mount_count, error_count) and the derived
// checksum are excluded. When the device holds no valid filesystem
// (an interrupted mkfs), the digest falls back to hashing the raw
// metadata region so distinct wreckage still hashes distinctly.
#pragma once

#include <cstdint>
#include <string>

#include "fsim/block_device.h"

namespace fsdep::fsim {

/// Digest of the device's current filesystem state. Deterministic, pure
/// (the device is only read), and never throws: unreadable blocks mix a
/// marker into the hash instead of propagating IoError.
std::uint64_t imageStateDigest(BlockDevice& device);

/// "0x"-prefixed lower-case hex rendering used by reports and the
/// on-disk corpus format.
std::string digestHex(std::uint64_t digest);

}  // namespace fsdep::fsim
