// FsckTool: the offline checker. Verifies superblock invariants,
// bitmap-vs-count consistency per group and in total, inode accounting,
// backup superblock freshness and feature sanity; optionally repairs.
// This is the oracle that detects the Figure 1 corruption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/image.h"
#include "support/result.h"

namespace fsdep::fsim {

enum class ProblemSeverity : std::uint8_t { Note, Inconsistency, Corruption };

struct FsckProblem {
  ProblemSeverity severity = ProblemSeverity::Inconsistency;
  std::string description;
  bool fixed = false;
};

struct FsckOptions {
  bool force = false;   ///< check even when the fs looks clean
  bool repair = false;  ///< fix what can be fixed (like -y)
  /// Recover using the backup superblock in this group (0 = primary).
  std::uint32_t backup_group = 0;
};

struct FsckReport {
  std::vector<FsckProblem> problems;
  bool clean_skip = false;  ///< clean fs and !force: nothing checked

  [[nodiscard]] bool isClean() const { return problems.empty(); }
  [[nodiscard]] int corruptionCount() const;
  [[nodiscard]] std::string summary() const;
};

class FsckTool {
 public:
  /// Checks (and optionally repairs) the filesystem. I/O faults surface
  /// as structured errors, never as exceptions.
  static Result<FsckReport> check(BlockDevice& device, const FsckOptions& options = {});

 private:
  static Result<FsckReport> checkImpl(BlockDevice& device, const FsckOptions& options);
};

}  // namespace fsdep::fsim
