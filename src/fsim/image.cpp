#include "fsim/image.h"

#include <algorithm>

namespace fsdep::fsim {

Bitmap Bitmap::fromBytes(std::vector<std::uint8_t> bytes, std::uint32_t bit_count) {
  Bitmap b;
  b.bits_ = std::move(bytes);
  b.count_ = bit_count;
  b.bits_.resize((bit_count + 7) / 8, 0);
  return b;
}

bool Bitmap::get(std::uint32_t bit) const {
  if (bit >= count_) return true;  // out-of-range bits read as "in use"
  return (bits_[bit / 8] >> (bit % 8)) & 1;
}

void Bitmap::set(std::uint32_t bit, bool value) {
  if (bit >= count_) return;
  if (value) {
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  } else {
    bits_[bit / 8] &= static_cast<std::uint8_t>(~(1u << (bit % 8)));
  }
}

std::uint32_t Bitmap::countSet(std::uint32_t limit) const {
  std::uint32_t n = 0;
  const std::uint32_t end = std::min(limit, count_);
  for (std::uint32_t i = 0; i < end; ++i) n += get(i) ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------
// Superblock
// ---------------------------------------------------------------------

Superblock FsImage::loadSuperblock() const {
  std::uint8_t buf[Superblock::kDiskSize];
  device_.readBytes(kSuperblockOffset, buf);
  return Superblock::deserialize(buf);
}

void FsImage::storeSuperblock(const Superblock& sb) {
  std::uint8_t buf[Superblock::kDiskSize];
  sb.serialize(buf);
  device_.writeBytes(kSuperblockOffset, buf);
}

void FsImage::storeSuperblockWithBackups(const Superblock& sb) {
  // Backups first, primary last: the primary superblock write is the
  // commit point, so a crash during the backup writes leaves the old
  // (or in-progress) primary in charge instead of a clean-looking
  // primary with stale backups.
  std::uint8_t buf[Superblock::kDiskSize];
  sb.serialize(buf);
  for (const std::uint32_t group : backupGroups(sb)) {
    const std::uint64_t offset =
        static_cast<std::uint64_t>(groupFirstBlock(sb, group)) * sb.blockSize();
    device_.writeBytes(offset, buf);
  }
  storeSuperblock(sb);
}

Superblock FsImage::loadBackupSuperblock(std::uint32_t group) const {
  const Superblock primary = loadSuperblock();
  std::uint8_t buf[Superblock::kDiskSize];
  const std::uint64_t offset =
      static_cast<std::uint64_t>(groupFirstBlock(primary, group)) * primary.blockSize();
  device_.readBytes(offset, buf);
  return Superblock::deserialize(buf);
}

// ---------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------

std::uint32_t FsImage::groupFirstBlock(const Superblock& sb, std::uint32_t group) {
  return sb.first_data_block + group * sb.blocks_per_group;
}

std::uint32_t FsImage::inodeTableBlocks(const Superblock& sb) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(sb.inodes_per_group) * sb.inode_size;
  return static_cast<std::uint32_t>((bytes + sb.blockSize() - 1) / sb.blockSize());
}

std::uint32_t FsImage::descTableBlock(const Superblock& sb) {
  // Directly after the primary superblock's block.
  return sb.first_data_block + 1;
}

namespace {

bool groupHasSuperblockCopy(const Superblock& sb, std::uint32_t group) {
  if (group == 0) return true;
  for (const std::uint32_t g : backupGroups(sb)) {
    if (g == group) return true;
  }
  return false;
}

}  // namespace

std::uint32_t FsImage::groupMetadataBlocks(const Superblock& sb, std::uint32_t group) {
  std::uint32_t blocks = 0;
  if (groupHasSuperblockCopy(sb, group)) blocks += 2;  // sb copy + descriptor copy
  blocks += 2;                                         // block bitmap + inode bitmap
  blocks += inodeTableBlocks(sb);
  blocks += sb.reserved_gdt_blocks;
  return blocks;
}

// ---------------------------------------------------------------------
// Group descriptors
// ---------------------------------------------------------------------

GroupDesc FsImage::loadGroupDesc(const Superblock& sb, std::uint32_t group) const {
  std::uint8_t buf[GroupDesc::kDiskSize];
  const std::uint64_t offset =
      static_cast<std::uint64_t>(descTableBlock(sb)) * sb.blockSize() +
      static_cast<std::uint64_t>(group) * GroupDesc::kDiskSize;
  device_.readBytes(offset, buf);
  return GroupDesc::deserialize(buf);
}

void FsImage::storeGroupDesc(const Superblock& sb, std::uint32_t group, const GroupDesc& gd) {
  std::uint8_t buf[GroupDesc::kDiskSize];
  gd.serialize(buf);
  const std::uint64_t offset =
      static_cast<std::uint64_t>(descTableBlock(sb)) * sb.blockSize() +
      static_cast<std::uint64_t>(group) * GroupDesc::kDiskSize;
  device_.writeBytes(offset, buf);
}

// ---------------------------------------------------------------------
// Bitmaps
// ---------------------------------------------------------------------

Bitmap FsImage::loadBlockBitmap(const Superblock& sb, std::uint32_t group) const {
  const GroupDesc gd = loadGroupDesc(sb, group);
  std::vector<std::uint8_t> buf(sb.blockSize());
  device_.readBlock(gd.block_bitmap, buf);
  return Bitmap::fromBytes(std::move(buf), sb.blocksInGroup(group));
}

void FsImage::storeBlockBitmap(const Superblock& sb, std::uint32_t group, const Bitmap& bitmap) {
  const GroupDesc gd = loadGroupDesc(sb, group);
  std::vector<std::uint8_t> buf(sb.blockSize(), 0);
  const std::vector<std::uint8_t>& bytes = bitmap.bytes();
  std::copy(bytes.begin(), bytes.begin() + std::min(bytes.size(), buf.size()), buf.begin());
  device_.writeBlock(gd.block_bitmap, buf);
}

Bitmap FsImage::loadInodeBitmap(const Superblock& sb, std::uint32_t group) const {
  const GroupDesc gd = loadGroupDesc(sb, group);
  std::vector<std::uint8_t> buf(sb.blockSize());
  device_.readBlock(gd.inode_bitmap, buf);
  return Bitmap::fromBytes(std::move(buf), sb.inodes_per_group);
}

void FsImage::storeInodeBitmap(const Superblock& sb, std::uint32_t group, const Bitmap& bitmap) {
  const GroupDesc gd = loadGroupDesc(sb, group);
  std::vector<std::uint8_t> buf(sb.blockSize(), 0);
  const std::vector<std::uint8_t>& bytes = bitmap.bytes();
  std::copy(bytes.begin(), bytes.begin() + std::min(bytes.size(), buf.size()), buf.begin());
  device_.writeBlock(gd.inode_bitmap, buf);
}

// ---------------------------------------------------------------------
// Inodes
// ---------------------------------------------------------------------

Inode FsImage::loadInode(const Superblock& sb, std::uint32_t ino) const {
  if (ino == 0 || ino > sb.inodes_count) throw IoError("inode number out of range");
  const std::uint32_t index = ino - 1;
  const std::uint32_t group = index / sb.inodes_per_group;
  const std::uint32_t slot = index % sb.inodes_per_group;
  const GroupDesc gd = loadGroupDesc(sb, group);
  const std::uint64_t offset =
      static_cast<std::uint64_t>(gd.inode_table) * sb.blockSize() +
      static_cast<std::uint64_t>(slot) * sb.inode_size;
  std::uint8_t buf[Inode::kDiskSize];
  device_.readBytes(offset, buf);
  return Inode::deserialize(buf);
}

void FsImage::storeInode(const Superblock& sb, std::uint32_t ino, const Inode& inode) {
  if (ino == 0 || ino > sb.inodes_count) throw IoError("inode number out of range");
  const std::uint32_t index = ino - 1;
  const std::uint32_t group = index / sb.inodes_per_group;
  const std::uint32_t slot = index % sb.inodes_per_group;
  const GroupDesc gd = loadGroupDesc(sb, group);
  const std::uint64_t offset =
      static_cast<std::uint64_t>(gd.inode_table) * sb.blockSize() +
      static_cast<std::uint64_t>(slot) * sb.inode_size;
  std::uint8_t buf[Inode::kDiskSize];
  inode.serialize(buf);
  device_.writeBytes(offset, buf);
}

// ---------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------

std::vector<Extent> FsImage::allocateBlocks(Superblock& sb, std::uint32_t count) {
  std::vector<Extent> extents;
  std::uint32_t remaining = count;
  const std::uint32_t groups = sb.groupCount();
  for (std::uint32_t group = 0; group < groups && remaining > 0; ++group) {
    Bitmap bitmap = loadBlockBitmap(sb, group);
    GroupDesc gd = loadGroupDesc(sb, group);
    const std::uint32_t in_group = sb.blocksInGroup(group);
    bool dirty = false;
    std::uint32_t run_start = 0;
    std::uint32_t run_len = 0;
    for (std::uint32_t bit = 0; bit < in_group && remaining > 0; ++bit) {
      if (!bitmap.get(bit)) {
        if (run_len == 0) run_start = bit;
        bitmap.set(bit, true);
        ++run_len;
        --remaining;
        dirty = true;
        if (gd.free_blocks_count > 0) --gd.free_blocks_count;
        if (sb.free_blocks_count > 0) --sb.free_blocks_count;
      } else if (run_len > 0) {
        extents.push_back(
            Extent{groupFirstBlock(sb, group) + run_start, run_len});
        run_len = 0;
      }
    }
    if (run_len > 0) {
      extents.push_back(Extent{groupFirstBlock(sb, group) + run_start, run_len});
    }
    if (dirty) {
      storeBlockBitmap(sb, group, bitmap);
      storeGroupDesc(sb, group, gd);
    }
  }
  if (remaining > 0) {
    freeExtents(sb, extents);
    throw IoError("filesystem full: could not allocate " + std::to_string(count) + " blocks");
  }
  sb.updateChecksum();
  storeSuperblock(sb);
  return extents;
}

void FsImage::freeExtents(Superblock& sb, const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    for (std::uint32_t i = 0; i < e.length; ++i) {
      const std::uint32_t block = e.start + i;
      const std::uint32_t group = (block - sb.first_data_block) / sb.blocks_per_group;
      const std::uint32_t bit = (block - sb.first_data_block) % sb.blocks_per_group;
      Bitmap bitmap = loadBlockBitmap(sb, group);
      if (bitmap.get(bit)) {
        bitmap.set(bit, false);
        storeBlockBitmap(sb, group, bitmap);
        GroupDesc gd = loadGroupDesc(sb, group);
        ++gd.free_blocks_count;
        storeGroupDesc(sb, group, gd);
        ++sb.free_blocks_count;
      }
    }
  }
  sb.updateChecksum();
  storeSuperblock(sb);
}

std::uint32_t FsImage::allocateInode(Superblock& sb) {
  const std::uint32_t groups = sb.groupCount();
  for (std::uint32_t group = 0; group < groups; ++group) {
    Bitmap bitmap = loadInodeBitmap(sb, group);
    for (std::uint32_t slot = 0; slot < sb.inodes_per_group; ++slot) {
      const std::uint32_t ino = group * sb.inodes_per_group + slot + 1;
      if (ino < sb.first_inode) continue;
      if (ino > sb.inodes_count) break;
      if (!bitmap.get(slot)) {
        bitmap.set(slot, true);
        storeInodeBitmap(sb, group, bitmap);
        GroupDesc gd = loadGroupDesc(sb, group);
        if (gd.free_inodes_count > 0) --gd.free_inodes_count;
        storeGroupDesc(sb, group, gd);
        if (sb.free_inodes_count > 0) --sb.free_inodes_count;
        sb.updateChecksum();
        storeSuperblock(sb);
        return ino;
      }
    }
  }
  return 0;
}

void FsImage::freeInode(Superblock& sb, std::uint32_t ino) {
  if (ino == 0 || ino > sb.inodes_count) return;
  const std::uint32_t index = ino - 1;
  const std::uint32_t group = index / sb.inodes_per_group;
  const std::uint32_t slot = index % sb.inodes_per_group;
  Bitmap bitmap = loadInodeBitmap(sb, group);
  if (!bitmap.get(slot)) return;
  bitmap.set(slot, false);
  storeInodeBitmap(sb, group, bitmap);
  GroupDesc gd = loadGroupDesc(sb, group);
  ++gd.free_inodes_count;
  storeGroupDesc(sb, group, gd);
  ++sb.free_inodes_count;
  sb.updateChecksum();
  storeSuperblock(sb);
}

}  // namespace fsdep::fsim
