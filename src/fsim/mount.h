// MountTool + MountedFs: the Mount stage of Figure 2. Mounting validates
// the superblock (the kernel-side checks) and the mount-option
// interactions, then exposes a minimal file API (create / write / read /
// remove) backed by the extent allocator — enough surface for the defrag
// tool and for ConBugCk to drive real work under many configurations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fsim/image.h"
#include "support/result.h"

namespace fsdep::fsim {

enum class DataMode : std::uint8_t { Ordered, Journal, Writeback };

struct MountOptions {
  bool read_only = false;
  bool dax = false;
  DataMode data_mode = DataMode::Ordered;
  bool noload = false;
  std::uint32_t commit_interval = 5;
  std::uint32_t stripe = 0;
  std::uint32_t inode_readahead_blks = 32;
  std::uint32_t max_batch_time = 15000;
  std::uint32_t min_batch_time = 0;
  bool journal_checksum = false;
  bool journal_async_commit = false;
  bool dioread_nolock = false;
  bool delalloc = true;
  bool auto_da_alloc = true;
};

/// A mounted filesystem handle. Owns no storage; borrows the device.
class MountedFs {
 public:
  MountedFs(BlockDevice& device, Superblock sb, MountOptions options);

  [[nodiscard]] const Superblock& superblock() const { return sb_; }
  [[nodiscard]] const MountOptions& options() const { return options_; }

  /// Creates a file of `size_bytes`; `max_extent_blocks` caps each
  /// allocation run to force fragmentation (0 = unlimited). Returns the
  /// inode number.
  Result<std::uint32_t> createFile(std::uint32_t size_bytes, std::uint32_t max_extent_blocks = 0);
  Result<bool> removeFile(std::uint32_t ino);
  [[nodiscard]] std::optional<Inode> statFile(std::uint32_t ino) const;

  /// Unmounts: writes back the superblock with a clean state and a
  /// quiescent journal.
  void unmount();

  /// Simulates a crash: the handle dies WITHOUT the clean unmount write.
  /// The on-device journal dirty bit is (re)asserted — not just the
  /// in-memory mounted_ flag — so the next mount genuinely replays and
  /// fsck flags the recovery requirement even if an intermediate write
  /// cleared the bit. Best-effort: a device that died mid-crash is left
  /// as-is.
  void crash();

 private:
  BlockDevice& device_;
  FsImage image_;
  Superblock sb_;
  MountOptions options_;
  bool mounted_ = true;
};

class MountTool {
 public:
  /// Option-interaction validation (the ext4_fill_super checks).
  static std::vector<std::string> validateOptions(const MountOptions& options,
                                                  const Superblock& sb);
  /// Superblock validation independent of options.
  static std::vector<std::string> validateSuperblock(const Superblock& sb);

  /// Mounts the filesystem on `device`. I/O faults come back as
  /// structured errors, never as escaping exceptions.
  static Result<MountedFs> mount(BlockDevice& device, const MountOptions& options);

 private:
  static Result<MountedFs> mountImpl(BlockDevice& device, const MountOptions& options);
};

}  // namespace fsdep::fsim
