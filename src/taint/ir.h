// Taint-IR: each function's CFG basic blocks lowered once into a flat
// instruction stream the fixpoint engine executes instead of re-walking
// AST statement trees on every visit. Lowering is pure — it reads the
// AST/CFG and interns nothing — so a compiled function is shared across
// analyzer instances (and across warm pipeline runs via the component
// cache); label and field-key interning stays a runtime effect of
// executing the instructions, which keeps id assignment in first-use
// order, byte-identical to the AST walk.
//
// Statically-empty values (literals, sizeof, unresolved decl refs) lower
// to the kNoTemp sentinel and their unions are elided at compile time;
// every remaining instruction writes its destination temp before any
// consumer reads it, so the temp scratchpad is reused across block
// visits without clearing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "cfg/cfg.h"

namespace fsdep::taint::ir {

using TempId = std::uint32_t;
inline constexpr TempId kNoTemp = 0xFFFFFFFFu;

enum class Op : std::uint8_t {
  /// temps[dst] = state.varLabels(var). Elided when the value is unused.
  LoadVar,
  /// Field read: interns the field key (and bridge label when bridging
  /// is on) then loads the field's label set. Always executed even for a
  /// discarded value — interning order is semantically visible.
  LoadField,
  /// temps[dst] = temps[a].
  Copy,
  /// temps[dst] |= temps[a].
  UnionInto,
  /// Store to a variable: the DeclRef terminal of an assignment lhs.
  AssignVar,
  /// Store to a struct field: the Member terminal of an assignment lhs.
  AssignField,
  /// Declaration with initializer (strong update + sticky seed merge).
  DeclInit,
  /// Call: unions arg labels, records callee entry bindings, applies
  /// return summaries (concrete) or instantiates the symbolic summary.
  Call,
  /// Return value sink: function return labels / summary accumulation.
  Return,
};

struct Instr {
  Op op = Op::Copy;
  /// AssignVar: strong (killing) update vs weak union.
  bool strong = false;
  /// Out-param stores: the AST walk only calls assignTo when the merged
  /// other-arg labels are non-empty, so the store (including its field
  /// interning) must be skipped on an empty source.
  bool skip_if_empty = false;
  /// Assign ops: the operator recorded on the write event.
  ast::BinaryOp aop = ast::BinaryOp::Assign;
  TempId dst = kNoTemp;
  TempId a = kNoTemp;
  /// Call: index into Program::calls.
  std::uint32_t aux = 0;
  const ast::VarDecl* var = nullptr;          // LoadVar, AssignVar, DeclInit
  const ast::MemberExpr* member = nullptr;    // LoadField, AssignField
  const void* site = nullptr;                 // trace/write dedup key
  const ast::Expr* write_key = nullptr;       // writes_ map key (assigns)
  const ast::Expr* rhs = nullptr;             // rhs expr for traces/events
  SourceLoc loc;
};

struct CallSpec {
  /// Callee with a body, or null (extern / indirect): null collapses the
  /// call to a plain arg-label union at runtime.
  const ast::FunctionDecl* callee = nullptr;
  /// [args_begin, args_end) into Program::call_args; kNoTemp holes keep
  /// argument positions aligned with callee parameters.
  std::uint32_t args_begin = 0;
  std::uint32_t args_end = 0;
  /// False inside a compound-assign lhs re-read: no binding recording.
  bool effects = true;
};

/// Instruction ranges for one basic block. Sections are contiguous:
/// stmts [stmts_begin, stmts_end), inc [stmts_end, inc_end), condition
/// [inc_end, cond_end). The exit-state replay runs the stmts section
/// only; the concrete fixpoint snapshots at_condition before the
/// condition section (has_condition is explicit because a condition can
/// lower to zero instructions but the snapshot must still happen).
struct BlockRange {
  std::uint32_t stmts_begin = 0;
  std::uint32_t stmts_end = 0;
  std::uint32_t inc_end = 0;
  std::uint32_t cond_end = 0;
  /// Statement count of the stmts section, mirrored into the
  /// taint.stmt_visits counter so both engines report identical visits.
  std::uint32_t stmt_count = 0;
  bool has_condition = false;
};

struct Program {
  std::vector<Instr> instrs;
  std::vector<CallSpec> calls;
  std::vector<TempId> call_args;
  std::vector<BlockRange> blocks;  // indexed by cfg::BlockId
  std::uint32_t num_temps = 0;
};

struct CompiledFunction {
  std::shared_ptr<const cfg::Cfg> cfg;
  std::vector<cfg::BlockId> rpo;
  Program program;
};

/// Builds the CFG for fn and lowers every block. Pure: no interning, no
/// analyzer state — the result depends only on the AST.
std::shared_ptr<const CompiledFunction> compile(const ast::FunctionDecl& fn);

/// Per-component compilation memo, shared across analyzer instances via
/// the ComponentCache entry so warm runs skip CFG construction and
/// lowering entirely. Thread-safe; a losing racer's compile is discarded
/// (lowering is pure, so duplicates are identical).
class IrCache {
 public:
  std::shared_ptr<const CompiledFunction> getOrCompile(const ast::FunctionDecl& fn);
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<const ast::FunctionDecl*, std::shared_ptr<const CompiledFunction>> map_;
};

}  // namespace fsdep::taint::ir
