#include "taint/label.h"

namespace fsdep::taint {

LabelId LabelTable::intern(std::string name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

LabelId LabelTable::internParam(std::string_view qualified_param) {
  return intern("param:" + std::string(qualified_param));
}

LabelId LabelTable::internField(std::string_view record, std::string_view field) {
  return intern("field:" + std::string(record) + "." + std::string(field));
}

bool LabelTable::isParam(LabelId id) const { return names_[id].starts_with("param:"); }
bool LabelTable::isField(LabelId id) const { return names_[id].starts_with("field:"); }

std::string_view LabelTable::payload(LabelId id) const {
  std::string_view n = names_[id];
  const std::size_t colon = n.find(':');
  return colon == std::string_view::npos ? n : n.substr(colon + 1);
}

bool unionInto(LabelSet& into, const LabelSet& from) {
  bool changed = false;
  for (const LabelId id : from) changed |= into.insert(id).second;
  return changed;
}

std::string labelSetToString(const LabelTable& table, const LabelSet& set) {
  std::string out = "{";
  bool first = true;
  for (const LabelId id : set) {
    if (!first) out += ", ";
    first = false;
    out += table.name(id);
  }
  out += '}';
  return out;
}

}  // namespace fsdep::taint
