#include "taint/label.h"

namespace fsdep::taint {

LabelId LabelTable::intern(std::string name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

LabelId LabelTable::internParam(std::string_view qualified_param) {
  return intern("param:" + std::string(qualified_param));
}

LabelId LabelTable::internField(std::string_view record, std::string_view field) {
  return intern("field:" + std::string(record) + "." + std::string(field));
}

bool LabelTable::isParam(LabelId id) const { return names_[id].starts_with("param:"); }
bool LabelTable::isField(LabelId id) const { return names_[id].starts_with("field:"); }

std::string_view LabelTable::payload(LabelId id) const {
  std::string_view n = names_[id];
  const std::size_t colon = n.find(':');
  return colon == std::string_view::npos ? n : n.substr(colon + 1);
}

FieldKeyId FieldKeyTable::intern(std::string_view record, std::string_view field) {
  std::string key;
  key.reserve(record.size() + 1 + field.size());
  key += record;
  key += '.';
  key += field;
  return internKey(std::move(key));
}

FieldKeyId FieldKeyTable::internKey(std::string key) {
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const FieldKeyId id = static_cast<FieldKeyId>(keys_.size());
  index_.emplace(key, id);
  keys_.push_back(std::move(key));
  return id;
}

void LabelSet::grow(std::size_t need) {
  const std::size_t doubled = static_cast<std::size_t>(nwords_) * 2;
  const std::size_t newcap = need > doubled ? need : doubled;
  auto* fresh = new std::uint64_t[newcap];
  const std::uint64_t* old = words();
  for (std::size_t i = 0; i < nwords_; ++i) fresh[i] = old[i];
  for (std::size_t i = nwords_; i < newcap; ++i) fresh[i] = 0;
  release();
  heap_ = fresh;
  nwords_ = static_cast<std::uint32_t>(newcap);
}

void LabelSet::copyFrom(const LabelSet& other) {
  count_ = other.count_;
  nwords_ = other.nwords_;
  if (other.isInline()) {
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
  } else {
    heap_ = new std::uint64_t[nwords_];
    for (std::size_t i = 0; i < nwords_; ++i) heap_[i] = other.heap_[i];
  }
}

void LabelSet::moveFrom(LabelSet& other) noexcept {
  count_ = other.count_;
  nwords_ = other.nwords_;
  if (other.isInline()) {
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
  } else {
    heap_ = other.heap_;
  }
  other.count_ = 0;
  other.nwords_ = kInlineWords;
  other.inline_[0] = 0;
  other.inline_[1] = 0;
}

bool unionInto(LabelSet& into, const LabelSet& from) {
  if (from.count_ == 0) return false;
  if (into.nwords_ < from.nwords_) into.grow(from.nwords_);
  const std::uint64_t* src = from.words();
  std::uint64_t* dst = into.words();
  std::uint32_t added = 0;
  for (std::size_t i = 0; i < from.nwords_; ++i) {
    const std::uint64_t grown = src[i] & ~dst[i];
    if (grown != 0) {
      dst[i] |= grown;
      added += static_cast<std::uint32_t>(std::popcount(grown));
    }
  }
  into.count_ += added;
  return added != 0;
}

std::string labelSetToString(const LabelTable& table, const LabelSet& set) {
  std::string out = "{";
  bool first = true;
  for (const LabelId id : set) {
    if (!first) out += ", ";
    first = false;
    out += table.name(id);
  }
  out += '}';
  return out;
}

}  // namespace fsdep::taint
