#include "taint/label.h"

namespace fsdep::taint {

LabelId LabelTable::intern(std::string name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

LabelId LabelTable::internParam(std::string_view qualified_param) {
  return intern("param:" + std::string(qualified_param));
}

LabelId LabelTable::internField(std::string_view record, std::string_view field) {
  return intern("field:" + std::string(record) + "." + std::string(field));
}

bool LabelTable::isParam(LabelId id) const { return names_[id].starts_with("param:"); }
bool LabelTable::isField(LabelId id) const { return names_[id].starts_with("field:"); }

std::string_view LabelTable::payload(LabelId id) const {
  std::string_view n = names_[id];
  const std::size_t colon = n.find(':');
  return colon == std::string_view::npos ? n : n.substr(colon + 1);
}

FieldKeyId FieldKeyTable::intern(std::string_view record, std::string_view field) {
  std::string key;
  key.reserve(record.size() + 1 + field.size());
  key += record;
  key += '.';
  key += field;
  return internKey(std::move(key));
}

FieldKeyId FieldKeyTable::internKey(std::string key) {
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const FieldKeyId id = static_cast<FieldKeyId>(keys_.size());
  index_.emplace(key, id);
  keys_.push_back(std::move(key));
  return id;
}

bool unionInto(LabelSet& into, const LabelSet& from) {
  if (from.count_ == 0) return false;
  if (into.words_.size() < from.words_.size()) into.words_.resize(from.words_.size(), 0);
  std::uint32_t added = 0;
  for (std::size_t i = 0; i < from.words_.size(); ++i) {
    const std::uint64_t grown = from.words_[i] & ~into.words_[i];
    if (grown != 0) {
      into.words_[i] |= grown;
      added += static_cast<std::uint32_t>(std::popcount(grown));
    }
  }
  into.count_ += added;
  return added != 0;
}

std::string labelSetToString(const LabelTable& table, const LabelSet& set) {
  std::string out = "{";
  bool first = true;
  for (const LabelId id : set) {
    if (!first) out += ", ";
    first = false;
    out += table.name(id);
  }
  out += '}';
  return out;
}

}  // namespace fsdep::taint
