// Taint labels. Two families:
//   param:<component>.<name>       — a configuration parameter (the taint
//                                    sources of the paper's analysis)
//   field:<record>.<field>         — a shared FS metadata field; these are
//                                    the "bridge" labels that let the
//                                    extractor connect parameters of
//                                    different components (paper §4.1).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fsdep::taint {

using LabelId = std::uint32_t;
using LabelSet = std::set<LabelId>;

class LabelTable {
 public:
  LabelId internParam(std::string_view qualified_param);
  LabelId internField(std::string_view record, std::string_view field);

  [[nodiscard]] const std::string& name(LabelId id) const { return names_[id]; }
  [[nodiscard]] bool isParam(LabelId id) const;
  [[nodiscard]] bool isField(LabelId id) const;
  /// Strips the family prefix: "param:mke2fs.blocksize" -> "mke2fs.blocksize".
  [[nodiscard]] std::string_view payload(LabelId id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  LabelId intern(std::string name);
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

/// set union; returns true when `into` grew.
bool unionInto(LabelSet& into, const LabelSet& from);

/// Renders a label set like "{param:a.b, field:c.d}" for traces and tests.
std::string labelSetToString(const LabelTable& table, const LabelSet& set);

}  // namespace fsdep::taint
