// Taint labels. Two families:
//   param:<component>.<name>       — a configuration parameter (the taint
//                                    sources of the paper's analysis)
//   field:<record>.<field>         — a shared FS metadata field; these are
//                                    the "bridge" labels that let the
//                                    extractor connect parameters of
//                                    different components (paper §4.1).
//
// LabelIds are dense (interned per Analyzer), so a label set is a chunked
// bitset: union/merge — the fixpoint hot operation — is O(words) of
// bitwise OR instead of a std::set node walk. Iteration yields ids in
// ascending order, exactly like the std::set it replaced, so extraction
// and traces stay deterministic.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fsdep::taint {

using LabelId = std::uint32_t;

class LabelSet {
 public:
  /// Sets the bit; returns true when it was newly set.
  bool insert(LabelId id) {
    const std::size_t word = id >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if ((words_[word] & bit) != 0) return false;
    words_[word] |= bit;
    ++count_;
    return true;
  }

  [[nodiscard]] bool contains(LabelId id) const {
    const std::size_t word = id >> 6;
    return word < words_.size() && (words_[word] >> (id & 63) & 1) != 0;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  void clear() {
    words_.clear();
    count_ = 0;
  }

  /// Equality is set equality; trailing zero words are insignificant.
  bool operator==(const LabelSet& other) const {
    if (count_ != other.count_) return false;
    const std::size_t common = words_.size() < other.words_.size() ? words_.size()
                                                                   : other.words_.size();
    for (std::size_t i = 0; i < common; ++i) {
      if (words_[i] != other.words_[i]) return false;
    }
    // Same popcount and identical common prefix => any extra words are 0.
    return true;
  }

  class const_iterator {
   public:
    using value_type = LabelId;
    const_iterator(const std::vector<std::uint64_t>* words, std::size_t word,
                   std::uint64_t pending)
        : words_(words), word_(word), pending_(pending) {
      advance();
    }
    LabelId operator*() const {
      return static_cast<LabelId>(word_ * 64 +
                                  static_cast<std::size_t>(std::countr_zero(pending_)));
    }
    const_iterator& operator++() {
      pending_ &= pending_ - 1;  // clear lowest set bit
      advance();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return word_ == other.word_ && pending_ == other.pending_;
    }

   private:
    void advance() {
      while (pending_ == 0 && word_ + 1 < words_->size()) {
        ++word_;
        pending_ = (*words_)[word_];
      }
      if (pending_ == 0) word_ = words_->size();  // end
    }
    const std::vector<std::uint64_t>* words_;
    std::size_t word_;
    std::uint64_t pending_;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(&words_, 0, words_.empty() ? 0 : words_[0]);
  }
  [[nodiscard]] const_iterator end() const { return const_iterator(&words_, words_.size(), 0); }

  friend bool unionInto(LabelSet& into, const LabelSet& from);

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t count_ = 0;
};

class LabelTable {
 public:
  LabelId internParam(std::string_view qualified_param);
  LabelId internField(std::string_view record, std::string_view field);

  [[nodiscard]] const std::string& name(LabelId id) const { return names_[id]; }
  [[nodiscard]] bool isParam(LabelId id) const;
  [[nodiscard]] bool isField(LabelId id) const;
  /// Strips the family prefix: "param:mke2fs.blocksize" -> "mke2fs.blocksize".
  [[nodiscard]] std::string_view payload(LabelId id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  LabelId intern(std::string name);
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

/// Interns "record.field" object keys to dense ids, so the per-point
/// taint state maps integers instead of strings.
using FieldKeyId = std::uint32_t;

class FieldKeyTable {
 public:
  FieldKeyId intern(std::string_view record, std::string_view field);
  FieldKeyId internKey(std::string key);
  /// The "record.field" string of an id.
  [[nodiscard]] const std::string& key(FieldKeyId id) const { return keys_[id]; }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

 private:
  std::vector<std::string> keys_;
  std::unordered_map<std::string, FieldKeyId> index_;
};

/// set union; returns true when `into` grew. O(words) bitwise OR.
bool unionInto(LabelSet& into, const LabelSet& from);

/// Renders a label set like "{param:a.b, field:c.d}" for traces and tests.
std::string labelSetToString(const LabelTable& table, const LabelSet& set);

}  // namespace fsdep::taint
