// Taint labels. Two families:
//   param:<component>.<name>       — a configuration parameter (the taint
//                                    sources of the paper's analysis)
//   field:<record>.<field>         — a shared FS metadata field; these are
//                                    the "bridge" labels that let the
//                                    extractor connect parameters of
//                                    different components (paper §4.1).
//
// LabelIds are dense (interned per Analyzer), so a label set is a chunked
// bitset: union/merge — the fixpoint hot operation — is O(words) of
// bitwise OR instead of a std::set node walk. Iteration yields ids in
// ascending order, exactly like the std::set it replaced, so extraction
// and traces stay deterministic.
//
// Storage is a two-word small buffer (128 labels) inline in the object:
// a component's label universe (its seeded parameters plus the metadata
// fields it touches) almost always fits, so the fixpoint's constant
// copying and merging of temporary sets never touches the heap. Sets
// that outgrow the buffer spill to a heap array transparently.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fsdep::taint {

using LabelId = std::uint32_t;

class LabelSet {
 public:
  /// Words stored inline: 128 labels before the set spills to the heap.
  static constexpr std::size_t kInlineWords = 2;

  LabelSet() = default;
  LabelSet(const LabelSet& other) { copyFrom(other); }
  LabelSet(LabelSet&& other) noexcept { moveFrom(other); }
  LabelSet& operator=(const LabelSet& other) {
    if (this != &other) {
      release();
      copyFrom(other);
    }
    return *this;
  }
  LabelSet& operator=(LabelSet&& other) noexcept {
    if (this != &other) {
      release();
      moveFrom(other);
    }
    return *this;
  }
  ~LabelSet() { release(); }

  /// Sets the bit; returns true when it was newly set.
  bool insert(LabelId id) {
    const std::size_t word = id >> 6;
    if (word >= nwords_) grow(word + 1);
    std::uint64_t* w = words();
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if ((w[word] & bit) != 0) return false;
    w[word] |= bit;
    ++count_;
    return true;
  }

  [[nodiscard]] bool contains(LabelId id) const {
    const std::size_t word = id >> 6;
    return word < nwords_ && (words()[word] >> (id & 63) & 1) != 0;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  void clear() {
    release();
    count_ = 0;
    nwords_ = kInlineWords;
    inline_[0] = 0;
    inline_[1] = 0;
  }

  /// Equality is set equality; trailing zero words are insignificant.
  bool operator==(const LabelSet& other) const {
    if (count_ != other.count_) return false;
    const std::size_t common = nwords_ < other.nwords_ ? nwords_ : other.nwords_;
    const std::uint64_t* a = words();
    const std::uint64_t* b = other.words();
    for (std::size_t i = 0; i < common; ++i) {
      if (a[i] != b[i]) return false;
    }
    // Same popcount and identical common prefix => any extra words are 0.
    return true;
  }

  class const_iterator {
   public:
    using value_type = LabelId;
    const_iterator(const std::uint64_t* words, std::size_t nwords, std::size_t word,
                   std::uint64_t pending)
        : words_(words), nwords_(nwords), word_(word), pending_(pending) {
      advance();
    }
    LabelId operator*() const {
      return static_cast<LabelId>(word_ * 64 +
                                  static_cast<std::size_t>(std::countr_zero(pending_)));
    }
    const_iterator& operator++() {
      pending_ &= pending_ - 1;  // clear lowest set bit
      advance();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return word_ == other.word_ && pending_ == other.pending_;
    }

   private:
    void advance() {
      while (pending_ == 0 && word_ + 1 < nwords_) {
        ++word_;
        pending_ = words_[word_];
      }
      if (pending_ == 0) word_ = nwords_;  // end
    }
    const std::uint64_t* words_;
    std::size_t nwords_;
    std::size_t word_;
    std::uint64_t pending_;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(words(), nwords_, 0, words()[0]);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(words(), nwords_, nwords_, 0);
  }

  /// True while the set lives entirely in the inline buffer (test hook).
  [[nodiscard]] bool isInline() const { return nwords_ <= kInlineWords; }

  friend bool unionInto(LabelSet& into, const LabelSet& from);

 private:
  [[nodiscard]] std::uint64_t* words() { return isInline() ? inline_ : heap_; }
  [[nodiscard]] const std::uint64_t* words() const { return isInline() ? inline_ : heap_; }

  void grow(std::size_t need);
  void release() {
    if (!isInline()) delete[] heap_;
  }
  void copyFrom(const LabelSet& other);
  void moveFrom(LabelSet& other) noexcept;

  std::uint32_t count_ = 0;
  std::uint32_t nwords_ = kInlineWords;
  union {
    std::uint64_t inline_[kInlineWords] = {0, 0};  ///< active when nwords_ <= kInlineWords
    std::uint64_t* heap_;                          ///< active when nwords_ > kInlineWords
  };
};

class LabelTable {
 public:
  LabelId internParam(std::string_view qualified_param);
  LabelId internField(std::string_view record, std::string_view field);

  [[nodiscard]] const std::string& name(LabelId id) const { return names_[id]; }
  [[nodiscard]] bool isParam(LabelId id) const;
  [[nodiscard]] bool isField(LabelId id) const;
  /// Strips the family prefix: "param:mke2fs.blocksize" -> "mke2fs.blocksize".
  [[nodiscard]] std::string_view payload(LabelId id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  LabelId intern(std::string name);
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

/// Interns "record.field" object keys to dense ids, so the per-point
/// taint state maps integers instead of strings.
using FieldKeyId = std::uint32_t;

class FieldKeyTable {
 public:
  FieldKeyId intern(std::string_view record, std::string_view field);
  FieldKeyId internKey(std::string key);
  /// The "record.field" string of an id.
  [[nodiscard]] const std::string& key(FieldKeyId id) const { return keys_[id]; }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

 private:
  std::vector<std::string> keys_;
  std::unordered_map<std::string, FieldKeyId> index_;
};

/// set union; returns true when `into` grew. O(words) bitwise OR.
bool unionInto(LabelSet& into, const LabelSet& from);

/// Renders a label set like "{param:a.b, field:c.d}" for traces and tests.
std::string labelSetToString(const LabelTable& table, const LabelSet& set);

}  // namespace fsdep::taint
