// Taint state: which labels each memory object may carry at a program
// point. Objects are (a) local/global variables, keyed by their VarDecl,
// and (b) struct fields, keyed field-sensitively but object-insensitively
// by "record.field" — all instances of ext4_super_block.s_blocks_count are
// one object, which is exactly the abstraction that makes shared-metadata
// bridging work.
#pragma once

#include <map>
#include <string>

#include "ast/ast.h"
#include "taint/label.h"

namespace fsdep::taint {

/// Field object key: "record.field".
std::string fieldKey(std::string_view record, std::string_view field);

struct TaintState {
  std::map<const ast::VarDecl*, LabelSet> vars;
  std::map<std::string, LabelSet> fields;

  /// Pointwise union. Returns true when this state grew.
  bool mergeFrom(const TaintState& other);

  [[nodiscard]] LabelSet varLabels(const ast::VarDecl* var) const;
  [[nodiscard]] LabelSet fieldLabels(const std::string& key) const;

  bool operator==(const TaintState& other) const = default;
};

}  // namespace fsdep::taint
