// Taint state: which labels each memory object may carry at a program
// point. Objects are (a) local/global variables, keyed by their VarDecl,
// and (b) struct fields, keyed field-sensitively but object-insensitively
// by an interned "record.field" id — all instances of
// ext4_super_block.s_blocks_count are one object, which is exactly the
// abstraction that makes shared-metadata bridging work.
//
// Both maps are sorted vectors (FlatMap): the fixpoint merge is a single
// linear walk, and label payloads are bitsets, so mergeFrom is a handful
// of word ORs per object instead of set-node churn.
#pragma once

#include <string>
#include <string_view>

#include "ast/ast.h"
#include "support/flat_map.h"
#include "taint/label.h"

namespace fsdep::taint {

/// Field object key string: "record.field" (for traces and external
/// APIs; the state itself uses interned FieldKeyIds).
std::string fieldKey(std::string_view record, std::string_view field);

struct TaintState {
  FlatMap<const ast::VarDecl*, LabelSet> vars;
  FlatMap<FieldKeyId, LabelSet> fields;

  /// Pointwise union. Returns true when this state grew.
  bool mergeFrom(const TaintState& other);

  [[nodiscard]] LabelSet varLabels(const ast::VarDecl* var) const;
  [[nodiscard]] LabelSet fieldLabels(FieldKeyId key) const;

  bool operator==(const TaintState& other) const = default;
};

}  // namespace fsdep::taint
