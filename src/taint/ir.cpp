#include "taint/ir.h"

#include <utility>

namespace fsdep::taint::ir {

namespace {

using ast::BinaryExpr;
using ast::BinaryOp;
using ast::CallExpr;
using ast::CastExpr;
using ast::ConditionalExpr;
using ast::DeclRefExpr;
using ast::DeclStmt;
using ast::Expr;
using ast::ExprKind;
using ast::ExprStmt;
using ast::FunctionDecl;
using ast::IndexExpr;
using ast::InitListExpr;
using ast::MemberExpr;
using ast::ReturnStmt;
using ast::Stmt;
using ast::StmtKind;
using ast::UnaryExpr;
using ast::UnaryOp;

// Mirrors Analyzer::evalExpr / assignTo / transferStmt structurally: the
// same recursion, with values that are statically empty folded away and
// assignment targets pre-resolved. `want` tracks whether the produced
// value is consumed; pure loads for discarded values are elided, but
// anything that interns at runtime (field reads) is emitted regardless
// so interning order matches the AST walk exactly.
class Lowerer {
 public:
  explicit Lowerer(Program& prog) : prog_(prog) {}

  void lowerBlock(const cfg::BasicBlock& block) {
    BlockRange range;
    range.stmts_begin = here();
    range.stmt_count = static_cast<std::uint32_t>(block.stmts.size());
    for (const Stmt* stmt : block.stmts) lowerStmt(*stmt);
    range.stmts_end = here();
    if (block.inc_expr != nullptr) lowerExpr(*block.inc_expr, true, false);
    range.inc_end = here();
    if (block.condition != nullptr) {
      range.has_condition = true;
      lowerExpr(*block.condition, true, false);
    }
    range.cond_end = here();
    prog_.blocks.push_back(range);
  }

 private:
  [[nodiscard]] std::uint32_t here() const {
    return static_cast<std::uint32_t>(prog_.instrs.size());
  }

  TempId newTemp() { return prog_.num_temps++; }

  Instr& emit(Op op) {
    prog_.instrs.emplace_back();
    Instr& in = prog_.instrs.back();
    in.op = op;
    return in;
  }

  /// Folds a union over possibly-absent values. Reuses `a` as the
  /// destination: expression-tree values have a single consumer, so
  /// in-place growth is safe (multi-consumer call-arg temps are never
  /// passed here as `a` — see the Call case).
  TempId emitUnion(TempId a, TempId b) {
    if (a == kNoTemp) return b;
    if (b == kNoTemp) return a;
    Instr& in = emit(Op::UnionInto);
    in.dst = a;
    in.a = b;
    return a;
  }

  void lowerStmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Decl:
        for (const auto& var : static_cast<const DeclStmt&>(stmt).vars) {
          if (var->init == nullptr) continue;
          const TempId src = lowerExpr(*var->init, true, true);
          Instr& in = emit(Op::DeclInit);
          in.a = src;
          in.var = var.get();
          in.site = var.get();
          in.write_key = var->init.get();
          in.rhs = var->init.get();
          in.loc = var->loc;
        }
        break;
      case StmtKind::Expr:
        lowerExpr(*static_cast<const ExprStmt&>(stmt).expr, true, false);
        break;
      case StmtKind::Return: {
        const auto& ret = static_cast<const ReturnStmt&>(stmt);
        if (ret.value == nullptr) break;
        const TempId src = lowerExpr(*ret.value, true, true);
        if (src == kNoTemp) break;
        Instr& in = emit(Op::Return);
        in.a = src;
        break;
      }
      default:
        break;
    }
  }

  void lowerAssign(const Expr& lhs, const Expr* rhs, TempId src, bool strong,
                   bool skip_if_empty, SourceLoc loc, BinaryOp op) {
    switch (lhs.kind()) {
      case ExprKind::DeclRef: {
        const auto& ref = static_cast<const DeclRefExpr&>(lhs);
        if (ref.decl == nullptr) return;
        Instr& in = emit(Op::AssignVar);
        in.a = src;
        in.strong = strong;
        in.skip_if_empty = skip_if_empty;
        in.aop = op;
        in.var = ref.decl;
        in.site = &lhs;
        in.write_key = &lhs;
        in.rhs = rhs;
        in.loc = loc;
        return;
      }
      case ExprKind::Member: {
        const auto& member = static_cast<const MemberExpr&>(lhs);
        if (member.record == nullptr || member.field == nullptr) return;
        Instr& in = emit(Op::AssignField);
        in.a = src;
        in.skip_if_empty = skip_if_empty;
        in.aop = op;
        in.member = &member;
        in.site = &lhs;
        in.write_key = &lhs;
        in.rhs = rhs;
        in.loc = loc;
        return;
      }
      case ExprKind::Index:
        lowerAssign(*static_cast<const IndexExpr&>(lhs).base, rhs, src, false,
                    skip_if_empty, loc, op);
        return;
      case ExprKind::Unary: {
        const auto& unary = static_cast<const UnaryExpr&>(lhs);
        if (unary.op == UnaryOp::Deref || unary.op == UnaryOp::AddrOf) {
          lowerAssign(*unary.operand, rhs, src, false, skip_if_empty, loc, op);
        }
        return;
      }
      case ExprKind::Cast:
        lowerAssign(*static_cast<const CastExpr&>(lhs).operand, rhs, src, strong,
                    skip_if_empty, loc, op);
        return;
      default:
        return;
    }
  }

  TempId lowerExpr(const Expr& expr, bool effects, bool want) {  // NOLINT(misc-no-recursion)
    switch (expr.kind()) {
      case ExprKind::IntLiteral:
      case ExprKind::StringLiteral:
      case ExprKind::SizeofType:
        return kNoTemp;
      case ExprKind::DeclRef: {
        const auto& ref = static_cast<const DeclRefExpr&>(expr);
        if (!want || ref.decl == nullptr) return kNoTemp;
        Instr& in = emit(Op::LoadVar);
        in.dst = newTemp();
        in.var = ref.decl;
        return in.dst;
      }
      case ExprKind::Unary:
        return lowerExpr(*static_cast<const UnaryExpr&>(expr).operand, effects, want);
      case ExprKind::Binary: {
        const auto& bin = static_cast<const BinaryExpr&>(expr);
        if (ast::isAssignment(bin.op)) {
          TempId rhs = lowerExpr(*bin.rhs, effects, effects || want);
          if (effects) {
            lowerAssign(*bin.lhs, bin.rhs.get(), rhs, bin.op == BinaryOp::Assign,
                        false, expr.loc, bin.op);
          }
          if (bin.op != BinaryOp::Assign) {
            // Compound assigns re-read the (already mutated) lhs; the
            // re-read happens even when the value is discarded because a
            // member lhs interns its bridge label here.
            const TempId lhs = lowerExpr(*bin.lhs, false, want);
            if (want) rhs = emitUnion(rhs, lhs);
          }
          return want ? rhs : kNoTemp;
        }
        const TempId lhs = lowerExpr(*bin.lhs, effects, want);
        const TempId rhs = lowerExpr(*bin.rhs, effects, want);
        return want ? emitUnion(lhs, rhs) : kNoTemp;
      }
      case ExprKind::Conditional: {
        const auto& cond = static_cast<const ConditionalExpr&>(expr);
        const TempId c = lowerExpr(*cond.cond, effects, want);
        const TempId t = lowerExpr(*cond.then_expr, effects, want);
        const TempId e = lowerExpr(*cond.else_expr, effects, want);
        return want ? emitUnion(emitUnion(c, t), e) : kNoTemp;
      }
      case ExprKind::Call:
        return lowerCall(static_cast<const CallExpr&>(expr), effects, want);
      case ExprKind::Member: {
        const auto& member = static_cast<const MemberExpr&>(expr);
        lowerExpr(*member.base, effects, false);
        if (member.record == nullptr || member.field == nullptr) return kNoTemp;
        Instr& in = emit(Op::LoadField);
        in.member = &member;
        // Interning still runs for a discarded read; only the load of
        // the label set is skipped.
        in.dst = want ? newTemp() : kNoTemp;
        return in.dst;
      }
      case ExprKind::Index: {
        const auto& index = static_cast<const IndexExpr&>(expr);
        lowerExpr(*index.index, effects, false);
        return lowerExpr(*index.base, effects, want);
      }
      case ExprKind::Cast:
        return lowerExpr(*static_cast<const CastExpr&>(expr).operand, effects, want);
      case ExprKind::InitList: {
        TempId acc = kNoTemp;
        for (const auto& element : static_cast<const InitListExpr&>(expr).elements) {
          const TempId t = lowerExpr(*element, effects, want);
          if (want) acc = emitUnion(acc, t);
        }
        return acc;
      }
    }
    return kNoTemp;
  }

  TempId lowerCall(const CallExpr& call, bool effects, bool want) {
    const FunctionDecl* callee =
        (call.callee_decl != nullptr && call.callee_decl->isDefinition())
            ? call.callee_decl
            : nullptr;
    // Arg values feed out-param stores, callee bindings, and summary
    // substitution even when the call result itself is discarded.
    const bool want_args = want || effects || callee != nullptr;
    std::vector<TempId> arg_temps;
    arg_temps.reserve(call.args.size());
    for (const auto& arg : call.args) {
      arg_temps.push_back(lowerExpr(*arg, effects, want_args));
    }
    if (effects) {
      // &out arguments receive the union of the *other* args' labels.
      // The accumulation copies into a fresh temp: arg temps are read
      // again below, so they must not be grown in place.
      for (std::size_t i = 0; i < call.args.size(); ++i) {
        const Expr* arg = call.args[i].get();
        if (arg->kind() != ExprKind::Unary) continue;
        const auto& unary = static_cast<const UnaryExpr&>(*arg);
        if (unary.op != UnaryOp::AddrOf) continue;
        TempId others = kNoTemp;
        for (std::size_t j = 0; j < arg_temps.size(); ++j) {
          if (j == i || arg_temps[j] == kNoTemp) continue;
          if (others == kNoTemp) {
            others = newTemp();
            Instr& copy = emit(Op::Copy);
            copy.dst = others;
            copy.a = arg_temps[j];
          } else {
            emitUnion(others, arg_temps[j]);
          }
        }
        if (others == kNoTemp) continue;
        lowerAssign(*unary.operand, nullptr, others, false, /*skip_if_empty=*/true,
                    call.loc, BinaryOp::Assign);
      }
    }
    if (callee != nullptr) {
      CallSpec spec;
      spec.callee = callee;
      spec.effects = effects;
      spec.args_begin = static_cast<std::uint32_t>(prog_.call_args.size());
      for (const TempId t : arg_temps) prog_.call_args.push_back(t);
      spec.args_end = static_cast<std::uint32_t>(prog_.call_args.size());
      prog_.calls.push_back(spec);
      Instr& in = emit(Op::Call);
      in.dst = newTemp();
      in.aux = static_cast<std::uint32_t>(prog_.calls.size() - 1);
      return in.dst;
    }
    if (!want) return kNoTemp;
    // Extern/indirect callee: the result is just the arg-label union.
    // Safe to fold in place — the out-param reads above already executed
    // by the time these unions run.
    TempId acc = kNoTemp;
    for (const TempId t : arg_temps) acc = emitUnion(acc, t);
    return acc;
  }

  Program& prog_;
};

}  // namespace

std::shared_ptr<const CompiledFunction> compile(const ast::FunctionDecl& fn) {
  auto out = std::make_shared<CompiledFunction>();
  out->cfg = cfg::Cfg::build(fn);
  out->rpo = out->cfg->reversePostOrder();
  Program& prog = out->program;
  const std::size_t blocks = out->cfg->size();
  prog.blocks.reserve(blocks);
  Lowerer lowerer(prog);
  for (std::size_t id = 0; id < blocks; ++id) {
    lowerer.lowerBlock(out->cfg->block(static_cast<cfg::BlockId>(id)));
  }
  return out;
}

std::shared_ptr<const CompiledFunction> IrCache::getOrCompile(const ast::FunctionDecl& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(&fn);
    if (it != map_.end()) return it->second;
  }
  auto compiled = compile(fn);
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = map_.emplace(&fn, std::move(compiled));
  return it->second;
}

std::size_t IrCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace fsdep::taint::ir
