// The taint analyzer (paper §4.1): tracks the propagation of each
// configuration parameter along data-flow paths.
//
// "We maintain a set to keep the initial configuration variables and any
//  variables derived from the initial configuration variables. When a new
//  variable is added to the set, we add the corresponding instruction to
//  the taint trace too. We maintain a map to track if a variable is
//  derived from multiple parameters."
//
// Seeds (the paper's manual annotations) name a variable inside a function
// and the parameter it carries. Seeded variables are *sticky*: an
// assignment to them never washes the seed label away, because the
// variable IS the parameter.
//
// Two modes:
//   * intra-procedural (the paper's prototype): calls are opaque; their
//     result carries the union of argument labels.
//   * inter-procedural (the paper's §6 future work, used for ablation):
//     argument labels bind to callee parameters and return labels flow
//     back, iterated to a whole-TU fixpoint.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "cfg/cfg.h"
#include "sema/sema.h"
#include "taint/state.h"

namespace fsdep::taint {

struct AnalysisOptions {
  bool inter_procedural = false;
  /// When false, reading a metadata field does not produce the field's
  /// bridge label; CCD extraction then finds nothing (ablation knob).
  bool field_bridging = true;
  int max_global_passes = 10;
  std::size_t max_trace_steps = 24;

  bool operator==(const AnalysisOptions& other) const = default;
};

/// A manual annotation: variable `variable` in function `function` carries
/// configuration parameter `param` ("component.name").
struct Seed {
  std::string function;
  std::string variable;
  std::string param;
};

struct TraceStep {
  SourceLoc loc;
  std::string text;
};

/// One (deduplicated) tainted write observed during the run. The
/// dependency extractor matches SD patterns against these.
struct WriteEvent {
  const ast::FunctionDecl* fn = nullptr;
  const ast::Expr* assign = nullptr;  ///< the assignment expression
  SourceLoc loc;
  std::string object;       ///< "function.var" or "record.field"
  bool is_field = false;
  std::string field_key;    ///< set when is_field
  LabelSet labels;          ///< labels flowing into the object
  std::string rhs_callee;   ///< callee name when the RHS is a direct call
  const ast::Expr* rhs = nullptr;      ///< RHS expression (null for out-params)
  ast::BinaryOp op = ast::BinaryOp::Assign;  ///< assignment operator
};

/// Analysis results for one function.
struct FunctionTaint {
  const ast::FunctionDecl* fn = nullptr;
  std::unique_ptr<cfg::Cfg> cfg;
  /// Entry state of each basic block after the fixpoint (indexed by id).
  std::vector<TaintState> block_entry;
  /// State at the point each block's branch condition is evaluated.
  std::vector<TaintState> at_condition;
  /// Union of the states at every function exit (after the exit blocks'
  /// statements ran).
  TaintState exit_state;
  LabelSet return_labels;
};

class Analyzer {
 public:
  Analyzer(const ast::TranslationUnit& tu, const sema::Sema& sema, AnalysisOptions options = {});

  void addSeed(Seed seed);

  /// Analyzes the given function definitions ("pre-selected functions" in
  /// the paper's prototype). Empty list means every function in the TU.
  void run(const std::vector<const ast::FunctionDecl*>& functions = {});

  [[nodiscard]] const FunctionTaint* resultFor(const ast::FunctionDecl* fn) const;
  [[nodiscard]] const FunctionTaint* resultFor(std::string_view function_name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<FunctionTaint>>& results() const {
    return results_;
  }

  [[nodiscard]] LabelTable& labels() { return labels_; }
  [[nodiscard]] const LabelTable& labels() const { return labels_; }

  /// Union of labels written to each metadata field anywhere in the run;
  /// the extractor uses this to bridge components. Materialized from the
  /// interned-id map on each call — the analysis itself never touches
  /// strings on this path.
  [[nodiscard]] std::map<std::string, LabelSet> fieldWrites() const;

  /// The "record.field" <-> id interner of this analyzer.
  [[nodiscard]] const FieldKeyTable& fieldKeys() const { return field_keys_; }

  /// All tainted writes, in deterministic (source) order.
  [[nodiscard]] std::vector<const WriteEvent*> writeEvents() const;

  /// Taint trace for an object ("function.var" or "record.field"); null
  /// when the object never got tainted.
  [[nodiscard]] const std::vector<TraceStep>* traceFor(const std::string& object) const;

  /// Labels an expression may carry in `state` (no side effects applied).
  [[nodiscard]] LabelSet labelsOf(const ast::Expr& expr, const TaintState& state) const;

  [[nodiscard]] const AnalysisOptions& options() const { return options_; }
  [[nodiscard]] const sema::Sema& semaRef() const { return sema_; }

  /// Fixpoint merge counters of the last run() (perf instrumentation):
  /// how many successor-edge merges ran and how many actually grew the
  /// destination state.
  [[nodiscard]] std::uint64_t mergeCalls() const { return merge_calls_; }
  [[nodiscard]] std::uint64_t mergeGrew() const { return merge_grew_; }

 private:
  void seedEntryState(const ast::FunctionDecl& fn, TaintState& state);
  void analyzeFunction(FunctionTaint& result);
  void transferStmt(const ast::Stmt& stmt, TaintState& state);
  LabelSet evalExpr(const ast::Expr& expr, TaintState& state, bool effects);
  void assignTo(const ast::Expr& lhs, const ast::Expr* rhs, const LabelSet& labels, bool strong,
                TaintState& state, SourceLoc loc, ast::BinaryOp op = ast::BinaryOp::Assign);
  void recordTrace(const std::string& object, SourceLoc loc, std::string text);
  void recordWrite(const ast::Expr& assign, const std::string& object, bool is_field,
                   const std::string& field_key, const LabelSet& labels, const ast::Expr* rhs,
                   SourceLoc loc, ast::BinaryOp op);
  [[nodiscard]] std::string describeVar(const ast::VarDecl& var) const;
  [[nodiscard]] const ast::VarDecl* findVarInFunction(const ast::FunctionDecl& fn,
                                                      std::string_view name) const;
  /// Interned id of the field a member expression touches, memoized per
  /// field declaration (each record.field is one FieldDecl in the TU).
  [[nodiscard]] FieldKeyId fieldIdFor(const ast::MemberExpr& m) const;
  /// The "field:record.field" bridge label, memoized by field key id.
  [[nodiscard]] LabelId bridgeLabelFor(const ast::MemberExpr& m, FieldKeyId key) const;

  const ast::TranslationUnit& tu_;
  const sema::Sema& sema_;
  AnalysisOptions options_;
  mutable LabelTable labels_;
  mutable FieldKeyTable field_keys_;
  mutable std::unordered_map<const ast::FieldDecl*, FieldKeyId> field_id_memo_;
  mutable std::vector<LabelId> bridge_label_memo_;  ///< indexed by FieldKeyId
  std::vector<Seed> seeds_;

  std::vector<std::unique_ptr<FunctionTaint>> results_;
  std::map<const ast::FunctionDecl*, FunctionTaint*> by_fn_;
  const ast::FunctionDecl* current_fn_ = nullptr;
  FunctionTaint* current_result_ = nullptr;

  std::map<const ast::VarDecl*, LabelSet> sticky_;

  // Inter-procedural machinery.
  std::map<const ast::FunctionDecl*, TaintState> entry_bindings_;
  std::map<const ast::FunctionDecl*, LabelSet> return_summaries_;
  bool bindings_changed_ = false;

  std::uint64_t merge_calls_ = 0;
  std::uint64_t merge_grew_ = 0;

  std::map<FieldKeyId, LabelSet> field_writes_;
  std::map<std::string, std::vector<TraceStep>> traces_;
  std::map<const ast::Expr*, WriteEvent> writes_;
};

}  // namespace fsdep::taint
