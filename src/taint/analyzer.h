// The taint analyzer (paper §4.1): tracks the propagation of each
// configuration parameter along data-flow paths.
//
// "We maintain a set to keep the initial configuration variables and any
//  variables derived from the initial configuration variables. When a new
//  variable is added to the set, we add the corresponding instruction to
//  the taint trace too. We maintain a map to track if a variable is
//  derived from multiple parameters."
//
// Seeds (the paper's manual annotations) name a variable inside a function
// and the parameter it carries. Seeded variables are *sticky*: an
// assignment to them never washes the seed label away, because the
// variable IS the parameter.
//
// Two modes:
//   * intra-procedural (the paper's prototype): calls are opaque; their
//     result carries the union of argument labels.
//   * inter-procedural (the paper's §6 future work, now the scalable
//     default): argument labels bind to callee parameters and return
//     labels flow back. The fixpoint is computed on SCC-ordered
//     call-graph function summaries — each function is analyzed once
//     symbolically (its parameters carry placeholder labels), the
//     resulting (param -> returns/bindings) transfer summaries are
//     resolved bottom-up over the Tarjan SCC condensation (iterating
//     only inside cycles), entry bindings are propagated top-down, and
//     one final concrete pass produces the per-function states. A
//     legacy whole-program re-analysis (`max_global_passes`) is kept
//     behind AnalysisOptions::summaries=false for equivalence testing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/ast.h"
#include "cfg/cfg.h"
#include "sema/sema.h"
#include "taint/ir.h"
#include "taint/state.h"

namespace fsdep::taint {

struct AnalysisOptions {
  bool inter_procedural = false;
  /// When false, reading a metadata field does not produce the field's
  /// bridge label; CCD extraction then finds nothing (ablation knob).
  bool field_bridging = true;
  /// Inter-procedural engine: SCC-ordered function summaries (true, the
  /// default) or the legacy whole-program re-analysis capped at
  /// `max_global_passes` (false; kept as the equivalence-test oracle).
  bool summaries = true;
  /// Execute transfer functions as compiled Taint-IR: each function's
  /// CFG blocks are lowered once into a flat instruction stream (see
  /// taint/ir.h) and every fixpoint visit runs the stream instead of
  /// re-walking AST statements. The AST walk stays available as the
  /// byte-equivalence oracle behind --legacy-walk (false).
  bool compile_ir = true;
  int max_global_passes = 10;
  std::size_t max_trace_steps = 24;

  bool operator==(const AnalysisOptions& other) const = default;
};

/// A manual annotation: variable `variable` in function `function` carries
/// configuration parameter `param` ("component.name").
struct Seed {
  std::string function;
  std::string variable;
  std::string param;
};

struct TraceStep {
  SourceLoc loc;
  std::string text;
};

/// One (deduplicated) tainted write observed during the run. The
/// dependency extractor matches SD patterns against these.
struct WriteEvent {
  const ast::FunctionDecl* fn = nullptr;
  const ast::Expr* assign = nullptr;  ///< the assignment expression
  SourceLoc loc;
  std::string object;       ///< "function.var" or "record.field"
  bool is_field = false;
  std::string field_key;    ///< set when is_field
  LabelSet labels;          ///< labels flowing into the object
  std::string rhs_callee;   ///< callee name when the RHS is a direct call
  const ast::Expr* rhs = nullptr;      ///< RHS expression (null for out-params)
  ast::BinaryOp op = ast::BinaryOp::Assign;  ///< assignment operator
};

/// Analysis results for one function.
struct FunctionTaint {
  const ast::FunctionDecl* fn = nullptr;
  /// Shared with the compiled IR when compile_ir is on (the IR cache
  /// owns the build); built per run in legacy-walk mode.
  std::shared_ptr<const cfg::Cfg> cfg;
  /// Compiled Taint-IR of this function; null in legacy-walk mode.
  std::shared_ptr<const ir::CompiledFunction> code;
  /// Reverse post-order of `cfg`, computed once per run and shared by
  /// every fixpoint over this function (concrete passes, symbolic
  /// sweeps, exit replay).
  std::vector<cfg::BlockId> rpo;
  /// Entry state of each basic block after the fixpoint (indexed by id).
  std::vector<TaintState> block_entry;
  /// State at the point each block's branch condition is evaluated.
  std::vector<TaintState> at_condition;
  /// Union of the states at every function exit (after the exit blocks'
  /// statements ran).
  TaintState exit_state;
  LabelSet return_labels;
};

class Analyzer {
 public:
  Analyzer(const ast::TranslationUnit& tu, const sema::Sema& sema, AnalysisOptions options = {});

  void addSeed(Seed seed);

  /// Analyzes the given function definitions ("pre-selected functions" in
  /// the paper's prototype). Empty list means every function in the TU.
  void run(const std::vector<const ast::FunctionDecl*>& functions = {});

  [[nodiscard]] const FunctionTaint* resultFor(const ast::FunctionDecl* fn) const;
  [[nodiscard]] const FunctionTaint* resultFor(std::string_view function_name) const;
  [[nodiscard]] const std::vector<ArenaPtr<FunctionTaint>>& results() const { return results_; }

  [[nodiscard]] LabelTable& labels() { return labels_; }
  [[nodiscard]] const LabelTable& labels() const { return labels_; }

  /// Union of labels written to each metadata field anywhere in the run;
  /// the extractor uses this to bridge components. Materialized from the
  /// interned-id map on each call — the analysis itself never touches
  /// strings on this path.
  [[nodiscard]] std::map<std::string, LabelSet> fieldWrites() const;

  /// The "record.field" <-> id interner of this analyzer.
  [[nodiscard]] const FieldKeyTable& fieldKeys() const { return field_keys_; }

  /// All tainted writes, in deterministic (source) order.
  [[nodiscard]] std::vector<const WriteEvent*> writeEvents() const;

  /// Taint trace for an object ("function.var" or "record.field"); null
  /// when the object never got tainted.
  [[nodiscard]] const std::vector<TraceStep>* traceFor(const std::string& object) const;

  /// Labels an expression may carry in `state` (no side effects applied).
  [[nodiscard]] LabelSet labelsOf(const ast::Expr& expr, const TaintState& state) const;

  [[nodiscard]] const AnalysisOptions& options() const { return options_; }
  [[nodiscard]] const sema::Sema& semaRef() const { return sema_; }

  /// Fixpoint merge counters of the last run() (perf instrumentation):
  /// how many successor-edge merges ran and how many actually grew the
  /// destination state.
  [[nodiscard]] std::uint64_t mergeCalls() const { return merge_calls_; }
  [[nodiscard]] std::uint64_t mergeGrew() const { return merge_grew_; }

  /// Statements visited by transferStmt() across every fixpoint sweep of
  /// the run — the AST tree-walk floor the profile attributes time to.
  /// The IR engine mirrors the same counts (per-block statement totals),
  /// so both engines report identical visits.
  [[nodiscard]] std::uint64_t stmtVisits() const { return stmt_visits_; }

  /// Taint-IR instrumentation of the last run(): instructions executed
  /// and block-section program executions. Zero in legacy-walk mode.
  [[nodiscard]] std::uint64_t irInstrs() const { return ir_instrs_; }
  [[nodiscard]] std::uint64_t irVisits() const { return ir_visits_; }

  /// Functions whose final concrete pass was skipped because their
  /// top-down entry bindings resolved empty and no callee summary could
  /// feed them labels (summary engine only).
  [[nodiscard]] std::uint64_t concreteSkips() const { return concrete_skips_; }

  /// Shares a compilation memo across analyzers of the same TU (wired
  /// from the component cache entry). Must be called before run();
  /// without it the analyzer lazily owns a private cache.
  void setIrCache(std::shared_ptr<ir::IrCache> cache) { ir_cache_ = std::move(cache); }

  /// Bytes the result arena currently holds (per-function taint state).
  [[nodiscard]] std::size_t arenaBytes() const { return arena_.bytesUsed(); }

 private:
  void seedEntryState(const ast::FunctionDecl& fn, TaintState& state);
  void analyzeFunction(FunctionTaint& result);
  /// Summary engine (options_.summaries): one concrete pre-pass, then
  /// bottom-up symbolic summaries over the SCC condensation, top-down
  /// entry-binding propagation, and one final concrete pass.
  void runSummarized();
  /// Symbolic CFG fixpoint of one function: parameters carry placeholder
  /// labels (placeholder_base_ + index); return labels land in sym_ret_,
  /// per-callsite argument labels in sym_bind_. No traces/writes.
  void analyzeFunctionSymbolic(FunctionTaint& result);
  /// Call graph among analyzed functions (deterministic first-encounter
  /// edge order) and its Tarjan condensation, emitted callee-first.
  void buildCallGraph();
  [[nodiscard]] std::vector<std::vector<const ast::FunctionDecl*>> condenseSccs() const;
  /// Replaces placeholder labels (>= placeholder_base_) of `fn`'s
  /// summary with the per-index sets from `subst`; concrete labels pass
  /// through.
  [[nodiscard]] LabelSet instantiateSummary(const LabelSet& summary,
                                            const std::vector<LabelSet>& subst) const;
  /// Executes one instruction range of a compiled function against
  /// `state` — the IR twin of transferStmt/evalExpr, sharing the same
  /// recording helpers so all side effects stay byte-identical.
  void execRange(const ir::Program& prog, std::uint32_t begin, std::uint32_t end,
                 TaintState& state);
  /// Runs one block section set: stmts, inc, and (when requested via
  /// `snapshot`) the at_condition snapshot before the condition range.
  void execBlock(const ir::Program& prog, cfg::BlockId id, TaintState& state,
                 std::vector<TaintState>* at_condition);
  /// True when fn's final concrete pass would replay its first pass
  /// verbatim: entry bindings resolved empty and every callee summary is
  /// empty (both grow monotonically, so final-empty means always-empty).
  [[nodiscard]] bool canSkipFinalPass(const ast::FunctionDecl* fn) const;
  [[nodiscard]] ir::IrCache& irCache();
  void transferStmt(const ast::Stmt& stmt, TaintState& state);
  LabelSet evalExpr(const ast::Expr& expr, TaintState& state, bool effects);
  void assignTo(const ast::Expr& lhs, const ast::Expr* rhs, const LabelSet& labels, bool strong,
                TaintState& state, SourceLoc loc, ast::BinaryOp op = ast::BinaryOp::Assign);
  void recordTrace(const std::string& object, SourceLoc loc, const std::string& text);
  void recordWrite(const ast::Expr& assign, const std::string& object, bool is_field,
                   const std::string& field_key, const LabelSet& labels, const ast::Expr* rhs,
                   SourceLoc loc, ast::BinaryOp op);
  [[nodiscard]] std::string describeVar(const ast::VarDecl& var) const;
  /// describeVar, memoized by declaration (the display name of a decl
  /// never changes).
  [[nodiscard]] const std::string& varNameFor(const ast::VarDecl& var) const;
  /// The "object <- rhs" trace text of one assignment site, memoized by
  /// site pointer: the text is pure AST rendering, so building it once
  /// per site (instead of on every fixpoint replay) is observationally
  /// identical. exprToString recursion dominated the amplified-corpus
  /// profile before this.
  [[nodiscard]] const std::string& traceTextFor(const void* site, const std::string& object,
                                                const ast::Expr* rhs, const char* fallback) const;
  [[nodiscard]] const ast::VarDecl* findVarInFunction(const ast::FunctionDecl& fn,
                                                      std::string_view name) const;
  /// Interned id of the field a member expression touches, memoized per
  /// field declaration (each record.field is one FieldDecl in the TU).
  [[nodiscard]] FieldKeyId fieldIdFor(const ast::MemberExpr& m) const;
  /// The "field:record.field" bridge label, memoized by field key id.
  [[nodiscard]] LabelId bridgeLabelFor(const ast::MemberExpr& m, FieldKeyId key) const;

  const ast::TranslationUnit& tu_;
  const sema::Sema& sema_;
  AnalysisOptions options_;
  mutable LabelTable labels_;
  mutable FieldKeyTable field_keys_;
  mutable std::unordered_map<const ast::FieldDecl*, FieldKeyId> field_id_memo_;
  mutable std::vector<LabelId> bridge_label_memo_;  ///< indexed by FieldKeyId
  // AST-derived display strings are run-invariant, so these memos are
  // never cleared (the AST outlives the analyzer via the component
  // cache entry).
  mutable std::unordered_map<const ast::VarDecl*, std::string> var_name_memo_;
  mutable std::unordered_map<const void*, std::string> trace_text_memo_;
  /// Assignment sites whose trace step was already offered this run.
  /// A site's (object, loc, text) triple is fixed, so recordTrace is
  /// idempotent per site — later replays can skip the call outright.
  std::unordered_set<const void*> trace_done_;
  std::vector<Seed> seeds_;
  /// Per-run cache of seed-to-variable resolution (the AST walk), so
  /// fixpoint re-entries don't re-walk function bodies. Label interning
  /// is NOT cached — it must stay in first-use order.
  std::map<const ast::FunctionDecl*, std::vector<std::pair<const Seed*, const ast::VarDecl*>>>
      seed_memo_;

  /// Storage for per-function results; declared before results_ so the
  /// arena outlives the ArenaPtrs into it.
  Arena arena_;
  std::vector<ArenaPtr<FunctionTaint>> results_;
  std::map<const ast::FunctionDecl*, FunctionTaint*> by_fn_;
  const ast::FunctionDecl* current_fn_ = nullptr;
  FunctionTaint* current_result_ = nullptr;

  std::map<const ast::VarDecl*, LabelSet> sticky_;

  // Inter-procedural machinery (both engines).
  std::map<const ast::FunctionDecl*, TaintState> entry_bindings_;
  std::map<const ast::FunctionDecl*, LabelSet> return_summaries_;
  bool bindings_changed_ = false;

  // Summary engine (options_.summaries): placeholder labels occupy ids
  // >= placeholder_base_, which is frozen after the concrete pre-pass —
  // by then every concrete label (seeds, field bridges) is interned, so
  // the two id spaces cannot collide.
  bool summary_mode_ = false;
  LabelId placeholder_base_ = 0;
  LabelSet* summary_return_sink_ = nullptr;
  bool summary_changed_ = false;
  std::map<const ast::FunctionDecl*, LabelSet> sym_ret_;
  std::map<const ast::FunctionDecl*, std::map<const ast::VarDecl*, LabelSet>> sym_bind_;
  std::map<const ast::FunctionDecl*, std::vector<const ast::FunctionDecl*>> callees_;

  std::uint64_t merge_calls_ = 0;
  std::uint64_t merge_grew_ = 0;
  std::uint64_t stmt_visits_ = 0;
  std::uint64_t ir_instrs_ = 0;
  std::uint64_t ir_visits_ = 0;
  std::uint64_t concrete_skips_ = 0;

  /// Compilation memo (shared via setIrCache, else lazily private) and
  /// the temp scratchpad the interpreter reuses across block visits.
  std::shared_ptr<ir::IrCache> ir_cache_;
  std::vector<LabelSet> ir_temps_;

  std::map<FieldKeyId, LabelSet> field_writes_;
  std::map<std::string, std::vector<TraceStep>> traces_;
  std::map<const ast::Expr*, WriteEvent> writes_;
};

}  // namespace fsdep::taint
