#include "taint/state.h"

namespace fsdep::taint {

std::string fieldKey(std::string_view record, std::string_view field) {
  std::string key(record);
  key += '.';
  key += field;
  return key;
}

bool TaintState::mergeFrom(const TaintState& other) {
  const auto merge = [](LabelSet& into, const LabelSet& from) { return unionInto(into, from); };
  const auto grew = [](const LabelSet& copied) { return !copied.empty(); };
  bool changed = vars.mergeFrom(other.vars, merge, grew);
  changed |= fields.mergeFrom(other.fields, merge, grew);
  return changed;
}

LabelSet TaintState::varLabels(const ast::VarDecl* var) const {
  const auto it = vars.find(var);
  return it != vars.end() ? it->second : LabelSet{};
}

LabelSet TaintState::fieldLabels(FieldKeyId key) const {
  const auto it = fields.find(key);
  return it != fields.end() ? it->second : LabelSet{};
}

}  // namespace fsdep::taint
