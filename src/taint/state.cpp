#include "taint/state.h"

namespace fsdep::taint {

std::string fieldKey(std::string_view record, std::string_view field) {
  std::string key(record);
  key += '.';
  key += field;
  return key;
}

bool TaintState::mergeFrom(const TaintState& other) {
  bool changed = false;
  for (const auto& [var, labels] : other.vars) changed |= unionInto(vars[var], labels);
  for (const auto& [key, labels] : other.fields) changed |= unionInto(fields[key], labels);
  return changed;
}

LabelSet TaintState::varLabels(const ast::VarDecl* var) const {
  const auto it = vars.find(var);
  return it != vars.end() ? it->second : LabelSet{};
}

LabelSet TaintState::fieldLabels(const std::string& key) const {
  const auto it = fields.find(key);
  return it != fields.end() ? it->second : LabelSet{};
}

}  // namespace fsdep::taint
