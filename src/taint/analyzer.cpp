#include "taint/analyzer.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsdep::taint {

using namespace ast;

Analyzer::Analyzer(const TranslationUnit& tu, const sema::Sema& sema, AnalysisOptions options)
    : tu_(tu), sema_(sema), options_(options) {}

FieldKeyId Analyzer::fieldIdFor(const MemberExpr& m) const {
  const auto memo = field_id_memo_.find(m.field);
  if (memo != field_id_memo_.end()) return memo->second;
  const FieldKeyId id = field_keys_.intern(m.record->name, m.field->name);
  field_id_memo_.emplace(m.field, id);
  return id;
}

LabelId Analyzer::bridgeLabelFor(const MemberExpr& m, FieldKeyId key) const {
  constexpr LabelId kUnset = static_cast<LabelId>(-1);
  if (key >= bridge_label_memo_.size()) bridge_label_memo_.resize(key + 1, kUnset);
  if (bridge_label_memo_[key] == kUnset) {
    bridge_label_memo_[key] = labels_.internField(m.record->name, m.field->name);
  }
  return bridge_label_memo_[key];
}

std::map<std::string, LabelSet> Analyzer::fieldWrites() const {
  std::map<std::string, LabelSet> out;
  for (const auto& [id, labels] : field_writes_) out.emplace(field_keys_.key(id), labels);
  return out;
}

void Analyzer::addSeed(Seed seed) { seeds_.push_back(std::move(seed)); }

const VarDecl* Analyzer::findVarInFunction(const FunctionDecl& fn, std::string_view name) const {
  for (const auto& p : fn.params) {
    if (p->name == name) return p.get();
  }
  // Walk the body for local declarations.
  const VarDecl* found = nullptr;
  // Simple recursive lambda over statements.
  auto walk = [&](auto&& self, const Stmt& stmt) -> void {
    if (found != nullptr) return;
    switch (stmt.kind()) {
      case StmtKind::Compound:
        for (const StmtPtr& s : static_cast<const CompoundStmt&>(stmt).body) self(self, *s);
        break;
      case StmtKind::Decl:
        for (const auto& v : static_cast<const DeclStmt&>(stmt).vars) {
          if (v->name == name) {
            found = v.get();
            return;
          }
        }
        break;
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        self(self, *s.then_stmt);
        if (s.else_stmt != nullptr) self(self, *s.else_stmt);
        break;
      }
      case StmtKind::While: self(self, *static_cast<const WhileStmt&>(stmt).body); break;
      case StmtKind::DoWhile: self(self, *static_cast<const DoWhileStmt&>(stmt).body); break;
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        if (s.init != nullptr) self(self, *s.init);
        self(self, *s.body);
        break;
      }
      case StmtKind::Switch:
        for (const auto& c : static_cast<const SwitchStmt&>(stmt).cases) self(self, *c);
        break;
      case StmtKind::Case:
        for (const StmtPtr& b : static_cast<const CaseStmt&>(stmt).body) self(self, *b);
        break;
      default:
        break;
    }
  };
  if (fn.body != nullptr) walk(walk, *fn.body);
  if (found != nullptr) return found;
  // Fall back to a global of that name.
  return tu_.findGlobal(name);
}

std::string Analyzer::describeVar(const VarDecl& var) const {
  if (var.owner != nullptr) return var.owner->name + "." + var.name;
  return var.name;
}

const std::string& Analyzer::varNameFor(const VarDecl& var) const {
  const auto [it, inserted] = var_name_memo_.try_emplace(&var);
  if (inserted) it->second = describeVar(var);
  return it->second;
}

const std::string& Analyzer::traceTextFor(const void* site, const std::string& object,
                                          const Expr* rhs, const char* fallback) const {
  const auto [it, inserted] = trace_text_memo_.try_emplace(site);
  if (inserted) {
    it->second = object + " <- " + (rhs != nullptr ? exprToString(*rhs) : fallback);
  }
  return it->second;
}

void Analyzer::seedEntryState(const FunctionDecl& fn, TaintState& state) {
  // Seed-to-variable resolution walks the function body; memoize it per
  // run so fixpoint re-entries (and the summary engine's extra passes)
  // don't re-walk the AST. Label interning stays here, in first-use
  // order — LabelId order is semantically visible.
  const auto [memo, inserted] = seed_memo_.try_emplace(&fn);
  if (inserted) {
    for (const Seed& seed : seeds_) {
      if (seed.function != fn.name) continue;
      const VarDecl* var = findVarInFunction(fn, seed.variable);
      if (var != nullptr) memo->second.emplace_back(&seed, var);
    }
  }
  for (const auto& [seed, var] : memo->second) {
    const LabelId label = labels_.internParam(seed->param);
    state.vars[var].insert(label);
    sticky_[var].insert(label);
    recordTrace(varNameFor(*var), var->loc, "seed: carries " + seed->param);
  }
  // In the symbolic phase the parameters carry placeholder labels
  // instead; concrete caller bindings are folded in afterwards.
  if (options_.inter_procedural && !summary_mode_) {
    const auto it = entry_bindings_.find(&fn);
    if (it != entry_bindings_.end()) state.mergeFrom(it->second);
  }
}

void Analyzer::run(const std::vector<const FunctionDecl*>& functions) {
  std::vector<const FunctionDecl*> fns = functions;
  if (fns.empty()) fns = tu_.functions();

  results_.clear();  // destroys the FunctionTaints before the arena memory is recycled
  arena_.reset();
  by_fn_.clear();
  field_writes_.clear();
  traces_.clear();
  trace_done_.clear();
  writes_.clear();
  sticky_.clear();
  seed_memo_.clear();
  entry_bindings_.clear();
  return_summaries_.clear();
  sym_ret_.clear();
  sym_bind_.clear();
  callees_.clear();
  summary_mode_ = false;
  summary_return_sink_ = nullptr;
  placeholder_base_ = 0;
  merge_calls_ = 0;
  merge_grew_ = 0;
  stmt_visits_ = 0;
  ir_instrs_ = 0;
  ir_visits_ = 0;
  concrete_skips_ = 0;

  for (const FunctionDecl* fn : fns) {
    if (fn == nullptr || !fn->isDefinition()) continue;
    ArenaPtr<FunctionTaint> result(arena_.make<FunctionTaint>());
    result->fn = fn;
    if (options_.compile_ir) {
      // Compiled once per function and memoized (shared across warm runs
      // via the component cache): CFG, RPO, and the flat instruction
      // stream all come from the cache entry.
      result->code = irCache().getOrCompile(*fn);
      result->cfg = result->code->cfg;
      result->rpo = result->code->rpo;
      if (result->code->program.num_temps > ir_temps_.size()) {
        ir_temps_.resize(result->code->program.num_temps);
      }
    } else {
      result->cfg = cfg::Cfg::build(*fn);
      result->rpo = result->cfg->reversePostOrder();
    }
    by_fn_[fn] = result.get();
    results_.push_back(std::move(result));
  }

  if (options_.inter_procedural && options_.summaries) {
    runSummarized();
    return;
  }

  const int passes = options_.inter_procedural ? options_.max_global_passes : 1;
  for (int pass = 0; pass < passes; ++pass) {
    bindings_changed_ = false;
    for (const auto& result : results_) {
      current_fn_ = result->fn;
      current_result_ = result.get();
      analyzeFunction(*result);
    }
    current_fn_ = nullptr;
    current_result_ = nullptr;
    if (!bindings_changed_) break;
  }
}

void Analyzer::analyzeFunction(FunctionTaint& result) {
  obs::Span span("taint", "fixpoint");
  span.arg("function", result.fn->name);
  const std::uint64_t stmts_before = stmt_visits_;
  const cfg::Cfg& cfg = *result.cfg;
  result.block_entry.assign(cfg.size(), TaintState{});
  result.at_condition.assign(cfg.size(), TaintState{});

  TaintState entry;
  seedEntryState(*result.fn, entry);
  result.block_entry[cfg.entry()] = std::move(entry);

  const std::vector<cfg::BlockId>& order = result.rpo;
  // Dirty-block fixpoint: a block is reprocessed only when its entry
  // state grew since it last ran. The transfer side effects (traces,
  // write events) are idempotent and depend only on the entry state, so
  // skipping a converged block replays nothing and changes nothing —
  // acyclic CFGs settle in one real sweep plus one flag scan.
  std::vector<char> dirty(cfg.size(), 1);
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 64) {
    changed = false;
    for (const cfg::BlockId id : order) {
      if (dirty[id] == 0) continue;
      dirty[id] = 0;
      const cfg::BasicBlock& block = cfg.block(id);
      TaintState state = result.block_entry[id];
      if (result.code != nullptr) {
        execBlock(result.code->program, id, state, &result.at_condition);
      } else {
        for (const Stmt* s : block.stmts) transferStmt(*s, state);
        if (block.inc_expr != nullptr) evalExpr(*block.inc_expr, state, /*effects=*/true);
        if (block.condition != nullptr) {
          result.at_condition[id] = state;
          evalExpr(*block.condition, state, /*effects=*/true);
        }
      }
      for (const cfg::Edge& e : block.successors) {
        const bool grew = result.block_entry[e.target].mergeFrom(state);
        ++merge_calls_;
        merge_grew_ += grew ? 1 : 0;
        if (grew) {
          dirty[e.target] = 1;
          changed = true;
        }
      }
    }
  }
  // `iterations` counts sweeps over the CFG until nothing grew (or the
  // safety valve tripped); the histogram shows how close functions sit
  // to the 64-sweep cap.
  static obs::Histogram& fixpoint_iterations = obs::Registry::global().histogram(
      "taint.fixpoint_iterations", {}, {1, 2, 3, 4, 6, 8, 16, 32, 64});
  fixpoint_iterations.observe(static_cast<std::uint64_t>(iterations));
  span.arg("iterations", static_cast<std::uint64_t>(iterations));

  // Publish the union of the post-statement states at the exits (the
  // record/trace side effects are idempotent, so replaying is safe).
  result.exit_state = TaintState{};
  for (const cfg::BlockId id : order) {
    const cfg::BasicBlock& block = cfg.block(id);
    if (!block.is_exit) continue;
    TaintState state = result.block_entry[id];
    if (result.code != nullptr) {
      const ir::BlockRange& range = result.code->program.blocks[id];
      ++ir_visits_;
      stmt_visits_ += range.stmt_count;
      execRange(result.code->program, range.stmts_begin, range.stmts_end, state);
    } else {
      for (const Stmt* s : block.stmts) transferStmt(*s, state);
    }
    result.exit_state.mergeFrom(state);
  }
  span.arg("stmts", stmt_visits_ - stmts_before);
}

void Analyzer::runSummarized() {
  // Pass 1: concrete, byte-for-byte the legacy engine's first pass. This
  // freezes the label space — every seed and bridge label is interned in
  // first-discovery order, which is semantically visible (rendered label
  // sets ascend by id, and extraction anchors on the smallest id) — and
  // records the first-discovery traces and write events.
  bindings_changed_ = false;
  for (const auto& result : results_) {
    current_fn_ = result->fn;
    current_result_ = result.get();
    analyzeFunction(*result);
  }
  current_fn_ = nullptr;
  current_result_ = nullptr;
  // Nothing crossed a function boundary: pass 1 is already the fixpoint
  // (the legacy engine would stop here too).
  if (!bindings_changed_) return;

  // Bottom-up: one symbolic CFG fixpoint per function, ordered by the
  // Tarjan condensation of the call graph (emission order is
  // callee-first), iterating only inside cyclic components. Placeholder
  // labels occupy ids >= placeholder_base_; because substitution happens
  // immediately at each call site, only the current function's own
  // placeholders ever appear in its state, so one shared base serves
  // every function without collisions.
  std::uint64_t symbolic_sweeps = 0;
  std::vector<std::vector<const FunctionDecl*>> sccs;
  const auto isCyclic = [this](const std::vector<const FunctionDecl*>& scc) {
    if (scc.size() > 1) return true;
    const auto& edges = callees_.find(scc.front())->second;
    return std::find(edges.begin(), edges.end(), scc.front()) != edges.end();
  };
  {
    obs::Span span("taint", "summary_build");
    placeholder_base_ = static_cast<LabelId>(labels_.size());
    buildCallGraph();
    sccs = condenseSccs();
    summary_mode_ = true;
    // The span name distinguishes the engines in profile attribution:
    // scc_ir when sweeps execute compiled Taint-IR, scc_symbolic for the
    // legacy AST walk.
    const char* scc_span_name = options_.compile_ir ? "scc_ir" : "scc_symbolic";
    for (const auto& scc : sccs) {
      obs::Span scc_span("taint", scc_span_name);
      scc_span.arg("function", scc.front()->name);
      const bool cyclic = isCyclic(scc);
      int guard = 0;
      const std::uint64_t sweeps_before = symbolic_sweeps;
      do {
        summary_changed_ = false;
        for (const FunctionDecl* fn : scc) {
          current_fn_ = fn;
          current_result_ = by_fn_.find(fn)->second;
          summary_return_sink_ = &sym_ret_[fn];
          analyzeFunctionSymbolic(*current_result_);
          ++symbolic_sweeps;
        }
      } while (cyclic && summary_changed_ && ++guard < 64);
      scc_span.arg("functions", static_cast<std::uint64_t>(scc.size()));
      scc_span.arg("sweeps", symbolic_sweeps - sweeps_before);
    }
    summary_mode_ = false;
    summary_return_sink_ = nullptr;
    current_fn_ = nullptr;
    current_result_ = nullptr;
    span.arg("functions", static_cast<std::uint64_t>(results_.size()));
    span.arg("sccs", static_cast<std::uint64_t>(sccs.size()));
    span.arg("symbolic_sweeps", symbolic_sweeps);
  }
  static obs::Counter& scc_counter = obs::Registry::global().counter("taint.summary.sccs");
  scc_counter.add(sccs.size());
  static obs::Counter& sweep_counter =
      obs::Registry::global().counter("taint.summary.symbolic_sweeps");
  sweep_counter.add(symbolic_sweeps);

  // Top-down: resolve the symbolic per-callsite bindings into concrete
  // entry labels E, caller-first (the reverse of the emission order), so
  // every caller's own entry labels are final before it pushes them on.
  std::map<const VarDecl*, LabelSet> entry_labels;
  const auto resolve = [&](const LabelSet& sym, const FunctionDecl* fn) {
    LabelSet out;
    for (const LabelId id : sym) {
      if (id < placeholder_base_) {
        out.insert(id);
      } else {
        const std::size_t idx = id - placeholder_base_;
        if (idx >= fn->params.size()) continue;
        const auto it = entry_labels.find(fn->params[idx].get());
        if (it != entry_labels.end()) unionInto(out, it->second);
      }
    }
    return out;
  };
  const auto pushBindings = [&](const FunctionDecl* fn) {
    bool changed = false;
    const auto it = sym_bind_.find(fn);
    if (it == sym_bind_.end()) return changed;
    for (const auto& [param, sym] : it->second) {
      changed |= unionInto(entry_labels[param], resolve(sym, fn));
    }
    return changed;
  };
  for (auto scc = sccs.rbegin(); scc != sccs.rend(); ++scc) {
    const bool cyclic = isCyclic(*scc);
    int guard = 0;
    bool changed;
    do {
      changed = false;
      for (const FunctionDecl* fn : *scc) changed |= pushBindings(fn);
    } while (cyclic && changed && ++guard < 64);
  }

  // Instantiate the fixpoint summaries and entry bindings the final
  // concrete pass will consume.
  for (const auto& result : results_) {
    const FunctionDecl* fn = result->fn;
    if (const auto it = sym_ret_.find(fn); it != sym_ret_.end() && !it->second.empty()) {
      LabelSet resolved = resolve(it->second, fn);
      if (!resolved.empty()) unionInto(return_summaries_[fn], resolved);
    }
    for (const auto& p : fn->params) {
      const auto e = entry_labels.find(p.get());
      if (e == entry_labels.end() || e->second.empty()) continue;
      unionInto(entry_bindings_[fn].vars[p.get()], e->second);
    }
  }

  // One final concrete pass with the fixpoint bindings and summaries in
  // place — the legacy engine's passes 2..N collapsed into one. At the
  // fixpoint nothing can grow; the residual counter flags a violation of
  // that invariant (it should stay 0).
  obs::Span apply_span("taint", "summary_apply");
  bindings_changed_ = false;
  for (const auto& result : results_) {
    // Functions whose entry bindings resolved empty and whose callees
    // summarize to nothing would replay pass 1 verbatim — their pass-1
    // states, traces, and events already stand (ROADMAP item 4's second
    // path; equivalence is test-enforced against the no-skip oracle).
    if (canSkipFinalPass(result->fn)) {
      ++concrete_skips_;
      continue;
    }
    current_fn_ = result->fn;
    current_result_ = result.get();
    analyzeFunction(*result);
  }
  current_fn_ = nullptr;
  current_result_ = nullptr;
  if (concrete_skips_ > 0) {
    static obs::Counter& skip_counter =
        obs::Registry::global().counter("taint.concrete_skips");
    skip_counter.add(concrete_skips_);
  }
  apply_span.arg("skipped", concrete_skips_);
  if (bindings_changed_) {
    static obs::Counter& residual =
        obs::Registry::global().counter("taint.summary.residual_growth");
    residual.add(1);
  }
}

void Analyzer::analyzeFunctionSymbolic(FunctionTaint& result) {
  const cfg::Cfg& cfg = *result.cfg;
  std::vector<TaintState> block_entry(cfg.size());
  TaintState entry;
  seedEntryState(*result.fn, entry);  // seeds only; bindings are skipped in summary mode
  const auto& params = result.fn->params;
  for (std::size_t i = 0; i < params.size(); ++i) {
    entry.vars[params[i].get()].insert(placeholder_base_ + static_cast<LabelId>(i));
  }
  block_entry[cfg.entry()] = std::move(entry);

  const std::vector<cfg::BlockId>& order = result.rpo;
  // Same dirty-block scheme as the concrete fixpoint (symbolic sweeps
  // have no side effects at all, so skipping converged blocks is purely
  // a speedup).
  std::vector<char> dirty(cfg.size(), 1);
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 64) {
    changed = false;
    for (const cfg::BlockId id : order) {
      if (dirty[id] == 0) continue;
      dirty[id] = 0;
      const cfg::BasicBlock& block = cfg.block(id);
      TaintState state = block_entry[id];
      if (result.code != nullptr) {
        // No at_condition snapshot in symbolic sweeps.
        execBlock(result.code->program, id, state, nullptr);
      } else {
        for (const Stmt* s : block.stmts) transferStmt(*s, state);
        if (block.inc_expr != nullptr) evalExpr(*block.inc_expr, state, /*effects=*/true);
        if (block.condition != nullptr) evalExpr(*block.condition, state, /*effects=*/true);
      }
      for (const cfg::Edge& e : block.successors) {
        const bool grew = block_entry[e.target].mergeFrom(state);
        ++merge_calls_;
        merge_grew_ += grew ? 1 : 0;
        if (grew) {
          dirty[e.target] = 1;
          changed = true;
        }
      }
    }
  }
}

ir::IrCache& Analyzer::irCache() {
  if (ir_cache_ == nullptr) ir_cache_ = std::make_shared<ir::IrCache>();
  return *ir_cache_;
}

bool Analyzer::canSkipFinalPass(const FunctionDecl* fn) const {
  // Both inputs the final pass adds over pass 1 grow monotonically, so
  // observing them empty at the fixpoint means they were empty while
  // pass 1 ran too — the replay could not differ. Emptiness (not key
  // presence) is the test: operator[] plants empty-set entries.
  if (const auto bound = entry_bindings_.find(fn); bound != entry_bindings_.end()) {
    for (const auto& [var, labels] : bound->second.vars) {
      if (!labels.empty()) return false;
    }
  }
  if (const auto edges = callees_.find(fn); edges != callees_.end()) {
    for (const FunctionDecl* callee : edges->second) {
      const auto summary = return_summaries_.find(callee);
      if (summary != return_summaries_.end() && !summary->second.empty()) return false;
    }
  }
  return true;
}

void Analyzer::execBlock(const ir::Program& prog, cfg::BlockId id, TaintState& state,
                         std::vector<TaintState>* at_condition) {
  const ir::BlockRange& range = prog.blocks[id];
  ++ir_visits_;
  stmt_visits_ += range.stmt_count;
  execRange(prog, range.stmts_begin, range.stmts_end, state);
  execRange(prog, range.stmts_end, range.inc_end, state);
  if (range.has_condition) {
    if (at_condition != nullptr) (*at_condition)[id] = state;
    execRange(prog, range.inc_end, range.cond_end, state);
  }
}

void Analyzer::execRange(const ir::Program& prog, std::uint32_t begin, std::uint32_t end,
                         TaintState& state) {
  ir_instrs_ += end - begin;
  std::vector<LabelSet>& temps = ir_temps_;
  const LabelSet no_labels;
  for (std::uint32_t pc = begin; pc < end; ++pc) {
    const ir::Instr& in = prog.instrs[pc];
    switch (in.op) {
      case ir::Op::LoadVar:
        temps[in.dst] = state.varLabels(in.var);
        break;

      case ir::Op::LoadField: {
        // Interning runs even for a discarded read (dst == kNoTemp):
        // field-key and bridge-label id assignment is first-use ordered
        // and semantically visible, exactly as in the AST walk.
        const MemberExpr& m = *in.member;
        const FieldKeyId key = fieldIdFor(m);
        if (options_.field_bridging) {
          const LabelId bridge = bridgeLabelFor(m, key);
          if (in.dst != ir::kNoTemp) {
            LabelSet labels = state.fieldLabels(key);
            labels.insert(bridge);
            temps[in.dst] = std::move(labels);
          }
        } else if (in.dst != ir::kNoTemp) {
          temps[in.dst] = state.fieldLabels(key);
        }
        break;
      }

      case ir::Op::Copy:
        temps[in.dst] = temps[in.a];
        break;

      case ir::Op::UnionInto:
        unionInto(temps[in.dst], temps[in.a]);
        break;

      case ir::Op::AssignVar: {
        const LabelSet* src = in.a == ir::kNoTemp ? nullptr : &temps[in.a];
        // Out-param stores only happen when the merged other-arg labels
        // are non-empty (the AST walk never calls assignTo then).
        if (in.skip_if_empty && (src == nullptr || src->empty())) break;
        LabelSet merged = src != nullptr ? *src : LabelSet{};
        if (const auto sticky = sticky_.find(in.var); sticky != sticky_.end()) {
          unionInto(merged, sticky->second);
        }
        if (in.strong) {
          state.vars[in.var] = merged;
        } else {
          unionInto(state.vars[in.var], merged);
        }
        if (!merged.empty()) {
          const std::string& object = varNameFor(*in.var);
          if (!summary_mode_ && trace_done_.insert(in.site).second) {
            recordTrace(object, in.loc, traceTextFor(in.site, object, in.rhs, "<call out-param>"));
          }
          recordWrite(*in.write_key, object, /*is_field=*/false, "", merged, in.rhs, in.loc,
                      in.aop);
        }
        break;
      }

      case ir::Op::AssignField: {
        const LabelSet* src = in.a == ir::kNoTemp ? nullptr : &temps[in.a];
        // Checked before interning: a skipped out-param store interns
        // nothing in the AST walk either.
        if (in.skip_if_empty && (src == nullptr || src->empty())) break;
        const LabelSet& labels = src != nullptr ? *src : no_labels;
        const MemberExpr& m = *in.member;
        const FieldKeyId id = fieldIdFor(m);
        // Fields are object-insensitive: always a weak update.
        unionInto(state.fields[id], labels);
        if (!summary_mode_) unionInto(field_writes_[id], labels);
        if (!labels.empty()) {
          const std::string& key = field_keys_.key(id);
          if (!summary_mode_ && trace_done_.insert(in.site).second) {
            recordTrace(key, in.loc, traceTextFor(in.site, key, in.rhs, "<expr>"));
          }
          recordWrite(*in.write_key, key, /*is_field=*/true, key, labels, in.rhs, in.loc, in.aop);
        }
        break;
      }

      case ir::Op::DeclInit: {
        LabelSet labels = in.a == ir::kNoTemp ? LabelSet{} : temps[in.a];
        if (const auto sticky = sticky_.find(in.var); sticky != sticky_.end()) {
          unionInto(labels, sticky->second);
        }
        if (!labels.empty()) {
          state.vars[in.var] = labels;
          const std::string& object = varNameFor(*in.var);
          if (!summary_mode_ && trace_done_.insert(in.site).second) {
            recordTrace(object, in.loc, traceTextFor(in.site, object, in.rhs, ""));
          }
          recordWrite(*in.write_key, object, /*is_field=*/false, "", labels, in.rhs, in.loc,
                      BinaryOp::Assign);
        } else {
          state.vars[in.var].clear();
        }
        break;
      }

      case ir::Op::Call: {
        const ir::CallSpec& spec = prog.calls[in.aux];
        const ir::TempId* args = prog.call_args.data() + spec.args_begin;
        const std::size_t nargs = spec.args_end - spec.args_begin;
        LabelSet result;
        for (std::size_t i = 0; i < nargs; ++i) {
          if (args[i] != ir::kNoTemp) unionInto(result, temps[args[i]]);
        }
        const FunctionDecl* callee = spec.callee;
        if (options_.inter_procedural && callee != nullptr) {
          if (summary_mode_) {
            if (by_fn_.find(callee) != by_fn_.end()) {
              if (spec.effects) {
                auto& binds = sym_bind_[current_fn_];
                for (std::size_t i = 0; i < nargs && i < callee->params.size(); ++i) {
                  if (args[i] != ir::kNoTemp && !temps[args[i]].empty()) {
                    unionInto(binds[callee->params[i].get()], temps[args[i]]);
                  }
                }
              }
              if (const auto it = sym_ret_.find(callee); it != sym_ret_.end()) {
                // instantiateSummary, reading per-arg sets straight from
                // the temp pool (kNoTemp holes are empty sets).
                for (const LabelId label : it->second) {
                  if (label < placeholder_base_) {
                    result.insert(label);
                  } else {
                    const std::size_t idx = label - placeholder_base_;
                    if (idx < nargs && args[idx] != ir::kNoTemp) {
                      unionInto(result, temps[args[idx]]);
                    }
                  }
                }
              }
            }
          } else {
            if (spec.effects) {
              TaintState& binding = entry_bindings_[callee];
              for (std::size_t i = 0; i < nargs && i < callee->params.size(); ++i) {
                if (args[i] != ir::kNoTemp && !temps[args[i]].empty()) {
                  if (unionInto(binding.vars[callee->params[i].get()], temps[args[i]])) {
                    bindings_changed_ = true;
                  }
                }
              }
            }
            const auto summary = return_summaries_.find(callee);
            if (summary != return_summaries_.end()) unionInto(result, summary->second);
          }
        }
        temps[in.dst] = std::move(result);
        break;
      }

      case ir::Op::Return: {
        const LabelSet& labels = temps[in.a];
        if (summary_mode_) {
          if (summary_return_sink_ != nullptr && unionInto(*summary_return_sink_, labels)) {
            summary_changed_ = true;
          }
        } else if (current_result_ != nullptr) {
          unionInto(current_result_->return_labels, labels);
          if (options_.inter_procedural) {
            LabelSet& summary = return_summaries_[current_fn_];
            if (unionInto(summary, labels)) bindings_changed_ = true;
          }
        }
        break;
      }
    }
  }
}

void Analyzer::buildCallGraph() {
  callees_.clear();
  for (const auto& result : results_) {
    std::vector<const FunctionDecl*>& out = callees_[result->fn];
    auto walkExpr = [&](auto&& self, const Expr& e) -> void {
      switch (e.kind()) {
        case ExprKind::Unary: self(self, *static_cast<const UnaryExpr&>(e).operand); break;
        case ExprKind::Binary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          self(self, *b.lhs);
          self(self, *b.rhs);
          break;
        }
        case ExprKind::Conditional: {
          const auto& c = static_cast<const ConditionalExpr&>(e);
          self(self, *c.cond);
          self(self, *c.then_expr);
          self(self, *c.else_expr);
          break;
        }
        case ExprKind::Call: {
          const auto& call = static_cast<const CallExpr&>(e);
          for (const ExprPtr& a : call.args) self(self, *a);
          const FunctionDecl* callee = call.callee_decl;
          if (callee != nullptr && by_fn_.find(callee) != by_fn_.end() &&
              std::find(out.begin(), out.end(), callee) == out.end()) {
            out.push_back(callee);
          }
          break;
        }
        case ExprKind::Member: self(self, *static_cast<const MemberExpr&>(e).base); break;
        case ExprKind::Index: {
          const auto& i = static_cast<const IndexExpr&>(e);
          self(self, *i.base);
          self(self, *i.index);
          break;
        }
        case ExprKind::Cast: self(self, *static_cast<const CastExpr&>(e).operand); break;
        case ExprKind::InitList:
          for (const ExprPtr& el : static_cast<const InitListExpr&>(e).elements) self(self, *el);
          break;
        default:
          break;
      }
    };
    // The CFG already flattened control flow, so blocks hold only leaf
    // statements plus the branch condition / loop increment expressions —
    // exactly the expressions the transfer functions evaluate.
    const cfg::Cfg& cfg = *result->cfg;
    for (std::size_t id = 0; id < cfg.size(); ++id) {
      const cfg::BasicBlock& block = cfg.block(static_cast<cfg::BlockId>(id));
      for (const Stmt* s : block.stmts) {
        switch (s->kind()) {
          case StmtKind::Decl:
            for (const auto& var : static_cast<const DeclStmt&>(*s).vars) {
              if (var->init != nullptr) walkExpr(walkExpr, *var->init);
            }
            break;
          case StmtKind::Expr: walkExpr(walkExpr, *static_cast<const ExprStmt&>(*s).expr); break;
          case StmtKind::Return: {
            const auto& ret = static_cast<const ReturnStmt&>(*s);
            if (ret.value != nullptr) walkExpr(walkExpr, *ret.value);
            break;
          }
          default:
            break;
        }
      }
      if (block.inc_expr != nullptr) walkExpr(walkExpr, *block.inc_expr);
      if (block.condition != nullptr) walkExpr(walkExpr, *block.condition);
    }
  }
}

std::vector<std::vector<const FunctionDecl*>> Analyzer::condenseSccs() const {
  // Iterative Tarjan over the analyzed-function call graph. Roots are
  // visited in results_ order and edges in first-encounter order, so the
  // emission (callee-first) order is deterministic.
  std::vector<std::vector<const FunctionDecl*>> sccs;
  std::map<const FunctionDecl*, std::uint32_t> index;
  std::map<const FunctionDecl*, std::uint32_t> lowlink;
  std::map<const FunctionDecl*, bool> on_stack;
  std::vector<const FunctionDecl*> stack;
  std::uint32_t next = 0;

  struct Frame {
    const FunctionDecl* fn;
    std::size_t edge;
  };
  for (const auto& root_result : results_) {
    const FunctionDecl* root = root_result->fn;
    if (index.find(root) != index.end()) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::vector<const FunctionDecl*>& edges = callees_.find(frame.fn)->second;
      if (frame.edge < edges.size()) {
        const FunctionDecl* g = edges[frame.edge++];
        if (index.find(g) == index.end()) {
          index[g] = lowlink[g] = next++;
          stack.push_back(g);
          on_stack[g] = true;
          frames.push_back(Frame{g, 0});
        } else if (on_stack[g] && index[g] < lowlink[frame.fn]) {
          lowlink[frame.fn] = index[g];
        }
        continue;
      }
      const FunctionDecl* fn = frame.fn;
      frames.pop_back();
      if (!frames.empty() && lowlink[fn] < lowlink[frames.back().fn]) {
        lowlink[frames.back().fn] = lowlink[fn];
      }
      if (lowlink[fn] == index[fn]) {
        std::vector<const FunctionDecl*> scc;
        while (true) {
          const FunctionDecl* g = stack.back();
          stack.pop_back();
          on_stack[g] = false;
          scc.push_back(g);
          if (g == fn) break;
        }
        sccs.push_back(std::move(scc));
      }
    }
  }
  return sccs;
}

LabelSet Analyzer::instantiateSummary(const LabelSet& summary,
                                      const std::vector<LabelSet>& subst) const {
  LabelSet out;
  for (const LabelId id : summary) {
    if (id < placeholder_base_) {
      out.insert(id);
    } else {
      const std::size_t idx = id - placeholder_base_;
      if (idx < subst.size()) unionInto(out, subst[idx]);
    }
  }
  return out;
}

void Analyzer::transferStmt(const Stmt& stmt, TaintState& state) {
  ++stmt_visits_;
  switch (stmt.kind()) {
    case StmtKind::Decl: {
      for (const auto& var : static_cast<const DeclStmt&>(stmt).vars) {
        if (var->init == nullptr) continue;
        LabelSet labels = evalExpr(*var->init, state, /*effects=*/true);
        if (const auto sticky = sticky_.find(var.get()); sticky != sticky_.end()) {
          unionInto(labels, sticky->second);
        }
        if (!labels.empty()) {
          state.vars[var.get()] = labels;
          const std::string& object = varNameFor(*var);
          if (!summary_mode_ && trace_done_.insert(var.get()).second) {
            recordTrace(object, var->loc, traceTextFor(var.get(), object, var->init.get(), ""));
          }
          recordWrite(*var->init, object, /*is_field=*/false, "", labels, var->init.get(),
                      var->loc, BinaryOp::Assign);
        } else {
          state.vars[var.get()].clear();
        }
      }
      break;
    }
    case StmtKind::Expr:
      evalExpr(*static_cast<const ExprStmt&>(stmt).expr, state, /*effects=*/true);
      break;
    case StmtKind::Return: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value != nullptr && current_result_ != nullptr) {
        LabelSet labels = evalExpr(*ret.value, state, /*effects=*/true);
        if (summary_mode_) {
          if (summary_return_sink_ != nullptr && unionInto(*summary_return_sink_, labels)) {
            summary_changed_ = true;
          }
        } else {
          unionInto(current_result_->return_labels, labels);
          if (options_.inter_procedural) {
            LabelSet& summary = return_summaries_[current_fn_];
            if (unionInto(summary, labels)) bindings_changed_ = true;
          }
        }
      }
      break;
    }
    default:
      break;
  }
}

LabelSet Analyzer::labelsOf(const Expr& expr, const TaintState& state) const {
  // evalExpr with effects=false never mutates the state.
  auto* self = const_cast<Analyzer*>(this);
  return self->evalExpr(expr, const_cast<TaintState&>(state), /*effects=*/false);
}

LabelSet Analyzer::evalExpr(const Expr& expr, TaintState& state, bool effects) {
  switch (expr.kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::SizeofType:
      return {};

    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(expr);
      if (ref.decl == nullptr) return {};
      return state.varLabels(ref.decl);
    }

    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      return evalExpr(*u.operand, state, effects);
    }

    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (isAssignment(b.op)) {
        // Only the RHS labels are the *new* contribution of this write;
        // a compound assignment's old-value labels are already in the
        // state (weak update) and must not be attributed to this write
        // event, or every `features |= (flag ? MASK : 0)` would smear the
        // earlier flags onto later masks.
        LabelSet labels = evalExpr(*b.rhs, state, effects);
        if (effects) {
          assignTo(*b.lhs, b.rhs.get(), labels, b.op == BinaryOp::Assign, state, expr.loc, b.op);
        }
        if (b.op != BinaryOp::Assign) {
          // The expression's VALUE still depends on the old contents.
          unionInto(labels, evalExpr(*b.lhs, state, /*effects=*/false));
        }
        return labels;
      }
      LabelSet labels = evalExpr(*b.lhs, state, effects);
      unionInto(labels, evalExpr(*b.rhs, state, effects));
      return labels;
    }

    case ExprKind::Conditional: {
      // The value of `cond ? a : b` is strictly determined by the
      // condition, so the condition's labels flow to the result. This is
      // the one controlled implicit flow the analysis tracks; it is what
      // lets feature-flag parameters reach the feature bitmap through the
      // idiomatic `sb->s_feature_x |= (flag ? MASK : 0)`.
      const auto& c = static_cast<const ConditionalExpr&>(expr);
      LabelSet labels = evalExpr(*c.cond, state, effects);
      unionInto(labels, evalExpr(*c.then_expr, state, effects));
      unionInto(labels, evalExpr(*c.else_expr, state, effects));
      return labels;
    }

    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      LabelSet arg_labels;
      std::vector<LabelSet> per_arg;
      per_arg.reserve(call.args.size());
      for (const ExprPtr& a : call.args) {
        per_arg.push_back(evalExpr(*a, state, effects));
        unionInto(arg_labels, per_arg.back());
      }

      // Out-parameters: foo(&x, src) may write src's labels into x.
      if (effects) {
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          const Expr* a = call.args[i].get();
          if (a->kind() != ExprKind::Unary) continue;
          const auto& u = static_cast<const UnaryExpr&>(*a);
          if (u.op != UnaryOp::AddrOf) continue;
          LabelSet others;
          for (std::size_t j = 0; j < per_arg.size(); ++j) {
            if (j != i) unionInto(others, per_arg[j]);
          }
          if (!others.empty()) {
            assignTo(*u.operand, nullptr, others, /*strong=*/false, state, expr.loc);
          }
        }
      }

      if (options_.inter_procedural && call.callee_decl != nullptr &&
          call.callee_decl->isDefinition()) {
        const FunctionDecl* callee = call.callee_decl;
        if (summary_mode_) {
          // Symbolic phase: record the argument label sets flowing into
          // the callee's parameters (resolved to concrete entry bindings
          // later) and apply the callee's symbolic return summary with
          // its placeholders substituted by this call's arguments.
          if (by_fn_.find(callee) == by_fn_.end()) return arg_labels;
          if (effects) {
            auto& binds = sym_bind_[current_fn_];
            for (std::size_t i = 0; i < call.args.size() && i < callee->params.size(); ++i) {
              if (!per_arg[i].empty()) unionInto(binds[callee->params[i].get()], per_arg[i]);
            }
          }
          LabelSet labels = std::move(arg_labels);
          if (const auto it = sym_ret_.find(callee); it != sym_ret_.end()) {
            unionInto(labels, instantiateSummary(it->second, per_arg));
          }
          return labels;
        }
        if (effects) {
          TaintState& binding = entry_bindings_[callee];
          for (std::size_t i = 0; i < call.args.size() && i < callee->params.size(); ++i) {
            if (!per_arg[i].empty()) {
              if (unionInto(binding.vars[callee->params[i].get()], per_arg[i])) {
                bindings_changed_ = true;
              }
            }
          }
        }
        LabelSet labels = arg_labels;
        const auto summary = return_summaries_.find(callee);
        if (summary != return_summaries_.end()) unionInto(labels, summary->second);
        return labels;
      }
      return arg_labels;
    }

    case ExprKind::Member: {
      const auto& m = static_cast<const MemberExpr&>(expr);
      evalExpr(*m.base, state, effects);
      if (m.record == nullptr || m.field == nullptr) return {};
      const FieldKeyId key = fieldIdFor(m);
      LabelSet labels = state.fieldLabels(key);
      if (options_.field_bridging) {
        labels.insert(bridgeLabelFor(m, key));
      }
      return labels;
    }

    case ExprKind::Index: {
      const auto& i = static_cast<const IndexExpr&>(expr);
      evalExpr(*i.index, state, effects);
      return evalExpr(*i.base, state, effects);
    }

    case ExprKind::Cast:
      return evalExpr(*static_cast<const CastExpr&>(expr).operand, state, effects);

    case ExprKind::InitList: {
      LabelSet labels;
      for (const ExprPtr& e : static_cast<const InitListExpr&>(expr).elements) {
        unionInto(labels, evalExpr(*e, state, effects));
      }
      return labels;
    }
  }
  return {};
}

void Analyzer::assignTo(const Expr& lhs, const Expr* rhs, const LabelSet& labels, bool strong,
                        TaintState& state, SourceLoc loc, BinaryOp op) {
  switch (lhs.kind()) {
    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(lhs);
      if (ref.decl == nullptr) return;
      LabelSet merged = labels;
      if (const auto sticky = sticky_.find(ref.decl); sticky != sticky_.end()) {
        unionInto(merged, sticky->second);
      }
      if (strong) {
        state.vars[ref.decl] = merged;
      } else {
        unionInto(state.vars[ref.decl], merged);
      }
      if (!merged.empty()) {
        const std::string& object = varNameFor(*ref.decl);
        if (!summary_mode_ && trace_done_.insert(&lhs).second) {
          recordTrace(object, loc, traceTextFor(&lhs, object, rhs, "<call out-param>"));
        }
        recordWrite(lhs, object, /*is_field=*/false, "", merged, rhs, loc, op);
      }
      break;
    }
    case ExprKind::Member: {
      const auto& m = static_cast<const MemberExpr&>(lhs);
      if (m.record == nullptr || m.field == nullptr) return;
      const FieldKeyId id = fieldIdFor(m);
      // Fields are object-insensitive: always a weak update.
      unionInto(state.fields[id], labels);
      if (!summary_mode_) unionInto(field_writes_[id], labels);
      if (!labels.empty()) {
        const std::string& key = field_keys_.key(id);
        if (!summary_mode_ && trace_done_.insert(&lhs).second) {
          recordTrace(key, loc, traceTextFor(&lhs, key, rhs, "<expr>"));
        }
        recordWrite(lhs, key, /*is_field=*/true, key, labels, rhs, loc, op);
      }
      break;
    }
    case ExprKind::Index: {
      const auto& i = static_cast<const IndexExpr&>(lhs);
      assignTo(*i.base, rhs, labels, /*strong=*/false, state, loc, op);
      break;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(lhs);
      if (u.op == UnaryOp::Deref || u.op == UnaryOp::AddrOf) {
        assignTo(*u.operand, rhs, labels, /*strong=*/false, state, loc, op);
      }
      break;
    }
    case ExprKind::Cast:
      assignTo(*static_cast<const CastExpr&>(lhs).operand, rhs, labels, strong, state, loc, op);
      break;
    default:
      break;
  }
}

void Analyzer::recordTrace(const std::string& object, SourceLoc loc, const std::string& text) {
  if (summary_mode_) return;  // symbolic sweeps observe no traces
  std::vector<TraceStep>& trace = traces_[object];
  if (trace.size() >= options_.max_trace_steps) return;
  // Skip exact duplicates produced by fixpoint re-iteration.
  for (const TraceStep& step : trace) {
    if (step.loc == loc && step.text == text) return;
  }
  trace.push_back(TraceStep{loc, text});
}

void Analyzer::recordWrite(const Expr& assign, const std::string& object, bool is_field,
                           const std::string& field_key, const LabelSet& labels, const Expr* rhs,
                           SourceLoc loc, BinaryOp op) {
  if (summary_mode_) return;  // symbolic label sets are not write events
  WriteEvent& event = writes_[&assign];
  if (event.assign == nullptr) {
    event.fn = current_fn_;
    event.assign = &assign;
    event.loc = loc;
    event.object = object;
    event.is_field = is_field;
    event.field_key = field_key;
    event.rhs = rhs;
    event.op = op;
    if (rhs != nullptr && rhs->kind() == ExprKind::Call) {
      event.rhs_callee = static_cast<const CallExpr*>(rhs)->callee;
    }
  }
  unionInto(event.labels, labels);
}

std::vector<const WriteEvent*> Analyzer::writeEvents() const {
  std::vector<const WriteEvent*> out;
  out.reserve(writes_.size());
  for (const auto& [expr, event] : writes_) out.push_back(&event);
  std::sort(out.begin(), out.end(), [](const WriteEvent* a, const WriteEvent* b) {
    if (a->loc.file.value != b->loc.file.value) return a->loc.file.value < b->loc.file.value;
    if (a->loc.line != b->loc.line) return a->loc.line < b->loc.line;
    return a->loc.column < b->loc.column;
  });
  return out;
}

const std::vector<TraceStep>* Analyzer::traceFor(const std::string& object) const {
  const auto it = traces_.find(object);
  return it != traces_.end() ? &it->second : nullptr;
}

const FunctionTaint* Analyzer::resultFor(const FunctionDecl* fn) const {
  const auto it = by_fn_.find(fn);
  return it != by_fn_.end() ? it->second : nullptr;
}

const FunctionTaint* Analyzer::resultFor(std::string_view function_name) const {
  for (const auto& r : results_) {
    if (r->fn->name == function_name) return r.get();
  }
  return nullptr;
}

}  // namespace fsdep::taint
