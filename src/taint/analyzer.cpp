#include "taint/analyzer.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsdep::taint {

using namespace ast;

Analyzer::Analyzer(const TranslationUnit& tu, const sema::Sema& sema, AnalysisOptions options)
    : tu_(tu), sema_(sema), options_(options) {}

FieldKeyId Analyzer::fieldIdFor(const MemberExpr& m) const {
  const auto memo = field_id_memo_.find(m.field);
  if (memo != field_id_memo_.end()) return memo->second;
  const FieldKeyId id = field_keys_.intern(m.record->name, m.field->name);
  field_id_memo_.emplace(m.field, id);
  return id;
}

LabelId Analyzer::bridgeLabelFor(const MemberExpr& m, FieldKeyId key) const {
  constexpr LabelId kUnset = static_cast<LabelId>(-1);
  if (key >= bridge_label_memo_.size()) bridge_label_memo_.resize(key + 1, kUnset);
  if (bridge_label_memo_[key] == kUnset) {
    bridge_label_memo_[key] = labels_.internField(m.record->name, m.field->name);
  }
  return bridge_label_memo_[key];
}

std::map<std::string, LabelSet> Analyzer::fieldWrites() const {
  std::map<std::string, LabelSet> out;
  for (const auto& [id, labels] : field_writes_) out.emplace(field_keys_.key(id), labels);
  return out;
}

void Analyzer::addSeed(Seed seed) { seeds_.push_back(std::move(seed)); }

const VarDecl* Analyzer::findVarInFunction(const FunctionDecl& fn, std::string_view name) const {
  for (const auto& p : fn.params) {
    if (p->name == name) return p.get();
  }
  // Walk the body for local declarations.
  const VarDecl* found = nullptr;
  // Simple recursive lambda over statements.
  auto walk = [&](auto&& self, const Stmt& stmt) -> void {
    if (found != nullptr) return;
    switch (stmt.kind()) {
      case StmtKind::Compound:
        for (const StmtPtr& s : static_cast<const CompoundStmt&>(stmt).body) self(self, *s);
        break;
      case StmtKind::Decl:
        for (const auto& v : static_cast<const DeclStmt&>(stmt).vars) {
          if (v->name == name) {
            found = v.get();
            return;
          }
        }
        break;
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        self(self, *s.then_stmt);
        if (s.else_stmt != nullptr) self(self, *s.else_stmt);
        break;
      }
      case StmtKind::While: self(self, *static_cast<const WhileStmt&>(stmt).body); break;
      case StmtKind::DoWhile: self(self, *static_cast<const DoWhileStmt&>(stmt).body); break;
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        if (s.init != nullptr) self(self, *s.init);
        self(self, *s.body);
        break;
      }
      case StmtKind::Switch:
        for (const auto& c : static_cast<const SwitchStmt&>(stmt).cases) self(self, *c);
        break;
      case StmtKind::Case:
        for (const StmtPtr& b : static_cast<const CaseStmt&>(stmt).body) self(self, *b);
        break;
      default:
        break;
    }
  };
  if (fn.body != nullptr) walk(walk, *fn.body);
  if (found != nullptr) return found;
  // Fall back to a global of that name.
  return tu_.findGlobal(name);
}

std::string Analyzer::describeVar(const VarDecl& var) const {
  if (var.owner != nullptr) return var.owner->name + "." + var.name;
  return var.name;
}

void Analyzer::seedEntryState(const FunctionDecl& fn, TaintState& state) {
  for (const Seed& seed : seeds_) {
    if (seed.function != fn.name) continue;
    const VarDecl* var = findVarInFunction(fn, seed.variable);
    if (var == nullptr) continue;
    const LabelId label = labels_.internParam(seed.param);
    state.vars[var].insert(label);
    sticky_[var].insert(label);
    recordTrace(describeVar(*var), var->loc, "seed: carries " + seed.param);
  }
  if (options_.inter_procedural) {
    const auto it = entry_bindings_.find(&fn);
    if (it != entry_bindings_.end()) state.mergeFrom(it->second);
  }
}

void Analyzer::run(const std::vector<const FunctionDecl*>& functions) {
  std::vector<const FunctionDecl*> fns = functions;
  if (fns.empty()) fns = tu_.functions();

  results_.clear();
  by_fn_.clear();
  field_writes_.clear();
  traces_.clear();
  writes_.clear();
  sticky_.clear();
  entry_bindings_.clear();
  return_summaries_.clear();
  merge_calls_ = 0;
  merge_grew_ = 0;

  for (const FunctionDecl* fn : fns) {
    if (fn == nullptr || !fn->isDefinition()) continue;
    auto result = std::make_unique<FunctionTaint>();
    result->fn = fn;
    result->cfg = cfg::Cfg::build(*fn);
    by_fn_[fn] = result.get();
    results_.push_back(std::move(result));
  }

  const int passes = options_.inter_procedural ? options_.max_global_passes : 1;
  for (int pass = 0; pass < passes; ++pass) {
    bindings_changed_ = false;
    for (const auto& result : results_) {
      current_fn_ = result->fn;
      current_result_ = result.get();
      analyzeFunction(*result);
    }
    current_fn_ = nullptr;
    current_result_ = nullptr;
    if (!bindings_changed_) break;
  }
}

void Analyzer::analyzeFunction(FunctionTaint& result) {
  obs::Span span("taint", "fixpoint");
  span.arg("function", result.fn->name);
  const cfg::Cfg& cfg = *result.cfg;
  result.block_entry.assign(cfg.size(), TaintState{});
  result.at_condition.assign(cfg.size(), TaintState{});

  TaintState entry;
  seedEntryState(*result.fn, entry);
  result.block_entry[cfg.entry()] = std::move(entry);

  const std::vector<cfg::BlockId> order = cfg.reversePostOrder();
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 64) {
    changed = false;
    for (const cfg::BlockId id : order) {
      const cfg::BasicBlock& block = cfg.block(id);
      TaintState state = result.block_entry[id];
      for (const Stmt* s : block.stmts) transferStmt(*s, state);
      if (block.inc_expr != nullptr) evalExpr(*block.inc_expr, state, /*effects=*/true);
      if (block.condition != nullptr) {
        result.at_condition[id] = state;
        evalExpr(*block.condition, state, /*effects=*/true);
      }
      for (const cfg::Edge& e : block.successors) {
        const bool grew = result.block_entry[e.target].mergeFrom(state);
        ++merge_calls_;
        merge_grew_ += grew ? 1 : 0;
        changed |= grew;
      }
    }
  }
  // `iterations` counts sweeps over the CFG until nothing grew (or the
  // safety valve tripped); the histogram shows how close functions sit
  // to the 64-sweep cap.
  static obs::Histogram& fixpoint_iterations = obs::Registry::global().histogram(
      "taint.fixpoint_iterations", {}, {1, 2, 3, 4, 6, 8, 16, 32, 64});
  fixpoint_iterations.observe(static_cast<std::uint64_t>(iterations));
  span.arg("iterations", static_cast<std::uint64_t>(iterations));

  // Publish the union of the post-statement states at the exits (the
  // record/trace side effects are idempotent, so replaying is safe).
  result.exit_state = TaintState{};
  for (const cfg::BlockId id : order) {
    const cfg::BasicBlock& block = cfg.block(id);
    if (!block.is_exit) continue;
    TaintState state = result.block_entry[id];
    for (const Stmt* s : block.stmts) transferStmt(*s, state);
    result.exit_state.mergeFrom(state);
  }
}

void Analyzer::transferStmt(const Stmt& stmt, TaintState& state) {
  switch (stmt.kind()) {
    case StmtKind::Decl: {
      for (const auto& var : static_cast<const DeclStmt&>(stmt).vars) {
        if (var->init == nullptr) continue;
        LabelSet labels = evalExpr(*var->init, state, /*effects=*/true);
        if (const auto sticky = sticky_.find(var.get()); sticky != sticky_.end()) {
          unionInto(labels, sticky->second);
        }
        if (!labels.empty()) {
          state.vars[var.get()] = labels;
          const std::string object = describeVar(*var);
          recordTrace(object, var->loc, object + " <- " + exprToString(*var->init));
          recordWrite(*var->init, object, /*is_field=*/false, "", labels, var->init.get(),
                      var->loc, BinaryOp::Assign);
        } else {
          state.vars[var.get()].clear();
        }
      }
      break;
    }
    case StmtKind::Expr:
      evalExpr(*static_cast<const ExprStmt&>(stmt).expr, state, /*effects=*/true);
      break;
    case StmtKind::Return: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value != nullptr && current_result_ != nullptr) {
        LabelSet labels = evalExpr(*ret.value, state, /*effects=*/true);
        unionInto(current_result_->return_labels, labels);
        if (options_.inter_procedural) {
          LabelSet& summary = return_summaries_[current_fn_];
          if (unionInto(summary, labels)) bindings_changed_ = true;
        }
      }
      break;
    }
    default:
      break;
  }
}

LabelSet Analyzer::labelsOf(const Expr& expr, const TaintState& state) const {
  // evalExpr with effects=false never mutates the state.
  auto* self = const_cast<Analyzer*>(this);
  return self->evalExpr(expr, const_cast<TaintState&>(state), /*effects=*/false);
}

LabelSet Analyzer::evalExpr(const Expr& expr, TaintState& state, bool effects) {
  switch (expr.kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::SizeofType:
      return {};

    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(expr);
      if (ref.decl == nullptr) return {};
      return state.varLabels(ref.decl);
    }

    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      return evalExpr(*u.operand, state, effects);
    }

    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (isAssignment(b.op)) {
        // Only the RHS labels are the *new* contribution of this write;
        // a compound assignment's old-value labels are already in the
        // state (weak update) and must not be attributed to this write
        // event, or every `features |= (flag ? MASK : 0)` would smear the
        // earlier flags onto later masks.
        LabelSet labels = evalExpr(*b.rhs, state, effects);
        if (effects) {
          assignTo(*b.lhs, b.rhs.get(), labels, b.op == BinaryOp::Assign, state, expr.loc, b.op);
        }
        if (b.op != BinaryOp::Assign) {
          // The expression's VALUE still depends on the old contents.
          unionInto(labels, evalExpr(*b.lhs, state, /*effects=*/false));
        }
        return labels;
      }
      LabelSet labels = evalExpr(*b.lhs, state, effects);
      unionInto(labels, evalExpr(*b.rhs, state, effects));
      return labels;
    }

    case ExprKind::Conditional: {
      // The value of `cond ? a : b` is strictly determined by the
      // condition, so the condition's labels flow to the result. This is
      // the one controlled implicit flow the analysis tracks; it is what
      // lets feature-flag parameters reach the feature bitmap through the
      // idiomatic `sb->s_feature_x |= (flag ? MASK : 0)`.
      const auto& c = static_cast<const ConditionalExpr&>(expr);
      LabelSet labels = evalExpr(*c.cond, state, effects);
      unionInto(labels, evalExpr(*c.then_expr, state, effects));
      unionInto(labels, evalExpr(*c.else_expr, state, effects));
      return labels;
    }

    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      LabelSet arg_labels;
      std::vector<LabelSet> per_arg;
      per_arg.reserve(call.args.size());
      for (const ExprPtr& a : call.args) {
        per_arg.push_back(evalExpr(*a, state, effects));
        unionInto(arg_labels, per_arg.back());
      }

      // Out-parameters: foo(&x, src) may write src's labels into x.
      if (effects) {
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          const Expr* a = call.args[i].get();
          if (a->kind() != ExprKind::Unary) continue;
          const auto& u = static_cast<const UnaryExpr&>(*a);
          if (u.op != UnaryOp::AddrOf) continue;
          LabelSet others;
          for (std::size_t j = 0; j < per_arg.size(); ++j) {
            if (j != i) unionInto(others, per_arg[j]);
          }
          if (!others.empty()) {
            assignTo(*u.operand, nullptr, others, /*strong=*/false, state, expr.loc);
          }
        }
      }

      if (options_.inter_procedural && call.callee_decl != nullptr &&
          call.callee_decl->isDefinition()) {
        const FunctionDecl* callee = call.callee_decl;
        if (effects) {
          TaintState& binding = entry_bindings_[callee];
          for (std::size_t i = 0; i < call.args.size() && i < callee->params.size(); ++i) {
            if (!per_arg[i].empty()) {
              if (unionInto(binding.vars[callee->params[i].get()], per_arg[i])) {
                bindings_changed_ = true;
              }
            }
          }
        }
        LabelSet labels = arg_labels;
        const auto summary = return_summaries_.find(callee);
        if (summary != return_summaries_.end()) unionInto(labels, summary->second);
        return labels;
      }
      return arg_labels;
    }

    case ExprKind::Member: {
      const auto& m = static_cast<const MemberExpr&>(expr);
      evalExpr(*m.base, state, effects);
      if (m.record == nullptr || m.field == nullptr) return {};
      const FieldKeyId key = fieldIdFor(m);
      LabelSet labels = state.fieldLabels(key);
      if (options_.field_bridging) {
        labels.insert(bridgeLabelFor(m, key));
      }
      return labels;
    }

    case ExprKind::Index: {
      const auto& i = static_cast<const IndexExpr&>(expr);
      evalExpr(*i.index, state, effects);
      return evalExpr(*i.base, state, effects);
    }

    case ExprKind::Cast:
      return evalExpr(*static_cast<const CastExpr&>(expr).operand, state, effects);

    case ExprKind::InitList: {
      LabelSet labels;
      for (const ExprPtr& e : static_cast<const InitListExpr&>(expr).elements) {
        unionInto(labels, evalExpr(*e, state, effects));
      }
      return labels;
    }
  }
  return {};
}

void Analyzer::assignTo(const Expr& lhs, const Expr* rhs, const LabelSet& labels, bool strong,
                        TaintState& state, SourceLoc loc, BinaryOp op) {
  switch (lhs.kind()) {
    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(lhs);
      if (ref.decl == nullptr) return;
      LabelSet merged = labels;
      if (const auto sticky = sticky_.find(ref.decl); sticky != sticky_.end()) {
        unionInto(merged, sticky->second);
      }
      if (strong) {
        state.vars[ref.decl] = merged;
      } else {
        unionInto(state.vars[ref.decl], merged);
      }
      if (!merged.empty()) {
        const std::string object = describeVar(*ref.decl);
        recordTrace(object, loc,
                    object + " <- " + (rhs != nullptr ? exprToString(*rhs) : "<call out-param>"));
        recordWrite(lhs, object, /*is_field=*/false, "", merged, rhs, loc, op);
      }
      break;
    }
    case ExprKind::Member: {
      const auto& m = static_cast<const MemberExpr&>(lhs);
      if (m.record == nullptr || m.field == nullptr) return;
      const FieldKeyId id = fieldIdFor(m);
      // Fields are object-insensitive: always a weak update.
      unionInto(state.fields[id], labels);
      unionInto(field_writes_[id], labels);
      if (!labels.empty()) {
        const std::string& key = field_keys_.key(id);
        recordTrace(key, loc, key + " <- " + (rhs != nullptr ? exprToString(*rhs) : "<expr>"));
        recordWrite(lhs, key, /*is_field=*/true, key, labels, rhs, loc, op);
      }
      break;
    }
    case ExprKind::Index: {
      const auto& i = static_cast<const IndexExpr&>(lhs);
      assignTo(*i.base, rhs, labels, /*strong=*/false, state, loc, op);
      break;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(lhs);
      if (u.op == UnaryOp::Deref || u.op == UnaryOp::AddrOf) {
        assignTo(*u.operand, rhs, labels, /*strong=*/false, state, loc, op);
      }
      break;
    }
    case ExprKind::Cast:
      assignTo(*static_cast<const CastExpr&>(lhs).operand, rhs, labels, strong, state, loc, op);
      break;
    default:
      break;
  }
}

void Analyzer::recordTrace(const std::string& object, SourceLoc loc, std::string text) {
  std::vector<TraceStep>& trace = traces_[object];
  if (trace.size() >= options_.max_trace_steps) return;
  // Skip exact duplicates produced by fixpoint re-iteration.
  for (const TraceStep& step : trace) {
    if (step.loc == loc && step.text == text) return;
  }
  trace.push_back(TraceStep{loc, std::move(text)});
}

void Analyzer::recordWrite(const Expr& assign, const std::string& object, bool is_field,
                           const std::string& field_key, const LabelSet& labels, const Expr* rhs,
                           SourceLoc loc, BinaryOp op) {
  WriteEvent& event = writes_[&assign];
  if (event.assign == nullptr) {
    event.fn = current_fn_;
    event.assign = &assign;
    event.loc = loc;
    event.object = object;
    event.is_field = is_field;
    event.field_key = field_key;
    event.rhs = rhs;
    event.op = op;
    if (rhs != nullptr && rhs->kind() == ExprKind::Call) {
      event.rhs_callee = static_cast<const CallExpr*>(rhs)->callee;
    }
  }
  unionInto(event.labels, labels);
}

std::vector<const WriteEvent*> Analyzer::writeEvents() const {
  std::vector<const WriteEvent*> out;
  out.reserve(writes_.size());
  for (const auto& [expr, event] : writes_) out.push_back(&event);
  std::sort(out.begin(), out.end(), [](const WriteEvent* a, const WriteEvent* b) {
    if (a->loc.file.value != b->loc.file.value) return a->loc.file.value < b->loc.file.value;
    if (a->loc.line != b->loc.line) return a->loc.line < b->loc.line;
    return a->loc.column < b->loc.column;
  });
  return out;
}

const std::vector<TraceStep>* Analyzer::traceFor(const std::string& object) const {
  const auto it = traces_.find(object);
  return it != traces_.end() ? &it->second : nullptr;
}

const FunctionTaint* Analyzer::resultFor(const FunctionDecl* fn) const {
  const auto it = by_fn_.find(fn);
  return it != by_fn_.end() ? it->second : nullptr;
}

const FunctionTaint* Analyzer::resultFor(std::string_view function_name) const {
  for (const auto& r : results_) {
    if (r->fn->name == function_name) return r.get();
  }
  return nullptr;
}

}  // namespace fsdep::taint
