// Bump-pointer arena for the analysis data structures (AST nodes, CFG
// basic blocks, per-function taint results). One owner — a
// TranslationUnit, a Cfg, an Analyzer run — allocates many small nodes,
// then frees them all at once: exactly the lifetime the pipeline has, and
// exactly what malloc-per-node wastes time on at amplified-corpus scale.
//
// Lifetime rules (see DESIGN §10):
//   * The arena only hands out raw storage; object destructors still run,
//     via ArenaPtr (std::unique_ptr with a destroy-only deleter).
//   * The arena must outlive every ArenaPtr into it. Owners declare the
//     arena as their *first* member so it is destroyed last.
//   * There is no per-object free: memory is reclaimed by reset() (when
//     no arena object is alive) or by destroying the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace fsdep {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockSize = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Raw storage of `size` bytes aligned to `align`. Never returns null;
  /// grows by whole blocks (oversized requests get a dedicated block).
  void* allocate(std::size_t size, std::size_t align) {
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || offset + size > blocks_.back().size) {
      const std::size_t block_size = size > kDefaultBlockSize ? size : kDefaultBlockSize;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(block_size), block_size});
      offset = 0;
    }
    used_ = offset + size;
    total_used_ += size;
    return blocks_.back().data.get() + offset;
  }

  /// Constructs a T in the arena. The caller owns the object's lifetime
  /// (wrap it in an ArenaPtr so its destructor runs); the storage is the
  /// arena's until reset() or destruction.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Drops every block but the first and rewinds it. Only legal when no
  /// object allocated from this arena is still alive.
  void reset() {
    if (blocks_.size() > 1) blocks_.erase(blocks_.begin() + 1, blocks_.end());
    used_ = 0;
    total_used_ = 0;
  }

  [[nodiscard]] std::size_t blockCount() const { return blocks_.size(); }
  [[nodiscard]] std::size_t bytesUsed() const { return total_used_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  std::vector<Block> blocks_;
  std::size_t used_ = 0;        ///< bump offset within blocks_.back()
  std::size_t total_used_ = 0;  ///< bytes handed out since last reset
};

/// Deleter that runs the destructor but returns no memory — the arena
/// owns the storage. unique_ptr semantics (moves, resets, conversions
/// derived->base) are unchanged.
struct ArenaDelete {
  template <typename T>
  void operator()(T* p) const noexcept {
    if (p != nullptr) p->~T();
  }
};

/// Owning pointer to an arena-allocated object.
template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDelete>;

}  // namespace fsdep
