// SourceManager owns the text of every file the frontend looks at and maps
// FileIds back to names and contents. Files may come from disk or from the
// embedded corpus; the manager does not care.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace fsdep {

class SourceManager {
 public:
  /// Registers a buffer under `name` and returns its id. The buffer is
  /// copied; callers need not keep it alive.
  FileId addBuffer(std::string name, std::string contents);

  /// Returns the id of a previously registered file, or an invalid id.
  [[nodiscard]] FileId findByName(std::string_view name) const;

  [[nodiscard]] std::string_view name(FileId id) const;
  [[nodiscard]] std::string_view contents(FileId id) const;
  [[nodiscard]] std::size_t fileCount() const { return files_.size(); }

  /// Returns the text of line `line` (1-based) without the trailing newline,
  /// or an empty view when out of range. Used for diagnostics rendering.
  [[nodiscard]] std::string_view lineText(FileId id, std::uint32_t line) const;

 private:
  struct File {
    std::string name;
    std::string contents;
    std::vector<std::size_t> line_offsets;  // offset of each line start
  };
  std::vector<File> files_;
};

/// Renders "name:line:col" for error messages.
std::string formatLoc(const SourceManager& sm, SourceLoc loc);

}  // namespace fsdep
