#include "support/diagnostics.h"

#include "support/source_manager.h"

namespace fsdep {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

std::string DiagnosticEngine::render(const SourceManager& sm) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += formatLoc(sm, d.loc);
    out += ": ";
    out += severityName(d.severity);
    out += ": ";
    out += d.message;
    out += '\n';
    if (d.loc.valid()) {
      std::string_view line = sm.lineText(d.loc.file, d.loc.line);
      if (!line.empty()) {
        out += "  ";
        out += line;
        out += "\n  ";
        for (std::uint32_t i = 1; i < d.loc.column; ++i) out += ' ';
        out += "^\n";
      }
    }
  }
  return out;
}

}  // namespace fsdep
