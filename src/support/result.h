// A minimal expected-style result type used at tool boundaries where a
// failure is an ordinary outcome (file not found, parse failed) rather than
// a programming error. Exceptions remain for invariant violations.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace fsdep {

struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(data_));
  }
  [[nodiscard]] const Error& error() const {
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

inline Error makeError(std::string message) { return Error{std::move(message)}; }

}  // namespace fsdep
