#include "support/thread_pool.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsdep {

namespace {

/// Wraps a queued job so the trace shows, per worker, how long the task
/// sat in the queue ("queue-wait") and how long it ran ("task-run").
/// The queue-wait histogram is recorded even without tracing — two
/// clock reads per *task* (not per item; parallelFor enqueues one task
/// per worker slot), which is noise next to any real workload.
std::function<void()> instrumented(std::function<void()> job) {
  static obs::Histogram& queue_wait_us = obs::Registry::global().histogram(
      "threadpool.queue_wait_us", {}, {10, 100, 1000, 10000, 100000, 1000000});
  static obs::Counter& tasks = obs::Registry::global().counter("threadpool.tasks");
  const std::uint64_t enqueue_us = obs::Trace::nowMicros();
  return [enqueue_us, job = std::move(job)]() {
    const std::uint64_t start_us = obs::Trace::nowMicros();
    queue_wait_us.observe(start_us >= enqueue_us ? start_us - enqueue_us : 0);
    tasks.add();
    if (obs::Trace::enabled()) {
      obs::TraceEvent wait;
      wait.phase = obs::TraceEvent::Phase::Complete;
      wait.category = "threadpool";
      wait.name = "queue-wait";
      wait.ts_us = enqueue_us;
      wait.dur_us = start_us >= enqueue_us ? start_us - enqueue_us : 0;
      obs::Trace::emit(std::move(wait));
    }
    obs::Span run("threadpool", "task-run");
    job();
  };
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  thread_count_ = threads == 0 ? defaultJobs() : threads;
  // The submitting thread drains the queue inside wait(), so a pool of
  // size N needs only N-1 background workers.
  workers_.reserve(thread_count_ > 0 ? thread_count_ - 1 : 0);
  for (std::size_t i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    // Single-threaded pool: run inline, no queue, no locks to speak of.
    ++in_flight_;
    job();
    --in_flight_;
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(instrumented(std::move(job)));
  }
  work_ready_.notify_one();
}

bool ThreadPool::runOneJob(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> job = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  lock.unlock();
  job();
  lock.lock();
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  return true;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (runOneJob(lock)) continue;
    if (shutting_down_) return;
    work_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
  }
}

void ThreadPool::wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  // Help drain, then wait for stragglers running on the workers.
  while (runOneJob(lock)) {
  }
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::defaultJobs() {
  if (const char* env = std::getenv("FSDEP_JOBS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;            // guarded by g_pool_mu
std::size_t g_jobs = 0;                        // 0 = defaultJobs()
}  // namespace

ThreadPool& ThreadPool::global() {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  const std::size_t want = g_jobs == 0 ? defaultJobs() : g_jobs;
  if (g_pool == nullptr || g_pool->threadCount() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

void ThreadPool::setGlobalJobs(std::size_t jobs) {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  g_jobs = jobs;
  // The pool itself is (re)built lazily by the next global() call; an
  // existing pool of the wrong size is only replaced when nothing runs,
  // which is guaranteed because global() callers serialize on wait().
  if (g_pool != nullptr && jobs != 0 && g_pool->threadCount() != jobs) {
    g_pool.reset();
  }
}

std::size_t ThreadPool::globalJobs() {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_jobs == 0 ? defaultJobs() : g_jobs;
}

}  // namespace fsdep
