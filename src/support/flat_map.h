// A sorted struct-of-arrays map: the taint hot loop replaces std::map
// node churn with binary search over contiguous buffers. Keys are cheap
// to compare (pointers, interned ids) and live in their own dense array,
// so the merge prepass — the scan deciding which keys are new — streams
// key words only, never the (larger) LabelSet payloads interleaved
// between them. Values sit in a parallel array at the same index.
// Iteration is in key order, so everything downstream stays
// deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace fsdep {

template <typename Key, typename Value>
class FlatMap {
 public:
  /// Iterators yield a {first, second} reference pair, so range-for with
  /// structured bindings and `it->second` read exactly like the
  /// array-of-pairs layout they replaced.
  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    struct reference {
      const Key& first;
      std::conditional_t<Const, const Value&, Value&> second;
    };
    struct pointer {
      reference ref;
      reference* operator->() { return &ref; }
    };

    Iter(Map* map, std::size_t index) : map_(map), index_(index) {}
    reference operator*() const { return reference{map_->keys_[index_], map_->values_[index_]}; }
    pointer operator->() const { return pointer{**this}; }
    Iter& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const Iter& other) const { return index_ == other.index_; }
    [[nodiscard]] std::size_t index() const { return index_; }

   private:
    Map* map_;
    std::size_t index_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  /// std::map-style: inserts a default Value when the key is absent.
  Value& operator[](const Key& key) {
    const std::size_t i = lowerBound(key);
    if (i < keys_.size() && keys_[i] == key) return values_[i];
    keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(i), key);
    return *values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(i), Value{});
  }

  [[nodiscard]] const_iterator find(const Key& key) const {
    const std::size_t i = lowerBound(key);
    return i < keys_.size() && keys_[i] == key ? const_iterator(this, i) : end();
  }
  [[nodiscard]] iterator find(const Key& key) {
    const std::size_t i = lowerBound(key);
    return i < keys_.size() && keys_[i] == key ? iterator(this, i) : end();
  }

  [[nodiscard]] bool contains(const Key& key) const { return find(key) != end(); }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, keys_.size()); }
  [[nodiscard]] const_iterator begin() const { return const_iterator(this, 0); }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, keys_.size()); }

  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  void clear() {
    keys_.clear();
    values_.clear();
  }
  void reserve(std::size_t n) {
    keys_.reserve(n);
    values_.reserve(n);
  }

  /// The dense sorted key array (index-parallel with values()).
  [[nodiscard]] const std::vector<Key>& keys() const { return keys_; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  bool operator==(const FlatMap& other) const {
    return keys_ == other.keys_ && values_ == other.values_;
  }

  /// Pointwise merge: for every entry of `other`, merge(value, theirs)
  /// when the key exists here, else copy it in. One linear walk over both
  /// sorted key arrays — no per-key binary searches, and no payload
  /// traffic until a key actually needs merging. `merge` returns true
  /// when the destination value changed; a copied-in entry counts as a
  /// change exactly when `grew(copy)` says so (an empty LabelSet copied
  /// in preserves equality semantics but is not growth).
  template <typename Merge, typename Grew>
  bool mergeFrom(const FlatMap& other, Merge&& merge, Grew&& grew) {
    if (other.keys_.empty()) return false;
    bool changed = false;
    // Count the keys missing here so one reallocation fits the result;
    // this scan touches only the two dense key arrays.
    std::size_t missing = 0;
    {
      std::size_t a = 0;
      for (const Key& b : other.keys_) {
        while (a < keys_.size() && keys_[a] < b) ++a;
        if (a == keys_.size() || b < keys_[a]) ++missing;
      }
    }
    if (missing > 0) reserve(keys_.size() + missing);
    std::size_t a = 0;
    for (std::size_t b = 0; b < other.keys_.size(); ++b) {
      const Key& bk = other.keys_[b];
      while (a < keys_.size() && keys_[a] < bk) ++a;
      if (a < keys_.size() && keys_[a] == bk) {
        changed |= merge(values_[a], other.values_[b]);
      } else {
        keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(a), bk);
        values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(a), other.values_[b]);
        changed |= grew(other.values_[b]);
      }
      ++a;
    }
    return changed;
  }

 private:
  [[nodiscard]] std::size_t lowerBound(const Key& key) const {
    return static_cast<std::size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
  }

  std::vector<Key> keys_;
  std::vector<Value> values_;
};

}  // namespace fsdep
