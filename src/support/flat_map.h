// A sorted-vector map: the taint hot loop replaces std::map node churn
// with binary search over one contiguous buffer. Keys are cheap to
// compare (pointers, interned ids), values are LabelSets; iteration is in
// key order, so everything downstream stays deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace fsdep {

template <typename Key, typename Value>
class FlatMap {
 public:
  using Entry = std::pair<Key, Value>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  /// std::map-style: inserts a default Value when the key is absent.
  Value& operator[](const Key& key) {
    const iterator it = lowerBound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, Entry{key, Value{}})->second;
  }

  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }

  [[nodiscard]] bool contains(const Key& key) const { return find(key) != end(); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  bool operator==(const FlatMap& other) const = default;

  /// Pointwise merge: for every entry of `other`, merge(value, theirs)
  /// when the key exists here, else copy it in. One linear walk over both
  /// sorted vectors — no per-key binary searches. `merge` returns true
  /// when the destination value changed; a copied-in entry counts as a
  /// change exactly when `grew(copy)` says so (an empty LabelSet copied
  /// in preserves equality semantics but is not growth).
  template <typename Merge, typename Grew>
  bool mergeFrom(const FlatMap& other, Merge&& merge, Grew&& grew) {
    if (other.entries_.empty()) return false;
    bool changed = false;
    // Count the keys missing here so one reallocation fits the result.
    std::size_t missing = 0;
    {
      const_iterator a = entries_.begin();
      for (const Entry& b : other.entries_) {
        while (a != entries_.end() && a->first < b.first) ++a;
        if (a == entries_.end() || b.first < a->first) ++missing;
      }
    }
    if (missing > 0) entries_.reserve(entries_.size() + missing);
    std::size_t a = 0;
    for (const Entry& b : other.entries_) {
      while (a < entries_.size() && entries_[a].first < b.first) ++a;
      if (a < entries_.size() && entries_[a].first == b.first) {
        changed |= merge(entries_[a].second, b.second);
      } else {
        entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(a), b);
        changed |= grew(b.second);
      }
      ++a;
    }
    return changed;
  }

 private:
  [[nodiscard]] iterator lowerBound(const Key& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, const Key& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lowerBound(const Key& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, const Key& k) { return e.first < k; });
  }

  std::vector<Entry> entries_;
};

}  // namespace fsdep
