// Source locations and ranges for the fsdep C-subset frontend.
//
// A SourceLoc identifies a (file, line, column) triple; FileId indexes into
// the SourceManager that owns the file contents. Locations are value types
// and cheap to copy.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace fsdep {

/// Opaque handle to a file registered with a SourceManager.
struct FileId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  [[nodiscard]] bool valid() const { return value != kInvalid; }
  friend auto operator<=>(FileId, FileId) = default;
};

/// A point in a source file. Lines and columns are 1-based; 0 means unknown.
struct SourceLoc {
  FileId file;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return file.valid() && line > 0; }
  friend auto operator<=>(const SourceLoc&, const SourceLoc&) = default;
};

/// A half-open range [begin, end) in one file.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] bool valid() const { return begin.valid(); }
  friend auto operator<=>(const SourceRange&, const SourceRange&) = default;
};

}  // namespace fsdep
