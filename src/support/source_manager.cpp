#include "support/source_manager.h"

#include <algorithm>

namespace fsdep {

FileId SourceManager::addBuffer(std::string name, std::string contents) {
  File f;
  f.name = std::move(name);
  f.contents = std::move(contents);
  f.line_offsets.push_back(0);
  for (std::size_t i = 0; i < f.contents.size(); ++i) {
    if (f.contents[i] == '\n') f.line_offsets.push_back(i + 1);
  }
  files_.push_back(std::move(f));
  return FileId{static_cast<std::uint32_t>(files_.size() - 1)};
}

FileId SourceManager::findByName(std::string_view name) const {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) return FileId{static_cast<std::uint32_t>(i)};
  }
  return FileId{};
}

std::string_view SourceManager::name(FileId id) const {
  if (!id.valid() || id.value >= files_.size()) return {};
  return files_[id.value].name;
}

std::string_view SourceManager::contents(FileId id) const {
  if (!id.valid() || id.value >= files_.size()) return {};
  return files_[id.value].contents;
}

std::string_view SourceManager::lineText(FileId id, std::uint32_t line) const {
  if (!id.valid() || id.value >= files_.size() || line == 0) return {};
  const File& f = files_[id.value];
  if (line > f.line_offsets.size()) return {};
  const std::size_t begin = f.line_offsets[line - 1];
  std::size_t end = (line < f.line_offsets.size()) ? f.line_offsets[line] : f.contents.size();
  while (end > begin && (f.contents[end - 1] == '\n' || f.contents[end - 1] == '\r')) --end;
  return std::string_view(f.contents).substr(begin, end - begin);
}

std::string formatLoc(const SourceManager& sm, SourceLoc loc) {
  if (!loc.valid()) return "<unknown>";
  std::string out(sm.name(loc.file));
  out += ':';
  out += std::to_string(loc.line);
  out += ':';
  out += std::to_string(loc.column);
  return out;
}

}  // namespace fsdep
