// A small work-queue thread pool for the analysis pipeline. Jobs are
// plain std::function<void()>; submit() enqueues, wait() drains. The
// pipeline layers parallelFor() on top: a shared atomic index hands out
// loop iterations to however many workers the pool owns, so results can
// be written into pre-sized slots and stay deterministic regardless of
// scheduling order.
//
// Thread count resolution (defaultJobs): the FSDEP_JOBS environment
// variable when set to a positive integer, else hardware_concurrency.
// A pool of size 1 never spawns threads — every job runs inline on the
// calling thread, which keeps single-core containers and --jobs 1 runs
// free of synchronization overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fsdep {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the submitting thread is the extra
  /// worker during wait()); 0 means defaultJobs().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Jobs must not throw past their own body; use
  /// parallelFor for exception-propagating loops.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished. The calling thread
  /// participates in draining the queue.
  void wait();

  [[nodiscard]] std::size_t threadCount() const { return thread_count_; }

  /// FSDEP_JOBS env var when a positive integer, else
  /// std::thread::hardware_concurrency() (minimum 1).
  static std::size_t defaultJobs();

  /// Process-wide pool, lazily constructed with globalJobs() threads.
  static ThreadPool& global();

  /// Overrides the size of the global pool (the CLI's --jobs flag).
  /// Takes effect on the next global() call; an already-built pool of a
  /// different size is replaced when idle.
  static void setGlobalJobs(std::size_t jobs);
  static std::size_t globalJobs();

  /// Runs fn(i) for every i in [0, n) across `jobs` workers of the
  /// global pool (serially when jobs <= 1 or n <= 1) and rethrows the
  /// first exception any iteration threw. Iterations are handed out by
  /// an atomic counter in chunks (~8 per worker), so amplified-corpus
  /// loops over thousands of small components pay one atomic operation
  /// per chunk instead of per iteration while keeping late-chunk
  /// stealing for load balance; fn must tolerate any execution order.
  template <typename Fn>
  static void parallelFor(std::size_t n, std::size_t jobs, Fn&& fn);

 private:
  void workerLoop();
  bool runOneJob(std::unique_lock<std::mutex>& lock);

  std::size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

template <typename Fn>
void ThreadPool::parallelFor(std::size_t n, std::size_t jobs, Fn&& fn) {
  if (jobs == 0) jobs = globalJobs();
  if (n <= 1 || jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = global();
  std::shared_ptr<std::atomic<std::size_t>> next =
      std::make_shared<std::atomic<std::size_t>>(0);
  std::shared_ptr<std::mutex> err_mu = std::make_shared<std::mutex>();
  std::shared_ptr<std::exception_ptr> first_error = std::make_shared<std::exception_ptr>();

  const std::size_t tasks = jobs < n ? jobs : n;
  // ~8 chunks per worker: coarse enough that the shared counter is cold,
  // fine enough that a straggler chunk can't serialize the tail.
  std::size_t chunk = n / (tasks * 8);
  if (chunk == 0) chunk = 1;

  auto body = [n, chunk, next, err_mu, first_error, &fn]() {
    for (;;) {
      const std::size_t begin = next->fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(*err_mu);
          if (!*first_error) *first_error = std::current_exception();
        }
      }
    }
  };
  // One task per worker slot; each loops over the shared index.
  for (std::size_t t = 1; t < tasks; ++t) pool.submit(body);
  body();  // the calling thread is worker 0
  pool.wait();
  if (*first_error) std::rethrow_exception(*first_error);
}

}  // namespace fsdep
