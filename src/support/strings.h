// Small string helpers shared across fsdep modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fsdep {

/// Splits on a single character; empty pieces are kept.
std::vector<std::string_view> splitString(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trimString(std::string_view text);

/// Joins pieces with a separator.
std::string joinStrings(const std::vector<std::string>& pieces, std::string_view sep);

/// Case-sensitive containment test for readability at call sites.
bool containsString(std::string_view haystack, std::string_view needle);

/// Parses a signed 64-bit integer in base 10/16/8 (C literal rules).
/// Returns nullopt on any malformed input or overflow.
std::optional<std::int64_t> parseInt64(std::string_view text);

/// Lowercases ASCII.
std::string toLowerString(std::string_view text);

/// printf-free number formatting with thousands separators, for tables.
std::string formatWithCommas(std::int64_t value);

/// Renders `value` as a percentage string like "7.8%" with one decimal.
std::string formatPercent(double fraction);

}  // namespace fsdep
