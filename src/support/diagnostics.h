// Diagnostic engine for the frontend: collects errors/warnings/notes with
// source locations, supports rendering with a caret line, and lets callers
// check whether hard errors occurred.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace fsdep {

class SourceManager;

enum class Severity : std::uint8_t { Note, Warning, Error };

const char* severityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) { report(Severity::Error, loc, std::move(message)); }
  void warning(SourceLoc loc, std::string message) { report(Severity::Warning, loc, std::move(message)); }
  void note(SourceLoc loc, std::string message) { report(Severity::Note, loc, std::move(message)); }

  [[nodiscard]] bool hasErrors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t errorCount() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  void clear();

  /// Renders all diagnostics as "file:line:col: severity: message" lines,
  /// with the offending source line and a caret when available.
  [[nodiscard]] std::string render(const SourceManager& sm) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace fsdep
