#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace fsdep {

std::vector<std::string_view> splitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trimString(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) text.remove_suffix(1);
  return text;
}

std::string joinStrings(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool containsString(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::optional<std::int64_t> parseInt64(std::string_view text) {
  text = trimString(text);
  if (text.empty()) return std::nullopt;
  bool negative = false;
  if (text.front() == '+' || text.front() == '-') {
    negative = text.front() == '-';
    text.remove_prefix(1);
    if (text.empty()) return std::nullopt;
  }
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  } else if (text.size() > 1 && text[0] == '0') {
    base = 8;
    text.remove_prefix(1);
    if (text.empty()) return 0;
  }
  std::int64_t value = 0;
  for (char c : text) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
    if (digit < 0 || digit >= base) return std::nullopt;
    if (value > (INT64_MAX - digit) / base) return std::nullopt;
    value = value * base + digit;
  }
  return negative ? -value : value;
}

std::string toLowerString(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string formatWithCommas(std::int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, first_group);
  for (std::size_t i = first_group; i < digits.size(); i += 3) {
    out += ',';
    out.append(digits, i, 3);
  }
  if (value < 0) out.insert(out.begin(), '-');
  return out;
}

std::string formatPercent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace fsdep
