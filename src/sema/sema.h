// Semantic analysis for the fsdep C subset: name resolution, member
// binding, enum-constant folding, and just enough type inference to know
// which struct a member access lands in. The results are written back into
// the AST (DeclRefExpr::decl, MemberExpr::field, ...) so later passes —
// CFG construction, taint analysis, dependency extraction — can navigate
// the program semantically.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "support/diagnostics.h"

namespace fsdep::sema {

/// Resolved (semantic) type: a TypeSpec with typedefs flattened away.
using SemType = ast::TypeSpec;

class Sema {
 public:
  Sema(ast::TranslationUnit& tu, DiagnosticEngine& diags);

  /// Runs all of sema over the translation unit. Returns false when hard
  /// errors were found (diags has details).
  bool run();

  /// Resolved type of an expression (valid after run()); nullopt when the
  /// expression never got a type (e.g. unresolved identifier).
  [[nodiscard]] std::optional<SemType> typeOf(const ast::Expr& expr) const;

  /// Folds an integer-constant expression using enum values and literals.
  /// Returns nullopt when the expression is not constant.
  [[nodiscard]] std::optional<std::int64_t> foldConstant(const ast::Expr& expr) const;

  [[nodiscard]] const ast::RecordDecl* findRecord(std::string_view name) const;
  [[nodiscard]] const ast::FunctionDecl* findFunction(std::string_view name) const;

 private:
  struct Scope {
    std::unordered_map<std::string, ast::VarDecl*> vars;
  };

  void collectTopLevel();
  void resolveFunction(ast::FunctionDecl& fn);
  void resolveStmt(ast::Stmt& stmt, ast::FunctionDecl& fn);
  void resolveExpr(ast::Expr& expr);
  void declareVar(ast::VarDecl& var);
  [[nodiscard]] ast::VarDecl* lookupVar(const std::string& name);

  /// Computes and caches the semantic type of `expr`.
  SemType computeType(ast::Expr& expr);
  SemType resolveTypedefs(const ast::TypeSpec& type) const;

  ast::TranslationUnit& tu_;
  DiagnosticEngine& diags_;

  std::unordered_map<std::string, ast::RecordDecl*> records_;
  std::unordered_map<std::string, ast::EnumDecl*> enums_;
  std::unordered_map<std::string, std::int64_t> enum_constants_;
  std::unordered_map<std::string, ast::TypedefDecl*> typedefs_;
  std::unordered_map<std::string, ast::FunctionDecl*> functions_;
  std::unordered_map<std::string, ast::VarDecl*> globals_;
  std::vector<Scope> scopes_;
  std::unordered_map<const ast::Expr*, SemType> expr_types_;
};

}  // namespace fsdep::sema
