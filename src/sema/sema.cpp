#include "sema/sema.h"

namespace fsdep::sema {

using namespace ast;

Sema::Sema(TranslationUnit& tu, DiagnosticEngine& diags) : tu_(tu), diags_(diags) {}

bool Sema::run() {
  collectTopLevel();
  for (DeclPtr& d : tu_.decls) {
    if (d->kind() == DeclKind::Function) {
      auto& fn = static_cast<FunctionDecl&>(*d);
      if (fn.isDefinition()) resolveFunction(fn);
    } else if (d->kind() == DeclKind::Var) {
      auto& var = static_cast<VarDecl&>(*d);
      if (var.init != nullptr) resolveExpr(*var.init);
    }
  }
  return !diags_.hasErrors();
}

void Sema::collectTopLevel() {
  for (DeclPtr& d : tu_.decls) {
    switch (d->kind()) {
      case DeclKind::Record:
        records_[d->name] = static_cast<RecordDecl*>(d.get());
        break;
      case DeclKind::Enum: {
        auto& e = static_cast<EnumDecl&>(*d);
        enums_[e.name] = &e;
        std::int64_t next = 0;
        for (Enumerator& en : e.enumerators) {
          if (en.value_expr != nullptr) {
            if (auto v = foldConstant(*en.value_expr)) {
              en.value = *v;
            } else {
              diags_.error(en.loc, "enumerator '" + en.name + "' is not a constant expression");
              en.value = next;
            }
          } else {
            en.value = next;
          }
          next = en.value + 1;
          enum_constants_[en.name] = en.value;
        }
        break;
      }
      case DeclKind::Typedef:
        typedefs_[d->name] = static_cast<TypedefDecl*>(d.get());
        break;
      case DeclKind::Function: {
        auto& fn = static_cast<FunctionDecl&>(*d);
        // A definition supersedes earlier prototypes.
        auto [it, inserted] = functions_.try_emplace(fn.name, &fn);
        if (!inserted && fn.isDefinition()) it->second = &fn;
        break;
      }
      case DeclKind::Var:
        globals_[d->name] = static_cast<VarDecl*>(d.get());
        break;
    }
  }
}

SemType Sema::resolveTypedefs(const TypeSpec& type) const {
  if (type.base != BaseTypeKind::Typedef) return type;
  SemType out = type;
  int guard = 0;
  while (out.base == BaseTypeKind::Typedef && guard++ < 16) {
    const auto it = typedefs_.find(out.name);
    if (it == typedefs_.end()) break;
    const TypeSpec& under = it->second->underlying;
    const int extra_pointers = out.pointer_depth;
    const bool was_array = out.is_array;
    const std::int64_t array_size = out.array_size;
    out = under;
    out.pointer_depth += extra_pointers;
    if (was_array) {
      out.is_array = true;
      out.array_size = array_size;
    }
  }
  return out;
}

void Sema::declareVar(VarDecl& var) {
  if (scopes_.empty()) return;
  scopes_.back().vars[var.name] = &var;
}

VarDecl* Sema::lookupVar(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    const auto found = it->vars.find(name);
    if (found != it->vars.end()) return found->second;
  }
  const auto g = globals_.find(name);
  return g != globals_.end() ? g->second : nullptr;
}

void Sema::resolveFunction(FunctionDecl& fn) {
  scopes_.clear();
  scopes_.emplace_back();
  for (auto& p : fn.params) {
    p->owner = &fn;
    declareVar(*p);
  }
  resolveStmt(*fn.body, fn);
  scopes_.clear();
}

void Sema::resolveStmt(Stmt& stmt, FunctionDecl& fn) {
  switch (stmt.kind()) {
    case StmtKind::Compound: {
      scopes_.emplace_back();
      for (StmtPtr& s : static_cast<CompoundStmt&>(stmt).body) resolveStmt(*s, fn);
      scopes_.pop_back();
      break;
    }
    case StmtKind::Decl: {
      for (auto& var : static_cast<DeclStmt&>(stmt).vars) {
        var->owner = &fn;
        if (var->init != nullptr) resolveExpr(*var->init);
        declareVar(*var);
      }
      break;
    }
    case StmtKind::Expr:
      resolveExpr(*static_cast<ExprStmt&>(stmt).expr);
      break;
    case StmtKind::If: {
      auto& s = static_cast<IfStmt&>(stmt);
      resolveExpr(*s.cond);
      resolveStmt(*s.then_stmt, fn);
      if (s.else_stmt != nullptr) resolveStmt(*s.else_stmt, fn);
      break;
    }
    case StmtKind::While: {
      auto& s = static_cast<WhileStmt&>(stmt);
      resolveExpr(*s.cond);
      resolveStmt(*s.body, fn);
      break;
    }
    case StmtKind::DoWhile: {
      auto& s = static_cast<DoWhileStmt&>(stmt);
      resolveStmt(*s.body, fn);
      resolveExpr(*s.cond);
      break;
    }
    case StmtKind::For: {
      auto& s = static_cast<ForStmt&>(stmt);
      scopes_.emplace_back();
      if (s.init != nullptr) resolveStmt(*s.init, fn);
      if (s.cond != nullptr) resolveExpr(*s.cond);
      if (s.inc != nullptr) resolveExpr(*s.inc);
      resolveStmt(*s.body, fn);
      scopes_.pop_back();
      break;
    }
    case StmtKind::Switch: {
      auto& s = static_cast<SwitchStmt&>(stmt);
      resolveExpr(*s.cond);
      for (auto& c : s.cases) resolveStmt(*c, fn);
      break;
    }
    case StmtKind::Case: {
      auto& s = static_cast<CaseStmt&>(stmt);
      if (s.value != nullptr) resolveExpr(*s.value);
      for (StmtPtr& b : s.body) resolveStmt(*b, fn);
      break;
    }
    case StmtKind::Return: {
      auto& s = static_cast<ReturnStmt&>(stmt);
      if (s.value != nullptr) resolveExpr(*s.value);
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
      break;
  }
}

void Sema::resolveExpr(Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::StringLiteral:
      break;
    case ExprKind::DeclRef: {
      auto& ref = static_cast<DeclRefExpr&>(expr);
      if (VarDecl* var = lookupVar(ref.name)) {
        ref.decl = var;
      } else if (const auto ec = enum_constants_.find(ref.name); ec != enum_constants_.end()) {
        ref.is_enum_constant = true;
        ref.enum_value = ec->second;
      } else if (!functions_.contains(ref.name)) {
        diags_.warning(expr.loc, "use of undeclared identifier '" + ref.name + "'");
      }
      break;
    }
    case ExprKind::Unary:
      resolveExpr(*static_cast<UnaryExpr&>(expr).operand);
      break;
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(expr);
      resolveExpr(*b.lhs);
      resolveExpr(*b.rhs);
      break;
    }
    case ExprKind::Conditional: {
      auto& c = static_cast<ConditionalExpr&>(expr);
      resolveExpr(*c.cond);
      resolveExpr(*c.then_expr);
      resolveExpr(*c.else_expr);
      break;
    }
    case ExprKind::Call: {
      auto& call = static_cast<CallExpr&>(expr);
      const auto it = functions_.find(call.callee);
      if (it != functions_.end()) call.callee_decl = it->second;
      for (ExprPtr& a : call.args) resolveExpr(*a);
      break;
    }
    case ExprKind::Member: {
      auto& m = static_cast<MemberExpr&>(expr);
      resolveExpr(*m.base);
      SemType base_type = computeType(*m.base);
      if (m.is_arrow && base_type.pointer_depth > 0) --base_type.pointer_depth;
      if (base_type.base == BaseTypeKind::Struct && base_type.pointer_depth == 0) {
        const auto rec = records_.find(base_type.name);
        if (rec != records_.end()) {
          m.record = rec->second;
          m.field = rec->second->findField(m.member);
          if (m.field == nullptr) {
            diags_.error(expr.loc, "no field '" + m.member + "' in struct " + base_type.name);
          }
        } else {
          diags_.warning(expr.loc, "member access into unknown struct " + base_type.name);
        }
      } else {
        diags_.warning(expr.loc, "member access on non-struct expression");
      }
      break;
    }
    case ExprKind::Index: {
      auto& i = static_cast<IndexExpr&>(expr);
      resolveExpr(*i.base);
      resolveExpr(*i.index);
      break;
    }
    case ExprKind::Cast:
      resolveExpr(*static_cast<CastExpr&>(expr).operand);
      break;
    case ExprKind::SizeofType:
      break;
    case ExprKind::InitList:
      for (ExprPtr& e : static_cast<InitListExpr&>(expr).elements) resolveExpr(*e);
      break;
  }
  computeType(expr);
}

SemType Sema::computeType(Expr& expr) {
  const auto cached = expr_types_.find(&expr);
  if (cached != expr_types_.end()) return cached->second;

  SemType type;  // defaults to int
  switch (expr.kind()) {
    case ExprKind::IntLiteral:
      type.base = BaseTypeKind::Long;
      break;
    case ExprKind::StringLiteral:
      type.base = BaseTypeKind::Char;
      type.pointer_depth = 1;
      type.is_const = true;
      break;
    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(expr);
      if (ref.decl != nullptr) type = resolveTypedefs(ref.decl->type);
      break;
    }
    case ExprKind::Unary: {
      auto& u = static_cast<UnaryExpr&>(expr);
      SemType inner = computeType(*u.operand);
      switch (u.op) {
        case UnaryOp::Deref:
          if (inner.pointer_depth > 0) --inner.pointer_depth;
          else if (inner.is_array) inner.is_array = false;
          type = inner;
          break;
        case UnaryOp::AddrOf:
          ++inner.pointer_depth;
          type = inner;
          break;
        case UnaryOp::Not:
          type.base = BaseTypeKind::Int;
          break;
        case UnaryOp::SizeofExpr:
          type.base = BaseTypeKind::Long;
          type.is_unsigned = true;
          break;
        default:
          type = inner;
      }
      break;
    }
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(expr);
      if (isComparison(b.op) || b.op == BinaryOp::LogicalAnd || b.op == BinaryOp::LogicalOr) {
        type.base = BaseTypeKind::Int;
      } else if (isAssignment(b.op)) {
        type = computeType(*b.lhs);
      } else {
        // Usual arithmetic conversions, approximated: wider side wins;
        // pointer arithmetic keeps the pointer type.
        SemType lhs = computeType(*b.lhs);
        SemType rhs = computeType(*b.rhs);
        if (lhs.pointer_depth > 0 || lhs.is_array) type = lhs;
        else if (rhs.pointer_depth > 0 || rhs.is_array) type = rhs;
        else type = static_cast<int>(lhs.base) >= static_cast<int>(rhs.base) ? lhs : rhs;
      }
      break;
    }
    case ExprKind::Conditional: {
      auto& c = static_cast<ConditionalExpr&>(expr);
      type = computeType(*c.then_expr);
      break;
    }
    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.callee_decl != nullptr) type = resolveTypedefs(call.callee_decl->return_type);
      else type.base = BaseTypeKind::Long;  // unknown externals: assume integral
      break;
    }
    case ExprKind::Member: {
      const auto& m = static_cast<const MemberExpr&>(expr);
      if (m.field != nullptr) type = resolveTypedefs(m.field->type);
      break;
    }
    case ExprKind::Index: {
      auto& i = static_cast<IndexExpr&>(expr);
      SemType base = computeType(*i.base);
      if (base.is_array) {
        base.is_array = false;
        base.array_size = 0;
      } else if (base.pointer_depth > 0) {
        --base.pointer_depth;
      }
      type = base;
      break;
    }
    case ExprKind::Cast:
      type = resolveTypedefs(static_cast<const CastExpr&>(expr).type);
      break;
    case ExprKind::SizeofType:
      type.base = BaseTypeKind::Long;
      type.is_unsigned = true;
      break;
    case ExprKind::InitList:
      break;
  }
  expr_types_[&expr] = type;
  return type;
}

std::optional<SemType> Sema::typeOf(const Expr& expr) const {
  const auto it = expr_types_.find(&expr);
  if (it == expr_types_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Sema::foldConstant(const Expr& expr) const {
  switch (expr.kind()) {
    case ExprKind::IntLiteral:
      return static_cast<const IntLiteralExpr&>(expr).value;
    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(expr);
      if (ref.is_enum_constant) return ref.enum_value;
      const auto it = enum_constants_.find(ref.name);
      if (it != enum_constants_.end()) return it->second;
      return std::nullopt;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      const auto inner = foldConstant(*u.operand);
      if (!inner) return std::nullopt;
      switch (u.op) {
        case UnaryOp::Plus: return *inner;
        case UnaryOp::Minus: return -*inner;
        case UnaryOp::Not: return *inner == 0 ? 1 : 0;
        case UnaryOp::BitNot: return ~*inner;
        default: return std::nullopt;
      }
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      const auto lhs = foldConstant(*b.lhs);
      const auto rhs = foldConstant(*b.rhs);
      if (!lhs || !rhs) return std::nullopt;
      switch (b.op) {
        case BinaryOp::Add: return *lhs + *rhs;
        case BinaryOp::Sub: return *lhs - *rhs;
        case BinaryOp::Mul: return *lhs * *rhs;
        case BinaryOp::Div: return *rhs != 0 ? std::optional(*lhs / *rhs) : std::nullopt;
        case BinaryOp::Rem: return *rhs != 0 ? std::optional(*lhs % *rhs) : std::nullopt;
        case BinaryOp::Shl: return *lhs << *rhs;
        case BinaryOp::Shr: return *lhs >> *rhs;
        case BinaryOp::BitAnd: return *lhs & *rhs;
        case BinaryOp::BitOr: return *lhs | *rhs;
        case BinaryOp::BitXor: return *lhs ^ *rhs;
        case BinaryOp::Lt: return *lhs < *rhs ? 1 : 0;
        case BinaryOp::Le: return *lhs <= *rhs ? 1 : 0;
        case BinaryOp::Gt: return *lhs > *rhs ? 1 : 0;
        case BinaryOp::Ge: return *lhs >= *rhs ? 1 : 0;
        case BinaryOp::Eq: return *lhs == *rhs ? 1 : 0;
        case BinaryOp::Ne: return *lhs != *rhs ? 1 : 0;
        case BinaryOp::LogicalAnd: return (*lhs != 0 && *rhs != 0) ? 1 : 0;
        case BinaryOp::LogicalOr: return (*lhs != 0 || *rhs != 0) ? 1 : 0;
        default: return std::nullopt;
      }
    }
    case ExprKind::Conditional: {
      const auto& c = static_cast<const ConditionalExpr&>(expr);
      const auto cond = foldConstant(*c.cond);
      if (!cond) return std::nullopt;
      return *cond != 0 ? foldConstant(*c.then_expr) : foldConstant(*c.else_expr);
    }
    case ExprKind::Cast:
      return foldConstant(*static_cast<const CastExpr&>(expr).operand);
    default:
      return std::nullopt;
  }
}

const RecordDecl* Sema::findRecord(std::string_view name) const {
  const auto it = records_.find(std::string(name));
  return it != records_.end() ? it->second : nullptr;
}

const FunctionDecl* Sema::findFunction(std::string_view name) const {
  const auto it = functions_.find(std::string(name));
  return it != functions_.end() ? it->second : nullptr;
}

}  // namespace fsdep::sema
