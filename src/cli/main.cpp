// fsdep — command line front end.
//
//   fsdep extract [--scenario s1..s4] [--inter|--intra] [--no-bridging] [--json]
//   fsdep table2 | table3 | table4 | table5
//   fsdep amplify [--factor N] [--seed S] [--budget-ms M] [--json]
//   fsdep docck
//   fsdep handleck
//   fsdep bugck [--runs N]
//   fsdep figure1
//   fsdep dump-ast <component>
//   fsdep dump-cfg <component> <function>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "lex/preprocessor.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace.h"

#include "ast/dump.h"
#include "corpus/amplify.h"
#include "corpus/pipeline.h"
#include "support/thread_pool.h"
#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"
#include "model/serialization.h"
#include "study/bug_study.h"
#include "study/coverage.h"
#include "tools/conbugck.h"
#include "tools/condocck.h"
#include "tools/conhandleck.h"
#include "tools/campaign.h"
#include "tools/crashck.h"
#include "tools/depgraph.h"
#include "tools/serve.h"

namespace {

using namespace fsdep;

int usage() {
  std::puts(
      "usage: fsdep <command> [options]\n"
      "\n"
      "global options (every command):\n"
      "  --jobs N        analyze N (scenario x component) pairs concurrently\n"
      "                  (default: FSDEP_JOBS env var, else hardware threads)\n"
      "  --stats         print pipeline perf counters (parse/analyze/extract\n"
      "                  time, cache hits, fixpoint merges) to stderr\n"
      "  --trace FILE    record spans and write a Chrome trace-event JSON\n"
      "                  (open in Perfetto / chrome://tracing)\n"
      "  --metrics FILE  dump the metrics registry (counters, gauges,\n"
      "                  histograms) as JSON on exit\n"
      "  --report FILE   write a structured run report (version, command,\n"
      "                  wall time, metrics, per-command facts) as JSON\n"
      "  --profile FILE  aggregate spans into a hierarchical wall-time\n"
      "                  attribution tree and write it to FILE (stdout is\n"
      "                  byte-identical to a run without --profile)\n"
      "  --profile-format FMT  text (sorted self-time table, default),\n"
      "                  json (attribution tree), or folded (collapsed\n"
      "                  stacks for flamegraph renderers)\n"
      "  --log LEVEL     stderr log level: debug|info|warn|error|off\n"
      "                  (default: FSDEP_LOG env var, else warn;\n"
      "                  FSDEP_LOG_FORMAT=json switches to JSON lines)\n"
      "  --cache-dir DIR persist analysis results in an on-disk cache under\n"
      "                  DIR; unchanged inputs skip parse+analysis entirely\n"
      "                  (default: FSDEP_CACHE_DIR env var, else disabled)\n"
      "  --no-cache      disable both the on-disk cache and in-process\n"
      "                  component reuse (every run parses fresh)\n"
      "\n"
      "commands:\n"
      "  extract    run the static analyzer over the corpus and print the\n"
      "             extracted multi-level dependencies\n"
      "               --scenario s1..s4   analyze one scenario (default: all)\n"
      "               --inter             inter-procedural taint (SCC-summarized;\n"
      "                                   default: FSDEP_INTER env var, else intra)\n"
      "               --intra             force intra-procedural taint (opt-out\n"
      "                                   when FSDEP_INTER is set)\n"
      "               --legacy-passes     inter via whole-program re-analysis\n"
      "                                   instead of SCC summaries (oracle)\n"
      "               --legacy-walk       interpret AST statements instead of\n"
      "                                   compiled Taint-IR (oracle)\n"
      "               --no-bridging       disable metadata bridging (ablation)\n"
      "               --json              emit JSON instead of text\n"
      "  table2     test-suite configuration coverage (paper Table 2)\n"
      "  table3     bug-study distribution (paper Table 3)\n"
      "  table4     dependency taxonomy (paper Table 4)\n"
      "  table5     extraction evaluation (paper Table 5)\n"
      "               --inter / --intra / --legacy-passes / --legacy-walk\n"
      "                 as in extract\n"
      "  amplify    generate a synthetic amplified corpus (deterministic,\n"
      "             config-flow shaped) and analyze it end to end\n"
      "               --factor N      synthetic components per real Ext4\n"
      "                               component (default 100 -> 600 total)\n"
      "               --seed S        generator seed (default 42)\n"
      "               --intra         intra-procedural taint (default: inter\n"
      "                               with SCC summaries)\n"
      "               --legacy-passes inter via whole-program re-analysis\n"
      "               --legacy-walk   AST-walk oracle (default: Taint-IR)\n"
      "               --budget-ms M   exit 3 when the end-to-end run exceeds\n"
      "                               M milliseconds (CI wall-clock guard)\n"
      "               --json          emit JSON instead of text\n"
      "  docck      ConDocCk: manual-vs-code inconsistencies\n"
      "  handleck   ConHandleCk: dependency-violation campaign\n"
      "  bugck      ConBugCk: dependency-aware config generation (--runs N)\n"
      "  figure1    reproduce the sparse_super2 resize corruption\n"
      "  crashck    CrashCk: crash-point enumeration over the fsim tools\n"
      "               --op OP    one of mkfs, mount, resize, resize-buggy,\n"
      "                          defrag, tune (default: all)\n"
      "               --seed S   fault-schedule seed (default 42)\n"
      "               --json     emit JSON instead of text\n"
      "               --fail-on CLASSES  exit 3 when any of the comma-separated\n"
      "                          outcome classes occurred (silent-corruption,\n"
      "                          data-loss, needs-repair)\n"
      "  campaign   crash x fault x config matrix campaign with outcome dedup\n"
      "             and ddmin schedule minimization\n"
      "               --seed S          campaign seed (default 42)\n"
      "               --op OP           restrict to one op (repeatable)\n"
      "               --configs N       cap the sampled matrix (default 24)\n"
      "               --crash-points N  crash cells per config x op (default 4)\n"
      "               --double-faults N crash+transient cells per config x op\n"
      "               --no-pairwise     each-used-value sampling only\n"
      "               --no-minimize     skip ddmin reproducer minimization\n"
      "               --retries N       per-cell retry budget (default 2)\n"
      "               --corpus DIR      persist minimized reproducers as a\n"
      "                                 versioned regression corpus\n"
      "               --replay DIR      replay a corpus dir instead of running\n"
      "               --json            emit JSON instead of text\n"
      "               --fail-on CLASSES exit 3 on the given outcome classes\n"
      "                                 (adds 'failed' for dead cells)\n"
      "  profile    run a command under the profiler and print the\n"
      "             attribution to stdout (default wrapped command: table5)\n"
      "               fsdep profile [--format text|json|folded] [--out FILE]\n"
      "                             [<command> [args...]]\n"
      "  serve      long-running analysis daemon on a local Unix socket;\n"
      "             answers newline-delimited JSON queries (see docs/serve.md)\n"
      "               --socket PATH  socket path (default: FSDEP_SOCKET env\n"
      "                              var, else /tmp/fsdep.sock)\n"
      "  query      send one request to a running `fsdep serve` daemon and\n"
      "             print its stdout (byte-identical to the one-shot command)\n"
      "               --socket PATH   daemon socket (default as in serve)\n"
      "               --type T        ping|extract|depgraph|docck|blame|stats|\n"
      "                               invalidate|shutdown (default: extract)\n"
      "               --scenario s1..s4 / --inter / --intra / --no-bridging /\n"
      "               --json          forwarded to extract queries\n"
      "               --param P       parameter for blame queries\n"
      "               --self-deps     include SD nodes in depgraph queries\n"
      "               --timing        print cached/wall_us to stderr\n"
      "               --raw JSON      send a raw request line instead\n"
      "  xfs        run the analyzer over the XFS mini-ecosystem (paper SS6)\n"
      "  bugs       list the 67-case bug study dataset (--json for JSON)\n"
      "  explain    show everything known about one parameter\n"
      "  graph      emit the dependency graph as Graphviz dot\n"
      "  check      analyze YOUR C file: fsdep check tool.c --seed fn:var:param\n"
      "               [--component NAME] [--owner NAME] [--inter|--intra] [--json]\n"
      "  export-corpus <dir>  write the embedded corpus sources to disk\n"
      "  dump-ast   print the parsed AST of a corpus component\n"
      "  dump-cfg   print the CFG of one function\n");
  return 2;
}

bool hasFlag(const std::vector<std::string>& args, const char* flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string flagValue(const std::vector<std::string>& args, const char* flag,
                      const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

/// FSDEP_INTER environment variable (parity with FSDEP_JOBS): set to
/// anything but "", "0", "false" or "off" to make inter-procedural taint
/// the default for extract/table5/check. Flags still win over the env.
bool envInterDefault() {
  const char* env = std::getenv("FSDEP_INTER");
  if (env == nullptr) return false;
  const std::string value = env;
  return !(value.empty() || value == "0" || value == "false" || value == "off");
}

/// Taint-engine selection shared by extract, table5 and check:
/// FSDEP_INTER sets the default, --inter forces inter-procedural,
/// --intra forces intra-procedural, and --legacy-passes swaps the
/// SCC-summary engine for the whole-program re-analysis fixpoint (the
/// equivalence oracle).
taint::AnalysisOptions taintOptionsFromFlags(const std::vector<std::string>& args) {
  taint::AnalysisOptions topts;
  topts.inter_procedural = envInterDefault();
  if (hasFlag(args, "--inter")) topts.inter_procedural = true;
  if (hasFlag(args, "--intra")) topts.inter_procedural = false;
  if (hasFlag(args, "--legacy-passes")) topts.summaries = false;
  if (hasFlag(args, "--legacy-walk")) topts.compile_ir = false;
  return topts;
}

int cmdExtract(const std::vector<std::string>& args) {
  taint::AnalysisOptions topts = taintOptionsFromFlags(args);
  extract::ExtractOptions eopts = corpus::extractOptions();
  eopts.enable_bridging = !hasFlag(args, "--no-bridging");
  topts.field_bridging = eopts.enable_bridging;
  const std::string scenario_id = flagValue(args, "--scenario", "all");

  std::vector<model::Dependency> deps;
  if (scenario_id == "all") {
    std::vector<std::vector<model::Dependency>> per_scenario;
    for (const corpus::Scenario& s : corpus::scenarios()) {
      per_scenario.push_back(corpus::runScenario(s, topts, &eopts));
    }
    deps = extract::dedupeAcrossScenarios(per_scenario);
  } else {
    bool found = false;
    for (const corpus::Scenario& s : corpus::scenarios()) {
      if (s.id == scenario_id) {
        deps = corpus::runScenario(s, topts, &eopts);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown scenario '%s'\n", scenario_id.c_str());
      return 2;
    }
  }

  obs::RunReport::global().note("deps_extracted", deps.size());
  FSDEP_LOG_INFO("cli", "extract: %zu dependencies (scenario %s)", deps.size(),
                 scenario_id.c_str());
  if (hasFlag(args, "--json")) {
    std::fputs(json::writePretty(model::toJson(deps)).c_str(), stdout);
  } else {
    for (const model::Dependency& dep : deps) std::printf("%s\n", dep.summary().c_str());
    std::printf("\n%zu dependencies extracted\n", deps.size());
  }
  return 0;
}

int cmdCrashCk(const std::vector<std::string>& args) {
  tools::CrashCkOptions options;
  tools::FailOnSet fail_on;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") continue;
    if (args[i] == "--op" || args[i] == "--seed" || args[i] == "--fail-on") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "crashck: %s requires a value\n", args[i].c_str());
        return 2;
      }
      const std::string& value = args[++i];
      if (args[i - 1] == "--op") {
        options.ops.push_back(value);
      } else if (args[i - 1] == "--fail-on") {
        const Result<tools::FailOnSet> parsed = tools::parseFailOn(value);
        if (!parsed.ok()) {
          std::fprintf(stderr, "crashck: %s\n", parsed.error().message.c_str());
          return 2;
        }
        fail_on = parsed.value();
      } else {
        char* end = nullptr;
        options.seed = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "crashck: --seed expects an integer, got '%s'\n", value.c_str());
          return 2;
        }
      }
      continue;
    }
    std::fprintf(stderr, "crashck: unknown argument '%s'\n", args[i].c_str());
    return 2;
  }

  const Result<tools::CrashCkReport> result = tools::runCrashCk(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return 2;
  }
  const tools::CrashCkReport& report = result.value();
  {
    obs::RunReport& run_report = obs::RunReport::global();
    run_report.note("crashck_summary", report.summary());
    run_report.note("crashck_recovered",
                    static_cast<std::uint64_t>(report.totalOf(tools::CrashOutcome::Recovered)));
    run_report.note("crashck_needs_repair",
                    static_cast<std::uint64_t>(report.totalOf(tools::CrashOutcome::NeedsRepair)));
    run_report.note("crashck_silent_corruption",
                    static_cast<std::uint64_t>(
                        report.totalOf(tools::CrashOutcome::SilentCorruption)));
    run_report.note("crashck_data_loss",
                    static_cast<std::uint64_t>(report.totalOf(tools::CrashOutcome::DataLoss)));
  }

  int exit_code = 0;
  if (!fail_on.empty()) {
    for (const tools::CrashOutcome outcome :
         {tools::CrashOutcome::NeedsRepair, tools::CrashOutcome::SilentCorruption,
          tools::CrashOutcome::DataLoss}) {
      if (fail_on.matches(outcome) && report.totalOf(outcome) > 0) exit_code = 3;
    }
  }

  if (hasFlag(args, "--json")) {
    json::Object root;
    root["seed"] = static_cast<std::uint64_t>(report.seed);
    json::Array ops;
    for (const tools::CrashOpReport& r : report.ops) {
      json::Object o;
      o["op"] = r.op;
      o["total_writes"] = static_cast<std::uint64_t>(r.total_writes);
      json::Array points;
      for (const tools::CrashPoint& p : r.points) {
        json::Object pt;
        pt["write_index"] = static_cast<std::uint64_t>(p.write_index);
        pt["control"] = p.control;
        pt["outcome"] = tools::crashOutcomeName(p.outcome);
        pt["detail"] = p.detail;
        points.push_back(std::move(pt));
      }
      o["points"] = std::move(points);
      ops.push_back(std::move(o));
    }
    root["ops"] = std::move(ops);
    std::fputs(json::writePretty(root).c_str(), stdout);
    return exit_code;
  }

  std::printf("CrashCk: seed %llu\n\n", static_cast<unsigned long long>(report.seed));
  for (const tools::CrashOpReport& r : report.ops) {
    std::printf("%-13s %3llu write(s)  %s\n", r.op.c_str(),
                static_cast<unsigned long long>(r.total_writes), r.histogram().c_str());
    for (const tools::CrashPoint& p : r.points) {
      if (p.outcome == tools::CrashOutcome::SilentCorruption ||
          p.outcome == tools::CrashOutcome::DataLoss) {
        std::printf("    write %3llu%s [%s] %s\n",
                    static_cast<unsigned long long>(p.write_index),
                    p.control ? " (control)" : "", tools::crashOutcomeName(p.outcome),
                    p.detail.c_str());
      }
    }
  }
  std::printf("\n%s\n", report.summary().c_str());
  if (exit_code != 0)
    std::fprintf(stderr, "crashck: --fail-on outcome class present, exiting 3\n");
  return exit_code;
}

int cmdCampaign(const std::vector<std::string>& args) {
  tools::CampaignOptions options;
  tools::FailOnSet fail_on;
  std::string replay_dir;
  const auto parseCount = [](const std::string& value, const char* flag,
                             std::uint64_t& out) -> bool {
    char* end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "campaign: %s expects an integer, got '%s'\n", flag, value.c_str());
      return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") continue;
    if (arg == "--no-pairwise") {
      options.pairwise = false;
      continue;
    }
    if (arg == "--no-minimize") {
      options.minimize = false;
      continue;
    }
    if (arg == "--seed" || arg == "--op" || arg == "--configs" || arg == "--crash-points" ||
        arg == "--double-faults" || arg == "--retries" || arg == "--corpus" ||
        arg == "--replay" || arg == "--fail-on") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "campaign: %s requires a value\n", arg.c_str());
        return 2;
      }
      const std::string& value = args[++i];
      std::uint64_t n = 0;
      if (arg == "--op") {
        options.ops.push_back(value);
      } else if (arg == "--corpus") {
        options.corpus_dir = value;
      } else if (arg == "--replay") {
        replay_dir = value;
      } else if (arg == "--fail-on") {
        const Result<tools::FailOnSet> parsed = tools::parseFailOn(value);
        if (!parsed.ok()) {
          std::fprintf(stderr, "campaign: %s\n", parsed.error().message.c_str());
          return 2;
        }
        fail_on = parsed.value();
      } else if (!parseCount(value, arg.c_str(), n)) {
        return 2;
      } else if (arg == "--seed") {
        options.seed = n;
      } else if (arg == "--configs") {
        options.max_configs = static_cast<std::size_t>(n);
      } else if (arg == "--crash-points") {
        options.max_crash_points = static_cast<std::size_t>(n);
      } else if (arg == "--double-faults") {
        options.max_double_faults = static_cast<std::size_t>(n);
      } else if (arg == "--retries") {
        options.cell_retries = static_cast<std::uint32_t>(n);
      }
      continue;
    }
    std::fprintf(stderr, "campaign: unknown argument '%s'\n", arg.c_str());
    return 2;
  }

  if (!replay_dir.empty()) {
    const Result<tools::ReplayReport> result = tools::replayCampaignCorpus(replay_dir);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.error().message.c_str());
      return 2;
    }
    const tools::ReplayReport& report = result.value();
    for (const tools::ReplayCase& c : report.cases) {
      std::printf("%-9s %s: recorded %s, replayed %s%s\n",
                  c.outcome_match ? "MATCH" : "MISMATCH", c.file.c_str(),
                  tools::crashOutcomeName(c.recorded), tools::crashOutcomeName(c.replayed),
                  c.digest_match ? "" : " (digest drifted)");
    }
    std::printf("\nreplay: %s\n", report.summary().c_str());
    obs::RunReport::global().note("campaign_replay", report.summary());
    return report.allMatch() ? 0 : 1;
  }

  const std::vector<model::Dependency> deps = corpus::runTable5().unique_deps;
  const Result<tools::CampaignReport> result = tools::runMatrixCampaign(options, deps);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return 2;
  }
  const tools::CampaignReport& report = result.value();
  {
    obs::RunReport& run_report = obs::RunReport::global();
    run_report.note("campaign_summary", report.summary());
    run_report.note("campaign_histogram", report.histogram());
    run_report.note("campaign_cells", static_cast<std::uint64_t>(report.cells.size()));
    run_report.note("campaign_configs", static_cast<std::uint64_t>(report.configs.size()));
    run_report.note("campaign_unique_outcomes", report.unique_outcomes);
    run_report.note("campaign_dedup_hits", report.dedup_hits);
    run_report.note("campaign_minimizer_probes", report.minimizer_probes);
    run_report.note("campaign_repros", static_cast<std::uint64_t>(report.repros.size()));
    run_report.note(
        "campaign_silent_corruption",
        static_cast<std::uint64_t>(report.totalOf(tools::CrashOutcome::SilentCorruption)));
    run_report.note("campaign_data_loss",
                    static_cast<std::uint64_t>(report.totalOf(tools::CrashOutcome::DataLoss)));
    run_report.note("campaign_failed_cells",
                    static_cast<std::uint64_t>(report.totalFailed()));
  }

  int exit_code = 0;
  if (!fail_on.empty()) {
    for (const tools::CrashOutcome outcome :
         {tools::CrashOutcome::NeedsRepair, tools::CrashOutcome::SilentCorruption,
          tools::CrashOutcome::DataLoss}) {
      if (fail_on.matches(outcome) && report.totalOf(outcome) > 0) exit_code = 3;
    }
    if (fail_on.failed && report.totalFailed() > 0) exit_code = 3;
  }

  if (hasFlag(args, "--json")) {
    std::fputs(json::writePretty(json::Value(report.toJson())).c_str(), stdout);
  } else {
    std::fputs(report.renderText().c_str(), stdout);
  }
  if (exit_code != 0)
    std::fprintf(stderr, "campaign: --fail-on outcome class present, exiting 3\n");
  return exit_code;
}

int cmdFigure1() {
  using namespace fsim;
  std::puts("Reproducing the paper's Figure 1: sparse_super2 + resize2fs expansion\n");
  for (const bool fixed : {false, true}) {
    BlockDevice device(8192, 1024);
    MkfsOptions mo;
    mo.block_size = 1024;
    mo.size_blocks = 2048;
    mo.blocks_per_group = 512;
    mo.sparse_super2 = true;
    mo.resize_inode = false;
    mo.inode_ratio = 8192;
    const Result<Superblock> sb = MkfsTool::format(device, mo);
    if (!sb.ok()) {
      std::fprintf(stderr, "mkfs failed: %s\n", sb.error().message.c_str());
      return 1;
    }
    Result<MountedFs> mounted = MountTool::mount(device, MountOptions{});
    if (mounted.ok()) {
      (void)mounted.value().createFile(8192, 2);
      mounted.value().unmount();
    }
    ResizeOptions ro;
    ro.new_size_blocks = 3072;
    ro.fix_sparse_super2_accounting = fixed;
    const Result<ResizeReport> resized = ResizeTool::resize(device, ro);
    if (!resized.ok()) {
      std::fprintf(stderr, "resize failed: %s\n", resized.error().message.c_str());
      return 1;
    }
    const Result<FsckReport> fsck = FsckTool::check(device, FsckOptions{.force = true});
    std::printf("%s accounting: fsck reports %s\n", fixed ? "fixed " : "buggy ",
                fsck.ok() ? fsck.value().summary().c_str() : "error");
    if (fsck.ok()) {
      for (const FsckProblem& p : fsck.value().problems) {
        std::printf("    - %s\n", p.description.c_str());
      }
    }
  }
  return 0;
}

int cmdDumpAst(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "dump-ast: which component? (mke2fs, mount, ext4, ...)\n");
    return 2;
  }
  try {
    corpus::AnalyzedComponent component(args[0], taint::AnalysisOptions{});
    std::fputs(ast::dumpTranslationUnit(component.tu()).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

int cmdDumpCfg(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "dump-cfg: need <component> <function>\n");
    return 2;
  }
  try {
    corpus::AnalyzedComponent component(args[0], taint::AnalysisOptions{});
    const ast::FunctionDecl* fn = component.tu().findFunction(args[1]);
    if (fn == nullptr || !fn->isDefinition()) {
      std::fprintf(stderr, "no function '%s' in %s\n", args[1].c_str(), args[0].c_str());
      return 1;
    }
    std::fputs(cfg::Cfg::build(*fn)->dump().c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

int cmdCheck(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "check: need a C file\n");
    return 2;
  }
  const std::string path = args[0];
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check: cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  const std::string component = flagValue(args, "--component", "tool");

  SourceManager sm;
  DiagnosticEngine diags;
  const FileId file = sm.addBuffer(path, buffer.str());
  // Headers resolve against the file's directory first, then the corpus.
  const std::string dir = path.find('/') != std::string::npos
                              ? path.substr(0, path.rfind('/') + 1)
                              : std::string();
  lex::Preprocessor pp(sm, diags, [&dir](std::string_view name) -> std::optional<std::string> {
    std::ifstream header(dir + std::string(name));
    if (header) {
      std::stringstream text;
      text << header.rdbuf();
      return text.str();
    }
    return corpus::headerSource(name);
  });
  ast::Parser parser(pp.tokenize(file), diags);
  auto tu = parser.parseTranslationUnit(path);
  if (diags.hasErrors()) {
    std::fputs(diags.render(sm).c_str(), stderr);
    return 1;
  }
  sema::Sema sema_obj(*tu, diags);
  sema_obj.run();

  const taint::AnalysisOptions topts = taintOptionsFromFlags(args);
  taint::Analyzer analyzer(*tu, sema_obj, topts);
  int seeds = 0;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] != "--seed") continue;
    const std::string spec = args[i + 1];  // fn:var:component.param
    const std::size_t c1 = spec.find(':');
    const std::size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      std::fprintf(stderr, "check: bad --seed '%s' (want fn:var:component.param)\n",
                   spec.c_str());
      return 2;
    }
    analyzer.addSeed({spec.substr(0, c1), spec.substr(c1 + 1, c2 - c1 - 1),
                      spec.substr(c2 + 1)});
    ++seeds;
  }
  if (seeds == 0) {
    std::fprintf(stderr,
                 "check: no --seed given; nothing to track.\n"
                 "       example: --seed main:blocksize:%s.blocksize\n",
                 component.c_str());
    return 2;
  }
  analyzer.run();

  extract::ExtractOptions eopts = corpus::extractOptions();
  eopts.metadata_owner = flagValue(args, "--owner", component);
  const auto deps = extract::extractDependencies(
      {{component, false, &analyzer, &sema_obj}}, eopts);

  if (hasFlag(args, "--json")) {
    std::fputs(json::writePretty(model::toJson(deps)).c_str(), stdout);
  } else {
    for (const model::Dependency& dep : deps) {
      std::printf("%s\n", dep.summary().c_str());
      for (const std::string& step : dep.trace) std::printf("    %s\n", step.c_str());
    }
    std::printf("\n%zu dependencies extracted from %s\n", deps.size(), path.c_str());
  }
  return 0;
}

/// The kernel-scale smoke: generate an amplified corpus, analyze every
/// synthetic component (all functions) across the thread pool, and
/// extract dependencies over the whole ecosystem. --budget-ms turns the
/// run into a CI wall-clock guard (exit 3 on overrun).
int cmdAmplify(const std::vector<std::string>& args) {
  corpus::AmplifyOptions aopts;
  const auto parseCount = [&args](const char* flag, std::uint64_t fallback,
                                  std::uint64_t& out) -> bool {
    const std::string value = flagValue(args, flag, std::to_string(fallback));
    char* end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "amplify: %s expects an integer, got '%s'\n", flag, value.c_str());
      return false;
    }
    return true;
  };
  std::uint64_t factor = 0;
  std::uint64_t budget_ms = 0;
  if (!parseCount("--factor", 100, factor) || !parseCount("--seed", 42, aopts.seed) ||
      !parseCount("--budget-ms", 0, budget_ms)) {
    return 2;
  }
  if (factor == 0) {
    std::fprintf(stderr, "amplify: --factor must be positive\n");
    return 2;
  }
  aopts.factor = static_cast<std::size_t>(factor);

  taint::AnalysisOptions topts;
  topts.inter_procedural = !hasFlag(args, "--intra");
  if (hasFlag(args, "--legacy-passes")) topts.summaries = false;
  if (hasFlag(args, "--legacy-walk")) topts.compile_ir = false;

  using Clock = std::chrono::steady_clock;
  const auto millisSince = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  };

  // The whole amplify run is one disk-cache entry keyed by its inputs
  // (the generator is deterministic in factor x seed, so component
  // sources need no digesting — they don't exist before generation).
  // The payload carries every analysis-derived number the output needs,
  // so a warm run skips generate+parse+analyze+extract entirely.
  corpus::DiskCache& disk = corpus::DiskCache::global();
  corpus::CacheKey cache_key;
  if (disk.enabled()) {
    cache_key.mix("amplify-request");
    cache_key.mix(static_cast<std::uint64_t>(aopts.factor));
    cache_key.mix(aopts.seed);
    corpus::mixOptions(cache_key, topts);
    corpus::mixOptions(cache_key, corpus::amplifiedExtractOptions());
  }

  std::size_t component_count = 0;
  std::size_t functions = 0;
  std::size_t write_events = 0;
  std::vector<model::Dependency> deps;
  bool from_cache = false;
  if (disk.enabled()) {
    if (const std::optional<std::string> payload = disk.load(cache_key)) {
      const Result<json::Value> parsed = json::parse(*payload);
      if (parsed.ok() && parsed.value().isObject()) {
        const json::Object& object = parsed.value().asObject();
        const json::Value* cached_deps = object.find("deps");
        Result<std::vector<model::Dependency>> decoded =
            cached_deps != nullptr ? model::dependenciesFromJson(*cached_deps)
                                   : Result<std::vector<model::Dependency>>(
                                         makeError("missing deps"));
        if (decoded.ok() && object.contains("components") && object.contains("functions") &&
            object.contains("write_events")) {
          component_count = static_cast<std::size_t>(object.find("components")->asInt());
          functions = static_cast<std::size_t>(object.find("functions")->asInt());
          write_events = static_cast<std::size_t>(object.find("write_events")->asInt());
          deps = std::move(decoded).take();
          from_cache = true;
        }
      }
    }
  }

  const auto t0 = Clock::now();
  auto t1 = t0;
  auto t2 = t0;
  if (!from_cache) {
    const std::vector<std::string> names = [&] {
      obs::Span span("amplify", "generate");
      return corpus::amplifyCorpus(aopts);
    }();
    t1 = Clock::now();

    std::vector<std::unique_ptr<corpus::AnalyzedComponent>> components(names.size());
    {
      obs::Span span("amplify", "analyze");
      ThreadPool::parallelFor(names.size(), 0, [&](std::size_t i) {
        obs::Span component_span("pipeline", "analyze");
        component_span.arg("component", names[i]);
        auto component = std::make_unique<corpus::AnalyzedComponent>(names[i], topts);
        component->analyze({});
        components[i] = std::move(component);
      });
    }
    t2 = Clock::now();

    component_count = names.size();
    std::vector<extract::ComponentRun> runs;
    runs.reserve(components.size());
    for (const auto& component : components) {
      functions += component->analyzer().results().size();
      write_events += component->analyzer().writeEvents().size();
      runs.push_back(component->asRun());
    }
    deps = [&] {
      obs::Span span("amplify", "extract");
      return extract::extractDependencies(runs, corpus::amplifiedExtractOptions());
    }();

    if (disk.enabled()) {
      json::Object payload;
      payload["components"] = static_cast<std::uint64_t>(component_count);
      payload["functions"] = static_cast<std::uint64_t>(functions);
      payload["write_events"] = static_cast<std::uint64_t>(write_events);
      payload["deps"] = model::toJson(deps);
      disk.store(cache_key, json::writeCompact(json::Value(std::move(payload))));
    }
  }
  const auto t3 = Clock::now();

  const double generate_ms = millisSince(t0, t1);
  const double analyze_ms = millisSince(t1, t2);
  const double extract_ms = millisSince(t2, t3);
  const double total_ms = millisSince(t0, t3);
  const bool over_budget = budget_ms > 0 && total_ms > static_cast<double>(budget_ms);
  const char* engine = !topts.inter_procedural ? "intra"
                       : topts.summaries       ? "summary"
                                               : "legacy-passes";

  {
    obs::RunReport& report = obs::RunReport::global();
    report.note("amplify_components", component_count);
    report.note("amplify_cached", static_cast<std::uint64_t>(from_cache));
    report.note("amplify_functions", functions);
    report.note("amplify_write_events", write_events);
    report.note("amplify_deps", deps.size());
    report.note("amplify_engine", engine);
  }

  if (hasFlag(args, "--json")) {
    json::Object root;
    root["factor"] = static_cast<std::uint64_t>(aopts.factor);
    root["seed"] = aopts.seed;
    root["engine"] = engine;
    root["components"] = static_cast<std::uint64_t>(component_count);
    root["functions"] = static_cast<std::uint64_t>(functions);
    root["write_events"] = static_cast<std::uint64_t>(write_events);
    root["dependencies"] = static_cast<std::uint64_t>(deps.size());
    root["generate_ms"] = generate_ms;
    root["analyze_ms"] = analyze_ms;
    root["extract_ms"] = extract_ms;
    root["total_ms"] = total_ms;
    root["budget_ms"] = budget_ms;
    root["within_budget"] = !over_budget;
    std::fputs(json::writePretty(root).c_str(), stdout);
  } else {
    std::printf("amplified corpus: factor %llu, seed %llu, engine %s\n",
                static_cast<unsigned long long>(aopts.factor),
                static_cast<unsigned long long>(aopts.seed), engine);
    std::printf("  components:   %zu\n", component_count);
    std::printf("  functions:    %zu\n", functions);
    std::printf("  write events: %zu\n", write_events);
    std::printf("  dependencies: %zu\n", deps.size());
    std::printf("  generate %.1f ms, analyze %.1f ms, extract %.1f ms (total %.1f ms)\n",
                generate_ms, analyze_ms, extract_ms, total_ms);
  }
  if (over_budget) {
    std::fprintf(stderr, "amplify: %.1f ms exceeds --budget-ms %llu, exiting 3\n", total_ms,
                 static_cast<unsigned long long>(budget_ms));
    return 3;
  }
  return 0;
}

int cmdServe(const std::vector<std::string>& args) {
  tools::ServeOptions options;
  options.socket_path = flagValue(args, "--socket", tools::defaultSocketPath());
  tools::ServeDaemon daemon(options);
  const Result<bool> started = daemon.start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.error().message.c_str());
    return 1;
  }
  std::printf("fsdep serve: listening on %s (send {\"type\":\"shutdown\"} to stop)\n",
              daemon.socketPath().c_str());
  std::fflush(stdout);
  daemon.wait();
  daemon.stop();
  std::printf("fsdep serve: shut down after %llu request(s)\n",
              static_cast<unsigned long long>(daemon.requestsServed()));
  return 0;
}

int cmdQuery(const std::vector<std::string>& args) {
  const std::string socket = flagValue(args, "--socket", tools::defaultSocketPath());

  const std::string raw = flagValue(args, "--raw", "");
  if (!raw.empty()) {
    const Result<std::string> response = tools::serveRoundTrip(socket, raw);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.error().message.c_str());
      return 1;
    }
    std::printf("%s\n", response.value().c_str());
    return 0;
  }

  json::Object request;
  request["id"] = "cli";
  request["type"] = flagValue(args, "--type", "extract");
  const std::string scenario = flagValue(args, "--scenario", "");
  if (!scenario.empty()) request["scenario"] = scenario;
  const std::string param = flagValue(args, "--param", "");
  if (!param.empty()) request["param"] = param;
  if (hasFlag(args, "--inter")) request["inter"] = true;
  if (hasFlag(args, "--intra")) request["intra"] = true;
  if (hasFlag(args, "--legacy-passes")) request["legacy_passes"] = true;
  if (hasFlag(args, "--legacy-walk")) request["legacy_walk"] = true;
  if (hasFlag(args, "--no-bridging")) request["no_bridging"] = true;
  if (hasFlag(args, "--json")) request["json"] = true;
  if (hasFlag(args, "--self-deps")) request["self_deps"] = true;

  const Result<tools::ServeResponse> result = tools::serveRequest(socket, request);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return 1;
  }
  const tools::ServeResponse& response = result.value();
  if (!response.ok) {
    std::fprintf(stderr, "fsdep query: %s\n", response.error.c_str());
    return 1;
  }
  // Analysis responses already end in '\n' (they are the one-shot
  // command's stdout, printed verbatim); only bare strings like "pong"
  // get one appended.
  std::fputs(response.stdout_text.c_str(), stdout);
  if (!response.stdout_text.empty() && response.stdout_text.back() != '\n') {
    std::fputc('\n', stdout);
  }
  if (hasFlag(args, "--timing")) {
    std::fprintf(stderr, "query: %s in %llu us\n",
                 response.cached ? "cached" : "computed",
                 static_cast<unsigned long long>(response.wall_us));
  }
  obs::RunReport::global().note("query_cached", static_cast<std::uint64_t>(response.cached));
  obs::RunReport::global().note("query_wall_us", response.wall_us);
  return 0;
}

/// Dispatches one command (global flags already stripped from `args`).
int runCommand(const std::string& command, const std::vector<std::string>& args) {
  if (command == "extract") return cmdExtract(args);
  if (command == "serve") return cmdServe(args);
  if (command == "query") return cmdQuery(args);
  if (command == "amplify") return cmdAmplify(args);
  if (command == "table2") {
    std::fputs(study::formatTable2(study::runCoverageStudy()).c_str(), stdout);
    return 0;
  }
  if (command == "table3") {
    std::fputs(study::formatTable3().c_str(), stdout);
    return 0;
  }
  if (command == "table4") {
    std::fputs(study::formatTable4().c_str(), stdout);
    return 0;
  }
  if (command == "table5") {
    const corpus::Table5Result result = corpus::runTable5(taintOptionsFromFlags(args));
    obs::RunReport::global().note("unique_deps", result.unique_deps.size());
    std::fputs(corpus::formatTable5(result).c_str(), stdout);
    return 0;
  }
  if (command == "docck") {
    const tools::DocCheckReport report = tools::runCorpusDocCheck();
    std::printf("%s\n", report.summary().c_str());
    for (const tools::DocIssue& issue : report.issues) {
      std::printf("  [%s] %s\n", tools::docIssueKindName(issue.kind),
                  issue.explanation.c_str());
    }
    return 0;
  }
  if (command == "handleck") {
    const tools::HandleCheckReport report = tools::runCorpusHandleCheck();
    std::printf("%s\n", report.summary().c_str());
    for (const tools::HandleCase& c : report.cases) {
      if (c.outcome == tools::HandleOutcome::Corruption ||
          c.outcome == tools::HandleOutcome::SilentAccept) {
        std::printf("  [%s] %s\n      %s\n", tools::handleOutcomeName(c.outcome),
                    c.description.c_str(), c.detail.c_str());
      }
    }
    return 0;
  }
  if (command == "bugck") {
    const int runs = static_cast<int>(std::strtol(flagValue(args, "--runs", "100").c_str(),
                                                  nullptr, 10));
    const std::vector<model::Dependency> deps = corpus::runTable5().unique_deps;
    const tools::CampaignResult naive = tools::runCampaign(runs, false, deps);
    const tools::CampaignResult aware = tools::runCampaign(runs, true, deps);
    std::fputs(tools::formatCampaignComparison(naive, aware).c_str(), stdout);
    return 0;
  }
  if (command == "figure1") return cmdFigure1();
  if (command == "crashck") return cmdCrashCk(args);
  if (command == "campaign") return cmdCampaign(args);
  if (command == "xfs") {
    const extract::ExtractOptions options = corpus::xfsExtractOptions();
    const auto deps =
        corpus::runScenario(corpus::xfsScenario(), taintOptionsFromFlags(args), &options);
    if (hasFlag(args, "--json")) {
      std::fputs(json::writePretty(model::toJson(deps)).c_str(), stdout);
    } else {
      for (const model::Dependency& dep : deps) std::printf("%s\n", dep.summary().c_str());
      std::printf("\n%zu dependencies extracted from the XFS ecosystem\n", deps.size());
    }
    return 0;
  }
  if (command == "bugs") {
    if (hasFlag(args, "--json")) {
      json::Array cases;
      for (const study::BugCase& bug : study::bugCases()) {
        json::Object o;
        o["id"] = bug.id;
        o["scenario"] = bug.scenario;
        o["title"] = bug.title;
        json::Array dep_ids;
        for (const std::string& id : bug.dependency_ids) dep_ids.emplace_back(id);
        o["dependencies"] = std::move(dep_ids);
        cases.push_back(std::move(o));
      }
      json::Object root;
      root["bugs"] = std::move(cases);
      std::fputs(json::writePretty(root).c_str(), stdout);
    } else {
      for (const study::BugCase& bug : study::bugCases()) {
        std::printf("%-12s [%s] %s\n", bug.id.c_str(), bug.scenario.c_str(),
                    bug.title.c_str());
      }
      std::printf("\n%zu bug cases\n", study::bugCases().size());
    }
    return 0;
  }
  if (command == "explain") {
    if (args.empty()) {
      std::fprintf(stderr, "explain: which parameter? (e.g. mke2fs.sparse_super2)\n");
      return 2;
    }
    const std::string& param = args[0];
    const corpus::Table5Result result = corpus::runTable5();
    const model::Parameter* registered = corpus::ecosystem().findParameter(param);
    if (registered != nullptr) {
      std::printf("%s  (%s, %s stage): %s\n\n", param.c_str(), registered->flag.c_str(),
                  model::configStageName(registered->stage), registered->description.c_str());
    } else {
      std::printf("%s  (not in the parameter registry)\n\n", param.c_str());
    }
    int shown = 0;
    for (const model::Dependency& dep : result.unique_deps) {
      if (dep.param != param && dep.other_param != param) continue;
      std::printf("  %s\n", dep.summary().c_str());
      for (const std::string& step : dep.trace) std::printf("      %s\n", step.c_str());
      ++shown;
    }
    bool documented = false;
    for (const corpus::ManualEntry& entry : corpus::allManuals()) {
      if (entry.claim.param == param || entry.claim.other_param == param) {
        std::printf("  manual: \"%s\"\n", entry.text.c_str());
        documented = true;
      }
    }
    if (shown == 0) std::puts("  no extracted dependencies involve this parameter");
    if (!documented) std::puts("  no manual claim mentions this parameter");
    return 0;
  }
  if (command == "graph") {
    const corpus::Table5Result result = corpus::runTable5();
    tools::GraphOptions options;
    options.include_self_deps = hasFlag(args, "--self-deps");
    std::fputs(tools::renderDependencyGraphDot(result.unique_deps, options).c_str(), stdout);
    return 0;
  }
  if (command == "check") return cmdCheck(args);
  if (command == "export-corpus") {
    if (args.empty()) {
      std::fprintf(stderr, "export-corpus: need a target directory\n");
      return 2;
    }
    const std::string dir = args[0];
    auto writeFile = [&](const std::string& name, std::string_view text) {
      const std::string out_path = dir + "/" + name;
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s (does the directory exist?)\n",
                     out_path.c_str());
        std::exit(1);
      }
      out << text;
      std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());
    };
    for (const char* header : {"ext4_fs.h", "fsdep_libc.h", "xfs_fs.h", "btrfs_fs.h"}) {
      writeFile(header, *corpus::headerSource(header));
    }
    for (const auto& names : {corpus::componentNames(), corpus::xfsComponentNames(),
                              corpus::btrfsComponentNames()}) {
      for (const std::string& component : names) {
        writeFile(component + ".c", corpus::componentSource(component));
      }
    }
    return 0;
  }
  if (command == "dump-ast") return cmdDumpAst(args);
  if (command == "dump-cfg") return cmdDumpCfg(args);
  return usage();
}

/// Per-invocation observability session. start() flips tracing on when
/// requested; finish() records wall time / exit code and writes the
/// trace, profile, metrics and report files. Output files are written
/// even when the command fails — a failing run is exactly the one worth
/// studying.
class ObsSession {
 public:
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;
  /// Profile destination; "" with profile_enabled means stdout (the
  /// `fsdep profile` subcommand).
  std::string profile_path;
  bool profile_enabled = false;
  obs::ProfileFormat profile_format = obs::ProfileFormat::Text;

  void start(const std::string& command, const std::vector<std::string>& args) {
    command_ = command;
    start_ = std::chrono::steady_clock::now();
    obs::RunReport& report = obs::RunReport::global();
    report.setCommand(command, args);
    report.setJobs(ThreadPool::globalJobs());
    if (!trace_path.empty() || profile_enabled) obs::Trace::start();
    // The root span makes the whole run attributable: everything the
    // command does nests under cli/<command>, so profile coverage is
    // the command span's share of measured wall time.
    if (profile_enabled) root_span_.emplace("cli", command_.c_str());
  }

  void finish(int exit_code) {
    root_span_.reset();  // close the root before measuring wall time
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    obs::RunReport& report = obs::RunReport::global();
    report.setWallMillis(wall_ms);
    report.setExitCode(exit_code);
    FSDEP_LOG_INFO("cli", "done in %.1f ms (exit %d)", wall_ms, exit_code);
    if (!trace_path.empty() || profile_enabled) {
      // One collection serves both outputs; no JSON round trip for the
      // profile.
      const std::vector<obs::TraceEvent> events = obs::Trace::stopEvents();
      report.setTraceDropped(obs::Trace::droppedEvents());
      if (!trace_path.empty() && !writeText(trace_path, obs::Trace::render(events))) {
        FSDEP_LOG_ERROR("cli", "cannot write trace file %s", trace_path.c_str());
      }
      if (profile_enabled) {
        const obs::Profile profile = obs::buildProfile(events, wall_ms, command_);
        const std::string text = obs::renderProfile(profile, profile_format);
        if (profile_path.empty()) {
          std::fputs(text.c_str(), stdout);
        } else if (!writeText(profile_path, text)) {
          FSDEP_LOG_ERROR("cli", "cannot write profile file %s", profile_path.c_str());
        }
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (out) {
        out << obs::Registry::global().renderJson();
      } else {
        FSDEP_LOG_ERROR("cli", "cannot write metrics file %s", metrics_path.c_str());
      }
    }
    if (!report_path.empty() && !report.writeFile(report_path)) {
      FSDEP_LOG_ERROR("cli", "cannot write report file %s", report_path.c_str());
    }
  }

 private:
  static bool writeText(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    if (!out) return false;
    out << text;
    return static_cast<bool>(out);
  }

  std::string command_;
  /// Wraps the whole command; its name points into command_, which
  /// outlives it.
  std::optional<obs::Span> root_span_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  // Global options, accepted by every command and stripped before
  // dispatch. --jobs overrides the FSDEP_JOBS environment variable;
  // --stats prints pipeline perf counters to stderr on exit; --trace /
  // --metrics / --report write observability files; --log overrides the
  // FSDEP_LOG environment variable.
  struct StatsPrinter {
    bool enabled = false;
    ~StatsPrinter() {
      if (enabled) std::fputs(corpus::pipelineStatsSnapshot().format().c_str(), stderr);
    }
  } stats_printer;
  ObsSession obs;
  const char* env_cache_dir = std::getenv("FSDEP_CACHE_DIR");
  std::string cache_dir = env_cache_dir != nullptr ? env_cache_dir : "";
  bool no_cache = false;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--no-cache") {
      no_cache = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (args[i] == "--cache-dir" && i + 1 < args.size()) {
      cache_dir = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    if (args[i] == "--stats") {
      stats_printer.enabled = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (args[i] == "--jobs" && i + 1 < args.size()) {
      const unsigned long jobs = std::strtoul(args[i + 1].c_str(), nullptr, 10);
      if (jobs == 0) {
        std::fprintf(stderr, "--jobs needs a positive integer, got '%s'\n",
                     args[i + 1].c_str());
        return 2;
      }
      ThreadPool::setGlobalJobs(static_cast<std::size_t>(jobs));
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    if ((args[i] == "--trace" || args[i] == "--metrics" || args[i] == "--report") &&
        i + 1 < args.size()) {
      std::string& path = args[i] == "--trace" ? obs.trace_path
                          : args[i] == "--metrics" ? obs.metrics_path
                                                   : obs.report_path;
      path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    if (args[i] == "--profile" && i + 1 < args.size()) {
      obs.profile_enabled = true;
      obs.profile_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    if (args[i] == "--profile-format" && i + 1 < args.size()) {
      if (!obs::parseProfileFormat(args[i + 1], obs.profile_format)) {
        std::fprintf(stderr, "--profile-format wants text|json|folded, got '%s'\n",
                     args[i + 1].c_str());
        return 2;
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    if (args[i] == "--log" && i + 1 < args.size()) {
      const obs::LogLevel parsed =
          obs::parseLogLevel(args[i + 1].c_str(), obs::LogLevel::Off);
      if (parsed == obs::LogLevel::Off && args[i + 1] != "off") {
        std::fprintf(stderr, "--log wants debug|info|warn|error|off, got '%s'\n",
                     args[i + 1].c_str());
        return 2;
      }
      obs::setLogLevel(parsed);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    ++i;
  }

  // Cache wiring: --no-cache beats --cache-dir/FSDEP_CACHE_DIR and also
  // turns off in-process component reuse; otherwise a configured
  // directory enables the persistent result cache for every command.
  if (no_cache) {
    corpus::ComponentCache::global().setEnabled(false);
    cache_dir.clear();
  }
  if (!cache_dir.empty()) {
    corpus::DiskCache::global().configure({cache_dir});
    FSDEP_LOG_INFO("cli", "disk cache at %s", cache_dir.c_str());
  }

  // `fsdep profile [--format F] [--out FILE] [<command> [args...]]` is
  // sugar for running the wrapped command with profiling on; without
  // --out, the attribution goes to stdout after the command's output.
  std::string command_to_run = command;
  if (command == "profile") {
    obs.profile_enabled = true;
    for (std::size_t i = 0; i < args.size();) {
      if (args[i] == "--out" && i + 1 < args.size()) {
        obs.profile_path = args[i + 1];
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        continue;
      }
      if (args[i] == "--format" && i + 1 < args.size()) {
        if (!obs::parseProfileFormat(args[i + 1], obs.profile_format)) {
          std::fprintf(stderr, "profile: --format wants text|json|folded, got '%s'\n",
                       args[i + 1].c_str());
          return 2;
        }
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        continue;
      }
      ++i;
    }
    command_to_run = "table5";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].rfind("--", 0) == 0) continue;
      command_to_run = args[i];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }

  obs.start(command_to_run, args);
  int code = 0;
  try {
    code = runCommand(command_to_run, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fsdep: %s\n", e.what());
    FSDEP_LOG_ERROR("cli", "%s: %s", command_to_run.c_str(), e.what());
    code = 1;
  }
  obs.finish(code);
  return code;
}
