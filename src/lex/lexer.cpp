#include "lex/lexer.h"

#include <cctype>

namespace fsdep::lex {

Lexer::Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags)
    : sm_(sm), file_(file), diags_(diags), text_(sm.contents(file)) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
    at_line_start_ = true;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

SourceLoc Lexer::here() const { return SourceLoc{file_, line_, column_}; }

Token Lexer::makeToken(TokenKind kind, SourceLoc loc, std::string text) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.loc = loc;
  return t;
}

void Lexer::skipWhitespaceAndComments() {
  while (pos_ < text_.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '\\' && peek(1) == '\n') {
      advance();
      advance();  // line continuation
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < text_.size() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc start = here();
      advance();
      advance();
      bool closed = false;
      while (pos_ < text_.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) diags_.error(start, "unterminated block comment");
    } else {
      return;
    }
  }
}

Token Lexer::lexIdentifier(SourceLoc loc) {
  const std::size_t start = pos_;
  while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) advance();
  std::string text(text_.substr(start, pos_ - start));
  const TokenKind kind = classifyIdentifier(text);
  return makeToken(kind, loc, std::move(text));
}

Token Lexer::lexNumber(SourceLoc loc) {
  const std::size_t start = pos_;
  std::int64_t value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      const char c = peek();
      int digit = 0;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
      else digit = 10 + (c - 'A');
      value = value * 16 + digit;
      advance();
    }
  } else if (peek() == '0' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (peek() >= '0' && peek() <= '7') {
      value = value * 8 + (peek() - '0');
      advance();
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + (peek() - '0');
      advance();
    }
  }
  // Integer suffixes (U, L, UL, ULL, ...) — accepted and ignored.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') advance();
  Token t = makeToken(TokenKind::IntLiteral, loc, std::string(text_.substr(start, pos_ - start)));
  t.int_value = value;
  return t;
}

Token Lexer::lexCharLiteral(SourceLoc loc) {
  advance();  // opening quote
  std::int64_t value = 0;
  if (peek() == '\\') {
    advance();
    const char e = advance();
    switch (e) {
      case 'n': value = '\n'; break;
      case 't': value = '\t'; break;
      case 'r': value = '\r'; break;
      case '0': value = '\0'; break;
      case '\\': value = '\\'; break;
      case '\'': value = '\''; break;
      case '"': value = '"'; break;
      default:
        diags_.error(loc, std::string("unknown escape '\\") + e + "' in char literal");
        value = e;
    }
  } else if (pos_ < text_.size()) {
    value = advance();
  }
  if (!match('\'')) diags_.error(loc, "unterminated char literal");
  Token t = makeToken(TokenKind::CharLiteral, loc, std::string(1, static_cast<char>(value)));
  t.int_value = value;
  return t;
}

Token Lexer::lexStringLiteral(SourceLoc loc) {
  advance();  // opening quote
  std::string value;
  while (pos_ < text_.size() && peek() != '"' && peek() != '\n') {
    char c = advance();
    if (c == '\\' && pos_ < text_.size()) {
      const char e = advance();
      switch (e) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case 'r': value += '\r'; break;
        case '0': value += '\0'; break;
        case '\\': value += '\\'; break;
        case '"': value += '"'; break;
        case '\'': value += '\''; break;
        default: value += e;
      }
    } else {
      value += c;
    }
  }
  if (!match('"')) diags_.error(loc, "unterminated string literal");
  return makeToken(TokenKind::StringLiteral, loc, std::move(value));
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  const bool start_of_line = at_line_start_;
  at_line_start_ = false;
  const SourceLoc loc = here();
  if (pos_ >= text_.size()) {
    Token t = makeToken(TokenKind::Eof, loc, "");
    t.start_of_line = start_of_line;
    return t;
  }

  const char c = peek();
  Token t;
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    t = lexIdentifier(loc);
  } else if (std::isdigit(static_cast<unsigned char>(c))) {
    t = lexNumber(loc);
  } else if (c == '\'') {
    t = lexCharLiteral(loc);
  } else if (c == '"') {
    t = lexStringLiteral(loc);
  } else {
    advance();
    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::LParen; break;
      case ')': kind = TokenKind::RParen; break;
      case '{': kind = TokenKind::LBrace; break;
      case '}': kind = TokenKind::RBrace; break;
      case '[': kind = TokenKind::LBracket; break;
      case ']': kind = TokenKind::RBracket; break;
      case ';': kind = TokenKind::Semicolon; break;
      case ',': kind = TokenKind::Comma; break;
      case '?': kind = TokenKind::Question; break;
      case '~': kind = TokenKind::Tilde; break;
      case '#': kind = TokenKind::Hash; break;
      case ':': kind = TokenKind::Colon; break;
      case '.':
        if (peek() == '.' && peek(1) == '.') {
          advance();
          advance();
          kind = TokenKind::Ellipsis;
        } else {
          kind = TokenKind::Dot;
        }
        break;
      case '+':
        kind = match('+') ? TokenKind::PlusPlus : match('=') ? TokenKind::PlusAssign : TokenKind::Plus;
        break;
      case '-':
        kind = match('-') ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusAssign
               : match('>') ? TokenKind::Arrow
                            : TokenKind::Minus;
        break;
      case '*': kind = match('=') ? TokenKind::StarAssign : TokenKind::Star; break;
      case '/': kind = match('=') ? TokenKind::SlashAssign : TokenKind::Slash; break;
      case '%': kind = match('=') ? TokenKind::PercentAssign : TokenKind::Percent; break;
      case '^': kind = match('=') ? TokenKind::CaretAssign : TokenKind::Caret; break;
      case '!': kind = match('=') ? TokenKind::BangEqual : TokenKind::Bang; break;
      case '=': kind = match('=') ? TokenKind::EqualEqual : TokenKind::Assign; break;
      case '&':
        kind = match('&') ? TokenKind::AmpAmp : match('=') ? TokenKind::AmpAssign : TokenKind::Amp;
        break;
      case '|':
        kind = match('|') ? TokenKind::PipePipe : match('=') ? TokenKind::PipeAssign : TokenKind::Pipe;
        break;
      case '<':
        if (match('<')) {
          kind = match('=') ? TokenKind::ShlAssign : TokenKind::Shl;
        } else {
          kind = match('=') ? TokenKind::LessEqual : TokenKind::Less;
        }
        break;
      case '>':
        if (match('>')) {
          kind = match('=') ? TokenKind::ShrAssign : TokenKind::Shr;
        } else {
          kind = match('=') ? TokenKind::GreaterEqual : TokenKind::Greater;
        }
        break;
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        return next();
    }
    t = makeToken(kind, loc, std::string(tokenKindName(kind)));
  }
  t.start_of_line = start_of_line;
  return t;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> tokens;
  while (true) {
    Token t = next();
    if (t.isEof()) break;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

}  // namespace fsdep::lex
