// A deliberately small C preprocessor: object-like #define, #undef,
// #include "..." via a pluggable resolver, and #ifdef/#ifndef/#else/#endif
// (enough for header guards and feature gates in the corpus). Function-like
// macros are not supported; the corpus uses real functions and enums, which
// also gives the taint analysis more to chew on.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lex/lexer.h"
#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace fsdep::lex {

/// Resolves an #include'd name to file contents, or nullopt when unknown.
using IncludeResolver = std::function<std::optional<std::string>(std::string_view name)>;

class Preprocessor {
 public:
  Preprocessor(SourceManager& sm, DiagnosticEngine& diags, IncludeResolver resolver);

  /// Pre-defines an object-like macro (like -D on a compiler command line).
  void defineMacro(const std::string& name, const std::string& replacement_text);

  /// Tokenizes `file` with all directives processed and macros expanded.
  std::vector<Token> tokenize(FileId file);

  [[nodiscard]] bool isMacroDefined(const std::string& name) const {
    return macros_.contains(name);
  }

 private:
  struct Macro {
    std::vector<Token> replacement;
  };

  void processFile(FileId file, std::vector<Token>& out, int depth);
  void handleDirective(Lexer& lexer, const Token& hash, std::vector<Token>& out, int depth);
  void emitToken(Token token, std::vector<Token>& out);
  void expandMacro(const std::string& name, SourceLoc use_loc, std::vector<Token>& out,
                   std::unordered_set<std::string>& expanding);

  /// Reads tokens until the end of the directive's line.
  static std::vector<Token> readDirectiveTail(Lexer& lexer, std::uint32_t line, Token& pending,
                                              bool& has_pending);

  [[nodiscard]] bool active() const;

  SourceManager& sm_;
  DiagnosticEngine& diags_;
  IncludeResolver resolver_;
  std::unordered_map<std::string, Macro> macros_;
  std::unordered_set<std::string> included_once_;  // include-guard shortcut

  struct Conditional {
    bool parent_active;
    bool this_active;
    bool seen_else;
  };
  std::vector<Conditional> conditionals_;

  static constexpr int kMaxIncludeDepth = 16;
};

}  // namespace fsdep::lex
