#include "lex/token.h"

#include <unordered_map>

namespace fsdep::lex {

const char* tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::Eof: return "eof";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "int-literal";
    case TokenKind::CharLiteral: return "char-literal";
    case TokenKind::StringLiteral: return "string-literal";
    case TokenKind::KwVoid: return "void";
    case TokenKind::KwChar: return "char";
    case TokenKind::KwShort: return "short";
    case TokenKind::KwInt: return "int";
    case TokenKind::KwLong: return "long";
    case TokenKind::KwSigned: return "signed";
    case TokenKind::KwUnsigned: return "unsigned";
    case TokenKind::KwStruct: return "struct";
    case TokenKind::KwEnum: return "enum";
    case TokenKind::KwTypedef: return "typedef";
    case TokenKind::KwStatic: return "static";
    case TokenKind::KwConst: return "const";
    case TokenKind::KwExtern: return "extern";
    case TokenKind::KwIf: return "if";
    case TokenKind::KwElse: return "else";
    case TokenKind::KwWhile: return "while";
    case TokenKind::KwFor: return "for";
    case TokenKind::KwDo: return "do";
    case TokenKind::KwSwitch: return "switch";
    case TokenKind::KwCase: return "case";
    case TokenKind::KwDefault: return "default";
    case TokenKind::KwReturn: return "return";
    case TokenKind::KwBreak: return "break";
    case TokenKind::KwContinue: return "continue";
    case TokenKind::KwSizeof: return "sizeof";
    case TokenKind::KwGoto: return "goto";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LBrace: return "{";
    case TokenKind::RBrace: return "}";
    case TokenKind::LBracket: return "[";
    case TokenKind::RBracket: return "]";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Comma: return ",";
    case TokenKind::Colon: return ":";
    case TokenKind::Question: return "?";
    case TokenKind::Arrow: return "->";
    case TokenKind::Dot: return ".";
    case TokenKind::Ellipsis: return "...";
    case TokenKind::Plus: return "+";
    case TokenKind::Minus: return "-";
    case TokenKind::Star: return "*";
    case TokenKind::Slash: return "/";
    case TokenKind::Percent: return "%";
    case TokenKind::Amp: return "&";
    case TokenKind::Pipe: return "|";
    case TokenKind::Caret: return "^";
    case TokenKind::Tilde: return "~";
    case TokenKind::Bang: return "!";
    case TokenKind::Shl: return "<<";
    case TokenKind::Shr: return ">>";
    case TokenKind::Less: return "<";
    case TokenKind::Greater: return ">";
    case TokenKind::LessEqual: return "<=";
    case TokenKind::GreaterEqual: return ">=";
    case TokenKind::EqualEqual: return "==";
    case TokenKind::BangEqual: return "!=";
    case TokenKind::AmpAmp: return "&&";
    case TokenKind::PipePipe: return "||";
    case TokenKind::Assign: return "=";
    case TokenKind::PlusAssign: return "+=";
    case TokenKind::MinusAssign: return "-=";
    case TokenKind::StarAssign: return "*=";
    case TokenKind::SlashAssign: return "/=";
    case TokenKind::PercentAssign: return "%=";
    case TokenKind::AmpAssign: return "&=";
    case TokenKind::PipeAssign: return "|=";
    case TokenKind::CaretAssign: return "^=";
    case TokenKind::ShlAssign: return "<<=";
    case TokenKind::ShrAssign: return ">>=";
    case TokenKind::PlusPlus: return "++";
    case TokenKind::MinusMinus: return "--";
    case TokenKind::Hash: return "#";
  }
  return "unknown";
}

TokenKind classifyIdentifier(std::string_view text) {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"void", TokenKind::KwVoid},       {"char", TokenKind::KwChar},
      {"short", TokenKind::KwShort},     {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},       {"signed", TokenKind::KwSigned},
      {"unsigned", TokenKind::KwUnsigned}, {"struct", TokenKind::KwStruct},
      {"enum", TokenKind::KwEnum},       {"typedef", TokenKind::KwTypedef},
      {"static", TokenKind::KwStatic},   {"const", TokenKind::KwConst},
      {"extern", TokenKind::KwExtern},   {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"do", TokenKind::KwDo},
      {"switch", TokenKind::KwSwitch},   {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault}, {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
      {"sizeof", TokenKind::KwSizeof},   {"goto", TokenKind::KwGoto},
  };
  const auto it = kKeywords.find(text);
  return it != kKeywords.end() ? it->second : TokenKind::Identifier;
}

}  // namespace fsdep::lex
