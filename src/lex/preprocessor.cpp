#include "lex/preprocessor.h"

namespace fsdep::lex {

Preprocessor::Preprocessor(SourceManager& sm, DiagnosticEngine& diags, IncludeResolver resolver)
    : sm_(sm), diags_(diags), resolver_(std::move(resolver)) {}

void Preprocessor::defineMacro(const std::string& name, const std::string& replacement_text) {
  const FileId file = sm_.addBuffer("<predefined:" + name + ">", replacement_text);
  Lexer lexer(sm_, file, diags_);
  macros_[name] = Macro{lexer.lexAll()};
}

std::vector<Token> Preprocessor::tokenize(FileId file) {
  std::vector<Token> out;
  processFile(file, out, 0);
  if (!conditionals_.empty()) {
    diags_.error(SourceLoc{file, 1, 1}, "unterminated #if block at end of input");
    conditionals_.clear();
  }
  return out;
}

bool Preprocessor::active() const {
  for (const Conditional& c : conditionals_) {
    if (!c.parent_active || !c.this_active) return false;
  }
  return true;
}

std::vector<Token> Preprocessor::readDirectiveTail(Lexer& lexer, std::uint32_t line, Token& pending,
                                                   bool& has_pending) {
  std::vector<Token> tail;
  while (true) {
    Token t = lexer.next();
    if (t.isEof()) break;
    if (t.loc.line != line || t.start_of_line) {
      pending = std::move(t);
      has_pending = true;
      break;
    }
    tail.push_back(std::move(t));
  }
  return tail;
}

void Preprocessor::processFile(FileId file, std::vector<Token>& out, int depth) {
  if (depth > kMaxIncludeDepth) {
    diags_.error(SourceLoc{file, 1, 1}, "#include nesting too deep");
    return;
  }
  const std::size_t conditional_depth_at_entry = conditionals_.size();

  Lexer lexer(sm_, file, diags_);
  Token pending;
  bool has_pending = false;

  while (true) {
    Token t = has_pending ? std::move(pending) : lexer.next();
    has_pending = false;
    if (t.isEof()) break;

    if (t.is(TokenKind::Hash) && t.start_of_line) {
      const std::uint32_t line = t.loc.line;
      Token name_tok = lexer.next();
      if (name_tok.isEof() || name_tok.loc.line != line) {
        if (!name_tok.isEof()) {
          pending = std::move(name_tok);
          has_pending = true;
        }
        continue;  // a lone '#' line is a null directive
      }
      std::vector<Token> tail = readDirectiveTail(lexer, line, pending, has_pending);
      const std::string& directive = name_tok.text;

      if (directive == "include") {
        if (!active()) continue;
        if (tail.size() != 1 || !tail[0].is(TokenKind::StringLiteral)) {
          diags_.error(name_tok.loc, "#include expects a \"file\" operand");
          continue;
        }
        const std::string& inc_name = tail[0].text;
        if (included_once_.contains(inc_name)) continue;
        std::optional<std::string> contents = resolver_ ? resolver_(inc_name) : std::nullopt;
        if (!contents) {
          diags_.error(tail[0].loc, "cannot resolve #include \"" + inc_name + "\"");
          continue;
        }
        included_once_.insert(inc_name);
        FileId inc_file = sm_.findByName(inc_name);
        if (!inc_file.valid()) inc_file = sm_.addBuffer(inc_name, *std::move(contents));
        processFile(inc_file, out, depth + 1);
      } else if (directive == "define") {
        if (!active()) continue;
        if (tail.empty() || !tail[0].is(TokenKind::Identifier)) {
          diags_.error(name_tok.loc, "#define expects a macro name");
          continue;
        }
        Macro m;
        m.replacement.assign(tail.begin() + 1, tail.end());
        macros_[tail[0].text] = std::move(m);
      } else if (directive == "undef") {
        if (!active()) continue;
        if (tail.size() == 1 && tail[0].is(TokenKind::Identifier)) macros_.erase(tail[0].text);
        else diags_.error(name_tok.loc, "#undef expects a macro name");
      } else if (directive == "ifdef" || directive == "ifndef") {
        bool defined = tail.size() == 1 && tail[0].is(TokenKind::Identifier) &&
                       macros_.contains(tail[0].text);
        if (tail.size() != 1) diags_.error(name_tok.loc, "#" + directive + " expects one name");
        const bool cond = directive == "ifdef" ? defined : !defined;
        conditionals_.push_back(Conditional{active(), cond, false});
      } else if (directive == "else") {
        if (conditionals_.size() <= conditional_depth_at_entry) {
          diags_.error(name_tok.loc, "#else without matching #ifdef");
        } else {
          Conditional& c = conditionals_.back();
          if (c.seen_else) diags_.error(name_tok.loc, "duplicate #else");
          c.seen_else = true;
          c.this_active = !c.this_active;
        }
      } else if (directive == "endif") {
        if (conditionals_.size() <= conditional_depth_at_entry) {
          diags_.error(name_tok.loc, "#endif without matching #ifdef");
        } else {
          conditionals_.pop_back();
        }
      } else if (directive == "pragma") {
        // Ignored.
      } else {
        if (active()) diags_.error(name_tok.loc, "unknown directive #" + directive);
      }
      continue;
    }

    if (active()) emitToken(std::move(t), out);
  }

  if (conditionals_.size() != conditional_depth_at_entry) {
    diags_.error(SourceLoc{file, 1, 1}, "#ifdef block not closed before end of file");
    conditionals_.resize(conditional_depth_at_entry);
  }
}

void Preprocessor::emitToken(Token token, std::vector<Token>& out) {
  if (token.is(TokenKind::Identifier) && macros_.contains(token.text)) {
    std::unordered_set<std::string> expanding;
    expandMacro(token.text, token.loc, out, expanding);
    return;
  }
  out.push_back(std::move(token));
}

void Preprocessor::expandMacro(const std::string& name, SourceLoc use_loc, std::vector<Token>& out,
                               std::unordered_set<std::string>& expanding) {
  const auto it = macros_.find(name);
  if (it == macros_.end() || expanding.contains(name)) {
    // Self-referential macros stay as plain identifiers, like a real cpp.
    Token t;
    t.kind = TokenKind::Identifier;
    t.text = name;
    t.loc = use_loc;
    out.push_back(std::move(t));
    return;
  }
  expanding.insert(name);
  for (const Token& rep : it->second.replacement) {
    if (rep.is(TokenKind::Identifier) && macros_.contains(rep.text)) {
      expandMacro(rep.text, use_loc, out, expanding);
    } else {
      Token t = rep;
      t.loc = use_loc;  // report diagnostics at the use site
      out.push_back(std::move(t));
    }
  }
  expanding.erase(name);
}

}  // namespace fsdep::lex
