// Tokens of the C subset understood by the fsdep frontend.
//
// The subset covers what real configuration-handling code in the Ext4
// ecosystem uses: integer arithmetic, structs, enums, pointers, control
// flow, getopt-style switches, and bitwise feature tests. It deliberately
// omits floating point, unions, bitfields, and function pointers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.h"

namespace fsdep::lex {

enum class TokenKind : std::uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwSigned, KwUnsigned,
  KwStruct, KwEnum, KwTypedef, KwStatic, KwConst, KwExtern,
  KwIf, KwElse, KwWhile, KwFor, KwDo, KwSwitch, KwCase, KwDefault,
  KwReturn, KwBreak, KwContinue, KwSizeof, KwGoto,

  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Colon, Question,
  Arrow, Dot, Ellipsis,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Less, Greater, LessEqual, GreaterEqual, EqualEqual, BangEqual,
  AmpAmp, PipePipe,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  PlusPlus, MinusMinus,
  Hash,
};

const char* tokenKindName(TokenKind kind);

/// Returns the keyword kind for `text`, or TokenKind::Identifier.
TokenKind classifyIdentifier(std::string_view text);

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;          ///< spelling (identifier/literal text; op spelling)
  SourceLoc loc;
  bool start_of_line = false;
  std::int64_t int_value = 0;  ///< for IntLiteral / CharLiteral

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isEof() const { return kind == TokenKind::Eof; }
};

}  // namespace fsdep::lex
