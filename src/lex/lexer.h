// Raw tokenizer for a single source buffer. Preprocessing (includes,
// macros, conditionals) is layered on top in lex/preprocessor.h.
#pragma once

#include <vector>

#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace fsdep::lex {

class Lexer {
 public:
  Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags);

  /// Returns the next raw token; Eof forever after the end.
  Token next();

  /// Tokenizes the whole buffer (excluding the final Eof).
  std::vector<Token> lexAll();

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  [[nodiscard]] SourceLoc here() const;

  Token makeToken(TokenKind kind, SourceLoc loc, std::string text) const;
  Token lexIdentifier(SourceLoc loc);
  Token lexNumber(SourceLoc loc);
  Token lexCharLiteral(SourceLoc loc);
  Token lexStringLiteral(SourceLoc loc);
  void skipWhitespaceAndComments();

  const SourceManager& sm_;
  FileId file_;
  DiagnosticEngine& diags_;
  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
  bool at_line_start_ = true;
};

}  // namespace fsdep::lex
