// Debug dumper: renders a TranslationUnit as an indented tree. Used by
// golden tests and the CLI's --dump-ast flag.
#pragma once

#include <string>

#include "ast/ast.h"

namespace fsdep::ast {

std::string dumpStmt(const Stmt& stmt, int indent = 0);
std::string dumpDecl(const Decl& decl, int indent = 0);
std::string dumpTranslationUnit(const TranslationUnit& tu);

}  // namespace fsdep::ast
