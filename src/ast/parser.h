// Recursive-descent parser for the fsdep C subset. Consumes the
// preprocessed token stream and builds a TranslationUnit.
//
// Error handling: the parser reports diagnostics and synchronizes at the
// next ';' or '}' so one bad declaration does not abort the whole file.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "ast/ast.h"
#include "lex/token.h"
#include "support/diagnostics.h"

namespace fsdep::ast {

class Parser {
 public:
  Parser(std::vector<lex::Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole translation unit. Check `diags` for errors afterwards.
  std::unique_ptr<TranslationUnit> parseTranslationUnit(std::string name);

 private:
  // Token stream helpers.
  [[nodiscard]] const lex::Token& peek(std::size_t ahead = 0) const;
  const lex::Token& advance();
  [[nodiscard]] bool check(lex::TokenKind kind) const { return peek().kind == kind; }
  bool match(lex::TokenKind kind);
  const lex::Token& expect(lex::TokenKind kind, const char* context);
  void synchronize();

  // Type parsing.
  [[nodiscard]] bool startsType() const;
  TypeSpec parseTypeSpec();
  void parseDeclaratorSuffix(TypeSpec& type);

  // Declarations.
  DeclPtr parseTopLevelDecl();
  DeclPtr parseRecordDecl(SourceLoc loc);
  DeclPtr parseEnumDecl(SourceLoc loc);
  DeclPtr parseTypedefDecl(SourceLoc loc);
  DeclPtr parseFunctionOrVarDecl(bool is_static);
  NodePtr<VarDecl> parseParamDecl();

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseCompoundStmt();
  StmtPtr parseIfStmt();
  StmtPtr parseWhileStmt();
  StmtPtr parseDoWhileStmt();
  StmtPtr parseForStmt();
  StmtPtr parseSwitchStmt();
  StmtPtr parseReturnStmt();
  NodePtr<DeclStmt> parseDeclStmt();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int min_precedence);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  /// Allocates a node in the arena of the unit being parsed.
  template <typename T, typename... Args>
  NodePtr<T> node(Args&&... args) {
    return tu_->make<T>(std::forward<Args>(args)...);
  }

  std::vector<lex::Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
  std::unordered_set<std::string> typedef_names_;
  lex::Token eof_;
  TranslationUnit* tu_ = nullptr;  ///< unit under construction (node arena)
};

}  // namespace fsdep::ast
