#include "ast/ast.h"

namespace fsdep::ast {

std::string TypeSpec::spelling() const {
  std::string out;
  if (is_const) out += "const ";
  if (is_unsigned) out += "unsigned ";
  switch (base) {
    case BaseTypeKind::Void: out += "void"; break;
    case BaseTypeKind::Char: out += "char"; break;
    case BaseTypeKind::Short: out += "short"; break;
    case BaseTypeKind::Int: out += "int"; break;
    case BaseTypeKind::Long: out += "long"; break;
    case BaseTypeKind::LongLong: out += "long long"; break;
    case BaseTypeKind::Struct: out += "struct " + name; break;
    case BaseTypeKind::Enum: out += "enum " + name; break;
    case BaseTypeKind::Typedef: out += name; break;
  }
  for (int i = 0; i < pointer_depth; ++i) out += '*';
  if (is_array) {
    out += '[';
    if (array_size > 0) out += std::to_string(array_size);
    out += ']';
  }
  return out;
}

bool isAssignment(BinaryOp op) {
  switch (op) {
    case BinaryOp::Assign:
    case BinaryOp::AddAssign:
    case BinaryOp::SubAssign:
    case BinaryOp::MulAssign:
    case BinaryOp::DivAssign:
    case BinaryOp::RemAssign:
    case BinaryOp::AndAssign:
    case BinaryOp::OrAssign:
    case BinaryOp::XorAssign:
    case BinaryOp::ShlAssign:
    case BinaryOp::ShrAssign:
      return true;
    default:
      return false;
  }
}

bool isComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return true;
    default:
      return false;
  }
}

const char* unaryOpSpelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::Not: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::Deref: return "*";
    case UnaryOp::AddrOf: return "&";
    case UnaryOp::PreInc: return "++";
    case UnaryOp::PreDec: return "--";
    case UnaryOp::PostInc: return "++";
    case UnaryOp::PostDec: return "--";
    case UnaryOp::SizeofExpr: return "sizeof";
  }
  return "?";
}

const char* binaryOpSpelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Assign: return "=";
    case BinaryOp::AddAssign: return "+=";
    case BinaryOp::SubAssign: return "-=";
    case BinaryOp::MulAssign: return "*=";
    case BinaryOp::DivAssign: return "/=";
    case BinaryOp::RemAssign: return "%=";
    case BinaryOp::AndAssign: return "&=";
    case BinaryOp::OrAssign: return "|=";
    case BinaryOp::XorAssign: return "^=";
    case BinaryOp::ShlAssign: return "<<=";
    case BinaryOp::ShrAssign: return ">>=";
  }
  return "?";
}

const FunctionDecl* TranslationUnit::findFunction(std::string_view fn_name) const {
  const FunctionDecl* proto = nullptr;
  for (const DeclPtr& d : decls) {
    if (d->kind() != DeclKind::Function || d->name != fn_name) continue;
    const auto* fn = static_cast<const FunctionDecl*>(d.get());
    if (fn->isDefinition()) return fn;
    proto = fn;
  }
  return proto;
}

const RecordDecl* TranslationUnit::findRecord(std::string_view record_name) const {
  for (const DeclPtr& d : decls) {
    if (d->kind() == DeclKind::Record && d->name == record_name) {
      return static_cast<const RecordDecl*>(d.get());
    }
  }
  return nullptr;
}

const VarDecl* TranslationUnit::findGlobal(std::string_view var_name) const {
  for (const DeclPtr& d : decls) {
    if (d->kind() == DeclKind::Var && d->name == var_name) {
      return static_cast<const VarDecl*>(d.get());
    }
  }
  return nullptr;
}

std::vector<const FunctionDecl*> TranslationUnit::functions() const {
  std::vector<const FunctionDecl*> out;
  for (const DeclPtr& d : decls) {
    if (d->kind() == DeclKind::Function) {
      const auto* fn = static_cast<const FunctionDecl*>(d.get());
      if (fn->isDefinition()) out.push_back(fn);
    }
  }
  return out;
}

namespace {

void appendExpr(std::string& out, const Expr& e);

void appendParen(std::string& out, const Expr& e) {
  const bool needs_paren = e.kind() == ExprKind::Binary || e.kind() == ExprKind::Conditional;
  if (needs_paren) out += '(';
  appendExpr(out, e);
  if (needs_paren) out += ')';
}

void appendExpr(std::string& out, const Expr& e) {
  switch (e.kind()) {
    case ExprKind::IntLiteral:
      out += std::to_string(static_cast<const IntLiteralExpr&>(e).value);
      break;
    case ExprKind::StringLiteral:
      out += '"';
      out += static_cast<const StringLiteralExpr&>(e).value;
      out += '"';
      break;
    case ExprKind::DeclRef:
      out += static_cast<const DeclRefExpr&>(e).name;
      break;
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnaryOp::PostInc || u.op == UnaryOp::PostDec) {
        appendParen(out, *u.operand);
        out += unaryOpSpelling(u.op);
      } else if (u.op == UnaryOp::SizeofExpr) {
        out += "sizeof(";
        appendExpr(out, *u.operand);
        out += ')';
      } else {
        out += unaryOpSpelling(u.op);
        appendParen(out, *u.operand);
      }
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      appendParen(out, *b.lhs);
      out += ' ';
      out += binaryOpSpelling(b.op);
      out += ' ';
      appendParen(out, *b.rhs);
      break;
    }
    case ExprKind::Conditional: {
      const auto& c = static_cast<const ConditionalExpr&>(e);
      appendParen(out, *c.cond);
      out += " ? ";
      appendParen(out, *c.then_expr);
      out += " : ";
      appendParen(out, *c.else_expr);
      break;
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      out += c.callee;
      out += '(';
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i != 0) out += ", ";
        appendExpr(out, *c.args[i]);
      }
      out += ')';
      break;
    }
    case ExprKind::Member: {
      const auto& m = static_cast<const MemberExpr&>(e);
      appendParen(out, *m.base);
      out += m.is_arrow ? "->" : ".";
      out += m.member;
      break;
    }
    case ExprKind::Index: {
      const auto& i = static_cast<const IndexExpr&>(e);
      appendParen(out, *i.base);
      out += '[';
      appendExpr(out, *i.index);
      out += ']';
      break;
    }
    case ExprKind::Cast: {
      const auto& c = static_cast<const CastExpr&>(e);
      out += '(';
      out += c.type.spelling();
      out += ')';
      appendParen(out, *c.operand);
      break;
    }
    case ExprKind::SizeofType: {
      const auto& s = static_cast<const SizeofTypeExpr&>(e);
      out += "sizeof(";
      out += s.type.spelling();
      out += ')';
      break;
    }
    case ExprKind::InitList: {
      const auto& l = static_cast<const InitListExpr&>(e);
      out += '{';
      for (std::size_t i = 0; i < l.elements.size(); ++i) {
        if (i != 0) out += ", ";
        appendExpr(out, *l.elements[i]);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string exprToString(const Expr& expr) {
  std::string out;
  appendExpr(out, expr);
  return out;
}

}  // namespace fsdep::ast
