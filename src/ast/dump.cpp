#include "ast/dump.h"

namespace fsdep::ast {
namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

}  // namespace

std::string dumpStmt(const Stmt& stmt, int indent) {
  std::string out = pad(indent);
  switch (stmt.kind()) {
    case StmtKind::Compound: {
      out += "CompoundStmt\n";
      for (const StmtPtr& s : static_cast<const CompoundStmt&>(stmt).body) {
        out += dumpStmt(*s, indent + 1);
      }
      break;
    }
    case StmtKind::Decl: {
      out += "DeclStmt\n";
      for (const auto& v : static_cast<const DeclStmt&>(stmt).vars) {
        out += pad(indent + 1) + "VarDecl " + v->type.spelling() + " " + v->name;
        if (v->init != nullptr) out += " = " + exprToString(*v->init);
        out += '\n';
      }
      break;
    }
    case StmtKind::Expr:
      out += "ExprStmt " + exprToString(*static_cast<const ExprStmt&>(stmt).expr) + '\n';
      break;
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      out += "IfStmt " + exprToString(*s.cond) + '\n';
      out += dumpStmt(*s.then_stmt, indent + 1);
      if (s.else_stmt != nullptr) {
        out += pad(indent) + "Else\n";
        out += dumpStmt(*s.else_stmt, indent + 1);
      }
      break;
    }
    case StmtKind::While: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      out += "WhileStmt " + exprToString(*s.cond) + '\n';
      out += dumpStmt(*s.body, indent + 1);
      break;
    }
    case StmtKind::DoWhile: {
      const auto& s = static_cast<const DoWhileStmt&>(stmt);
      out += "DoWhileStmt " + exprToString(*s.cond) + '\n';
      out += dumpStmt(*s.body, indent + 1);
      break;
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      out += "ForStmt";
      if (s.cond != nullptr) out += " cond=" + exprToString(*s.cond);
      out += '\n';
      if (s.init != nullptr) out += dumpStmt(*s.init, indent + 1);
      out += dumpStmt(*s.body, indent + 1);
      break;
    }
    case StmtKind::Switch: {
      const auto& s = static_cast<const SwitchStmt&>(stmt);
      out += "SwitchStmt " + exprToString(*s.cond) + '\n';
      for (const auto& c : s.cases) out += dumpStmt(*c, indent + 1);
      break;
    }
    case StmtKind::Case: {
      const auto& s = static_cast<const CaseStmt&>(stmt);
      out += s.is_default ? "Default\n" : "Case " + exprToString(*s.value) + '\n';
      for (const StmtPtr& b : s.body) out += dumpStmt(*b, indent + 1);
      break;
    }
    case StmtKind::Break: out += "BreakStmt\n"; break;
    case StmtKind::Continue: out += "ContinueStmt\n"; break;
    case StmtKind::Return: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      out += "ReturnStmt";
      if (s.value != nullptr) out += ' ' + exprToString(*s.value);
      out += '\n';
      break;
    }
    case StmtKind::Null: out += "NullStmt\n"; break;
  }
  return out;
}

std::string dumpDecl(const Decl& decl, int indent) {
  std::string out = pad(indent);
  switch (decl.kind()) {
    case DeclKind::Var: {
      const auto& v = static_cast<const VarDecl&>(decl);
      out += "VarDecl " + v.type.spelling() + " " + v.name;
      if (v.init != nullptr) out += " = " + exprToString(*v.init);
      out += '\n';
      break;
    }
    case DeclKind::Function: {
      const auto& f = static_cast<const FunctionDecl&>(decl);
      out += "FunctionDecl " + f.return_type.spelling() + " " + f.name + "(";
      for (std::size_t i = 0; i < f.params.size(); ++i) {
        if (i != 0) out += ", ";
        out += f.params[i]->type.spelling() + " " + f.params[i]->name;
      }
      if (f.is_variadic) out += f.params.empty() ? "..." : ", ...";
      out += ")\n";
      if (f.body != nullptr) out += dumpStmt(*f.body, indent + 1);
      break;
    }
    case DeclKind::Record: {
      const auto& r = static_cast<const RecordDecl&>(decl);
      out += "RecordDecl " + r.name + '\n';
      for (const FieldDecl& field : r.fields) {
        out += pad(indent + 1) + "FieldDecl " + field.type.spelling() + " " + field.name + '\n';
      }
      break;
    }
    case DeclKind::Enum: {
      const auto& e = static_cast<const EnumDecl&>(decl);
      out += "EnumDecl " + e.name + '\n';
      for (const Enumerator& en : e.enumerators) {
        out += pad(indent + 1) + "Enumerator " + en.name;
        if (en.value_expr != nullptr) out += " = " + exprToString(*en.value_expr);
        out += '\n';
      }
      break;
    }
    case DeclKind::Typedef: {
      const auto& t = static_cast<const TypedefDecl&>(decl);
      out += "TypedefDecl " + t.name + " = " + t.underlying.spelling() + '\n';
      break;
    }
  }
  return out;
}

std::string dumpTranslationUnit(const TranslationUnit& tu) {
  std::string out = "TranslationUnit " + tu.name + '\n';
  for (const DeclPtr& d : tu.decls) out += dumpDecl(*d, 1);
  return out;
}

}  // namespace fsdep::ast
