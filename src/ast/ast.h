// Abstract syntax tree for the fsdep C subset.
//
// Ownership: node *storage* lives in the TranslationUnit's arena; node
// *lifetime* is owned by the parent through ArenaPtr (a unique_ptr whose
// deleter runs the destructor but returns no memory). Freeing a whole TU
// is one arena teardown instead of a pointer-chasing delete cascade, and
// parsing allocates by bumping a pointer. Cross references
// (DeclRef -> VarDecl, Member -> FieldDecl) are non-owning raw pointers
// filled in by sema.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/arena.h"
#include "support/source_location.h"

namespace fsdep::ast {

class Expr;
class Stmt;
class FunctionDecl;
class RecordDecl;
struct FieldDecl;
class VarDecl;

// ---------------------------------------------------------------------------
// Syntactic types
// ---------------------------------------------------------------------------

enum class BaseTypeKind : std::uint8_t {
  Void, Char, Short, Int, Long, LongLong,
  Struct,   ///< struct `name`
  Enum,     ///< enum `name`
  Typedef,  ///< typedef `name`
};

/// A syntactic type: base kind + signedness + pointer depth + array bound.
/// Good enough for the subset (no function pointers, no multi-dim arrays).
struct TypeSpec {
  BaseTypeKind base = BaseTypeKind::Int;
  bool is_unsigned = false;
  bool is_const = false;
  std::string name;          ///< for Struct/Enum/Typedef
  int pointer_depth = 0;
  bool is_array = false;
  std::int64_t array_size = 0;  ///< 0 for unsized arrays

  [[nodiscard]] bool isPointer() const { return pointer_depth > 0; }
  [[nodiscard]] std::string spelling() const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLiteral, StringLiteral, DeclRef, Unary, Binary, Conditional,
  Call, Member, Index, Cast, SizeofType, InitList,
};

enum class UnaryOp : std::uint8_t {
  Plus, Minus, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec, SizeofExpr,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, BitAnd, BitOr, BitXor,
  LogicalAnd, LogicalOr,
  Lt, Le, Gt, Ge, Eq, Ne,
  Assign, AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
  AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign,
};

[[nodiscard]] bool isAssignment(BinaryOp op);
[[nodiscard]] bool isComparison(BinaryOp op);
const char* unaryOpSpelling(UnaryOp op);
const char* binaryOpSpelling(BinaryOp op);

class Expr {
 public:
  virtual ~Expr() = default;
  [[nodiscard]] ExprKind kind() const { return kind_; }
  SourceLoc loc;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// Owning pointer to an arena-backed AST node. The owning
/// TranslationUnit's arena must outlive the pointer.
template <typename T>
using NodePtr = fsdep::ArenaPtr<T>;

using ExprPtr = NodePtr<Expr>;

class IntLiteralExpr final : public Expr {
 public:
  explicit IntLiteralExpr(std::int64_t value) : Expr(ExprKind::IntLiteral), value(value) {}
  std::int64_t value;
};

class StringLiteralExpr final : public Expr {
 public:
  explicit StringLiteralExpr(std::string value)
      : Expr(ExprKind::StringLiteral), value(std::move(value)) {}
  std::string value;
};

class DeclRefExpr final : public Expr {
 public:
  explicit DeclRefExpr(std::string name) : Expr(ExprKind::DeclRef), name(std::move(name)) {}
  std::string name;
  /// Filled by sema: the variable this name resolves to (null for enum
  /// constants and function names).
  const VarDecl* decl = nullptr;
  /// Filled by sema when the name is an enumerator: its constant value.
  bool is_enum_constant = false;
  std::int64_t enum_value = 0;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::Unary), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  ExprPtr operand;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::Binary), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : Expr(ExprKind::Conditional),
        cond(std::move(cond)),
        then_expr(std::move(then_expr)),
        else_expr(std::move(else_expr)) {}
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string callee, std::vector<ExprPtr> args)
      : Expr(ExprKind::Call), callee(std::move(callee)), args(std::move(args)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  /// Filled by sema when the callee is defined in the same translation unit.
  const FunctionDecl* callee_decl = nullptr;
};

class MemberExpr final : public Expr {
 public:
  MemberExpr(ExprPtr base, std::string member, bool is_arrow)
      : Expr(ExprKind::Member), base(std::move(base)), member(std::move(member)), is_arrow(is_arrow) {}
  ExprPtr base;
  std::string member;
  bool is_arrow;
  /// Filled by sema.
  const RecordDecl* record = nullptr;
  const FieldDecl* field = nullptr;
};

class IndexExpr final : public Expr {
 public:
  IndexExpr(ExprPtr base, ExprPtr index)
      : Expr(ExprKind::Index), base(std::move(base)), index(std::move(index)) {}
  ExprPtr base;
  ExprPtr index;
};

class CastExpr final : public Expr {
 public:
  CastExpr(TypeSpec type, ExprPtr operand)
      : Expr(ExprKind::Cast), type(std::move(type)), operand(std::move(operand)) {}
  TypeSpec type;
  ExprPtr operand;
};

class SizeofTypeExpr final : public Expr {
 public:
  explicit SizeofTypeExpr(TypeSpec type) : Expr(ExprKind::SizeofType), type(std::move(type)) {}
  TypeSpec type;
};

class InitListExpr final : public Expr {
 public:
  explicit InitListExpr(std::vector<ExprPtr> elements)
      : Expr(ExprKind::InitList), elements(std::move(elements)) {}
  std::vector<ExprPtr> elements;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class DeclKind : std::uint8_t { Var, Function, Record, Enum, Typedef };

class Decl {
 public:
  virtual ~Decl() = default;
  [[nodiscard]] DeclKind kind() const { return kind_; }
  std::string name;
  SourceLoc loc;

 protected:
  explicit Decl(DeclKind kind) : kind_(kind) {}

 private:
  DeclKind kind_;
};

using DeclPtr = NodePtr<Decl>;

class VarDecl final : public Decl {
 public:
  VarDecl() : Decl(DeclKind::Var) {}
  TypeSpec type;
  ExprPtr init;                 ///< may be null
  bool is_parameter = false;
  bool is_global = false;
  bool is_static = false;
  const FunctionDecl* owner = nullptr;  ///< enclosing function, null for globals
};

struct FieldDecl {
  std::string name;
  TypeSpec type;
  SourceLoc loc;
};

class RecordDecl final : public Decl {
 public:
  RecordDecl() : Decl(DeclKind::Record) {}
  std::vector<FieldDecl> fields;
  [[nodiscard]] const FieldDecl* findField(std::string_view field_name) const {
    for (const FieldDecl& f : fields) {
      if (f.name == field_name) return &f;
    }
    return nullptr;
  }
};

struct Enumerator {
  std::string name;
  ExprPtr value_expr;  ///< may be null (implicit previous+1)
  std::int64_t value = 0;  ///< folded by sema
  SourceLoc loc;
};

class EnumDecl final : public Decl {
 public:
  EnumDecl() : Decl(DeclKind::Enum) {}
  std::vector<Enumerator> enumerators;
};

class TypedefDecl final : public Decl {
 public:
  TypedefDecl() : Decl(DeclKind::Typedef) {}
  TypeSpec underlying;
};

class FunctionDecl final : public Decl {
 public:
  FunctionDecl() : Decl(DeclKind::Function) {}
  TypeSpec return_type;
  std::vector<NodePtr<VarDecl>> params;
  bool is_variadic = false;
  bool is_static = false;
  NodePtr<Stmt> body;  ///< null for prototypes

  [[nodiscard]] bool isDefinition() const { return body != nullptr; }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Compound, Decl, Expr, If, While, DoWhile, For, Switch, Case,
  Break, Continue, Return, Null,
};

class Stmt {
 public:
  virtual ~Stmt() = default;
  [[nodiscard]] StmtKind kind() const { return kind_; }
  SourceLoc loc;

 protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}

 private:
  StmtKind kind_;
};

using StmtPtr = NodePtr<Stmt>;

class CompoundStmt final : public Stmt {
 public:
  CompoundStmt() : Stmt(StmtKind::Compound) {}
  std::vector<StmtPtr> body;
};

class DeclStmt final : public Stmt {
 public:
  DeclStmt() : Stmt(StmtKind::Decl) {}
  std::vector<NodePtr<VarDecl>> vars;
};

class ExprStmt final : public Stmt {
 public:
  explicit ExprStmt(ExprPtr expr) : Stmt(StmtKind::Expr), expr(std::move(expr)) {}
  ExprPtr expr;
};

class IfStmt final : public Stmt {
 public:
  IfStmt() : Stmt(StmtKind::If) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  ///< may be null
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt() : Stmt(StmtKind::While) {}
  ExprPtr cond;
  StmtPtr body;
};

class DoWhileStmt final : public Stmt {
 public:
  DoWhileStmt() : Stmt(StmtKind::DoWhile) {}
  StmtPtr body;
  ExprPtr cond;
};

class ForStmt final : public Stmt {
 public:
  ForStmt() : Stmt(StmtKind::For) {}
  StmtPtr init;  ///< DeclStmt, ExprStmt, or null
  ExprPtr cond;  ///< may be null
  ExprPtr inc;   ///< may be null
  StmtPtr body;
};

class CaseStmt final : public Stmt {
 public:
  CaseStmt() : Stmt(StmtKind::Case) {}
  bool is_default = false;
  ExprPtr value;  ///< null for default
  std::vector<StmtPtr> body;
};

class SwitchStmt final : public Stmt {
 public:
  SwitchStmt() : Stmt(StmtKind::Switch) {}
  ExprPtr cond;
  std::vector<NodePtr<CaseStmt>> cases;
};

class BreakStmt final : public Stmt {
 public:
  BreakStmt() : Stmt(StmtKind::Break) {}
};

class ContinueStmt final : public Stmt {
 public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
};

class ReturnStmt final : public Stmt {
 public:
  ReturnStmt() : Stmt(StmtKind::Return) {}
  ExprPtr value;  ///< may be null
};

class NullStmt final : public Stmt {
 public:
  NullStmt() : Stmt(StmtKind::Null) {}
};

// ---------------------------------------------------------------------------
// Translation unit
// ---------------------------------------------------------------------------

class TranslationUnit {
 public:
  /// Node storage. Declared first so it is destroyed *after* `decls`
  /// (members are destroyed in reverse order): node destructors run via
  /// ArenaPtr while their storage is still mapped.
  fsdep::Arena arena;

  std::string name;  ///< usually the main file name
  std::vector<DeclPtr> decls;

  /// Allocates an AST node in this unit's arena.
  template <typename T, typename... Args>
  NodePtr<T> make(Args&&... args) {
    return NodePtr<T>(arena.make<T>(std::forward<Args>(args)...));
  }

  [[nodiscard]] const FunctionDecl* findFunction(std::string_view fn_name) const;
  [[nodiscard]] const RecordDecl* findRecord(std::string_view record_name) const;
  [[nodiscard]] const VarDecl* findGlobal(std::string_view var_name) const;
  [[nodiscard]] std::vector<const FunctionDecl*> functions() const;
};

/// Renders an expression back to (approximately) C source; used for taint
/// traces and dependency descriptions.
std::string exprToString(const Expr& expr);

}  // namespace fsdep::ast
