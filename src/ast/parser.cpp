#include "ast/parser.h"

#include <optional>

namespace fsdep::ast {

using lex::Token;
using lex::TokenKind;

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  eof_.kind = TokenKind::Eof;
  if (!tokens_.empty()) eof_.loc = tokens_.back().loc;
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : eof_;
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* context) {
  if (check(kind)) return advance();
  diags_.error(peek().loc, std::string("expected '") + lex::tokenKindName(kind) + "' " + context +
                               ", found '" + (peek().isEof() ? "eof" : peek().text) + "'");
  return eof_;
}

void Parser::synchronize() {
  int brace_depth = 0;
  while (!peek().isEof()) {
    const TokenKind k = peek().kind;
    if (k == TokenKind::LBrace) ++brace_depth;
    if (k == TokenKind::RBrace) {
      if (brace_depth == 0) {
        advance();
        return;
      }
      --brace_depth;
    }
    if (k == TokenKind::Semicolon && brace_depth == 0) {
      advance();
      return;
    }
    advance();
  }
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

bool Parser::startsType() const {
  switch (peek().kind) {
    case TokenKind::KwVoid:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwSigned:
    case TokenKind::KwUnsigned:
    case TokenKind::KwStruct:
    case TokenKind::KwEnum:
    case TokenKind::KwConst:
      return true;
    case TokenKind::Identifier:
      return typedef_names_.contains(peek().text);
    default:
      return false;
  }
}

TypeSpec Parser::parseTypeSpec() {
  TypeSpec type;
  bool saw_base = false;
  bool saw_long = false;

  while (true) {
    switch (peek().kind) {
      case TokenKind::KwConst:
        advance();
        type.is_const = true;
        continue;
      case TokenKind::KwSigned:
        advance();
        continue;
      case TokenKind::KwUnsigned:
        advance();
        type.is_unsigned = true;
        if (!saw_base) type.base = BaseTypeKind::Int;
        saw_base = true;
        continue;
      case TokenKind::KwVoid:
        advance();
        type.base = BaseTypeKind::Void;
        saw_base = true;
        continue;
      case TokenKind::KwChar:
        advance();
        type.base = BaseTypeKind::Char;
        saw_base = true;
        continue;
      case TokenKind::KwShort:
        advance();
        type.base = BaseTypeKind::Short;
        saw_base = true;
        continue;
      case TokenKind::KwInt:
        advance();
        if (!saw_long) type.base = BaseTypeKind::Int;
        saw_base = true;
        continue;
      case TokenKind::KwLong:
        advance();
        type.base = saw_long ? BaseTypeKind::LongLong : BaseTypeKind::Long;
        saw_long = true;
        saw_base = true;
        continue;
      case TokenKind::KwStruct: {
        advance();
        type.base = BaseTypeKind::Struct;
        type.name = expect(TokenKind::Identifier, "after 'struct'").text;
        saw_base = true;
        continue;
      }
      case TokenKind::KwEnum: {
        advance();
        type.base = BaseTypeKind::Enum;
        type.name = expect(TokenKind::Identifier, "after 'enum'").text;
        saw_base = true;
        continue;
      }
      case TokenKind::Identifier:
        if (!saw_base && typedef_names_.contains(peek().text)) {
          type.base = BaseTypeKind::Typedef;
          type.name = advance().text;
          saw_base = true;
          continue;
        }
        break;
      default:
        break;
    }
    break;
  }

  while (match(TokenKind::Star)) {
    ++type.pointer_depth;
    while (match(TokenKind::KwConst)) type.is_const = true;
  }
  return type;
}

void Parser::parseDeclaratorSuffix(TypeSpec& type) {
  if (match(TokenKind::LBracket)) {
    type.is_array = true;
    if (check(TokenKind::IntLiteral)) {
      type.array_size = advance().int_value;
    }
    expect(TokenKind::RBracket, "to close array declarator");
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

std::unique_ptr<TranslationUnit> Parser::parseTranslationUnit(std::string name) {
  auto tu = std::make_unique<TranslationUnit>();
  tu_ = tu.get();
  tu->name = std::move(name);
  while (!peek().isEof()) {
    DeclPtr decl = parseTopLevelDecl();
    if (decl != nullptr) tu->decls.push_back(std::move(decl));
  }
  return tu;
}

DeclPtr Parser::parseTopLevelDecl() {
  const SourceLoc loc = peek().loc;

  if (match(TokenKind::KwTypedef)) return parseTypedefDecl(loc);
  if (check(TokenKind::KwStruct) && peek(1).is(TokenKind::Identifier) &&
      peek(2).is(TokenKind::LBrace)) {
    return parseRecordDecl(loc);
  }
  if (check(TokenKind::KwEnum) &&
      ((peek(1).is(TokenKind::Identifier) && peek(2).is(TokenKind::LBrace)) ||
       peek(1).is(TokenKind::LBrace))) {
    return parseEnumDecl(loc);
  }
  if (match(TokenKind::KwExtern)) {
    // extern declarations: parse and drop the body-less decl.
    TypeSpec type = parseTypeSpec();
    (void)type;
    while (!peek().isEof() && !check(TokenKind::Semicolon)) advance();
    expect(TokenKind::Semicolon, "after extern declaration");
    return nullptr;
  }
  bool is_static = match(TokenKind::KwStatic);
  if (!startsType()) {
    diags_.error(loc, "expected a declaration, found '" + (peek().isEof() ? "eof" : peek().text) + "'");
    synchronize();
    return nullptr;
  }
  return parseFunctionOrVarDecl(is_static);
}

DeclPtr Parser::parseRecordDecl(SourceLoc loc) {
  expect(TokenKind::KwStruct, "at struct definition");
  auto record = node<RecordDecl>();
  record->loc = loc;
  record->name = expect(TokenKind::Identifier, "as struct name").text;
  expect(TokenKind::LBrace, "to open struct body");
  while (!check(TokenKind::RBrace) && !peek().isEof()) {
    FieldDecl field;
    field.loc = peek().loc;
    field.type = parseTypeSpec();
    field.name = expect(TokenKind::Identifier, "as field name").text;
    parseDeclaratorSuffix(field.type);
    record->fields.push_back(std::move(field));
    // Additional declarators share the base type: "u32 a, b;".
    while (match(TokenKind::Comma)) {
      FieldDecl more;
      more.loc = peek().loc;
      more.type = record->fields.back().type;
      more.type.is_array = false;
      more.type.array_size = 0;
      while (match(TokenKind::Star)) ++more.type.pointer_depth;
      more.name = expect(TokenKind::Identifier, "as field name").text;
      parseDeclaratorSuffix(more.type);
      record->fields.push_back(std::move(more));
    }
    expect(TokenKind::Semicolon, "after struct field");
  }
  expect(TokenKind::RBrace, "to close struct body");
  expect(TokenKind::Semicolon, "after struct definition");
  return record;
}

DeclPtr Parser::parseEnumDecl(SourceLoc loc) {
  expect(TokenKind::KwEnum, "at enum definition");
  auto decl = node<EnumDecl>();
  decl->loc = loc;
  if (check(TokenKind::Identifier)) decl->name = advance().text;
  expect(TokenKind::LBrace, "to open enum body");
  while (!check(TokenKind::RBrace) && !peek().isEof()) {
    Enumerator e;
    e.loc = peek().loc;
    e.name = expect(TokenKind::Identifier, "as enumerator name").text;
    if (match(TokenKind::Assign)) e.value_expr = parseConditional();
    decl->enumerators.push_back(std::move(e));
    if (!match(TokenKind::Comma)) break;
  }
  expect(TokenKind::RBrace, "to close enum body");
  expect(TokenKind::Semicolon, "after enum definition");
  return decl;
}

DeclPtr Parser::parseTypedefDecl(SourceLoc loc) {
  auto decl = node<TypedefDecl>();
  decl->loc = loc;
  decl->underlying = parseTypeSpec();
  decl->name = expect(TokenKind::Identifier, "as typedef name").text;
  parseDeclaratorSuffix(decl->underlying);
  expect(TokenKind::Semicolon, "after typedef");
  typedef_names_.insert(decl->name);
  return decl;
}

DeclPtr Parser::parseFunctionOrVarDecl(bool is_static) {
  const SourceLoc loc = peek().loc;
  TypeSpec type = parseTypeSpec();
  const std::string name = expect(TokenKind::Identifier, "as declaration name").text;

  if (check(TokenKind::LParen)) {
    auto fn = node<FunctionDecl>();
    fn->loc = loc;
    fn->name = name;
    fn->return_type = std::move(type);
    fn->is_static = is_static;
    expect(TokenKind::LParen, "to open parameter list");
    if (!check(TokenKind::RParen)) {
      if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
        advance();  // (void)
      } else {
        while (true) {
          if (match(TokenKind::Ellipsis)) {
            fn->is_variadic = true;
            break;
          }
          fn->params.push_back(parseParamDecl());
          if (!match(TokenKind::Comma)) break;
        }
      }
    }
    expect(TokenKind::RParen, "to close parameter list");
    if (match(TokenKind::Semicolon)) return fn;  // prototype
    fn->body = parseCompoundStmt();
    for (auto& p : fn->params) p->owner = fn.get();
    return fn;
  }

  // Global variable(s). Only the first declarator becomes the returned decl;
  // extra comma declarators are rare at file scope in the corpus.
  auto var = node<VarDecl>();
  var->loc = loc;
  var->name = name;
  var->type = std::move(type);
  var->is_global = true;
  var->is_static = is_static;
  parseDeclaratorSuffix(var->type);
  if (match(TokenKind::Assign)) {
    var->init = check(TokenKind::LBrace) ? parsePrimary() : parseAssignment();
  }
  expect(TokenKind::Semicolon, "after global variable");
  return var;
}

NodePtr<VarDecl> Parser::parseParamDecl() {
  auto param = node<VarDecl>();
  param->loc = peek().loc;
  param->is_parameter = true;
  param->type = parseTypeSpec();
  if (check(TokenKind::Identifier)) param->name = advance().text;
  parseDeclaratorSuffix(param->type);
  return param;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parseCompoundStmt() {
  auto compound = node<CompoundStmt>();
  compound->loc = peek().loc;
  expect(TokenKind::LBrace, "to open block");
  while (!check(TokenKind::RBrace) && !peek().isEof()) {
    StmtPtr s = parseStmt();
    if (s != nullptr) compound->body.push_back(std::move(s));
  }
  expect(TokenKind::RBrace, "to close block");
  return compound;
}

StmtPtr Parser::parseStmt() {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::LBrace: return parseCompoundStmt();
    case TokenKind::KwIf: return parseIfStmt();
    case TokenKind::KwWhile: return parseWhileStmt();
    case TokenKind::KwDo: return parseDoWhileStmt();
    case TokenKind::KwFor: return parseForStmt();
    case TokenKind::KwSwitch: return parseSwitchStmt();
    case TokenKind::KwReturn: return parseReturnStmt();
    case TokenKind::KwBreak: {
      advance();
      expect(TokenKind::Semicolon, "after 'break'");
      auto s = node<BreakStmt>();
      s->loc = loc;
      return s;
    }
    case TokenKind::KwContinue: {
      advance();
      expect(TokenKind::Semicolon, "after 'continue'");
      auto s = node<ContinueStmt>();
      s->loc = loc;
      return s;
    }
    case TokenKind::Semicolon: {
      advance();
      auto s = node<NullStmt>();
      s->loc = loc;
      return s;
    }
    case TokenKind::KwGoto:
      diags_.error(loc, "'goto' is not supported by the fsdep C subset");
      synchronize();
      return nullptr;
    default:
      break;
  }

  if (startsType() && !(check(TokenKind::Identifier) && peek(1).is(TokenKind::LParen))) {
    return parseDeclStmt();
  }

  auto s = node<ExprStmt>(parseExpr());
  s->loc = loc;
  expect(TokenKind::Semicolon, "after expression statement");
  return s;
}

NodePtr<DeclStmt> Parser::parseDeclStmt() {
  auto stmt = node<DeclStmt>();
  stmt->loc = peek().loc;
  const TypeSpec base = parseTypeSpec();
  while (true) {
    auto var = node<VarDecl>();
    var->loc = peek().loc;
    var->type = base;
    if (stmt->vars.empty()) {
      // First declarator already consumed pointer stars in parseTypeSpec.
    } else {
      var->type.pointer_depth = 0;
      while (match(TokenKind::Star)) ++var->type.pointer_depth;
    }
    var->name = expect(TokenKind::Identifier, "as variable name").text;
    parseDeclaratorSuffix(var->type);
    if (match(TokenKind::Assign)) {
      var->init = check(TokenKind::LBrace) ? parsePrimary() : parseAssignment();
    }
    stmt->vars.push_back(std::move(var));
    if (!match(TokenKind::Comma)) break;
  }
  expect(TokenKind::Semicolon, "after declaration");
  return stmt;
}

StmtPtr Parser::parseIfStmt() {
  auto stmt = node<IfStmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::KwIf, "at if statement");
  expect(TokenKind::LParen, "after 'if'");
  stmt->cond = parseExpr();
  expect(TokenKind::RParen, "to close if condition");
  stmt->then_stmt = parseStmt();
  if (match(TokenKind::KwElse)) stmt->else_stmt = parseStmt();
  return stmt;
}

StmtPtr Parser::parseWhileStmt() {
  auto stmt = node<WhileStmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::KwWhile, "at while statement");
  expect(TokenKind::LParen, "after 'while'");
  stmt->cond = parseExpr();
  expect(TokenKind::RParen, "to close while condition");
  stmt->body = parseStmt();
  return stmt;
}

StmtPtr Parser::parseDoWhileStmt() {
  auto stmt = node<DoWhileStmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::KwDo, "at do statement");
  stmt->body = parseStmt();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  stmt->cond = parseExpr();
  expect(TokenKind::RParen, "to close do-while condition");
  expect(TokenKind::Semicolon, "after do-while");
  return stmt;
}

StmtPtr Parser::parseForStmt() {
  auto stmt = node<ForStmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::KwFor, "at for statement");
  expect(TokenKind::LParen, "after 'for'");
  if (!match(TokenKind::Semicolon)) {
    if (startsType()) {
      stmt->init = parseDeclStmt();
    } else {
      auto init = node<ExprStmt>(parseExpr());
      init->loc = stmt->loc;
      stmt->init = std::move(init);
      expect(TokenKind::Semicolon, "after for-init");
    }
  }
  if (!check(TokenKind::Semicolon)) stmt->cond = parseExpr();
  expect(TokenKind::Semicolon, "after for-condition");
  if (!check(TokenKind::RParen)) stmt->inc = parseExpr();
  expect(TokenKind::RParen, "to close for header");
  stmt->body = parseStmt();
  return stmt;
}

StmtPtr Parser::parseSwitchStmt() {
  auto stmt = node<SwitchStmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::KwSwitch, "at switch statement");
  expect(TokenKind::LParen, "after 'switch'");
  stmt->cond = parseExpr();
  expect(TokenKind::RParen, "to close switch condition");
  expect(TokenKind::LBrace, "to open switch body");
  while (!check(TokenKind::RBrace) && !peek().isEof()) {
    auto case_stmt = node<CaseStmt>();
    case_stmt->loc = peek().loc;
    if (match(TokenKind::KwCase)) {
      case_stmt->value = parseConditional();
      expect(TokenKind::Colon, "after case value");
    } else if (match(TokenKind::KwDefault)) {
      case_stmt->is_default = true;
      expect(TokenKind::Colon, "after 'default'");
    } else {
      diags_.error(peek().loc, "expected 'case' or 'default' in switch body");
      synchronize();
      break;
    }
    while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
           !check(TokenKind::RBrace) && !peek().isEof()) {
      StmtPtr s = parseStmt();
      if (s != nullptr) case_stmt->body.push_back(std::move(s));
    }
    stmt->cases.push_back(std::move(case_stmt));
  }
  expect(TokenKind::RBrace, "to close switch body");
  return stmt;
}

StmtPtr Parser::parseReturnStmt() {
  auto stmt = node<ReturnStmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::KwReturn, "at return statement");
  if (!check(TokenKind::Semicolon)) stmt->value = parseExpr();
  expect(TokenKind::Semicolon, "after return");
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr lhs = parseConditional();
  BinaryOp op;
  switch (peek().kind) {
    case TokenKind::Assign: op = BinaryOp::Assign; break;
    case TokenKind::PlusAssign: op = BinaryOp::AddAssign; break;
    case TokenKind::MinusAssign: op = BinaryOp::SubAssign; break;
    case TokenKind::StarAssign: op = BinaryOp::MulAssign; break;
    case TokenKind::SlashAssign: op = BinaryOp::DivAssign; break;
    case TokenKind::PercentAssign: op = BinaryOp::RemAssign; break;
    case TokenKind::AmpAssign: op = BinaryOp::AndAssign; break;
    case TokenKind::PipeAssign: op = BinaryOp::OrAssign; break;
    case TokenKind::CaretAssign: op = BinaryOp::XorAssign; break;
    case TokenKind::ShlAssign: op = BinaryOp::ShlAssign; break;
    case TokenKind::ShrAssign: op = BinaryOp::ShrAssign; break;
    default: return lhs;
  }
  const SourceLoc loc = advance().loc;
  ExprPtr rhs = parseAssignment();  // right associative
  auto e = node<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  e->loc = loc;
  return e;
}

ExprPtr Parser::parseConditional() {
  ExprPtr cond = parseBinary(0);
  if (!check(TokenKind::Question)) return cond;
  const SourceLoc loc = advance().loc;
  ExprPtr then_expr = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr else_expr = parseConditional();
  auto e = node<ConditionalExpr>(std::move(cond), std::move(then_expr), std::move(else_expr));
  e->loc = loc;
  return e;
}

namespace {

struct BinOpInfo {
  BinaryOp op;
  int precedence;
};

// Higher number binds tighter. Mirrors C except the comma operator, which
// the subset omits.
std::optional<BinOpInfo> binOpFor(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return BinOpInfo{BinaryOp::LogicalOr, 1};
    case TokenKind::AmpAmp: return BinOpInfo{BinaryOp::LogicalAnd, 2};
    case TokenKind::Pipe: return BinOpInfo{BinaryOp::BitOr, 3};
    case TokenKind::Caret: return BinOpInfo{BinaryOp::BitXor, 4};
    case TokenKind::Amp: return BinOpInfo{BinaryOp::BitAnd, 5};
    case TokenKind::EqualEqual: return BinOpInfo{BinaryOp::Eq, 6};
    case TokenKind::BangEqual: return BinOpInfo{BinaryOp::Ne, 6};
    case TokenKind::Less: return BinOpInfo{BinaryOp::Lt, 7};
    case TokenKind::LessEqual: return BinOpInfo{BinaryOp::Le, 7};
    case TokenKind::Greater: return BinOpInfo{BinaryOp::Gt, 7};
    case TokenKind::GreaterEqual: return BinOpInfo{BinaryOp::Ge, 7};
    case TokenKind::Shl: return BinOpInfo{BinaryOp::Shl, 8};
    case TokenKind::Shr: return BinOpInfo{BinaryOp::Shr, 8};
    case TokenKind::Plus: return BinOpInfo{BinaryOp::Add, 9};
    case TokenKind::Minus: return BinOpInfo{BinaryOp::Sub, 9};
    case TokenKind::Star: return BinOpInfo{BinaryOp::Mul, 10};
    case TokenKind::Slash: return BinOpInfo{BinaryOp::Div, 10};
    case TokenKind::Percent: return BinOpInfo{BinaryOp::Rem, 10};
    default: return std::nullopt;
  }
}

}  // namespace

ExprPtr Parser::parseBinary(int min_precedence) {
  ExprPtr lhs = parseUnary();
  while (true) {
    const auto info = binOpFor(peek().kind);
    if (!info || info->precedence < min_precedence) return lhs;
    const SourceLoc loc = advance().loc;
    ExprPtr rhs = parseBinary(info->precedence + 1);
    auto e = node<BinaryExpr>(info->op, std::move(lhs), std::move(rhs));
    e->loc = loc;
    lhs = std::move(e);
  }
}

ExprPtr Parser::parseUnary() {
  const SourceLoc loc = peek().loc;
  UnaryOp op;
  switch (peek().kind) {
    case TokenKind::Plus: op = UnaryOp::Plus; break;
    case TokenKind::Minus: op = UnaryOp::Minus; break;
    case TokenKind::Bang: op = UnaryOp::Not; break;
    case TokenKind::Tilde: op = UnaryOp::BitNot; break;
    case TokenKind::Star: op = UnaryOp::Deref; break;
    case TokenKind::Amp: op = UnaryOp::AddrOf; break;
    case TokenKind::PlusPlus: op = UnaryOp::PreInc; break;
    case TokenKind::MinusMinus: op = UnaryOp::PreDec; break;
    case TokenKind::KwSizeof: {
      advance();
      if (check(TokenKind::LParen) && pos_ + 1 < tokens_.size()) {
        // sizeof(type) vs sizeof(expr): look at the token after '('.
        const std::size_t save = pos_;
        advance();
        if (startsType()) {
          TypeSpec type = parseTypeSpec();
          expect(TokenKind::RParen, "to close sizeof");
          auto e = node<SizeofTypeExpr>(std::move(type));
          e->loc = loc;
          return e;
        }
        pos_ = save;
      }
      ExprPtr operand = parseUnary();
      auto e = node<UnaryExpr>(UnaryOp::SizeofExpr, std::move(operand));
      e->loc = loc;
      return e;
    }
    case TokenKind::LParen:
      // Cast vs parenthesized expression.
      if (pos_ + 1 < tokens_.size()) {
        const std::size_t save = pos_;
        advance();
        if (startsType()) {
          TypeSpec type = parseTypeSpec();
          if (check(TokenKind::RParen)) {
            advance();
            ExprPtr operand = parseUnary();
            auto e = node<CastExpr>(std::move(type), std::move(operand));
            e->loc = loc;
            return e;
          }
        }
        pos_ = save;
      }
      return parsePostfix();
    default:
      return parsePostfix();
  }
  advance();
  ExprPtr operand = parseUnary();
  auto e = node<UnaryExpr>(op, std::move(operand));
  e->loc = loc;
  return e;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr expr = parsePrimary();
  while (true) {
    const SourceLoc loc = peek().loc;
    if (match(TokenKind::LParen)) {
      std::string callee;
      if (expr->kind() == ExprKind::DeclRef) {
        callee = static_cast<DeclRefExpr*>(expr.get())->name;
      } else {
        diags_.error(loc, "indirect calls are not supported by the fsdep C subset");
      }
      std::vector<ExprPtr> args;
      if (!check(TokenKind::RParen)) {
        do {
          args.push_back(parseAssignment());
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close call");
      auto call = node<CallExpr>(std::move(callee), std::move(args));
      call->loc = loc;
      expr = std::move(call);
    } else if (match(TokenKind::LBracket)) {
      ExprPtr index = parseExpr();
      expect(TokenKind::RBracket, "to close subscript");
      auto e = node<IndexExpr>(std::move(expr), std::move(index));
      e->loc = loc;
      expr = std::move(e);
    } else if (check(TokenKind::Dot) || check(TokenKind::Arrow)) {
      const bool is_arrow = advance().kind == TokenKind::Arrow;
      std::string member = expect(TokenKind::Identifier, "as member name").text;
      auto e = node<MemberExpr>(std::move(expr), std::move(member), is_arrow);
      e->loc = loc;
      expr = std::move(e);
    } else if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
      const UnaryOp op = advance().kind == TokenKind::PlusPlus ? UnaryOp::PostInc : UnaryOp::PostDec;
      auto e = node<UnaryExpr>(op, std::move(expr));
      e->loc = loc;
      expr = std::move(e);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::IntLiteral:
    case TokenKind::CharLiteral: {
      const Token& t = advance();
      auto e = node<IntLiteralExpr>(t.int_value);
      e->loc = loc;
      return e;
    }
    case TokenKind::StringLiteral: {
      std::string value = advance().text;
      // Adjacent string literal concatenation.
      while (check(TokenKind::StringLiteral)) value += advance().text;
      auto e = node<StringLiteralExpr>(std::move(value));
      e->loc = loc;
      return e;
    }
    case TokenKind::Identifier: {
      auto e = node<DeclRefExpr>(advance().text);
      e->loc = loc;
      return e;
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr inner = parseExpr();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return inner;
    }
    case TokenKind::LBrace: {
      advance();
      std::vector<ExprPtr> elements;
      if (!check(TokenKind::RBrace)) {
        do {
          if (check(TokenKind::RBrace)) break;  // trailing comma
          elements.push_back(parseAssignment());
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RBrace, "to close initializer list");
      auto e = node<InitListExpr>(std::move(elements));
      e->loc = loc;
      return e;
    }
    default: {
      diags_.error(loc, "expected an expression, found '" +
                            (peek().isEof() ? std::string("eof") : peek().text) + "'");
      advance();
      auto e = node<IntLiteralExpr>(0);
      e->loc = loc;
      return e;
    }
  }
}

}  // namespace fsdep::ast
