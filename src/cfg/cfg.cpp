#include "cfg/cfg.h"

#include <algorithm>

namespace fsdep::cfg {

using namespace ast;

BlockId Cfg::newBlock() {
  ArenaPtr<BasicBlock> b(arena_.make<BasicBlock>());
  b->id = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(std::move(b));
  return blocks_.back()->id;
}

void Cfg::addEdge(BlockId from, BlockId to, EdgeKind kind, std::int64_t case_value) {
  blocks_[from]->successors.push_back(Edge{to, kind, case_value});
  blocks_[to]->predecessors.push_back(from);
}

std::vector<BlockId> Cfg::reversePostOrder() const {
  std::vector<BlockId> post;
  std::vector<bool> visited(blocks_.size(), false);
  // Iterative DFS to avoid deep recursion on long chains.
  struct Frame {
    BlockId id;
    std::size_t next_succ;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{entry_, 0});
  visited[entry_] = true;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const BasicBlock& b = *blocks_[f.id];
    if (f.next_succ < b.successors.size()) {
      const BlockId succ = b.successors[f.next_succ++].target;
      if (!visited[succ]) {
        visited[succ] = true;
        stack.push_back(Frame{succ, 0});
      }
    } else {
      post.push_back(f.id);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

std::string Cfg::dump() const {
  std::string out;
  for (const auto& b : blocks_) {
    out += "B" + std::to_string(b->id);
    if (b->id == entry_) out += " (entry)";
    if (b->is_exit) out += " (exit)";
    out += ":\n";
    for (const Stmt* s : b->stmts) {
      out += "  ";
      switch (s->kind()) {
        case StmtKind::Expr:
          out += exprToString(*static_cast<const ExprStmt*>(s)->expr);
          break;
        case StmtKind::Decl: {
          const auto* d = static_cast<const DeclStmt*>(s);
          for (const auto& v : d->vars) {
            out += v->type.spelling() + " " + v->name;
            if (v->init != nullptr) out += " = " + exprToString(*v->init);
            out += "; ";
          }
          break;
        }
        case StmtKind::Return: {
          const auto* r = static_cast<const ReturnStmt*>(s);
          out += "return";
          if (r->value != nullptr) out += " " + exprToString(*r->value);
          break;
        }
        default:
          out += "<stmt>";
      }
      out += '\n';
    }
    if (b->condition != nullptr) {
      out += b->is_switch_dispatch ? "  switch " : "  branch ";
      out += exprToString(*b->condition);
      out += '\n';
    }
    for (const Edge& e : b->successors) {
      out += "  -> B" + std::to_string(e.target);
      switch (e.kind) {
        case EdgeKind::True: out += " [true]"; break;
        case EdgeKind::False: out += " [false]"; break;
        case EdgeKind::Case: out += " [case " + std::to_string(e.case_value) + "]"; break;
        case EdgeKind::Default: out += " [default]"; break;
        case EdgeKind::Fallthrough: break;
      }
      out += '\n';
    }
  }
  return out;
}

namespace {

/// Builds a Cfg from a function body, tracking break/continue targets.
class Builder {
 public:
  explicit Builder(Cfg& cfg) : cfg_(cfg) {}

  void run(const FunctionDecl& fn) {
    cfg_.setEntry(cfg_.newBlock());
    current_ = cfg_.entry();
    buildStmt(*fn.body);
    if (current_ != kInvalidBlock) cfg_.block(current_).is_exit = true;
  }

 private:
  // Appends to the current block; a kInvalidBlock current means the code is
  // unreachable (after return/break) — we still build blocks for it so the
  // analysis sees all code, matching what a linter-style tool wants.
  void ensureCurrent() {
    if (current_ == kInvalidBlock) current_ = cfg_.newBlock();
  }

  void buildStmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Compound:
        for (const StmtPtr& s : static_cast<const CompoundStmt&>(stmt).body) buildStmt(*s);
        break;
      case StmtKind::Decl:
      case StmtKind::Expr:
        ensureCurrent();
        cfg_.block(current_).stmts.push_back(&stmt);
        break;
      case StmtKind::Return:
        ensureCurrent();
        cfg_.block(current_).stmts.push_back(&stmt);
        cfg_.block(current_).is_exit = true;
        current_ = kInvalidBlock;
        break;
      case StmtKind::If: buildIf(static_cast<const IfStmt&>(stmt)); break;
      case StmtKind::While: buildWhile(static_cast<const WhileStmt&>(stmt)); break;
      case StmtKind::DoWhile: buildDoWhile(static_cast<const DoWhileStmt&>(stmt)); break;
      case StmtKind::For: buildFor(static_cast<const ForStmt&>(stmt)); break;
      case StmtKind::Switch: buildSwitch(static_cast<const SwitchStmt&>(stmt)); break;
      case StmtKind::Break:
        if (!break_targets_.empty()) {
          ensureCurrent();
          cfg_.addEdge(current_, break_targets_.back(), EdgeKind::Fallthrough);
          current_ = kInvalidBlock;
        }
        break;
      case StmtKind::Continue:
        if (!continue_targets_.empty()) {
          ensureCurrent();
          cfg_.addEdge(current_, continue_targets_.back(), EdgeKind::Fallthrough);
          current_ = kInvalidBlock;
        }
        break;
      case StmtKind::Case:
        break;  // handled inside buildSwitch
      case StmtKind::Null:
        break;
    }
  }

  void buildIf(const IfStmt& stmt) {
    ensureCurrent();
    const BlockId cond_block = current_;
    cfg_.block(cond_block).condition = stmt.cond.get();

    const BlockId then_block = cfg_.newBlock();
    cfg_.addEdge(cond_block, then_block, EdgeKind::True);
    current_ = then_block;
    buildStmt(*stmt.then_stmt);
    const BlockId then_end = current_;

    BlockId else_end = kInvalidBlock;
    BlockId else_block = kInvalidBlock;
    if (stmt.else_stmt != nullptr) {
      else_block = cfg_.newBlock();
      cfg_.addEdge(cond_block, else_block, EdgeKind::False);
      current_ = else_block;
      buildStmt(*stmt.else_stmt);
      else_end = current_;
    }

    const BlockId join = cfg_.newBlock();
    if (then_end != kInvalidBlock) cfg_.addEdge(then_end, join, EdgeKind::Fallthrough);
    if (stmt.else_stmt != nullptr) {
      if (else_end != kInvalidBlock) cfg_.addEdge(else_end, join, EdgeKind::Fallthrough);
    } else {
      cfg_.addEdge(cond_block, join, EdgeKind::False);
    }
    current_ = join;
  }

  void buildWhile(const WhileStmt& stmt) {
    ensureCurrent();
    const BlockId cond_block = cfg_.newBlock();
    cfg_.addEdge(current_, cond_block, EdgeKind::Fallthrough);
    cfg_.block(cond_block).condition = stmt.cond.get();
    cfg_.block(cond_block).is_loop_condition = true;

    const BlockId body_block = cfg_.newBlock();
    const BlockId exit_block = cfg_.newBlock();
    cfg_.addEdge(cond_block, body_block, EdgeKind::True);
    cfg_.addEdge(cond_block, exit_block, EdgeKind::False);

    break_targets_.push_back(exit_block);
    continue_targets_.push_back(cond_block);
    current_ = body_block;
    buildStmt(*stmt.body);
    if (current_ != kInvalidBlock) cfg_.addEdge(current_, cond_block, EdgeKind::Fallthrough);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    current_ = exit_block;
  }

  void buildDoWhile(const DoWhileStmt& stmt) {
    ensureCurrent();
    const BlockId body_block = cfg_.newBlock();
    cfg_.addEdge(current_, body_block, EdgeKind::Fallthrough);
    const BlockId cond_block = cfg_.newBlock();
    const BlockId exit_block = cfg_.newBlock();
    cfg_.block(cond_block).condition = stmt.cond.get();
    cfg_.block(cond_block).is_loop_condition = true;
    cfg_.addEdge(cond_block, body_block, EdgeKind::True);
    cfg_.addEdge(cond_block, exit_block, EdgeKind::False);

    break_targets_.push_back(exit_block);
    continue_targets_.push_back(cond_block);
    current_ = body_block;
    buildStmt(*stmt.body);
    if (current_ != kInvalidBlock) cfg_.addEdge(current_, cond_block, EdgeKind::Fallthrough);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    current_ = exit_block;
  }

  void buildFor(const ForStmt& stmt) {
    ensureCurrent();
    if (stmt.init != nullptr) buildStmt(*stmt.init);
    ensureCurrent();

    const BlockId cond_block = cfg_.newBlock();
    cfg_.addEdge(current_, cond_block, EdgeKind::Fallthrough);
    const BlockId body_block = cfg_.newBlock();
    const BlockId inc_block = cfg_.newBlock();
    const BlockId exit_block = cfg_.newBlock();

    if (stmt.cond != nullptr) {
      cfg_.block(cond_block).condition = stmt.cond.get();
      cfg_.block(cond_block).is_loop_condition = true;
      cfg_.addEdge(cond_block, body_block, EdgeKind::True);
      cfg_.addEdge(cond_block, exit_block, EdgeKind::False);
    } else {
      cfg_.addEdge(cond_block, body_block, EdgeKind::Fallthrough);
    }

    break_targets_.push_back(exit_block);
    continue_targets_.push_back(inc_block);
    current_ = body_block;
    buildStmt(*stmt.body);
    if (current_ != kInvalidBlock) cfg_.addEdge(current_, inc_block, EdgeKind::Fallthrough);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    if (stmt.inc != nullptr) cfg_.block(inc_block).inc_expr = stmt.inc.get();
    cfg_.addEdge(inc_block, cond_block, EdgeKind::Fallthrough);
    current_ = exit_block;
  }

  Cfg& cfg_;
  BlockId current_ = kInvalidBlock;
  std::vector<BlockId> break_targets_;
  std::vector<BlockId> continue_targets_;

  void buildSwitch(const SwitchStmt& stmt) {
    ensureCurrent();
    const BlockId dispatch = current_;
    cfg_.block(dispatch).condition = stmt.cond.get();
    cfg_.block(dispatch).is_switch_dispatch = true;

    const BlockId exit_block = cfg_.newBlock();
    break_targets_.push_back(exit_block);

    bool has_default = false;
    BlockId prev_case_end = kInvalidBlock;
    for (const auto& c : stmt.cases) {
      const BlockId case_block = cfg_.newBlock();
      if (c->is_default) {
        has_default = true;
        cfg_.addEdge(dispatch, case_block, EdgeKind::Default);
      } else {
        cfg_.addEdge(dispatch, case_block, EdgeKind::Case, 0);
      }
      // Fall-through from the previous case body.
      if (prev_case_end != kInvalidBlock) {
        cfg_.addEdge(prev_case_end, case_block, EdgeKind::Fallthrough);
      }
      current_ = case_block;
      for (const StmtPtr& s : c->body) buildStmt(*s);
      prev_case_end = current_;
    }
    if (prev_case_end != kInvalidBlock) {
      cfg_.addEdge(prev_case_end, exit_block, EdgeKind::Fallthrough);
    }
    if (!has_default) cfg_.addEdge(dispatch, exit_block, EdgeKind::Default);

    break_targets_.pop_back();
    current_ = exit_block;
  }
};

}  // namespace

std::unique_ptr<Cfg> Cfg::build(const FunctionDecl& fn) {
  auto cfg = std::make_unique<Cfg>();
  if (fn.body == nullptr) {
    cfg->entry_ = cfg->newBlock();
    cfg->block(cfg->entry_).is_exit = true;
    return cfg;
  }
  Builder builder(*cfg);
  builder.run(fn);
  // Guarantee at least one exit block.
  bool has_exit = false;
  for (const auto& b : cfg->blocks_) has_exit |= b->is_exit;
  if (!has_exit && !cfg->blocks_.empty()) cfg->blocks_.back()->is_exit = true;
  return cfg;
}

}  // namespace fsdep::cfg
