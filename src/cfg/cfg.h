// Control-flow graph for one function of the fsdep C subset.
//
// Blocks carry the statements executed straight-line; a block may end with
// a branch condition whose true/false successors are explicit. The taint
// analysis runs a forward dataflow over this graph, and the dependency
// extractor inspects branch conditions together with what the guarded
// blocks do (error exits vs. normal continuation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "support/arena.h"

namespace fsdep::cfg {

using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = 0xFFFFFFFFu;

enum class EdgeKind : std::uint8_t { Fallthrough, True, False, Case, Default };

struct Edge {
  BlockId target = kInvalidBlock;
  EdgeKind kind = EdgeKind::Fallthrough;
  /// For Case edges: the (folded) case value.
  std::int64_t case_value = 0;
};

struct BasicBlock {
  BlockId id = kInvalidBlock;
  /// Straight-line statements: DeclStmt / ExprStmt / ReturnStmt.
  std::vector<const ast::Stmt*> stmts;
  /// A for-loop increment expression evaluated in this block (the builder
  /// gives each for-loop a dedicated increment block).
  const ast::Expr* inc_expr = nullptr;
  /// Branch condition if the block ends in a conditional branch; also set
  /// for switch dispatch (the switch operand).
  const ast::Expr* condition = nullptr;
  bool is_switch_dispatch = false;
  /// True when `condition` is a loop condition (while/do-while/for); the
  /// dependency extractor skips those for guard analysis.
  bool is_loop_condition = false;
  std::vector<Edge> successors;
  std::vector<BlockId> predecessors;
  /// True when the block ends the function (return or falls off the end).
  bool is_exit = false;
};

class Cfg {
 public:
  [[nodiscard]] const BasicBlock& block(BlockId id) const { return *blocks_[id]; }
  [[nodiscard]] BasicBlock& block(BlockId id) { return *blocks_[id]; }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }
  [[nodiscard]] BlockId entry() const { return entry_; }

  /// Blocks in reverse post-order (good iteration order for forward
  /// dataflow).
  [[nodiscard]] std::vector<BlockId> reversePostOrder() const;

  [[nodiscard]] std::string dump() const;

  /// Builds the CFG of a function definition.
  static std::unique_ptr<Cfg> build(const ast::FunctionDecl& fn);

  /// Low-level construction API, used by the builder and by tests that
  /// assemble graphs by hand.
  BlockId newBlock();
  void addEdge(BlockId from, BlockId to, EdgeKind kind, std::int64_t case_value = 0);
  void setEntry(BlockId id) { entry_ = id; }

 private:
  /// Block storage; declared before blocks_ so the arena outlives the
  /// ArenaPtrs whose destructors run on teardown.
  Arena arena_;
  std::vector<ArenaPtr<BasicBlock>> blocks_;
  BlockId entry_ = kInvalidBlock;
};

}  // namespace fsdep::cfg
