// fsdep serve — a long-running analysis daemon (ROADMAP item 1). One
// process keeps the in-memory ComponentCache and the on-disk DiskCache
// warm across queries, so interactive clients (editors, CI bots, the
// future `fsdep blame`) get answers in sub-millisecond time instead of
// paying a full corpus re-parse per invocation.
//
// Protocol: newline-delimited JSON over a local Unix stream socket. One
// request per line, one response line per request, any number of
// requests per connection:
//
//   -> {"id":"1","type":"extract","scenario":"s1","json":false}
//   <- {"id":"1","ok":true,"cached":false,"wall_us":8123,"stdout":"..."}
//
// `stdout` is byte-identical to what the one-shot CLI command prints for
// the same options — the daemon is a transport, not a different
// renderer. Request types: ping, extract, depgraph, docck, blame,
// stats, invalidate, shutdown (see docs/serve.md for the full schema).
// Malformed requests produce {"ok":false,"error":...} without killing
// the connection.
//
// Concurrency: every connection gets its own handler thread (the global
// ThreadPool is NOT used for connections — parallelFor inside a request
// drains the pool, and a long-lived connection job would deadlock it);
// analysis work inside a request still fans out on the ThreadPool via
// the pipeline. Identical warm queries are answered from an in-memory
// response memo (`cached`: true).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "json/json.h"
#include "support/result.h"

namespace fsdep::tools {

struct ServeOptions {
  /// Unix socket path; the daemon unlinks a stale file on start and
  /// removes it on shutdown.
  std::string socket_path;
  /// Worker count for pipeline fan-out inside requests (0 = global).
  std::size_t jobs = 0;
};

/// FSDEP_SOCKET env var, else /tmp/fsdep.sock — shared by daemon and
/// client so `fsdep serve` + `fsdep query` agree without flags.
std::string defaultSocketPath();

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions options) : options_(std::move(options)) {}
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds the socket and starts the accept loop. Errors (socket in
  /// use, bad path) are returned, not thrown.
  Result<bool> start();

  /// Blocks until a shutdown request arrives (or stop() is called).
  void wait();

  /// Stops the accept loop, joins every connection thread, removes the
  /// socket file. Idempotent.
  void stop();

  [[nodiscard]] const std::string& socketPath() const { return options_.socket_path; }
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

  /// Handles one request line and returns the response line (no
  /// trailing newline). Public so tests can exercise the protocol
  /// without sockets.
  std::string handleLine(const std::string& line);

  [[nodiscard]] std::uint64_t requestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t memoHits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

 private:
  void acceptLoop();
  void handleConnection(int fd);
  /// Dispatches a parsed request; fills `out` (ok/stdout or error).
  void dispatch(const std::string& type, const json::Value& request, json::Object& out);

  ServeOptions options_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  /// Response memo: canonical request -> stdout payload. Serving a warm
  /// query is a map lookup; `invalidate` clears it together with the
  /// component + disk caches.
  std::mutex memo_mu_;
  std::map<std::string, std::string> memo_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// One decoded daemon response.
struct ServeResponse {
  bool ok = false;
  std::string id;
  std::string stdout_text;  ///< the one-shot CLI's stdout, byte-identical
  std::string error;
  bool cached = false;      ///< answered from the daemon's response memo
  std::uint64_t wall_us = 0;
};

/// Connects to `socket_path`, sends one request line, reads one response
/// line. Returns a transport error (no daemon, refused) as Result error;
/// a daemon-side failure comes back as ServeResponse{ok:false,error}.
Result<ServeResponse> serveRequest(const std::string& socket_path,
                                   const json::Object& request);

/// Raw round trip for tests and the --raw client flag: sends `line`
/// verbatim (a newline is appended) and returns the raw response line.
Result<std::string> serveRoundTrip(const std::string& socket_path, const std::string& line);

}  // namespace fsdep::tools
