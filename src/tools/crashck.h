// CrashCk: deterministic crash-point and fault-schedule enumeration
// across the fsim toolchain. For every write a tool issues, the harness
// re-executes the tool on a fresh image with a FaultPlan that freezes
// the device at exactly that write (persisting a seeded torn prefix),
// then recovers — remount (journal replay) plus fsck — and classifies
// what a user would experience. The paper's §4.2 usage 2 asks whether
// misconfigurations are handled gracefully; CrashCk asks the companion
// question for the same toolchain: are *interruptions* handled
// gracefully, or can a crash mid-operation leave an image that lies
// about its own health? The Figure 1 resize bug is the motivating case:
// run buggy, its completed resize is exactly such a lie.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/block_device.h"
#include "support/result.h"

namespace fsdep::tools {

/// What a crash at one write index costs the user, best to worst.
enum class CrashOutcome : std::uint8_t {
  Recovered,         ///< remount + fsck clean, canary file intact
  NeedsRepair,       ///< image flagged unclean / fsck reported problems
  SilentCorruption,  ///< image claimed clean but fsck found problems
  DataLoss,          ///< metadata consistent but the canary file is gone
};

const char* crashOutcomeName(CrashOutcome outcome);

/// A file planted before the operation under test; its survival
/// distinguishes Recovered from DataLoss.
struct CrashCanary {
  std::uint32_t ino = 0;         ///< 0 = no canary (mkfs has nothing to lose)
  std::uint32_t size_bytes = 0;
};

struct CrashPoint {
  std::uint64_t write_index = 0;
  bool control = false;  ///< the fault-free run (write_index == total_writes)
  CrashOutcome outcome = CrashOutcome::Recovered;
  std::string detail;
};

struct CrashOpReport {
  std::string op;
  std::uint64_t total_writes = 0;  ///< persisted writes of a fault-free run
  std::vector<CrashPoint> points;  ///< total_writes crash points + 1 control

  [[nodiscard]] int countOf(CrashOutcome outcome) const;
  /// "recovered=12 needs-repair=3 silent-corruption=0 data-loss=0"
  [[nodiscard]] std::string histogram() const;
};

struct CrashCkReport {
  std::uint64_t seed = 0;
  std::vector<CrashOpReport> ops;

  [[nodiscard]] int totalOf(CrashOutcome outcome) const;
  [[nodiscard]] std::string summary() const;
};

struct CrashCkOptions {
  std::uint64_t seed = 42;
  /// Subset of crashCkOpNames() to run; empty = all.
  std::vector<std::string> ops;
};

/// The operations the enumerator knows how to crash. "resize" runs with
/// the sparse_super2 accounting fix; "resize-buggy" replays the shipped
/// (Figure 1) behaviour.
std::vector<std::string> crashCkOpNames();

/// Recovery oracle, exported so tests can classify hand-built images.
/// The device must have its faults cleared (the machine rebooted).
/// Sequence: read the superblock's own claim of health, remount (journal
/// replay) + unmount, fsck -f, then check the canary.
CrashOutcome classifyPostCrashImage(fsim::BlockDevice& device, const CrashCanary& canary,
                                    std::string& detail);

/// Enumerates every crash point of one operation. Deterministic: the
/// same (op, seed) yields an identical report.
Result<CrashOpReport> runCrashOp(const std::string& op, std::uint64_t seed);

/// The full campaign over the requested (default: all) operations.
Result<CrashCkReport> runCrashCk(const CrashCkOptions& options = {});

}  // namespace fsdep::tools
