#include "tools/crashck.h"

#include <functional>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include "fsim/defrag.h"
#include "fsim/fsck.h"
#include "fsim/image.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"
#include "fsim/tune.h"

namespace fsdep::tools {

using namespace fsim;

const char* crashOutcomeName(CrashOutcome outcome) {
  switch (outcome) {
    case CrashOutcome::Recovered: return "recovered";
    case CrashOutcome::NeedsRepair: return "needs-repair";
    case CrashOutcome::SilentCorruption: return "SILENT-CORRUPTION";
    case CrashOutcome::DataLoss: return "DATA-LOSS";
  }
  return "?";
}

int CrashOpReport::countOf(CrashOutcome outcome) const {
  int n = 0;
  for (const CrashPoint& p : points) n += p.outcome == outcome ? 1 : 0;
  return n;
}

std::string CrashOpReport::histogram() const {
  return "recovered=" + std::to_string(countOf(CrashOutcome::Recovered)) +
         " needs-repair=" + std::to_string(countOf(CrashOutcome::NeedsRepair)) +
         " silent-corruption=" + std::to_string(countOf(CrashOutcome::SilentCorruption)) +
         " data-loss=" + std::to_string(countOf(CrashOutcome::DataLoss));
}

int CrashCkReport::totalOf(CrashOutcome outcome) const {
  int n = 0;
  for (const CrashOpReport& op : ops) n += op.countOf(outcome);
  return n;
}

std::string CrashCkReport::summary() const {
  std::size_t points = 0;
  for (const CrashOpReport& op : ops) points += op.points.size();
  return std::to_string(ops.size()) + " op(s), " + std::to_string(points) +
         " crash point(s): recovered=" + std::to_string(totalOf(CrashOutcome::Recovered)) +
         " needs-repair=" + std::to_string(totalOf(CrashOutcome::NeedsRepair)) +
         " silent-corruption=" + std::to_string(totalOf(CrashOutcome::SilentCorruption)) +
         " data-loss=" + std::to_string(totalOf(CrashOutcome::DataLoss));
}

namespace {

// Same geometry as ConHandleCk's baseline image: the campaigns must
// agree about what filesystem they are torturing.
constexpr std::uint32_t kDeviceBlocks = 8192;
constexpr std::uint32_t kBlockSize = 1024;
constexpr std::uint32_t kResizeTarget = 3072;
constexpr std::uint32_t kCanaryBytes = 6144;

MkfsOptions baseMkfs(bool sparse2) {
  MkfsOptions o;
  o.block_size = kBlockSize;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  if (sparse2) {
    o.sparse_super2 = true;
    o.resize_inode = false;
  }
  return o;
}

/// Plants the canary file: mounted, deliberately fragmented (so defrag
/// has work), cleanly unmounted.
CrashCanary plantCanary(BlockDevice& device) {
  CrashCanary canary;
  Result<MountedFs> mounted = MountTool::mount(device, MountOptions{});
  if (!mounted.ok()) return canary;
  const Result<std::uint32_t> ino = mounted.value().createFile(kCanaryBytes, 2);
  if (ino.ok()) {
    canary.ino = ino.value();
    canary.size_bytes = kCanaryBytes;
  }
  mounted.value().unmount();
  return canary;
}

void runResize(BlockDevice& device, bool fix) {
  ResizeOptions ro;
  ro.new_size_blocks = kResizeTarget;
  ro.fix_sparse_super2_accounting = fix;
  (void)ResizeTool::resize(device, ro);
}

struct OpSpec {
  const char* name;
  /// Fault-free preparation; returns the canary (if any).
  std::function<CrashCanary(BlockDevice&)> setup;
  /// The operation whose writes are enumerated. Structured errors are
  /// expected (and ignored) once the crash trigger fires.
  std::function<void(BlockDevice&)> run;
};

const std::vector<OpSpec>& opSpecs() {
  static const std::vector<OpSpec> specs = {
      {"mkfs",
       [](BlockDevice&) { return CrashCanary{}; },
       [](BlockDevice& d) { (void)MkfsTool::format(d, baseMkfs(false)); }},
      {"mount",
       [](BlockDevice& d) {
         (void)MkfsTool::format(d, baseMkfs(false));
         return plantCanary(d);
       },
       [](BlockDevice& d) {
         // One full journal-commit cycle: mount dirties the journal,
         // the file write mutates metadata, unmount commits.
         Result<MountedFs> mounted = MountTool::mount(d, MountOptions{});
         if (!mounted.ok()) return;
         (void)mounted.value().createFile(4096, 0);
         mounted.value().unmount();
       }},
      {"resize",
       [](BlockDevice& d) {
         (void)MkfsTool::format(d, baseMkfs(true));
         return plantCanary(d);
       },
       [](BlockDevice& d) { runResize(d, /*fix=*/true); }},
      {"resize-buggy",
       [](BlockDevice& d) {
         (void)MkfsTool::format(d, baseMkfs(true));
         return plantCanary(d);
       },
       [](BlockDevice& d) { runResize(d, /*fix=*/false); }},
      {"defrag",
       [](BlockDevice& d) {
         (void)MkfsTool::format(d, baseMkfs(false));
         return plantCanary(d);
       },
       [](BlockDevice& d) {
         Result<MountedFs> mounted = MountTool::mount(d, MountOptions{});
         if (!mounted.ok()) return;
         (void)DefragTool::run(mounted.value(), d, DefragOptions{});
         mounted.value().unmount();
       }},
      {"tune",
       [](BlockDevice& d) {
         (void)MkfsTool::format(d, baseMkfs(false));
         return plantCanary(d);
       },
       [](BlockDevice& d) {
         TuneOptions t;
         t.label = "crashck";
         t.max_mount_count = 64;
         t.reserved_blocks_count = 64;
         (void)TuneTool::tune(d, t);
       }},
  };
  return specs;
}

}  // namespace

std::vector<std::string> crashCkOpNames() {
  std::vector<std::string> names;
  for (const OpSpec& s : opSpecs()) names.emplace_back(s.name);
  return names;
}

CrashOutcome classifyPostCrashImage(BlockDevice& device, const CrashCanary& canary,
                                    std::string& detail) {
  FsImage image(device);
  Superblock sb;
  try {
    sb = image.loadSuperblock();
  } catch (const IoError& e) {
    detail = std::string("superblock unreadable: ") + e.what();
    return CrashOutcome::NeedsRepair;
  }
  if (sb.magic != kExt4Magic) {
    detail = "no valid filesystem on the device (interrupted mkfs)";
    return CrashOutcome::NeedsRepair;
  }

  // The image's own claim of health — recorded before any recovery runs,
  // because recovery is allowed to fix things, not to excuse lies.
  const bool claims_clean = sb.checksum == sb.computeChecksum() &&
                            (sb.state & kStateValid) != 0 && sb.journal_dirty == 0;

  // Reboot: mount (replaying a dirty journal) and cleanly unmount.
  {
    Result<MountedFs> mounted = MountTool::mount(device, MountOptions{});
    if (mounted.ok()) mounted.value().unmount();
  }

  const Result<FsckReport> fsck = FsckTool::check(device, FsckOptions{.force = true});
  if (!fsck.ok()) {
    detail = fsck.error().message;
    return CrashOutcome::NeedsRepair;
  }
  if (!fsck.value().isClean()) {
    detail = fsck.value().summary();
    return claims_clean ? CrashOutcome::SilentCorruption : CrashOutcome::NeedsRepair;
  }

  if (canary.ino != 0) {
    try {
      const Superblock now = image.loadSuperblock();
      const Inode inode = image.loadInode(now, canary.ino);
      if (inode.links == 0 || inode.size_bytes != canary.size_bytes) {
        detail = "metadata consistent but the canary file is gone";
        return CrashOutcome::DataLoss;
      }
    } catch (const IoError&) {
      detail = "canary inode unreadable";
      return CrashOutcome::DataLoss;
    }
  }
  detail = claims_clean ? "clean" : "recovered (journal replay / remount)";
  return CrashOutcome::Recovered;
}

Result<CrashOpReport> runCrashOp(const std::string& op, std::uint64_t seed) {
  obs::Span span("crashck", "crash-op");
  span.arg("op", op);
  const OpSpec* spec = nullptr;
  for (const OpSpec& s : opSpecs()) {
    if (op == s.name) spec = &s;
  }
  if (spec == nullptr) return makeError("crashck: unknown operation '" + op + "'");

  CrashOpReport report;
  report.op = op;

  // Pass 1: count the persisted writes of a fault-free run. Because the
  // plan-relative index counts exactly those, the op's crash points are
  // 0 .. total-1.
  {
    BlockDevice device(kDeviceBlocks, kBlockSize);
    (void)spec->setup(device);
    device.resetStats();
    spec->run(device);
    report.total_writes = device.writeCount();
  }

  // Pass 2: re-execute from scratch, crashing at every write index.
  for (std::uint64_t index = 0; index <= report.total_writes; ++index) {
    const bool control = index == report.total_writes;
    BlockDevice device(kDeviceBlocks, kBlockSize);
    const CrashCanary canary = spec->setup(device);
    if (!control) {
      FaultPlan plan;
      plan.seed = seed;
      plan.crash_at_write = index;
      plan.torn_mode = TornMode::Seeded;
      device.setFaultPlan(plan);
    }
    try {
      spec->run(device);
    } catch (const IoError&) {
      // The tools return structured errors; this is a backstop only.
    }
    device.clearFaults();  // the machine comes back up

    CrashPoint point;
    point.write_index = index;
    point.control = control;
    point.outcome = classifyPostCrashImage(device, canary, point.detail);
    obs::Registry::global()
        .counter("crashck.outcome", {{"outcome", crashOutcomeName(point.outcome)}})
        .add();
    FSDEP_LOG_DEBUG("crashck", "%s write %llu%s -> %s", op.c_str(),
                    static_cast<unsigned long long>(point.write_index),
                    point.control ? " (control)" : "", crashOutcomeName(point.outcome));
    report.points.push_back(std::move(point));
  }
  FSDEP_LOG_INFO("crashck", "%s: %llu writes, %s", op.c_str(),
                 static_cast<unsigned long long>(report.total_writes),
                 report.histogram().c_str());
  return report;
}

Result<CrashCkReport> runCrashCk(const CrashCkOptions& options) {
  CrashCkReport report;
  report.seed = options.seed;
  const std::vector<std::string> ops =
      options.ops.empty() ? crashCkOpNames() : options.ops;
  for (const std::string& op : ops) {
    Result<CrashOpReport> one = runCrashOp(op, options.seed);
    if (!one.ok()) return makeError(one.error().message);
    report.ops.push_back(std::move(one.value()));
  }
  return report;
}

}  // namespace fsdep::tools
