#include "tools/campaign.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "fsim/defrag.h"
#include "fsim/digest.h"
#include "fsim/fsck.h"
#include "fsim/image.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"
#include "fsim/tune.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace fsdep::tools {

using namespace fsim;

// --- Fault schedules ---------------------------------------------------

const char* faultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::CrashAtWrite: return "crash-at-write";
    case FaultEventKind::FailAfterWrites: return "fail-after-writes";
    case FaultEventKind::TransientWrite: return "transient-write";
    case FaultEventKind::TransientRead: return "transient-read";
  }
  return "?";
}

std::optional<FaultEventKind> faultEventKindFromName(std::string_view name) {
  if (name == "crash-at-write") return FaultEventKind::CrashAtWrite;
  if (name == "fail-after-writes") return FaultEventKind::FailAfterWrites;
  if (name == "transient-write") return FaultEventKind::TransientWrite;
  if (name == "transient-read") return FaultEventKind::TransientRead;
  return std::nullopt;
}

std::string FaultEvent::summary() const {
  switch (kind) {
    case FaultEventKind::CrashAtWrite:
      return "crash@" + std::to_string(write_index);
    case FaultEventKind::FailAfterWrites:
      return "dead@" + std::to_string(write_index);
    case FaultEventKind::TransientWrite:
      return "transient-write(b" + std::to_string(block) + " x" + std::to_string(failures) + ")";
    case FaultEventKind::TransientRead:
      return "transient-read(b" + std::to_string(block) + " x" + std::to_string(failures) + ")";
  }
  return "?";
}

fsim::FaultPlan compileFaultSchedule(const FaultSchedule& schedule, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (const FaultEvent& event : schedule) {
    switch (event.kind) {
      case FaultEventKind::CrashAtWrite:
        if (!plan.crash_at_write.has_value()) {
          plan.crash_at_write = event.write_index;
          plan.torn_mode = TornMode::Seeded;
        }
        break;
      case FaultEventKind::FailAfterWrites:
        if (!plan.fail_after_writes.has_value()) plan.fail_after_writes = event.write_index;
        break;
      case FaultEventKind::TransientWrite:
        plan.transients.push_back(TransientFault{event.block, event.failures, true});
        break;
      case FaultEventKind::TransientRead:
        plan.transients.push_back(TransientFault{event.block, event.failures, false});
        break;
    }
  }
  return plan;
}

std::string faultScheduleSummary(const FaultSchedule& schedule) {
  if (schedule.empty()) return "control";
  std::string text;
  for (const FaultEvent& event : schedule) {
    if (!text.empty()) text += " + ";
    text += event.summary();
  }
  return text;
}

json::Array faultScheduleToJson(const FaultSchedule& schedule) {
  json::Array events;
  for (const FaultEvent& event : schedule) {
    json::Object obj;
    obj["kind"] = faultEventKindName(event.kind);
    switch (event.kind) {
      case FaultEventKind::CrashAtWrite:
      case FaultEventKind::FailAfterWrites:
        obj["write_index"] = static_cast<std::uint64_t>(event.write_index);
        break;
      case FaultEventKind::TransientWrite:
      case FaultEventKind::TransientRead:
        obj["block"] = static_cast<std::uint64_t>(event.block);
        obj["failures"] = static_cast<std::uint64_t>(event.failures);
        break;
    }
    events.emplace_back(std::move(obj));
  }
  return events;
}

Result<FaultSchedule> faultScheduleFromJson(const json::Value& value) {
  if (!value.isArray()) return makeError("campaign: fault schedule must be a JSON array");
  FaultSchedule schedule;
  for (const json::Value& item : value.asArray()) {
    if (!item.isObject()) return makeError("campaign: fault event must be a JSON object");
    const json::Object& obj = item.asObject();
    const json::Value* kind = obj.find("kind");
    if (kind == nullptr || !kind->isString())
      return makeError("campaign: fault event is missing its 'kind'");
    const std::optional<FaultEventKind> parsed = faultEventKindFromName(kind->asString());
    if (!parsed.has_value())
      return makeError("campaign: unknown fault event kind '" + kind->asString() + "'");
    FaultEvent event;
    event.kind = *parsed;
    if (const json::Value* v = obj.find("write_index"); v != nullptr && v->isInt())
      event.write_index = static_cast<std::uint64_t>(v->asInt());
    if (const json::Value* v = obj.find("block"); v != nullptr && v->isInt())
      event.block = static_cast<std::uint32_t>(v->asInt());
    if (const json::Value* v = obj.find("failures"); v != nullptr && v->isInt())
      event.failures = static_cast<std::uint32_t>(v->asInt());
    schedule.push_back(event);
  }
  return schedule;
}

// --- Outcome keys ------------------------------------------------------

namespace {

/// Lowercase stable identifiers (crashOutcomeName shouts for reports;
/// corpus files and metric labels want something greppable).
const char* outcomeKey(CrashOutcome outcome) {
  switch (outcome) {
    case CrashOutcome::Recovered: return "recovered";
    case CrashOutcome::NeedsRepair: return "needs-repair";
    case CrashOutcome::SilentCorruption: return "silent-corruption";
    case CrashOutcome::DataLoss: return "data-loss";
  }
  return "?";
}

std::optional<CrashOutcome> outcomeFromKey(std::string_view key) {
  if (key == "recovered") return CrashOutcome::Recovered;
  if (key == "needs-repair") return CrashOutcome::NeedsRepair;
  if (key == "silent-corruption") return CrashOutcome::SilentCorruption;
  if (key == "data-loss") return CrashOutcome::DataLoss;
  return std::nullopt;
}

}  // namespace

// --- Configuration JSON round-trip ------------------------------------

namespace {

const char* dataModeName(DataMode mode) {
  switch (mode) {
    case DataMode::Ordered: return "ordered";
    case DataMode::Journal: return "journal";
    case DataMode::Writeback: return "writeback";
  }
  return "ordered";
}

DataMode dataModeFromName(std::string_view name) {
  if (name == "journal") return DataMode::Journal;
  if (name == "writeback") return DataMode::Writeback;
  return DataMode::Ordered;
}

std::uint32_t readU32(const json::Object& obj, const char* key, std::uint32_t fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->isInt()) ? static_cast<std::uint32_t>(v->asInt()) : fallback;
}

bool readBool(const json::Object& obj, const char* key, bool fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->isBool()) ? v->asBool() : fallback;
}

}  // namespace

json::Object generatedConfigToJson(const GeneratedConfig& config) {
  json::Object doc;
  {
    const MkfsOptions& m = config.mkfs;
    json::Object mkfs;
    mkfs["size_blocks"] = static_cast<std::uint64_t>(m.size_blocks);
    mkfs["block_size"] = static_cast<std::uint64_t>(m.block_size);
    mkfs["inode_size"] = static_cast<std::uint64_t>(m.inode_size);
    mkfs["inode_ratio"] = static_cast<std::uint64_t>(m.inode_ratio);
    mkfs["reserved_ratio"] = static_cast<std::uint64_t>(m.reserved_ratio);
    mkfs["blocks_per_group"] = static_cast<std::uint64_t>(m.blocks_per_group);
    mkfs["label"] = m.label;
    mkfs["sparse_super"] = m.sparse_super;
    mkfs["sparse_super2"] = m.sparse_super2;
    mkfs["resize_inode"] = m.resize_inode;
    mkfs["resize_limit_blocks"] = static_cast<std::uint64_t>(m.resize_limit_blocks);
    mkfs["meta_bg"] = m.meta_bg;
    mkfs["extents"] = m.extents;
    mkfs["has_64bit"] = m.has_64bit;
    mkfs["quota"] = m.quota;
    mkfs["has_journal"] = m.has_journal;
    mkfs["uninit_bg"] = m.uninit_bg;
    mkfs["metadata_csum"] = m.metadata_csum;
    mkfs["flex_bg"] = m.flex_bg;
    mkfs["inline_data"] = m.inline_data;
    mkfs["encrypt"] = m.encrypt;
    mkfs["bigalloc"] = m.bigalloc;
    mkfs["cluster_size"] = static_cast<std::uint64_t>(m.cluster_size);
    doc["mkfs"] = std::move(mkfs);
  }
  {
    const MountOptions& m = config.mount;
    json::Object mount;
    mount["read_only"] = m.read_only;
    mount["dax"] = m.dax;
    mount["data_mode"] = dataModeName(m.data_mode);
    mount["noload"] = m.noload;
    mount["commit_interval"] = static_cast<std::uint64_t>(m.commit_interval);
    mount["stripe"] = static_cast<std::uint64_t>(m.stripe);
    mount["inode_readahead_blks"] = static_cast<std::uint64_t>(m.inode_readahead_blks);
    mount["max_batch_time"] = static_cast<std::uint64_t>(m.max_batch_time);
    mount["min_batch_time"] = static_cast<std::uint64_t>(m.min_batch_time);
    mount["journal_checksum"] = m.journal_checksum;
    mount["journal_async_commit"] = m.journal_async_commit;
    mount["dioread_nolock"] = m.dioread_nolock;
    mount["delalloc"] = m.delalloc;
    mount["auto_da_alloc"] = m.auto_da_alloc;
    doc["mount"] = std::move(mount);
  }
  {
    const TuneOptions& t = config.tune;
    json::Object tune;
    if (t.has_journal.has_value()) tune["has_journal"] = *t.has_journal;
    if (t.metadata_csum.has_value()) tune["metadata_csum"] = *t.metadata_csum;
    if (t.uninit_bg.has_value()) tune["uninit_bg"] = *t.uninit_bg;
    if (t.quota.has_value()) tune["quota"] = *t.quota;
    if (t.sparse_super2.has_value()) tune["sparse_super2"] = *t.sparse_super2;
    if (t.max_mount_count.has_value())
      tune["max_mount_count"] = static_cast<std::uint64_t>(*t.max_mount_count);
    if (t.reserved_blocks_count.has_value())
      tune["reserved_blocks_count"] = static_cast<std::uint64_t>(*t.reserved_blocks_count);
    if (t.label.has_value()) tune["label"] = *t.label;
    doc["tune"] = std::move(tune);
  }
  doc["resize_target"] = static_cast<std::uint64_t>(config.resize_target);
  return doc;
}

Result<GeneratedConfig> generatedConfigFromJson(const json::Value& value) {
  if (!value.isObject()) return makeError("campaign: config must be a JSON object");
  const json::Object& doc = value.asObject();
  GeneratedConfig config;
  if (const json::Value* v = doc.find("mkfs"); v != nullptr && v->isObject()) {
    const json::Object& obj = v->asObject();
    MkfsOptions& m = config.mkfs;
    m.size_blocks = readU32(obj, "size_blocks", m.size_blocks);
    m.block_size = readU32(obj, "block_size", m.block_size);
    m.inode_size = static_cast<std::uint16_t>(readU32(obj, "inode_size", m.inode_size));
    m.inode_ratio = readU32(obj, "inode_ratio", m.inode_ratio);
    m.reserved_ratio = readU32(obj, "reserved_ratio", m.reserved_ratio);
    m.blocks_per_group = readU32(obj, "blocks_per_group", m.blocks_per_group);
    if (const json::Value* s = obj.find("label"); s != nullptr && s->isString())
      m.label = s->asString();
    m.sparse_super = readBool(obj, "sparse_super", m.sparse_super);
    m.sparse_super2 = readBool(obj, "sparse_super2", m.sparse_super2);
    m.resize_inode = readBool(obj, "resize_inode", m.resize_inode);
    m.resize_limit_blocks = readU32(obj, "resize_limit_blocks", m.resize_limit_blocks);
    m.meta_bg = readBool(obj, "meta_bg", m.meta_bg);
    m.extents = readBool(obj, "extents", m.extents);
    m.has_64bit = readBool(obj, "has_64bit", m.has_64bit);
    m.quota = readBool(obj, "quota", m.quota);
    m.has_journal = readBool(obj, "has_journal", m.has_journal);
    m.uninit_bg = readBool(obj, "uninit_bg", m.uninit_bg);
    m.metadata_csum = readBool(obj, "metadata_csum", m.metadata_csum);
    m.flex_bg = readBool(obj, "flex_bg", m.flex_bg);
    m.inline_data = readBool(obj, "inline_data", m.inline_data);
    m.encrypt = readBool(obj, "encrypt", m.encrypt);
    m.bigalloc = readBool(obj, "bigalloc", m.bigalloc);
    m.cluster_size = readU32(obj, "cluster_size", m.cluster_size);
  }
  if (const json::Value* v = doc.find("mount"); v != nullptr && v->isObject()) {
    const json::Object& obj = v->asObject();
    MountOptions& m = config.mount;
    m.read_only = readBool(obj, "read_only", m.read_only);
    m.dax = readBool(obj, "dax", m.dax);
    if (const json::Value* s = obj.find("data_mode"); s != nullptr && s->isString())
      m.data_mode = dataModeFromName(s->asString());
    m.noload = readBool(obj, "noload", m.noload);
    m.commit_interval = readU32(obj, "commit_interval", m.commit_interval);
    m.stripe = readU32(obj, "stripe", m.stripe);
    m.inode_readahead_blks = readU32(obj, "inode_readahead_blks", m.inode_readahead_blks);
    m.max_batch_time = readU32(obj, "max_batch_time", m.max_batch_time);
    m.min_batch_time = readU32(obj, "min_batch_time", m.min_batch_time);
    m.journal_checksum = readBool(obj, "journal_checksum", m.journal_checksum);
    m.journal_async_commit = readBool(obj, "journal_async_commit", m.journal_async_commit);
    m.dioread_nolock = readBool(obj, "dioread_nolock", m.dioread_nolock);
    m.delalloc = readBool(obj, "delalloc", m.delalloc);
    m.auto_da_alloc = readBool(obj, "auto_da_alloc", m.auto_da_alloc);
  }
  if (const json::Value* v = doc.find("tune"); v != nullptr && v->isObject()) {
    const json::Object& obj = v->asObject();
    TuneOptions& t = config.tune;
    if (const json::Value* b = obj.find("has_journal"); b != nullptr && b->isBool())
      t.has_journal = b->asBool();
    if (const json::Value* b = obj.find("metadata_csum"); b != nullptr && b->isBool())
      t.metadata_csum = b->asBool();
    if (const json::Value* b = obj.find("uninit_bg"); b != nullptr && b->isBool())
      t.uninit_bg = b->asBool();
    if (const json::Value* b = obj.find("quota"); b != nullptr && b->isBool())
      t.quota = b->asBool();
    if (const json::Value* b = obj.find("sparse_super2"); b != nullptr && b->isBool())
      t.sparse_super2 = b->asBool();
    if (const json::Value* n = obj.find("max_mount_count"); n != nullptr && n->isInt())
      t.max_mount_count = static_cast<std::uint16_t>(n->asInt());
    if (const json::Value* n = obj.find("reserved_blocks_count"); n != nullptr && n->isInt())
      t.reserved_blocks_count = static_cast<std::uint32_t>(n->asInt());
    if (const json::Value* s = obj.find("label"); s != nullptr && s->isString())
      t.label = s->asString();
  }
  config.resize_target = readU32(doc, "resize_target", config.resize_target);
  return config;
}

// --- Op table ----------------------------------------------------------

namespace {

constexpr std::uint32_t kCanaryBytes = 6144;

std::uint32_t deviceBlockSizeFor(const GeneratedConfig& config) {
  const std::uint32_t bs = config.mkfs.block_size;
  const bool pow2 = bs >= 512 && bs <= (1u << 16) && (bs & (bs - 1)) == 0;
  return pow2 ? bs : 1024;
}

std::uint32_t deviceBlocksFor(const GeneratedConfig& config) {
  const std::uint32_t fs = std::max(config.mkfs.size_blocks, config.resize_target);
  return std::max<std::uint32_t>(8192, fs + 2048);
}

std::uint32_t resizeTargetFor(const GeneratedConfig& config) {
  return config.resize_target != 0 ? config.resize_target : config.mkfs.size_blocks + 1024;
}

/// Same recipe as CrashCk's canary, planted under default mount options:
/// the canary is harness scaffolding, not part of the op under test.
CrashCanary plantCampaignCanary(BlockDevice& device) {
  CrashCanary canary;
  Result<MountedFs> mounted = MountTool::mount(device, MountOptions{});
  if (!mounted.ok()) return canary;
  const Result<std::uint32_t> ino = mounted.value().createFile(kCanaryBytes, 2);
  if (ino.ok()) {
    canary.ino = ino.value();
    canary.size_bytes = kCanaryBytes;
  }
  mounted.value().unmount();
  return canary;
}

void runConfigResize(BlockDevice& device, const GeneratedConfig& config, bool fix) {
  ResizeOptions options;
  options.new_size_blocks = resizeTargetFor(config);
  options.fix_sparse_super2_accounting = fix;
  (void)ResizeTool::resize(device, options);
}

struct CampaignOpSpec {
  const char* name;
  CrashCanary (*setup)(BlockDevice&, const GeneratedConfig&);
  void (*run)(BlockDevice&, const GeneratedConfig&);
};

const std::vector<CampaignOpSpec>& campaignOpSpecs() {
  static const std::vector<CampaignOpSpec> specs = {
      {"mkfs",
       [](BlockDevice&, const GeneratedConfig&) { return CrashCanary{}; },
       [](BlockDevice& d, const GeneratedConfig& c) { (void)MkfsTool::format(d, c.mkfs); }},
      {"mount",
       [](BlockDevice& d, const GeneratedConfig& c) {
         (void)MkfsTool::format(d, c.mkfs);
         return plantCampaignCanary(d);
       },
       [](BlockDevice& d, const GeneratedConfig& c) {
         Result<MountedFs> mounted = MountTool::mount(d, c.mount);
         if (!mounted.ok()) return;
         (void)mounted.value().createFile(4096, 0);
         mounted.value().unmount();
       }},
      {"resize",
       [](BlockDevice& d, const GeneratedConfig& c) {
         (void)MkfsTool::format(d, c.mkfs);
         return plantCampaignCanary(d);
       },
       [](BlockDevice& d, const GeneratedConfig& c) { runConfigResize(d, c, /*fix=*/true); }},
      {"resize-buggy",
       [](BlockDevice& d, const GeneratedConfig& c) {
         (void)MkfsTool::format(d, c.mkfs);
         return plantCampaignCanary(d);
       },
       [](BlockDevice& d, const GeneratedConfig& c) { runConfigResize(d, c, /*fix=*/false); }},
      {"defrag",
       [](BlockDevice& d, const GeneratedConfig& c) {
         (void)MkfsTool::format(d, c.mkfs);
         return plantCampaignCanary(d);
       },
       [](BlockDevice& d, const GeneratedConfig& c) {
         Result<MountedFs> mounted = MountTool::mount(d, c.mount);
         if (!mounted.ok()) return;
         (void)DefragTool::run(mounted.value(), d, DefragOptions{});
         mounted.value().unmount();
       }},
      {"tune",
       [](BlockDevice& d, const GeneratedConfig& c) {
         (void)MkfsTool::format(d, c.mkfs);
         return plantCampaignCanary(d);
       },
       [](BlockDevice& d, const GeneratedConfig& c) { (void)TuneTool::tune(d, c.tune); }},
  };
  return specs;
}

const CampaignOpSpec* findCampaignSpec(const std::string& op) {
  for (const CampaignOpSpec& spec : campaignOpSpecs()) {
    if (op == spec.name) return &spec;
  }
  return nullptr;
}

/// Per-(config, op) RNG stream: schedules must not change when other
/// configs/ops are added, removed or reordered by the caller.
std::uint64_t cellSeed(std::uint64_t seed, std::size_t config_index, const std::string& op) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  for (const char c : op) mix(static_cast<std::uint8_t>(c));
  mix(config_index + 1);
  mix(seed);
  return h;
}

}  // namespace

std::vector<std::string> campaignOpNames() {
  std::vector<std::string> names;
  for (const CampaignOpSpec& spec : campaignOpSpecs()) names.emplace_back(spec.name);
  return names;
}

// --- Cell execution ----------------------------------------------------

Result<CellOutcome> runCampaignCell(const GeneratedConfig& config, const std::string& op,
                                    const FaultSchedule& schedule, std::uint64_t seed) {
  const CampaignOpSpec* spec = findCampaignSpec(op);
  if (spec == nullptr) return makeError("campaign: unknown operation '" + op + "'");
  BlockDevice device(deviceBlocksFor(config), deviceBlockSizeFor(config));
  const CrashCanary canary = spec->setup(device, config);
  if (!schedule.empty()) device.setFaultPlan(compileFaultSchedule(schedule, seed));
  try {
    spec->run(device, config);
  } catch (const IoError&) {
    // Tools return structured errors; this is the crash-trigger backstop.
  }
  device.clearFaults();  // the machine comes back up

  CellOutcome out;
  out.outcome = classifyPostCrashImage(device, canary, out.detail);
  out.digest = imageStateDigest(device);
  return out;
}

const char* cellStatusName(CellStatus status) {
  switch (status) {
    case CellStatus::Done: return "done";
    case CellStatus::Failed: return "failed";
  }
  return "?";
}

CellResult runCellWithRetry(const std::function<Result<CellOutcome>()>& cell,
                            std::uint32_t retries) {
  CellResult result;
  std::string last_error;
  for (std::uint32_t attempt = 1; attempt <= retries + 1; ++attempt) {
    result.attempts = attempt;
    try {
      Result<CellOutcome> run = cell();
      if (!run.ok()) {
        // A structured error is deterministic; retrying cannot help.
        result.status = CellStatus::Failed;
        result.detail = run.error().message;
        return result;
      }
      result.status = CellStatus::Done;
      result.outcome = run.value().outcome;
      result.digest = run.value().digest;
      result.detail = run.value().detail;
      return result;
    } catch (const std::exception& e) {
      last_error = e.what();
    } catch (...) {
      last_error = "non-standard exception";
    }
  }
  result.status = CellStatus::Failed;
  result.attempts = retries + 1;
  result.detail =
      "cell crashed after " + std::to_string(retries + 1) + " attempt(s): " + last_error;
  return result;
}

// --- Minimization ------------------------------------------------------

FaultSchedule minimizeSchedule(const FaultSchedule& schedule,
                               const std::function<bool(const FaultSchedule&)>& reproduces,
                               std::uint32_t& probes) {
  if (schedule.empty()) return schedule;

  // The cheapest possible result first: the op fails with no faults at
  // all (the completed-but-buggy resize of Figure 1).
  ++probes;
  if (reproduces(FaultSchedule{})) return FaultSchedule{};

  FaultSchedule current = schedule;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t n = std::min(granularity, current.size());
    const auto chunkBegin = [&](std::size_t i) { return i * current.size() / n; };
    bool reduced = false;

    // Try each chunk alone (reduce to subset).
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      FaultSchedule candidate(current.begin() + static_cast<std::ptrdiff_t>(chunkBegin(i)),
                              current.begin() + static_cast<std::ptrdiff_t>(chunkBegin(i + 1)));
      if (candidate.size() == current.size() || candidate.empty()) continue;
      ++probes;
      if (reproduces(candidate)) {
        current = std::move(candidate);
        granularity = 2;
        reduced = true;
      }
    }
    // Try each complement (reduce by removing one chunk); for n == 2 the
    // complements are the subsets just tried.
    if (!reduced && n > 2) {
      for (std::size_t i = 0; i < n && !reduced; ++i) {
        FaultSchedule candidate;
        candidate.reserve(current.size());
        for (std::size_t j = 0; j < current.size(); ++j) {
          if (j < chunkBegin(i) || j >= chunkBegin(i + 1)) candidate.push_back(current[j]);
        }
        if (candidate.size() == current.size() || candidate.empty()) continue;
        ++probes;
        if (reproduces(candidate)) {
          current = std::move(candidate);
          granularity = std::max<std::size_t>(n - 1, 2);
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (n >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

// --- The campaign ------------------------------------------------------

Result<CampaignReport> runMatrixCampaign(const CampaignOptions& options,
                                         const std::vector<model::Dependency>& deps) {
  obs::Span span("campaign", "matrix-campaign");
  CampaignReport report;
  report.seed = options.seed;

  const std::vector<std::string> known = campaignOpNames();
  if (options.ops.empty()) {
    report.ops = known;
  } else {
    for (const std::string& op : options.ops) {
      if (std::find(known.begin(), known.end(), op) == known.end())
        return makeError("campaign: unknown operation '" + op + "'");
    }
    report.ops = options.ops;
  }

  SamplingOptions sampling;
  sampling.each_used_value = true;
  sampling.pairwise = options.pairwise;
  sampling.max_configs = options.max_configs;
  report.configs = sampleConfigMatrix(sampling, deps);
  if (report.configs.empty()) return makeError("campaign: the configuration matrix is empty");

  const std::size_t n_configs = report.configs.size();
  const std::size_t n_ops = report.ops.size();
  obs::Registry& registry = obs::Registry::global();
  registry.gauge("campaign.configs").set(n_configs);

  // Phase 1 (parallel): fault-free write counts per (config, op). The
  // plan-relative write index counts persisted writes, so each op's
  // crash points are exactly 0 .. writes-1.
  std::vector<std::uint64_t> writes(n_configs * n_ops, 0);
  ThreadPool::parallelFor(n_configs * n_ops, options.jobs, [&](std::size_t i) {
    obs::Span plan_span("campaign", "plan-op");
    const std::size_t ci = i / n_ops;
    const std::size_t oi = i % n_ops;
    const GeneratedConfig& config = report.configs[ci].config;
    const CampaignOpSpec* spec = findCampaignSpec(report.ops[oi]);
    plan_span.arg("op", report.ops[oi]);
    BlockDevice device(deviceBlocksFor(config), deviceBlockSizeFor(config));
    try {
      (void)spec->setup(device, config);
      device.resetStats();
      spec->run(device, config);
    } catch (const IoError&) {
    }
    writes[i] = device.writeCount();
  });

  // Phase 2 (serial): schedule generation. Serial on purpose — the RNG
  // stream per (config, op) must not depend on worker interleaving.
  for (std::size_t ci = 0; ci < n_configs; ++ci) {
    for (std::size_t oi = 0; oi < n_ops; ++oi) {
      const std::uint64_t total = writes[ci * n_ops + oi];
      const GeneratedConfig& config = report.configs[ci].config;
      ConfigGenerator rng(cellSeed(options.seed, ci, report.ops[oi]));
      const auto push = [&](FaultSchedule schedule) {
        CampaignCell cell;
        cell.config_index = ci;
        cell.op = report.ops[oi];
        cell.schedule = std::move(schedule);
        report.cells.push_back(std::move(cell));
      };

      push({});  // control: the op under this config with no faults

      // Crash points spread across the write sequence.
      std::set<std::uint64_t> crash_points;
      const std::uint64_t k = std::min<std::uint64_t>(options.max_crash_points, total);
      for (std::uint64_t j = 0; j < k; ++j)
        crash_points.insert(total * (j + 1) / (k + 1));
      for (const std::uint64_t index : crash_points)
        push({FaultEvent{FaultEventKind::CrashAtWrite, index, 0, 0}});

      // Double faults: a transient media error racing the crash. The
      // failure count straddles the device retry bound (3 attempts), so
      // some transients are absorbed by retry and some surface.
      if (total > 0) {
        for (std::size_t j = 0; j < options.max_double_faults; ++j) {
          FaultEvent transient;
          transient.kind =
              j % 2 == 0 ? FaultEventKind::TransientWrite : FaultEventKind::TransientRead;
          transient.block =
              1 + rng.pick(std::min<std::uint32_t>(deviceBlocksFor(config) - 1, 255));
          transient.failures = 2 + rng.pick(3);
          FaultEvent crash;
          crash.kind = FaultEventKind::CrashAtWrite;
          crash.write_index = rng.pick(static_cast<std::uint32_t>(total));
          push({transient, crash});
        }
        // Device death halfway through the op.
        if (total >= 2)
          push({FaultEvent{FaultEventKind::FailAfterWrites, total / 2, 0, 0}});
      }
    }
  }
  FSDEP_LOG_INFO("campaign", "%zu config(s) x %zu op(s) -> %zu cell(s)", n_configs, n_ops,
                 report.cells.size());

  // Phase 3 (parallel): run every cell into its pre-sized slot.
  report.results.resize(report.cells.size());
  ThreadPool::parallelFor(report.cells.size(), options.jobs, [&](std::size_t i) {
    const CampaignCell& cell = report.cells[i];
    obs::Span cell_span("campaign", "cell");
    if (cell_span.active()) {
      cell_span.arg("op", cell.op);
      cell_span.arg("config", static_cast<std::uint64_t>(cell.config_index));
      cell_span.arg("schedule", faultScheduleSummary(cell.schedule));
    }
    const GeneratedConfig& config = report.configs[cell.config_index].config;
    CellResult result = runCellWithRetry(
        [&]() { return runCampaignCell(config, cell.op, cell.schedule, options.seed); },
        options.cell_retries);
    registry.counter("campaign.cells", {{"op", cell.op}}).add();
    if (result.status == CellStatus::Done) {
      registry.counter("campaign.outcome", {{"outcome", outcomeKey(result.outcome)}}).add();
    } else {
      registry.counter("campaign.failed_cells").add();
      FSDEP_LOG_WARN("campaign", "cell %zu (%s, config %zu) failed: %s", i, cell.op.c_str(),
                     cell.config_index, result.detail.c_str());
    }
    if (result.attempts > 1) registry.counter("campaign.cell_retries").add(result.attempts - 1);
    report.results[i] = std::move(result);
  });

  // Phase 4 (serial): dedup by (op, outcome, post-recovery digest) in
  // cell order, so the representative of each class is jobs-independent.
  std::map<std::tuple<std::string, int, std::uint64_t>, std::size_t> first_of;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    CellResult& result = report.results[i];
    if (result.status != CellStatus::Done) continue;
    const auto key = std::make_tuple(report.cells[i].op, static_cast<int>(result.outcome),
                                     result.digest);
    const auto [it, inserted] = first_of.try_emplace(key, i);
    if (!inserted) {
      result.duplicate = true;
      result.first_cell = it->second;
      ++report.dedup_hits;
    }
  }
  report.unique_outcomes = first_of.size();
  registry.counter("campaign.dedup_hits").add(report.dedup_hits);
  registry.gauge("campaign.unique_outcomes").set(report.unique_outcomes);

  // Phase 5 (serial): ddmin every unique failing class to a minimal
  // reproducer. Serial keeps probe counts deterministic.
  if (options.minimize) {
    obs::Span minimize_span("campaign", "minimize");
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const CellResult& result = report.results[i];
      if (result.status != CellStatus::Done || result.duplicate) continue;
      if (result.outcome != CrashOutcome::SilentCorruption &&
          result.outcome != CrashOutcome::DataLoss)
        continue;
      const CampaignCell& cell = report.cells[i];
      const GeneratedConfig& config = report.configs[cell.config_index].config;
      std::uint32_t probes = 0;
      const auto reproduces = [&](const FaultSchedule& candidate) {
        try {
          Result<CellOutcome> probe =
              runCampaignCell(config, cell.op, candidate, options.seed);
          return probe.ok() && probe.value().outcome == result.outcome &&
                 probe.value().digest == result.digest;
        } catch (...) {
          return false;
        }
      };
      MinimizedRepro repro;
      repro.cell_index = i;
      repro.config_index = cell.config_index;
      repro.op = cell.op;
      repro.schedule = minimizeSchedule(cell.schedule, reproduces, probes);
      repro.outcome = result.outcome;
      repro.digest = result.digest;
      repro.detail = result.detail;
      repro.ddmin_probes = probes;
      report.minimizer_probes += probes;
      report.repros.push_back(std::move(repro));
    }
    registry.counter("campaign.minimizer_probes").add(report.minimizer_probes);
    registry.counter("campaign.repros").add(report.repros.size());
  }

  // Phase 6: persist the regression corpus.
  if (!options.corpus_dir.empty()) {
    Result<std::vector<std::string>> persisted =
        persistCampaignCorpus(report, options.corpus_dir);
    if (!persisted.ok()) return makeError(persisted.error().message);
    FSDEP_LOG_INFO("campaign", "persisted %zu reproducer(s) under %s",
                   persisted.value().size(), options.corpus_dir.c_str());
  }

  FSDEP_LOG_INFO("campaign", "%s", report.summary().c_str());
  return report;
}

// --- Report rendering --------------------------------------------------

int CampaignReport::totalOf(CrashOutcome outcome) const {
  int n = 0;
  for (const CellResult& result : results)
    n += (result.status == CellStatus::Done && result.outcome == outcome) ? 1 : 0;
  return n;
}

int CampaignReport::totalFailed() const {
  int n = 0;
  for (const CellResult& result : results) n += result.status == CellStatus::Failed ? 1 : 0;
  return n;
}

std::string CampaignReport::histogram() const {
  return "recovered=" + std::to_string(totalOf(CrashOutcome::Recovered)) +
         " needs-repair=" + std::to_string(totalOf(CrashOutcome::NeedsRepair)) +
         " silent-corruption=" + std::to_string(totalOf(CrashOutcome::SilentCorruption)) +
         " data-loss=" + std::to_string(totalOf(CrashOutcome::DataLoss)) +
         " failed=" + std::to_string(totalFailed());
}

std::string CampaignReport::summary() const {
  return std::to_string(configs.size()) + " config(s) x " + std::to_string(ops.size()) +
         " op(s), " + std::to_string(cells.size()) + " cell(s): " + histogram() + "; " +
         std::to_string(unique_outcomes) + " unique outcome(s), " +
         std::to_string(dedup_hits) + " dedup hit(s), " + std::to_string(repros.size()) +
         " reproducer(s)";
}

std::string CampaignReport::renderText() const {
  std::string text = "campaign: seed " + std::to_string(seed) + ", " + summary() + "\n";

  text += "matrix:\n";
  for (std::size_t i = 0; i < configs.size(); ++i)
    text += "  [" + std::to_string(i) + "] (" + configs[i].origin + ") " + configs[i].label() +
            "\n";

  // Duplicate counts per representative cell.
  std::map<std::size_t, int> class_size;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& result = results[i];
    if (result.status != CellStatus::Done) continue;
    ++class_size[result.duplicate ? result.first_cell : i];
  }

  text += "unique outcomes:\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& result = results[i];
    if (result.status != CellStatus::Done || result.duplicate) continue;
    const CampaignCell& cell = cells[i];
    text += "  " + cell.op + " " + std::string(outcomeKey(result.outcome)) + " digest " +
            digestHex(result.digest) + " x" + std::to_string(class_size[i]) + "  (cell #" +
            std::to_string(i) + ", config " + std::to_string(cell.config_index) + ", " +
            faultScheduleSummary(cell.schedule) + ")";
    if (!result.detail.empty()) text += "  -- " + result.detail;
    text += "\n";
  }

  bool any_failed = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].status != CellStatus::Failed) continue;
    if (!any_failed) {
      text += "failed cells:\n";
      any_failed = true;
    }
    text += "  cell #" + std::to_string(i) + " (" + cells[i].op + ", config " +
            std::to_string(cells[i].config_index) + ", " +
            faultScheduleSummary(cells[i].schedule) + ", " +
            std::to_string(results[i].attempts) + " attempt(s)): " + results[i].detail + "\n";
  }

  if (!repros.empty()) {
    text += "minimized reproducers (" + std::to_string(repros.size()) + "):\n";
    for (const MinimizedRepro& repro : repros)
      text += "  " + repro.op + " " + std::string(outcomeKey(repro.outcome)) + " digest " +
              digestHex(repro.digest) + " config " + std::to_string(repro.config_index) + ": " +
              faultScheduleSummary(repro.schedule) + "  [" +
              std::to_string(repro.schedule.size()) + " event(s), " +
              std::to_string(repro.ddmin_probes) + " probe(s)]\n";
  }
  return text;
}

json::Object CampaignReport::toJson() const {
  json::Object root;
  root["kind"] = "campaign-report";
  root["version"] = kCampaignCorpusVersion;
  root["seed"] = static_cast<std::uint64_t>(seed);

  json::Array ops_json;
  for (const std::string& op : ops) ops_json.emplace_back(op);
  root["ops"] = std::move(ops_json);

  json::Array configs_json;
  for (const SampledConfig& config : configs) {
    json::Object obj;
    obj["origin"] = config.origin;
    obj["label"] = config.label();
    configs_json.emplace_back(std::move(obj));
  }
  root["configs"] = std::move(configs_json);

  {
    json::Object stats;
    stats["cells"] = static_cast<std::uint64_t>(cells.size());
    stats["recovered"] = static_cast<std::int64_t>(totalOf(CrashOutcome::Recovered));
    stats["needs_repair"] = static_cast<std::int64_t>(totalOf(CrashOutcome::NeedsRepair));
    stats["silent_corruption"] =
        static_cast<std::int64_t>(totalOf(CrashOutcome::SilentCorruption));
    stats["data_loss"] = static_cast<std::int64_t>(totalOf(CrashOutcome::DataLoss));
    stats["failed"] = static_cast<std::int64_t>(totalFailed());
    stats["unique_outcomes"] = static_cast<std::uint64_t>(unique_outcomes);
    stats["dedup_hits"] = static_cast<std::uint64_t>(dedup_hits);
    stats["minimizer_probes"] = static_cast<std::uint64_t>(minimizer_probes);
    root["stats"] = std::move(stats);
  }

  json::Array cells_json;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    json::Object obj;
    obj["config"] = static_cast<std::uint64_t>(cells[i].config_index);
    obj["op"] = cells[i].op;
    obj["schedule"] = faultScheduleToJson(cells[i].schedule);
    if (i < results.size()) {
      const CellResult& result = results[i];
      obj["status"] = cellStatusName(result.status);
      if (result.status == CellStatus::Done) {
        obj["outcome"] = outcomeKey(result.outcome);
        obj["digest"] = digestHex(result.digest);
        obj["duplicate"] = result.duplicate;
        if (result.duplicate) obj["first_cell"] = static_cast<std::uint64_t>(result.first_cell);
      }
      obj["attempts"] = static_cast<std::uint64_t>(result.attempts);
      if (!result.detail.empty()) obj["detail"] = result.detail;
    }
    cells_json.emplace_back(std::move(obj));
  }
  root["cells"] = std::move(cells_json);

  json::Array repros_json;
  for (const MinimizedRepro& repro : repros)
    repros_json.emplace_back(reproToJson(repro, configs[repro.config_index].config, seed));
  root["repros"] = std::move(repros_json);
  return root;
}

// --- Regression corpus -------------------------------------------------

json::Object reproToJson(const MinimizedRepro& repro, const GeneratedConfig& config,
                         std::uint64_t seed) {
  json::Object doc;
  doc["version"] = kCampaignCorpusVersion;
  doc["kind"] = "campaign-repro";
  doc["op"] = repro.op;
  doc["outcome"] = outcomeKey(repro.outcome);
  doc["digest"] = digestHex(repro.digest);
  doc["seed"] = static_cast<std::uint64_t>(seed);
  doc["detail"] = repro.detail;
  doc["ddmin_probes"] = static_cast<std::uint64_t>(repro.ddmin_probes);
  doc["schedule"] = faultScheduleToJson(repro.schedule);
  doc["config"] = generatedConfigToJson(config);
  return doc;
}

Result<std::vector<std::string>> persistCampaignCorpus(const CampaignReport& report,
                                                       const std::string& dir) {
  obs::Span span("campaign", "persist-corpus");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return makeError("campaign: cannot create corpus dir '" + dir + "': " + ec.message());

  std::vector<std::string> paths;
  for (const MinimizedRepro& repro : report.repros) {
    const std::string hex = digestHex(repro.digest);
    const std::string name = "campaign-" + repro.op + "-" + outcomeKey(repro.outcome) + "-" +
                             hex.substr(2) + ".json";
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    const json::Object doc =
        reproToJson(repro, report.configs[repro.config_index].config, report.seed);
    std::ofstream out(path);
    out << json::writePretty(json::Value(doc));
    if (!out.good()) return makeError("campaign: cannot write '" + path.string() + "'");
    paths.push_back(path.string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<ReplayCase> replayCorpusDocument(const json::Value& doc, const std::string& file) {
  if (!doc.isObject()) return makeError(file + ": corpus document must be a JSON object");
  const json::Object& obj = doc.asObject();
  const json::Value* version = obj.find("version");
  if (version == nullptr || !version->isInt() || version->asInt() != kCampaignCorpusVersion)
    return makeError(file + ": unsupported corpus version (want " +
                     std::to_string(kCampaignCorpusVersion) + ")");

  const json::Value* op = obj.find("op");
  if (op == nullptr || !op->isString()) return makeError(file + ": missing 'op'");
  const json::Value* outcome = obj.find("outcome");
  if (outcome == nullptr || !outcome->isString()) return makeError(file + ": missing 'outcome'");
  const std::optional<CrashOutcome> recorded = outcomeFromKey(outcome->asString());
  if (!recorded.has_value())
    return makeError(file + ": unknown outcome '" + outcome->asString() + "'");

  std::uint64_t recorded_digest = 0;
  if (const json::Value* digest = obj.find("digest"); digest != nullptr && digest->isString())
    recorded_digest = std::strtoull(digest->asString().c_str(), nullptr, 16);

  std::uint64_t seed = 42;
  if (const json::Value* s = obj.find("seed"); s != nullptr && s->isInt())
    seed = static_cast<std::uint64_t>(s->asInt());

  const json::Value* schedule_json = obj.find("schedule");
  if (schedule_json == nullptr) return makeError(file + ": missing 'schedule'");
  Result<FaultSchedule> schedule = faultScheduleFromJson(*schedule_json);
  if (!schedule.ok()) return makeError(file + ": " + schedule.error().message);

  const json::Value* config_json = obj.find("config");
  if (config_json == nullptr) return makeError(file + ": missing 'config'");
  Result<GeneratedConfig> config = generatedConfigFromJson(*config_json);
  if (!config.ok()) return makeError(file + ": " + config.error().message);

  Result<CellOutcome> replayed =
      runCampaignCell(config.value(), op->asString(), schedule.value(), seed);
  if (!replayed.ok()) return makeError(file + ": " + replayed.error().message);

  ReplayCase result;
  result.file = file;
  result.op = op->asString();
  result.recorded = *recorded;
  result.replayed = replayed.value().outcome;
  result.outcome_match = result.replayed == result.recorded;
  result.digest_match = replayed.value().digest == recorded_digest;
  result.detail = replayed.value().detail;
  return result;
}

bool ReplayReport::allMatch() const {
  for (const ReplayCase& c : cases) {
    if (!c.outcome_match) return false;
  }
  return !cases.empty();
}

std::string ReplayReport::summary() const {
  int outcome_matches = 0;
  int digest_matches = 0;
  for (const ReplayCase& c : cases) {
    outcome_matches += c.outcome_match ? 1 : 0;
    digest_matches += c.digest_match ? 1 : 0;
  }
  return std::to_string(cases.size()) + " case(s): " + std::to_string(outcome_matches) +
         " outcome match(es), " + std::to_string(digest_matches) + " digest match(es)" +
         (allMatch() ? "" : " -- MISMATCH");
}

Result<ReplayReport> replayCampaignCorpus(const std::string& dir) {
  obs::Span span("campaign", "replay-corpus");
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    return makeError("campaign: corpus dir '" + dir + "' not found");

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  }
  if (ec) return makeError("campaign: cannot list '" + dir + "': " + ec.message());
  if (files.empty()) return makeError("campaign: no *.json corpus files under '" + dir + "'");
  std::sort(files.begin(), files.end());

  ReplayReport report;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) return makeError("campaign: cannot read '" + file + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<json::Value> doc = json::parse(buffer.str());
    if (!doc.ok()) return makeError(file + ": " + doc.error().message);
    Result<ReplayCase> replayed = replayCorpusDocument(doc.value(), file);
    if (!replayed.ok()) return makeError(replayed.error().message);
    obs::Registry::global()
        .counter("campaign.replay",
                 {{"match", replayed.value().outcome_match ? "yes" : "no"}})
        .add();
    report.cases.push_back(std::move(replayed.value()));
  }
  return report;
}

// --- CI gating ---------------------------------------------------------

bool FailOnSet::matches(CrashOutcome outcome) const {
  switch (outcome) {
    case CrashOutcome::SilentCorruption: return silent_corruption;
    case CrashOutcome::DataLoss: return data_loss;
    case CrashOutcome::NeedsRepair: return needs_repair;
    case CrashOutcome::Recovered: return false;
  }
  return false;
}

Result<FailOnSet> parseFailOn(const std::string& spec) {
  FailOnSet set;
  bool any = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string token = spec.substr(pos, end - pos);
    const std::size_t first = token.find_first_not_of(" \t");
    const std::size_t last = token.find_last_not_of(" \t");
    token = first == std::string::npos ? "" : token.substr(first, last - first + 1);
    if (!token.empty()) {
      any = true;
      if (token == "silent-corruption") {
        set.silent_corruption = true;
      } else if (token == "data-loss") {
        set.data_loss = true;
      } else if (token == "needs-repair") {
        set.needs_repair = true;
      } else if (token == "failed") {
        set.failed = true;
      } else {
        return makeError("unknown --fail-on class '" + token +
                         "' (valid: silent-corruption, data-loss, needs-repair, failed)");
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (!any) return makeError("--fail-on: empty class list");
  return set;
}

}  // namespace fsdep::tools
