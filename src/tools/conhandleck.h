// ConHandleCk (paper §4.2 usage 2): intentionally violates extracted
// dependencies — and probes the boundary configurations they describe —
// to test whether the FS ecosystem handles the situation gracefully. The
// outcome taxonomy distinguishes graceful rejection from the dangerous
// cases: silent acceptance and metadata corruption. On the shipped
// simulator the campaign finds exactly one corruption: the resize2fs
// sparse_super2 expansion of the paper's Figure 1 (§4.3: "one unexpected
// configuration handling case where resize2fs may corrupt the file
// system").
#pragma once

#include <string>
#include <vector>

#include "model/dependency.h"

namespace fsdep::tools {

enum class HandleOutcome {
  RejectedGracefully,   ///< tool refused with a diagnostic
  BehavedConsistently,  ///< behavioural probe ran and the fs stayed sound
  SilentAccept,         ///< violation accepted without any complaint
  Corruption,           ///< accepted AND left the filesystem inconsistent
  NotApplicable,        ///< dependency not exercisable on the simulator
};

const char* handleOutcomeName(HandleOutcome outcome);

struct HandleCase {
  std::string dependency_id;
  std::string description;   ///< what configuration was attempted
  HandleOutcome outcome = HandleOutcome::NotApplicable;
  std::string detail;        ///< rejection message / fsck findings
};

struct HandleCheckReport {
  std::vector<HandleCase> cases;

  [[nodiscard]] int countOf(HandleOutcome outcome) const;
  [[nodiscard]] std::string summary() const;
};

/// Runs the violation/boundary campaign against the fsim toolchain for
/// the given dependencies (typically the corpus extraction output).
HandleCheckReport runHandleCheck(const std::vector<model::Dependency>& deps);

/// Convenience: extraction over the corpus, then the campaign.
HandleCheckReport runCorpusHandleCheck();

/// Post-hoc reconfiguration probes: tune2fs-style feature flips that
/// violate (or respect) the dependency set on a live image. The create-
/// time validation cannot help here; the offline tool must re-check.
HandleCheckReport runTuneProbes();

/// Fault mode: replays the behavioural dependency cases under the
/// CrashCk fault schedules (crash at every write index, seeded torn
/// writes) and folds the crash-point histogram into the same outcome
/// taxonomy. A case is Corruption when any crash point — or the
/// completed run itself — leaves an image that claims to be clean while
/// fsck disagrees (the Figure 1 resize does exactly that); it is
/// BehavedConsistently when every point recovers or at worst flags
/// itself for repair. Deterministic in the seed.
HandleCheckReport runHandleCheckUnderFaults(std::uint64_t seed = 42);

}  // namespace fsdep::tools
