#include "tools/depgraph.h"

#include <map>
#include <set>

#include "obs/log.h"
#include "obs/trace.h"

namespace fsdep::tools {

namespace {

std::string nodeId(std::string name) {
  for (char& c : name) {
    if (c == '.' || c == '-' || c == ' ') c = '_';
  }
  return name;
}

std::string componentOf(const std::string& qualified) {
  return qualified.substr(0, qualified.find('.'));
}

}  // namespace

std::string renderDependencyGraphDot(const std::vector<model::Dependency>& deps,
                                     const GraphOptions& options) {
  obs::Span span("depgraph", "render-dot");
  std::string out = "digraph fsdep {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";

  std::map<std::string, std::set<std::string>> nodes_by_component;
  std::string edges;
  for (const model::Dependency& dep : deps) {
    if (dep.other_param.empty()) {
      if (!options.include_self_deps) continue;
      nodes_by_component[componentOf(dep.param)].insert(dep.param);
      continue;
    }
    nodes_by_component[componentOf(dep.param)].insert(dep.param);
    nodes_by_component[componentOf(dep.other_param)].insert(dep.other_param);

    std::string attrs = "label=\"";
    attrs += model::constraintOpName(dep.op);
    attrs += '"';
    switch (dep.level()) {
      case model::DepLevel::CrossComponent:
        attrs += ", color=red, penwidth=2";
        break;
      case model::DepLevel::CrossParameter:
        attrs += ", color=blue";
        break;
      case model::DepLevel::SelfDependency:
        break;
    }
    if (!dep.bridge_field.empty()) {
      attrs += ", tooltip=\"via " + dep.bridge_field + "\"";
    }
    edges += "  " + nodeId(dep.param) + " -> " + nodeId(dep.other_param) + " [" + attrs + "];\n";
  }

  if (options.cluster_by_component) {
    int cluster = 0;
    for (const auto& [component, nodes] : nodes_by_component) {
      out += "  subgraph cluster_" + std::to_string(cluster++) + " {\n";
      out += "    label=\"" + component + "\";\n";
      for (const std::string& node : nodes) {
        out += "    " + nodeId(node) + " [label=\"" + node + "\"];\n";
      }
      out += "  }\n";
    }
  } else {
    for (const auto& [component, nodes] : nodes_by_component) {
      for (const std::string& node : nodes) {
        out += "  " + nodeId(node) + " [label=\"" + node + "\"];\n";
      }
    }
  }

  out += edges;
  out += "}\n";
  std::size_t node_count = 0;
  for (const auto& [component, nodes] : nodes_by_component) node_count += nodes.size();
  FSDEP_LOG_DEBUG("depgraph", "%zu dependencies -> %zu node(s) in %zu component(s)",
                  deps.size(), node_count, nodes_by_component.size());
  return out;
}

}  // namespace fsdep::tools
