// ConDocCk (paper §4.2 usage 1): checks the potential inconsistency
// between user manuals and source code in terms of configuration
// requirements. Input: dependencies extracted from the code and the
// structured manual claims; output: documentation issues.
#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "model/dependency.h"

namespace fsdep::tools {

enum class DocIssueKind {
  Undocumented,   ///< code enforces a dependency the manual never mentions
  Inaccurate,     ///< manual documents it with wrong bounds / wrong relation
  Stale,          ///< manual documents a dependency the code does not have
};

const char* docIssueKindName(DocIssueKind kind);

struct DocIssue {
  DocIssueKind kind = DocIssueKind::Undocumented;
  model::Dependency code_dep;      ///< empty id for Stale issues
  corpus::ManualEntry manual;      ///< empty claim for Undocumented issues
  std::string explanation;
};

struct DocCheckReport {
  std::vector<DocIssue> issues;
  std::size_t checked_dependencies = 0;
  std::size_t manual_claims = 0;

  [[nodiscard]] int countOf(DocIssueKind kind) const;
  [[nodiscard]] std::string summary() const;
};

/// Diffs code dependencies against manual claims.
/// Matching is structural: same kind family + same parameter pair; an
/// entry that matches but disagrees on operator or bounds is Inaccurate.
DocCheckReport checkDocumentation(const std::vector<model::Dependency>& code_deps,
                                  const std::vector<corpus::ManualEntry>& manual);

/// Convenience: runs the corpus pipeline, filters to true dependencies
/// (the paper's "59 extracted true dependencies"), and checks them
/// against the embedded manuals.
DocCheckReport runCorpusDocCheck();

}  // namespace fsdep::tools
