#include "tools/condocck.h"

#include <map>
#include <set>

#include "corpus/pipeline.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace fsdep::tools {

using model::Dependency;

const char* docIssueKindName(DocIssueKind kind) {
  switch (kind) {
    case DocIssueKind::Undocumented: return "undocumented";
    case DocIssueKind::Inaccurate: return "inaccurate";
    case DocIssueKind::Stale: return "stale";
  }
  return "?";
}

int DocCheckReport::countOf(DocIssueKind kind) const {
  int n = 0;
  for (const DocIssue& issue : issues) n += issue.kind == kind ? 1 : 0;
  return n;
}

std::string DocCheckReport::summary() const {
  return std::to_string(issues.size()) + " documentation issue(s): " +
         std::to_string(countOf(DocIssueKind::Undocumented)) + " undocumented, " +
         std::to_string(countOf(DocIssueKind::Inaccurate)) + " inaccurate, " +
         std::to_string(countOf(DocIssueKind::Stale)) + " stale";
}

namespace {

/// Structural match key: kind level + the parameter pair, but NOT the
/// operator or bounds — a claim about the right parameters with the wrong
/// relation should surface as Inaccurate, not as Undocumented + Stale.
std::string matchKey(const Dependency& dep) {
  std::string a = dep.param;
  std::string b = dep.other_param;
  if (!b.empty() && b < a) std::swap(a, b);
  return std::string(model::depKindName(dep.kind)) + "|" + a + "|" + b;
}

bool sameConstraint(const Dependency& code, const Dependency& claim) {
  if (code.op != claim.op) return false;
  if (code.low != claim.low) return false;
  if (code.high != claim.high) return false;
  // For directed relations the orientation must match too.
  if (code.op == model::ConstraintOp::Requires && code.param != claim.param) return false;
  return true;
}

}  // namespace

DocCheckReport checkDocumentation(const std::vector<Dependency>& code_deps,
                                  const std::vector<corpus::ManualEntry>& manual) {
  DocCheckReport report;
  report.checked_dependencies = code_deps.size();
  report.manual_claims = manual.size();

  std::map<std::string, const corpus::ManualEntry*> claims_by_key;
  for (const corpus::ManualEntry& entry : manual) claims_by_key[matchKey(entry.claim)] = &entry;

  std::set<std::string> matched_claims;
  for (const Dependency& dep : code_deps) {
    const std::string key = matchKey(dep);
    const auto it = claims_by_key.find(key);
    if (it == claims_by_key.end()) {
      DocIssue issue;
      issue.kind = DocIssueKind::Undocumented;
      issue.code_dep = dep;
      issue.explanation = "code enforces '" + dep.summary() + "' but no manual documents it";
      report.issues.push_back(std::move(issue));
      continue;
    }
    matched_claims.insert(key);
    if (!sameConstraint(dep, it->second->claim)) {
      DocIssue issue;
      issue.kind = DocIssueKind::Inaccurate;
      issue.code_dep = dep;
      issue.manual = *it->second;
      issue.explanation = "manual says \"" + it->second->text + "\" but the code enforces '" +
                          dep.summary() + "'";
      report.issues.push_back(std::move(issue));
    }
  }

  for (const corpus::ManualEntry& entry : manual) {
    if (!matched_claims.contains(matchKey(entry.claim))) {
      DocIssue issue;
      issue.kind = DocIssueKind::Stale;
      issue.manual = entry;
      issue.explanation = "manual documents \"" + entry.text +
                          "\" but the code has no such dependency";
      report.issues.push_back(std::move(issue));
    }
  }
  return report;
}

DocCheckReport runCorpusDocCheck() {
  obs::Span span("condocck", "doc-check");
  const corpus::Table5Result result = corpus::runTable5();

  // Keep only the true dependencies (drop scored false positives), as the
  // paper does before the documentation check.
  std::set<std::string> fp_keys;
  for (const Dependency& fp : result.unique_score.false_positive_deps) {
    fp_keys.insert(fp.dedupKey());
  }
  std::vector<Dependency> true_deps;
  for (const Dependency& dep : result.unique_deps) {
    if (!fp_keys.contains(dep.dedupKey())) true_deps.push_back(dep);
  }
  DocCheckReport report = checkDocumentation(true_deps, corpus::allManuals());
  FSDEP_LOG_INFO("condocck", "%zu true dependencies checked, %zu documentation issue(s)",
                 true_deps.size(), report.issues.size());
  return report;
}

}  // namespace fsdep::tools
