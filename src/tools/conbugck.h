// ConBugCk (paper §4.2 usage 3): a plugin for FS test suites that
// manipulates configurations WITHOUT violating the extracted
// dependencies, so the driven tool gets past the shallow validation
// layers and exercises deep code areas under many configuration states
// ("without early crashing due to shallow errors").
//
// The measurement compares two generators over the fsim toolchain:
//   * naive      — uniform random over each parameter's raw domain;
//   * dep-aware  — random, then repaired to satisfy every dependency.
// Coverage = distinct fsim coverage points reached (see fsim/coverage.h).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "model/dependency.h"

namespace fsdep::tools {

struct GeneratedConfig {
  fsim::MkfsOptions mkfs;
  fsim::MountOptions mount;
  std::uint32_t resize_target = 0;  ///< 0 = no resize step
};

/// Deterministic xorshift generator so runs are reproducible.
class ConfigGenerator {
 public:
  explicit ConfigGenerator(std::uint64_t seed) : state_(seed == 0 ? 1 : seed) {}

  /// Uniform random configuration over raw parameter domains.
  GeneratedConfig randomConfig();

  /// Random configuration repaired to satisfy the given dependencies.
  GeneratedConfig dependencyAwareConfig(const std::vector<model::Dependency>& deps);

  std::uint64_t nextUint();
  std::uint32_t pick(std::uint32_t bound);  ///< uniform in [0, bound)
  bool coin() { return (nextUint() & 1) != 0; }

 private:
  std::uint64_t state_;
};

/// Repairs a configuration in place so it satisfies the dependency set.
void repairConfig(GeneratedConfig& config, const std::vector<model::Dependency>& deps);

struct CampaignResult {
  int runs = 0;
  int mkfs_ok = 0;
  int mount_ok = 0;
  int pipeline_complete = 0;  ///< reached the end (files + umount + fsck)
  std::set<std::string> coverage_points;
};

/// Drives `runs` generated configurations through the full fsim pipeline
/// (mkfs -> mount -> files -> defrag/resize -> fsck) and accumulates
/// coverage.
CampaignResult runCampaign(int runs, bool dependency_aware,
                           const std::vector<model::Dependency>& deps, std::uint64_t seed = 42);

std::string formatCampaignComparison(const CampaignResult& naive, const CampaignResult& aware);

}  // namespace fsdep::tools
