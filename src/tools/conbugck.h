// ConBugCk (paper §4.2 usage 3): a plugin for FS test suites that
// manipulates configurations WITHOUT violating the extracted
// dependencies, so the driven tool gets past the shallow validation
// layers and exercises deep code areas under many configuration states
// ("without early crashing due to shallow errors").
//
// The measurement compares two generators over the fsim toolchain:
//   * naive      — uniform random over each parameter's raw domain;
//   * dep-aware  — random, then repaired to satisfy every dependency.
// Coverage = distinct fsim coverage points reached (see fsim/coverage.h).
//
// Configuration generation itself (GeneratedConfig, ConfigGenerator,
// repairConfig, matrix sampling) lives in tools/confgen — shared with
// the campaign engine and the examples.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "model/dependency.h"
#include "tools/confgen/confgen.h"

namespace fsdep::tools {

struct CampaignResult {
  int runs = 0;
  int mkfs_ok = 0;
  int mount_ok = 0;
  int pipeline_complete = 0;  ///< reached the end (files + umount + fsck)
  std::set<std::string> coverage_points;
};

/// Drives `runs` generated configurations through the full fsim pipeline
/// (mkfs -> mount -> files -> defrag/resize -> fsck) and accumulates
/// coverage.
CampaignResult runCampaign(int runs, bool dependency_aware,
                           const std::vector<model::Dependency>& deps, std::uint64_t seed = 42);

std::string formatCampaignComparison(const CampaignResult& naive, const CampaignResult& aware);

}  // namespace fsdep::tools
