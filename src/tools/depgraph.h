// Dependency-graph rendering: the extracted multi-level dependencies as
// Graphviz dot, with cross-component edges highlighted. Backs the CLI's
// `fsdep graph` command.
#pragma once

#include <string>
#include <vector>

#include "model/dependency.h"

namespace fsdep::tools {

struct GraphOptions {
  bool cluster_by_component = true;  ///< group nodes into component clusters
  bool include_self_deps = false;    ///< SD nodes add noise; off by default
};

/// Renders the pairwise dependencies as a dot digraph. CCD edges are red,
/// CPD edges blue; edge labels carry the constraint operator.
std::string renderDependencyGraphDot(const std::vector<model::Dependency>& deps,
                                     const GraphOptions& options = {});

}  // namespace fsdep::tools
