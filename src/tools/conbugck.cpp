#include "tools/conbugck.h"

#include <cstdio>

#include "obs/log.h"
#include "obs/trace.h"

#include "fsim/coverage.h"
#include "fsim/defrag.h"
#include "fsim/fsck.h"
#include "fsim/resize.h"

namespace fsdep::tools {

using namespace fsim;

CampaignResult runCampaign(int runs, bool dependency_aware,
                           const std::vector<model::Dependency>& deps, std::uint64_t seed) {
  obs::Span span("conbugck", "campaign");
  span.arg("mode", dependency_aware ? "dep-aware" : "naive");
  ConfigGenerator gen(seed);
  CampaignResult result;
  result.runs = runs;
  CoverageRegistry::instance().reset();

  for (int run = 0; run < runs; ++run) {
    GeneratedConfig config = dependency_aware ? gen.dependencyAwareConfig(deps) : gen.randomConfig();

    const std::uint32_t device_bs =
        (config.mkfs.block_size >= 512 && config.mkfs.block_size <= (1u << 20) &&
         (config.mkfs.block_size & (config.mkfs.block_size - 1)) == 0)
            ? config.mkfs.block_size
            : 1024;
    const std::uint32_t device_blocks =
        std::max<std::uint32_t>(8192, config.mkfs.size_blocks + 4096);
    BlockDevice device(device_blocks, device_bs);

    const Result<Superblock> formatted = MkfsTool::format(device, config.mkfs);
    if (!formatted.ok()) continue;
    ++result.mkfs_ok;

    Result<MountedFs> mounted = MountTool::mount(device, config.mount);
    if (!mounted.ok()) continue;
    ++result.mount_ok;

    // Drive real work: a few files, some fragmented.
    if (!config.mount.read_only) {
      (void)mounted.value().createFile(4096, 0);
      (void)mounted.value().createFile(8192, 1);
      const Result<std::uint32_t> doomed = mounted.value().createFile(2048, 0);
      if (doomed.ok()) (void)mounted.value().removeFile(doomed.value());

      DefragOptions defrag_options;
      (void)DefragTool::run(mounted.value(), device, defrag_options);
    }
    mounted.value().unmount();

    if (config.resize_target != 0) {
      ResizeOptions ro;
      ro.new_size_blocks = config.resize_target;
      ro.fix_sparse_super2_accounting = true;  // coverage, not bug hunting
      (void)ResizeTool::resize(device, ro);
    }

    const Result<FsckReport> fsck = FsckTool::check(device, FsckOptions{.force = true});
    if (fsck.ok()) ++result.pipeline_complete;
  }

  result.coverage_points = CoverageRegistry::instance().points();
  FSDEP_LOG_INFO("conbugck",
                 "%s campaign: %d run(s), %d past mkfs, %d past mount, %d complete, "
                 "%zu coverage point(s)",
                 dependency_aware ? "dep-aware" : "naive", result.runs, result.mkfs_ok,
                 result.mount_ok, result.pipeline_complete, result.coverage_points.size());
  return result;
}

std::string formatCampaignComparison(const CampaignResult& naive, const CampaignResult& aware) {
  char buf[512];
  std::string out = "ConBugCk configuration campaign (fsim pipeline)\n";
  std::snprintf(buf, sizeof(buf), "%-22s | %10s | %10s\n", "", "naive", "dep-aware");
  out += buf;
  auto row = [&](const char* label, int a, int b) {
    std::snprintf(buf, sizeof(buf), "%-22s | %10d | %10d\n", label, a, b);
    out += buf;
  };
  row("configurations", naive.runs, aware.runs);
  row("past mkfs", naive.mkfs_ok, aware.mkfs_ok);
  row("past mount", naive.mount_ok, aware.mount_ok);
  row("full pipeline", naive.pipeline_complete, aware.pipeline_complete);
  row("coverage points", static_cast<int>(naive.coverage_points.size()),
      static_cast<int>(aware.coverage_points.size()));
  return out;
}

}  // namespace fsdep::tools
