#include "tools/conbugck.h"

#include <cstdio>

#include "obs/log.h"
#include "obs/trace.h"

#include "fsim/coverage.h"
#include "fsim/defrag.h"
#include "fsim/fsck.h"
#include "fsim/resize.h"

namespace fsdep::tools {

using namespace fsim;

std::uint64_t ConfigGenerator::nextUint() {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1DULL;
}

std::uint32_t ConfigGenerator::pick(std::uint32_t bound) {
  return bound == 0 ? 0 : static_cast<std::uint32_t>(nextUint() % bound);
}

GeneratedConfig ConfigGenerator::randomConfig() {
  GeneratedConfig c;
  // Raw domains: deliberately wider than the legal ranges, like a tester
  // who does not know the constraints.
  const std::uint32_t block_sizes[] = {512, 1024, 2048, 4096, 8192, 131072};
  c.mkfs.block_size = block_sizes[pick(6)];
  c.mkfs.size_blocks = 1024 + pick(4) * 1024;
  c.mkfs.blocks_per_group = 128u << pick(5);  // 128..2048 (128 violates the minimum)
  const std::uint16_t inode_sizes[] = {64, 128, 256, 512, 8192};
  c.mkfs.inode_size = inode_sizes[pick(5)];
  c.mkfs.inode_ratio = 512u << pick(6);
  c.mkfs.reserved_ratio = pick(120);  // up to 119% (violates the 50% cap)
  c.mkfs.meta_bg = coin();
  c.mkfs.resize_inode = coin();
  c.mkfs.sparse_super2 = coin();
  c.mkfs.bigalloc = coin();
  c.mkfs.extents = coin();
  c.mkfs.has_64bit = coin();
  c.mkfs.quota = coin();
  c.mkfs.has_journal = coin();
  c.mkfs.uninit_bg = coin();
  c.mkfs.metadata_csum = coin();
  c.mkfs.flex_bg = coin();
  c.mkfs.inline_data = coin();
  c.mkfs.encrypt = coin();
  c.mkfs.cluster_size = coin() ? c.mkfs.block_size * (1 + pick(3)) : 0;

  c.mount.dax = coin();
  c.mount.read_only = coin();
  c.mount.noload = coin();
  const DataMode modes[] = {DataMode::Ordered, DataMode::Journal, DataMode::Writeback};
  c.mount.data_mode = modes[pick(3)];
  c.mount.commit_interval = pick(600);           // may exceed 300
  c.mount.stripe = pick(4) * 1048576;            // may exceed the cap
  c.mount.inode_readahead_blks = 1 + pick(100);  // often not a power of two
  c.mount.max_batch_time = pick(120000);
  c.mount.min_batch_time = pick(120000);
  c.mount.journal_checksum = coin();
  c.mount.journal_async_commit = coin();
  c.mount.dioread_nolock = coin();
  c.mount.delalloc = coin();
  c.mount.auto_da_alloc = coin();

  c.resize_target = coin() ? c.mkfs.size_blocks + 1024 + pick(2) * 1024 : 0;
  return c;
}

void repairConfig(GeneratedConfig& c, const std::vector<model::Dependency>& deps) {
  using model::ConstraintOp;
  using model::DepKind;

  // Numeric repairs first (SD ranges), then control-dependency repairs.
  auto clampMkfs = [&](const std::string& name, std::int64_t low, std::int64_t high) {
    auto clamp32 = [&](std::uint32_t& v) {
      if (static_cast<std::int64_t>(v) < low) v = static_cast<std::uint32_t>(low);
      if (static_cast<std::int64_t>(v) > high) v = static_cast<std::uint32_t>(high);
    };
    if (name == "mke2fs.blocksize") {
      std::uint32_t bs = c.mkfs.block_size;
      if (bs < low) bs = static_cast<std::uint32_t>(low);
      if (bs > high) bs = static_cast<std::uint32_t>(high);
      // power of two
      std::uint32_t p = 1024;
      while (p < bs) p <<= 1;
      c.mkfs.block_size = p;
    } else if (name == "mke2fs.inode_size") {
      std::uint16_t v = c.mkfs.inode_size;
      if (v < low) v = static_cast<std::uint16_t>(low);
      if (v > high) v = static_cast<std::uint16_t>(high);
      c.mkfs.inode_size = v;
    } else if (name == "mke2fs.inode_ratio") {
      clamp32(c.mkfs.inode_ratio);
    } else if (name == "mke2fs.reserved_ratio") {
      clamp32(c.mkfs.reserved_ratio);
    } else if (name == "mke2fs.blocks_per_group") {
      clamp32(c.mkfs.blocks_per_group);
      c.mkfs.blocks_per_group -= c.mkfs.blocks_per_group % 8;
    } else if (name == "mount.commit") {
      if (c.mount.commit_interval < low) c.mount.commit_interval = static_cast<std::uint32_t>(low);
      if (c.mount.commit_interval > high) c.mount.commit_interval = static_cast<std::uint32_t>(high);
    } else if (name == "mount.stripe") {
      if (c.mount.stripe > high) c.mount.stripe = static_cast<std::uint32_t>(high);
    } else if (name == "mount.inode_readahead_blks") {
      std::uint32_t p = 1;
      while (p < c.mount.inode_readahead_blks && p < (1u << 30)) p <<= 1;
      c.mount.inode_readahead_blks = p;
      if (c.mount.inode_readahead_blks > high) {
        c.mount.inode_readahead_blks = static_cast<std::uint32_t>(high);
      }
    } else if (name == "mount.max_batch_time") {
      if (c.mount.max_batch_time > high) c.mount.max_batch_time = static_cast<std::uint32_t>(high);
    }
  };

  auto disableMkfs = [&](const std::string& name) {
    if (name == "mke2fs.meta_bg") c.mkfs.meta_bg = false;
    else if (name == "mke2fs.resize_inode") c.mkfs.resize_inode = false;
    else if (name == "mke2fs.sparse_super2") c.mkfs.sparse_super2 = false;
    else if (name == "mke2fs.bigalloc") { c.mkfs.bigalloc = false; c.mkfs.cluster_size = 0; }
    else if (name == "mke2fs.64bit") c.mkfs.has_64bit = false;
    else if (name == "mke2fs.quota") c.mkfs.quota = false;
    else if (name == "mke2fs.uninit_bg") c.mkfs.uninit_bg = false;
    else if (name == "mke2fs.metadata_csum") c.mkfs.metadata_csum = false;
    else if (name == "mke2fs.inline_data") c.mkfs.inline_data = false;
    else if (name == "mke2fs.encrypt") c.mkfs.encrypt = false;
    else if (name == "mke2fs.cluster_size") c.mkfs.cluster_size = 0;
    else if (name == "mke2fs.resize_limit") c.mkfs.resize_limit_blocks = 0;
  };

  auto flagEnabled = [&](const std::string& name) -> bool {
    if (name == "mke2fs.meta_bg") return c.mkfs.meta_bg;
    if (name == "mke2fs.resize_inode") return c.mkfs.resize_inode;
    if (name == "mke2fs.sparse_super2") return c.mkfs.sparse_super2;
    if (name == "mke2fs.bigalloc") return c.mkfs.bigalloc;
    if (name == "mke2fs.extent") return c.mkfs.extents;
    if (name == "mke2fs.64bit") return c.mkfs.has_64bit;
    if (name == "mke2fs.quota") return c.mkfs.quota;
    if (name == "mke2fs.has_journal") return c.mkfs.has_journal;
    if (name == "mke2fs.uninit_bg") return c.mkfs.uninit_bg;
    if (name == "mke2fs.metadata_csum") return c.mkfs.metadata_csum;
    if (name == "mke2fs.inline_data") return c.mkfs.inline_data;
    if (name == "mke2fs.encrypt") return c.mkfs.encrypt;
    if (name == "mke2fs.cluster_size") return c.mkfs.cluster_size != 0;
    if (name == "mke2fs.resize_limit") return c.mkfs.resize_limit_blocks != 0;
    if (name == "mount.dax") return c.mount.dax;
    if (name == "mount.noload") return c.mount.noload;
    if (name == "mount.ro") return c.mount.read_only;
    if (name == "mount.data_journal") return c.mount.data_mode == DataMode::Journal;
    if (name == "mount.data_writeback") return c.mount.data_mode == DataMode::Writeback;
    if (name == "mount.journal_checksum") return c.mount.journal_checksum;
    if (name == "mount.journal_async_commit") return c.mount.journal_async_commit;
    if (name == "mount.dioread_nolock") return c.mount.dioread_nolock;
    if (name == "mount.delalloc") return c.mount.delalloc;
    if (name == "mount.auto_da_alloc") return c.mount.auto_da_alloc;
    return false;
  };

  auto enableRequirement = [&](const std::string& name) {
    if (name == "mke2fs.extent") c.mkfs.extents = true;
    else if (name == "mke2fs.has_journal") c.mkfs.has_journal = true;
    else if (name == "mke2fs.resize_inode") c.mkfs.resize_inode = true;
    else if (name == "mke2fs.bigalloc") c.mkfs.bigalloc = true;
    else if (name == "mke2fs.flex_bg") c.mkfs.flex_bg = true;
    else if (name == "mount.ro") c.mount.read_only = true;
    else if (name == "mount.journal_checksum") c.mount.journal_checksum = true;
    else if (name == "mount.data_writeback") c.mount.data_mode = DataMode::Writeback;
  };

  auto disableEither = [&](const std::string& a, const std::string& b) {
    // Prefer disabling the first (the dependency's subject).
    if (a.starts_with("mount.")) {
      if (a == "mount.dax") c.mount.dax = false;
      else if (a == "mount.dioread_nolock") c.mount.dioread_nolock = false;
      else if (a == "mount.delalloc") c.mount.delalloc = false;
      else if (a == "mount.auto_da_alloc") c.mount.auto_da_alloc = false;
      else if (a == "mount.data_journal") c.mount.data_mode = DataMode::Ordered;
      else disableMkfs(a);
    } else {
      disableMkfs(a);
    }
    (void)b;
  };

  // Two passes: requires-repairs can themselves enable a flag that an
  // excludes-dependency then has to resolve.
  for (int pass = 0; pass < 2; ++pass) {
    for (const model::Dependency& dep : deps) {
      switch (dep.op) {
        case ConstraintOp::InRange:
          clampMkfs(dep.param, dep.low.value_or(INT64_MIN), dep.high.value_or(INT64_MAX));
          break;
        case ConstraintOp::PowerOfTwo:
          clampMkfs(dep.param, 1, 1 << 30);
          break;
        case ConstraintOp::Requires:
          if (flagEnabled(dep.param) && !flagEnabled(dep.other_param)) {
            enableRequirement(dep.other_param);
            if (!flagEnabled(dep.other_param)) disableMkfs(dep.param);
          }
          break;
        case ConstraintOp::Excludes:
          if (flagEnabled(dep.param) && flagEnabled(dep.other_param)) {
            disableEither(dep.param, dep.other_param);
          }
          break;
        case ConstraintOp::Le:
          if (dep.param == "mke2fs.inode_size" && c.mkfs.inode_size > c.mkfs.block_size) {
            c.mkfs.inode_size = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(c.mkfs.block_size, 4096));
          } else if (dep.param == "mke2fs.blocks_per_group" &&
                     c.mkfs.blocks_per_group > 8 * c.mkfs.block_size) {
            c.mkfs.blocks_per_group = 8 * c.mkfs.block_size;
          } else if (dep.param == "mount.min_batch_time" &&
                     c.mount.min_batch_time > c.mount.max_batch_time) {
            c.mount.min_batch_time = c.mount.max_batch_time;
          }
          break;
        case ConstraintOp::Ge:
          if (dep.param == "mke2fs.cluster_size" && c.mkfs.cluster_size != 0 &&
              c.mkfs.cluster_size < c.mkfs.block_size) {
            c.mkfs.cluster_size = c.mkfs.block_size;
          } else if (dep.param == "mke2fs.inode_ratio" &&
                     c.mkfs.inode_ratio < c.mkfs.block_size) {
            c.mkfs.inode_ratio = c.mkfs.block_size;
          }
          break;
        default:
          break;
      }
    }
  }

  // Structural knowledge a dependency-aware harness also applies: dax
  // needs 4KiB blocks (extracted as an equality the analyzer skips).
  if (c.mount.dax && c.mkfs.block_size != 4096) c.mount.dax = false;
  if (c.mount.noload && !c.mount.read_only) c.mount.read_only = true;
  if (c.mkfs.blocks_per_group < 256) c.mkfs.blocks_per_group = 256;
}

GeneratedConfig ConfigGenerator::dependencyAwareConfig(
    const std::vector<model::Dependency>& deps) {
  GeneratedConfig c = randomConfig();
  repairConfig(c, deps);
  return c;
}

CampaignResult runCampaign(int runs, bool dependency_aware,
                           const std::vector<model::Dependency>& deps, std::uint64_t seed) {
  obs::Span span("conbugck", "campaign");
  span.arg("mode", dependency_aware ? "dep-aware" : "naive");
  ConfigGenerator gen(seed);
  CampaignResult result;
  result.runs = runs;
  CoverageRegistry::instance().reset();

  for (int run = 0; run < runs; ++run) {
    GeneratedConfig config = dependency_aware ? gen.dependencyAwareConfig(deps) : gen.randomConfig();

    const std::uint32_t device_bs =
        (config.mkfs.block_size >= 512 && config.mkfs.block_size <= (1u << 20) &&
         (config.mkfs.block_size & (config.mkfs.block_size - 1)) == 0)
            ? config.mkfs.block_size
            : 1024;
    const std::uint32_t device_blocks =
        std::max<std::uint32_t>(8192, config.mkfs.size_blocks + 4096);
    BlockDevice device(device_blocks, device_bs);

    const Result<Superblock> formatted = MkfsTool::format(device, config.mkfs);
    if (!formatted.ok()) continue;
    ++result.mkfs_ok;

    Result<MountedFs> mounted = MountTool::mount(device, config.mount);
    if (!mounted.ok()) continue;
    ++result.mount_ok;

    // Drive real work: a few files, some fragmented.
    if (!config.mount.read_only) {
      (void)mounted.value().createFile(4096, 0);
      (void)mounted.value().createFile(8192, 1);
      const Result<std::uint32_t> doomed = mounted.value().createFile(2048, 0);
      if (doomed.ok()) (void)mounted.value().removeFile(doomed.value());

      DefragOptions defrag_options;
      (void)DefragTool::run(mounted.value(), device, defrag_options);
    }
    mounted.value().unmount();

    if (config.resize_target != 0) {
      ResizeOptions ro;
      ro.new_size_blocks = config.resize_target;
      ro.fix_sparse_super2_accounting = true;  // coverage, not bug hunting
      (void)ResizeTool::resize(device, ro);
    }

    const Result<FsckReport> fsck = FsckTool::check(device, FsckOptions{.force = true});
    if (fsck.ok()) ++result.pipeline_complete;
  }

  result.coverage_points = CoverageRegistry::instance().points();
  FSDEP_LOG_INFO("conbugck",
                 "%s campaign: %d run(s), %d past mkfs, %d past mount, %d complete, "
                 "%zu coverage point(s)",
                 dependency_aware ? "dep-aware" : "naive", result.runs, result.mkfs_ok,
                 result.mount_ok, result.pipeline_complete, result.coverage_points.size());
  return result;
}

std::string formatCampaignComparison(const CampaignResult& naive, const CampaignResult& aware) {
  char buf[512];
  std::string out = "ConBugCk configuration campaign (fsim pipeline)\n";
  std::snprintf(buf, sizeof(buf), "%-22s | %10s | %10s\n", "", "naive", "dep-aware");
  out += buf;
  auto row = [&](const char* label, int a, int b) {
    std::snprintf(buf, sizeof(buf), "%-22s | %10d | %10d\n", label, a, b);
    out += buf;
  };
  row("configurations", naive.runs, aware.runs);
  row("past mkfs", naive.mkfs_ok, aware.mkfs_ok);
  row("past mount", naive.mount_ok, aware.mount_ok);
  row("full pipeline", naive.pipeline_complete, aware.pipeline_complete);
  row("coverage points", static_cast<int>(naive.coverage_points.size()),
      static_cast<int>(aware.coverage_points.size()));
  return out;
}

}  // namespace fsdep::tools
