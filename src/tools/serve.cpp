#include "tools/serve.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "corpus/pipeline.h"
#include "extract/scoring.h"
#include "model/serialization.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tools/condocck.h"
#include "tools/depgraph.h"

namespace fsdep::tools {

namespace {

using Clock = std::chrono::steady_clock;

/// Same env default the CLI's taintOptionsFromFlags applies, so a query
/// without inter/intra set matches a one-shot CLI run in the same
/// environment byte for byte.
bool envInterDefault() {
  const char* env = std::getenv("FSDEP_INTER");
  if (env == nullptr) return false;
  const std::string value = env;
  return !(value.empty() || value == "0" || value == "false" || value == "off");
}

std::string stringField(const json::Object& request, const char* key,
                        const std::string& fallback) {
  const json::Value* value = request.find(key);
  return value != nullptr && value->isString() ? value->asString() : fallback;
}

bool boolField(const json::Object& request, const char* key, bool fallback) {
  const json::Value* value = request.find(key);
  return value != nullptr && value->isBool() ? value->asBool() : fallback;
}

taint::AnalysisOptions taintOptionsFromRequest(const json::Object& request) {
  taint::AnalysisOptions topts;
  topts.inter_procedural = envInterDefault();
  if (boolField(request, "inter", false)) topts.inter_procedural = true;
  if (boolField(request, "intra", false)) topts.inter_procedural = false;
  if (boolField(request, "legacy_passes", false)) topts.summaries = false;
  if (boolField(request, "legacy_walk", false)) topts.compile_ir = false;
  return topts;
}

/// Writes one line (with trailing '\n') fully; short writes retried.
bool writeLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string defaultSocketPath() {
  const char* env = std::getenv("FSDEP_SOCKET");
  if (env != nullptr && env[0] != '\0') return env;
  return "/tmp/fsdep.sock";
}

ServeDaemon::~ServeDaemon() { stop(); }

Result<bool> ServeDaemon::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (options_.socket_path.empty()) return makeError("serve: empty socket path");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return makeError("serve: socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return makeError("serve: socket(): " + std::string(std::strerror(errno)));

  // A stale socket file from a crashed daemon would make bind fail;
  // unlink first — a live daemon still holds the listening socket, so
  // its clients error out on connect, which is the observable signal.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return makeError("serve: bind(" + options_.socket_path + "): " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    return makeError("serve: listen(): " + err);
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { acceptLoop(); });
  FSDEP_LOG_INFO("serve", "listening on %s", options_.socket_path.c_str());
  return true;
}

void ServeDaemon::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // One thread per connection, NOT the global ThreadPool: a pipeline
    // parallelFor inside a request waits for the pool to drain, and a
    // long-lived connection job sitting in the pool would deadlock it.
    const std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { handleConnection(fd); });
  }
}

void ServeDaemon::handleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    std::size_t nl = 0;
    while ((nl = buffer.find('\n', pos)) != std::string::npos) {
      const std::string line = buffer.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) continue;
      if (!writeLine(fd, handleLine(line))) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, pos);
  }
  ::close(fd);
}

std::string ServeDaemon::handleLine(const std::string& line) {
  static obs::Counter& request_counter = obs::Registry::global().counter("serve.requests");
  static obs::Counter& error_counter = obs::Registry::global().counter("serve.errors");
  static obs::Counter& memo_counter = obs::Registry::global().counter("serve.memo_hits");
  static obs::Histogram& wall_histogram = obs::Registry::global().histogram(
      "serve.request_us", {},
      {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 500000});

  const auto start = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  request_counter.add();

  json::Object response;
  Result<json::Value> parsed = json::parse(line);
  std::string type;
  if (!parsed.ok() || !parsed.value().isObject()) {
    response["ok"] = false;
    response["error"] =
        "malformed request: " + (parsed.ok() ? "not an object" : parsed.error().message);
  } else {
    const json::Object& request = parsed.value().asObject();
    const json::Value* id = request.find("id");
    if (id != nullptr) response["id"] = *id;
    type = stringField(request, "type", "");
    obs::Span span("serve", "request");
    span.arg("type", type);
    obs::Registry::global().counter("serve.requests", {{"type", type}}).add();
    try {
      dispatch(type, parsed.value(), response);
    } catch (const std::exception& e) {
      response["ok"] = false;
      response["error"] = std::string(e.what());
    }
  }

  if (!response.contains("ok")) response["ok"] = true;
  const bool ok = response.find("ok")->asBool();
  if (!ok) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    error_counter.add();
  }
  if (response.find("cached") != nullptr && response.find("cached")->asBool()) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    memo_counter.add();
  }
  const std::uint64_t wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count());
  response["wall_us"] = wall_us;
  wall_histogram.observe(wall_us);
  return json::writeCompact(json::Value(std::move(response)));
}

void ServeDaemon::dispatch(const std::string& type, const json::Value& request_value,
                           json::Object& out) {
  const json::Object& request = request_value.asObject();

  if (type == "ping") {
    out["ok"] = true;
    out["stdout"] = "pong";
    return;
  }

  if (type == "shutdown") {
    out["ok"] = true;
    out["stdout"] = "shutting down";
    {
      const std::lock_guard<std::mutex> lock(shutdown_mu_);
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
    return;
  }

  if (type == "stats") {
    const corpus::DiskCache& disk = corpus::DiskCache::global();
    json::Object stats;
    stats["requests"] = requests_.load(std::memory_order_relaxed);
    stats["memo_hits"] = memo_hits_.load(std::memory_order_relaxed);
    stats["errors"] = errors_.load(std::memory_order_relaxed);
    stats["component_cache_hits"] = corpus::ComponentCache::global().hits();
    stats["component_cache_misses"] = corpus::ComponentCache::global().misses();
    stats["component_cache_build_failures"] = corpus::ComponentCache::global().buildFailures();
    stats["disk_cache_enabled"] = disk.enabled();
    stats["disk_cache_hits"] = disk.hits();
    stats["disk_cache_misses"] = disk.misses();
    stats["disk_cache_stores"] = disk.stores();
    out["ok"] = true;
    out["stdout"] = json::writeCompact(json::Value(std::move(stats)));
    return;
  }

  if (type == "invalidate") {
    {
      const std::lock_guard<std::mutex> lock(memo_mu_);
      memo_.clear();
    }
    corpus::ComponentCache::global().clear();
    corpus::DiskCache::global().invalidateAll();
    out["ok"] = true;
    out["stdout"] = "caches invalidated";
    return;
  }

  // Analysis requests are memoized on their canonical option string:
  // the warm path is one map lookup — no parse, no pipeline, no disk.
  std::string memo_key = type;
  for (const char* key : {"scenario", "param", "inter", "intra", "legacy_passes",
                          "legacy_walk", "no_bridging", "json", "self_deps"}) {
    const json::Value* value = request.find(key);
    memo_key.push_back('\x1f');
    if (value == nullptr) continue;
    memo_key += value->isString() ? value->asString() : json::writeCompact(*value);
  }
  {
    const std::lock_guard<std::mutex> lock(memo_mu_);
    const auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      out["ok"] = true;
      out["cached"] = true;
      out["stdout"] = it->second;
      return;
    }
  }

  std::string stdout_text;
  if (type == "extract") {
    taint::AnalysisOptions topts = taintOptionsFromRequest(request);
    extract::ExtractOptions eopts = corpus::extractOptions();
    eopts.enable_bridging = !boolField(request, "no_bridging", false);
    topts.field_bridging = eopts.enable_bridging;
    const std::string scenario_id = stringField(request, "scenario", "all");

    std::vector<model::Dependency> deps;
    if (scenario_id == "all") {
      std::vector<std::vector<model::Dependency>> per_scenario;
      for (const corpus::Scenario& s : corpus::scenarios()) {
        per_scenario.push_back(corpus::runScenario(s, topts, &eopts, {options_.jobs}));
      }
      deps = extract::dedupeAcrossScenarios(per_scenario);
    } else {
      bool found = false;
      for (const corpus::Scenario& s : corpus::scenarios()) {
        if (s.id == scenario_id) {
          deps = corpus::runScenario(s, topts, &eopts, {options_.jobs});
          found = true;
        }
      }
      if (!found) {
        out["ok"] = false;
        out["error"] = "unknown scenario '" + scenario_id + "'";
        return;
      }
    }
    // Byte-identical to cmdExtract: JSON mode is writePretty of the
    // model serialization; text mode is summary lines + count trailer.
    if (boolField(request, "json", false)) {
      stdout_text = json::writePretty(model::toJson(deps));
    } else {
      for (const model::Dependency& dep : deps) {
        stdout_text += dep.summary();
        stdout_text.push_back('\n');
      }
      stdout_text += "\n" + std::to_string(deps.size()) + " dependencies extracted\n";
    }
  } else if (type == "depgraph") {
    const corpus::Table5Result result =
        corpus::runTable5(taintOptionsFromRequest(request), nullptr, {options_.jobs});
    GraphOptions graph_options;
    graph_options.include_self_deps = boolField(request, "self_deps", false);
    stdout_text = renderDependencyGraphDot(result.unique_deps, graph_options);
  } else if (type == "docck") {
    const DocCheckReport report = runCorpusDocCheck();
    stdout_text = report.summary() + "\n";
    for (const DocIssue& issue : report.issues) {
      stdout_text += "  [" + std::string(docIssueKindName(issue.kind)) + "] " +
                     issue.explanation + "\n";
    }
  } else if (type == "blame") {
    // Blame-ready query: everything known about one parameter — the
    // same rendering `fsdep explain` prints, so a future fsdep blame
    // client starts from an already-stable surface.
    const std::string param = stringField(request, "param", "");
    if (param.empty()) {
      out["ok"] = false;
      out["error"] = "blame: missing 'param'";
      return;
    }
    const corpus::Table5Result result =
        corpus::runTable5(taintOptionsFromRequest(request), nullptr, {options_.jobs});
    const model::Parameter* registered = corpus::ecosystem().findParameter(param);
    if (registered != nullptr) {
      stdout_text = param + "  (" + registered->flag + ", " +
                    model::configStageName(registered->stage) +
                    " stage): " + registered->description + "\n\n";
    } else {
      stdout_text = param + "  (not in the parameter registry)\n\n";
    }
    int shown = 0;
    for (const model::Dependency& dep : result.unique_deps) {
      if (dep.param != param && dep.other_param != param) continue;
      stdout_text += "  " + dep.summary() + "\n";
      for (const std::string& step : dep.trace) stdout_text += "      " + step + "\n";
      ++shown;
    }
    bool documented = false;
    for (const corpus::ManualEntry& entry : corpus::allManuals()) {
      if (entry.claim.param == param || entry.claim.other_param == param) {
        stdout_text += "  manual: \"" + entry.text + "\"\n";
        documented = true;
      }
    }
    if (shown == 0) stdout_text += "  no extracted dependencies involve this parameter\n";
    if (!documented) stdout_text += "  no manual claim mentions this parameter\n";
  } else {
    out["ok"] = false;
    out["error"] = type.empty() ? "missing request 'type'" : "unknown request type '" + type + "'";
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(memo_mu_);
    memo_[memo_key] = stdout_text;
  }
  out["ok"] = true;
  out["cached"] = false;
  out["stdout"] = std::move(stdout_text);
}

void ServeDaemon::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

void ServeDaemon::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();

  // Unblock accept() with a throwaway self-connection; shutdown() on
  // the listening fd is not portable enough to rely on alone.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
    (void)::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  ::unlink(options_.socket_path.c_str());

  obs::RunReport& report = obs::RunReport::global();
  report.note("serve_requests", requests_.load(std::memory_order_relaxed));
  report.note("serve_memo_hits", memo_hits_.load(std::memory_order_relaxed));
  report.note("serve_errors", errors_.load(std::memory_order_relaxed));
  FSDEP_LOG_INFO("serve", "stopped after %llu request(s)",
                 static_cast<unsigned long long>(requests_.load(std::memory_order_relaxed)));
}

Result<std::string> serveRoundTrip(const std::string& socket_path, const std::string& line) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return makeError("query: socket(): " + std::string(std::strerror(errno)));

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return makeError("query: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return makeError("query: cannot connect to " + socket_path + ": " + err +
                     " (is `fsdep serve` running?)");
  }
  if (!writeLine(fd, line)) {
    ::close(fd);
    return makeError("query: write failed");
  }

  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t nl = buffer.find('\n');
  if (nl == std::string::npos) return makeError("query: connection closed before a response");
  return buffer.substr(0, nl);
}

Result<ServeResponse> serveRequest(const std::string& socket_path,
                                   const json::Object& request) {
  Result<std::string> raw =
      serveRoundTrip(socket_path, json::writeCompact(json::Value(request)));
  if (!raw.ok()) return makeError(raw.error().message);

  Result<json::Value> parsed = json::parse(raw.value());
  if (!parsed.ok() || !parsed.value().isObject()) {
    return makeError("query: malformed response: " + raw.value());
  }
  const json::Object& object = parsed.value().asObject();
  ServeResponse response;
  response.ok = object.find("ok") != nullptr && object.find("ok")->asBool();
  if (const json::Value* id = object.find("id"); id != nullptr && id->isString()) {
    response.id = id->asString();
  }
  if (const json::Value* text = object.find("stdout"); text != nullptr && text->isString()) {
    response.stdout_text = text->asString();
  }
  if (const json::Value* error = object.find("error"); error != nullptr && error->isString()) {
    response.error = error->asString();
  }
  if (const json::Value* cached = object.find("cached"); cached != nullptr) {
    response.cached = cached->asBool();
  }
  if (const json::Value* wall = object.find("wall_us"); wall != nullptr) {
    response.wall_us = static_cast<std::uint64_t>(wall->asInt());
  }
  return response;
}

}  // namespace fsdep::tools
