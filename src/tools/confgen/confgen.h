// confgen: dependency-aware configuration generation, promoted out of
// ConBugCk / examples/config_fuzz_harness into its own library so every
// harness (ConBugCk fuzzing, the campaign engine, examples) draws
// configurations from the same generator.
//
// Two generation styles live here:
//   * random     — ConfigGenerator::randomConfig() over deliberately
//                  over-wide raw domains, optionally repaired against
//                  the extracted dependency set (ConBugCk's measurement
//                  of naive vs dependency-aware fuzzing);
//   * sampled    — sampleConfigMatrix(): a deterministic matrix over
//                  the mkfs/mount/tune knob domains combining
//                  each-used-value coverage (every knob value appears
//                  at least once) with greedy pairwise coverage (every
//                  pair of knob values appears together at least once),
//                  the classic configurable-system sampling strategies.
//                  Every sampled configuration is repaired against the
//                  dependency set, so campaigns spend their cells on
//                  configurations that get past shallow validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/tune.h"
#include "model/dependency.h"

namespace fsdep::tools {

struct GeneratedConfig {
  fsim::MkfsOptions mkfs;
  fsim::MountOptions mount;
  fsim::TuneOptions tune;
  std::uint32_t resize_target = 0;  ///< 0 = no resize step
};

/// Deterministic xorshift generator so runs are reproducible.
class ConfigGenerator {
 public:
  explicit ConfigGenerator(std::uint64_t seed) : state_(seed == 0 ? 1 : seed) {}

  /// Uniform random configuration over raw parameter domains.
  GeneratedConfig randomConfig();

  /// Random configuration repaired to satisfy the given dependencies.
  GeneratedConfig dependencyAwareConfig(const std::vector<model::Dependency>& deps);

  std::uint64_t nextUint();
  std::uint32_t pick(std::uint32_t bound);  ///< uniform in [0, bound)
  bool coin() { return (nextUint() & 1) != 0; }

 private:
  std::uint64_t state_;
};

/// Repairs a configuration in place so it satisfies the dependency set.
void repairConfig(GeneratedConfig& config, const std::vector<model::Dependency>& deps);

// --- Matrix sampling ---------------------------------------------------

/// One sampling dimension: a named knob with a small list of named
/// values. Value 0 is always the baseline default.
struct SamplingKnob {
  std::string name;
  std::vector<std::string> values;
};

/// The mkfs/mount/tune knob domains the sampler covers. Stable order;
/// index into it with the choice vectors below.
const std::vector<SamplingKnob>& samplingKnobs();

/// The baseline configuration every sample is derived from (the CrashCk
/// geometry: 1 KiB blocks, 2048-block filesystem, 512 blocks/group).
GeneratedConfig baselineConfig();

/// Applies choice `value` of knob `knob` to `config`.
void applyKnob(GeneratedConfig& config, std::size_t knob, std::size_t value);

struct SampledConfig {
  GeneratedConfig config;
  /// One value index per samplingKnobs() entry.
  std::vector<std::size_t> choices;
  /// Why this row exists: "baseline", "euv:knob=value" or "pair:N".
  std::string origin;

  /// "block_size=1024 layout=sparse_super2 ..." — stable, report-ready.
  [[nodiscard]] std::string label() const;
};

struct SamplingOptions {
  bool each_used_value = true;
  bool pairwise = true;
  /// 0 = unbounded. Truncation keeps matrix-prefix determinism: the
  /// first N rows of the unbounded matrix.
  std::size_t max_configs = 0;
};

/// Deterministic sample of the configuration matrix: the baseline row,
/// each-used-value rows, then greedy pairwise-covering rows; every row
/// repaired against `deps`. Same (options, deps) => identical matrix.
std::vector<SampledConfig> sampleConfigMatrix(const SamplingOptions& options,
                                              const std::vector<model::Dependency>& deps);

}  // namespace fsdep::tools
