#include "tools/confgen/confgen.h"

#include <algorithm>

namespace fsdep::tools {

using namespace fsim;

std::uint64_t ConfigGenerator::nextUint() {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1DULL;
}

std::uint32_t ConfigGenerator::pick(std::uint32_t bound) {
  return bound == 0 ? 0 : static_cast<std::uint32_t>(nextUint() % bound);
}

GeneratedConfig ConfigGenerator::randomConfig() {
  GeneratedConfig c;
  // Raw domains: deliberately wider than the legal ranges, like a tester
  // who does not know the constraints.
  const std::uint32_t block_sizes[] = {512, 1024, 2048, 4096, 8192, 131072};
  c.mkfs.block_size = block_sizes[pick(6)];
  c.mkfs.size_blocks = 1024 + pick(4) * 1024;
  c.mkfs.blocks_per_group = 128u << pick(5);  // 128..2048 (128 violates the minimum)
  const std::uint16_t inode_sizes[] = {64, 128, 256, 512, 8192};
  c.mkfs.inode_size = inode_sizes[pick(5)];
  c.mkfs.inode_ratio = 512u << pick(6);
  c.mkfs.reserved_ratio = pick(120);  // up to 119% (violates the 50% cap)
  c.mkfs.meta_bg = coin();
  c.mkfs.resize_inode = coin();
  c.mkfs.sparse_super2 = coin();
  c.mkfs.bigalloc = coin();
  c.mkfs.extents = coin();
  c.mkfs.has_64bit = coin();
  c.mkfs.quota = coin();
  c.mkfs.has_journal = coin();
  c.mkfs.uninit_bg = coin();
  c.mkfs.metadata_csum = coin();
  c.mkfs.flex_bg = coin();
  c.mkfs.inline_data = coin();
  c.mkfs.encrypt = coin();
  c.mkfs.cluster_size = coin() ? c.mkfs.block_size * (1 + pick(3)) : 0;

  c.mount.dax = coin();
  c.mount.read_only = coin();
  c.mount.noload = coin();
  const DataMode modes[] = {DataMode::Ordered, DataMode::Journal, DataMode::Writeback};
  c.mount.data_mode = modes[pick(3)];
  c.mount.commit_interval = pick(600);           // may exceed 300
  c.mount.stripe = pick(4) * 1048576;            // may exceed the cap
  c.mount.inode_readahead_blks = 1 + pick(100);  // often not a power of two
  c.mount.max_batch_time = pick(120000);
  c.mount.min_batch_time = pick(120000);
  c.mount.journal_checksum = coin();
  c.mount.journal_async_commit = coin();
  c.mount.dioread_nolock = coin();
  c.mount.delalloc = coin();
  c.mount.auto_da_alloc = coin();

  c.resize_target = coin() ? c.mkfs.size_blocks + 1024 + pick(2) * 1024 : 0;
  return c;
}

void repairConfig(GeneratedConfig& c, const std::vector<model::Dependency>& deps) {
  using model::ConstraintOp;

  // Numeric repairs first (SD ranges), then control-dependency repairs.
  auto clampMkfs = [&](const std::string& name, std::int64_t low, std::int64_t high) {
    auto clamp32 = [&](std::uint32_t& v) {
      if (static_cast<std::int64_t>(v) < low) v = static_cast<std::uint32_t>(low);
      if (static_cast<std::int64_t>(v) > high) v = static_cast<std::uint32_t>(high);
    };
    if (name == "mke2fs.blocksize") {
      std::uint32_t bs = c.mkfs.block_size;
      if (bs < low) bs = static_cast<std::uint32_t>(low);
      if (bs > high) bs = static_cast<std::uint32_t>(high);
      // power of two
      std::uint32_t p = 1024;
      while (p < bs) p <<= 1;
      c.mkfs.block_size = p;
    } else if (name == "mke2fs.inode_size") {
      std::uint16_t v = c.mkfs.inode_size;
      if (v < low) v = static_cast<std::uint16_t>(low);
      if (v > high) v = static_cast<std::uint16_t>(high);
      c.mkfs.inode_size = v;
    } else if (name == "mke2fs.inode_ratio") {
      clamp32(c.mkfs.inode_ratio);
    } else if (name == "mke2fs.reserved_ratio") {
      clamp32(c.mkfs.reserved_ratio);
    } else if (name == "mke2fs.blocks_per_group") {
      clamp32(c.mkfs.blocks_per_group);
      c.mkfs.blocks_per_group -= c.mkfs.blocks_per_group % 8;
    } else if (name == "mount.commit") {
      if (c.mount.commit_interval < low) c.mount.commit_interval = static_cast<std::uint32_t>(low);
      if (c.mount.commit_interval > high) c.mount.commit_interval = static_cast<std::uint32_t>(high);
    } else if (name == "mount.stripe") {
      if (c.mount.stripe > high) c.mount.stripe = static_cast<std::uint32_t>(high);
    } else if (name == "mount.inode_readahead_blks") {
      std::uint32_t p = 1;
      while (p < c.mount.inode_readahead_blks && p < (1u << 30)) p <<= 1;
      c.mount.inode_readahead_blks = p;
      if (c.mount.inode_readahead_blks > high) {
        c.mount.inode_readahead_blks = static_cast<std::uint32_t>(high);
      }
    } else if (name == "mount.max_batch_time") {
      if (c.mount.max_batch_time > high) c.mount.max_batch_time = static_cast<std::uint32_t>(high);
    }
  };

  auto disableMkfs = [&](const std::string& name) {
    if (name == "mke2fs.meta_bg") c.mkfs.meta_bg = false;
    else if (name == "mke2fs.resize_inode") c.mkfs.resize_inode = false;
    else if (name == "mke2fs.sparse_super2") c.mkfs.sparse_super2 = false;
    else if (name == "mke2fs.bigalloc") { c.mkfs.bigalloc = false; c.mkfs.cluster_size = 0; }
    else if (name == "mke2fs.64bit") c.mkfs.has_64bit = false;
    else if (name == "mke2fs.quota") c.mkfs.quota = false;
    else if (name == "mke2fs.uninit_bg") c.mkfs.uninit_bg = false;
    else if (name == "mke2fs.metadata_csum") c.mkfs.metadata_csum = false;
    else if (name == "mke2fs.inline_data") c.mkfs.inline_data = false;
    else if (name == "mke2fs.encrypt") c.mkfs.encrypt = false;
    else if (name == "mke2fs.cluster_size") c.mkfs.cluster_size = 0;
    else if (name == "mke2fs.resize_limit") c.mkfs.resize_limit_blocks = 0;
  };

  auto flagEnabled = [&](const std::string& name) -> bool {
    if (name == "mke2fs.meta_bg") return c.mkfs.meta_bg;
    if (name == "mke2fs.resize_inode") return c.mkfs.resize_inode;
    if (name == "mke2fs.sparse_super2") return c.mkfs.sparse_super2;
    if (name == "mke2fs.bigalloc") return c.mkfs.bigalloc;
    if (name == "mke2fs.extent") return c.mkfs.extents;
    if (name == "mke2fs.64bit") return c.mkfs.has_64bit;
    if (name == "mke2fs.quota") return c.mkfs.quota;
    if (name == "mke2fs.has_journal") return c.mkfs.has_journal;
    if (name == "mke2fs.uninit_bg") return c.mkfs.uninit_bg;
    if (name == "mke2fs.metadata_csum") return c.mkfs.metadata_csum;
    if (name == "mke2fs.inline_data") return c.mkfs.inline_data;
    if (name == "mke2fs.encrypt") return c.mkfs.encrypt;
    if (name == "mke2fs.cluster_size") return c.mkfs.cluster_size != 0;
    if (name == "mke2fs.resize_limit") return c.mkfs.resize_limit_blocks != 0;
    if (name == "mount.dax") return c.mount.dax;
    if (name == "mount.noload") return c.mount.noload;
    if (name == "mount.ro") return c.mount.read_only;
    if (name == "mount.data_journal") return c.mount.data_mode == DataMode::Journal;
    if (name == "mount.data_writeback") return c.mount.data_mode == DataMode::Writeback;
    if (name == "mount.journal_checksum") return c.mount.journal_checksum;
    if (name == "mount.journal_async_commit") return c.mount.journal_async_commit;
    if (name == "mount.dioread_nolock") return c.mount.dioread_nolock;
    if (name == "mount.delalloc") return c.mount.delalloc;
    if (name == "mount.auto_da_alloc") return c.mount.auto_da_alloc;
    return false;
  };

  auto enableRequirement = [&](const std::string& name) {
    if (name == "mke2fs.extent") c.mkfs.extents = true;
    else if (name == "mke2fs.has_journal") c.mkfs.has_journal = true;
    else if (name == "mke2fs.resize_inode") c.mkfs.resize_inode = true;
    else if (name == "mke2fs.bigalloc") c.mkfs.bigalloc = true;
    else if (name == "mke2fs.flex_bg") c.mkfs.flex_bg = true;
    else if (name == "mount.ro") c.mount.read_only = true;
    else if (name == "mount.journal_checksum") c.mount.journal_checksum = true;
    else if (name == "mount.data_writeback") c.mount.data_mode = DataMode::Writeback;
  };

  auto disableEither = [&](const std::string& a, const std::string& b) {
    // Prefer disabling the first (the dependency's subject).
    if (a.starts_with("mount.")) {
      if (a == "mount.dax") c.mount.dax = false;
      else if (a == "mount.dioread_nolock") c.mount.dioread_nolock = false;
      else if (a == "mount.delalloc") c.mount.delalloc = false;
      else if (a == "mount.auto_da_alloc") c.mount.auto_da_alloc = false;
      else if (a == "mount.data_journal") c.mount.data_mode = DataMode::Ordered;
      else disableMkfs(a);
    } else {
      disableMkfs(a);
    }
    (void)b;
  };

  // Two passes: requires-repairs can themselves enable a flag that an
  // excludes-dependency then has to resolve.
  for (int pass = 0; pass < 2; ++pass) {
    for (const model::Dependency& dep : deps) {
      switch (dep.op) {
        case ConstraintOp::InRange:
          clampMkfs(dep.param, dep.low.value_or(INT64_MIN), dep.high.value_or(INT64_MAX));
          break;
        case ConstraintOp::PowerOfTwo:
          clampMkfs(dep.param, 1, 1 << 30);
          break;
        case ConstraintOp::Requires:
          if (flagEnabled(dep.param) && !flagEnabled(dep.other_param)) {
            enableRequirement(dep.other_param);
            if (!flagEnabled(dep.other_param)) disableMkfs(dep.param);
          }
          break;
        case ConstraintOp::Excludes:
          if (flagEnabled(dep.param) && flagEnabled(dep.other_param)) {
            disableEither(dep.param, dep.other_param);
          }
          break;
        case ConstraintOp::Le:
          if (dep.param == "mke2fs.inode_size" && c.mkfs.inode_size > c.mkfs.block_size) {
            c.mkfs.inode_size = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(c.mkfs.block_size, 4096));
          } else if (dep.param == "mke2fs.blocks_per_group" &&
                     c.mkfs.blocks_per_group > 8 * c.mkfs.block_size) {
            c.mkfs.blocks_per_group = 8 * c.mkfs.block_size;
          } else if (dep.param == "mount.min_batch_time" &&
                     c.mount.min_batch_time > c.mount.max_batch_time) {
            c.mount.min_batch_time = c.mount.max_batch_time;
          }
          break;
        case ConstraintOp::Ge:
          if (dep.param == "mke2fs.cluster_size" && c.mkfs.cluster_size != 0 &&
              c.mkfs.cluster_size < c.mkfs.block_size) {
            c.mkfs.cluster_size = c.mkfs.block_size;
          } else if (dep.param == "mke2fs.inode_ratio" &&
                     c.mkfs.inode_ratio < c.mkfs.block_size) {
            c.mkfs.inode_ratio = c.mkfs.block_size;
          }
          break;
        default:
          break;
      }
    }
  }

  // Structural knowledge a dependency-aware harness also applies: dax
  // needs 4KiB blocks (extracted as an equality the analyzer skips).
  if (c.mount.dax && c.mkfs.block_size != 4096) c.mount.dax = false;
  if (c.mount.noload && !c.mount.read_only) c.mount.read_only = true;
  if (c.mkfs.blocks_per_group < 256) c.mkfs.blocks_per_group = 256;
}

GeneratedConfig ConfigGenerator::dependencyAwareConfig(
    const std::vector<model::Dependency>& deps) {
  GeneratedConfig c = randomConfig();
  repairConfig(c, deps);
  return c;
}

// --- Matrix sampling ---------------------------------------------------

const std::vector<SamplingKnob>& samplingKnobs() {
  static const std::vector<SamplingKnob> knobs = {
      {"block_size", {"1024", "2048", "4096"}},
      {"layout", {"resize_inode", "sparse_super2", "meta_bg", "plain"}},
      {"journal", {"on", "off"}},
      {"integrity", {"none", "metadata_csum", "uninit_bg"}},
      {"alloc", {"extents", "noextents", "bigalloc"}},
      {"data", {"ordered", "journal", "writeback"}},
      {"tune", {"light", "aggressive"}},
      {"resize", {"3072", "4096"}},
  };
  return knobs;
}

GeneratedConfig baselineConfig() {
  GeneratedConfig c;
  // The CrashCk / ConHandleCk baseline geometry, so single-config crash
  // campaigns are one row of this matrix.
  c.mkfs.block_size = 1024;
  c.mkfs.size_blocks = 2048;
  c.mkfs.blocks_per_group = 512;
  c.mkfs.inode_ratio = 8192;
  c.mkfs.inode_size = 256;
  c.tune.max_mount_count = 64;
  c.tune.reserved_blocks_count = 64;
  c.resize_target = 3072;
  return c;
}

void applyKnob(GeneratedConfig& c, std::size_t knob, std::size_t value) {
  switch (knob) {
    case 0:  // block_size
      c.mkfs.block_size = value == 1 ? 2048 : value == 2 ? 4096 : 1024;
      break;
    case 1:  // layout
      c.mkfs.resize_inode = value == 0;
      c.mkfs.sparse_super2 = value == 1;
      c.mkfs.meta_bg = value == 2;
      break;
    case 2:  // journal
      c.mkfs.has_journal = value == 0;
      break;
    case 3:  // integrity
      c.mkfs.metadata_csum = value == 1;
      c.mkfs.uninit_bg = value == 2;
      break;
    case 4:  // alloc
      c.mkfs.extents = value != 1;
      c.mkfs.bigalloc = value == 2;
      c.mkfs.cluster_size = value == 2 ? 2 * c.mkfs.block_size : 0;
      break;
    case 5:  // data
      c.mount.data_mode = value == 1   ? fsim::DataMode::Journal
                          : value == 2 ? fsim::DataMode::Writeback
                                       : fsim::DataMode::Ordered;
      break;
    case 6:  // tune
      if (value == 1) {
        c.tune.max_mount_count = 16;
        c.tune.reserved_blocks_count = 128;
        c.tune.label = "campaign";
      } else {
        c.tune.max_mount_count = 64;
        c.tune.reserved_blocks_count = 64;
      }
      break;
    case 7:  // resize
      c.resize_target = value == 1 ? 4096 : 3072;
      break;
    default:
      break;
  }
}

std::string SampledConfig::label() const {
  const std::vector<SamplingKnob>& knobs = samplingKnobs();
  std::string out;
  for (std::size_t k = 0; k < knobs.size() && k < choices.size(); ++k) {
    if (!out.empty()) out += ' ';
    out += knobs[k].name + '=' + knobs[k].values[choices[k]];
  }
  return out;
}

namespace {

/// Flat pair index for ((k1,v1),(k2,v2)), k1 < k2, over the knob table.
class PairIndex {
 public:
  PairIndex() {
    const std::vector<SamplingKnob>& knobs = samplingKnobs();
    offsets_.resize(knobs.size() * knobs.size(), 0);
    std::size_t next = 0;
    for (std::size_t a = 0; a < knobs.size(); ++a) {
      for (std::size_t b = a + 1; b < knobs.size(); ++b) {
        offsets_[a * knobs.size() + b] = next;
        next += knobs[a].values.size() * knobs[b].values.size();
      }
    }
    total_ = next;
  }

  [[nodiscard]] std::size_t id(std::size_t k1, std::size_t v1, std::size_t k2,
                               std::size_t v2) const {
    const std::vector<SamplingKnob>& knobs = samplingKnobs();
    return offsets_[k1 * knobs.size() + k2] + v1 * knobs[k2].values.size() + v2;
  }
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  std::vector<std::size_t> offsets_;
  std::size_t total_ = 0;
};

void markCovered(const PairIndex& index, const std::vector<std::size_t>& choices,
                 std::vector<bool>& covered, std::size_t& remaining) {
  for (std::size_t a = 0; a < choices.size(); ++a) {
    for (std::size_t b = a + 1; b < choices.size(); ++b) {
      const std::size_t id = index.id(a, choices[a], b, choices[b]);
      if (!covered[id]) {
        covered[id] = true;
        --remaining;
      }
    }
  }
}

}  // namespace

std::vector<SampledConfig> sampleConfigMatrix(const SamplingOptions& options,
                                              const std::vector<model::Dependency>& deps) {
  const std::vector<SamplingKnob>& knobs = samplingKnobs();
  std::vector<SampledConfig> rows;

  auto pushRow = [&](std::vector<std::size_t> choices, std::string origin) {
    for (const SampledConfig& existing : rows) {
      if (existing.choices == choices) return;
    }
    SampledConfig row;
    row.config = baselineConfig();
    for (std::size_t k = 0; k < knobs.size(); ++k) applyKnob(row.config, k, choices[k]);
    repairConfig(row.config, deps);
    row.choices = std::move(choices);
    row.origin = std::move(origin);
    rows.push_back(std::move(row));
  };

  pushRow(std::vector<std::size_t>(knobs.size(), 0), "baseline");

  if (options.each_used_value) {
    for (std::size_t k = 0; k < knobs.size(); ++k) {
      for (std::size_t v = 1; v < knobs[k].values.size(); ++v) {
        std::vector<std::size_t> choices(knobs.size(), 0);
        choices[k] = v;
        pushRow(std::move(choices), "euv:" + knobs[k].name + "=" + knobs[k].values[v]);
      }
    }
  }

  if (options.pairwise) {
    const PairIndex index;
    std::vector<bool> covered(index.total(), false);
    std::size_t remaining = index.total();
    for (const SampledConfig& row : rows) {
      markCovered(index, row.choices, covered, remaining);
    }

    std::size_t pair_rows = 0;
    for (std::size_t k1 = 0; k1 < knobs.size() && remaining > 0; ++k1) {
      for (std::size_t v1 = 0; v1 < knobs[k1].values.size(); ++v1) {
        for (std::size_t k2 = k1 + 1; k2 < knobs.size(); ++k2) {
          for (std::size_t v2 = 0; v2 < knobs[k2].values.size(); ++v2) {
            if (covered[index.id(k1, v1, k2, v2)]) continue;
            // Seed a row with the uncovered pair, then fill the free
            // knobs greedily: each takes the value covering the most
            // still-uncovered pairs with the knobs fixed so far
            // (lowest index wins ties — fully deterministic).
            std::vector<std::size_t> choices(knobs.size(), 0);
            std::vector<bool> fixed(knobs.size(), false);
            choices[k1] = v1;
            choices[k2] = v2;
            fixed[k1] = fixed[k2] = true;
            for (std::size_t k = 0; k < knobs.size(); ++k) {
              if (fixed[k]) continue;
              std::size_t best_value = 0;
              std::size_t best_gain = 0;
              for (std::size_t v = 0; v < knobs[k].values.size(); ++v) {
                std::size_t gain = 0;
                for (std::size_t other = 0; other < knobs.size(); ++other) {
                  if (!fixed[other]) continue;
                  const std::size_t id = k < other
                                             ? index.id(k, v, other, choices[other])
                                             : index.id(other, choices[other], k, v);
                  if (!covered[id]) ++gain;
                }
                if (gain > best_gain) {
                  best_gain = gain;
                  best_value = v;
                }
              }
              choices[k] = best_value;
              fixed[k] = true;
            }
            const std::size_t before = rows.size();
            pushRow(std::move(choices), "pair:" + std::to_string(pair_rows));
            if (rows.size() > before) {
              markCovered(index, rows.back().choices, covered, remaining);
              ++pair_rows;
            }
          }
        }
      }
    }
  }

  if (options.max_configs != 0 && rows.size() > options.max_configs) {
    rows.resize(options.max_configs);
  }
  return rows;
}

}  // namespace fsdep::tools
