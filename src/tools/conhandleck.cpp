#include "tools/conhandleck.h"

#include <functional>
#include <optional>

#include "corpus/pipeline.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "tools/crashck.h"
#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"
#include "fsim/tune.h"

namespace fsdep::tools {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;
using namespace fsim;

const char* handleOutcomeName(HandleOutcome outcome) {
  switch (outcome) {
    case HandleOutcome::RejectedGracefully: return "rejected-gracefully";
    case HandleOutcome::BehavedConsistently: return "behaved-consistently";
    case HandleOutcome::SilentAccept: return "silent-accept";
    case HandleOutcome::Corruption: return "CORRUPTION";
    case HandleOutcome::NotApplicable: return "not-applicable";
  }
  return "?";
}

int HandleCheckReport::countOf(HandleOutcome outcome) const {
  int n = 0;
  for (const HandleCase& c : cases) n += c.outcome == outcome ? 1 : 0;
  return n;
}

std::string HandleCheckReport::summary() const {
  return std::to_string(cases.size()) + " case(s): " +
         std::to_string(countOf(HandleOutcome::RejectedGracefully)) + " rejected, " +
         std::to_string(countOf(HandleOutcome::BehavedConsistently)) + " consistent, " +
         std::to_string(countOf(HandleOutcome::SilentAccept)) + " silent-accept, " +
         std::to_string(countOf(HandleOutcome::Corruption)) + " corruption, " +
         std::to_string(countOf(HandleOutcome::NotApplicable)) + " n/a";
}

namespace {

MkfsOptions baseMkfs() {
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  return o;
}

/// Formats a valid baseline image on a fresh device.
std::optional<BlockDevice> makeImage(const MkfsOptions& options) {
  BlockDevice device(8192, options.block_size);
  if (!MkfsTool::format(device, options).ok()) return std::nullopt;
  return device;
}

/// Applies a named mke2fs flag to the options (true = enable).
bool setMkfsFlag(MkfsOptions& o, const std::string& name, bool value) {
  if (name == "meta_bg") o.meta_bg = value;
  else if (name == "resize_inode") o.resize_inode = value;
  else if (name == "sparse_super2") o.sparse_super2 = value;
  else if (name == "bigalloc") o.bigalloc = value;
  else if (name == "extent") o.extents = value;
  else if (name == "64bit") o.has_64bit = value;
  else if (name == "quota") o.quota = value;
  else if (name == "has_journal") o.has_journal = value;
  else if (name == "uninit_bg") o.uninit_bg = value;
  else if (name == "metadata_csum") o.metadata_csum = value;
  else if (name == "flex_bg") o.flex_bg = value;
  else if (name == "inline_data") o.inline_data = value;
  else if (name == "encrypt") o.encrypt = value;
  else if (name == "cluster_size") o.cluster_size = value ? 2048 : 0;
  else if (name == "resize_limit") o.resize_limit_blocks = value ? 65536 : 0;
  else return false;
  return true;
}

bool setMkfsValue(MkfsOptions& o, const std::string& name, std::int64_t value) {
  if (name == "blocksize") o.block_size = static_cast<std::uint32_t>(value);
  else if (name == "inode_size") o.inode_size = static_cast<std::uint16_t>(value);
  else if (name == "inode_ratio") o.inode_ratio = static_cast<std::uint32_t>(value);
  else if (name == "reserved_ratio") o.reserved_ratio = static_cast<std::uint32_t>(value);
  else if (name == "blocks_per_group") o.blocks_per_group = static_cast<std::uint32_t>(value);
  else if (name == "cluster_size") o.cluster_size = static_cast<std::uint32_t>(value);
  else if (name == "size") o.size_blocks = static_cast<std::uint32_t>(value);
  else return false;
  return true;
}

bool setMountFlag(MountOptions& o, const std::string& name, bool value) {
  if (name == "dax") o.dax = value;
  else if (name == "ro") o.read_only = value;
  else if (name == "noload") o.noload = value;
  else if (name == "data_journal") o.data_mode = value ? DataMode::Journal : DataMode::Ordered;
  else if (name == "data_writeback") o.data_mode = value ? DataMode::Writeback : DataMode::Ordered;
  else if (name == "journal_checksum") o.journal_checksum = value;
  else if (name == "journal_async_commit") o.journal_async_commit = value;
  else if (name == "dioread_nolock") o.dioread_nolock = value;
  else if (name == "delalloc") o.delalloc = value;
  else if (name == "auto_da_alloc") o.auto_da_alloc = value;
  else return false;
  return true;
}

bool setMountValue(MountOptions& o, const std::string& name, std::int64_t value) {
  if (name == "commit") o.commit_interval = static_cast<std::uint32_t>(value);
  else if (name == "stripe") o.stripe = static_cast<std::uint32_t>(value);
  else if (name == "inode_readahead_blks") o.inode_readahead_blks = static_cast<std::uint32_t>(value);
  else if (name == "max_batch_time") o.max_batch_time = static_cast<std::uint32_t>(value);
  else if (name == "min_batch_time") o.min_batch_time = static_cast<std::uint32_t>(value);
  else return false;
  return true;
}

bool setSuperblockField(Superblock& sb, const std::string& field, std::int64_t value) {
  if (field == "s_log_block_size") sb.log_block_size = static_cast<std::uint32_t>(value);
  else if (field == "s_inode_size") sb.inode_size = static_cast<std::uint16_t>(value);
  else if (field == "s_rev_level") sb.rev_level = static_cast<std::uint32_t>(value);
  else if (field == "s_first_ino") sb.first_inode = static_cast<std::uint32_t>(value);
  else if (field == "s_desc_size") sb.desc_size = static_cast<std::uint16_t>(value);
  else if (field == "s_first_data_block") sb.first_data_block = static_cast<std::uint32_t>(value);
  else if (field == "s_inodes_per_group") sb.inodes_per_group = static_cast<std::uint32_t>(value);
  else if (field == "s_reserved_gdt_blocks") sb.reserved_gdt_blocks = static_cast<std::uint16_t>(value);
  else if (field == "s_error_count") sb.error_count = static_cast<std::uint32_t>(value);
  else return false;
  return true;
}

std::string componentOf(const std::string& qualified) {
  return qualified.substr(0, qualified.find('.'));
}

std::string nameOf(const std::string& qualified) {
  const std::size_t dot = qualified.find('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

/// Runs mkfs with the given (possibly invalid) options and classifies.
HandleOutcome classifyMkfs(const MkfsOptions& options, std::string& detail) {
  const std::uint32_t device_bs =
      (options.block_size >= 512 && options.block_size <= 1 << 20 &&
       (options.block_size & (options.block_size - 1)) == 0)
          ? options.block_size
          : 1024;
  BlockDevice device(8192, device_bs);
  const Result<Superblock> result = MkfsTool::format(device, options);
  if (!result.ok()) {
    detail = result.error().message;
    return HandleOutcome::RejectedGracefully;
  }
  const Result<FsckReport> fsck = FsckTool::check(device, FsckOptions{.force = true});
  if (fsck.ok() && !fsck.value().isClean()) {
    detail = fsck.value().summary();
    return HandleOutcome::Corruption;
  }
  detail = "mkfs accepted the configuration without complaint";
  return HandleOutcome::SilentAccept;
}

/// Mounts with (possibly invalid) options on a valid image.
HandleOutcome classifyMount(const MountOptions& options, std::string& detail) {
  std::optional<BlockDevice> device = makeImage(baseMkfs());
  if (!device) {
    detail = "baseline image could not be created";
    return HandleOutcome::NotApplicable;
  }
  Result<MountedFs> mounted = MountTool::mount(*device, options);
  if (!mounted.ok()) {
    detail = mounted.error().message;
    return HandleOutcome::RejectedGracefully;
  }
  mounted.value().unmount();
  const Result<FsckReport> fsck = FsckTool::check(*device, FsckOptions{.force = true});
  if (fsck.ok() && !fsck.value().isClean()) {
    detail = fsck.value().summary();
    return HandleOutcome::Corruption;
  }
  detail = "mount accepted the configuration without complaint";
  return HandleOutcome::SilentAccept;
}

/// Corrupts one superblock field on a valid image, then mounts.
HandleOutcome classifyFieldViolation(const std::string& field, std::int64_t value,
                                     std::string& detail) {
  std::optional<BlockDevice> device = makeImage(baseMkfs());
  if (!device) return HandleOutcome::NotApplicable;
  FsImage image(*device);
  Superblock sb = image.loadSuperblock();
  if (!setSuperblockField(sb, field, value)) {
    detail = "field not modelled by the simulator";
    return HandleOutcome::NotApplicable;
  }
  sb.updateChecksum();
  image.storeSuperblock(sb);
  Result<MountedFs> mounted = MountTool::mount(*device, MountOptions{});
  if (!mounted.ok()) {
    detail = mounted.error().message;
    return HandleOutcome::RejectedGracefully;
  }
  mounted.value().unmount();
  detail = "mount accepted the out-of-range field " + field;
  return HandleOutcome::SilentAccept;
}

/// Behavioural probe: full create-mount-use-umount-resize-fsck pipeline.
HandleOutcome classifyResizeProbe(const MkfsOptions& mkfs_options, std::uint32_t new_size,
                                  bool online, std::string& detail) {
  std::optional<BlockDevice> device = makeImage(mkfs_options);
  if (!device) return HandleOutcome::NotApplicable;
  Result<MountedFs> mounted = MountTool::mount(*device, MountOptions{});
  if (mounted.ok()) {
    (void)mounted.value().createFile(6144, 2);
    mounted.value().unmount();
  }
  ResizeOptions ro;
  ro.new_size_blocks = new_size;
  ro.online = online;
  const Result<ResizeReport> resized = ResizeTool::resize(*device, ro);
  if (!resized.ok()) {
    detail = resized.error().message;
    return HandleOutcome::RejectedGracefully;
  }
  const Result<FsckReport> fsck = FsckTool::check(*device, FsckOptions{.force = true});
  if (fsck.ok() && fsck.value().corruptionCount() > 0) {
    detail = "resize accepted, then fsck found: " + fsck.value().summary();
    return HandleOutcome::Corruption;
  }
  detail = "resize completed; filesystem consistent";
  return HandleOutcome::BehavedConsistently;
}

}  // namespace

HandleCheckReport runHandleCheck(const std::vector<Dependency>& deps) {
  obs::Span span("conhandleck", "handle-check");
  HandleCheckReport report;

  for (const Dependency& dep : deps) {
    HandleCase hc;
    hc.dependency_id = dep.id;

    const std::string component = componentOf(dep.param);
    const std::string name = nameOf(dep.param);

    switch (dep.kind) {
      case DepKind::SdValueRange: {
        // Violate by stepping outside a bound.
        std::int64_t bad_value = dep.high ? *dep.high + 1 : (dep.low ? *dep.low - 1 : -1);
        if (dep.op == ConstraintOp::PowerOfTwo) bad_value = 3000;  // not a power of two
        if (dep.op == ConstraintOp::MultipleOf && dep.low) bad_value = *dep.low + 1;
        hc.description = dep.param + " = " + std::to_string(bad_value);
        if (component == "mke2fs") {
          MkfsOptions o = baseMkfs();
          if (!setMkfsValue(o, name, bad_value)) break;
          hc.outcome = classifyMkfs(o, hc.detail);
        } else if (component == "mount") {
          MountOptions o;
          if (!setMountValue(o, name, bad_value)) break;
          hc.outcome = classifyMount(o, hc.detail);
        } else if (component == "ext4") {
          hc.outcome = classifyFieldViolation(name, bad_value, hc.detail);
        }
        break;
      }

      case DepKind::SdDataType:
        // Type violations happen at the string-parsing layer, which the
        // simulator's typed API makes unrepresentable by construction.
        hc.description = dep.param + " given a non-" + dep.type_name + " value";
        hc.outcome = HandleOutcome::NotApplicable;
        hc.detail = "typed simulator API cannot express a mistyped value";
        break;

      case DepKind::CpdControl:
      case DepKind::CcdControl: {
        const std::string other_component = componentOf(dep.other_param);
        const std::string other_name = nameOf(dep.other_param);
        const bool enable_other = dep.op == ConstraintOp::Excludes;  // violate
        hc.description = dep.param + " with " + dep.other_param +
                         (enable_other ? " enabled" : " disabled");
        if (component == "resize2fs" && name == "online") {
          // CCD-control: online resize without the resize_inode reserve.
          MkfsOptions o = baseMkfs();
          o.resize_inode = false;
          hc.outcome = classifyResizeProbe(o, 3072, /*online=*/true, hc.detail);
          break;
        }
        if (component == "mke2fs" && other_component == "mke2fs") {
          MkfsOptions o = baseMkfs();
          bool ok = setMkfsFlag(o, name, true);
          ok = setMkfsFlag(o, other_name, enable_other) && ok;
          if (name == "sparse_super2" || other_name == "sparse_super2") {
            // keep the pair to just the two features under test
            if (name != "resize_inode" && other_name != "resize_inode") o.resize_inode = false;
          }
          if (!ok) break;
          hc.outcome = classifyMkfs(o, hc.detail);
        } else if (component == "mount" && other_component == "mount") {
          MountOptions o;
          bool ok = setMountFlag(o, name, true);
          ok = setMountFlag(o, other_name, enable_other) && ok;
          if (!ok) break;
          hc.outcome = classifyMount(o, hc.detail);
        }
        break;
      }

      case DepKind::CpdValue: {
        hc.description = "violate " + dep.summary();
        if (dep.param == "mke2fs.inode_size" && dep.other_param == "mke2fs.blocksize") {
          MkfsOptions o = baseMkfs();
          o.block_size = 1024;
          o.inode_size = 2048;
          hc.outcome = classifyMkfs(o, hc.detail);
        } else if (dep.param == "mke2fs.blocks_per_group") {
          MkfsOptions o = baseMkfs();
          o.block_size = 1024;
          o.blocks_per_group = 16384;  // > 8 * blocksize
          hc.outcome = classifyMkfs(o, hc.detail);
        } else if (dep.param == "mke2fs.cluster_size") {
          MkfsOptions o = baseMkfs();
          o.bigalloc = true;
          o.cluster_size = 512;  // < blocksize
          hc.outcome = classifyMkfs(o, hc.detail);
        } else if (dep.param == "mke2fs.inode_ratio") {
          MkfsOptions o = baseMkfs();
          o.block_size = 4096;
          o.size_blocks = 0;
          o.blocks_per_group = 0;
          o.inode_ratio = 2048;  // < blocksize
          {
            BlockDevice device(2048, 4096);
            const Result<Superblock> r = MkfsTool::format(device, o);
            if (!r.ok()) {
              hc.outcome = HandleOutcome::RejectedGracefully;
              hc.detail = r.error().message;
            } else {
              hc.outcome = HandleOutcome::SilentAccept;
              hc.detail = "accepted";
            }
          }
        } else if (dep.param == "mount.min_batch_time") {
          MountOptions o;
          o.min_batch_time = 30000;
          o.max_batch_time = 15000;
          hc.outcome = classifyMount(o, hc.detail);
        } else if (dep.param == "mke2fs.size") {
          MkfsOptions o = baseMkfs();
          o.size_blocks = 4;  // below the whole-image minimum
          hc.outcome = classifyMkfs(o, hc.detail);
        }
        break;
      }

      case DepKind::CcdValue: {
        // resize2fs.size >= reserved minimum: shrink below it.
        hc.description = "shrink below the reserved minimum";
        hc.outcome = classifyResizeProbe(baseMkfs(), 16, /*online=*/false, hc.detail);
        break;
      }

      case DepKind::CcdBehavioral: {
        // Boundary probes: exercise the behaviour the dependency gates.
        if (dep.other_param == "mke2fs.sparse_super2") {
          MkfsOptions o = baseMkfs();
          o.sparse_super2 = true;
          o.resize_inode = false;
          hc.description = "grow a sparse_super2 filesystem (Figure 1)";
          hc.outcome = classifyResizeProbe(o, 3072, /*online=*/false, hc.detail);
        } else if (dep.other_param == "mke2fs.size") {
          hc.description = "grow past the creation size";
          hc.outcome = classifyResizeProbe(baseMkfs(), 3072, /*online=*/false, hc.detail);
        } else if (dep.other_param == "mke2fs.blocksize") {
          MkfsOptions o = baseMkfs();
          hc.description = "resize with a non-default block size";
          hc.outcome = classifyResizeProbe(o, 3072, /*online=*/false, hc.detail);
        } else if (dep.other_param == "mke2fs.label") {
          MkfsOptions o = baseMkfs();
          o.label = "scratch";
          hc.description = "resize a labelled filesystem";
          hc.outcome = classifyResizeProbe(o, 3072, /*online=*/false, hc.detail);
        } else {
          hc.description = "behavioural probe for " + dep.summary();
          hc.outcome = HandleOutcome::NotApplicable;
          hc.detail = "no simulator probe for this pair";
        }
        break;
      }
    }

    if (hc.description.empty()) hc.description = dep.summary();
    if (hc.outcome == HandleOutcome::NotApplicable && hc.detail.empty()) {
      hc.detail = "parameter not modelled by the simulator";
    }
    report.cases.push_back(std::move(hc));
  }
  FSDEP_LOG_INFO("conhandleck", "%zu case(s): %s", report.cases.size(),
                 report.summary().c_str());
  return report;
}

HandleCheckReport runCorpusHandleCheck() {
  const corpus::Table5Result result = corpus::runTable5();
  return runHandleCheck(result.unique_deps);
}

namespace {

HandleCase tuneProbe(const std::string& id, const std::string& description,
                     const MkfsOptions& mkfs_options, const TuneOptions& tune_options) {
  HandleCase hc;
  hc.dependency_id = id;
  hc.description = description;
  std::optional<BlockDevice> device = makeImage(mkfs_options);
  if (!device) {
    hc.outcome = HandleOutcome::NotApplicable;
    hc.detail = "baseline image could not be created";
    return hc;
  }
  const Result<TuneReport> tuned = TuneTool::tune(*device, tune_options);
  if (!tuned.ok()) {
    hc.outcome = HandleOutcome::RejectedGracefully;
    hc.detail = tuned.error().message;
    return hc;
  }
  // Accepted: the image must still mount and pass fsck.
  const Result<FsckReport> fsck = FsckTool::check(*device, FsckOptions{.force = true});
  if (fsck.ok() && fsck.value().corruptionCount() > 0) {
    hc.outcome = HandleOutcome::Corruption;
    hc.detail = fsck.value().summary();
    return hc;
  }
  Result<MountedFs> mounted = MountTool::mount(*device, MountOptions{});
  if (!mounted.ok()) {
    hc.outcome = HandleOutcome::Corruption;
    hc.detail = "tuned image no longer mounts: " + mounted.error().message;
    return hc;
  }
  mounted.value().unmount();
  hc.outcome = HandleOutcome::BehavedConsistently;
  hc.detail = "change applied; filesystem consistent and mountable";
  return hc;
}

}  // namespace

HandleCheckReport runHandleCheckUnderFaults(std::uint64_t seed) {
  obs::Span span("conhandleck", "handle-check-faults");
  struct FaultCase {
    const char* id;
    const char* op;
    const char* description;
  };
  // Each case names the dependency scenario whose write sequence the
  // fault schedules enumerate. "resize-buggy" replays the Figure 1
  // behaviour; "resize" the fixed accounting.
  static constexpr FaultCase kCases[] = {
      {"fault-mkfs", "mkfs", "crash mkfs at every write index"},
      {"fault-mount-commit", "mount", "crash a mount/write/umount journal cycle"},
      {"fault-resize-sparse2-buggy", "resize-buggy",
       "crash the Figure 1 sparse_super2 grow (shipped accounting)"},
      {"fault-resize-sparse2-fixed", "resize",
       "crash the sparse_super2 grow with fixed accounting"},
      {"fault-defrag", "defrag", "crash e4defrag mid-rewrite"},
      {"fault-tune", "tune", "crash tune2fs mid-change"},
  };

  HandleCheckReport report;
  for (const FaultCase& fc : kCases) {
    HandleCase hc;
    hc.dependency_id = fc.id;
    hc.description = fc.description;
    const Result<CrashOpReport> run = runCrashOp(fc.op, seed);
    if (!run.ok()) {
      hc.outcome = HandleOutcome::NotApplicable;
      hc.detail = run.error().message;
      report.cases.push_back(std::move(hc));
      continue;
    }
    const CrashOpReport& r = run.value();
    const int silent = r.countOf(CrashOutcome::SilentCorruption);
    const int lost = r.countOf(CrashOutcome::DataLoss);
    hc.detail = std::to_string(r.points.size()) + " crash point(s): " + r.histogram();
    if (silent > 0 || lost > 0) {
      // A crash that yields a clean-looking-but-wrong image (or eats
      // committed data) is the dangerous class the campaign hunts.
      hc.outcome = HandleOutcome::Corruption;
    } else {
      hc.outcome = HandleOutcome::BehavedConsistently;
    }
    FSDEP_LOG_DEBUG("conhandleck", "%s: %s -> %s", fc.id, hc.detail.c_str(),
                    handleOutcomeName(hc.outcome));
    report.cases.push_back(std::move(hc));
  }
  FSDEP_LOG_INFO("conhandleck", "fault campaign: %s", report.summary().c_str());
  return report;
}

HandleCheckReport runTuneProbes() {
  HandleCheckReport report;

  {
    MkfsOptions base = baseMkfs();
    base.quota = true;
    TuneOptions t;
    t.has_journal = false;
    report.cases.push_back(tuneProbe("tune-quota-journal",
                                     "drop the journal of a quota filesystem (violates "
                                     "mke2fs.quota requires mke2fs.has_journal)",
                                     base, t));
  }
  {
    TuneOptions t;
    t.has_journal = false;
    report.cases.push_back(tuneProbe("tune-drop-journal",
                                     "drop the journal of a plain filesystem (no dependency "
                                     "violated)",
                                     baseMkfs(), t));
  }
  {
    TuneOptions t;
    t.sparse_super2 = true;
    report.cases.push_back(tuneProbe("tune-sparse2-resize-inode",
                                     "enable sparse_super2 while resize_inode exists "
                                     "(violates the exclusion)",
                                     baseMkfs(), t));
  }
  {
    MkfsOptions base = baseMkfs();
    base.resize_inode = false;
    TuneOptions t;
    t.sparse_super2 = true;
    report.cases.push_back(tuneProbe("tune-sparse2-ok",
                                     "enable sparse_super2 on a resize_inode-free filesystem",
                                     base, t));
  }
  {
    TuneOptions t;
    t.metadata_csum = true;
    t.uninit_bg = true;
    report.cases.push_back(tuneProbe("tune-csum-uninit",
                                     "enable metadata_csum together with uninit_bg "
                                     "(violates the exclusion)",
                                     baseMkfs(), t));
  }
  {
    TuneOptions t;
    t.reserved_blocks_count = 100000;
    report.cases.push_back(tuneProbe("tune-reserved-cap",
                                     "reserve more blocks than the filesystem holds",
                                     baseMkfs(), t));
  }
  return report;
}

}  // namespace fsdep::tools
