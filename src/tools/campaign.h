// Campaign engine: explores the crash-point × fault-schedule ×
// configuration matrix at scale. CrashCk (PR 1) enumerates crash points
// for ONE fixed configuration per tool; the campaign engine runs the
// same experiment over a dependency-aware sample of the configuration
// space (tools/confgen: each-used-value + pairwise over the mkfs/tune
// knobs, repaired against the extracted dependency set), and adds
// multi-fault schedules — crash plus transient media errors plus
// device-death — to every sampled configuration.
//
// Robustness is the engine's own core:
//   * outcomes are deduplicated by a canonical post-recovery FS-state
//     hash (fsim::imageStateDigest) — two schedules that strand the
//     user in the same state are one bug, not two;
//   * failing schedules are delta-debugged (ddmin over fault events,
//     re-running every candidate) down to a minimal reproducer;
//   * interesting schedules persist as a versioned on-disk regression
//     corpus (corpus/campaign/*.json) with a replay mode;
//   * a crashed or failed cell marks that cell Failed and the campaign
//     continues, with bounded retry for transient errors;
//   * the whole run is deterministic — the same (seed, matrix, jobs)
//     produces a bit-identical report.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fsim/block_device.h"
#include "json/json.h"
#include "support/result.h"
#include "tools/confgen/confgen.h"
#include "tools/crashck.h"

namespace fsdep::tools {

// --- Fault schedules ---------------------------------------------------

enum class FaultEventKind : std::uint8_t {
  CrashAtWrite,     ///< power loss at the Nth persisted write (torn prefix)
  FailAfterWrites,  ///< device death: writes fail permanently after N
  TransientWrite,   ///< a block's writes fail `failures` times, then heal
  TransientRead,    ///< a block's reads fail `failures` times, then heal
};

const char* faultEventKindName(FaultEventKind kind);
std::optional<FaultEventKind> faultEventKindFromName(std::string_view name);

/// One fault in a schedule. A schedule is an ordered list of these; the
/// campaign generates single-crash and crash+transient combinations, and
/// ddmin prunes them event-wise.
struct FaultEvent {
  FaultEventKind kind = FaultEventKind::CrashAtWrite;
  std::uint64_t write_index = 0;  ///< CrashAtWrite / FailAfterWrites
  std::uint32_t block = 0;        ///< Transient*
  std::uint32_t failures = 1;     ///< Transient*

  bool operator==(const FaultEvent&) const = default;
  [[nodiscard]] std::string summary() const;
};

using FaultSchedule = std::vector<FaultEvent>;

/// Compiles a schedule into the BlockDevice fault plan (at most one
/// crash and one fail-after event take effect; extras are ignored).
fsim::FaultPlan compileFaultSchedule(const FaultSchedule& schedule, std::uint64_t seed);

/// "control" for the empty schedule, else "crash@12 + transient-write(b3 x1)".
std::string faultScheduleSummary(const FaultSchedule& schedule);

json::Array faultScheduleToJson(const FaultSchedule& schedule);
Result<FaultSchedule> faultScheduleFromJson(const json::Value& value);

/// Full configuration round-trip for the on-disk corpus.
json::Object generatedConfigToJson(const GeneratedConfig& config);
Result<GeneratedConfig> generatedConfigFromJson(const json::Value& value);

// --- Cells -------------------------------------------------------------

/// The operations a campaign can torture; same list as CrashCk, but
/// every op is parameterized by the sampled configuration.
std::vector<std::string> campaignOpNames();

struct CampaignCell {
  std::size_t config_index = 0;
  std::string op;
  FaultSchedule schedule;
};

struct CellOutcome {
  CrashOutcome outcome = CrashOutcome::Recovered;
  std::uint64_t digest = 0;  ///< fsim::imageStateDigest after recovery
  std::string detail;
};

/// Runs one (config, op, schedule) cell on a fresh device: fault-free
/// setup, install the compiled schedule, run the op, reboot, classify
/// (classifyPostCrashImage) and digest the post-recovery state.
/// Deterministic in (config, op, schedule, seed). Errors (unknown op)
/// are structured; exceptions escape only for harness bugs.
Result<CellOutcome> runCampaignCell(const GeneratedConfig& config, const std::string& op,
                                    const FaultSchedule& schedule, std::uint64_t seed);

enum class CellStatus : std::uint8_t {
  Done,    ///< ran to classification
  Failed,  ///< the cell itself crashed or errored, retries exhausted
};
const char* cellStatusName(CellStatus status);

struct CellResult {
  CellStatus status = CellStatus::Done;
  CrashOutcome outcome = CrashOutcome::Recovered;  ///< Done cells only
  std::uint64_t digest = 0;
  std::string detail;
  std::uint32_t attempts = 1;  ///< 1 + transient retries spent
  // Filled by the dedup pass (Done cells only):
  bool duplicate = false;
  std::size_t first_cell = 0;  ///< first cell with the same (op, outcome, digest)
};

/// Shard-failure guard: runs `cell` up to 1 + retries times; a thrown
/// exception is retried (transient-error policy), and when retries are
/// exhausted — or the cell returns a structured error — the result is
/// status Failed with the reason in detail. The campaign never dies
/// because one cell did.
CellResult runCellWithRetry(const std::function<Result<CellOutcome>()>& cell,
                            std::uint32_t retries);

// --- Minimization ------------------------------------------------------

/// ddmin over fault events: the smallest subsequence of `schedule` for
/// which `reproduces` still holds. `reproduces` must be deterministic;
/// `probes` accumulates how many candidates were re-executed. If even
/// the empty schedule reproduces (the op fails with no faults at all —
/// the Figure 1 completed buggy resize), the minimum is empty.
FaultSchedule minimizeSchedule(const FaultSchedule& schedule,
                               const std::function<bool(const FaultSchedule&)>& reproduces,
                               std::uint32_t& probes);

struct MinimizedRepro {
  std::size_t cell_index = 0;
  std::size_t config_index = 0;
  std::string op;
  FaultSchedule schedule;  ///< minimal, not the original
  CrashOutcome outcome = CrashOutcome::Recovered;
  std::uint64_t digest = 0;
  std::string detail;
  std::uint32_t ddmin_probes = 0;
};

// --- The campaign ------------------------------------------------------

struct CampaignOptions {
  std::uint64_t seed = 42;
  std::vector<std::string> ops;   ///< subset of campaignOpNames(); empty = all
  std::size_t max_configs = 24;   ///< 0 = the full sampled matrix
  bool pairwise = true;           ///< add pairwise-covering rows to each-used-value
  std::size_t max_crash_points = 4;   ///< crash cells per (config, op)
  std::size_t max_double_faults = 2;  ///< crash+transient cells per (config, op)
  bool minimize = true;
  std::uint32_t cell_retries = 2;
  std::size_t jobs = 0;           ///< 0 = the global --jobs setting
  std::string corpus_dir;         ///< persist minimized repros when non-empty
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::vector<std::string> ops;
  std::vector<SampledConfig> configs;
  std::vector<CampaignCell> cells;
  std::vector<CellResult> results;   ///< parallel to cells
  std::vector<MinimizedRepro> repros;
  std::uint64_t dedup_hits = 0;
  std::uint64_t unique_outcomes = 0;
  std::uint64_t minimizer_probes = 0;

  [[nodiscard]] int totalOf(CrashOutcome outcome) const;  ///< Done cells
  [[nodiscard]] int totalFailed() const;
  /// "recovered=N needs-repair=N silent-corruption=N data-loss=N failed=N"
  [[nodiscard]] std::string histogram() const;
  [[nodiscard]] std::string summary() const;
  /// The full report; byte-identical for the same (seed, matrix, jobs).
  [[nodiscard]] std::string renderText() const;
  [[nodiscard]] json::Object toJson() const;
};

/// Runs the campaign: sample the matrix, plan schedules per (config,
/// op), execute every cell on the thread pool, dedupe, minimize,
/// persist. `deps` steers the sampler's repair step (pass the Table 5
/// extraction).
Result<CampaignReport> runMatrixCampaign(const CampaignOptions& options,
                                         const std::vector<model::Dependency>& deps);

// --- Regression corpus -------------------------------------------------

inline constexpr int kCampaignCorpusVersion = 1;

json::Object reproToJson(const MinimizedRepro& repro, const GeneratedConfig& config,
                         std::uint64_t seed);

/// Writes every minimized repro as corpus files under `dir` (created if
/// missing): campaign-<op>-<outcome>-<digest>.json. Returns the paths.
Result<std::vector<std::string>> persistCampaignCorpus(const CampaignReport& report,
                                                       const std::string& dir);

struct ReplayCase {
  std::string file;
  std::string op;
  CrashOutcome recorded = CrashOutcome::Recovered;
  CrashOutcome replayed = CrashOutcome::Recovered;
  bool outcome_match = false;
  bool digest_match = false;
  std::string detail;
};

struct ReplayReport {
  std::vector<ReplayCase> cases;
  [[nodiscard]] bool allMatch() const;
  [[nodiscard]] std::string summary() const;
};

/// Re-runs every *.json schedule under `dir` (sorted by file name) and
/// compares the outcome (and state digest) against what was recorded.
Result<ReplayReport> replayCampaignCorpus(const std::string& dir);

/// Replays a single parsed corpus document (exposed for tests).
Result<ReplayCase> replayCorpusDocument(const json::Value& doc, const std::string& file);

// --- CI gating ---------------------------------------------------------

/// Which outcome classes turn a run into a non-zero exit (--fail-on).
struct FailOnSet {
  bool silent_corruption = false;
  bool data_loss = false;
  bool needs_repair = false;
  bool failed = false;  ///< campaign cells that died (not a CrashOutcome)

  [[nodiscard]] bool empty() const {
    return !silent_corruption && !data_loss && !needs_repair && !failed;
  }
  [[nodiscard]] bool matches(CrashOutcome outcome) const;
};

/// Parses "silent-corruption,data-loss[,needs-repair,failed]".
Result<FailOnSet> parseFailOn(const std::string& spec);

}  // namespace fsdep::tools
