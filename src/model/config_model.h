// The configuration model of an FS ecosystem (paper §2): a set of
// *components* (the file system plus its utilities), each exposing
// configuration *parameters*. Dependencies (model/dependency.h) relate
// parameters within and across components.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fsdep::model {

/// The four configuration stages of Figure 2 in the paper.
enum class ConfigStage : std::uint8_t { Create, Mount, Online, Offline };

const char* configStageName(ConfigStage stage);
std::optional<ConfigStage> configStageFromName(std::string_view name);

/// Value domain of a parameter.
enum class ParamType : std::uint8_t {
  Flag,     ///< boolean feature toggle (e.g. -O sparse_super2)
  Integer,  ///< numeric (e.g. -b 4096)
  String,   ///< free-form (e.g. -L label)
  Enum,     ///< one of a fixed set (e.g. data=journal|ordered|writeback)
  Size,     ///< byte/block size with unit suffixes (e.g. resize2fs <size>)
};

const char* paramTypeName(ParamType type);
std::optional<ParamType> paramTypeFromName(std::string_view name);

/// One configuration parameter of one component.
struct Parameter {
  std::string component;            ///< owning component, e.g. "mke2fs"
  std::string name;                 ///< canonical name, e.g. "blocksize"
  std::string flag;                 ///< CLI spelling, e.g. "-b" or "-O sparse_super2"
  ParamType type = ParamType::Flag;
  ConfigStage stage = ConfigStage::Create;
  std::string description;
  std::vector<std::string> enum_values;  ///< for ParamType::Enum

  /// "component.name" — the global identity used by dependencies and taint.
  [[nodiscard]] std::string qualifiedName() const { return component + "." + name; }
};

/// A component of the FS ecosystem: the file system itself or a utility.
struct Component {
  std::string name;                 ///< e.g. "mke2fs", "ext4"
  ConfigStage stage = ConfigStage::Create;  ///< stage at which it configures the FS
  bool is_kernel = false;           ///< true for the FS itself (kernel side)
  std::string description;
  std::vector<Parameter> parameters;

  [[nodiscard]] const Parameter* findParameter(std::string_view param_name) const;
};

/// The whole ecosystem: components plus lookup helpers.
class Ecosystem {
 public:
  void addComponent(Component component);

  [[nodiscard]] const std::vector<Component>& components() const { return components_; }
  [[nodiscard]] const Component* findComponent(std::string_view name) const;

  /// Looks up "component.param". Returns nullptr when unknown.
  [[nodiscard]] const Parameter* findParameter(std::string_view qualified_name) const;

  [[nodiscard]] std::size_t totalParameterCount() const;

 private:
  std::vector<Component> components_;
};

}  // namespace fsdep::model
