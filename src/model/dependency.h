// The multi-level configuration dependency taxonomy of the paper (Table 4):
//
//   Self Dependency (SD)              — one parameter's own constraint
//     * DataType:  parameter must be of a specific data type
//     * ValueRange: parameter must be within a specific value range
//   Cross-Parameter Dependency (CPD)  — parameters of the SAME component
//     * Control: P1 of C1 can be enabled iff P2 of C1 is enabled/disabled
//     * Value:   P1's value depends on P2's value (e.g. P1 <= P2)
//   Cross-Component Dependency (CCD)  — parameters of DIFFERENT components
//     * Control:    P1 of C1 can be enabled iff P2 of C2 is enabled/disabled
//     * Value:      P1's value depends on P2 from another component
//     * Behavioral: component C1's behavior depends on P2 of C2
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace fsdep::model {

enum class DepLevel : std::uint8_t { SelfDependency, CrossParameter, CrossComponent };

enum class DepKind : std::uint8_t {
  SdDataType,
  SdValueRange,
  CpdControl,
  CpdValue,
  CcdControl,
  CcdValue,
  CcdBehavioral,
};

DepLevel depLevelOf(DepKind kind);
const char* depLevelName(DepLevel level);
const char* depLevelShortName(DepLevel level);  // "SD" / "CPD" / "CCD"
const char* depKindName(DepKind kind);
std::optional<DepKind> depKindFromName(std::string_view name);

/// Comparison operator appearing in a constraint expression.
enum class ConstraintOp : std::uint8_t {
  Eq, Ne, Lt, Le, Gt, Ge,
  Requires,        ///< P1 enabled => P2 enabled
  Excludes,        ///< P1 and P2 cannot both be enabled
  InRange,         ///< low <= P <= high
  HasType,         ///< P must parse as a given type
  MultipleOf,      ///< P % k == 0
  PowerOfTwo,      ///< P is a power of two
  Influences,      ///< behavioral: P2 influences C1's behavior
};

const char* constraintOpName(ConstraintOp op);
std::optional<ConstraintOp> constraintOpFromName(std::string_view name);

/// One extracted or curated dependency.
struct Dependency {
  std::string id;                       ///< stable id, e.g. "sd-mke2fs-blocksize-range"
  DepKind kind = DepKind::SdDataType;
  ConstraintOp op = ConstraintOp::HasType;

  /// The constrained parameter, "component.name".
  std::string param;
  /// The other side for CPD/CCD ("component.name"); empty for SD.
  std::string other_param;

  /// For SdValueRange / numeric relations.
  std::optional<std::int64_t> low;
  std::optional<std::int64_t> high;
  /// For SdDataType: the required type name ("integer", "size", ...).
  std::string type_name;
  /// For CCD: the shared metadata field that bridges the two components,
  /// e.g. "ext4_super_block.s_blocks_count" (paper §4.1 key observation).
  std::string bridge_field;

  std::string description;              ///< human-readable statement
  SourceRange evidence;                 ///< where in the corpus it was found
  std::vector<std::string> trace;       ///< rendered taint-trace steps

  [[nodiscard]] DepLevel level() const { return depLevelOf(kind); }

  /// Deduplication key: two extractions of the same logical dependency
  /// (possibly found via different code paths) compare equal.
  [[nodiscard]] std::string dedupKey() const;

  /// One-line rendering like "CPD-control: mke2fs.meta_bg excludes
  /// mke2fs.resize_inode".
  [[nodiscard]] std::string summary() const;
};

}  // namespace fsdep::model
