#include "model/serialization.h"

namespace fsdep::model {

json::Value toJson(const Parameter& param) {
  json::Object o;
  o["component"] = param.component;
  o["name"] = param.name;
  o["flag"] = param.flag;
  o["type"] = paramTypeName(param.type);
  o["stage"] = configStageName(param.stage);
  if (!param.description.empty()) o["description"] = param.description;
  if (!param.enum_values.empty()) {
    json::Array values;
    for (const std::string& v : param.enum_values) values.emplace_back(v);
    o["enum_values"] = std::move(values);
  }
  return o;
}

json::Value toJson(const Component& component) {
  json::Object o;
  o["name"] = component.name;
  o["stage"] = configStageName(component.stage);
  o["is_kernel"] = component.is_kernel;
  if (!component.description.empty()) o["description"] = component.description;
  json::Array params;
  for (const Parameter& p : component.parameters) params.push_back(toJson(p));
  o["parameters"] = std::move(params);
  return o;
}

json::Value toJson(const Ecosystem& ecosystem) {
  json::Object o;
  json::Array comps;
  for (const Component& c : ecosystem.components()) comps.push_back(toJson(c));
  o["components"] = std::move(comps);
  return o;
}

json::Value toJson(const Dependency& dep) {
  json::Object o;
  o["id"] = dep.id;
  o["kind"] = depKindName(dep.kind);
  o["level"] = depLevelShortName(dep.level());
  o["op"] = constraintOpName(dep.op);
  o["param"] = dep.param;
  if (!dep.other_param.empty()) o["other_param"] = dep.other_param;
  if (dep.low) o["low"] = *dep.low;
  if (dep.high) o["high"] = *dep.high;
  if (!dep.type_name.empty()) o["type_name"] = dep.type_name;
  if (!dep.bridge_field.empty()) o["bridge_field"] = dep.bridge_field;
  if (!dep.description.empty()) o["description"] = dep.description;
  if (!dep.trace.empty()) {
    json::Array trace;
    for (const std::string& step : dep.trace) trace.emplace_back(step);
    o["trace"] = std::move(trace);
  }
  return o;
}

json::Value toJson(const std::vector<Dependency>& dependencies) {
  json::Object o;
  json::Array deps;
  for (const Dependency& d : dependencies) deps.push_back(toJson(d));
  o["dependencies"] = std::move(deps);
  return o;
}

namespace {

std::string getString(const json::Object& o, std::string_view key) {
  const json::Value* v = o.find(key);
  return v != nullptr ? v->asString() : std::string();
}

}  // namespace

Result<Parameter> parameterFromJson(const json::Value& value) {
  if (!value.isObject()) return makeError("parameter: expected object");
  const json::Object& o = value.asObject();
  Parameter p;
  p.component = getString(o, "component");
  p.name = getString(o, "name");
  p.flag = getString(o, "flag");
  if (p.name.empty()) return makeError("parameter: missing name");
  if (auto t = paramTypeFromName(getString(o, "type"))) p.type = *t;
  else return makeError("parameter " + p.name + ": bad type");
  if (auto s = configStageFromName(getString(o, "stage"))) p.stage = *s;
  p.description = getString(o, "description");
  if (const json::Value* ev = o.find("enum_values"); ev != nullptr && ev->isArray()) {
    for (const json::Value& v : ev->asArray()) p.enum_values.push_back(v.asString());
  }
  return p;
}

Result<Component> componentFromJson(const json::Value& value) {
  if (!value.isObject()) return makeError("component: expected object");
  const json::Object& o = value.asObject();
  Component c;
  c.name = getString(o, "name");
  if (c.name.empty()) return makeError("component: missing name");
  if (auto s = configStageFromName(getString(o, "stage"))) c.stage = *s;
  if (const json::Value* k = o.find("is_kernel")) c.is_kernel = k->asBool();
  c.description = getString(o, "description");
  if (const json::Value* params = o.find("parameters"); params != nullptr && params->isArray()) {
    for (const json::Value& pv : params->asArray()) {
      Result<Parameter> p = parameterFromJson(pv);
      if (!p.ok()) return p.error();
      c.parameters.push_back(std::move(p).take());
    }
  }
  return c;
}

Result<Ecosystem> ecosystemFromJson(const json::Value& value) {
  if (!value.isObject()) return makeError("ecosystem: expected object");
  Ecosystem eco;
  const json::Value* comps = value.asObject().find("components");
  if (comps == nullptr || !comps->isArray()) return makeError("ecosystem: missing components");
  for (const json::Value& cv : comps->asArray()) {
    Result<Component> c = componentFromJson(cv);
    if (!c.ok()) return c.error();
    eco.addComponent(std::move(c).take());
  }
  return eco;
}

Result<Dependency> dependencyFromJson(const json::Value& value) {
  if (!value.isObject()) return makeError("dependency: expected object");
  const json::Object& o = value.asObject();
  Dependency d;
  d.id = getString(o, "id");
  if (auto k = depKindFromName(getString(o, "kind"))) d.kind = *k;
  else return makeError("dependency " + d.id + ": bad kind");
  if (auto op = constraintOpFromName(getString(o, "op"))) d.op = *op;
  else return makeError("dependency " + d.id + ": bad op");
  d.param = getString(o, "param");
  if (d.param.empty()) return makeError("dependency " + d.id + ": missing param");
  d.other_param = getString(o, "other_param");
  if (const json::Value* low = o.find("low")) d.low = low->asInt();
  if (const json::Value* high = o.find("high")) d.high = high->asInt();
  d.type_name = getString(o, "type_name");
  d.bridge_field = getString(o, "bridge_field");
  d.description = getString(o, "description");
  if (const json::Value* trace = o.find("trace"); trace != nullptr && trace->isArray()) {
    for (const json::Value& step : trace->asArray()) d.trace.push_back(step.asString());
  }
  return d;
}

Result<std::vector<Dependency>> dependenciesFromJson(const json::Value& value) {
  if (!value.isObject()) return makeError("dependencies: expected object");
  const json::Value* deps = value.asObject().find("dependencies");
  if (deps == nullptr || !deps->isArray()) return makeError("dependencies: missing array");
  std::vector<Dependency> out;
  for (const json::Value& dv : deps->asArray()) {
    Result<Dependency> d = dependencyFromJson(dv);
    if (!d.ok()) return d.error();
    out.push_back(std::move(d).take());
  }
  return out;
}

}  // namespace fsdep::model
