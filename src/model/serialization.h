// JSON (de)serialization for the configuration model, mirroring the paper's
// "extracted dependencies are stored in JSON files which describe both the
// parameters and the associated constraints" (§4.1).
#pragma once

#include "json/json.h"
#include "model/config_model.h"
#include "model/dependency.h"
#include "support/result.h"

namespace fsdep::model {

json::Value toJson(const Parameter& param);
json::Value toJson(const Component& component);
json::Value toJson(const Ecosystem& ecosystem);
json::Value toJson(const Dependency& dependency);
json::Value toJson(const std::vector<Dependency>& dependencies);

Result<Parameter> parameterFromJson(const json::Value& value);
Result<Component> componentFromJson(const json::Value& value);
Result<Ecosystem> ecosystemFromJson(const json::Value& value);
Result<Dependency> dependencyFromJson(const json::Value& value);
Result<std::vector<Dependency>> dependenciesFromJson(const json::Value& value);

}  // namespace fsdep::model
