#include "model/dependency.h"

namespace fsdep::model {

DepLevel depLevelOf(DepKind kind) {
  switch (kind) {
    case DepKind::SdDataType:
    case DepKind::SdValueRange:
      return DepLevel::SelfDependency;
    case DepKind::CpdControl:
    case DepKind::CpdValue:
      return DepLevel::CrossParameter;
    case DepKind::CcdControl:
    case DepKind::CcdValue:
    case DepKind::CcdBehavioral:
      return DepLevel::CrossComponent;
  }
  return DepLevel::SelfDependency;
}

const char* depLevelName(DepLevel level) {
  switch (level) {
    case DepLevel::SelfDependency: return "self-dependency";
    case DepLevel::CrossParameter: return "cross-parameter-dependency";
    case DepLevel::CrossComponent: return "cross-component-dependency";
  }
  return "unknown";
}

const char* depLevelShortName(DepLevel level) {
  switch (level) {
    case DepLevel::SelfDependency: return "SD";
    case DepLevel::CrossParameter: return "CPD";
    case DepLevel::CrossComponent: return "CCD";
  }
  return "?";
}

const char* depKindName(DepKind kind) {
  switch (kind) {
    case DepKind::SdDataType: return "sd-data-type";
    case DepKind::SdValueRange: return "sd-value-range";
    case DepKind::CpdControl: return "cpd-control";
    case DepKind::CpdValue: return "cpd-value";
    case DepKind::CcdControl: return "ccd-control";
    case DepKind::CcdValue: return "ccd-value";
    case DepKind::CcdBehavioral: return "ccd-behavioral";
  }
  return "unknown";
}

std::optional<DepKind> depKindFromName(std::string_view name) {
  if (name == "sd-data-type") return DepKind::SdDataType;
  if (name == "sd-value-range") return DepKind::SdValueRange;
  if (name == "cpd-control") return DepKind::CpdControl;
  if (name == "cpd-value") return DepKind::CpdValue;
  if (name == "ccd-control") return DepKind::CcdControl;
  if (name == "ccd-value") return DepKind::CcdValue;
  if (name == "ccd-behavioral") return DepKind::CcdBehavioral;
  return std::nullopt;
}

const char* constraintOpName(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::Eq: return "==";
    case ConstraintOp::Ne: return "!=";
    case ConstraintOp::Lt: return "<";
    case ConstraintOp::Le: return "<=";
    case ConstraintOp::Gt: return ">";
    case ConstraintOp::Ge: return ">=";
    case ConstraintOp::Requires: return "requires";
    case ConstraintOp::Excludes: return "excludes";
    case ConstraintOp::InRange: return "in-range";
    case ConstraintOp::HasType: return "has-type";
    case ConstraintOp::MultipleOf: return "multiple-of";
    case ConstraintOp::PowerOfTwo: return "power-of-two";
    case ConstraintOp::Influences: return "influences";
  }
  return "?";
}

std::optional<ConstraintOp> constraintOpFromName(std::string_view name) {
  if (name == "==") return ConstraintOp::Eq;
  if (name == "!=") return ConstraintOp::Ne;
  if (name == "<") return ConstraintOp::Lt;
  if (name == "<=") return ConstraintOp::Le;
  if (name == ">") return ConstraintOp::Gt;
  if (name == ">=") return ConstraintOp::Ge;
  if (name == "requires") return ConstraintOp::Requires;
  if (name == "excludes") return ConstraintOp::Excludes;
  if (name == "in-range") return ConstraintOp::InRange;
  if (name == "has-type") return ConstraintOp::HasType;
  if (name == "multiple-of") return ConstraintOp::MultipleOf;
  if (name == "power-of-two") return ConstraintOp::PowerOfTwo;
  if (name == "influences") return ConstraintOp::Influences;
  return std::nullopt;
}

std::string Dependency::dedupKey() const {
  std::string key = depKindName(kind);
  key += '|';
  key += constraintOpName(op);
  key += '|';
  key += param;
  key += '|';
  // "excludes" is symmetric; normalize the pair order so A⊥B == B⊥A.
  if (op == ConstraintOp::Excludes && other_param < param) {
    key = depKindName(kind);
    key += '|';
    key += constraintOpName(op);
    key += '|';
    key += other_param;
    key += '|';
    key += param;
    return key;
  }
  key += other_param;
  return key;
}

std::string Dependency::summary() const {
  std::string out = depLevelShortName(level());
  out += '(';
  out += depKindName(kind);
  out += "): ";
  out += param;
  switch (op) {
    case ConstraintOp::HasType:
      out += " must have type ";
      out += type_name;
      break;
    case ConstraintOp::InRange:
      out += " in [";
      out += low ? std::to_string(*low) : "-inf";
      out += ", ";
      out += high ? std::to_string(*high) : "+inf";
      out += "]";
      break;
    case ConstraintOp::MultipleOf:
      out += " multiple of ";
      out += low ? std::to_string(*low) : "?";
      break;
    case ConstraintOp::PowerOfTwo:
      out += " must be a power of two";
      break;
    case ConstraintOp::Requires:
      out += " requires ";
      out += other_param;
      break;
    case ConstraintOp::Excludes:
      out += " excludes ";
      out += other_param;
      break;
    case ConstraintOp::Influences:
      out += " behavior influenced by ";
      out += other_param;
      break;
    default:
      out += ' ';
      out += constraintOpName(op);
      out += ' ';
      out += other_param;
      break;
  }
  if (!bridge_field.empty()) {
    out += " [via ";
    out += bridge_field;
    out += ']';
  }
  return out;
}

}  // namespace fsdep::model
