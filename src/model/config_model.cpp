#include "model/config_model.h"

namespace fsdep::model {

const char* configStageName(ConfigStage stage) {
  switch (stage) {
    case ConfigStage::Create: return "create";
    case ConfigStage::Mount: return "mount";
    case ConfigStage::Online: return "online";
    case ConfigStage::Offline: return "offline";
  }
  return "unknown";
}

std::optional<ConfigStage> configStageFromName(std::string_view name) {
  if (name == "create") return ConfigStage::Create;
  if (name == "mount") return ConfigStage::Mount;
  if (name == "online") return ConfigStage::Online;
  if (name == "offline") return ConfigStage::Offline;
  return std::nullopt;
}

const char* paramTypeName(ParamType type) {
  switch (type) {
    case ParamType::Flag: return "flag";
    case ParamType::Integer: return "integer";
    case ParamType::String: return "string";
    case ParamType::Enum: return "enum";
    case ParamType::Size: return "size";
  }
  return "unknown";
}

std::optional<ParamType> paramTypeFromName(std::string_view name) {
  if (name == "flag") return ParamType::Flag;
  if (name == "integer") return ParamType::Integer;
  if (name == "string") return ParamType::String;
  if (name == "enum") return ParamType::Enum;
  if (name == "size") return ParamType::Size;
  return std::nullopt;
}

const Parameter* Component::findParameter(std::string_view param_name) const {
  for (const Parameter& p : parameters) {
    if (p.name == param_name) return &p;
  }
  return nullptr;
}

void Ecosystem::addComponent(Component component) { components_.push_back(std::move(component)); }

const Component* Ecosystem::findComponent(std::string_view name) const {
  for (const Component& c : components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Parameter* Ecosystem::findParameter(std::string_view qualified_name) const {
  const std::size_t dot = qualified_name.find('.');
  if (dot == std::string_view::npos) return nullptr;
  const Component* c = findComponent(qualified_name.substr(0, dot));
  if (c == nullptr) return nullptr;
  return c->findParameter(qualified_name.substr(dot + 1));
}

std::size_t Ecosystem::totalParameterCount() const {
  std::size_t n = 0;
  for (const Component& c : components_) n += c.parameters.size();
  return n;
}

}  // namespace fsdep::model
