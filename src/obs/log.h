// Structured leveled logging — pillar 3 of the observability layer.
//
// One process-wide level, initialized from the FSDEP_LOG environment
// variable (debug|info|warn|error|off; default warn) and overridable by
// the CLI's --log flag. Output goes to stderr only — stdout stays
// reserved for machine-parseable command output (Table 5 text, depgraph
// JSON). FSDEP_LOG_FORMAT=json switches from the human one-liner
//   fsdep[info] cli: table5 done in 812.4 ms
// to JSON lines:
//   {"ts_ms":1234,"level":"info","component":"cli","msg":"..."}
//
// The level check is a relaxed atomic load; when a statement's level is
// filtered out, no formatting happens (the FSDEP_LOG* macros guard the
// call, so argument evaluation is skipped too).
#pragma once

#include <atomic>
#include <string>

namespace fsdep::obs {

namespace detail {
extern std::atomic<int> g_log_level;
}  // namespace detail

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char* logLevelName(LogLevel level);

/// Parses "debug|info|warn|error|off" (case-sensitive); falls back to
/// `fallback` for anything else, including null.
LogLevel parseLogLevel(const char* text, LogLevel fallback);

/// The active level (first call reads FSDEP_LOG / FSDEP_LOG_FORMAT).
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// true = JSON lines, false = human text.
void setLogJson(bool json);

[[nodiscard]] inline bool logEnabled(LogLevel level) {
  return static_cast<int>(level) >= detail::g_log_level.load(std::memory_order_relaxed);
}

/// Formats one log line (without emitting). Exposed for tests.
std::string formatLogLine(LogLevel level, const char* component, const char* message,
                          bool json, unsigned long long ts_ms);

/// printf-style emission to stderr; call through the macros so disabled
/// levels cost one atomic load and nothing else.
void logf(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace fsdep::obs

#define FSDEP_LOG(level, component, ...)                                       \
  do {                                                                         \
    if (::fsdep::obs::logEnabled(level)) {                                     \
      ::fsdep::obs::logf(level, component, __VA_ARGS__);                       \
    }                                                                          \
  } while (0)

#define FSDEP_LOG_DEBUG(component, ...) \
  FSDEP_LOG(::fsdep::obs::LogLevel::Debug, component, __VA_ARGS__)
#define FSDEP_LOG_INFO(component, ...) \
  FSDEP_LOG(::fsdep::obs::LogLevel::Info, component, __VA_ARGS__)
#define FSDEP_LOG_WARN(component, ...) \
  FSDEP_LOG(::fsdep::obs::LogLevel::Warn, component, __VA_ARGS__)
#define FSDEP_LOG_ERROR(component, ...) \
  FSDEP_LOG(::fsdep::obs::LogLevel::Error, component, __VA_ARGS__)
