#include "obs/log.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/jsonw.h"

namespace fsdep::obs {

namespace {

LogLevel levelFromEnv() {
  return parseLogLevel(std::getenv("FSDEP_LOG"), LogLevel::Warn);
}

bool jsonFromEnv() {
  const char* format = std::getenv("FSDEP_LOG_FORMAT");
  return format != nullptr && std::strcmp(format, "json") == 0;
}

std::atomic<bool> g_log_json{jsonFromEnv()};

unsigned long long wallMillis() {
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(levelFromEnv())};
}  // namespace detail

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

LogLevel parseLogLevel(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  for (const LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                               LogLevel::Error, LogLevel::Off}) {
    if (std::strcmp(text, logLevelName(level)) == 0) return level;
  }
  return fallback;
}

LogLevel logLevel() {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}

void setLogLevel(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void setLogJson(bool json) { g_log_json.store(json, std::memory_order_relaxed); }

std::string formatLogLine(LogLevel level, const char* component, const char* message,
                          bool json, unsigned long long ts_ms) {
  std::string line;
  if (json) {
    JsonWriter w;
    w.beginObject();
    w.field("ts_ms", static_cast<std::uint64_t>(ts_ms));
    w.field("level", logLevelName(level));
    w.field("component", component);
    w.field("msg", message);
    w.endObject();
    line = w.take();
  } else {
    line = "fsdep[";
    line += logLevelName(level);
    line += "] ";
    line += component;
    line += ": ";
    line += message;
  }
  line += '\n';
  return line;
}

void logf(LogLevel level, const char* component, const char* fmt, ...) {
  if (!logEnabled(level)) return;
  char message[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  const std::string line = formatLogLine(level, component, message,
                                         g_log_json.load(std::memory_order_relaxed),
                                         wallMillis());
  // One fwrite per line keeps concurrent writers from interleaving.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace fsdep::obs
