// Trace spans — pillar 1 of the observability layer (fsdep-obs).
//
// RAII Span objects record Chrome trace-event "complete" events
// ("ph":"X") into per-thread buffers; Trace::stop() merges the buffers
// and renders a JSON document loadable in Perfetto / chrome://tracing.
// The CLI exposes this as `--trace out.json`.
//
// Cost model: instrumentation is always compiled in. When tracing is
// off (the default), constructing a Span is one relaxed atomic load and
// two pointer-sized stores — no clock read, no allocation, no branch
// beyond the enabled check. Event payloads (names, args) are only
// materialized when tracing is on.
//
// Threads: each thread appends to its own buffer (registered once, on
// first use, under the global mutex). Buffers outlive their threads so
// pool workers that exit before stop() lose nothing. Every event
// carries a small sequential tid assigned at registration; Perfetto
// reconstructs span nesting per tid from (ts, dur).
//
// Buffers are bounded (bufferLimit() events per thread). Overflowing
// events are dropped — and counted, both in droppedEvents() and in the
// "trace.dropped_events" registry counter, so saturation is visible in
// --metrics and --report instead of silently truncating the profile.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsdep::obs {

/// One recorded trace event (internal, exposed for tests).
struct TraceEvent {
  enum class Phase : std::uint8_t { Complete, Instant };
  Phase phase = Phase::Complete;
  const char* category = "";  ///< static string, never freed
  std::string name;
  std::uint64_t ts_us = 0;   ///< microseconds since Trace::start()
  std::uint64_t dur_us = 0;  ///< Complete events only
  std::uint32_t tid = 0;
  /// Pre-escaped JSON object fragment ("" = no args), e.g.
  /// "\"component\":\"mke2fs\",\"scenario\":\"s1\"".
  std::string args_json;
  /// Attribution dimension: the values of well-known string args
  /// (scenario, component, function, op) joined with '/'. The profile
  /// aggregator groups same-name spans by this; the JSON render ignores
  /// it (the values are already in args_json).
  std::string group;
};

class Trace {
 public:
  /// Branch-cheap global switch; relaxed is fine — span timing does not
  /// need to synchronize with the flip.
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Clears all buffers and starts collecting. Idempotent.
  static void start();

  /// Stops collecting and renders everything gathered since start() as
  /// a Chrome trace-event JSON document ({"traceEvents":[...]}).
  static std::string stop();

  /// Stops collecting and hands back the raw merged events (sorted by
  /// ts, tid), clearing the buffers. The profile aggregator consumes
  /// this directly — no JSON round trip.
  static std::vector<TraceEvent> stopEvents();

  /// Renders events as a Chrome trace-event JSON document. `events`
  /// usually comes from stopEvents(); exposed so one collection can
  /// feed both --trace and --profile.
  static std::string render(const std::vector<TraceEvent>& events);

  /// stop() + write to `path`. Returns false when the file cannot be
  /// written (the trace text is lost; callers log and carry on).
  static bool stopToFile(const std::string& path);

  /// Microseconds since start() on the steady clock.
  static std::uint64_t nowMicros();

  /// Appends a finished event to the calling thread's buffer. No-ops
  /// when tracing is off (races with stop() simply drop the event).
  static void emit(TraceEvent event);

  /// Convenience: an instant event ("ph":"i") at now.
  static void instant(const char* category, std::string name, std::string args_json = {});

  /// Snapshot of all collected events, merged and sorted by (ts, tid).
  /// Test hook; production code uses stop().
  static std::vector<TraceEvent> snapshot();

  /// Events dropped since start() because a thread's buffer was full.
  static std::uint64_t droppedEvents();

  /// Per-thread buffer bound, in events. The default (1<<18 per thread,
  /// ~32 MB worst case across a pool) comfortably holds a factor-100
  /// amplified run; tests shrink it to exercise the drop path.
  static std::size_t bufferLimit();
  static void setBufferLimit(std::size_t limit);

 private:
  friend class Span;
  static std::atomic<bool> enabled_;
};

/// Escapes and appends one `"key":"value"` pair to an args fragment.
/// Helper for Span::arg and call sites that pre-build instant args.
void appendArg(std::string& args_json, std::string_view key, std::string_view value);
void appendArg(std::string& args_json, std::string_view key, std::uint64_t value);

/// RAII complete-event span. `category` and `name` must be string
/// literals (stored as pointers; only copied if tracing is on).
class Span {
 public:
  Span(const char* category, const char* name) {
    if (Trace::enabled()) begin(category, name);
  }
  ~Span() {
    if (active_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (tracing was on at construction).
  [[nodiscard]] bool active() const { return active_; }

  /// Attaches an argument; no-op when inactive, so call sites can pass
  /// computed values guarded by active() to stay zero-cost when off.
  /// String args under a well-known dimension key (scenario, component,
  /// function, op) also extend the span's attribution group — the key
  /// the profile aggregator buckets same-name spans by.
  void arg(std::string_view key, std::string_view value) {
    if (active_) {
      appendArg(args_json_, key, value);
      noteDim(key, value);
    }
  }
  void arg(std::string_view key, std::uint64_t value) {
    if (active_) appendArg(args_json_, key, value);
  }

 private:
  void begin(const char* category, const char* name);
  void end();
  void noteDim(std::string_view key, std::string_view value);

  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::string args_json_;
  std::string group_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace fsdep::obs
